// Tree autotuner: model- and measurement-driven algorithm selection.
//
// The paper's central result is that the best elimination tree depends on
// the tile-grid shape and the core count: Greedy is asymptotically optimal
// for tall grids, Fibonacci is within a small additive term, and
// FlatTree/PlasmaTree with the TS kernels win on squarish shapes because the
// TS kernels run at higher rates (§5). The Tuner turns that taxonomy into an
// automatic decision so serving traffic never hand-picks a TreeConfig:
//
//   Stage 1 (model): enumerate the candidate trees — FlatTree (TT and TS),
//   BinaryTree, Fibonacci, Greedy, and PlasmaTree in both families with the
//   domain size from the paper's exhaustive BS sweep (best_plasma_bs) — and
//   rank them by the makespan of the bounded-processor list scheduler
//   (sim::simulate_bounded_weighted) on the actual worker count, under a
//   per-kernel weight profile (Table-1 units, the paper-calibrated sc11
//   profile, or this machine's measured kernel seconds).
//
//   Stage 2 (optional refinement): factorize a real matrix of that shape
//   with each of the top-k model candidates on the serving ThreadPool and
//   keep the measured winner — the model proposes, the hardware disposes.
//
// Decisions land in a TuningTable keyed on (p, q, workers, profile id) that
// serializes to JSON, so tuning survives process restarts. The environment
// override TILEDQR_TREE=auto|flat|binary|fibonacci|greedy|plasma bypasses
// the whole machinery for A/B runs.
//
// Candidate plans are fetched through the caller's PlanCache, so the plan of
// the winning config is already cached when the factorization itself runs.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan_cache.hpp"
#include "matrix/tile_matrix.hpp"
#include "obs/metrics.hpp"
#include "perf/kernel_bench.hpp"
#include "tuner/tuning_table.hpp"

namespace tiledqr::runtime {
class ThreadPool;
}

namespace tiledqr::tuner {

struct TunerConfig {
  /// Stage-1 weight profile; the paper-calibrated sc11 profile by default
  /// (Table-1 flops corrected by the §5 kernel efficiencies). Swap in
  /// perf::table1_profile() for pure flop counting or
  /// perf::measured_profile<T>() for this machine's kernel seconds.
  perf::WeightProfile profile = perf::sc11_profile();

  /// Stage 2: empirically time this many top model candidates on the real
  /// pool and keep the measured winner. 0 = model-only (the default; stage 2
  /// costs refine_reps real factorizations per candidate per new shape).
  int refine_top_k = 0;
  int refine_reps = 2;  ///< best-of reps per refined candidate
  int refine_nb = 64;   ///< tile size of the stage-2 timing problems
  int refine_ib = 32;

  /// JSON persistence: decisions load from this file at construction (when
  /// it exists) and save back on destruction / save(). "" = in-memory only.
  std::string table_path;
};

/// One ranked stage-1 candidate.
struct Candidate {
  trees::TreeConfig config{};
  double model_makespan = 0.0;     ///< weighted bounded-sim makespan
  double measured_seconds = -1.0;  ///< stage-2 wall seconds; < 0 = not timed
};

/// The stage-1 candidate enumeration for a p x q grid: FlatTree TT/TS,
/// BinaryTree, Fibonacci, Greedy, and PlasmaTree TT/TS with the domain size
/// from the paper's exhaustive BS sweep. Shared by Tuner::rank_candidates
/// and bench_autotune so the bench's fixed field cannot drift from what the
/// tuner actually considers.
[[nodiscard]] std::vector<trees::TreeConfig> candidate_configs(int p, int q);

/// Wall seconds (best of `reps`) to factorize a copy of `base` with
/// `config` on the pool — the tuner's stage-2 measurement protocol, exposed
/// so benches comparing fixed trees use exactly the same loop (plan through
/// `cache`, CriticalPath keys from the cached ranks). Callers timing several
/// configs of one shape pass the same `base` so every candidate factorizes
/// the same matrix and the O(p q nb^2) generation cost is paid once.
/// `workers > 0` confines the run to that many pool workers — decisions
/// keyed on a worker cap must be measured at that concurrency; 0 uses the
/// whole pool.
[[nodiscard]] double measure_tree_seconds(const trees::TreeConfig& config,
                                          const TileMatrix<double>& base, int ib,
                                          core::PlanCache& cache, runtime::ThreadPool& pool,
                                          int workers, int reps);

/// The deterministic p x q-tile stage-2 timing matrix (fixed seed, so every
/// candidate of a shape measures against identical data).
[[nodiscard]] TileMatrix<double> stage2_matrix(int p, int q, int nb);

/// Parses TILEDQR_TREE: "flat", "binary", "fibonacci", "greedy", "plasma"
/// force that algorithm for every shape ("flat"/"plasma" use the TS family —
/// PLASMA's convention — and "plasma" picks BS via best_plasma_bs; the
/// "-tt"/"-ts" suffix, e.g. "flat-tt", forces the family). "auto", unset,
/// or unrecognized values return nullopt (the tuner decides).
[[nodiscard]] std::optional<trees::TreeConfig> forced_tree_from_env(int p, int q);

class Tuner {
 public:
  explicit Tuner(TunerConfig config = {});

  /// Best-effort save to table_path (errors swallowed — destruction must not
  /// throw; call save() for a loud version).
  ~Tuner();

  Tuner(const Tuner&) = delete;
  Tuner& operator=(const Tuner&) = delete;

  /// The full decision for a p x q reduction grid on `workers` workers:
  /// TILEDQR_TREE override first, then the tuning table, then the stage-1
  /// model ranking (+ stage-2 refinement on `pool` when configured). For LQ
  /// workloads callers pass the reduction grid (element grid transposed, so
  /// p >= q always holds here) and FactorKind::LQ; the decision is tabled
  /// under its own key and the candidate plans cached are LQ plans.
  /// Thread-safe; concurrent misses on the same key tune redundantly but
  /// all return the same decision — the table keeps the first recorded
  /// winner and record() hands it back to the losers.
  [[nodiscard]] TunedDecision decide(int p, int q, int workers, core::PlanCache& cache,
                                     runtime::ThreadPool* pool = nullptr,
                                     kernels::FactorKind factor = kernels::FactorKind::QR);

  /// Convenience: just the chosen TreeConfig.
  [[nodiscard]] trees::TreeConfig choose(int p, int q, int workers, core::PlanCache& cache,
                                         runtime::ThreadPool* pool = nullptr,
                                         kernels::FactorKind factor = kernels::FactorKind::QR) {
    return decide(p, q, workers, cache, pool, factor).config;
  }

  /// The stage-1 candidate set, ranked best (smallest model makespan) first.
  /// Exposed for benches and tests; plans go through `cache` (keyed on
  /// `factor`, so the winner's plan is already cached for the workload that
  /// asked). LQ graphs rank identically to their QR duals — every LQ kernel
  /// shares its dual's weight-profile slot — but fetching them under the LQ
  /// key keeps the pre-caching guarantee.
  [[nodiscard]] std::vector<Candidate> rank_candidates(
      int p, int q, int workers, core::PlanCache& cache,
      kernels::FactorKind factor = kernels::FactorKind::QR) const;

  [[nodiscard]] const TunerConfig& config() const noexcept { return config_; }
  [[nodiscard]] TuningTable& table() noexcept { return table_; }
  [[nodiscard]] const TuningTable& table() const noexcept { return table_; }
  [[nodiscard]] TuningTable::Stats stats() const { return table_.stats(); }

  /// Writes the table to config().table_path; throws tiledqr::Error on I/O
  /// failure or if no path is configured.
  void save() const;

 private:
  [[nodiscard]] std::optional<trees::TreeConfig> forced_tree_cached(int p, int q);

  TunerConfig config_;
  TuningTable table_;

  // Forced-path memo: TILEDQR_TREE=plasma runs the exhaustive BS sweep, and
  // forced decisions bypass the TuningTable — without this cache every
  // decide() of a serving process in A/B mode would pay the sweep again.
  // Invalidated when the raw env value changes (tests flip it mid-process).
  std::mutex forced_mu_;
  std::string forced_env_;
  std::unordered_map<long, std::optional<trees::TreeConfig>> forced_memo_;

  /// Registry source "tuner<N>" exporting the TuningTable stats; declared
  /// last so it deregisters before table_ dies.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tiledqr::tuner
