// TuningTable: the persisted memory of the tree autotuner.
//
// Maps (p, q, workers, weight-profile id, factor kind) — the same
// shape-and-resources key the PlanCache uses, plus the profile so decisions
// made under one weight model are never served under another, plus the
// factor kind so a QR and an LQ workload on the same reduction grid keep
// independent entries — to the tuner's decision for that key: the chosen
// TreeConfig, the stage-1 model makespan, and (when stage 2 ran) the
// measured seconds of the winning candidate.
//
// The table is thread-safe and serializes to/from a small standalone JSON
// document, so a serving process can load yesterday's decisions at startup
// and a fleet can ship a pre-tuned table with the binary. Hit/miss/
// refinement stats round-trip with the entries: a re-loaded table reports
// the same counters it was saved with.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernels/kernels.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::tuner {

/// One tuning decision. `measured_seconds < 0` means stage 2 (empirical
/// refinement) did not run and the choice is purely model-driven.
struct TunedDecision {
  trees::TreeConfig config{};
  double model_makespan = 0.0;     ///< weighted bounded-sim makespan of `config`
  double measured_seconds = -1.0;  ///< stage-2 wall seconds; < 0 = model-only
  bool refined = false;            ///< stage 2 ran for this decision
  /// TILEDQR_TREE dictated the config (no model, no table). Forced decisions
  /// are never recorded, so this flag is not part of the JSON format.
  bool forced = false;

  friend bool operator==(const TunedDecision&, const TunedDecision&) = default;
};

/// Stable serialization names for TreeKind ("FlatTree", "Greedy", ...).
[[nodiscard]] const char* tree_kind_name(trees::TreeKind kind) noexcept;
[[nodiscard]] std::optional<trees::TreeKind> parse_tree_kind(std::string_view name) noexcept;

class TuningTable {
 public:
  struct Stats {
    long hits = 0;         ///< lookups served from the table
    long misses = 0;       ///< lookups that had to tune
    long refinements = 0;  ///< recorded decisions that ran stage 2
    size_t entries = 0;    ///< live decisions

    [[nodiscard]] double hit_rate() const noexcept {
      long total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  TuningTable() = default;
  TuningTable(TuningTable&& other) noexcept;
  TuningTable& operator=(TuningTable&& other) noexcept;

  /// Returns the recorded decision, counting a hit or miss.
  [[nodiscard]] std::optional<TunedDecision> lookup(
      int p, int q, int workers, const std::string& profile,
      kernels::FactorKind factor = kernels::FactorKind::QR);

  /// Records the decision for a key and returns the authoritative entry:
  /// the first record wins — later records for the same key are ignored (so
  /// concurrent tuners converge on one decision) and get the stored entry
  /// back. Newly recorded decisions with `refined == true` bump the
  /// refinement counter. Use clear() to force re-tuning.
  TunedDecision record(int p, int q, int workers, const std::string& profile,
                       const TunedDecision& decision,
                       kernels::FactorKind factor = kernels::FactorKind::QR);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Serializes entries + stats to a standalone JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Parses a document produced by to_json(); throws tiledqr::Error on
  /// malformed input. Stats are restored along with the entries.
  [[nodiscard]] static TuningTable from_json(std::string_view json);

  /// File flavors of to_json/from_json; save/load throw tiledqr::Error on
  /// I/O or parse failure, load_or_empty returns a fresh table when the file
  /// does not exist (but still throws on a file that exists and fails to
  /// parse — a corrupt table should be loud, not silently retuned).
  void save(const std::string& path) const;
  [[nodiscard]] static TuningTable load(const std::string& path);
  [[nodiscard]] static TuningTable load_or_empty(const std::string& path);

 private:
  struct Key {
    int p = 0;
    int q = 0;
    int workers = 0;
    std::string profile;
    kernels::FactorKind factor = kernels::FactorKind::QR;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, TunedDecision, KeyHash> map_;
  long hits_ = 0;
  long misses_ = 0;
  long refinements_ = 0;
};

}  // namespace tiledqr::tuner
