#include "tuner/tuning_table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "common/stringf.hpp"

namespace tiledqr::tuner {

const char* tree_kind_name(trees::TreeKind kind) noexcept {
  switch (kind) {
    case trees::TreeKind::FlatTree: return "FlatTree";
    case trees::TreeKind::BinaryTree: return "BinaryTree";
    case trees::TreeKind::Fibonacci: return "Fibonacci";
    case trees::TreeKind::Greedy: return "Greedy";
    case trees::TreeKind::PlasmaTree: return "PlasmaTree";
    case trees::TreeKind::HadriTree: return "HadriTree";
    case trees::TreeKind::Asap: return "Asap";
    case trees::TreeKind::Grasap: return "Grasap";
  }
  return "?";
}

std::optional<trees::TreeKind> parse_tree_kind(std::string_view name) noexcept {
  using trees::TreeKind;
  for (TreeKind k : {TreeKind::FlatTree, TreeKind::BinaryTree, TreeKind::Fibonacci,
                     TreeKind::Greedy, TreeKind::PlasmaTree, TreeKind::HadriTree, TreeKind::Asap,
                     TreeKind::Grasap})
    if (name == tree_kind_name(k)) return k;
  return std::nullopt;
}

// ------------------------------------------------------------------ JSON --
// A deliberately small JSON reader: objects, arrays, strings (escapes
// \" \\ \/ \n \t \r and Latin-1 \u00XX), numbers, booleans, null — exactly
// what to_json() emits, parsed strictly so a corrupt table fails loudly.
namespace {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object } type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    TILEDQR_CHECK(pos_ == text_.size(), "tuning table JSON: trailing garbage");
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw Error(stringf("tuning table JSON: %s at offset %zu", what.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(stringf("expected '%c'", c));
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    // Depth guard: to_json never nests past 3, so a deep file is garbage —
    // fail with Error instead of overflowing the stack on recursion.
    if (++depth_ > 32) fail("nesting too deep");
    JsonValue v = parse_value_impl();
    --depth_;
    return v;
  }

  JsonValue parse_value_impl() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.type = JsonValue::Type::Object;
        v.object = std::make_shared<JsonObject>();
        ++pos_;
        skip_ws();
        if (peek() == '}') { ++pos_; return v; }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          (*v.object)[key] = parse_value();
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::Array;
        v.array = std::make_shared<JsonArray>();
        ++pos_;
        skip_ws();
        if (peek() == ']') { ++pos_; return v; }
        while (true) {
          v.array->push_back(parse_value());
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume("true")) fail("bad literal");
        v.type = JsonValue::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume("false")) fail("bad literal");
        v.type = JsonValue::Type::Bool;
        return v;
      case 'n':
        if (!consume("null")) fail("bad literal");
        return v;
      default:
        v.type = JsonValue::Type::Number;
        v.number = parse_number();
        return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            // Only the Latin-1 range the writer emits (\u00XX) is accepted.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0xFF) fail("unsupported \\u escape (non-Latin-1)");
            out.push_back(char(code));
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  double parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    std::string token(text_.substr(start, pos_ - start));
    try {
      size_t used = 0;
      double value = std::stod(token, &used);
      // stod parses a prefix; "1.2.3" or "7e" must fail loudly, not load as
      // a truncated value.
      if (used != token.size()) fail("bad number");
      return value;
    } catch (const Error&) {
      throw;
    } catch (...) {
      fail("bad number");
    }
  }
};

/// JSON string escaping for the writer (profile ids are plain ASCII, but the
/// format should survive anything).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        // Raw control characters are illegal inside JSON strings; \u-escape
        // them so external tools (jq, CI artifact consumers) accept the file.
        if (static_cast<unsigned char>(c) < 0x20)
          out += stringf("\\u%04x", unsigned(static_cast<unsigned char>(c)));
        else
          out.push_back(c);
    }
  }
  return out;
}

const JsonObject& as_object(const JsonValue& v, const char* what) {
  TILEDQR_CHECK(v.type == JsonValue::Type::Object && v.object,
                stringf("tuning table JSON: %s must be an object", what));
  return *v.object;
}

const JsonValue& field(const JsonObject& o, const char* name) {
  auto it = o.find(name);
  TILEDQR_CHECK(it != o.end(), stringf("tuning table JSON: missing field \"%s\"", name));
  return it->second;
}

double number_field(const JsonObject& o, const char* name) {
  const JsonValue& v = field(o, name);
  TILEDQR_CHECK(v.type == JsonValue::Type::Number,
                stringf("tuning table JSON: field \"%s\" must be a number", name));
  return v.number;
}

long long_field(const JsonObject& o, const char* name) {
  double d = number_field(o, name);
  long l = long(std::llround(d));
  TILEDQR_CHECK(double(l) == d, stringf("tuning table JSON: field \"%s\" must be integral", name));
  return l;
}

std::string string_field(const JsonObject& o, const char* name) {
  const JsonValue& v = field(o, name);
  TILEDQR_CHECK(v.type == JsonValue::Type::String,
                stringf("tuning table JSON: field \"%s\" must be a string", name));
  return v.string;
}

bool bool_field(const JsonObject& o, const char* name) {
  const JsonValue& v = field(o, name);
  TILEDQR_CHECK(v.type == JsonValue::Type::Bool,
                stringf("tuning table JSON: field \"%s\" must be a boolean", name));
  return v.boolean;
}

}  // namespace

// ----------------------------------------------------------- TuningTable --

size_t TuningTable::KeyHash::operator()(const Key& k) const noexcept {
  size_t h = std::hash<std::string>()(k.profile);
  auto mix = [&h](size_t v) { h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2); };
  mix(size_t(k.p));
  mix(size_t(k.q));
  mix(size_t(k.workers));
  mix(size_t(k.factor));
  return h;
}

TuningTable::TuningTable(TuningTable&& other) noexcept {
  std::lock_guard lock(other.mu_);
  map_ = std::move(other.map_);
  hits_ = other.hits_;
  misses_ = other.misses_;
  refinements_ = other.refinements_;
}

TuningTable& TuningTable::operator=(TuningTable&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  map_ = std::move(other.map_);
  hits_ = other.hits_;
  misses_ = other.misses_;
  refinements_ = other.refinements_;
  return *this;
}

std::optional<TunedDecision> TuningTable::lookup(int p, int q, int workers,
                                                 const std::string& profile,
                                                 kernels::FactorKind factor) {
  std::lock_guard lock(mu_);
  auto it = map_.find(Key{p, q, workers, profile, factor});
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

TunedDecision TuningTable::record(int p, int q, int workers, const std::string& profile,
                                  const TunedDecision& decision,
                                  kernels::FactorKind factor) {
  std::lock_guard lock(mu_);
  // Insert-if-absent: concurrent tuners racing on the same key converge on
  // the first recorded decision (stage-2 timing noise could otherwise make
  // them disagree), and the refinement counter matches live entries.
  auto [it, inserted] = map_.try_emplace(Key{p, q, workers, profile, factor}, decision);
  if (inserted && decision.refined) ++refinements_;
  return it->second;
}

TuningTable::Stats TuningTable::stats() const {
  std::lock_guard lock(mu_);
  return Stats{hits_, misses_, refinements_, map_.size()};
}

void TuningTable::clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  hits_ = misses_ = refinements_ = 0;
}

std::string TuningTable::to_json() const {
  std::lock_guard lock(mu_);
  // Deterministic output: sort entries by key so the file diffs cleanly.
  std::vector<std::pair<const Key*, const TunedDecision*>> sorted;
  sorted.reserve(map_.size());
  for (const auto& [key, decision] : map_) sorted.emplace_back(&key, &decision);
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first->p, a.first->q, a.first->workers, a.first->profile,
                    a.first->factor) < std::tie(b.first->p, b.first->q, b.first->workers,
                                                b.first->profile, b.first->factor);
  });

  std::ostringstream out;
  out << "{\n  \"version\": 1,\n";
  out << stringf("  \"stats\": {\"hits\": %ld, \"misses\": %ld, \"refinements\": %ld},\n", hits_,
                 misses_, refinements_);
  out << "  \"entries\": [";
  bool first = true;
  for (const auto& [key, d] : sorted) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << stringf(
        "    {\"p\": %d, \"q\": %d, \"workers\": %d, \"profile\": \"%s\", "
        "\"factor\": \"%s\", "
        "\"kind\": \"%s\", \"family\": \"%s\", \"bs\": %d, \"grasap_k\": %d, "
        "\"model_makespan\": %.17g, \"measured_seconds\": %.17g, \"refined\": %s}",
        key->p, key->q, key->workers, json_escape(key->profile).c_str(),
        kernels::factor_kind_name(key->factor),
        tree_kind_name(d->config.kind),
        d->config.family == trees::KernelFamily::TS ? "TS" : "TT", d->config.bs,
        d->config.grasap_k, d->model_makespan, d->measured_seconds,
        d->refined ? "true" : "false");
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

TuningTable TuningTable::from_json(std::string_view json) {
  JsonParser parser(json);
  JsonValue doc = parser.parse_document();
  const JsonObject& root = as_object(doc, "document");
  TILEDQR_CHECK(long_field(root, "version") == 1, "tuning table JSON: unsupported version");

  TuningTable table;
  const JsonObject& stats = as_object(field(root, "stats"), "\"stats\"");
  table.hits_ = long_field(stats, "hits");
  table.misses_ = long_field(stats, "misses");
  table.refinements_ = long_field(stats, "refinements");

  const JsonValue& entries = field(root, "entries");
  TILEDQR_CHECK(entries.type == JsonValue::Type::Array,
                "tuning table JSON: \"entries\" must be an array");
  for (const JsonValue& ev : *entries.array) {
    const JsonObject& e = as_object(ev, "entry");
    Key key;
    key.p = int(long_field(e, "p"));
    key.q = int(long_field(e, "q"));
    key.workers = int(long_field(e, "workers"));
    key.profile = string_field(e, "profile");
    // "factor" was added with the LQ workload; tables written before then
    // have no such field and are all-QR, so probe with find() rather than
    // field() (which throws on absence).
    if (auto fit = e.find("factor"); fit != e.end()) {
      TILEDQR_CHECK(fit->second.type == JsonValue::Type::String,
                    "tuning table JSON: field \"factor\" must be a string");
      const std::string& f = fit->second.string;
      TILEDQR_CHECK(f == "QR" || f == "LQ",
                    stringf("tuning table JSON: unknown factor kind \"%s\"", f.c_str()));
      key.factor = f == "LQ" ? kernels::FactorKind::LQ : kernels::FactorKind::QR;
    }
    // Range sanity at load time: a corrupt entry must fail here, not later
    // inside tree generation when the first matching request arrives.
    TILEDQR_CHECK(key.p >= 1 && key.q >= 1 && key.workers >= 1,
                  "tuning table JSON: p, q, workers must be >= 1");

    TunedDecision d;
    std::string kind = string_field(e, "kind");
    auto parsed = parse_tree_kind(kind);
    TILEDQR_CHECK(parsed.has_value(),
                  stringf("tuning table JSON: unknown tree kind \"%s\"", kind.c_str()));
    d.config.kind = *parsed;
    std::string family = string_field(e, "family");
    TILEDQR_CHECK(family == "TS" || family == "TT",
                  stringf("tuning table JSON: unknown kernel family \"%s\"", family.c_str()));
    d.config.family = family == "TS" ? trees::KernelFamily::TS : trees::KernelFamily::TT;
    d.config.bs = int(long_field(e, "bs"));
    d.config.grasap_k = int(long_field(e, "grasap_k"));
    TILEDQR_CHECK(d.config.bs >= 1 && d.config.grasap_k >= 0,
                  "tuning table JSON: bs must be >= 1 and grasap_k >= 0");
    d.model_makespan = number_field(e, "model_makespan");
    d.measured_seconds = number_field(e, "measured_seconds");
    d.refined = bool_field(e, "refined");
    table.map_[key] = d;
  }
  return table;
}

void TuningTable::save(const std::string& path) const {
  // Write-then-rename so a crash mid-save can never leave a truncated table
  // behind — load_or_empty throws on a file that exists but fails to parse,
  // so an in-place write interrupted at the wrong moment would wedge every
  // later startup until an operator deletes the file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    TILEDQR_CHECK(out.good(), stringf("tuning table: cannot open %s for writing", tmp.c_str()));
    out << to_json();
    out.flush();
    TILEDQR_CHECK(out.good(), stringf("tuning table: write to %s failed", tmp.c_str()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  TILEDQR_CHECK(!ec, stringf("tuning table: rename %s -> %s failed: %s", tmp.c_str(),
                             path.c_str(), ec.message().c_str()));
}

TuningTable TuningTable::load(const std::string& path) {
  std::ifstream in(path);
  TILEDQR_CHECK(in.good(), stringf("tuning table: cannot open %s", path.c_str()));
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

TuningTable TuningTable::load_or_empty(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return TuningTable{};
  return load(path);
}

}  // namespace tiledqr::tuner
