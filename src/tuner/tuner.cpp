#include "tuner/tuner.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/bounded.hpp"

namespace tiledqr::tuner {

namespace {

using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

}  // namespace

TileMatrix<double> stage2_matrix(int p, int q, int nb) {
  auto dense = random_matrix<double>(std::int64_t(p) * nb, std::int64_t(q) * nb, 0x7A13);
  return TileMatrix<double>::from_dense(dense.view(), nb);
}

double measure_tree_seconds(const TreeConfig& config, const TileMatrix<double>& base, int ib,
                            core::PlanCache& cache, runtime::ThreadPool& pool, int workers,
                            int reps) {
  const int p = base.mt();
  const int q = base.nt();
  const int nb = base.nb();
  auto plan = cache.get(p, q, config);
  ib = std::min(ib, nb);

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, reps); ++r) {
    TileMatrix<double> a = base;
    core::TStore<double> t(p, q, ib, nb);
    core::TStore<double> t2(p, q, ib, nb);
    WallTimer timer;
    pool.run(
        plan->graph,
        [&](std::int32_t idx) {
          core::run_task_kernels(plan->graph.tasks[size_t(idx)], a, t, t2, ib);
        },
        runtime::SchedulePriority::CriticalPath, workers, &plan->ranks);
    best = std::min(best, timer.seconds());
  }
  return best;
}

std::optional<TreeConfig> forced_tree_from_env(int p, int q) {
  auto raw = env_string("TILEDQR_TREE");
  if (!raw) return std::nullopt;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });

  // Optional "-ts"/"-tt" family suffix; the bare names use PLASMA's
  // conventional family (TS for flat/plasma, TT elsewhere).
  std::optional<KernelFamily> family;
  if (v.size() > 3 && (v.ends_with("-ts") || v.ends_with("-tt"))) {
    family = v.ends_with("-ts") ? KernelFamily::TS : KernelFamily::TT;
    v.resize(v.size() - 3);
  }

  TreeConfig c;
  if (v == "flat") {
    c.kind = TreeKind::FlatTree;
    c.family = family.value_or(KernelFamily::TS);
  } else if (v == "binary") {
    c.kind = TreeKind::BinaryTree;
    c.family = family.value_or(KernelFamily::TT);
  } else if (v == "fibonacci") {
    c.kind = TreeKind::Fibonacci;
    c.family = family.value_or(KernelFamily::TT);
  } else if (v == "greedy") {
    c.kind = TreeKind::Greedy;
    c.family = family.value_or(KernelFamily::TT);
  } else if (v == "plasma") {
    c.kind = TreeKind::PlasmaTree;
    c.family = family.value_or(KernelFamily::TS);
    c.bs = core::best_plasma_bs(p, q, c.family).bs;
  } else {
    return std::nullopt;  // "auto" and anything unrecognized: tuner decides
  }
  return c;
}

Tuner::Tuner(TunerConfig config) : config_(std::move(config)) {
  if (!config_.table_path.empty()) table_ = TuningTable::load_or_empty(config_.table_path);
  metrics_source_ = obs::MetricsRegistry::global().register_source(
      obs::MetricsRegistry::global().unique_label("tuner"),
      [this](std::vector<obs::Sample>& out) {
        TuningTable::Stats s = table_.stats();
        out.push_back({"hits", double(s.hits)});
        out.push_back({"misses", double(s.misses)});
        out.push_back({"refinements", double(s.refinements)});
        out.push_back({"entries", double(s.entries)});
      });
}

Tuner::~Tuner() {
  if (config_.table_path.empty()) return;
  try {
    table_.save(config_.table_path);
  } catch (...) {
    // Destruction is best-effort; an unwritable path must not terminate.
  }
}

void Tuner::save() const {
  TILEDQR_CHECK(!config_.table_path.empty(), "Tuner::save: no table_path configured");
  table_.save(config_.table_path);
}

std::vector<TreeConfig> candidate_configs(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "candidate_configs: bad tile-grid shape");
  std::vector<TreeConfig> configs;
  configs.push_back({TreeKind::Greedy, KernelFamily::TT, 1, 1});
  configs.push_back({TreeKind::Fibonacci, KernelFamily::TT, 1, 1});
  configs.push_back({TreeKind::BinaryTree, KernelFamily::TT, 1, 1});
  configs.push_back({TreeKind::FlatTree, KernelFamily::TT, 1, 1});
  configs.push_back({TreeKind::FlatTree, KernelFamily::TS, 1, 1});
  for (KernelFamily family : {KernelFamily::TT, KernelFamily::TS}) {
    int bs = core::best_plasma_bs(p, q, family).bs;
    // bs == 1 degenerates to BinaryTree and bs == p to FlatTree(family);
    // keep them anyway — the DAGs are distinct cache entries but the model
    // ranks them identically, and dropping them would special-case the sweep.
    configs.push_back({TreeKind::PlasmaTree, family, bs, 1});
  }
  return configs;
}

std::vector<Candidate> Tuner::rank_candidates(int p, int q, int workers,
                                              core::PlanCache& cache,
                                              kernels::FactorKind factor) const {
  TILEDQR_CHECK(workers >= 1, "Tuner: need at least one worker");
  std::vector<TreeConfig> configs = candidate_configs(p, q);

  std::vector<Candidate> ranked;
  ranked.reserve(configs.size());
  for (const TreeConfig& c : configs) {
    auto plan = cache.get(p, q, c, factor);
    auto sim = sim::simulate_bounded_weighted(plan->graph, workers, config_.profile.weight,
                                              sim::SimPriority::CriticalPath);
    ranked.push_back(Candidate{c, sim.makespan, -1.0});
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const Candidate& a, const Candidate& b) {
    return a.model_makespan < b.model_makespan;
  });
  return ranked;
}

std::optional<TreeConfig> Tuner::forced_tree_cached(int p, int q) {
  auto raw = env_string("TILEDQR_TREE");
  if (!raw) return std::nullopt;
  std::lock_guard lock(forced_mu_);
  if (forced_env_ != *raw) {
    forced_memo_.clear();
    forced_env_ = *raw;
  }
  const long key = (long(p) << 24) ^ long(q);
  auto it = forced_memo_.find(key);
  if (it == forced_memo_.end())
    it = forced_memo_.emplace(key, forced_tree_from_env(p, q)).first;
  return it->second;
}

TunedDecision Tuner::decide(int p, int q, int workers, core::PlanCache& cache,
                            runtime::ThreadPool* pool, kernels::FactorKind factor) {
  // Env override: bypasses table, model, and refinement entirely (A/B
  // escape hatch). No simulation and a memoized parse (forced_tree_cached),
  // so the forced path does no per-request work. The forced config depends
  // only on the reduction-grid shape, never on the factor kind.
  if (auto forced = forced_tree_cached(p, q)) {
    TunedDecision d;
    d.config = *forced;
    d.forced = true;
    return d;
  }

  if (auto hit = table_.lookup(p, q, workers, config_.profile.id, factor)) return *hit;

  // Stage 1: model ranking.
  std::vector<Candidate> ranked = rank_candidates(p, q, workers, cache, factor);
  TunedDecision d;
  d.config = ranked.front().config;
  d.model_makespan = ranked.front().model_makespan;

  // Stage 2: time the top-k candidates on the real pool, keep the winner.
  // For LQ the timing problem is the transpose-dual QR factorization of the
  // same reduction grid — by duality it runs the identical kernel mix, so
  // its measured ordering transfers (and it avoids teaching the stage-2
  // driver about A-layout tile coordinates).
  if (config_.refine_top_k > 0 && pool != nullptr) {
    const size_t k = std::min(size_t(config_.refine_top_k), ranked.size());
    // One timing matrix for the whole candidate field.
    const TileMatrix<double> base = stage2_matrix(p, q, config_.refine_nb);
    double best_sec = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < k; ++i) {
      // Measure at the concurrency the decision is keyed on, not the whole
      // pool — a tree that wins 16-way can lose 2-way.
      ranked[i].measured_seconds = measure_tree_seconds(
          ranked[i].config, base, config_.refine_ib, cache, *pool, workers,
          config_.refine_reps);
      if (ranked[i].measured_seconds < best_sec) {
        best_sec = ranked[i].measured_seconds;
        d.config = ranked[i].config;
        d.model_makespan = ranked[i].model_makespan;
        d.measured_seconds = ranked[i].measured_seconds;
      }
    }
    d.refined = true;
  }

  // The table arbitrates concurrent misses: whoever records first wins and
  // everyone returns the stored decision.
  return table_.record(p, q, workers, config_.profile.id, d, factor);
}

}  // namespace tiledqr::tuner
