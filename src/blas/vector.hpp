// Level-1 helpers on contiguous vectors (tile columns are stride-1).
//
// For real scalars, axpy and dotc route through the runtime-dispatched SIMD
// microkernel table (blas/simd/simd.hpp); complex scalars keep the generic
// loops. These two primitives carry the panel factorizations (geqr2, the
// TSQRT/TTQRT column sweeps) and the triangular substrate, so the dispatch
// here is what vectorizes the non-GEMM half of every tile kernel.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "blas/simd/simd.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr::blas {

/// y := y + alpha * x
template <typename T>
inline void axpy(std::int64_t n, T alpha, const T* x, T* y) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    simd::ops().daxpy(n, alpha, x, y);
  } else if constexpr (std::is_same_v<T, float>) {
    simd::ops().saxpy(n, alpha, x, y);
  } else {
    for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }
}

/// x := alpha * x
template <typename T>
inline void scal(std::int64_t n, T alpha, T* x) noexcept {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// Conjugated dot product: sum conj(x_i) * y_i.
template <typename T>
[[nodiscard]] inline T dotc(std::int64_t n, const T* x, const T* y) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    return simd::ops().ddot(n, x, y);
  } else if constexpr (std::is_same_v<T, float>) {
    return simd::ops().sdot(n, x, y);
  } else {
    T acc = T(0);
    for (std::int64_t i = 0; i < n; ++i) acc += conj_if_complex(x[i]) * y[i];
    return acc;
  }
}

/// y[j] += alpha * dotc(m, a + j*lda, x) for j in [0, n): a run of dot
/// products against one shared x. The vector tiers load x once per four
/// columns — the memory-traffic lever for the unblocked panel loops, where
/// the shared operand is the current reflector.
template <typename T>
inline void gemv_t_acc(std::int64_t m, std::int64_t n, T alpha, const T* a, std::int64_t lda,
                       const T* x, T* y) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    simd::ops().dgemv_t(m, n, alpha, a, lda, x, y);
  } else if constexpr (std::is_same_v<T, float>) {
    simd::ops().sgemv_t(m, n, alpha, a, lda, x, y);
  } else {
    for (std::int64_t j = 0; j < n; ++j) {
      const T* aj = a + j * lda;
      T acc = T(0);
      for (std::int64_t i = 0; i < m; ++i) acc += conj_if_complex(aj[i]) * x[i];
      y[j] += alpha * acc;
    }
  }
}

/// c(:,j) += alpha * y[j] * x for j in [0, n): rank-1 update with shared x
/// (no conjugation of y — callers fold their own).
template <typename T>
inline void ger_acc(std::int64_t m, std::int64_t n, T alpha, const T* x, const T* y, T* c,
                    std::int64_t ldc) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    simd::ops().dger(m, n, alpha, x, y, c, ldc);
  } else if constexpr (std::is_same_v<T, float>) {
    simd::ops().sger(m, n, alpha, x, y, c, ldc);
  } else {
    for (std::int64_t j = 0; j < n; ++j) axpy(m, alpha * y[j], x, c + j * ldc);
  }
}

namespace detail {

/// Overflow-safe scaled sum of squares (LAPACK lassq-style; the magnitude is
/// taken before squaring so 1e200-scale entries do not overflow and
/// 1e-200-scale entries do not flush to zero).
template <typename T>
[[nodiscard]] inline RealType<T> nrm2_scaled(std::int64_t n, const T* x) noexcept {
  using R = RealType<T>;
  R scale = 0;
  R ssq = 1;
  for (std::int64_t i = 0; i < n; ++i) {
    R ax = std::abs(x[i]);
    if (ax != R(0)) {
      if (scale < ax) {
        R r = scale / ax;
        ssq = R(1) + ssq * r * r;
        scale = ax;
      } else {
        R r = ax / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

}  // namespace detail

/// Euclidean norm. Real scalars take a fast path — the dispatched dot gives
/// sum(x^2) vectorized — and fall back to the scaled loop whenever that sum
/// leaves the safely-representable band (overflow to inf, NaN, or small
/// enough that squaring lost denormal precision). nrm2 runs inside every
/// larfg, so this is on the panel-factorization critical path.
template <typename T>
[[nodiscard]] inline RealType<T> nrm2(std::int64_t n, const T* x) noexcept {
  using R = RealType<T>;
  if constexpr (!is_complex_v<T>) {
    const R ssq = dotc(n, x, x);
    // sqrt(min)/eps-ish guard band: below it, squared denormals have eaten
    // precision; above sqrt(max) the sum may have overflowed.
    constexpr R tsml = std::numeric_limits<R>::min() / std::numeric_limits<R>::epsilon();
    constexpr R tbig = std::numeric_limits<R>::max() * std::numeric_limits<R>::epsilon();
    // Out of band — including ssq == 0, which tiny-but-nonzero entries
    // produce by squaring below the denormal range — rescan scaled.
    if (ssq > tsml && ssq < tbig) return std::sqrt(ssq);
    return detail::nrm2_scaled(n, x);
  } else {
    return detail::nrm2_scaled(n, x);
  }
}

}  // namespace tiledqr::blas
