// Level-1 helpers on contiguous vectors (tile columns are stride-1).
#pragma once

#include <cmath>
#include <cstdint>

#include "matrix/scalar.hpp"

namespace tiledqr::blas {

/// y := y + alpha * x
template <typename T>
inline void axpy(std::int64_t n, T alpha, const T* x, T* y) noexcept {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x := alpha * x
template <typename T>
inline void scal(std::int64_t n, T alpha, T* x) noexcept {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// Conjugated dot product: sum conj(x_i) * y_i.
template <typename T>
[[nodiscard]] inline T dotc(std::int64_t n, const T* x, const T* y) noexcept {
  T acc = T(0);
  for (std::int64_t i = 0; i < n; ++i) acc += conj_if_complex(x[i]) * y[i];
  return acc;
}

/// Euclidean norm with overflow-safe scaling (LAPACK lassq-style; the
/// magnitude is taken before squaring so 1e200-scale entries do not
/// overflow and 1e-200-scale entries do not flush to zero).
template <typename T>
[[nodiscard]] inline RealType<T> nrm2(std::int64_t n, const T* x) noexcept {
  using R = RealType<T>;
  R scale = 0;
  R ssq = 1;
  for (std::int64_t i = 0; i < n; ++i) {
    R ax = std::abs(x[i]);
    if (ax != R(0)) {
      if (scale < ax) {
        R r = scale / ax;
        ssq = R(1) + ssq * r * r;
        scale = ax;
      } else {
        R r = ax / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

}  // namespace tiledqr::blas
