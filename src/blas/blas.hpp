// BLAS substrate: the dense linear-algebra primitives the tile kernels are
// built on. The paper links against Intel MKL; offline we provide a compact
// templated implementation (real and complex) tuned enough that kernel flop
// ratios — the quantity the paper's experiments depend on — are faithful.
//
// All matrices are column-major views. Only the operations the library needs
// are provided; each follows the semantics of its BLAS namesake.
#pragma once

#include "blas/vector.hpp"
#include "matrix/matrix_view.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr::blas {

/// Transposition modes. Trans is conjugate-free transpose; for real scalars
/// ConjTrans and Trans coincide.
enum class Op { NoTrans, Trans, ConjTrans };

enum class Side { Left, Right };
enum class Uplo { Upper, Lower };
enum class Diag { NonUnit, Unit };

namespace detail {
template <typename T>
inline T apply_op(Op op, T x) noexcept {
  return op == Op::ConjTrans ? conj_if_complex(x) : x;
}
inline std::int64_t op_rows(Op op, std::int64_t r, std::int64_t c) noexcept {
  return op == Op::NoTrans ? r : c;
}
inline std::int64_t op_cols(Op op, std::int64_t r, std::int64_t c) noexcept {
  return op == Op::NoTrans ? c : r;
}
}  // namespace detail

/// C := alpha * op(A) * op(B) + beta * C
template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c);

/// B := alpha * op(A) * B (Side::Left) or alpha * B * op(A) (Side::Right),
/// with A triangular.
template <typename T>
void trmm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// C := C + alpha * op(A) * B with A triangular (multiply-accumulate variant
/// used by the TT kernels to exploit triangular structure).
template <typename T>
void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
              ConstMatrixView<T> b, MatrixView<T> c);

/// Solves op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right) with A triangular; X overwrites B.
template <typename T>
void trsm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// y := alpha * op(A) * x + beta * y (contiguous vectors).
template <typename T>
void gemv(Op opa, T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y);

/// A := A + alpha * x * y^H (rank-1 update, contiguous vectors).
template <typename T>
void ger(T alpha, const T* x, const T* y, MatrixView<T> a);

/// C := C + alpha * B (same shapes).
template <typename T>
void add(T alpha, ConstMatrixView<T> b, MatrixView<T> c);

/// B := alpha * B.
template <typename T>
void scale(T alpha, MatrixView<T> b);

/// B := 0.
template <typename T>
void set_zero(MatrixView<T> b);

// ---------------------------------------------------------------------------
// Flop counting (complex counted as 1 multiply = 6 flops, 1 add = 2 flops via
// the standard LAPACK convention of 4x real flops for a complex fma pair).

/// Flops of gemm with an m x n result and inner dimension k.
double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k, bool complex_scalar);

/// Flops of a full QR of an m x n matrix (2mn^2 - 2n^3/3 for real).
double geqrf_flops(std::int64_t m, std::int64_t n, bool complex_scalar);

}  // namespace tiledqr::blas

#include "blas/gemm_impl.hpp"
#include "blas/trmm_impl.hpp"

namespace tiledqr::blas {

// ---------------------------------------------------------------------------
// Forwarding overloads: template deduction does not consider the
// MatrixView -> ConstMatrixView conversion, so accept mutable views for
// read-only operands explicitly.

template <typename T>
inline void gemm(Op opa, Op opb, T alpha, MatrixView<T> a, MatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(opa, opb, alpha, ConstMatrixView<T>(a), ConstMatrixView<T>(b), beta, c);
}
template <typename T>
inline void gemm(Op opa, Op opb, T alpha, MatrixView<T> a, ConstMatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(opa, opb, alpha, ConstMatrixView<T>(a), b, beta, c);
}
template <typename T>
inline void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, MatrixView<T> b, T beta,
                 MatrixView<T> c) {
  gemm(opa, opb, alpha, a, ConstMatrixView<T>(b), beta, c);
}
template <typename T>
inline void trmm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, MatrixView<T> a,
                 MatrixView<T> b) {
  trmm(side, uplo, opa, diag, alpha, ConstMatrixView<T>(a), b);
}
template <typename T>
inline void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, MatrixView<T> a, MatrixView<T> b,
                     MatrixView<T> c) {
  trmm_acc(uplo, opa, diag, alpha, ConstMatrixView<T>(a), ConstMatrixView<T>(b), c);
}
template <typename T>
inline void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, MatrixView<T> a,
                     ConstMatrixView<T> b, MatrixView<T> c) {
  trmm_acc(uplo, opa, diag, alpha, ConstMatrixView<T>(a), b, c);
}
template <typename T>
inline void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
                     MatrixView<T> b, MatrixView<T> c) {
  trmm_acc(uplo, opa, diag, alpha, a, ConstMatrixView<T>(b), c);
}
template <typename T>
inline void trsm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, MatrixView<T> a,
                 MatrixView<T> b) {
  trsm(side, uplo, opa, diag, alpha, ConstMatrixView<T>(a), b);
}
template <typename T>
inline void gemv(Op opa, T alpha, MatrixView<T> a, const T* x, T beta, T* y) {
  gemv(opa, alpha, ConstMatrixView<T>(a), x, beta, y);
}
template <typename T>
inline void add(T alpha, MatrixView<T> b, MatrixView<T> c) {
  add(alpha, ConstMatrixView<T>(b), c);
}

}  // namespace tiledqr::blas
