// gemm / gemv / ger implementations.
//
// For real scalars the NN and (Conj)Trans x NoTrans paths — the hot loops of
// the update kernels — dispatch to the runtime-selected SIMD microkernels
// (blas/simd/simd.hpp: register-blocked, packed, FMA where the host has it).
// Complex scalars keep the generic loops: the NoTrans x NoTrans path
// processes four result columns per sweep over A so each A column is loaded
// once per four C columns; the inner loops are stride-1 and auto-vectorize.
#pragma once

#include <type_traits>

#include "blas/simd/simd.hpp"
#include "common/error.hpp"

namespace tiledqr::blas {

namespace detail {

template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  const std::int64_t m = c.rows();
  const std::int64_t n = c.cols();
  const std::int64_t k = a.cols();
  if constexpr (std::is_same_v<T, double>) {
    simd::ops().dgemm_nn(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld());
    return;
  } else if constexpr (std::is_same_v<T, float>) {
    simd::ops().sgemm_nn(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld());
    return;
  }
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    T* c0 = c.col(j);
    T* c1 = c.col(j + 1);
    T* c2 = c.col(j + 2);
    T* c3 = c.col(j + 3);
    for (std::int64_t l = 0; l < k; ++l) {
      const T* al = a.col(l);
      const T b0 = alpha * b(l, j);
      const T b1 = alpha * b(l, j + 1);
      const T b2 = alpha * b(l, j + 2);
      const T b3 = alpha * b(l, j + 3);
      for (std::int64_t i = 0; i < m; ++i) {
        const T av = al[i];
        c0[i] += b0 * av;
        c1[i] += b1 * av;
        c2[i] += b2 * av;
        c3[i] += b3 * av;
      }
    }
  }
  for (; j < n; ++j) {
    T* cj = c.col(j);
    for (std::int64_t l = 0; l < k; ++l) {
      const T bl = alpha * b(l, j);
      const T* al = a.col(l);
      for (std::int64_t i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

template <typename T>
void gemm_tn(Op opa, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  // c(i,j) += alpha * sum_l op(a(l,i)) * b(l,j); dot products over contiguous
  // columns of A and B.
  const std::int64_t m = c.rows();
  const std::int64_t n = c.cols();
  const std::int64_t k = a.rows();
  // For real scalars Trans and ConjTrans coincide, so every transposed-A
  // path can take the vectorized dot-product microkernel.
  if constexpr (std::is_same_v<T, double>) {
    simd::ops().dgemm_tn(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld());
    return;
  } else if constexpr (std::is_same_v<T, float>) {
    simd::ops().sgemm_tn(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), c.data(), c.ld());
    return;
  }
  const bool conj = (opa == Op::ConjTrans) && is_complex_v<T>;
  for (std::int64_t j = 0; j < n; ++j) {
    const T* bj = b.col(j);
    for (std::int64_t i = 0; i < m; ++i) {
      const T* ai = a.col(i);
      T acc = T(0);
      if (conj) {
        for (std::int64_t l = 0; l < k; ++l) acc += conj_if_complex(ai[l]) * bj[l];
      } else {
        for (std::int64_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      }
      c(i, j) += alpha * acc;
    }
  }
}

template <typename T>
void gemm_nt(Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  // c(:,j) += alpha * sum_l a(:,l) * op(b(j,l))
  const std::int64_t m = c.rows();
  const std::int64_t n = c.cols();
  const std::int64_t k = a.cols();
  for (std::int64_t j = 0; j < n; ++j) {
    T* cj = c.col(j);
    for (std::int64_t l = 0; l < k; ++l) {
      const T bl = alpha * apply_op(opb, b(j, l));
      const T* al = a.col(l);
      for (std::int64_t i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

template <typename T>
void gemm_tt(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
             MatrixView<T> c) {
  const std::int64_t m = c.rows();
  const std::int64_t n = c.cols();
  const std::int64_t k = a.rows();
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      T acc = T(0);
      for (std::int64_t l = 0; l < k; ++l)
        acc += apply_op(opa, a(l, i)) * apply_op(opb, b(j, l));
      c(i, j) += alpha * acc;
    }
  }
}

}  // namespace detail

template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  using detail::op_cols;
  using detail::op_rows;
  TILEDQR_CHECK(op_rows(opa, a.rows(), a.cols()) == c.rows(), "gemm: A/C row mismatch");
  TILEDQR_CHECK(op_cols(opb, b.rows(), b.cols()) == c.cols(), "gemm: B/C col mismatch");
  TILEDQR_CHECK(op_cols(opa, a.rows(), a.cols()) == op_rows(opb, b.rows(), b.cols()),
                "gemm: inner dimension mismatch");

  if (beta == T(0)) {
    for (std::int64_t j = 0; j < c.cols(); ++j) {
      T* cj = c.col(j);
      for (std::int64_t i = 0; i < c.rows(); ++i) cj[i] = T(0);
    }
  } else if (beta != T(1)) {
    for (std::int64_t j = 0; j < c.cols(); ++j) {
      T* cj = c.col(j);
      for (std::int64_t i = 0; i < c.rows(); ++i) cj[i] *= beta;
    }
  }
  if (alpha == T(0) || c.empty() || op_cols(opa, a.rows(), a.cols()) == 0) return;

  if (opa == Op::NoTrans && opb == Op::NoTrans) {
    detail::gemm_nn(alpha, a, b, c);
  } else if (opa != Op::NoTrans && opb == Op::NoTrans) {
    detail::gemm_tn(opa, alpha, a, b, c);
  } else if (opa == Op::NoTrans) {
    detail::gemm_nt(opb, alpha, a, b, c);
  } else {
    detail::gemm_tt(opa, opb, alpha, a, b, c);
  }
}

template <typename T>
void gemv(Op opa, T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y) {
  const std::int64_t m = a.rows();
  const std::int64_t n = a.cols();
  // BLAS semantics: beta == 0 OVERWRITES y — it must not read it, or NaN/Inf
  // in an uninitialized output buffer would survive the scaling (0 * NaN is
  // NaN, not 0).
  if (opa == Op::NoTrans) {
    if (beta == T(0)) {
      for (std::int64_t i = 0; i < m; ++i) y[i] = T(0);
    } else if (beta != T(1)) {
      scal(m, beta, y);
    }
    for (std::int64_t l = 0; l < n; ++l) axpy(m, alpha * x[l], a.col(l), y);
  } else if constexpr (!is_complex_v<T>) {
    // Real transpose path: scale/clear y, then batch the column dots through
    // the shared-x microkernel (x loaded once per four columns of A).
    if (beta == T(0)) {
      for (std::int64_t j = 0; j < n; ++j) y[j] = T(0);
    } else if (beta != T(1)) {
      scal(n, beta, y);
    }
    gemv_t_acc(m, n, alpha, a.data(), a.ld(), x, y);
  } else {
    for (std::int64_t j = 0; j < n; ++j) {
      T acc = T(0);
      const T* aj = a.col(j);
      if (opa == Op::ConjTrans) {
        acc = dotc(m, aj, x);
      } else {
        for (std::int64_t i = 0; i < m; ++i) acc += aj[i] * x[i];
      }
      y[j] = beta == T(0) ? alpha * acc : beta * y[j] + alpha * acc;
    }
  }
}

template <typename T>
void ger(T alpha, const T* x, const T* y, MatrixView<T> a) {
  if constexpr (!is_complex_v<T>) {
    ger_acc(a.rows(), a.cols(), alpha, x, y, a.data(), a.ld());
  } else {
    for (std::int64_t j = 0; j < a.cols(); ++j)
      axpy(a.rows(), alpha * conj_if_complex(y[j]), x, a.col(j));
  }
}

template <typename T>
void add(T alpha, ConstMatrixView<T> b, MatrixView<T> c) {
  TILEDQR_CHECK(b.rows() == c.rows() && b.cols() == c.cols(), "add: shape mismatch");
  for (std::int64_t j = 0; j < c.cols(); ++j) axpy(c.rows(), alpha, b.col(j), c.col(j));
}

template <typename T>
void scale(T alpha, MatrixView<T> b) {
  for (std::int64_t j = 0; j < b.cols(); ++j) scal(b.rows(), alpha, b.col(j));
}

template <typename T>
void set_zero(MatrixView<T> b) {
  for (std::int64_t j = 0; j < b.cols(); ++j) {
    T* bj = b.col(j);
    for (std::int64_t i = 0; i < b.rows(); ++i) bj[i] = T(0);
  }
}

}  // namespace tiledqr::blas
