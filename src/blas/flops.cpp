#include <cstdint>

#include "blas/blas.hpp"

namespace tiledqr::blas {

double gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k, bool complex_scalar) {
  double f = 2.0 * double(m) * double(n) * double(k);
  return complex_scalar ? 4.0 * f : f;
}

double geqrf_flops(std::int64_t m, std::int64_t n, bool complex_scalar) {
  double dm = double(m);
  double dn = double(n);
  double f = 2.0 * dm * dn * dn - (2.0 / 3.0) * dn * dn * dn;
  return complex_scalar ? 4.0 * f : f;
}

}  // namespace tiledqr::blas
