// NEON tier: 128-bit vectors (2 doubles / 4 floats per register). AArch64
// guarantees Advanced SIMD, so this TU needs no extra -m flags and the tier
// is available whenever it is compiled in.
#if defined(__aarch64__) || defined(__ARM_NEON)

#define TILEDQR_SIMD_NS neon
#define TILEDQR_SIMD_VBYTES 16
#define TILEDQR_SIMD_NAME "neon"
#define TILEDQR_SIMD_GETTER ops_neon

#include "blas/simd/microkernel_body.inc"

#else
#error "microkernel_neon.cpp is only meaningful on a NEON-capable target"
#endif
