// AVX2 + FMA tier: 256-bit vectors (4 doubles / 8 floats per register).
// Compiled with -mavx2 -mfma (CMakeLists.txt); nothing outside this TU may
// assume AVX2, and the dispatcher only installs this table after
// __builtin_cpu_supports confirms the host has both AVX2 and FMA.
#if defined(__AVX2__)

#define TILEDQR_SIMD_NS avx2
#define TILEDQR_SIMD_VBYTES 32
#define TILEDQR_SIMD_NAME "avx2"
#define TILEDQR_SIMD_GETTER ops_avx2

#include "blas/simd/microkernel_body.inc"

#else
#error "microkernel_avx2.cpp must be compiled with -mavx2 (see CMakeLists.txt)"
#endif
