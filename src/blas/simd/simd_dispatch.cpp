// Tier resolution: which microkernel table serves the process.
//
// Resolution order (first call to ops()/active_tier() decides, then it's one
// relaxed atomic load on the hot path):
//   1. TILEDQR_SIMD env override, if it names an available tier;
//   2. otherwise the highest tier that is both compiled in and supported by
//      the running CPU (checked with __builtin_cpu_supports on x86).
// An override naming an unavailable/unknown tier falls back to auto with a
// one-time stderr warning — serving a request with slower kernels beats
// refusing to start.
#include <atomic>
#include <cstdio>
#include <mutex>

#include "blas/simd/simd_tables.hpp"
#include "common/env.hpp"

namespace tiledqr::blas::simd {

namespace {

std::atomic<const Ops*> g_ops{nullptr};
std::atomic<int> g_tier{int(Tier::Scalar)};
std::mutex g_init_mutex;

const Ops* table_for(Tier t) noexcept {
  switch (t) {
    case Tier::Scalar:
      return &ops_scalar();
    case Tier::Neon:
#ifdef TILEDQR_SIMD_HAVE_NEON
      return &ops_neon();
#else
      return nullptr;
#endif
    case Tier::Avx2:
#ifdef TILEDQR_SIMD_HAVE_AVX2
      return &ops_avx2();
#else
      return nullptr;
#endif
    case Tier::Avx512:
#ifdef TILEDQR_SIMD_HAVE_AVX512
      return &ops_avx512();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool cpu_supports(Tier t) noexcept {
  switch (t) {
    case Tier::Scalar:
      return true;
    case Tier::Neon:
      // The NEON TU is only compiled for AArch64 targets, where Advanced
      // SIMD is architecturally guaranteed.
      return true;
    case Tier::Avx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Tier::Avx512:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

const Ops& init_and_get() noexcept {
  std::lock_guard<std::mutex> lock(g_init_mutex);
  const Ops* cur = g_ops.load(std::memory_order_relaxed);
  if (cur) return *cur;

  Tier pick = best_available_tier();
  if (auto env = env_string("TILEDQR_SIMD")) {
    Tier forced;
    if (parse_tier(env->c_str(), forced)) {
      if (tier_available(forced)) {
        pick = forced;
      } else {
        std::fprintf(stderr,
                     "tiledqr: TILEDQR_SIMD=%s names an unavailable dispatch tier "
                     "(not compiled in or unsupported by this CPU); using %s\n",
                     env->c_str(), tier_name(pick));
      }
    } else if (*env != "auto") {
      std::fprintf(stderr, "tiledqr: unrecognized TILEDQR_SIMD=%s; using %s\n", env->c_str(),
                   tier_name(pick));
    }
  }
  const Ops* table = table_for(pick);
  g_tier.store(int(pick), std::memory_order_relaxed);
  g_ops.store(table, std::memory_order_release);
  return *table;
}

}  // namespace

const Ops& ops() noexcept {
  const Ops* p = g_ops.load(std::memory_order_relaxed);
  return p ? *p : init_and_get();
}

Tier active_tier() noexcept {
  (void)ops();  // force resolution
  return Tier(g_tier.load(std::memory_order_relaxed));
}

bool tier_available(Tier t) noexcept { return table_for(t) != nullptr && cpu_supports(t); }

Tier best_available_tier() noexcept {
  for (int t = kNumTiers - 1; t >= 0; --t)
    if (tier_available(Tier(t))) return Tier(t);
  return Tier::Scalar;
}

std::vector<Tier> available_tiers() {
  std::vector<Tier> out;
  for (int t = 0; t < kNumTiers; ++t)
    if (tier_available(Tier(t))) out.push_back(Tier(t));
  return out;
}

bool set_tier(Tier t) noexcept {
  if (!tier_available(t)) return false;
  std::lock_guard<std::mutex> lock(g_init_mutex);
  g_tier.store(int(t), std::memory_order_relaxed);
  g_ops.store(table_for(t), std::memory_order_release);
  return true;
}

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::Scalar:
      return "scalar";
    case Tier::Neon:
      return "neon";
    case Tier::Avx2:
      return "avx2";
    case Tier::Avx512:
      return "avx512";
  }
  return "?";
}

bool parse_tier(const char* s, Tier& out) noexcept {
  for (int t = 0; t < kNumTiers; ++t) {
    const char* name = tier_name(Tier(t));
    const char* p = s;
    const char* q = name;
    while (*p && *q && *p == *q) ++p, ++q;
    if (!*p && !*q) {
      out = Tier(t);
      return true;
    }
  }
  return false;
}

}  // namespace tiledqr::blas::simd
