// Runtime-dispatched SIMD microkernels for the real-scalar BLAS hot loops.
//
// The templated BLAS layer (gemm_impl.hpp, vector.hpp, trmm_impl.hpp) stays
// generic over real and complex scalars; for float and double it routes its
// inner loops through the function table returned by `ops()`. The table is
// resolved once per process from (a) the instruction sets this binary was
// compiled with, (b) what the CPU actually supports, and (c) the
// TILEDQR_SIMD environment override (scalar|neon|avx2|avx512|auto).
//
// Each tier lives in its own translation unit compiled with that ISA's flags
// (see CMakeLists.txt), so the library binary stays portable: nothing outside
// the tier TU emits AVX instructions, and the scalar tier is always present.
//
// Tests and benches may switch the live table with `set_tier()` to compare
// dispatch paths inside one process. Results are deterministic per tier;
// across tiers they differ by documented rounding (FMA contraction and
// vector-lane reduction order), never by semantics.
#pragma once

#include <cstdint>
#include <vector>

namespace tiledqr::blas::simd {

/// Dispatch tiers, ordered from portable baseline to widest vectors. Ordering
/// is meaningful: the best available tier is the numerically largest one.
enum class Tier : int { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

inline constexpr int kNumTiers = 4;

/// The microkernel function table one tier exports. Raw-pointer, column-major
/// contracts (ld = leading dimension); alpha is folded into the update.
struct Ops {
  const char* name;

  /// y[i] += alpha * x[i]
  void (*daxpy)(std::int64_t n, double alpha, const double* x, double* y) noexcept;
  void (*saxpy)(std::int64_t n, float alpha, const float* x, float* y) noexcept;

  /// sum_i x[i] * y[i] (real dot; conjugation is a no-op for real scalars)
  double (*ddot)(std::int64_t n, const double* x, const double* y) noexcept;
  float (*sdot)(std::int64_t n, const float* x, const float* y) noexcept;

  /// C(m x n) += alpha * A(m x k) * B(k x n); register-blocked with
  /// cache-blocked packing of A into row panels.
  void (*dgemm_nn)(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                   const double* a, std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc);
  void (*sgemm_nn)(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                   const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                   float* c, std::int64_t ldc);

  /// C(m x n) += alpha * A(k x m)^T * B(k x n): dot-product shaped, the
  /// V^H C phase of the block reflectors.
  void (*dgemm_tn)(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                   const double* a, std::int64_t lda, const double* b, std::int64_t ldb,
                   double* c, std::int64_t ldc);
  void (*sgemm_tn)(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                   const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                   float* c, std::int64_t ldc);

  /// y[j] += alpha * dot(a(:,j), x) over n columns of length m: transposed
  /// gemv with x shared across every column, so the vector tiers load x once
  /// per four columns. The unblocked panel factorizations (geqr2, larft) are
  /// sequences of exactly this shape.
  void (*dgemv_t)(std::int64_t m, std::int64_t n, double alpha, const double* a,
                  std::int64_t lda, const double* x, double* y) noexcept;
  void (*sgemv_t)(std::int64_t m, std::int64_t n, float alpha, const float* a,
                  std::int64_t lda, const float* x, float* y) noexcept;

  /// c(:,j) += alpha * y[j] * x over n columns: rank-1 update with x shared
  /// across every column (the reflector-application half of geqr2).
  void (*dger)(std::int64_t m, std::int64_t n, double alpha, const double* x, const double* y,
               double* c, std::int64_t ldc) noexcept;
  void (*sger)(std::int64_t m, std::int64_t n, float alpha, const float* x, const float* y,
               float* c, std::int64_t ldc) noexcept;
};

/// The live table. First call resolves the tier (CPU detection + env
/// override); afterwards this is one relaxed atomic load.
[[nodiscard]] const Ops& ops() noexcept;

/// Tier the live table belongs to.
[[nodiscard]] Tier active_tier() noexcept;

/// Whether `t` was compiled into this binary AND is supported by this CPU.
[[nodiscard]] bool tier_available(Tier t) noexcept;

/// Highest available tier (what auto-dispatch picks absent an override).
[[nodiscard]] Tier best_available_tier() noexcept;

/// All available tiers, ascending (always contains Tier::Scalar).
[[nodiscard]] std::vector<Tier> available_tiers();

/// Swaps the live table; returns false (and leaves the table untouched) if
/// the tier is unavailable. Test/bench hook: flipping tiers mid-flight is
/// safe (atomic pointer swap) but concurrent callers may briefly mix tiers.
bool set_tier(Tier t) noexcept;

/// "scalar", "neon", "avx2", "avx512".
[[nodiscard]] const char* tier_name(Tier t) noexcept;

/// Parses a TILEDQR_SIMD value ("scalar"/"neon"/"avx2"/"avx512", case
/// sensitive); returns false for "auto", empty, or unrecognized values.
[[nodiscard]] bool parse_tier(const char* s, Tier& out) noexcept;

}  // namespace tiledqr::blas::simd
