// Scalar baseline tier: plain loops, compiled with the library's default
// flags only (no -m ISA options), so TILEDQR_SIMD=scalar reproduces the
// portable build's arithmetic exactly on every host. This is the reference
// the dispatch-equivalence tests compare the vector tiers against.
#include <cstdint>

#include "blas/simd/simd_tables.hpp"

namespace tiledqr::blas::simd {
namespace scalar {
namespace {

template <typename S>
void axpy_s(std::int64_t n, S alpha, const S* x, S* y) noexcept {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename S>
S dot_s(std::int64_t n, const S* x, const S* y) noexcept {
  S acc = S(0);
  for (std::int64_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// Four result columns per sweep over A (each A column loaded once per four
/// C columns); stride-1 inner loops. Mirrors the historic gemm_nn hot loop.
template <typename S>
void gemm_nn_s(std::int64_t m, std::int64_t n, std::int64_t k, S alpha, const S* a,
               std::int64_t lda, const S* b, std::int64_t ldb, S* c, std::int64_t ldc) {
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    S* c0 = c + j * ldc;
    S* c1 = c + (j + 1) * ldc;
    S* c2 = c + (j + 2) * ldc;
    S* c3 = c + (j + 3) * ldc;
    for (std::int64_t l = 0; l < k; ++l) {
      const S* al = a + l * lda;
      const S b0 = alpha * b[l + j * ldb];
      const S b1 = alpha * b[l + (j + 1) * ldb];
      const S b2 = alpha * b[l + (j + 2) * ldb];
      const S b3 = alpha * b[l + (j + 3) * ldb];
      for (std::int64_t i = 0; i < m; ++i) {
        const S av = al[i];
        c0[i] += b0 * av;
        c1[i] += b1 * av;
        c2[i] += b2 * av;
        c3[i] += b3 * av;
      }
    }
  }
  for (; j < n; ++j) {
    S* cj = c + j * ldc;
    for (std::int64_t l = 0; l < k; ++l) {
      const S bl = alpha * b[l + j * ldb];
      const S* al = a + l * lda;
      for (std::int64_t i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

template <typename S>
void gemm_tn_s(std::int64_t m, std::int64_t n, std::int64_t k, S alpha, const S* a,
               std::int64_t lda, const S* b, std::int64_t ldb, S* c, std::int64_t ldc) {
  for (std::int64_t j = 0; j < n; ++j) {
    const S* bj = b + j * ldb;
    for (std::int64_t i = 0; i < m; ++i) {
      const S* ai = a + i * lda;
      S acc = S(0);
      for (std::int64_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      c[i + j * ldc] += alpha * acc;
    }
  }
}

/// One dot per column, plain loops — the arithmetic order the unblocked
/// panel code had before the shared-x blocking existed.
template <typename S>
void gemv_t_s(std::int64_t m, std::int64_t n, S alpha, const S* a, std::int64_t lda,
              const S* x, S* y) noexcept {
  for (std::int64_t j = 0; j < n; ++j) y[j] += alpha * dot_s(m, a + j * lda, x);
}

template <typename S>
void ger_s(std::int64_t m, std::int64_t n, S alpha, const S* x, const S* y, S* c,
           std::int64_t ldc) noexcept {
  for (std::int64_t j = 0; j < n; ++j) axpy_s(m, alpha * y[j], x, c + j * ldc);
}

void daxpy_(std::int64_t n, double alpha, const double* x, double* y) noexcept {
  axpy_s(n, alpha, x, y);
}
void saxpy_(std::int64_t n, float alpha, const float* x, float* y) noexcept {
  axpy_s(n, alpha, x, y);
}
double ddot_(std::int64_t n, const double* x, const double* y) noexcept {
  return dot_s(n, x, y);
}
float sdot_(std::int64_t n, const float* x, const float* y) noexcept {
  return dot_s(n, x, y);
}
void dgemm_nn_(std::int64_t m, std::int64_t n, std::int64_t k, double alpha, const double* a,
               std::int64_t lda, const double* b, std::int64_t ldb, double* c,
               std::int64_t ldc) {
  gemm_nn_s(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}
void sgemm_nn_(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb, float* c,
               std::int64_t ldc) {
  gemm_nn_s(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}
void dgemm_tn_(std::int64_t m, std::int64_t n, std::int64_t k, double alpha, const double* a,
               std::int64_t lda, const double* b, std::int64_t ldb, double* c,
               std::int64_t ldc) {
  gemm_tn_s(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}
void sgemm_tn_(std::int64_t m, std::int64_t n, std::int64_t k, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb, float* c,
               std::int64_t ldc) {
  gemm_tn_s(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}
void dgemv_t_(std::int64_t m, std::int64_t n, double alpha, const double* a, std::int64_t lda,
              const double* x, double* y) noexcept {
  gemv_t_s(m, n, alpha, a, lda, x, y);
}
void sgemv_t_(std::int64_t m, std::int64_t n, float alpha, const float* a, std::int64_t lda,
              const float* x, float* y) noexcept {
  gemv_t_s(m, n, alpha, a, lda, x, y);
}
void dger_(std::int64_t m, std::int64_t n, double alpha, const double* x, const double* y,
           double* c, std::int64_t ldc) noexcept {
  ger_s(m, n, alpha, x, y, c, ldc);
}
void sger_(std::int64_t m, std::int64_t n, float alpha, const float* x, const float* y,
           float* c, std::int64_t ldc) noexcept {
  ger_s(m, n, alpha, x, y, c, ldc);
}

}  // namespace
}  // namespace scalar

const Ops& ops_scalar() noexcept {
  static const Ops table{
      "scalar",          scalar::daxpy_,    scalar::saxpy_,    scalar::ddot_,
      scalar::sdot_,     scalar::dgemm_nn_, scalar::sgemm_nn_, scalar::dgemm_tn_,
      scalar::sgemm_tn_, scalar::dgemv_t_,  scalar::sgemv_t_,  scalar::dger_,
      scalar::sger_,
  };
  return table;
}

}  // namespace tiledqr::blas::simd
