// Internal: per-tier table getters. Which vector tiers exist in this binary
// is a build-time fact — CMake adds a TILEDQR_SIMD_HAVE_* define for every
// per-ISA translation unit it compiles (see CMakeLists.txt), and only
// simd_dispatch.cpp consumes these declarations.
#pragma once

#include "blas/simd/simd.hpp"

namespace tiledqr::blas::simd {

const Ops& ops_scalar() noexcept;

#ifdef TILEDQR_SIMD_HAVE_AVX2
const Ops& ops_avx2() noexcept;
#endif

#ifdef TILEDQR_SIMD_HAVE_AVX512
const Ops& ops_avx512() noexcept;
#endif

#ifdef TILEDQR_SIMD_HAVE_NEON
const Ops& ops_neon() noexcept;
#endif

}  // namespace tiledqr::blas::simd
