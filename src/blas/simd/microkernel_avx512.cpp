// AVX-512 tier: 512-bit vectors (8 doubles / 16 floats per register).
// Compiled with -mavx512f -mavx512vl -mavx512dq -mfma (CMakeLists.txt); the
// dispatcher installs this table only after __builtin_cpu_supports confirms
// the host has the same feature set.
#if defined(__AVX512F__)

#define TILEDQR_SIMD_NS avx512
#define TILEDQR_SIMD_VBYTES 64
// Panel/level-1 kernels run at 256-bit (AVX-512VL encodings on ymm): the
// bursty short-vector work in the panel factorizations trips the 512-bit
// frequency license, which costs more than the extra lanes recover. The
// streaming GEMM loops keep the full 512-bit width where the license pays.
#define TILEDQR_SIMD_VBYTES_L1 32
#define TILEDQR_SIMD_NAME "avx512"
#define TILEDQR_SIMD_GETTER ops_avx512

#include "blas/simd/microkernel_body.inc"

#else
#error "microkernel_avx512.cpp must be compiled with -mavx512f (see CMakeLists.txt)"
#endif
