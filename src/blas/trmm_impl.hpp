// Triangular multiply / solve implementations.
//
// The Side::Left multiplies — the T-factor and V1 applications inside every
// block reflector — are written in axpy/dot form over contiguous column
// segments of A, so they ride the same SIMD dispatch as the level-1 layer
// (blas/vector.hpp). For real scalars they additionally process four B
// columns per sweep through the shared-x microkernels (gemv_t_acc/ger_acc):
// every step reuses one A-column segment across all four B columns, which is
// the memory-traffic lever that makes the k x k triangle work in larfb scale
// with the vector width instead of the hsum latency. Only the complex
// non-conjugating transpose keeps the elementwise fallback (dotc conjugates,
// so it cannot express Op::Trans on complex data).
#pragma once

#include "common/error.hpp"

namespace tiledqr::blas {

namespace detail {

template <typename T>
inline T tri_diag(ConstMatrixView<T> a, Diag diag, std::int64_t i, Op opa) {
  if (diag == Diag::Unit) return T(1);
  return apply_op(opa, a(i, i));
}

/// Whether op(A) on this scalar type is expressible with dotc: real scalars
/// always (conjugation is the identity), complex only under ConjTrans.
template <typename T>
inline bool dotc_expressible(Op opa) {
  return !is_complex_v<T> || opa == Op::ConjTrans;
}

}  // namespace detail

template <typename T>
void trmm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trmm: A must be square");
  TILEDQR_CHECK(side == Side::Left ? b.rows() == n : b.cols() == n, "trmm: shape mismatch");

  // Whether the operated matrix op(A) is effectively upper triangular.
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);

  if (side == Side::Left) {
    std::int64_t j0 = 0;
    if constexpr (!is_complex_v<T>) {
      // Real scalars: four B columns per sweep, each step sharing one
      // A-column segment across the four columns via the shared-x
      // microkernels. Per column the update order over steps is unchanged.
      const std::int64_t ldb = b.ld();
      for (; j0 + 4 <= b.cols(); j0 += 4) {
        T* b0 = b.col(j0);
        if (op_upper) {
          if (opa == Op::NoTrans) {
            // b := U b, axpy form over column prefixes (see the per-column
            // loop below); rank-1 prefix update shared across four columns.
            for (std::int64_t l = 0; l < n; ++l) {
              const T d = detail::tri_diag(a, diag, l, opa);
              T coef[4] = {b0[l], b0[l + ldb], b0[l + 2 * ldb], b0[l + 3 * ldb]};
              ger_acc(l, 4, T(1), a.col(l), coef, b0, ldb);
              b0[l] = d * coef[0];
              b0[l + ldb] = d * coef[1];
              b0[l + 2 * ldb] = d * coef[2];
              b0[l + 3 * ldb] = d * coef[3];
            }
            if (alpha != T(1))
              for (int t = 0; t < 4; ++t) scal(n, alpha, b0 + t * ldb);
          } else {
            // op(A) upper with A lower: column-tail dots, four at a time.
            for (std::int64_t i = 0; i < n; ++i) {
              const T d = detail::tri_diag(a, diag, i, opa);
              T acc[4] = {d * b0[i], d * b0[i + ldb], d * b0[i + 2 * ldb],
                          d * b0[i + 3 * ldb]};
              gemv_t_acc(n - i - 1, 4, T(1), b0 + i + 1, ldb, a.col(i) + i + 1, acc);
              b0[i] = alpha * acc[0];
              b0[i + ldb] = alpha * acc[1];
              b0[i + 2 * ldb] = alpha * acc[2];
              b0[i + 3 * ldb] = alpha * acc[3];
            }
          }
        } else {
          if (opa == Op::NoTrans) {
            // b := L b, axpy form over column tails, descending.
            for (std::int64_t l = n - 1; l >= 0; --l) {
              const T d = detail::tri_diag(a, diag, l, opa);
              T coef[4] = {b0[l], b0[l + ldb], b0[l + 2 * ldb], b0[l + 3 * ldb]};
              ger_acc(n - l - 1, 4, T(1), a.col(l) + l + 1, coef, b0 + l + 1, ldb);
              b0[l] = d * coef[0];
              b0[l + ldb] = d * coef[1];
              b0[l + 2 * ldb] = d * coef[2];
              b0[l + 3 * ldb] = d * coef[3];
            }
            if (alpha != T(1))
              for (int t = 0; t < 4; ++t) scal(n, alpha, b0 + t * ldb);
          } else {
            // op(A) lower with A upper: column-prefix dots, descending.
            for (std::int64_t i = n - 1; i >= 0; --i) {
              const T d = detail::tri_diag(a, diag, i, opa);
              T acc[4] = {d * b0[i], d * b0[i + ldb], d * b0[i + 2 * ldb],
                          d * b0[i + 3 * ldb]};
              gemv_t_acc(i, 4, T(1), b0, ldb, a.col(i), acc);
              b0[i] = alpha * acc[0];
              b0[i + ldb] = alpha * acc[1];
              b0[i + 2 * ldb] = alpha * acc[2];
              b0[i + 3 * ldb] = alpha * acc[3];
            }
          }
        }
      }
    }
    for (std::int64_t j = j0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      if (op_upper) {
        if (opa == Op::NoTrans) {
          // b := U b in axpy form over column prefixes of A: at step l, b[l]
          // is still the pre-multiply value (steps l' < l only wrote indices
          // <= l'), so it both seeds the axpy into rows [0, l) and collapses
          // to the diagonal contribution afterwards.
          for (std::int64_t l = 0; l < n; ++l) {
            const T coef = bj[l];
            axpy(l, coef, a.col(l), bj);
            bj[l] = detail::tri_diag(a, diag, l, opa) * coef;
          }
          if (alpha != T(1)) scal(n, alpha, bj);
        } else if (detail::dotc_expressible<T>(opa)) {
          // op(A) upper with A lower: column tails of A are contiguous dots.
          // Tail addressed via col() pointer arithmetic — on the last column
          // the tail is empty and &a(i + 1, i) would index past the view.
          for (std::int64_t i = 0; i < n; ++i) {
            T acc = detail::tri_diag(a, diag, i, opa) * bj[i] +
                    dotc(n - i - 1, a.col(i) + i + 1, bj + i + 1);
            bj[i] = alpha * acc;
          }
        } else {
          // new b_i depends on old b_l for l >= i: go top-down.
          for (std::int64_t i = 0; i < n; ++i) {
            T acc = detail::tri_diag(a, diag, i, opa) * bj[i];
            for (std::int64_t l = i + 1; l < n; ++l) acc += detail::apply_op(opa, a(l, i)) * bj[l];
            bj[i] = alpha * acc;
          }
        }
      } else {
        if (opa == Op::NoTrans) {
          // b := L b in axpy form over column tails, descending so b[l] is
          // still the pre-multiply value when it seeds step l.
          for (std::int64_t l = n - 1; l >= 0; --l) {
            const T coef = bj[l];
            axpy(n - l - 1, coef, a.col(l) + l + 1, bj + l + 1);
            bj[l] = detail::tri_diag(a, diag, l, opa) * coef;
          }
          if (alpha != T(1)) scal(n, alpha, bj);
        } else if (detail::dotc_expressible<T>(opa)) {
          // op(A) lower with A upper: column prefixes of A are contiguous.
          for (std::int64_t i = n - 1; i >= 0; --i) {
            T acc = detail::tri_diag(a, diag, i, opa) * bj[i] + dotc(i, a.col(i), bj);
            bj[i] = alpha * acc;
          }
        } else {
          // new b_i depends on old b_l for l <= i: go bottom-up.
          for (std::int64_t i = n - 1; i >= 0; --i) {
            T acc = detail::tri_diag(a, diag, i, opa) * bj[i];
            for (std::int64_t l = 0; l < i; ++l) acc += detail::apply_op(opa, a(l, i)) * bj[l];
            bj[i] = alpha * acc;
          }
        }
      }
    }
  } else {  // Side::Right: B := alpha * B * op(A)
    if (op_upper) {
      // new col j depends on old cols l <= j: go right-to-left.
      for (std::int64_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        scal(b.rows(), alpha * detail::tri_diag(a, diag, j, opa), bj);
        for (std::int64_t l = 0; l < j; ++l) {
          T coef = alpha * (opa == Op::NoTrans ? a(l, j) : detail::apply_op(opa, a(j, l)));
          axpy(b.rows(), coef, b.col(l), bj);
        }
      }
    } else {
      // new col j depends on old cols l >= j: go left-to-right.
      for (std::int64_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        scal(b.rows(), alpha * detail::tri_diag(a, diag, j, opa), bj);
        for (std::int64_t l = j + 1; l < n; ++l) {
          T coef = alpha * (opa == Op::NoTrans ? a(l, j) : detail::apply_op(opa, a(j, l)));
          axpy(b.rows(), coef, b.col(l), bj);
        }
      }
    }
  }
}

template <typename T>
void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              MatrixView<T> c) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trmm_acc: A must be square");
  TILEDQR_CHECK(b.rows() == n && c.rows() == n && b.cols() == c.cols(),
                "trmm_acc: shape mismatch");
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);
  std::int64_t j0 = 0;
  if constexpr (!is_complex_v<T>) {
    // Real scalars: four (b, c) column pairs per sweep sharing each
    // A-column segment (see trmm above).
    const std::int64_t ldb = b.ld();
    const std::int64_t ldc = c.ld();
    for (; j0 + 4 <= b.cols(); j0 += 4) {
      const T* b0 = b.col(j0);
      T* c0 = c.col(j0);
      if (opa == Op::NoTrans) {
        for (std::int64_t l = 0; l < n; ++l) {
          const T d = diag == Diag::Unit ? T(1) : a.col(l)[l];
          const T coef[4] = {b0[l], b0[l + ldb], b0[l + 2 * ldb], b0[l + 3 * ldb]};
          if (op_upper) {
            ger_acc(l, 4, alpha, a.col(l), coef, c0, ldc);
          } else {
            ger_acc(n - l - 1, 4, alpha, a.col(l) + l + 1, coef, c0 + l + 1, ldc);
          }
          c0[l] += alpha * d * coef[0];
          c0[l + ldc] += alpha * d * coef[1];
          c0[l + 2 * ldc] += alpha * d * coef[2];
          c0[l + 3 * ldc] += alpha * d * coef[3];
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          const T* ai = a.col(i);
          const T d = diag == Diag::Unit ? T(1) : ai[i];
          T acc[4] = {d * b0[i], d * b0[i + ldb], d * b0[i + 2 * ldb], d * b0[i + 3 * ldb]};
          if (op_upper) {
            gemv_t_acc(n - i - 1, 4, T(1), b0 + i + 1, ldb, ai + i + 1, acc);
          } else {
            gemv_t_acc(i, 4, T(1), b0, ldb, ai, acc);
          }
          c0[i] += alpha * acc[0];
          c0[i + ldc] += alpha * acc[1];
          c0[i + 2 * ldc] += alpha * acc[2];
          c0[i + 3 * ldc] += alpha * acc[3];
        }
      }
    }
  }
  for (std::int64_t j = j0; j < b.cols(); ++j) {
    const T* bj = b.col(j);
    T* cj = c.col(j);
    if (opa == Op::NoTrans) {
      // c(:,j) += alpha * A * b(:,j): axpy with columns of A restricted to
      // the triangle.
      for (std::int64_t l = 0; l < n; ++l) {
        const T coef = alpha * bj[l];
        const T* al = a.col(l);
        if (op_upper) {
          axpy(l, coef, al, cj);
          cj[l] += coef * (diag == Diag::Unit ? T(1) : al[l]);
        } else {
          cj[l] += coef * (diag == Diag::Unit ? T(1) : al[l]);
          axpy(n - l - 1, coef, al + l + 1, cj + l + 1);
        }
      }
    } else if (detail::dotc_expressible<T>(opa)) {
      // c(i,j) += alpha * (dot over the contiguous triangle segment of
      // column i, plus the diagonal term).
      for (std::int64_t i = 0; i < n; ++i) {
        const T* ai = a.col(i);
        T acc;
        if (op_upper) {
          // op(A) upper means A^H with A lower: a(l,i) nonzero for l >= i.
          acc = dotc(n - i - 1, ai + i + 1, bj + i + 1);
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        } else {
          acc = dotc(i, ai, bj);
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        }
        cj[i] += alpha * acc;
      }
    } else {
      // Complex Op::Trans: c(i,j) += alpha * sum over the triangle of
      // op(a(l,i)) * b(l,j).
      for (std::int64_t i = 0; i < n; ++i) {
        const T* ai = a.col(i);
        T acc = T(0);
        if (op_upper) {
          for (std::int64_t l = i + 1; l < n; ++l) acc += detail::apply_op(opa, ai[l]) * bj[l];
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        } else {
          for (std::int64_t l = 0; l < i; ++l) acc += detail::apply_op(opa, ai[l]) * bj[l];
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        }
        cj[i] += alpha * acc;
      }
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trsm: A must be square");
  TILEDQR_CHECK(side == Side::Left ? b.rows() == n : b.cols() == n, "trsm: shape mismatch");
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);

  auto op_elem = [&](std::int64_t i, std::int64_t l) -> T {
    return opa == Op::NoTrans ? a(i, l) : detail::apply_op(opa, a(l, i));
  };

  if (side == Side::Left) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      if (alpha != T(1)) scal(n, alpha, bj);
      if (op_upper) {
        for (std::int64_t i = n - 1; i >= 0; --i) {
          T acc = bj[i];
          for (std::int64_t l = i + 1; l < n; ++l) acc -= op_elem(i, l) * bj[l];
          bj[i] = diag == Diag::Unit ? acc : acc / op_elem(i, i);
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          T acc = bj[i];
          for (std::int64_t l = 0; l < i; ++l) acc -= op_elem(i, l) * bj[l];
          bj[i] = diag == Diag::Unit ? acc : acc / op_elem(i, i);
        }
      }
    }
  } else {
    // X * op(A) = alpha * B  =>  column solves over X columns.
    if (alpha != T(1)) scale(alpha, b);
    if (op_upper) {
      for (std::int64_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (std::int64_t l = 0; l < j; ++l) axpy(b.rows(), -op_elem(l, j), b.col(l), bj);
        if (diag == Diag::NonUnit) scal(b.rows(), T(1) / op_elem(j, j), bj);
      }
    } else {
      for (std::int64_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (std::int64_t l = j + 1; l < n; ++l) axpy(b.rows(), -op_elem(l, j), b.col(l), bj);
        if (diag == Diag::NonUnit) scal(b.rows(), T(1) / op_elem(j, j), bj);
      }
    }
  }
}

}  // namespace tiledqr::blas
