// Triangular multiply / solve implementations.
#pragma once

#include "common/error.hpp"

namespace tiledqr::blas {

namespace detail {

template <typename T>
inline T tri_diag(ConstMatrixView<T> a, Diag diag, std::int64_t i, Op opa) {
  if (diag == Diag::Unit) return T(1);
  return apply_op(opa, a(i, i));
}

}  // namespace detail

template <typename T>
void trmm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trmm: A must be square");
  TILEDQR_CHECK(side == Side::Left ? b.rows() == n : b.cols() == n, "trmm: shape mismatch");

  // Whether the operated matrix op(A) is effectively upper triangular.
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);

  if (side == Side::Left) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      if (op_upper) {
        // new b_i depends on old b_l for l >= i: go top-down.
        for (std::int64_t i = 0; i < n; ++i) {
          T acc = detail::tri_diag(a, diag, i, opa) * bj[i];
          if (opa == Op::NoTrans) {
            for (std::int64_t l = i + 1; l < n; ++l) acc += a(i, l) * bj[l];
          } else {
            for (std::int64_t l = i + 1; l < n; ++l) acc += detail::apply_op(opa, a(l, i)) * bj[l];
          }
          bj[i] = alpha * acc;
        }
      } else {
        // new b_i depends on old b_l for l <= i: go bottom-up.
        for (std::int64_t i = n - 1; i >= 0; --i) {
          T acc = detail::tri_diag(a, diag, i, opa) * bj[i];
          if (opa == Op::NoTrans) {
            for (std::int64_t l = 0; l < i; ++l) acc += a(i, l) * bj[l];
          } else {
            for (std::int64_t l = 0; l < i; ++l) acc += detail::apply_op(opa, a(l, i)) * bj[l];
          }
          bj[i] = alpha * acc;
        }
      }
    }
  } else {  // Side::Right: B := alpha * B * op(A)
    if (op_upper) {
      // new col j depends on old cols l <= j: go right-to-left.
      for (std::int64_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        scal(b.rows(), alpha * detail::tri_diag(a, diag, j, opa), bj);
        for (std::int64_t l = 0; l < j; ++l) {
          T coef = alpha * (opa == Op::NoTrans ? a(l, j) : detail::apply_op(opa, a(j, l)));
          axpy(b.rows(), coef, b.col(l), bj);
        }
      }
    } else {
      // new col j depends on old cols l >= j: go left-to-right.
      for (std::int64_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        scal(b.rows(), alpha * detail::tri_diag(a, diag, j, opa), bj);
        for (std::int64_t l = j + 1; l < n; ++l) {
          T coef = alpha * (opa == Op::NoTrans ? a(l, j) : detail::apply_op(opa, a(j, l)));
          axpy(b.rows(), coef, b.col(l), bj);
        }
      }
    }
  }
}

template <typename T>
void trmm_acc(Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              MatrixView<T> c) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trmm_acc: A must be square");
  TILEDQR_CHECK(b.rows() == n && c.rows() == n && b.cols() == c.cols(),
                "trmm_acc: shape mismatch");
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);
  for (std::int64_t j = 0; j < b.cols(); ++j) {
    const T* bj = b.col(j);
    T* cj = c.col(j);
    if (opa == Op::NoTrans) {
      // c(:,j) += alpha * A * b(:,j): axpy with columns of A restricted to
      // the triangle.
      for (std::int64_t l = 0; l < n; ++l) {
        const T coef = alpha * bj[l];
        const T* al = a.col(l);
        if (op_upper) {
          for (std::int64_t i = 0; i < l; ++i) cj[i] += coef * al[i];
          cj[l] += coef * (diag == Diag::Unit ? T(1) : al[l]);
        } else {
          cj[l] += coef * (diag == Diag::Unit ? T(1) : al[l]);
          for (std::int64_t i = l + 1; i < n; ++i) cj[i] += coef * al[i];
        }
      }
    } else {
      // c(i,j) += alpha * sum over the triangle of op(a(l,i)) * b(l,j).
      for (std::int64_t i = 0; i < n; ++i) {
        const T* ai = a.col(i);
        T acc = T(0);
        if (op_upper) {
          // op(A) upper means A^H with A lower: a(l,i) nonzero for l >= i.
          for (std::int64_t l = i + 1; l < n; ++l) acc += detail::apply_op(opa, ai[l]) * bj[l];
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        } else {
          for (std::int64_t l = 0; l < i; ++l) acc += detail::apply_op(opa, ai[l]) * bj[l];
          acc += (diag == Diag::Unit ? T(1) : detail::apply_op(opa, ai[i])) * bj[i];
        }
        cj[i] += alpha * acc;
      }
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Op opa, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const std::int64_t n = a.rows();
  TILEDQR_CHECK(a.rows() == a.cols(), "trsm: A must be square");
  TILEDQR_CHECK(side == Side::Left ? b.rows() == n : b.cols() == n, "trsm: shape mismatch");
  const bool op_upper = (uplo == Uplo::Upper) == (opa == Op::NoTrans);

  auto op_elem = [&](std::int64_t i, std::int64_t l) -> T {
    return opa == Op::NoTrans ? a(i, l) : detail::apply_op(opa, a(l, i));
  };

  if (side == Side::Left) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      if (alpha != T(1)) scal(n, alpha, bj);
      if (op_upper) {
        for (std::int64_t i = n - 1; i >= 0; --i) {
          T acc = bj[i];
          for (std::int64_t l = i + 1; l < n; ++l) acc -= op_elem(i, l) * bj[l];
          bj[i] = diag == Diag::Unit ? acc : acc / op_elem(i, i);
        }
      } else {
        for (std::int64_t i = 0; i < n; ++i) {
          T acc = bj[i];
          for (std::int64_t l = 0; l < i; ++l) acc -= op_elem(i, l) * bj[l];
          bj[i] = diag == Diag::Unit ? acc : acc / op_elem(i, i);
        }
      }
    }
  } else {
    // X * op(A) = alpha * B  =>  column solves over X columns.
    if (alpha != T(1)) scale(alpha, b);
    if (op_upper) {
      for (std::int64_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (std::int64_t l = 0; l < j; ++l) axpy(b.rows(), -op_elem(l, j), b.col(l), bj);
        if (diag == Diag::NonUnit) scal(b.rows(), T(1) / op_elem(j, j), bj);
      }
    } else {
      for (std::int64_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (std::int64_t l = j + 1; l < n; ++l) axpy(b.rows(), -op_elem(l, j), b.col(l), bj);
        if (diag == Diag::NonUnit) scal(b.rows(), T(1) / op_elem(j, j), bj);
      }
    }
  }
}

}  // namespace tiledqr::blas
