#include "trees/coarse.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tiledqr::trees {

namespace {

std::vector<std::vector<int>> zero_steps(int p, int q) {
  return std::vector<std::vector<int>>(size_t(p), std::vector<int>(size_t(q), 0));
}

/// Sorts a column's eliminations by step (stable on row order) and appends
/// them column-major to the final list.
void finalize(CoarseSchedule& s) {
  std::stable_sort(s.list.begin(), s.list.end(), [](const Elimination& a, const Elimination& b) {
    return a.col != b.col ? a.col < b.col : false;
  });
  for (const auto& r : s.step)
    for (int v : r) s.makespan = std::max(s.makespan, v);
}

}  // namespace

int fibonacci_x(int p) {
  TILEDQR_CHECK(p >= 1, "fibonacci_x: p must be >= 1");
  int x = 0;
  while (x * (x + 1) / 2 < p - 1) ++x;
  return x;
}

CoarseSchedule coarse_sameh_kuck(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "coarse_sameh_kuck: bad dimensions");
  CoarseSchedule s{p, q, zero_steps(p, q), {}, 0};
  const int kc = std::min(p, q);
  // c(i,k) = max(row i ready, pivot row k ready, pivot free) + 1.
  for (int k = 0; k < kc; ++k) {
    for (int i = k + 1; i < p; ++i) {
      int row_ready = k > 0 ? s.step[size_t(i)][size_t(k - 1)] : 0;
      int piv_ready = k > 0 ? s.step[size_t(k)][size_t(k - 1)] : 0;
      int piv_free = i > k + 1 ? s.step[size_t(i - 1)][size_t(k)] : 0;
      s.step[size_t(i)][size_t(k)] = std::max({row_ready, piv_ready, piv_free}) + 1;
      s.list.push_back({i, k, k, false});
    }
  }
  finalize(s);
  return s;
}

CoarseSchedule coarse_fibonacci(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "coarse_fibonacci: bad dimensions");
  CoarseSchedule s{p, q, zero_steps(p, q), {}, 0};
  const int x = fibonacci_x(p);
  // Column 0 (paper's column 1, 1-based rows): coarse(i, 1) = x - y + 1 where
  // y is least with i <= y(y+1)/2 + 1 (1-based i).
  auto col1_step = [&](int i /*0-based row*/) {
    int i1 = i + 1;  // 1-based
    int y = 0;
    while (i1 > y * (y + 1) / 2 + 1) ++y;
    return x - y + 1;
  };
  const int kc = std::min(p, q);
  for (int k = 0; k < kc; ++k) {
    // Column k's scheme is column 0 shifted down by k rows, +2k time units.
    for (int i = k + 1; i < p; ++i)
      s.step[size_t(i)][size_t(k)] = col1_step(i - k) + 2 * k;
    // Pair each group of z tiles zeroed at the same step with the z rows
    // directly above the group.
    for (int st = 1; st <= x + 2 * k; ++st) {
      int lo = p, hi = -1;
      for (int i = k + 1; i < p; ++i)
        if (s.step[size_t(i)][size_t(k)] == st) {
          lo = std::min(lo, i);
          hi = std::max(hi, i);
        }
      if (hi < 0) continue;
      int z = hi - lo + 1;
      for (int i = lo; i <= hi; ++i) s.list.push_back({i, i - z, k, false});
    }
  }
  finalize(s);
  return s;
}

CoarseSchedule coarse_greedy(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "coarse_greedy: bad dimensions");
  CoarseSchedule s{p, q, zero_steps(p, q), {}, 0};
  const int kc = std::min(p, q);
  // zeros[i]: number of leading zeroed columns of row i; done_step[i]: step at
  // which that count was reached (the row is busy during that step).
  std::vector<int> zeros(size_t(p), 0);
  std::vector<int> done_step(size_t(p), 0);
  long remaining = 0;
  for (int k = 0; k < kc; ++k) remaining += p - 1 - k;

  // Column-major list assembly: collect per-column, ordered by step.
  std::vector<EliminationList> per_col(static_cast<size_t>(kc));
  for (int step = 1; remaining > 0; ++step) {
    TILEDQR_CHECK(step < 4 * (p + q) + 16, "coarse_greedy: no progress (bug)");
    // Rows with exactly k zeros are only usable in column k, so columns are
    // independent within a step.
    for (int k = 0; k < kc; ++k) {
      std::vector<int> ready;
      for (int i = k; i < p; ++i)
        if (zeros[size_t(i)] == k && done_step[size_t(i)] < step) ready.push_back(i);
      int z = int(ready.size()) / 2;
      if (z == 0) continue;
      // Eliminate the bottom z ready rows with the z rows directly above
      // them (in ready order); the topmost ready rows stay untouched.
      int m = int(ready.size());
      for (int j = 0; j < z; ++j) {
        int victim = ready[size_t(m - z + j)];
        int pivot = ready[size_t(m - 2 * z + j)];
        s.step[size_t(victim)][size_t(k)] = step;
        per_col[size_t(k)].push_back({victim, pivot, k, false});
        zeros[size_t(victim)] = k + 1;
        done_step[size_t(victim)] = step;
        done_step[size_t(pivot)] = step;
        --remaining;
      }
    }
  }
  for (auto& col : per_col)
    for (const auto& e : col) s.list.push_back(e);
  finalize(s);
  return s;
}

CoarseSchedule coarse_binary(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "coarse_binary: bad dimensions");
  CoarseSchedule s{p, q, zero_steps(p, q), {}, 0};
  const int kc = std::min(p, q);
  for (int k = 0; k < kc; ++k) {
    // Level l pairs rows k + j*2^(l+1) (pivot) and k + j*2^(l+1) + 2^l.
    int base = k > 0 ? s.step[size_t(k)][size_t(k - 1)] : 0;
    // In the coarse model a row is ready one step after its previous-column
    // elimination; binary levels proceed sequentially afterwards. We compute
    // times via the generic recurrence instead of a closed form.
    for (int l = 0; (1 << l) <= p - 1 - k; ++l) {
      for (int j = 0;; ++j) {
        int piv = k + j * (1 << (l + 1));
        int victim = piv + (1 << l);
        if (victim >= p) break;
        int row_ready = k > 0 ? s.step[size_t(victim)][size_t(k - 1)] : 0;
        int piv_ready = k > 0 ? s.step[size_t(piv)][size_t(k - 1)] : 0;
        int piv_free = 0, row_free = 0;
        // The pivot/victim may have been used at lower levels of this column.
        for (const auto& e : s.list)
          if (e.col == k) {
            if (e.piv == piv || e.row == piv) piv_free = std::max(piv_free, s.step[size_t(e.row)][size_t(k)]);
            if (e.piv == victim || e.row == victim)
              row_free = std::max(row_free, s.step[size_t(e.row)][size_t(k)]);
          }
        s.step[size_t(victim)][size_t(k)] =
            std::max({row_ready, piv_ready, piv_free, row_free, base}) + 1;
        s.list.push_back({victim, piv, k, false});
      }
    }
  }
  finalize(s);
  return s;
}

}  // namespace tiledqr::trees
