#include "trees/generators.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stringf.hpp"

namespace tiledqr::trees {

std::string TreeConfig::name() const {
  const char* fam = family == KernelFamily::TS ? "TS" : "TT";
  switch (kind) {
    case TreeKind::FlatTree: return stringf("FlatTree(%s)", fam);
    case TreeKind::BinaryTree: return "BinaryTree";
    case TreeKind::Fibonacci: return "Fibonacci";
    case TreeKind::Greedy: return "Greedy";
    case TreeKind::PlasmaTree: return stringf("PlasmaTree(%s,BS=%d)", fam, bs);
    case TreeKind::HadriTree:
      return stringf("Hadri-%s(BS=%d)", family == KernelFamily::TS ? "SP" : "FP", bs);
    case TreeKind::Asap: return "Asap";
    case TreeKind::Grasap: return stringf("Grasap(%d)", grasap_k);
  }
  return "?";
}

bool is_dynamic(TreeKind kind) noexcept {
  return kind == TreeKind::Asap || kind == TreeKind::Grasap;
}

EliminationList flat_tree(int p, int q, KernelFamily family) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "flat_tree: bad dimensions");
  EliminationList list;
  const bool ts = family == KernelFamily::TS;
  for (int k = 0; k < std::min(p, q); ++k)
    for (int i = k + 1; i < p; ++i) list.push_back({i, k, k, ts});
  return list;
}

EliminationList binary_tree(int p, int q) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "binary_tree: bad dimensions");
  EliminationList list;
  for (int k = 0; k < std::min(p, q); ++k) {
    for (int l = 0; (1 << l) <= p - 1 - k; ++l) {
      for (int j = 0;; ++j) {
        const int piv = k + j * (1 << (l + 1));
        const int victim = piv + (1 << l);
        if (victim >= p) break;
        list.push_back({victim, piv, k, false});
      }
    }
  }
  return list;
}

EliminationList fibonacci_tree(int p, int q) { return coarse_fibonacci(p, q).list; }

EliminationList greedy_tree(int p, int q) { return coarse_greedy(p, q).list; }

EliminationList plasma_tree(int p, int q, int bs, KernelFamily family) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "plasma_tree: bad dimensions");
  TILEDQR_CHECK(bs >= 1, "plasma_tree: domain size must be >= 1");
  EliminationList list;
  const bool ts = family == KernelFamily::TS;
  for (int k = 0; k < std::min(p, q); ++k) {
    // Domains of bs consecutive rows anchored at the panel row k.
    std::vector<int> heads;
    for (int h = k; h < p; h += bs) {
      heads.push_back(h);
      for (int i = h + 1; i < std::min(p, h + bs); ++i) list.push_back({i, h, k, ts});
    }
    // Binary-tree merge of the domain heads (TT kernels: triangle pairs).
    for (int l = 0; (1 << l) < int(heads.size()); ++l) {
      for (size_t j = 0; j + (size_t(1) << l) < heads.size(); j += size_t(1) << (l + 1)) {
        list.push_back({heads[j + (size_t(1) << l)], heads[j], k, false});
      }
    }
  }
  return list;
}

EliminationList hadri_tree(int p, int q, int bs, KernelFamily family) {
  TILEDQR_CHECK(p >= 1 && q >= 1, "hadri_tree: bad dimensions");
  TILEDQR_CHECK(bs >= 1, "hadri_tree: domain size must be >= 1");
  EliminationList list;
  const bool ts = family == KernelFamily::TS;
  for (int k = 0; k < std::min(p, q); ++k) {
    // Fixed domain boundaries [d*bs, (d+1)*bs); the top one is truncated to
    // start at the panel row.
    std::vector<int> heads;
    for (int d0 = 0; d0 < p; d0 += bs) {
      const int lo = std::max(d0, k);
      const int hi = std::min(p, d0 + bs);
      if (lo >= hi) continue;
      heads.push_back(lo);
      for (int i = lo + 1; i < hi; ++i) list.push_back({i, lo, k, ts});
    }
    for (int l = 0; (1 << l) < int(heads.size()); ++l)
      for (size_t j = 0; j + (size_t(1) << l) < heads.size(); j += size_t(1) << (l + 1))
        list.push_back({heads[j + (size_t(1) << l)], heads[j], k, false});
  }
  return list;
}

EliminationList make_static_elimination_list(int p, int q, const TreeConfig& config) {
  TILEDQR_CHECK(!is_dynamic(config.kind),
                "make_static_elimination_list: Asap/Grasap are dynamic; use the simulator");
  switch (config.kind) {
    case TreeKind::FlatTree: return flat_tree(p, q, config.family);
    case TreeKind::BinaryTree: return binary_tree(p, q);
    case TreeKind::Fibonacci: return fibonacci_tree(p, q);
    case TreeKind::Greedy: return greedy_tree(p, q);
    case TreeKind::PlasmaTree: return plasma_tree(p, q, config.bs, config.family);
    case TreeKind::HadriTree: return hadri_tree(p, q, config.bs, config.family);
    default: break;
  }
  throw Error("make_static_elimination_list: unknown tree kind");
}

}  // namespace tiledqr::trees
