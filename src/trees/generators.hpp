// Static elimination-list generators for the tiled algorithms (paper §3.2).
// Asap and Grasap are dynamic and produced by the simulator (sim/dynamic.hpp).
#pragma once

#include "trees/coarse.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::trees {

/// FlatTree (= tiled Sameh-Kuck): pivot is the panel row for every
/// elimination; TS or TT kernels.
[[nodiscard]] EliminationList flat_tree(int p, int q, KernelFamily family);

/// BinaryTree: binomial reduction in every column (TT kernels).
[[nodiscard]] EliminationList binary_tree(int p, int q);

/// Tiled Fibonacci: the coarse Fibonacci elimination list executed with TT
/// kernels.
[[nodiscard]] EliminationList fibonacci_tree(int p, int q);

/// Tiled Greedy (Algorithm 4): the coarse Greedy elimination list executed
/// with TT kernels.
[[nodiscard]] EliminationList greedy_tree(int p, int q);

/// PlasmaTree with domain size bs: within each domain of bs consecutive rows
/// a flat tree reduces onto the domain head (TS or TT kernels); domain heads
/// are merged by a binary tree (always TT kernels). Domains are anchored at
/// the panel row, so the bottom domain shrinks as the factorization proceeds
/// (PLASMA's convention).
[[nodiscard]] EliminationList plasma_tree(int p, int q, int bs, KernelFamily family);

/// The Semi-Parallel (TS) / Fully-Parallel (TT) tile CAQR of Hadri et al.
/// [10, 11]: same flat-trees-merged-by-binary-tree structure as PlasmaTree,
/// but domain boundaries are fixed multiples of bs from row 0, so the TOP
/// domain shrinks as the factorization proceeds through the columns.
[[nodiscard]] EliminationList hadri_tree(int p, int q, int bs, KernelFamily family);

/// Dispatches on config.kind for the static algorithms; throws for dynamic
/// kinds (Asap/Grasap) — use sim::simulate_dynamic for those.
[[nodiscard]] EliminationList make_static_elimination_list(int p, int q,
                                                           const TreeConfig& config);

}  // namespace tiledqr::trees
