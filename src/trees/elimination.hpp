// Elimination lists: the formal description of a tiled QR algorithm
// (paper §2.2). An algorithm is an ordered list of elim(i, piv(i,k), k)
// operations, each implemented with either TT or TS kernels.
#pragma once

#include <string>
#include <vector>

namespace tiledqr::trees {

/// Kernel family used to implement an elimination (paper §2.1).
enum class KernelFamily { TT, TS };

/// One zeroing operation elim(i, piv, k): tile (row, col) is zeroed against
/// pivot row `piv`. All indices 0-based. `ts` selects the TS kernel pair
/// (TSQRT/TSMQR); otherwise the TT pair (TTQRT/TTMQR) is used.
struct Elimination {
  int row;
  int piv;
  int col;
  bool ts = false;

  friend bool operator==(const Elimination&, const Elimination&) = default;
};

using EliminationList = std::vector<Elimination>;

/// The algorithms studied in the paper.
enum class TreeKind {
  FlatTree,    ///< Sameh-Kuck: pivot = panel row (PLASMA's original scheme)
  BinaryTree,  ///< binomial reduction per column
  Fibonacci,   ///< Modi-Clarke Fibonacci scheme of order 1
  Greedy,      ///< Cosnard-Muller-Robert greedy coarse schedule
  PlasmaTree,  ///< flat-tree domains of size BS merged by a binary tree
  HadriTree,   ///< Hadri et al. [10,11]: like PlasmaTree but with domains
               ///< anchored at the bottom (the TOP domain shrinks); the
               ///< TS family is their Semi-Parallel algorithm, the TT
               ///< family their Fully-Parallel one
  Asap,        ///< dynamic: eliminate as soon as two rows are ready (§3.2)
  Grasap,      ///< Greedy for the first q-k columns, Asap for the last k
};

/// Full algorithm selection.
struct TreeConfig {
  TreeKind kind = TreeKind::Greedy;
  KernelFamily family = KernelFamily::TT;
  int bs = 1;         ///< PlasmaTree domain size (1 = binary tree, p = flat tree)
  int grasap_k = 1;   ///< Grasap: number of trailing columns run in Asap mode

  /// Human-readable name, e.g. "Greedy", "PlasmaTree(TS,BS=5)".
  [[nodiscard]] std::string name() const;

  /// Structural equality; the plan cache keys on (p, q, TreeConfig).
  friend bool operator==(const TreeConfig&, const TreeConfig&) = default;
};

/// True for algorithms whose elimination list depends on the weighted tiled
/// execution (Asap, Grasap): their lists are produced by the simulator.
[[nodiscard]] bool is_dynamic(TreeKind kind) noexcept;

/// Result of elimination-list validation.
struct ValidationResult {
  bool ok = true;
  std::string message;
};

/// Checks the two validity conditions of §2.2 plus coverage: every
/// sub-diagonal tile zeroed exactly once, rows ready before use, pivot not
/// yet zeroed, and TS eliminations never target an already-triangularized
/// tile.
[[nodiscard]] ValidationResult validate_elimination_list(int p, int q,
                                                         const EliminationList& list);

/// Lemma 1: rewrites the list so that every elimination satisfies
/// row > piv (no "reverse" eliminations), preserving the execution time.
[[nodiscard]] EliminationList remove_reverse_eliminations(int p, int q, EliminationList list);

}  // namespace tiledqr::trees
