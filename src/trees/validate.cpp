#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/stringf.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::trees {

ValidationResult validate_elimination_list(int p, int q, const EliminationList& list) {
  auto fail = [](std::string msg) { return ValidationResult{false, std::move(msg)}; };
  const int kc = std::min(p, q);

  // Position of each tile's elimination.
  std::vector<std::vector<long>> pos(size_t(p), std::vector<long>(size_t(kc), -1));
  long t = 0;
  for (const auto& e : list) {
    if (e.col < 0 || e.col >= kc)
      return fail(stringf("entry %ld: column %d out of range", t, e.col));
    if (e.row <= e.col || e.row >= p)
      return fail(stringf("entry %ld: row %d invalid for column %d", t, e.row, e.col));
    if (e.piv < e.col || e.piv >= p || e.piv == e.row)
      return fail(stringf("entry %ld: pivot %d invalid for column %d", t, e.piv, e.col));
    if (pos[size_t(e.row)][size_t(e.col)] >= 0)
      return fail(stringf("tile (%d,%d) eliminated twice", e.row, e.col));
    pos[size_t(e.row)][size_t(e.col)] = t;
    ++t;
  }
  for (int k = 0; k < kc; ++k)
    for (int i = k + 1; i < p; ++i)
      if (pos[size_t(i)][size_t(k)] < 0)
        return fail(stringf("tile (%d,%d) never eliminated", i, k));

  t = 0;
  std::vector<std::vector<char>> triangular(size_t(p), std::vector<char>(size_t(kc), 0));
  for (const auto& e : list) {
    // Condition 1: both rows ready (all tiles to the left already zeroed).
    for (int kk = 0; kk < e.col; ++kk) {
      if (pos[size_t(e.row)][size_t(kk)] > t)
        return fail(stringf("entry %ld: row %d not ready in column %d (tile (%d,%d) "
                            "zeroed later)",
                            t, e.row, e.col, e.row, kk));
      if (pos[size_t(e.piv)][size_t(kk)] > t)
        return fail(stringf("entry %ld: pivot row %d not ready in column %d", t, e.piv, e.col));
    }
    // Condition 2: the pivot must still be a potential annihilator.
    if (e.piv > e.col && pos[size_t(e.piv)][size_t(e.col)] < t)
      return fail(stringf("entry %ld: pivot tile (%d,%d) already zeroed", t, e.piv, e.col));
    // TS eliminations must target a tile that is still a full square.
    if (e.ts && triangular[size_t(e.row)][size_t(e.col)])
      return fail(stringf("entry %ld: TS elimination of triangularized tile (%d,%d)", t, e.row,
                          e.col));
    triangular[size_t(e.piv)][size_t(e.col)] = 1;
    if (!e.ts) triangular[size_t(e.row)][size_t(e.col)] = 1;
    ++t;
  }
  return {true, {}};
}

EliminationList remove_reverse_eliminations(int p, int q, EliminationList list) {
  const int kc = std::min(p, q);
  for (int k = 0; k < kc; ++k) {
    for (long guard = 0;; ++guard) {
      TILEDQR_CHECK(guard <= long(p) * long(p) + 8, "remove_reverse_eliminations: no progress");
      // Largest row index serving as the pivot of a reverse elimination.
      int i0 = -1;
      for (const auto& e : list)
        if (e.col == k && e.row < e.piv) i0 = std::max(i0, e.piv);
      if (i0 < 0) break;
      // In list order: the eliminations using pivot i0 in column k, then the
      // elimination of i0 itself. Exchange the roles of i0 and the first
      // paired row i1 (paper Lemma 1).
      int i1 = -1;
      for (auto& e : list) {
        if (e.col != k) continue;
        if (e.piv == i0) {
          if (i1 < 0) {
            i1 = e.row;
            e.row = i0;  // elim(i1, i0, k) -> elim(i0, i1, k)
            e.piv = i1;
          } else {
            e.piv = i1;  // elim(ij, i0, k) -> elim(ij, i1, k)
          }
        } else if (e.row == i0 && i1 >= 0) {
          e.row = i1;  // elim(i0, piv0, k) -> elim(i1, piv0, k)
        }
      }
    }
  }
  return list;
}

}  // namespace tiledqr::trees
