// The coarse-grain model (paper §3.1): one elimination across two rows costs
// one time unit, regardless of row length. These schedules both reproduce
// Table 2 and provide the elimination orderings (with row pairings) that the
// tiled Fibonacci and Greedy algorithms inherit.
#pragma once

#include <vector>

#include "trees/elimination.hpp"

namespace tiledqr::trees {

/// A coarse-grain schedule: per-tile elimination time-steps plus the ordered,
/// paired elimination list.
struct CoarseSchedule {
  int p = 0;
  int q = 0;
  /// step[i][k] = coarse time-step at which tile (i,k) is zeroed (1-based
  /// steps as in Table 2); 0 for tiles on/above the diagonal.
  std::vector<std::vector<int>> step;
  /// Ordered column-major elimination list consistent with `step`.
  EliminationList list;
  /// max step = coarse critical path.
  int makespan = 0;
};

/// Least x such that x(x+1)/2 >= p - 1 (the paper's `x` for Fibonacci).
[[nodiscard]] int fibonacci_x(int p);

/// Sameh-Kuck (flat tree): all eliminations in column k use pivot row k.
/// Coarse critical path: p + q - 2 (p > q), 2q - 3 (p == q).
[[nodiscard]] CoarseSchedule coarse_sameh_kuck(int p, int q);

/// Fibonacci scheme of order 1 (Modi & Clarke): closed-form time-steps;
/// z simultaneous eliminations are paired with the z rows just above.
[[nodiscard]] CoarseSchedule coarse_fibonacci(int p, int q);

/// Greedy: at each step eliminate as many tiles as possible per column,
/// bottom-up; optimal in the coarse model.
[[nodiscard]] CoarseSchedule coarse_greedy(int p, int q);

/// Binary (binomial) tree per column, for completeness.
[[nodiscard]] CoarseSchedule coarse_binary(int p, int q);

}  // namespace tiledqr::trees
