// printf-style std::string formatting (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <string>

namespace tiledqr {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string stringf(const char* fmt, ...);

/// vprintf-style variant.
std::string vstringf(const char* fmt, std::va_list args);

}  // namespace tiledqr
