#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace tiledqr {

std::string TextTable::str() const {
  std::vector<size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << row[i];
      if (i + 1 < row.size()) os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str() << "\n"; }

}  // namespace tiledqr
