// Wall-clock timing helper used by the perf harness and the benches.
#pragma once

#include <chrono>

namespace tiledqr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tiledqr
