// Wall-clock timing helper used by the perf harness and the benches.
//
// The library has exactly one clock: std::chrono::steady_clock. WallTimer,
// the trace collector's event timestamps (obs::now_ns), and the session's
// deadline math all read it, so durations measured by any of them are
// directly comparable — a bench's seconds() and a trace slice's `dur` come
// from the same monotonic source.
#pragma once

#include <chrono>
#include <cstdint>

namespace tiledqr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

namespace obs {

/// Nanoseconds since the steady_clock epoch — the library's one timestamp.
/// Trace events record pairs of these; subtracting two gives the same
/// duration a WallTimer spanning them would report.
[[nodiscard]] inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs

}  // namespace tiledqr
