// Minimal fixed-width text table printer used by the bench harness to emit
// paper-style tables, with optional CSV side-output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tiledqr {

/// Accumulates rows of string cells and renders them as an aligned text table.
class TextTable {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row; rows may have different lengths.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the aligned table.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (header + rows).
  [[nodiscard]] std::string csv() const;

  /// Prints `str()` to `os` followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tiledqr
