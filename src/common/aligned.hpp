// Cache-line aligned storage for tile data.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace tiledqr {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocator producing 64-byte aligned storage, suitable for vectorized tile
/// kernels. Usable with std::vector.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(kCacheLineBytes));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kCacheLineBytes));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace tiledqr
