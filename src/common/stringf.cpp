#include "common/stringf.hpp"

#include <cstdio>
#include <vector>

namespace tiledqr {

std::string vstringf(const char* fmt, std::va_list args) {
  std::va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) return {};
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string stringf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string out = vstringf(fmt, args);
  va_end(args);
  return out;
}

}  // namespace tiledqr
