#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <thread>

namespace tiledqr {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

long env_long(const char* name, long fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  try {
    size_t pos = 0;
    long value = std::stol(*s, &pos);
    return pos == s->size() ? value : fallback;
  } catch (...) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  try {
    size_t pos = 0;
    double value = std::stod(*s, &pos);
    return pos == s->size() ? value : fallback;
  } catch (...) {
    return fallback;
  }
}

bool env_flag(const char* name, bool fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

int default_thread_count() {
  long n = env_long("TILEDQR_THREADS", 0);
  if (n > 0) return static_cast<int>(n);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace tiledqr
