// Error handling primitives for tiledqr.
//
// The library throws `tiledqr::Error` (derived from std::runtime_error) on
// contract violations. Hot kernel paths use TILEDQR_ASSERT, which compiles to
// nothing in release builds unless TILEDQR_ENABLE_ASSERTS is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace tiledqr {

/// Exception type thrown on any tiledqr API contract violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::string full = std::string("tiledqr: check `") + expr + "` failed at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += ": " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace tiledqr

/// Always-on precondition check; throws tiledqr::Error when violated.
#define TILEDQR_CHECK(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) ::tiledqr::detail::throw_error(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only check for hot paths.
#if defined(TILEDQR_ENABLE_ASSERTS) || !defined(NDEBUG)
#define TILEDQR_ASSERT(expr) TILEDQR_CHECK(expr, "")
#else
#define TILEDQR_ASSERT(expr) ((void)0)
#endif
