// Environment-variable configuration.
//
// Benchmarks and examples read their default problem sizes from TILEDQR_*
// environment variables so that the same binaries can run at smoke-test scale
// in CI and at paper scale on a large machine.
#pragma once

#include <optional>
#include <string>

namespace tiledqr {

/// Returns the raw value of an environment variable, if set and non-empty.
std::optional<std::string> env_string(const char* name);

/// Integer-valued env var; returns `fallback` when unset or unparsable.
long env_long(const char* name, long fallback);

/// Double-valued env var; returns `fallback` when unset or unparsable.
double env_double(const char* name, double fallback);

/// Boolean env var: "1", "true", "yes", "on" (case-insensitive) are true.
bool env_flag(const char* name, bool fallback = false);

/// Number of worker threads to use by default: TILEDQR_THREADS if set,
/// otherwise std::thread::hardware_concurrency() clamped to >= 1.
int default_thread_count();

}  // namespace tiledqr
