// Task DAG construction for tiled QR.
//
// Given an elimination list, builds the full kernel-level task graph with
// dataflow dependencies. Dependencies are inferred from declared accesses,
// like PLASMA/QUARK's INPUT/OUTPUT/INOUT tracking, but at *region*
// granularity: each tile exposes two independently-tracked regions,
//
//   U — the diagonal-and-above part (R factor / TT reflector tails V2)
//   L — the strictly-below-diagonal part (GEQRT reflector tails V)
//
// plus two block-factor resources T (GEQRT/TSQRT) and T2 (TTQRT). This
// reproduces exactly the dependency lists of paper §2.1. Tracking whole
// tiles instead would add a false WAR edge from UNMQR (which reads only L)
// to the TTQRT that overwrites U, lengthening every critical path — the same
// false dependency the paper removes in PLASMA by re-tagging the V argument
// of the update kernels from INPUT to NODEP [12].
//
// Task access sets:
//   GEQRT(i,k):        RW U(i,k), RW L(i,k), W T(i,k)
//   UNMQR(i,k,j):      R  L(i,k), R T(i,k),  RW U+L(i,j)
//   TSQRT(i,piv,k):    RW U(piv,k), RW U+L(i,k), W T(i,k)
//   TSMQR(i,piv,k,j):  R  U+L(i,k), R T(i,k), RW U+L(piv,j), RW U+L(i,j)
//   TTQRT(i,piv,k):    RW U(piv,k), RW U(i,k), W T2(i,k)
//   TTMQR(i,piv,k,j):  R  U(i,k),  R T2(i,k), RW U+L(piv,j), RW U+L(i,j)
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/kernels.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::dag {

/// One kernel invocation in the DAG.
struct Task {
  kernels::KernelKind kind;
  std::int32_t i;    ///< row of the factored / zeroed tile
  std::int32_t piv;  ///< pivot row (TS/TT kernels), -1 otherwise
  std::int32_t k;    ///< panel column
  std::int32_t j;    ///< update column (update kernels), -1 otherwise
  std::int32_t npred = 0;          ///< number of predecessor edges
  std::vector<std::int32_t> succ;  ///< successor task indices

  [[nodiscard]] int weight() const noexcept { return kernels::kernel_weight(kind); }
};

/// Full task graph for one factorization.
///
/// For LQ graphs (factor == FactorKind::LQ) the grid is the *reduction*
/// grid — the tile grid of A^H, so p >= q always holds and every tree
/// builder works unchanged — and tasks carry the LQ kernel kinds. Task
/// coordinates live in the reduction grid; the executor maps coordinate
/// (r, c) to the A-layout tile (c, r).
struct TaskGraph {
  int p = 0;
  int q = 0;
  kernels::FactorKind factor = kernels::FactorKind::QR;
  std::vector<Task> tasks;
  /// zero_task[i*q + k] = index of the task that zeroes tile (i,k); -1 if
  /// the tile is not zeroed (on/above diagonal).
  std::vector<std::int32_t> zero_task;

  [[nodiscard]] std::int32_t zero_task_index(int i, int k) const {
    return zero_task[size_t(i) * size_t(q) + size_t(k)];
  }

  /// Total task weight in nb^3/3 units; equals 6pq^2 - 2q^3 for any valid
  /// list on a p x q matrix with p >= q (paper §2.2).
  [[nodiscard]] long total_weight() const {
    long w = 0;
    for (const auto& t : tasks) w += t.weight();
    return w;
  }

  /// Number of edges in the DAG.
  [[nodiscard]] size_t edge_count() const {
    size_t e = 0;
    for (const auto& t : tasks) e += t.succ.size();
    return e;
  }

  /// Appends `other`'s tasks as an independent component, offsetting all
  /// successor indices by this graph's current task count, and returns that
  /// offset. Tile coordinates (i, piv, k, j) are copied unchanged: they are
  /// per-component concepts, so the caller must dispatch each task to the
  /// tile storage of the component it came from. The receiver's p/q grow to
  /// cover the widest component and zero_task is dropped — a fused graph is
  /// a scheduling object, not a factorization map. Topological order is
  /// preserved (components are independent).
  std::int32_t append_offset(const TaskGraph& other);
};

/// Builds the task graph for an elimination list; the list is validated
/// first (throws tiledqr::Error with the validator's diagnostic on failure).
/// Tasks appear in a dependency-consistent (topological) order. For
/// FactorKind::LQ the same elimination structure is emitted with the dual
/// LQ kernel kinds (the list describes the reduction grid either way).
[[nodiscard]] TaskGraph build_task_graph(
    int p, int q, const trees::EliminationList& list,
    kernels::FactorKind factor = kernels::FactorKind::QR);

/// Recomputes `npred`/`succ` for an externally-assembled task list (kinds and
/// tile coordinates set, tasks in emission order) by replaying the access
/// sets above — the same dependence rule build_task_graph applies while
/// emitting. Lets the trace analyzer rebuild a plan's exact DAG from a trace
/// that records only each task's kind and coordinates. Existing edges are
/// discarded first.
void infer_dependencies(int p, int q, std::vector<Task>& tasks);

}  // namespace tiledqr::dag
