#include "dag/task_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tiledqr::dag {

namespace {

using kernels::KernelKind;

/// Resource kinds per tile.
enum Region : int { kU = 0, kL = 1, kT = 2, kT2 = 3 };

/// Tracks last writer and readers-since-last-write per resource and lays
/// down RAW / WAR / WAW edges as tasks are emitted in list order.
class DependencyTracker {
 public:
  DependencyTracker(int p, int q, std::vector<Task>& tasks)
      : q_(q), tasks_(tasks), last_writer_(size_t(p) * size_t(q) * 4, -1),
        readers_(size_t(p) * size_t(q) * 4) {}

  void read(std::int32_t task, int i, int j, Region r) {
    const size_t res = index(i, j, r);
    add_edge(last_writer_[res], task);
    readers_[res].push_back(task);
  }

  void modify(std::int32_t task, int i, int j, Region r) {
    const size_t res = index(i, j, r);
    add_edge(last_writer_[res], task);
    for (std::int32_t reader : readers_[res]) add_edge(reader, task);
    readers_[res].clear();
    last_writer_[res] = task;
  }

 private:
  [[nodiscard]] size_t index(int i, int j, Region r) const {
    return (size_t(i) * size_t(q_) + size_t(j)) * 4 + size_t(r);
  }

  void add_edge(std::int32_t from, std::int32_t to) {
    if (from < 0 || from == to) return;
    auto& succ = tasks_[size_t(from)].succ;
    // Cheap de-duplication: consecutive accesses produce adjacent duplicates.
    if (!succ.empty() && succ.back() == to) return;
    if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
    succ.push_back(to);
    ++tasks_[size_t(to)].npred;
  }

  int q_;
  std::vector<Task>& tasks_;
  std::vector<std::int32_t> last_writer_;
  std::vector<std::vector<std::int32_t>> readers_;
};

/// The kernel access sets of the file comment in task_graph.hpp, applied to
/// one emitted task. Shared by build_task_graph (emitting as it goes) and
/// infer_dependencies (replaying a finished list), so the two can never
/// disagree about an edge.
void apply_accesses(DependencyTracker& deps, std::int32_t id, const Task& t) {
  const int i = t.i;
  const int piv = t.piv;
  const int k = t.k;
  const int j = t.j;
  // LQ kernels access the reduction grid exactly as their QR duals do (the
  // coordinates already live there), so one switch covers both factorizations.
  switch (kernels::qr_dual(t.kind)) {
    case KernelKind::GEQRT:
      deps.modify(id, i, k, kU);
      deps.modify(id, i, k, kL);
      deps.modify(id, i, k, kT);
      break;
    case KernelKind::UNMQR:
      deps.read(id, i, k, kL);
      deps.read(id, i, k, kT);
      deps.modify(id, i, j, kU);
      deps.modify(id, i, j, kL);
      break;
    case KernelKind::TSQRT:
      deps.modify(id, piv, k, kU);
      deps.modify(id, i, k, kU);
      deps.modify(id, i, k, kL);
      deps.modify(id, i, k, kT);
      break;
    case KernelKind::TSMQR:
      deps.read(id, i, k, kU);
      deps.read(id, i, k, kL);
      deps.read(id, i, k, kT);
      deps.modify(id, piv, j, kU);
      deps.modify(id, piv, j, kL);
      deps.modify(id, i, j, kU);
      deps.modify(id, i, j, kL);
      break;
    case KernelKind::TTQRT:
      deps.modify(id, piv, k, kU);
      deps.modify(id, i, k, kU);
      deps.modify(id, i, k, kT2);
      break;
    case KernelKind::TTMQR:
      deps.read(id, i, k, kU);
      deps.read(id, i, k, kT2);
      deps.modify(id, piv, j, kU);
      deps.modify(id, piv, j, kL);
      deps.modify(id, i, j, kU);
      deps.modify(id, i, j, kL);
      break;
    default:
      break;
  }
}

}  // namespace

std::int32_t TaskGraph::append_offset(const TaskGraph& other) {
  const auto offset = std::int32_t(tasks.size());
  if (offset == 0) factor = other.factor;  // adopt the first component's kind
  tasks.reserve(tasks.size() + other.tasks.size());
  for (const Task& t : other.tasks) {
    tasks.push_back(t);
    for (std::int32_t& s : tasks.back().succ) s += offset;
  }
  p = std::max(p, other.p);
  q = std::max(q, other.q);
  zero_task.clear();
  return offset;
}

TaskGraph build_task_graph(int p, int q, const trees::EliminationList& list,
                           kernels::FactorKind factor) {
  auto valid = trees::validate_elimination_list(p, q, list);
  TILEDQR_CHECK(valid.ok, "build_task_graph: invalid elimination list: " + valid.message);

  TaskGraph g;
  g.p = p;
  g.q = q;
  g.factor = factor;
  g.zero_task.assign(size_t(p) * size_t(q), -1);

  DependencyTracker deps(p, q, g.tasks);
  std::vector<char> triangular(size_t(p) * size_t(std::min(p, q)), 0);
  auto tri = [&](int i, int k) -> char& {
    return triangular[size_t(i) * size_t(std::min(p, q)) + size_t(k)];
  };

  auto emit = [&](KernelKind kind, int i, int piv, int k, int j) -> std::int32_t {
    if (factor == kernels::FactorKind::LQ) kind = kernels::lq_dual(kind);
    auto id = std::int32_t(g.tasks.size());
    g.tasks.push_back(Task{kind, i, piv, k, j, 0, {}});
    apply_accesses(deps, id, g.tasks.back());
    return id;
  };

  auto triangularize = [&](int i, int k) {
    if (tri(i, k)) return;
    emit(KernelKind::GEQRT, i, -1, k, -1);
    for (int j = k + 1; j < q; ++j) emit(KernelKind::UNMQR, i, -1, k, j);
    tri(i, k) = 1;
  };

  for (const auto& e : list) {
    triangularize(e.piv, e.col);
    if (e.ts) {
      auto id = emit(KernelKind::TSQRT, e.row, e.piv, e.col, -1);
      g.zero_task[size_t(e.row) * size_t(q) + size_t(e.col)] = id;
      for (int j = e.col + 1; j < q; ++j) emit(KernelKind::TSMQR, e.row, e.piv, e.col, j);
    } else {
      triangularize(e.row, e.col);
      auto id = emit(KernelKind::TTQRT, e.row, e.piv, e.col, -1);
      g.zero_task[size_t(e.row) * size_t(q) + size_t(e.col)] = id;
      for (int j = e.col + 1; j < q; ++j) emit(KernelKind::TTMQR, e.row, e.piv, e.col, j);
    }
  }
  // Diagonal tiles that were never triangularized (e.g. the last panel of a
  // square matrix, or any panel whose eliminations all used TS kernels with
  // pivots above) still need their final GEQRT.
  for (int k = 0; k < std::min(p, q); ++k) triangularize(k, k);

  return g;
}

void infer_dependencies(int p, int q, std::vector<Task>& tasks) {
  TILEDQR_CHECK(p > 0 && q > 0, "infer_dependencies: p and q must be positive");
  for (auto& t : tasks) {
    t.npred = 0;
    t.succ.clear();
    TILEDQR_CHECK(t.i >= 0 && t.i < p && t.k >= 0 && t.k < q,
                  "infer_dependencies: task coordinates outside the p x q grid");
  }
  DependencyTracker deps(p, q, tasks);
  for (size_t id = 0; id < tasks.size(); ++id) apply_accesses(deps, std::int32_t(id), tasks[id]);
}

}  // namespace tiledqr::dag
