#include <complex>

#include "matrix/matrix.hpp"
#include "matrix/tile_matrix.hpp"

namespace tiledqr {

template class Matrix<float>;
template class Matrix<double>;
template class Matrix<std::complex<float>>;
template class Matrix<std::complex<double>>;

template class TileMatrix<float>;
template class TileMatrix<double>;
template class TileMatrix<std::complex<float>>;
template class TileMatrix<std::complex<double>>;

}  // namespace tiledqr
