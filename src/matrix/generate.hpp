// Deterministic random matrix generation for tests, examples and benches.
#pragma once

#include <cstdint>
#include <random>

#include "matrix/matrix.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr {

namespace detail {
template <typename T>
T random_scalar(std::mt19937_64& rng) {
  std::uniform_real_distribution<RealType<T>> dist(RealType<T>(-1), RealType<T>(1));
  if constexpr (is_complex_v<T>) {
    auto re = dist(rng);
    auto im = dist(rng);
    return T(re, im);
  } else {
    return dist(rng);
  }
}
}  // namespace detail

/// Dense m x n matrix with iid entries uniform in [-1, 1] (per component).
template <typename T>
[[nodiscard]] Matrix<T> random_matrix(std::int64_t m, std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Matrix<T> a(m, n);
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = 0; i < m; ++i) a(i, j) = detail::random_scalar<T>(rng);
  return a;
}

/// Fills an existing view with random entries.
template <typename T>
void randomize(MatrixView<T> a, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i) a(i, j) = detail::random_scalar<T>(rng);
}

/// Random upper-triangular matrix (used by kernel tests).
template <typename T>
[[nodiscard]] Matrix<T> random_upper_triangular(std::int64_t n, std::uint64_t seed) {
  Matrix<T> a = random_matrix<T>(n, n, seed);
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = j + 1; i < n; ++i) a(i, j) = T(0);
  return a;
}

}  // namespace tiledqr
