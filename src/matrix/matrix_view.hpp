// Non-owning column-major matrix views.
//
// Kernels and BLAS routines take MatrixView arguments: a (pointer, leading
// dimension, rows, cols) quadruple. Views are cheap to copy and to slice.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace tiledqr {

/// Mutable view over a column-major matrix block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::int64_t rows, std::int64_t cols, std::int64_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    TILEDQR_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t ld() const noexcept { return ld_; }
  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::int64_t i, std::int64_t j) const noexcept {
    TILEDQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Pointer to the top of column j.
  [[nodiscard]] T* col(std::int64_t j) const noexcept { return data_ + j * ld_; }

  /// Sub-block view of size mm x nn starting at (i, j).
  [[nodiscard]] MatrixView sub(std::int64_t i, std::int64_t j, std::int64_t mm,
                               std::int64_t nn) const {
    TILEDQR_ASSERT(i >= 0 && j >= 0 && mm >= 0 && nn >= 0 && i + mm <= rows_ && j + nn <= cols_);
    return MatrixView(data_ + i + j * ld_, mm, nn, ld_);
  }

 private:
  T* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
};

/// Read-only view over a column-major matrix block.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, std::int64_t rows, std::int64_t cols, std::int64_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    TILEDQR_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }
  // NOLINTNEXTLINE(google-explicit-constructor): implicit mutable->const view.
  ConstMatrixView(MatrixView<T> v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t ld() const noexcept { return ld_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  const T& operator()(std::int64_t i, std::int64_t j) const noexcept {
    TILEDQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  [[nodiscard]] const T* col(std::int64_t j) const noexcept { return data_ + j * ld_; }

  [[nodiscard]] ConstMatrixView sub(std::int64_t i, std::int64_t j, std::int64_t mm,
                                    std::int64_t nn) const {
    TILEDQR_ASSERT(i >= 0 && j >= 0 && mm >= 0 && nn >= 0 && i + mm <= rows_ && j + nn <= cols_);
    return ConstMatrixView(data_ + i + j * ld_, mm, nn, ld_);
  }

 private:
  const T* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
};

}  // namespace tiledqr
