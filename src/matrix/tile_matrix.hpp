// Tiled matrix storage (PLASMA-style layout).
//
// A TileMatrix stores an m x n logical matrix as a p x q grid of nb x nb
// tiles, each tile contiguous in memory (column-major within the tile). When
// m or n is not a multiple of nb, the matrix is zero-padded up to full tiles;
// zero-padding rows/columns does not change the R factor of a QR
// factorization nor the leading Q columns, so all kernels can assume full
// square tiles — exactly the model of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "matrix/matrix.hpp"
#include "matrix/matrix_view.hpp"

namespace tiledqr {

template <typename T>
class TileMatrix {
 public:
  TileMatrix() = default;

  /// Zero-initialized tiled matrix holding a logical m x n dense matrix.
  /// (The divisions must not run before the nb check: nb == 0 would be a
  /// SIGFPE in the member initializers, not a catchable Error.)
  TileMatrix(std::int64_t m, std::int64_t n, int nb)
      : m_(m), n_(n), nb_(checked_nb(m, n, nb)), mt_(int((m + nb_ - 1) / nb_)),
        nt_(int((n + nb_ - 1) / nb_)),
        data_(size_t(mt_) * size_t(nt_) * size_t(nb_) * size_t(nb_)) {}

  /// Logical row/column counts.
  [[nodiscard]] std::int64_t m() const noexcept { return m_; }
  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  /// Tile grid dimensions (the paper's p and q).
  [[nodiscard]] int mt() const noexcept { return mt_; }
  [[nodiscard]] int nt() const noexcept { return nt_; }
  /// Tile size.
  [[nodiscard]] int nb() const noexcept { return nb_; }

  /// View of tile (i, j); always nb x nb.
  [[nodiscard]] MatrixView<T> tile(int i, int j) noexcept {
    TILEDQR_ASSERT(i >= 0 && i < mt_ && j >= 0 && j < nt_);
    return MatrixView<T>(tile_data(i, j), nb_, nb_, nb_);
  }
  [[nodiscard]] ConstMatrixView<T> tile(int i, int j) const noexcept {
    TILEDQR_ASSERT(i >= 0 && i < mt_ && j >= 0 && j < nt_);
    return ConstMatrixView<T>(tile_data(i, j), nb_, nb_, nb_);
  }

  /// Element access through tile translation (slow; for tests and I/O).
  [[nodiscard]] T at(std::int64_t i, std::int64_t j) const {
    TILEDQR_CHECK(i >= 0 && i < m_ && j >= 0 && j < n_, "at: out of range");
    return tile(int(i / nb_), int(j / nb_))(i % nb_, j % nb_);
  }

  /// Builds a tiled copy of a dense matrix (zero-padded to full tiles).
  [[nodiscard]] static TileMatrix from_dense(ConstMatrixView<T> a, int nb) {
    TileMatrix out(a.rows(), a.cols(), nb);
    for (std::int64_t j = 0; j < a.cols(); ++j)
      for (std::int64_t i = 0; i < a.rows(); ++i)
        out.tile(int(i / nb), int(j / nb))(i % nb, j % nb) = a(i, j);
    return out;
  }

  /// Converts back to a dense m x n matrix (dropping the padding).
  [[nodiscard]] Matrix<T> to_dense() const {
    Matrix<T> out(m_, n_);
    for (std::int64_t j = 0; j < n_; ++j)
      for (std::int64_t i = 0; i < m_; ++i) out(i, j) = at(i, j);
    return out;
  }

  /// Sets every entry (including padding) to `value`.
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

 private:
  [[nodiscard]] static int checked_nb(std::int64_t m, std::int64_t n, int nb) {
    TILEDQR_CHECK(m >= 1 && n >= 1, "tile matrix must be non-empty");
    TILEDQR_CHECK(nb >= 1, "tile size must be positive");
    return nb;
  }

  [[nodiscard]] T* tile_data(int i, int j) noexcept {
    return data_.data() + (size_t(j) * size_t(mt_) + size_t(i)) * size_t(nb_) * size_t(nb_);
  }
  [[nodiscard]] const T* tile_data(int i, int j) const noexcept {
    return data_.data() + (size_t(j) * size_t(mt_) + size_t(i)) * size_t(nb_) * size_t(nb_);
  }

  std::int64_t m_ = 0;
  std::int64_t n_ = 0;
  int nb_ = 0;
  int mt_ = 0;
  int nt_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

}  // namespace tiledqr
