// Matrix norms and comparison helpers.
#pragma once

#include <algorithm>
#include <cmath>

#include "matrix/matrix_view.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr {

/// Frobenius norm.
template <typename T>
[[nodiscard]] RealType<T> frobenius_norm(ConstMatrixView<T> a) {
  // Two-pass scaled accumulation to avoid overflow for large well-scaled data.
  RealType<T> sum = 0;
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i) sum += ScalarTraits<T>::abs_sq(a(i, j));
  return std::sqrt(sum);
}

/// Max-absolute-entry norm.
template <typename T>
[[nodiscard]] RealType<T> max_norm(ConstMatrixView<T> a) {
  RealType<T> mx = 0;
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i)
      mx = std::max(mx, RealType<T>(std::sqrt(ScalarTraits<T>::abs_sq(a(i, j)))));
  return mx;
}

/// Frobenius norm of (a - b); shapes must match.
template <typename T>
[[nodiscard]] RealType<T> difference_norm(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  TILEDQR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "difference_norm: shape mismatch");
  RealType<T> sum = 0;
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      T d = a(i, j) - b(i, j);
      sum += ScalarTraits<T>::abs_sq(d);
    }
  return std::sqrt(sum);
}

/// Frobenius distance of a^H a (or a a^H) from the identity: the Gram
/// matrix of the smaller dimension, so tall/square inputs are checked for
/// orthonormal columns (|| I - Q^H Q ||_F) and wide inputs for orthonormal
/// rows (|| I - Q Q^H ||_F) — the thin Q of an LQ factorization.
template <typename T>
[[nodiscard]] RealType<T> orthogonality_error(ConstMatrixView<T> q) {
  const bool wide = q.rows() < q.cols();
  const std::int64_t dim = wide ? q.rows() : q.cols();
  const std::int64_t len = wide ? q.cols() : q.rows();
  RealType<T> sum = 0;
  for (std::int64_t j = 0; j < dim; ++j) {
    for (std::int64_t k = 0; k < dim; ++k) {
      T dot = T(0);
      for (std::int64_t i = 0; i < len; ++i)
        dot += wide ? q(j, i) * conj_if_complex(q(k, i))
                    : conj_if_complex(q(i, j)) * q(i, k);
      if (j == k) dot -= T(1);
      sum += ScalarTraits<T>::abs_sq(dot);
    }
  }
  return std::sqrt(sum);
}

/// Largest absolute entry strictly below the main diagonal.
template <typename T>
[[nodiscard]] RealType<T> below_diagonal_max(ConstMatrixView<T> a) {
  RealType<T> mx = 0;
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = j + 1; i < a.rows(); ++i)
      mx = std::max(mx, RealType<T>(std::sqrt(ScalarTraits<T>::abs_sq(a(i, j)))));
  return mx;
}

}  // namespace tiledqr
