// Scalar traits shared by the BLAS substrate and the tile kernels.
//
// Kernels are templated over Scalar in {float, double, std::complex<float>,
// std::complex<double>}; these traits provide the associated real type, the
// conjugation that degenerates to identity for real types, and flop weights.
#pragma once

#include <cmath>
#include <complex>
#include <type_traits>

namespace tiledqr {

template <typename T>
struct ScalarTraits {
  using real_type = T;
  static constexpr bool is_complex = false;
  static constexpr T conj(T x) noexcept { return x; }
  static constexpr real_type real(T x) noexcept { return x; }
  static constexpr real_type imag(T) noexcept { return real_type(0); }
  static constexpr real_type abs_sq(T x) noexcept { return x * x; }
  /// Flops per fused multiply-add (used by the performance model): a real FMA
  /// is 2 flops, a complex one 8.
  static constexpr double flops_per_fma = 2.0;
};

template <typename R>
struct ScalarTraits<std::complex<R>> {
  using real_type = R;
  static constexpr bool is_complex = true;
  static std::complex<R> conj(std::complex<R> x) noexcept { return std::conj(x); }
  static constexpr real_type real(std::complex<R> x) noexcept { return x.real(); }
  static constexpr real_type imag(std::complex<R> x) noexcept { return x.imag(); }
  static constexpr real_type abs_sq(std::complex<R> x) noexcept {
    return x.real() * x.real() + x.imag() * x.imag();
  }
  static constexpr double flops_per_fma = 8.0;
};

template <typename T>
using RealType = typename ScalarTraits<T>::real_type;

template <typename T>
inline constexpr bool is_complex_v = ScalarTraits<T>::is_complex;

/// conj() that is the identity for real scalars.
template <typename T>
[[nodiscard]] inline T conj_if_complex(T x) noexcept {
  return ScalarTraits<T>::conj(x);
}

}  // namespace tiledqr
