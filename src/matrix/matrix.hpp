// Owning column-major dense matrix.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "matrix/matrix_view.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr {

/// Column-major dense matrix with 64-byte aligned storage (ld == rows).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized m x n matrix.
  Matrix(std::int64_t m, std::int64_t n) : rows_(m), cols_(n), data_(size_t(m) * size_t(n)) {
    TILEDQR_CHECK(m >= 0 && n >= 0, "matrix dimensions must be non-negative");
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t ld() const noexcept { return rows_; }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  T& operator()(std::int64_t i, std::int64_t j) noexcept {
    TILEDQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[size_t(i) + size_t(j) * size_t(rows_)];
  }
  const T& operator()(std::int64_t i, std::int64_t j) const noexcept {
    TILEDQR_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[size_t(i) + size_t(j) * size_t(rows_)];
  }

  [[nodiscard]] MatrixView<T> view() noexcept {
    return MatrixView<T>(data(), rows_, cols_, rows_);
  }
  [[nodiscard]] ConstMatrixView<T> view() const noexcept {
    return ConstMatrixView<T>(data(), rows_, cols_, rows_);
  }
  [[nodiscard]] MatrixView<T> sub(std::int64_t i, std::int64_t j, std::int64_t mm,
                                  std::int64_t nn) {
    return view().sub(i, j, mm, nn);
  }
  [[nodiscard]] ConstMatrixView<T> sub(std::int64_t i, std::int64_t j, std::int64_t mm,
                                       std::int64_t nn) const {
    return view().sub(i, j, mm, nn);
  }

  /// Sets every entry to `value`.
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  /// m x m identity.
  [[nodiscard]] static Matrix identity(std::int64_t m) {
    Matrix I(m, m);
    for (std::int64_t i = 0; i < m; ++i) I(i, i) = T(1);
    return I;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

/// Copies `src` into `dst`; shapes must match.
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  TILEDQR_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "copy: shape mismatch");
  for (std::int64_t j = 0; j < src.cols(); ++j)
    for (std::int64_t i = 0; i < src.rows(); ++i) dst(i, j) = src(i, j);
}

template <typename T>
inline void copy(MatrixView<T> src, MatrixView<T> dst) {
  copy(ConstMatrixView<T>(src), dst);
}

}  // namespace tiledqr
