#include "sim/bounded.hpp"

#include <queue>

#include "common/error.hpp"

namespace tiledqr::sim {

namespace {

/// Ready-queue entry: larger key first, ties broken by ascending index.
struct Prioritized {
  long key;
  std::int32_t task;
  bool operator<(const Prioritized& o) const {
    return key != o.key ? key < o.key : task > o.task;
  }
};

std::vector<long> priority_keys(const dag::TaskGraph& g, SimPriority priority) {
  std::vector<long> keys(g.tasks.size());
  if (priority == SimPriority::CriticalPath) {
    for (size_t t = g.tasks.size(); t-- > 0;) {
      long best = 0;
      for (std::int32_t s : g.tasks[t].succ) best = std::max(best, keys[size_t(s)]);
      keys[t] = best + g.tasks[t].weight();
    }
  } else {
    for (size_t t = 0; t < g.tasks.size(); ++t) keys[t] = long(g.tasks.size()) - long(t);
  }
  return keys;
}

template <typename Time, typename WeightFn>
Time run_list_schedule(const dag::TaskGraph& g, int workers, const std::vector<long>& keys,
                       WeightFn&& weight, BoundedResult* detail) {
  TILEDQR_CHECK(workers >= 1, "simulate_bounded: need at least one worker");
  const size_t n = g.tasks.size();
  std::vector<std::int32_t> npred(n);
  for (size_t t = 0; t < n; ++t) npred[t] = g.tasks[t].npred;

  std::priority_queue<Prioritized> ready;
  for (size_t t = 0; t < n; ++t)
    if (npred[t] == 0) ready.push({keys[t], std::int32_t(t)});

  // Running tasks: (finish_time, task).
  using Event = std::pair<Time, std::int32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;

  Time now = 0;
  Time makespan = 0;
  int free_workers = workers;
  std::vector<int> free_ids;
  for (int w = workers - 1; w >= 0; --w) free_ids.push_back(w);
  size_t done = 0;

  while (done < n) {
    while (free_workers > 0 && !ready.empty()) {
      std::int32_t t = ready.top().task;
      ready.pop();
      Time fin = now + weight(size_t(t));
      running.push({fin, t});
      --free_workers;
      if (detail) {
        detail->start[size_t(t)] = long(now);
        detail->worker[size_t(t)] = free_ids.back();
        free_ids.pop_back();
      }
      makespan = std::max(makespan, fin);
    }
    TILEDQR_CHECK(!running.empty(), "simulate_bounded: deadlock (bug)");
    now = running.top().first;
    while (!running.empty() && running.top().first == now) {
      std::int32_t t = running.top().second;
      running.pop();
      ++free_workers;
      if (detail) free_ids.push_back(detail->worker[size_t(t)]);
      ++done;
      for (std::int32_t s : g.tasks[size_t(t)].succ)
        if (--npred[size_t(s)] == 0) ready.push({keys[size_t(s)], s});
    }
  }
  return makespan;
}

}  // namespace

BoundedResult simulate_bounded(const dag::TaskGraph& g, int workers, SimPriority priority) {
  BoundedResult r;
  r.start.assign(g.tasks.size(), 0);
  r.worker.assign(g.tasks.size(), -1);
  auto keys = priority_keys(g, priority);
  r.makespan = run_list_schedule<long>(
      g, workers, keys, [&](size_t t) { return long(g.tasks[t].weight()); }, &r);
  long total = g.total_weight();
  r.utilization = r.makespan > 0 ? double(total) / (double(workers) * double(r.makespan)) : 1.0;
  return r;
}

double simulate_bounded_weighted(const dag::TaskGraph& g, int workers,
                                 const std::array<double, 6>& w) {
  BoundedResult detail;
  detail.start.assign(g.tasks.size(), 0);
  detail.worker.assign(g.tasks.size(), -1);
  auto keys = priority_keys(g, SimPriority::EmissionOrder);
  return run_list_schedule<double>(
      g, workers, keys, [&](size_t t) { return w[size_t(g.tasks[t].kind)]; }, nullptr);
}

}  // namespace tiledqr::sim
