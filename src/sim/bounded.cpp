#include "sim/bounded.hpp"

#include <queue>

#include "common/error.hpp"

namespace tiledqr::sim {

namespace {

/// Ready-queue entry: larger key first, ties broken by ascending index.
template <typename Time>
struct Prioritized {
  Time key;
  std::int32_t task;
  bool operator<(const Prioritized& o) const {
    return key != o.key ? key < o.key : task > o.task;
  }
};

template <typename Time, typename WeightFn>
std::vector<Time> priority_keys(const dag::TaskGraph& g, SimPriority priority,
                                const WeightFn& weight) {
  std::vector<Time> keys(g.tasks.size());
  if (priority == SimPriority::CriticalPath) {
    for (size_t t = g.tasks.size(); t-- > 0;) {
      Time best = 0;
      for (std::int32_t s : g.tasks[t].succ) best = std::max(best, keys[size_t(s)]);
      keys[t] = best + weight(t);
    }
  } else {
    for (size_t t = 0; t < g.tasks.size(); ++t)
      keys[t] = Time(long(g.tasks.size()) - long(t));
  }
  return keys;
}

template <typename Time, typename WeightFn>
BasicBoundedResult<Time> run_list_schedule(const dag::TaskGraph& g, int workers,
                                           SimPriority priority, const WeightFn& weight) {
  TILEDQR_CHECK(workers >= 1, "simulate_bounded: need at least one worker");
  const size_t n = g.tasks.size();
  BasicBoundedResult<Time> r;
  r.start.assign(n, Time(0));
  r.worker.assign(n, -1);

  const auto keys = priority_keys<Time>(g, priority, weight);
  std::vector<std::int32_t> npred(n);
  for (size_t t = 0; t < n; ++t) npred[t] = g.tasks[t].npred;

  std::priority_queue<Prioritized<Time>> ready;
  for (size_t t = 0; t < n; ++t)
    if (npred[t] == 0) ready.push({keys[t], std::int32_t(t)});

  // Running tasks: (finish_time, task).
  using Event = std::pair<Time, std::int32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;

  Time now = 0;
  int free_workers = workers;
  std::vector<int> free_ids;
  for (int w = workers - 1; w >= 0; --w) free_ids.push_back(w);
  size_t done = 0;
  Time total = 0;

  while (done < n) {
    while (free_workers > 0 && !ready.empty()) {
      std::int32_t t = ready.top().task;
      ready.pop();
      Time fin = now + weight(size_t(t));
      running.push({fin, t});
      --free_workers;
      r.start[size_t(t)] = now;
      r.worker[size_t(t)] = free_ids.back();
      free_ids.pop_back();
      r.makespan = std::max(r.makespan, fin);
    }
    TILEDQR_CHECK(!running.empty(), "simulate_bounded: deadlock (bug)");
    now = running.top().first;
    while (!running.empty() && running.top().first == now) {
      std::int32_t t = running.top().second;
      running.pop();
      ++free_workers;
      free_ids.push_back(r.worker[size_t(t)]);
      ++done;
      total += weight(size_t(t));
      for (std::int32_t s : g.tasks[size_t(t)].succ)
        if (--npred[size_t(s)] == 0) ready.push({keys[size_t(s)], s});
    }
  }
  r.utilization =
      r.makespan > 0 ? double(total) / (double(workers) * double(r.makespan)) : 1.0;
  return r;
}

}  // namespace

BoundedResult simulate_bounded(const dag::TaskGraph& g, int workers, SimPriority priority) {
  return run_list_schedule<long>(g, workers, priority,
                                 [&](size_t t) { return long(g.tasks[t].weight()); });
}

WeightedBoundedResult simulate_bounded_weighted(const dag::TaskGraph& g, int workers,
                                                const std::array<double, 6>& w,
                                                SimPriority priority) {
  return run_list_schedule<double>(g, workers, priority,
                                   [&](size_t t) {
                                     // LQ kinds share their QR dual's weight profile slot.
                                     return w[size_t(kernels::qr_dual(g.tasks[t].kind))];
                                   });
}

}  // namespace tiledqr::sim
