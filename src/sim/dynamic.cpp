#include "sim/dynamic.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "trees/generators.hpp"

namespace tiledqr::sim {

namespace {

using kernels::KernelKind;
using trees::Elimination;

/// Online (event-driven) version of the DAG builder: the same region-level
/// resource model, but task times are computed as eliminations are decided.
class DynamicSimulator {
 public:
  DynamicSimulator(int p, int q, trees::EliminationList fixed, int trailing_asap)
      : p_(p), q_(q), kc_(std::min(p, q)), res_(size_t(p) * size_t(q) * 4),
        ready_(size_t(kc_)), pending_(size_t(kc_)), asap_(size_t(kc_), 0) {
    TILEDQR_CHECK(p >= 1 && q >= 1, "simulate_dynamic: bad dimensions");
    trailing_asap = std::clamp(trailing_asap, 0, kc_);
    for (int k = kc_ - trailing_asap; k < kc_; ++k) asap_[size_t(k)] = 1;
    for (const auto& e : fixed)
      if (!asap_[size_t(e.col)]) pending_[size_t(e.col)].push_back({e, false});
  }

  DynamicResult run() {
    DynamicResult out;
    out.zero_time.assign(size_t(p_), std::vector<long>(size_t(q_), 0));
    zero_time_ = &out.zero_time;
    list_ = &out.list;

    remaining_ = 0;
    for (int k = 0; k < kc_; ++k) remaining_ += p_ - 1 - k;

    for (int i = 0; i < p_; ++i) emit_geqrt_row(i, 0);

    while (remaining_ > 0) {
      TILEDQR_CHECK(!events_.empty(), "simulate_dynamic: stalled (bug)");
      const long t = events_.top().time;
      std::set<int> affected;
      while (!events_.empty() && events_.top().time == t) {
        Event e = events_.top();
        events_.pop();
        if (!zeroed(e.row, e.col)) {
          ready_[size_t(e.col)].insert(e.row);
          affected.insert(e.col);
        }
      }
      for (int k : affected) decide(k, t);
    }
    out.critical_path = makespan_;
    return out;
  }

 private:
  struct Event {
    long time;
    int col;
    int row;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time
                            : (col != o.col ? col > o.col : row > o.row);
    }
  };

  enum Region : int { kU = 0, kL = 1, kT = 2, kT2 = 3 };
  struct Res {
    long wavail = 0;  ///< time the last write completes
    long ravail = 0;  ///< max completion among readers since that write
  };

  [[nodiscard]] Res& res(int i, int j, Region r) {
    return res_[(size_t(i) * size_t(q_) + size_t(j)) * 4 + size_t(r)];
  }

  [[nodiscard]] bool zeroed(int i, int k) const {
    return (*zero_time_)[size_t(i)][size_t(k)] > 0;
  }

  /// Emits one task: start = max(lower bound, resource availability).
  long emit(KernelKind kind, int i, int piv, int k, int j, long lb) {
    struct Access {
      int i, j;
      Region r;
      bool write;
    };
    Access acc[8];
    int na = 0;
    auto rd = [&](int ii, int jj, Region r) { acc[na++] = {ii, jj, r, false}; };
    auto wr = [&](int ii, int jj, Region r) { acc[na++] = {ii, jj, r, true}; };
    switch (kind) {
      case KernelKind::GEQRT:
        wr(i, k, kU); wr(i, k, kL); wr(i, k, kT);
        break;
      case KernelKind::UNMQR:
        rd(i, k, kL); rd(i, k, kT); wr(i, j, kU); wr(i, j, kL);
        break;
      case KernelKind::TTQRT:
        wr(piv, k, kU); wr(i, k, kU); wr(i, k, kT2);
        break;
      case KernelKind::TTMQR:
        rd(i, k, kU); rd(i, k, kT2);
        wr(piv, j, kU); wr(piv, j, kL); wr(i, j, kU); wr(i, j, kL);
        break;
      default:
        throw Error("simulate_dynamic: unexpected kernel kind");
    }
    long start = lb;
    for (int a = 0; a < na; ++a) {
      Res& r = res(acc[a].i, acc[a].j, acc[a].r);
      start = std::max(start, acc[a].write ? std::max(r.wavail, r.ravail) : r.wavail);
    }
    const long fin = start + kernels::kernel_weight(kind);
    for (int a = 0; a < na; ++a) {
      Res& r = res(acc[a].i, acc[a].j, acc[a].r);
      if (acc[a].write) {
        r.wavail = fin;
        r.ravail = 0;
      } else {
        r.ravail = std::max(r.ravail, fin);
      }
    }
    makespan_ = std::max(makespan_, fin);
    return fin;
  }

  /// GEQRT + trailing UNMQRs for row i in column k; schedules the readiness
  /// event at the GEQRT's completion.
  void emit_geqrt_row(int i, int k) {
    long f = emit(KernelKind::GEQRT, i, -1, k, -1, 0);
    for (int j = k + 1; j < q_; ++j) emit(KernelKind::UNMQR, i, -1, k, j, 0);
    if (k < kc_) events_.push({f, k, i});
  }

  void fire(int row, int piv, int k, long t) {
    long fq = emit(KernelKind::TTQRT, row, piv, k, -1, t);
    (*zero_time_)[size_t(row)][size_t(k)] = fq;
    list_->push_back({row, piv, k, false});
    ready_[size_t(k)].erase(row);
    ready_[size_t(k)].erase(piv);
    events_.push({fq, k, piv});
    --remaining_;
    for (int j = k + 1; j < q_; ++j) emit(KernelKind::TTMQR, row, piv, k, j, fq);
    if (k + 1 < kc_) emit_geqrt_row(row, k + 1);
  }

  void decide(int k, long t) {
    auto& r = ready_[size_t(k)];
    if (asap_[size_t(k)]) {
      const int m = int(r.size());
      const int z = m / 2;
      if (z == 0) return;
      std::vector<int> rows(r.begin(), r.end());  // ascending
      for (int j = 0; j < z; ++j)
        fire(rows[size_t(m - z + j)], rows[size_t(m - 2 * z + j)], k, t);
    } else {
      // Fixed pairings execute dataflow-style: an entry may fire as soon as
      // both its rows are ready, but never ahead of an earlier unfired entry
      // that shares a row with it (that is the WAR/WAW serialization the
      // static DAG's emission order imposes on the U regions).
      bool fired = true;
      while (fired) {
        fired = false;
        std::set<int> blocked;
        for (auto& [e, done] : pending_[size_t(k)]) {
          if (done) continue;
          if (!blocked.count(e.row) && !blocked.count(e.piv) && r.count(e.row) &&
              r.count(e.piv)) {
            done = true;
            fire(e.row, e.piv, e.col, t);
            fired = true;
            break;  // ready set changed; rescan from the head
          }
          blocked.insert(e.row);
          blocked.insert(e.piv);
        }
      }
    }
  }

  int p_, q_, kc_;
  std::vector<Res> res_;
  std::vector<std::set<int>> ready_;
  std::vector<std::vector<std::pair<Elimination, bool>>> pending_;
  std::vector<char> asap_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::vector<long>>* zero_time_ = nullptr;
  trees::EliminationList* list_ = nullptr;
  long remaining_ = 0;
  long makespan_ = 0;
};

}  // namespace

DynamicResult simulate_asap(int p, int q) {
  return DynamicSimulator(p, q, {}, std::min(p, q)).run();
}

DynamicResult simulate_grasap(int p, int q, int trailing_asap_cols) {
  auto fixed = trees::greedy_tree(p, q);
  return DynamicSimulator(p, q, std::move(fixed), trailing_asap_cols).run();
}

DynamicResult simulate_fixed(int p, int q, const trees::EliminationList& list) {
  auto valid = trees::validate_elimination_list(p, q, list);
  TILEDQR_CHECK(valid.ok, "simulate_fixed: invalid list: " + valid.message);
  TILEDQR_CHECK(std::none_of(list.begin(), list.end(), [](const Elimination& e) { return e.ts; }),
                "simulate_fixed: TS eliminations are not supported by the dynamic engine");
  return DynamicSimulator(p, q, list, 0).run();
}

}  // namespace tiledqr::sim
