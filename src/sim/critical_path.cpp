#include "sim/critical_path.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "trees/generators.hpp"

namespace tiledqr::sim {

CpResult earliest_finish(const dag::TaskGraph& g) {
  CpResult r;
  r.finish.assign(g.tasks.size(), 0);
  // Tasks are emitted in topological order, so one forward pass suffices.
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    if (r.finish[t] == 0) r.finish[t] = g.tasks[t].weight();  // no predecessors seen yet
    for (std::int32_t s : g.tasks[t].succ) {
      long cand = r.finish[t] + g.tasks[size_t(s)].weight();
      if (cand > r.finish[size_t(s)]) r.finish[size_t(s)] = cand;
    }
    r.critical_path = std::max(r.critical_path, r.finish[t]);
  }
  return r;
}

double critical_path_weighted(const dag::TaskGraph& g, const std::array<double, 6>& w) {
  std::vector<double> finish(g.tasks.size(), 0.0);
  double cp = 0.0;
  // LQ kinds share their QR dual's weight profile slot.
  auto weight = [&](size_t t) { return w[size_t(kernels::qr_dual(g.tasks[t].kind))]; };
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    if (finish[t] == 0.0) finish[t] = weight(t);
    for (std::int32_t s : g.tasks[t].succ)
      finish[size_t(s)] = std::max(finish[size_t(s)], finish[t] + weight(size_t(s)));
    cp = std::max(cp, finish[t]);
  }
  return cp;
}

std::vector<std::vector<long>> zero_time_table(const dag::TaskGraph& g, const CpResult& cp) {
  std::vector<std::vector<long>> table(size_t(g.p), std::vector<long>(size_t(g.q), 0));
  for (int i = 0; i < g.p; ++i)
    for (int k = 0; k < g.q; ++k) {
      auto id = g.zero_task_index(i, k);
      if (id >= 0) table[size_t(i)][size_t(k)] = cp.finish[size_t(id)];
    }
  return table;
}

long critical_path_units(int p, int q, const trees::EliminationList& list) {
  auto g = dag::build_task_graph(p, q, list);
  return earliest_finish(g).critical_path;
}

long critical_path_units(int p, int q, const trees::TreeConfig& config) {
  TILEDQR_CHECK(!trees::is_dynamic(config.kind),
                "critical_path_units: use sim::simulate_dynamic for Asap/Grasap");
  return critical_path_units(p, q, trees::make_static_elimination_list(p, q, config));
}

}  // namespace tiledqr::sim
