// Critical-path analysis on the weighted task DAG (the paper's discrete
// event simulator, built on SimGrid there; a deterministic longest-path
// engine here). Times are in the paper's unit of nb^3/3 flops.
#pragma once

#include <array>
#include <vector>

#include "dag/task_graph.hpp"

namespace tiledqr::sim {

/// Earliest start/finish times assuming unbounded processors.
struct CpResult {
  long critical_path = 0;      ///< makespan = longest weighted path
  std::vector<long> finish;    ///< earliest finish per task
};

/// Computes earliest finish times with the Table 1 weights.
[[nodiscard]] CpResult earliest_finish(const dag::TaskGraph& g);

/// Same with arbitrary per-kind weights (e.g. measured kernel seconds);
/// index by static_cast<int>(KernelKind).
[[nodiscard]] double critical_path_weighted(const dag::TaskGraph& g,
                                            const std::array<double, 6>& kind_weight);

/// zero[i][k] = time at which tile (i,k) is zeroed out (finish of its
/// TSQRT/TTQRT); 0 on/above the diagonal. Regenerates Table 3.
[[nodiscard]] std::vector<std::vector<long>> zero_time_table(const dag::TaskGraph& g,
                                                             const CpResult& cp);

/// Convenience: critical path of an elimination list in Table 1 units.
[[nodiscard]] long critical_path_units(int p, int q, const trees::EliminationList& list);

/// Critical path of a static algorithm configuration.
[[nodiscard]] long critical_path_units(int p, int q, const trees::TreeConfig& config);

}  // namespace tiledqr::sim
