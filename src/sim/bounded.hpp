// Bounded-processor list-scheduling simulation: how the DAG executes on P
// workers (the unbounded critical path is the P -> infinity limit). Used by
// the scaling ablation to compare simulated makespans against the roofline
// bound max(T/P, cp), and by the tree autotuner to rank candidate algorithms
// under a per-kind weight profile before touching real hardware.
#pragma once

#include <array>
#include <vector>

#include "dag/task_graph.hpp"

namespace tiledqr::sim {

/// Full schedule produced by the list scheduler; `Time` is `long` for the
/// Table-1 unit weights and `double` for measured per-kind seconds.
template <typename Time>
struct BasicBoundedResult {
  Time makespan = 0;
  double utilization = 0.0;          ///< total work / (P * makespan)
  std::vector<Time> start;           ///< start time per task
  std::vector<int> worker;           ///< executing worker per task
};

using BoundedResult = BasicBoundedResult<long>;
using WeightedBoundedResult = BasicBoundedResult<double>;

/// Ready-task dispatch rule for the list scheduler (mirrors the runtime's
/// SchedulePriority).
enum class SimPriority {
  EmissionOrder,  ///< smallest DAG index first (elimination-list order)
  CriticalPath,   ///< longest weighted path to a sink first
};

/// Greedy list scheduler: whenever a worker is free and tasks are ready, the
/// highest-priority ready task starts. Table 1 weights.
[[nodiscard]] BoundedResult simulate_bounded(const dag::TaskGraph& g, int workers,
                                             SimPriority priority = SimPriority::EmissionOrder);

/// Same with arbitrary per-kind weights (e.g. measured kernel seconds);
/// index by static_cast<int>(KernelKind). With SimPriority::CriticalPath the
/// scheduling keys are the *weighted* downward ranks.
[[nodiscard]] WeightedBoundedResult simulate_bounded_weighted(
    const dag::TaskGraph& g, int workers, const std::array<double, 6>& kind_weight,
    SimPriority priority = SimPriority::EmissionOrder);

}  // namespace tiledqr::sim
