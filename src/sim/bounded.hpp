// Bounded-processor list-scheduling simulation: how the DAG executes on P
// workers (the unbounded critical path is the P -> infinity limit). Used by
// the scaling ablation to compare simulated makespans against the roofline
// bound max(T/P, cp).
#pragma once

#include <array>
#include <vector>

#include "dag/task_graph.hpp"

namespace tiledqr::sim {

struct BoundedResult {
  long makespan = 0;
  double utilization = 0.0;          ///< total work / (P * makespan)
  std::vector<long> start;           ///< start time per task
  std::vector<int> worker;           ///< executing worker per task
};

/// Ready-task dispatch rule for the list scheduler (mirrors the runtime's
/// SchedulePriority).
enum class SimPriority {
  EmissionOrder,  ///< smallest DAG index first (elimination-list order)
  CriticalPath,   ///< longest weighted path to a sink first
};

/// Greedy list scheduler: whenever a worker is free and tasks are ready, the
/// highest-priority ready task starts. Table 1 weights.
[[nodiscard]] BoundedResult simulate_bounded(const dag::TaskGraph& g, int workers,
                                             SimPriority priority = SimPriority::EmissionOrder);

/// Same with arbitrary per-kind weights (e.g. measured kernel seconds).
[[nodiscard]] double simulate_bounded_weighted(const dag::TaskGraph& g, int workers,
                                               const std::array<double, 6>& kind_weight);

}  // namespace tiledqr::sim
