// Dynamic tiled algorithms (paper §3.2): Asap starts an elimination in a
// column as soon as at least two rows are ready there, pairing the sorted
// ready rows like Fibonacci/Greedy (top half pivots, bottom half victims).
// Grasap(k) runs Greedy's static pairings in the first q-k columns and Asap
// in the last k. Both require co-simulating the weighted tiled execution, so
// they live in the simulator; the resulting elimination lists can then be
// executed by the real runtime.
#pragma once

#include <vector>

#include "trees/elimination.hpp"

namespace tiledqr::sim {

struct DynamicResult {
  trees::EliminationList list;                 ///< realized elimination order
  std::vector<std::vector<long>> zero_time;    ///< Table 4a-style zero times
  long critical_path = 0;                      ///< makespan, Table 1 units
};

/// Fully dynamic Asap algorithm.
[[nodiscard]] DynamicResult simulate_asap(int p, int q);

/// Grasap(k): Greedy pairings for columns 0..q-k-1, Asap for the last k
/// columns. Grasap(0) == Greedy, Grasap(q) == Asap.
[[nodiscard]] DynamicResult simulate_grasap(int p, int q, int trailing_asap_cols);

/// Executes an arbitrary fixed elimination list through the dynamic engine
/// (fire-when-ready semantics). Used for cross-validation against the static
/// DAG critical path.
[[nodiscard]] DynamicResult simulate_fixed(int p, int q, const trees::EliminationList& list);

}  // namespace tiledqr::sim
