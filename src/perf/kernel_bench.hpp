// Kernel-level timing harness (regenerates Figures 4 and 5).
//
// Rates are nominal flops (Table 1 weights, x4 for complex) divided by wall
// time, matching the paper's GFLOP/s axes. In-cache mode times repeated
// calls on resident operands; out-of-cache mode rotates through operand sets
// whose footprint exceeds the last-level cache (MultCallFlushLRU-style).
#pragma once

#include <array>

#include "kernels/kernels.hpp"

namespace tiledqr::perf {

enum class CacheMode { InCache, OutOfCache };

/// GFLOP/s per kernel, plus the paper's composite rates and a GEMM baseline.
struct KernelRates {
  /// Indexed by kernels::KernelKind.
  std::array<double, 6> kernel{};
  double geqrt_plus_ttqrt = 0.0;  ///< the TT pair doing TSQRT's job (6 units)
  double unmqr_plus_ttmqr = 0.0;  ///< the TT pair doing TSMQR's job (12... 12 vs 12 units)
  double gemm = 0.0;

  [[nodiscard]] double of(kernels::KernelKind k) const { return kernel[size_t(k)]; }
};

/// Measures all six kernels + gemm for tile size nb and inner block ib.
template <typename T>
[[nodiscard]] KernelRates measure_kernel_rates(int nb, int ib, CacheMode mode, int reps);

/// Median per-call seconds for each kernel kind (used to weight the DAG with
/// measured times).
template <typename T>
[[nodiscard]] std::array<double, 6> measure_kernel_seconds(int nb, int ib, CacheMode mode,
                                                           int reps);

}  // namespace tiledqr::perf
