// Kernel-level timing harness (regenerates Figures 4 and 5).
//
// Rates are nominal flops (Table 1 weights, x4 for complex) divided by wall
// time, matching the paper's GFLOP/s axes. In-cache mode times repeated
// calls on resident operands; out-of-cache mode rotates through operand sets
// whose footprint exceeds the last-level cache (MultCallFlushLRU-style).
#pragma once

#include <array>
#include <string>

#include "kernels/kernels.hpp"

namespace tiledqr::perf {

enum class CacheMode { InCache, OutOfCache };

/// GFLOP/s per kernel, plus the paper's composite rates and a GEMM baseline.
struct KernelRates {
  /// Indexed by kernels::KernelKind.
  std::array<double, 6> kernel{};
  double geqrt_plus_ttqrt = 0.0;  ///< the TT pair doing TSQRT's job (6 units)
  double unmqr_plus_ttmqr = 0.0;  ///< the TT pair doing TSMQR's job (12... 12 vs 12 units)
  double gemm = 0.0;

  [[nodiscard]] double of(kernels::KernelKind k) const { return kernel[size_t(k)]; }
};

/// Measures all six kernels + gemm for tile size nb and inner block ib.
template <typename T>
[[nodiscard]] KernelRates measure_kernel_rates(int nb, int ib, CacheMode mode, int reps);

/// Median per-call seconds for each kernel kind (used to weight the DAG with
/// measured times).
template <typename T>
[[nodiscard]] std::array<double, 6> measure_kernel_seconds(int nb, int ib, CacheMode mode,
                                                           int reps);

/// A named per-kernel-kind weight vector for ranking candidate elimination
/// trees with the bounded-processor simulator (the tree autotuner's stage-1
/// model). `id` is a stable string that keys tuning-table entries, so
/// decisions made under one profile are never served under another.
struct WeightProfile {
  std::string id;
  std::array<double, 6> weight{};  ///< time units per kernel call, by KernelKind
};

/// The paper's Table-1 flop-count weights (GEQRT 4, UNMQR 6, TSQRT 6,
/// TSMQR 12, TTQRT 2, TTMQR 6). Treats every kernel as equally efficient,
/// which favors TT trees — useful as the "pure flops" baseline.
[[nodiscard]] WeightProfile table1_profile();

/// Table-1 weights corrected by the kernel efficiencies of the paper's §5
/// study: the TS kernels (TSQRT/TSMQR) run at full rate thanks to their
/// GEMM-like granularity, everything else at ~70% of it. This is the profile
/// that reproduces the paper's crossover — TS-family flat/plasma trees win
/// on squarish grids, Greedy/Fibonacci win on tall ones — and is the
/// autotuner's default.
[[nodiscard]] WeightProfile sc11_profile();

/// This machine's measured kernel seconds as a profile (median per-call
/// wall time via measure_kernel_seconds); the id records scalar type, tile
/// sizes, and cache mode — NOT the host. Two machines produce the same id
/// with different weights, so tuning tables built under a measured profile
/// are per-host artifacts: don't ship them across a heterogeneous fleet
/// (the built-in table1/sc11 profiles are host-independent and safe to
/// share).
template <typename T>
[[nodiscard]] WeightProfile measured_profile(int nb, int ib, CacheMode mode, int reps);

}  // namespace tiledqr::perf
