#include "perf/kernel_bench.hpp"

#include <algorithm>
#include <complex>
#include <vector>

#include "common/stringf.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"
#include "perf/cache_flush.hpp"

namespace tiledqr::perf {

namespace {

using kernels::ApplyTrans;
using kernels::KernelKind;

/// One operand set: enough tiles + T storage for any kernel.
template <typename T>
struct OperandSet {
  Matrix<T> a1, a2, a2tri, c1, c2, t;

  OperandSet(int nb, int ib, std::uint64_t seed)
      : a1(nb, nb), a2(nb, nb), a2tri(nb, nb), c1(nb, nb), c2(nb, nb), t(ib, nb) {
    reset(seed);
  }

  void reset(std::uint64_t seed) {
    randomize(a1.view(), seed * 8 + 0);
    randomize(a2.view(), seed * 8 + 1);
    randomize(a2tri.view(), seed * 8 + 2);
    randomize(c1.view(), seed * 8 + 3);
    randomize(c2.view(), seed * 8 + 4);
    // TTQRT expects triangular operands.
    auto clear_lower = [](Matrix<T>& m) {
      for (std::int64_t j = 0; j < m.cols(); ++j)
        for (std::int64_t i = j + 1; i < m.rows(); ++i) m(i, j) = T(0);
    };
    clear_lower(a1);
    clear_lower(a2tri);
  }
};

/// Times `body(set)` over rotating operand sets and returns the median
/// per-call seconds. Operand sets are refreshed from fresh random data every
/// cycle so repeated factorizations never feed on their own output.
template <typename T, typename Body>
double time_kernel(int nb, int ib, CacheMode mode, int reps, Body&& body) {
  const size_t set_bytes = size_t(nb) * size_t(nb) * sizeof(T) * 4;
  const size_t want_sets =
      mode == CacheMode::OutOfCache
          ? std::max<size_t>(size_t(reps), (size_t(96) << 20) / std::max<size_t>(set_bytes, 1))
          : 1;
  const size_t nsets = std::clamp<size_t>(want_sets, 1, 64);

  std::vector<OperandSet<T>> sets;
  sets.reserve(nsets);
  for (size_t s = 0; s < nsets; ++s) sets.emplace_back(nb, ib, 1000 + s);

  // Pristine copies to restore mutated operands cheaply.
  std::vector<OperandSet<T>> pristine = sets;

  // Warmup (not timed).
  body(sets[0]);
  sets[0] = pristine[0];
  if (mode == CacheMode::OutOfCache) {
    static CacheFlusher flusher;
    flusher.flush();
  }

  std::vector<double> times;
  times.reserve(size_t(reps));
  for (int r = 0; r < reps; ++r) {
    auto& set = sets[size_t(r) % nsets];
    WallTimer timer;
    body(set);
    times.push_back(timer.seconds());
    // Restore outside the timed region; for in-cache runs this also keeps
    // the operands resident.
    set = pristine[size_t(r) % nsets];
  }
  std::nth_element(times.begin(), times.begin() + long(times.size()) / 2, times.end());
  return times[times.size() / 2];
}

}  // namespace

template <typename T>
std::array<double, 6> measure_kernel_seconds(int nb, int ib, CacheMode mode, int reps) {
  std::array<double, 6> sec{};
  sec[size_t(KernelKind::GEQRT)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::geqrt(ib, s.a2.view(), s.t.view());
  });
  sec[size_t(KernelKind::UNMQR)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::unmqr(ApplyTrans::ConjTrans, ib, s.a2.view(), s.t.view(), s.c1.view());
  });
  sec[size_t(KernelKind::TSQRT)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::tsqrt(ib, s.a1.view(), s.a2.view(), s.t.view());
  });
  sec[size_t(KernelKind::TSMQR)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::tsmqr(ApplyTrans::ConjTrans, ib, s.a2.view(), s.t.view(), s.c1.view(), s.c2.view());
  });
  sec[size_t(KernelKind::TTQRT)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::ttqrt(ib, s.a1.view(), s.a2tri.view(), s.t.view());
  });
  sec[size_t(KernelKind::TTMQR)] = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    kernels::ttmqr(ApplyTrans::ConjTrans, ib, s.a1.view(), s.t.view(), s.c1.view(), s.c2.view());
  });
  return sec;
}

template <typename T>
KernelRates measure_kernel_rates(int nb, int ib, CacheMode mode, int reps) {
  KernelRates rates;
  auto sec = measure_kernel_seconds<T>(nb, ib, mode, reps);
  constexpr bool cplx = is_complex_v<T>;
  // Rates are per QR kernel; the LQ wrappers share their dual's slot.
  for (int k = 0; k < kernels::kNumQrKernelKinds; ++k) {
    double flops = kernels::kernel_flops(KernelKind(k), nb, cplx);
    rates.kernel[size_t(k)] = flops / sec[size_t(k)] * 1e-9;
  }
  auto combo = [&](KernelKind x, KernelKind y) {
    double flops = kernels::kernel_flops(x, nb, cplx) + kernels::kernel_flops(y, nb, cplx);
    return flops / (sec[size_t(x)] + sec[size_t(y)]) * 1e-9;
  };
  rates.geqrt_plus_ttqrt = combo(KernelKind::GEQRT, KernelKind::TTQRT);
  rates.unmqr_plus_ttmqr = combo(KernelKind::UNMQR, KernelKind::TTMQR);

  // GEMM baseline: C -= A * B on nb tiles.
  double gemm_sec = time_kernel<T>(nb, ib, mode, reps, [&](OperandSet<T>& s) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), s.a2.view(), s.c1.view(), T(1),
               s.c2.view());
  });
  rates.gemm = blas::gemm_flops(nb, nb, nb, cplx) / gemm_sec * 1e-9;
  return rates;
}

WeightProfile table1_profile() {
  WeightProfile p;
  p.id = "table1";
  for (int k = 0; k < kernels::kNumQrKernelKinds; ++k)
    p.weight[size_t(k)] = double(kernels::kernel_weight(KernelKind(k)));
  return p;
}

WeightProfile sc11_profile() {
  // §5 kernel study, distilled to one knob: the TS kernels run at the
  // reference rate, every other kernel at 70% of it (the TT kernels and the
  // panel kernels work on triangles / skinny blocks and lose granularity).
  constexpr double kNonTsRate = 0.7;
  WeightProfile p = table1_profile();
  p.id = "sc11";
  for (int k = 0; k < kernels::kNumQrKernelKinds; ++k) {
    auto kind = KernelKind(k);
    if (kind != KernelKind::TSQRT && kind != KernelKind::TSMQR)
      p.weight[size_t(k)] /= kNonTsRate;
  }
  return p;
}

namespace {

template <typename T>
const char* scalar_tag() {
  if constexpr (is_complex_v<T>) return sizeof(T) == 8 ? "c64" : "c128";
  else return sizeof(T) == 4 ? "f32" : "f64";
}

}  // namespace

template <typename T>
WeightProfile measured_profile(int nb, int ib, CacheMode mode, int reps) {
  WeightProfile p;
  p.id = stringf("measured-%s(nb=%d,ib=%d,%s)", scalar_tag<T>(), nb, ib,
                 mode == CacheMode::InCache ? "in" : "out");
  p.weight = measure_kernel_seconds<T>(nb, ib, mode, reps);
  return p;
}

template WeightProfile measured_profile<float>(int, int, CacheMode, int);
template WeightProfile measured_profile<double>(int, int, CacheMode, int);
template WeightProfile measured_profile<std::complex<float>>(int, int, CacheMode, int);
template WeightProfile measured_profile<std::complex<double>>(int, int, CacheMode, int);

template std::array<double, 6> measure_kernel_seconds<float>(int, int, CacheMode, int);
template std::array<double, 6> measure_kernel_seconds<double>(int, int, CacheMode, int);
template std::array<double, 6> measure_kernel_seconds<std::complex<float>>(int, int, CacheMode,
                                                                           int);
template std::array<double, 6> measure_kernel_seconds<std::complex<double>>(int, int, CacheMode,
                                                                            int);
template KernelRates measure_kernel_rates<float>(int, int, CacheMode, int);
template KernelRates measure_kernel_rates<double>(int, int, CacheMode, int);
template KernelRates measure_kernel_rates<std::complex<float>>(int, int, CacheMode, int);
template KernelRates measure_kernel_rates<std::complex<double>>(int, int, CacheMode, int);

}  // namespace tiledqr::perf
