// Cache-control utilities for the kernel benchmarks.
//
// The paper distinguishes in-cache and out-of-cache kernel performance using
// the No Flush and MultCallFlushLRU strategies of Whaley & Castaldo [17].
// Offline we emulate MultCallFlushLRU by (a) rotating through enough operand
// copies that successive calls touch cold data and (b) sweeping a buffer
// larger than the last-level cache between measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace tiledqr::perf {

/// Sweeps a large buffer to evict cached operand data.
class CacheFlusher {
 public:
  /// `bytes` should exceed the last-level cache; default 64 MiB.
  explicit CacheFlusher(std::size_t bytes = std::size_t(64) << 20);

  /// Touches every cache line of the buffer (read-modify-write).
  void flush();

 private:
  std::vector<char> buffer_;
  volatile long sink_ = 0;
};

}  // namespace tiledqr::perf
