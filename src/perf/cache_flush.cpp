#include "perf/cache_flush.hpp"

namespace tiledqr::perf {

CacheFlusher::CacheFlusher(std::size_t bytes) : buffer_(bytes, 1) {}

void CacheFlusher::flush() {
  long acc = 0;
  for (std::size_t i = 0; i < buffer_.size(); i += 64) {
    acc += buffer_[i];
    buffer_[i] = char(acc);
  }
  sink_ = sink_ + acc;
}

}  // namespace tiledqr::perf
