#include "obs/critical_path.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "dag/task_graph.hpp"
#include "kernels/kernels.hpp"
#include "obs/kernel_profile.hpp"
#include "sim/critical_path.hpp"

namespace tiledqr::obs {

namespace {

// One joined event: the trace record of a graph task, plus which track ran
// it. Indexed by task id once a group is selected.
struct Joined {
  const TraceEvent* ev = nullptr;
  int track = -1;  ///< index into the track-name table
};

int gap_bucket(std::int64_t gap_ns) {
  if (gap_ns <= 0) return 0;
  int b = std::bit_width(static_cast<std::uint64_t>(gap_ns)) - 1;
  return std::min(b, CriticalPathBreakdown::kGapBuckets - 1);
}

const char* kind_name(std::uint8_t kind) {
  return kind < kernels::kNumKernelKinds
             ? kernels::kernel_name(static_cast<kernels::KernelKind>(kind))
             : "task";
}

}  // namespace

CriticalPathBreakdown build_critical_path_breakdown(
    const std::vector<TrackSnapshot>& tracks, const dag::TaskGraph& graph,
    const BreakdownOptions& options) {
  CriticalPathBreakdown b;
  const std::size_t ntasks = graph.tasks.size();

  // Group events by (submission, component); a group is usable only if every
  // task index fits the graph — a trace can hold several factorizations and
  // only groups shaped like this graph can be joined against it.
  struct Group {
    long events = 0;
    std::int64_t last_end = std::numeric_limits<std::int64_t>::min();
    bool fits = true;
  };
  std::map<std::pair<std::uint32_t, std::int32_t>, Group> groups;
  for (const auto& t : tracks) {
    b.dropped += t.dropped;
    for (const auto& e : t.events) {
      if (e.start_ns < options.since_ns) continue;
      Group& g = groups[{e.submission, e.component}];
      ++g.events;
      g.last_end = std::max(g.last_end, e.end_ns);
      if (e.task < 0 || std::size_t(e.task) >= ntasks) g.fits = false;
    }
  }

  bool found = false;
  std::pair<std::uint32_t, std::int32_t> key{};
  if (options.submission != 0) {
    for (const auto& [k, g] : groups) {
      if (k.first != options.submission) continue;
      if (options.component >= 0 && k.second != options.component) continue;
      if (!g.fits) continue;
      if (!found || g.events > groups[key].events ||
          (g.events == groups[key].events && g.last_end > groups[key].last_end)) {
        key = k;
        found = true;
      }
    }
  } else {
    for (const auto& [k, g] : groups) {
      if (!g.fits) continue;
      if (!found || g.events > groups[key].events ||
          (g.events == groups[key].events && g.last_end > groups[key].last_end)) {
        key = k;
        found = true;
      }
    }
  }
  if (!found) return b;
  b.submission = key.first;
  b.component = key.second;

  // Join the selected group: task id -> (event, track). A task recorded
  // twice (ring anomalies only) keeps its first event.
  std::vector<Joined> by_task(ntasks);
  std::vector<std::string> track_names;
  for (const auto& t : tracks) {
    int ti = -1;
    for (const auto& e : t.events) {
      if (e.start_ns < options.since_ns) continue;
      if (e.submission != key.first || e.component != key.second) continue;
      if (ti < 0) {
        ti = int(track_names.size());
        track_names.push_back(t.name);
      }
      if (by_task[std::size_t(e.task)].ev == nullptr) {
        by_task[std::size_t(e.task)] = {&e, ti};
        ++b.events_matched;
      }
    }
  }
  if (b.events_matched == 0) return b;

  // Predecessor lists, reversed from the graph's successor edges.
  std::vector<std::vector<std::int32_t>> preds(ntasks);
  for (std::size_t id = 0; id < ntasks; ++id) {
    for (std::int32_t s : graph.tasks[id].succ) {
      if (s >= 0 && std::size_t(s) < ntasks) preds[std::size_t(s)].push_back(std::int32_t(id));
    }
  }

  // Realized chain: start at the latest-ending recorded task and repeatedly
  // step to the recorded predecessor that finished last — the dependency
  // that actually gated each start. Stop when no predecessor was recorded
  // (the chain's head, or a ring drop truncating it).
  std::int32_t cur = -1;
  std::int64_t cur_end = std::numeric_limits<std::int64_t>::min();
  for (std::size_t id = 0; id < ntasks; ++id) {
    if (by_task[id].ev != nullptr && by_task[id].ev->end_ns > cur_end) {
      cur = std::int32_t(id);
      cur_end = by_task[id].ev->end_ns;
    }
  }
  std::vector<std::int32_t> chain;  // built tail-first, reversed below
  while (cur >= 0) {
    chain.push_back(cur);
    std::int32_t best = -1;
    std::int64_t best_end = std::numeric_limits<std::int64_t>::min();
    for (std::int32_t p : preds[std::size_t(cur)]) {
      const Joined& jp = by_task[std::size_t(p)];
      if (jp.ev != nullptr && jp.ev->end_ns > best_end) {
        best = p;
        best_end = jp.ev->end_ns;
      }
    }
    cur = best;
  }
  std::reverse(chain.begin(), chain.end());

  b.valid = true;
  b.path_tasks = long(chain.size());
  const Joined& head = by_task[std::size_t(chain.front())];
  const Joined& tail = by_task[std::size_t(chain.back())];
  b.realized_ns = tail.ev->end_ns - head.ev->start_ns;

  std::map<int, CriticalPathWorker*> by_track;
  auto worker_of = [&](int track) -> CriticalPathWorker& {
    auto it = by_track.find(track);
    if (it == by_track.end()) {
      b.workers.push_back(CriticalPathWorker{track_names[std::size_t(track)], 0, 0, 0});
      it = by_track.emplace(track, &b.workers.back()).first;
    }
    return *it->second;
  };
  // b.workers uses a deque-free vector: reserve so pointers stay valid.
  b.workers.reserve(track_names.size());

  std::vector<GapEdge> edges;
  for (std::size_t n = 0; n < chain.size(); ++n) {
    const Joined& jt = by_task[std::size_t(chain[n])];
    const TraceEvent& e = *jt.ev;
    const std::int64_t dur = e.end_ns - e.start_ns;
    b.work_ns += dur;
    if (e.kind < CriticalPathBreakdown::kKinds) {
      b.work_by_kind[e.kind] += dur;
      ++b.tasks_by_kind[e.kind];
    }
    CriticalPathWorker& w = worker_of(jt.track);
    ++w.tasks;
    w.work_ns += dur;
    if (n == 0) continue;
    const Joined& jp = by_task[std::size_t(chain[n - 1])];
    GapEdge edge;
    edge.pred = chain[n - 1];
    edge.succ = chain[n];
    edge.pred_kind = jp.ev->kind;
    edge.succ_kind = e.kind;
    // Unclamped: both stamps come from one steady clock and the predecessor
    // finishes before the successor is released, so this is >= 0 in practice
    // — and leaving it exact keeps work + gap == realized an identity.
    edge.gap_ns = e.start_ns - jp.ev->end_ns;
    edge.cross_worker = jt.track != jp.track;
    edge.stolen = (e.flags & TraceEvent::kFlagStolen) != 0;
    b.gap_ns += edge.gap_ns;
    if (edge.cross_worker) {
      b.cross_gap_ns += edge.gap_ns;
    } else {
      b.dispatch_gap_ns += edge.gap_ns;
    }
    if (edge.stolen) ++b.stolen_edges;
    w.gap_ns += edge.gap_ns;
    ++b.gap_hist[std::size_t(gap_bucket(edge.gap_ns))];
    edge.pred_track = track_names[std::size_t(jp.track)];
    edge.succ_track = track_names[std::size_t(jt.track)];
    edges.push_back(std::move(edge));
  }

  std::sort(edges.begin(), edges.end(),
            [](const GapEdge& a, const GapEdge& c) { return a.gap_ns > c.gap_ns; });
  const int keep = std::max(0, options.top_k);
  if (int(edges.size()) > keep) edges.resize(std::size_t(keep));
  b.top_gaps = std::move(edges);
  std::sort(b.workers.begin(), b.workers.end(),
            [](const CriticalPathWorker& a, const CriticalPathWorker& c) {
              return a.track < c.track;
            });

  if (options.with_model) {
    b.model_cp_seconds =
        sim::critical_path_weighted(graph, KernelProfiler::global().live_profile().weight);
    if (b.model_cp_seconds > 0.0) {
      b.realized_over_model = double(b.realized_ns) / 1e9 / b.model_cp_seconds;
    }
  }
  return b;
}

CriticalPathBreakdown build_critical_path_breakdown(const Tracer& tracer,
                                                    const dag::TaskGraph& graph,
                                                    const BreakdownOptions& options) {
  BreakdownOptions opt = options;
  opt.since_ns = std::max(opt.since_ns, tracer.mark_ns());
  // collect_since already filtered; the group pass re-checks since_ns, which
  // is harmless (no event below the mark survives collection).
  return build_critical_path_breakdown(tracer.collect_since(opt.since_ns), graph, opt);
}

std::string format_critical_path_breakdown(const CriticalPathBreakdown& b) {
  if (!b.valid) return "";
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "critical path (sub %u component %d): %ld tasks, realized %.3f ms\n",
                b.submission, b.component, b.path_tasks, double(b.realized_ns) / 1e6);
  out += line;
  const double rel = b.realized_ns > 0 ? 100.0 / double(b.realized_ns) : 0.0;
  std::snprintf(line, sizeof(line),
                "  work %.3f ms (%.1f%%), gap %.3f ms (%.1f%%): dispatch %.3f ms, "
                "cross-worker %.3f ms, %ld stolen edges\n",
                double(b.work_ns) / 1e6, double(b.work_ns) * rel, double(b.gap_ns) / 1e6,
                double(b.gap_ns) * rel, double(b.dispatch_gap_ns) / 1e6,
                double(b.cross_gap_ns) / 1e6, b.stolen_edges);
  out += line;
  if (b.model_cp_seconds >= 0.0) {
    std::snprintf(line, sizeof(line),
                  "  model critical path (live profile) %.3f ms, realized/model %.2f\n",
                  b.model_cp_seconds * 1e3, b.realized_over_model);
    out += line;
  }
  out += "  work by kind:";
  bool any = false;
  for (int k = 0; k < CriticalPathBreakdown::kKinds; ++k) {
    if (b.tasks_by_kind[std::size_t(k)] == 0) continue;
    std::snprintf(line, sizeof(line), " %s %ldx %.3fms",
                  kernels::kernel_name(static_cast<kernels::KernelKind>(k)),
                  b.tasks_by_kind[std::size_t(k)], double(b.work_by_kind[std::size_t(k)]) / 1e6);
    out += line;
    any = true;
  }
  if (!any) out += " (none)";
  out += '\n';
  for (const auto& w : b.workers) {
    std::snprintf(line, sizeof(line), "  on %-14s %4ld tasks, work %.3f ms, gap %.3f ms\n",
                  w.track.c_str(), w.tasks, double(w.work_ns) / 1e6, double(w.gap_ns) / 1e6);
    out += line;
  }
  for (const auto& g : b.top_gaps) {
    std::snprintf(line, sizeof(line),
                  "  gap %8.3f ms  %s #%d (%s) -> %s #%d (%s)%s%s\n", double(g.gap_ns) / 1e6,
                  kind_name(g.pred_kind), g.pred, g.pred_track.c_str(), kind_name(g.succ_kind),
                  g.succ, g.succ_track.c_str(), g.cross_worker ? " [cross]" : " [local]",
                  g.stolen ? " [stolen]" : "");
    out += line;
  }
  if (b.dropped > 0) {
    std::snprintf(line, sizeof(line),
                  "  note: %ld events dropped — the realized chain may be truncated\n",
                  b.dropped);
    out += line;
  }
  return out;
}

}  // namespace tiledqr::obs
