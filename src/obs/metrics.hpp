// Unified metrics registry: one snapshot API over every component's
// counters, gauges, and latency histograms.
//
// Two kinds of metric feed a snapshot:
//
//   * Named metrics owned by the registry (counter()/gauge()/histogram()):
//     ad-hoc instrumentation points that don't belong to a component.
//   * Sources: components that already keep their own atomics (ThreadPool,
//     PlanCache, Tuner, FactorStream) register a callback that flattens
//     their Stats into Samples at snapshot time. Registration is RAII
//     (SourceHandle); when a source dies, its final samples are retained so
//     e.g. a closed stream's totals still appear in the end-of-run dump.
//
// Histograms are fixed-bucket (one bucket per power of two nanoseconds, 64
// buckets), all-atomic: record() is two relaxed fetch_adds plus a bit scan,
// safe from any thread, and quantiles are read from the bucket boundaries
// (bounded relative error ~2x, plenty for p50/p95 latency reporting).
//
// `TILEDQR_METRICS=<path>` dumps the final snapshot at process exit
// (".json" extension → JSON, anything else → the text table).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tiledqr::obs {

/// One flattened metric value at snapshot time.
struct Sample {
  std::string name;
  double value = 0.0;
};

/// Monotone counter.
class Counter {
 public:
  void add(long n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] long value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> v_{0};
};

/// Instantaneous value.
class Gauge {
 public:
  void set(long n) noexcept { v_.store(n, std::memory_order_relaxed); }
  void add(long n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] long value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> v_{0};
};

/// Fixed-bucket latency histogram over nanosecond durations. Bucket b holds
/// durations in [2^b, 2^(b+1)) ns (bucket 0 also takes 0 and negatives).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record_ns(std::int64_t ns) noexcept;

  [[nodiscard]] long count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_ns() const noexcept;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]); 0 when
  /// empty.
  [[nodiscard]] double quantile_ns(double q) const noexcept;
  [[nodiscard]] std::int64_t max_ns() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  /// Flattens to `<prefix>.count`, `.mean_us`, `.p50_us`, `.p95_us`,
  /// `.max_us`. Emits nothing when empty.
  void append_samples(const std::string& prefix, std::vector<Sample>& out) const;

 private:
  std::atomic<long> count_{0};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> max_{0};
  std::atomic<long> bucket_[kBuckets]{};
};

class MetricsRegistry {
 public:
  /// Appends the component's current samples (names relative to the source;
  /// the registry prefixes "<source>."). Called with the registry lock held:
  /// must not call back into the registry.
  using Source = std::function<void(std::vector<Sample>&)>;

  /// RAII registration; destruction retires the source, freezing its last
  /// samples into the registry.
  class SourceHandle {
   public:
    SourceHandle() = default;
    SourceHandle(SourceHandle&& other) noexcept
        : reg_(std::exchange(other.reg_, nullptr)), id_(other.id_) {}
    SourceHandle& operator=(SourceHandle&& other) noexcept {
      if (this != &other) {
        release();
        reg_ = std::exchange(other.reg_, nullptr);
        id_ = other.id_;
      }
      return *this;
    }
    SourceHandle(const SourceHandle&) = delete;
    SourceHandle& operator=(const SourceHandle&) = delete;
    ~SourceHandle() { release(); }

   private:
    friend class MetricsRegistry;
    SourceHandle(MetricsRegistry* reg, long id) : reg_(reg), id_(id) {}
    void release();
    MetricsRegistry* reg_ = nullptr;
    long id_ = 0;
  };

  struct Snapshot {
    std::vector<Sample> samples;
    [[nodiscard]] std::string to_text() const;
    [[nodiscard]] std::string to_json() const;
    /// First sample whose name matches exactly; NaN when absent.
    [[nodiscard]] double value(const std::string& name) const;
    /// Samples whose names start with `prefix`.
    [[nodiscard]] std::vector<Sample> with_prefix(const std::string& prefix) const;
  };

  [[nodiscard]] SourceHandle register_source(std::string name, Source source);

  /// Named ad-hoc metrics, created on first use; references stay valid for
  /// the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// "pool0", "pool1", ... — process-unique instance labels per prefix.
  [[nodiscard]] std::string unique_label(const std::string& prefix);

  [[nodiscard]] Snapshot snapshot() const;

  /// Mid-process dump for the health/SIGUSR1 path: writes snapshot() to
  /// `path` (".json" extension → JSON, anything else → the text table),
  /// append-safe — an existing file gets a unique "-N" suffix instead of
  /// being overwritten (obs::unique_export_path). Returns the path actually
  /// written; throws tiledqr::Error on I/O failure.
  std::string dump_now(const std::string& path) const;

  /// Drop retained (dead-source) samples; live sources are unaffected.
  void clear_retired();

  static MetricsRegistry& global();

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  friend class SourceHandle;
  void deregister(long id);

  struct Entry {
    long id = 0;
    std::string name;
    Source source;
  };

  mutable std::mutex mu_;
  std::vector<Entry> sources_;
  // Final samples of dead sources, already prefixed; bounded so a long-lived
  // server opening many streams cannot grow the registry without bound.
  std::deque<Sample> retired_;
  long next_id_ = 1;
  std::string dump_path_;  // TILEDQR_METRICS exit dump, global() only
  std::map<std::string, long> label_counts_;
  // std::map nodes give named metrics stable addresses.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;

  static constexpr std::size_t kMaxRetired = 4096;
};

}  // namespace tiledqr::obs
