#include "obs/kernel_profile.hpp"

#include "kernels/kernels.hpp"

namespace tiledqr::obs {

long KernelProfiler::total_samples() const noexcept {
  long n = 0;
  for (const auto& h : hist_) n += h.count();
  return n;
}

perf::WeightProfile KernelProfiler::live_profile(const perf::WeightProfile& fallback) const {
  if (total_samples() == 0) return fallback;

  perf::WeightProfile out;
  out.id = "live";
  // The profile is 6-wide; fold each LQ kind into its QR dual's slot
  // (count-weighted mean across both histograms).
  constexpr int kSlots = kernels::kNumQrKernelKinds;
  long slot_count[kSlots] = {};
  double slot_seconds[kSlots] = {};
  for (int k = 0; k < kKinds; ++k) {
    const int s = int(kernels::qr_dual(static_cast<kernels::KernelKind>(k)));
    slot_count[s] += hist_[k].count();
    slot_seconds[s] += double(hist_[k].count()) * mean_seconds(k);
  }
  // Rescale fallback weights into observed-seconds units using the slots
  // that were actually seen, so unobserved slots stay comparable.
  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (int s = 0; s < kSlots; ++s) {
    if (slot_count[s] > 0 && fallback.weight[std::size_t(s)] > 0.0) {
      ratio_sum += slot_seconds[s] / double(slot_count[s]) / fallback.weight[std::size_t(s)];
      ++ratio_n;
    }
  }
  double scale = ratio_n > 0 ? ratio_sum / ratio_n : 1.0;
  for (int s = 0; s < kSlots; ++s) {
    out.weight[std::size_t(s)] = slot_count[s] > 0
                                     ? slot_seconds[s] / double(slot_count[s])
                                     : fallback.weight[std::size_t(s)] * scale;
  }
  return out;
}

void KernelProfiler::reset() noexcept {
  for (auto& h : hist_) h.reset();
}

KernelProfiler& KernelProfiler::global() {
  static KernelProfiler profiler;
  static MetricsRegistry::SourceHandle source =
      MetricsRegistry::global().register_source("kernels", [](std::vector<Sample>& out) {
        for (int k = 0; k < kKinds; ++k) {
          profiler.hist_[k].append_samples(
              kernels::kernel_name(static_cast<kernels::KernelKind>(k)), out);
        }
      });
  return profiler;
}

}  // namespace tiledqr::obs
