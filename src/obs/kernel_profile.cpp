#include "obs/kernel_profile.hpp"

#include "kernels/kernels.hpp"

namespace tiledqr::obs {

long KernelProfiler::total_samples() const noexcept {
  long n = 0;
  for (const auto& h : hist_) n += h.count();
  return n;
}

perf::WeightProfile KernelProfiler::live_profile(const perf::WeightProfile& fallback) const {
  if (total_samples() == 0) return fallback;

  perf::WeightProfile out;
  out.id = "live";
  // Rescale fallback weights into observed-seconds units using the kinds
  // that were actually seen, so unobserved kinds stay comparable.
  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (int k = 0; k < kKinds; ++k) {
    if (hist_[k].count() > 0 && fallback.weight[std::size_t(k)] > 0.0) {
      ratio_sum += mean_seconds(k) / fallback.weight[std::size_t(k)];
      ++ratio_n;
    }
  }
  double scale = ratio_n > 0 ? ratio_sum / ratio_n : 1.0;
  for (int k = 0; k < kKinds; ++k) {
    out.weight[std::size_t(k)] = hist_[k].count() > 0
                                     ? mean_seconds(k)
                                     : fallback.weight[std::size_t(k)] * scale;
  }
  return out;
}

void KernelProfiler::reset() noexcept {
  for (auto& h : hist_) h.reset();
}

KernelProfiler& KernelProfiler::global() {
  static KernelProfiler profiler;
  static MetricsRegistry::SourceHandle source =
      MetricsRegistry::global().register_source("kernels", [](std::vector<Sample>& out) {
        for (int k = 0; k < kKinds; ++k) {
          profiler.hist_[k].append_samples(
              kernels::kernel_name(static_cast<kernels::KernelKind>(k)), out);
        }
      });
  return profiler;
}

}  // namespace tiledqr::obs
