// Live health layer for a serving process: on-demand observability
// snapshots without exiting, plus a stall/overrun watchdog.
//
// A server that only dumps metrics at process exit is blind exactly when it
// matters — while it is stuck. HealthMonitor is a handle a serving process
// keeps open next to its ThreadPool:
//
//   * Snapshots on demand. dump_snapshot() (the API path) or SIGUSR1 (the
//     operator path, install_sigusr1()) writes the current metrics-registry
//     snapshot and a caller-supplied report (typically the schedule report
//     with critical-path breakdown) to disk, append-safe via
//     obs::unique_export_path — repeated snapshots of one process never
//     overwrite each other. The signal handler itself only bumps an atomic
//     counter (async-signal-safe); the monitor thread does all I/O.
//
//   * Stall watchdog. A worker that has been idle longer than
//     `stall_after` while the pool holds ready work is flagged: counter
//     `health.stalls` plus gauge `health.last_stall_worker` in the global
//     registry. Flagged once per idle episode, never a crash — lost wakeups
//     and scheduling pathologies become a metric, not a hang you diagnose
//     post-mortem.
//
//   * Overrun watchdog. A task running longer than `overrun_factor` times
//     its kind's live-profile mean (and past `overrun_floor`) bumps
//     `health.task_overruns` and records the offender (task index, kind,
//     elapsed ms) in gauges. Flagged once per occupancy.
//
// Cost discipline: worker stamping rides the same combined flag word as
// tracing (obs::task_observation_flags()), so a process with no live
// monitor still pays exactly one relaxed load per task; the watchdog's own
// polling runs on the monitor thread at `poll` granularity.
//
// `TILEDQR_HEALTH=1` wires the whole layer from the environment (see
// maybe_from_env); the serving example and README document the knobs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace tiledqr::runtime {
class ThreadPool;
}

namespace tiledqr::obs {

class HealthMonitor {
 public:
  struct Options {
    /// Watchdog / snapshot-request polling period.
    std::chrono::milliseconds poll{100};
    /// Idle-with-ready-work threshold before a worker counts as stalled.
    std::chrono::milliseconds stall_after{500};
    /// A task is an overrun when elapsed > overrun_factor x its kind's
    /// live-profile mean — and past overrun_floor_ns, so sub-microsecond
    /// kernel means don't flag every scheduling hiccup.
    double overrun_factor = 8.0;
    std::int64_t overrun_floor_ns = 1'000'000;  // 1 ms
    /// Snapshot destination stem; metrics go to "<stem>", the report (when a
    /// `report` callback is set) to "<stem>.report", both append-safe.
    std::string snapshot_path = "tiledqr_health.txt";
    /// Extra text appended to every snapshot — typically a closure building
    /// the schedule report + critical-path breakdown. Runs on the monitor
    /// thread; may allocate/lock, must not throw (exceptions are swallowed).
    std::function<std::string()> report;
  };

  struct Stats {
    long stalls = 0;        ///< idle-with-ready-work episodes flagged
    long overruns = 0;      ///< long-running-task episodes flagged
    long snapshots = 0;     ///< snapshot files written
  };

  /// Starts the monitor thread watching `pool`. Construction sets the
  /// kObsTaskHealth observation bit (workers start stamping); destruction
  /// clears it when the last monitor dies and joins the thread. (Two
  /// overloads rather than `Options = {}`: GCC defers a nested class's
  /// default member initializers past the enclosing class, rejecting the
  /// brace default argument.)
  HealthMonitor(runtime::ThreadPool& pool, Options options);
  explicit HealthMonitor(runtime::ThreadPool& pool);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// The snapshot body: current registry metrics, worker table, watchdog
  /// totals, and the `report` callback's text. Safe from any thread.
  [[nodiscard]] std::string snapshot_text() const;

  /// Writes snapshot_text() to the configured path now, append-safe.
  /// Returns the path written; throws tiledqr::Error on I/O failure.
  std::string dump_snapshot();

  /// Asks every live monitor to dump a snapshot from its own thread, without
  /// doing any I/O here: this is the async-signal-safe core of the SIGUSR1
  /// path, also callable directly from application code.
  static void request_snapshot() noexcept;

  /// Installs request_snapshot() as the process's SIGUSR1 handler
  /// (idempotent). Kept separate from construction: signal disposition is
  /// process-global state the application must opt into.
  static void install_sigusr1();

  /// The env-var wiring: returns a live monitor watching `pool` with
  /// SIGUSR1 installed when TILEDQR_HEALTH=1 (nullptr otherwise), honoring
  /// TILEDQR_HEALTH_PATH, TILEDQR_HEALTH_POLL_MS, TILEDQR_HEALTH_STALL_MS,
  /// and TILEDQR_HEALTH_OVERRUN_FACTOR. `report` becomes the snapshot's
  /// report callback.
  static std::unique_ptr<HealthMonitor> maybe_from_env(
      runtime::ThreadPool& pool, std::function<std::string()> report = nullptr);

  [[nodiscard]] Stats stats() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tiledqr::obs
