// Chrome trace re-import: parses the trace_event JSON the Tracer exports
// back into TrackSnapshots, so the same critical-path forensics that run
// in-process (obs/critical_path.hpp) can run offline over a saved trace —
// tools/tiledqr_analyze is the CLI wrapper.
//
// Only what the exporter writes is understood: "X" complete slices carrying
// the tiledqr args (task/sub/component/i/piv/k/j/stolen) and "thread_name"
// metadata. Slices without the args (foreign traces) import with defaults
// and simply won't join against a task graph. Timestamps are converted back
// from microseconds to nanoseconds; the export's rebasing to the earliest
// event is irrelevant to the analysis (only differences matter).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tiledqr::obs {

/// Parses a Chrome trace_event JSON document into per-thread snapshots
/// (one TrackSnapshot per tid, events in file order). Throws tiledqr::Error
/// on malformed JSON or a document without a traceEvents array.
[[nodiscard]] std::vector<TrackSnapshot> import_chrome_json(std::istream& in);
[[nodiscard]] std::vector<TrackSnapshot> import_chrome_json(const std::string& path);

}  // namespace tiledqr::obs
