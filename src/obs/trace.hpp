// Per-task trace collector: lock-free per-thread ring buffers of task
// begin/end events, exported as Chrome trace_event JSON (loadable in
// chrome://tracing and Perfetto).
//
// Design constraints, in priority order:
//
//   1. The disabled path costs one relaxed atomic load per task
//      (Tracer::enabled()). Nothing else — no timestamp, no branch on
//      per-thread state.
//   2. Recording never blocks and never allocates on the hot path. Each
//      thread owns a single-producer ring (a Track); a full ring counts the
//      drop and returns — newest events are dropped, the buffer is never
//      corrupted.
//   3. The exporter may run concurrently with recording: a Track's element
//      is fully written before its `size` is advanced with a release store,
//      and readers load `size` with acquire, so every event below the loaded
//      size is complete.
//
// Tracks are leased to threads: a thread's first record() (or an explicit
// set_thread_track_name()) binds it to a Track; when the thread exits, the
// Track returns to a free list and the next new thread reuses it — so the
// number of Tracks is bounded by the peak concurrent thread count, not by
// how many threads ever existed (the spawn-per-call executor baseline
// creates thousands). Reuse clears the previous thread's events, drops, and
// name: a report built mid-process must never mix a dead thread's stale
// events into the current run's span or critical path. For reports over a
// window narrower than "since the last clear", mark() stamps a begin-mark
// and collect_since() filters on it.
//
// `TILEDQR_TRACE=<path>` enables collection at startup and writes the
// Chrome JSON at process exit; `TILEDQR_TRACE_CAPACITY=<events>` sizes the
// per-track rings (default 65536 events, 48 bytes each).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tiledqr::obs {

/// One completed task: a begin/end pair on one thread. Timestamps are
/// obs::now_ns() (steady_clock) so they compare directly with WallTimer.
struct TraceEvent {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t task = -1;        ///< task index within its component's graph
  std::uint32_t submission = 0;  ///< ThreadPool submission id (0 = none)
  std::int32_t component = 0;    ///< component generation within the submission
  std::int32_t i = -1;           ///< tile coordinates of the kernel, -1 = n/a
  std::int32_t piv = -1;
  std::int32_t k = -1;
  std::int32_t j = -1;
  std::uint8_t kind = kNonKernel;  ///< kernels::KernelKind, or kNonKernel
  std::uint8_t flags = 0;          ///< FlagStolen if the task ran off a steal

  static constexpr std::uint8_t kNonKernel = 0xFF;
  static constexpr std::uint8_t kFlagStolen = 0x1;
};

/// A finished copy of one thread's ring, for reports and tests.
struct TrackSnapshot {
  std::string name;
  int tid = 0;  ///< stable per-track id, the exporter's Chrome `tid`
  std::vector<TraceEvent> events;
  long dropped = 0;  ///< events lost to ring overflow
};

/// Process-wide trace collector; use Tracer::instance().
class Tracer {
 public:
  /// The per-task guard. Relaxed load — this is the whole disabled path.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting. `capacity` sizes rings allocated from now on; rings
  /// that already exist keep their size. 0 keeps the current capacity.
  void enable(std::size_t capacity = 0);
  void disable();

  /// Drop all recorded events and drop counts (rings stay allocated), and
  /// reset the begin-mark. Callers must quiesce recording threads first — a
  /// record() racing a clear() may land in the cleared region or be lost,
  /// but the buffer stays well-formed.
  void clear();

  /// Stamp the begin-mark at now_ns(): schedule reports and critical-path
  /// analyses built afterwards (via collect_since(mark_ns())) consider only
  /// events that *start* at or after the mark, so one long-lived tracer can
  /// scope its reports to "the run since mark()" without clearing the rings
  /// the exporter still wants in full. Returns the mark.
  std::int64_t mark();
  /// The current begin-mark; 0 = never marked (or cleared since).
  [[nodiscard]] std::int64_t mark_ns() const noexcept {
    return mark_ns_.load(std::memory_order_relaxed);
  }

  /// Record one completed task on the calling thread's track. No-op when
  /// disabled. `kind` is kernels::KernelKind or TraceEvent::kNonKernel.
  void record(std::int64_t start_ns, std::int64_t end_ns, std::uint8_t kind, std::int32_t i,
              std::int32_t piv, std::int32_t k, std::int32_t j, std::int32_t task,
              std::uint32_t submission, std::int32_t component, bool stolen);

  /// Name the calling thread's track ("pool0.w3", ...). Binds a track to the
  /// thread if it has none yet (cheap; safe to call when disabled).
  void set_thread_track_name(const std::string& name);

  /// Copy every track's events (concurrent-safe: sees a prefix of any
  /// in-flight recording). Tracks with no events and no name are skipped.
  [[nodiscard]] std::vector<TrackSnapshot> collect() const;

  /// collect(), keeping only events with start_ns >= since_ns (0 = keep
  /// everything). Drop counts are reported unchanged — a ring overflow loses
  /// events regardless of which window a report asks for.
  [[nodiscard]] std::vector<TrackSnapshot> collect_since(std::int64_t since_ns) const;

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] long dropped_count() const;

  /// Chrome trace_event JSON ("X" complete events on one pid, one tid per
  /// track, thread_name metadata). Timestamps are microseconds relative to
  /// the earliest event. The file flavor throws tiledqr::Error on I/O
  /// failure.
  void export_chrome_json(std::ostream& out) const;
  void export_chrome_json(const std::string& path) const;

  /// Mid-process export for the health/SIGUSR1 path: writes the Chrome JSON
  /// to `path`, made append-safe — when a file already exists there, a
  /// unique "-N" suffix is inserted before the extension instead of
  /// overwriting. Returns the path actually written. Throws tiledqr::Error
  /// on I/O failure.
  std::string export_now(const std::string& path) const;

  /// The process-wide collector. First call reads TILEDQR_TRACE /
  /// TILEDQR_TRACE_CAPACITY; when TILEDQR_TRACE names a path, collection is
  /// enabled immediately and the JSON is written there at process exit.
  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  friend struct TrackLease;

  struct Track {
    std::string name;
    int tid = 0;
    std::unique_ptr<TraceEvent[]> buf;  ///< allocated before enabled_ is set
    std::size_t capacity = 0;
    std::atomic<std::size_t> size{0};
    std::atomic<long> dropped{0};
  };

  Tracer();
  ~Tracer();

  /// The calling thread's track, binding one (reusing a free track or
  /// registering a new one) on first use.
  Track* this_thread_track();
  void release_track(Track* t);
  void allocate_locked(Track& t);

  mutable std::mutex mu_;            // guards tracks_/free_/capacity_ changes
  std::deque<Track> tracks_;         // deque: stable addresses for lessees
  std::vector<Track*> free_;         // tracks whose thread has exited
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> mark_ns_{0};
  std::string exit_path_;  // TILEDQR_TRACE destination, "" = none

  static constexpr std::size_t kDefaultCapacity = 65536;
};

/// Monotonic id source for trace submission ids, shared by the ThreadPool's
/// submissions and the spawn-path executor so ids are unique across both.
[[nodiscard]] std::uint32_t next_trace_submission_id() noexcept;

/// Bits of task_observation_flags(): which observers want the runtime's
/// per-task hook to take timestamps.
enum ObsTaskFlag : unsigned {
  kObsTaskTrace = 1u,   ///< Tracer enabled (trace ring + kernel profiler)
  kObsTaskHealth = 2u,  ///< a HealthMonitor is live (worker running-task slots)
};

/// The single word the runtime's task hook loads (relaxed) per task — the
/// whole disabled path, shared by tracing and the health layer so adding the
/// watchdog did not add a second load. Tracer::enable/disable maintain
/// kObsTaskTrace; HealthMonitor construction/destruction maintains
/// kObsTaskHealth.
[[nodiscard]] std::atomic<unsigned>& task_observation_flags() noexcept;

/// `path`, or — when a file already exists there — the first available
/// variant with "-N" inserted before the extension ("trace.json" →
/// "trace-1.json"). The append-safety rule behind Tracer::export_now and
/// MetricsRegistry::dump_now: repeated snapshots of a live server never
/// overwrite each other.
[[nodiscard]] std::string unique_export_path(const std::string& path);

}  // namespace tiledqr::obs
