#include "obs/trace_import.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace tiledqr::obs {

namespace {

// Minimal JSON value + recursive-descent parser — just enough for the
// exporter's output (and tolerant of fields it doesn't know). Kept local:
// the library has no JSON dependency and this is the only import site.
struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] const Json* find(const std::string& k) const {
    auto it = obj.find(k);
    return it == obj.end() ? nullptr : &it->second;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return type == Type::Number ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    text_ = buf.str();
  }

  Json parse() {
    Json v = value();
    skip_ws();
    TILEDQR_CHECK(pos_ == text_.size(), "trace import: trailing data after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    TILEDQR_CHECK(pos_ < text_.size(), "trace import: unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    TILEDQR_CHECK(peek() == c, std::string("trace import: expected '") + c + "' at offset " +
                                   std::to_string(pos_));
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.type = Json::Type::String;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::Bool;
        v.boolean = text_[pos_] == 't';
        literal(v.boolean ? "true" : "false");
        return v;
      }
      case 'n': {
        literal("null");
        return Json{};
      }
      default: return number();
    }
  }

  void literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      TILEDQR_CHECK(pos_ < text_.size() && text_[pos_] == *c,
                    std::string("trace import: bad literal, expected ") + word);
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      TILEDQR_CHECK(pos_ < text_.size(), "trace import: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      TILEDQR_CHECK(pos_ < text_.size(), "trace import: unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          TILEDQR_CHECK(pos_ + 4 <= text_.size(), "trace import: bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else TILEDQR_CHECK(false, "trace import: bad \\u escape digit");
          }
          // The exporter only emits \u00XX control escapes; anything wider
          // degrades to '?' rather than growing a UTF-8 encoder here.
          out += code < 0x80 ? char(code) : '?';
          break;
        }
        default: TILEDQR_CHECK(false, "trace import: unknown escape");
      }
    }
  }

  Json number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    TILEDQR_CHECK(pos_ > start, "trace import: expected a JSON value at offset " +
                                    std::to_string(start));
    Json v;
    v.type = Json::Type::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      TILEDQR_CHECK(c == ',', "trace import: expected ',' or ']' in array");
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.obj.emplace(std::move(key), value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      TILEDQR_CHECK(c == ',', "trace import: expected ',' or '}' in object");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::uint8_t kind_from_name(const std::string& name) {
  for (int k = 0; k < kernels::kNumKernelKinds; ++k) {
    if (name == kernels::kernel_name(static_cast<kernels::KernelKind>(k))) {
      return std::uint8_t(k);
    }
  }
  return TraceEvent::kNonKernel;
}

std::int64_t us_to_ns(double us) { return std::llround(us * 1000.0); }

}  // namespace

std::vector<TrackSnapshot> import_chrome_json(std::istream& in) {
  Json doc = JsonParser(in).parse();
  const Json* events = doc.find("traceEvents");
  TILEDQR_CHECK(events != nullptr && events->type == Json::Type::Array,
                "trace import: no traceEvents array in document");

  std::map<int, TrackSnapshot> tracks;
  auto track = [&](int tid) -> TrackSnapshot& {
    auto it = tracks.find(tid);
    if (it == tracks.end()) {
      it = tracks.emplace(tid, TrackSnapshot{}).first;
      it->second.tid = tid;
      it->second.name = "thread" + std::to_string(tid);
    }
    return it->second;
  };

  for (const auto& ev : events->arr) {
    if (ev.type != Json::Type::Object) continue;
    const Json* ph = ev.find("ph");
    const Json* name = ev.find("name");
    const Json* tid = ev.find("tid");
    if (ph == nullptr || ph->type != Json::Type::String || tid == nullptr) continue;
    const int t = int(tid->num_or(0));
    const Json* args = ev.find("args");

    if (ph->str == "M") {
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        if (const Json* n = args->find("name"); n != nullptr && !n->str.empty()) {
          track(t).name = n->str;
        }
      }
      continue;
    }
    if (ph->str != "X") continue;

    TraceEvent e;
    const Json* ts = ev.find("ts");
    const Json* dur = ev.find("dur");
    e.start_ns = us_to_ns(ts != nullptr ? ts->num_or(0) : 0);
    e.end_ns = e.start_ns + us_to_ns(dur != nullptr ? dur->num_or(0) : 0);
    e.kind = name != nullptr ? kind_from_name(name->str) : TraceEvent::kNonKernel;
    if (args != nullptr) {
      auto get = [&](const char* k, double fallback) {
        const Json* v = args->find(k);
        return v != nullptr ? v->num_or(fallback) : fallback;
      };
      e.i = std::int32_t(get("i", -1));
      e.piv = std::int32_t(get("piv", -1));
      e.k = std::int32_t(get("k", -1));
      e.j = std::int32_t(get("j", -1));
      e.task = std::int32_t(get("task", -1));
      e.submission = std::uint32_t(get("sub", 0));
      e.component = std::int32_t(get("component", 0));
      if (get("stolen", 0) != 0) e.flags |= TraceEvent::kFlagStolen;
    }
    track(t).events.push_back(e);
  }

  std::vector<TrackSnapshot> out;
  out.reserve(tracks.size());
  for (auto& [t, snap] : tracks) out.push_back(std::move(snap));
  return out;
}

std::vector<TrackSnapshot> import_chrome_json(const std::string& path) {
  std::ifstream f(path);
  TILEDQR_CHECK(f.good(), "cannot open trace file: " + path);
  return import_chrome_json(static_cast<std::istream&>(f));
}

}  // namespace tiledqr::obs
