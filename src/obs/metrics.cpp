#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace tiledqr::obs {

namespace {

void append_number(std::string& out, double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
  }
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

// ---------------------------------------------------------------- Histogram

void Histogram::record_ns(std::int64_t ns) noexcept {
  int b = 0;
  if (ns > 0) {
    b = std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  bucket_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns > 0 ? ns : 0, std::memory_order_relaxed);
  std::int64_t prev = max_.load(std::memory_order_relaxed);
  while (ns > prev && !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

double Histogram::mean_ns() const noexcept {
  long n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return double(sum_ns_.load(std::memory_order_relaxed)) / double(n);
}

double Histogram::quantile_ns(double q) const noexcept {
  long n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  long target = static_cast<long>(std::ceil(q * double(n)));
  if (target < 1) target = 1;
  long seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Upper bound of bucket b, clamped to the observed maximum.
      double hi = std::ldexp(1.0, b + 1);
      return std::min(hi, double(max_.load(std::memory_order_relaxed)));
    }
  }
  return double(max_.load(std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (auto& b : bucket_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::append_samples(const std::string& prefix, std::vector<Sample>& out) const {
  long n = count();
  if (n == 0) return;
  out.push_back({prefix + ".count", double(n)});
  out.push_back({prefix + ".mean_us", mean_ns() / 1e3});
  out.push_back({prefix + ".p50_us", quantile_ns(0.50) / 1e3});
  out.push_back({prefix + ".p95_us", quantile_ns(0.95) / 1e3});
  out.push_back({prefix + ".max_us", double(max_ns()) / 1e3});
}

// ---------------------------------------------------------------- Registry

void MetricsRegistry::SourceHandle::release() {
  if (reg_ != nullptr) {
    reg_->deregister(id_);
    reg_ = nullptr;
  }
}

MetricsRegistry::SourceHandle MetricsRegistry::register_source(std::string name,
                                                               Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  long id = next_id_++;
  sources_.push_back(Entry{id, std::move(name), std::move(source)});
  return SourceHandle(this, id);
}

void MetricsRegistry::deregister(long id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(sources_.begin(), sources_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == sources_.end()) return;
  // Freeze the source's final values so end-of-run dumps still see it.
  std::vector<Sample> finals;
  it->source(finals);
  for (auto& s : finals) {
    retired_.push_back({it->name + "." + s.name, s.value});
  }
  while (retired_.size() > kMaxRetired) retired_.pop_front();
  sources_.erase(it);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(name).first->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(name).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(name).first->second;
}

std::string MetricsRegistry::unique_label(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  long n = label_counts_[prefix]++;
  return prefix + std::to_string(n);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> tmp;
  for (const auto& e : sources_) {
    tmp.clear();
    e.source(tmp);
    for (auto& s : tmp) snap.samples.push_back({e.name + "." + s.name, s.value});
  }
  for (const auto& [name, c] : counters_) snap.samples.push_back({name, double(c.value())});
  for (const auto& [name, g] : gauges_) snap.samples.push_back({name, double(g.value())});
  for (const auto& [name, h] : histograms_) h.append_samples(name, snap.samples);
  for (const auto& s : retired_) snap.samples.push_back(s);
  std::stable_sort(snap.samples.begin(), snap.samples.end(),
                   [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return snap;
}

std::string MetricsRegistry::dump_now(const std::string& path) const {
  const std::string target = unique_export_path(path);
  Snapshot snap = snapshot();
  std::ofstream f(target);
  TILEDQR_CHECK(f.good(), "cannot open metrics dump file: " + target);
  const bool json = target.size() >= 5 && target.ends_with(".json");
  f << (json ? snap.to_json() : snap.to_text());
  f.flush();
  TILEDQR_CHECK(f.good(), "failed writing metrics dump file: " + target);
  return target;
}

void MetricsRegistry::clear_retired() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
}

MetricsRegistry::~MetricsRegistry() {
  if (dump_path_.empty()) return;
  try {
    Snapshot snap = snapshot();
    std::ofstream f(dump_path_);
    if (!f.good()) return;
    bool json = dump_path_.size() >= 5 && dump_path_.ends_with(".json");
    f << (json ? snap.to_json() : snap.to_text());
  } catch (...) {
    // Exit-time dump: never throw out of a destructor.
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  static bool init = [] {
    if (auto path = env_string("TILEDQR_METRICS")) reg.dump_path_ = *path;
    return true;
  }();
  (void)init;
  return reg;
}

// ---------------------------------------------------------------- Snapshot

std::string MetricsRegistry::Snapshot::to_text() const {
  std::size_t width = 0;
  for (const auto& s : samples) width = std::max(width, s.name.size());
  std::string out;
  for (const auto& s : samples) {
    out += s.name;
    out.append(width - s.name.size() + 2, ' ');
    append_number(out, s.value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::Snapshot::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_escaped(out, s.name);
    out += ": ";
    append_number(out, s.value);
  }
  out += "\n}\n";
  return out;
}

double MetricsRegistry::Snapshot::value(const std::string& name) const {
  for (const auto& s : samples) {
    if (s.name == name) return s.value;
  }
  return std::nan("");
}

std::vector<Sample> MetricsRegistry::Snapshot::with_prefix(const std::string& prefix) const {
  std::vector<Sample> out;
  for (const auto& s : samples) {
    if (s.name.rfind(prefix, 0) == 0) out.push_back(s);
  }
  return out;
}

}  // namespace tiledqr::obs
