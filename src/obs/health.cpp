#include "obs/health.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "kernels/kernels.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace tiledqr::obs {

namespace {

// Snapshot requests are a single monotone counter: the SIGUSR1 handler (and
// request_snapshot()) bumps it — a lock-free atomic add, async-signal-safe —
// and every monitor thread compares it against the value it last served.
// All I/O happens on monitor threads.
std::atomic<long> g_snapshot_requests{0};

// Live monitors maintain the kObsTaskHealth observation bit: set on 0 -> 1,
// cleared on 1 -> 0, so worker stamping is on exactly while someone watches.
std::atomic<int> g_live_monitors{0};

extern "C" void tiledqr_health_sigusr1(int) { HealthMonitor::request_snapshot(); }

const char* kind_name(std::uint8_t kind) {
  return kind < kernels::kNumKernelKinds
             ? kernels::kernel_name(static_cast<kernels::KernelKind>(kind))
             : "task";
}

}  // namespace

struct HealthMonitor::Impl {
  runtime::ThreadPool& pool;
  Options opt;

  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;

  std::atomic<long> stalls{0};
  std::atomic<long> overruns{0};
  std::atomic<long> snapshots{0};
  long served_requests = 0;  ///< g_snapshot_requests value already handled
  std::int64_t start_ns = 0;

  // Episode tracking so each pathology is flagged once, not once per poll.
  std::vector<bool> stall_flagged;          ///< per worker: current idle episode flagged
  std::vector<std::int64_t> overrun_flagged;  ///< per worker: running_since already flagged

  std::thread thread;

  Impl(runtime::ThreadPool& p, Options o) : pool(p), opt(std::move(o)) {}

  void watchdog_pass() {
    auto& reg = MetricsRegistry::global();
    const std::int64_t now = now_ns();
    const long ready = pool.ready_depth();
    reg.gauge("health.ready_depth").set(ready);
    const auto probes = pool.probe_workers();
    if (stall_flagged.size() != probes.size()) {
      stall_flagged.assign(probes.size(), false);
      overrun_flagged.assign(probes.size(), 0);
    }
    const std::int64_t stall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(opt.stall_after).count();
    for (const auto& p : probes) {
      const std::size_t w = std::size_t(p.worker);
      if (p.running_since_ns != 0) {
        // Occupied: any stall episode is over; check for an overrun.
        stall_flagged[w] = false;
        const std::int64_t elapsed = now - p.running_since_ns;
        if (overrun_flagged[w] != p.running_since_ns && elapsed > opt.overrun_floor_ns) {
          const double mean_s = KernelProfiler::global().mean_seconds(int(p.running_kind));
          const double limit_ns = opt.overrun_factor * mean_s * 1e9;
          if (mean_s > 0.0 && double(elapsed) > limit_ns) {
            overrun_flagged[w] = p.running_since_ns;
            overruns.fetch_add(1, std::memory_order_relaxed);
            reg.counter("health.task_overruns").add(1);
            reg.gauge("health.last_overrun_task").set(p.running_task);
            reg.gauge("health.last_overrun_kind").set(long(p.running_kind));
            reg.gauge("health.last_overrun_ms").set(long(elapsed / 1'000'000));
          }
        }
        continue;
      }
      overrun_flagged[w] = 0;
      // Idle. Stalled = idle past the threshold while ready work exists.
      // A worker that never finished anything is idle since monitor start.
      const std::int64_t idle_since = std::max(p.last_finish_ns, start_ns);
      if (ready > 0 && now - idle_since > stall_ns) {
        if (!stall_flagged[w]) {
          stall_flagged[w] = true;
          stalls.fetch_add(1, std::memory_order_relaxed);
          reg.counter("health.stalls").add(1);
          reg.gauge("health.last_stall_worker").set(p.worker);
        }
      } else {
        stall_flagged[w] = false;
      }
    }
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stop) {
      cv.wait_for(lock, opt.poll, [&] { return stop; });
      if (stop) break;
      lock.unlock();
      const long requested = g_snapshot_requests.load(std::memory_order_acquire);
      if (requested != served_requests) {
        served_requests = requested;
        try {
          dump(snapshot_text());
        } catch (...) {
          // Snapshot I/O failure must never take down the server.
        }
      }
      watchdog_pass();
      lock.lock();
    }
  }

  [[nodiscard]] std::string snapshot_text() const {
    std::string out = "tiledqr health snapshot\n";
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  watchdog: %ld stalls, %ld overruns, %ld snapshots, ready depth %ld\n",
                  stalls.load(std::memory_order_relaxed),
                  overruns.load(std::memory_order_relaxed),
                  snapshots.load(std::memory_order_relaxed), pool.ready_depth());
    out += line;
    const std::int64_t now = now_ns();
    for (const auto& p : pool.probe_workers()) {
      if (p.running_since_ns != 0) {
        std::snprintf(line, sizeof(line), "  w%-3d running %s #%d for %.3f ms, %zu ready\n",
                      p.worker, kind_name(p.running_kind), p.running_task,
                      double(now - p.running_since_ns) / 1e6, p.ready);
      } else {
        std::snprintf(line, sizeof(line), "  w%-3d idle %.3f ms, %zu ready\n", p.worker,
                      p.last_finish_ns != 0 ? double(now - p.last_finish_ns) / 1e6 : 0.0,
                      p.ready);
      }
      out += line;
    }
    out += "metrics:\n";
    out += MetricsRegistry::global().snapshot().to_text();
    if (opt.report) {
      try {
        out += opt.report();
      } catch (...) {
        out += "(report callback threw)\n";
      }
    }
    return out;
  }

  std::string dump(const std::string& text) {
    const std::string target = unique_export_path(opt.snapshot_path);
    std::ofstream f(target);
    TILEDQR_CHECK(f.good(), "cannot open health snapshot file: " + target);
    f << text;
    f.flush();
    TILEDQR_CHECK(f.good(), "failed writing health snapshot file: " + target);
    snapshots.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("health.snapshots").add(1);
    return target;
  }
};

HealthMonitor::HealthMonitor(runtime::ThreadPool& pool) : HealthMonitor(pool, Options{}) {}

HealthMonitor::HealthMonitor(runtime::ThreadPool& pool, Options options)
    : impl_(std::make_unique<Impl>(pool, std::move(options))) {
  if (g_live_monitors.fetch_add(1, std::memory_order_acq_rel) == 0) {
    task_observation_flags().fetch_or(kObsTaskHealth, std::memory_order_relaxed);
  }
  impl_->start_ns = now_ns();
  impl_->served_requests = g_snapshot_requests.load(std::memory_order_acquire);
  impl_->thread = std::thread([this] { impl_->run(); });
}

HealthMonitor::~HealthMonitor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  if (g_live_monitors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    task_observation_flags().fetch_and(~unsigned(kObsTaskHealth), std::memory_order_relaxed);
  }
}

std::string HealthMonitor::snapshot_text() const { return impl_->snapshot_text(); }

std::string HealthMonitor::dump_snapshot() { return impl_->dump(impl_->snapshot_text()); }

void HealthMonitor::request_snapshot() noexcept {
  g_snapshot_requests.fetch_add(1, std::memory_order_release);
}

void HealthMonitor::install_sigusr1() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, tiledqr_health_sigusr1);
#endif
}

std::unique_ptr<HealthMonitor> HealthMonitor::maybe_from_env(
    runtime::ThreadPool& pool, std::function<std::string()> report) {
  if (!env_flag("TILEDQR_HEALTH")) return nullptr;
  Options opt;
  if (auto path = env_string("TILEDQR_HEALTH_PATH")) opt.snapshot_path = *path;
  opt.poll = std::chrono::milliseconds(env_long("TILEDQR_HEALTH_POLL_MS", 100));
  opt.stall_after = std::chrono::milliseconds(env_long("TILEDQR_HEALTH_STALL_MS", 500));
  opt.overrun_factor = env_double("TILEDQR_HEALTH_OVERRUN_FACTOR", 8.0);
  opt.report = std::move(report);
  install_sigusr1();
  return std::make_unique<HealthMonitor>(pool, std::move(opt));
}

HealthMonitor::Stats HealthMonitor::stats() const noexcept {
  return Stats{impl_->stalls.load(std::memory_order_relaxed),
               impl_->overruns.load(std::memory_order_relaxed),
               impl_->snapshots.load(std::memory_order_relaxed)};
}

}  // namespace tiledqr::obs
