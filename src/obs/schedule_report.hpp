// Post-run schedule report: what the trace says about how a run actually
// scheduled — per-worker busy time, task and steal counts, overall span,
// utilization (the runtime analogue of the paper's §5 critical-path
// analysis), and, when a task graph is supplied, the achieved makespan next
// to the bounded-processor list-scheduler model under the live kernel
// weights.
//
// Built entirely from Tracer data, so it costs nothing unless tracing was
// on; benches and the serving example print it at the end of a traced run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace.hpp"

namespace tiledqr::dag {
struct TaskGraph;
}

namespace tiledqr::obs {

struct WorkerLoad {
  std::string track;        ///< track name ("pool0.w3", ...)
  long tasks = 0;
  long stolen = 0;          ///< tasks that ran off a steal
  std::int64_t busy_ns = 0; ///< sum of task durations on this track
};

struct ScheduleReport {
  std::vector<WorkerLoad> workers;  ///< tracks that executed at least one task
  long tasks = 0;
  long stolen = 0;
  long dropped = 0;          ///< ring-overflow losses (report covers the rest)
  std::int64_t span_ns = 0;  ///< latest end − earliest start across all tracks
  std::int64_t busy_ns = 0;  ///< total task time across all tracks
  /// busy / (workers × span): 1.0 = no worker ever idle inside the span.
  /// This is the critical-path utilization when the span is one DAG's run.
  double utilization = 0.0;

  double achieved_seconds = 0.0;   ///< span in seconds
  double model_seconds = -1.0;     ///< bounded-sim makespan; < 0 = not computed
  /// model / achieved when both known (> 1 would mean beating the model,
  /// < 1 is scheduling + memory overhead the model doesn't see).
  double model_ratio = -1.0;

  /// Realized-critical-path decomposition (graph flavor only): which chain
  /// of tasks actually set the span, split into work vs scheduler gaps —
  /// the explanation behind model_ratio. Invalid when no graph was given or
  /// no trace group joined against it.
  CriticalPathBreakdown breakdown;
};

/// Aggregates the tracer's current events — honoring the tracer's
/// begin-mark: only events since mark() count, so a long-lived server can
/// scope each report to the run since the last mark. Empty report when
/// nothing was recorded.
[[nodiscard]] ScheduleReport build_schedule_report(const Tracer& tracer);

/// Same, plus the achieved-vs-model comparison: the bounded list-scheduler
/// makespan of `graph` on `workers` workers under the live kernel-profile
/// weights (KernelProfiler::global().live_profile()).
[[nodiscard]] ScheduleReport build_schedule_report(const Tracer& tracer,
                                                   const dag::TaskGraph& graph, int workers);

/// Human-readable multi-line rendering ("" for an empty report).
[[nodiscard]] std::string format_schedule_report(const ScheduleReport& report);

}  // namespace tiledqr::obs
