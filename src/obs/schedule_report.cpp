#include "obs/schedule_report.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "dag/task_graph.hpp"
#include "obs/kernel_profile.hpp"
#include "sim/bounded.hpp"

namespace tiledqr::obs {

ScheduleReport build_schedule_report(const Tracer& tracer) {
  ScheduleReport r;
  std::int64_t first = std::numeric_limits<std::int64_t>::max();
  std::int64_t last = std::numeric_limits<std::int64_t>::min();
  for (const auto& track : tracer.collect_since(tracer.mark_ns())) {
    r.dropped += track.dropped;
    if (track.events.empty()) continue;
    WorkerLoad w;
    w.track = track.name;
    for (const auto& e : track.events) {
      ++w.tasks;
      if (e.flags & TraceEvent::kFlagStolen) ++w.stolen;
      w.busy_ns += e.end_ns - e.start_ns;
      first = std::min(first, e.start_ns);
      last = std::max(last, e.end_ns);
    }
    r.tasks += w.tasks;
    r.stolen += w.stolen;
    r.busy_ns += w.busy_ns;
    r.workers.push_back(std::move(w));
  }
  if (r.workers.empty()) return r;
  r.span_ns = last - first;
  r.achieved_seconds = double(r.span_ns) / 1e9;
  if (r.span_ns > 0) {
    r.utilization = double(r.busy_ns) / (double(r.span_ns) * double(r.workers.size()));
  }
  std::sort(r.workers.begin(), r.workers.end(),
            [](const WorkerLoad& a, const WorkerLoad& b) { return a.track < b.track; });
  return r;
}

ScheduleReport build_schedule_report(const Tracer& tracer, const dag::TaskGraph& graph,
                                     int workers) {
  ScheduleReport r = build_schedule_report(tracer);
  if (workers < 1) workers = 1;
  auto profile = KernelProfiler::global().live_profile();
  auto sim = sim::simulate_bounded_weighted(graph, workers, profile.weight,
                                            sim::SimPriority::CriticalPath);
  r.model_seconds = sim.makespan;
  if (r.achieved_seconds > 0.0 && r.model_seconds >= 0.0) {
    r.model_ratio = r.model_seconds / r.achieved_seconds;
  }
  r.breakdown = build_critical_path_breakdown(tracer, graph);
  return r;
}

std::string format_schedule_report(const ScheduleReport& r) {
  if (r.workers.empty()) return "";
  std::string out = "schedule report\n";
  char line[192];
  std::snprintf(line, sizeof(line), "  %-14s %8s %8s %12s %8s\n", "worker", "tasks",
                "stolen", "busy_ms", "busy%");
  out += line;
  for (const auto& w : r.workers) {
    double busy_pct =
        r.span_ns > 0 ? 100.0 * double(w.busy_ns) / double(r.span_ns) : 0.0;
    std::snprintf(line, sizeof(line), "  %-14s %8ld %8ld %12.3f %7.1f%%\n", w.track.c_str(),
                  w.tasks, w.stolen, double(w.busy_ns) / 1e6, busy_pct);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  total: %ld tasks (%ld stolen, %ld dropped), span %.3f ms, "
                "utilization %.1f%%\n",
                r.tasks, r.stolen, r.dropped, double(r.span_ns) / 1e6,
                100.0 * r.utilization);
  out += line;
  if (r.model_seconds >= 0.0) {
    std::snprintf(line, sizeof(line),
                  "  achieved %.3f ms vs bounded-sim model %.3f ms (model/achieved %.2f)\n",
                  r.achieved_seconds * 1e3, r.model_seconds * 1e3, r.model_ratio);
    out += line;
  }
  out += format_critical_path_breakdown(r.breakdown);
  return out;
}

}  // namespace tiledqr::obs
