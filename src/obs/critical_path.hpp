// Realized-critical-path reconstruction: what actually determined a traced
// run's makespan, and where the time the model doesn't predict went.
//
// The schedule report already states achieved-vs-model span; this module
// explains the difference. Trace events carry the task index, submission id,
// and component generation of every executed task, so they can be joined
// against the plan's TaskGraph dependency edges. Walking backwards from the
// last-finishing task and, at every step, following the predecessor that
// finished *last* (the dependency that actually gated the start) recovers
// the realized critical chain — the paper's §5 critical path, measured
// instead of simulated. Every edge on the chain decomposes into
//
//   work — the predecessor's execution time, and
//   gap  — predecessor-end → successor-start scheduler latency, classified
//          dispatch-local (successor ran on the same worker) vs cross-worker
//          (different worker, including steals),
//
// so realized = Σ work + Σ gap exactly, and the totals reconcile with the
// report's span up to ring-drop error. Aggregations per kernel kind and per
// worker, the top-k widest gap edges, and a log2 gap histogram point at
// *which* handoffs to fix; the unbounded weighted critical path under the
// live kernel profile is the model-side floor the chain is compared to.
//
// Consumed three ways: build_schedule_report attaches a breakdown when given
// the graph, the HealthMonitor snapshots it live, and tools/tiledqr_analyze
// rebuilds the same breakdown offline from an exported Chrome trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "obs/trace.hpp"

namespace tiledqr::dag {
struct TaskGraph;
}

namespace tiledqr::obs {

/// One edge of the realized critical chain: `pred` finished, `gap_ns` of
/// scheduler latency passed, then `succ` started.
struct GapEdge {
  std::int32_t pred = -1;  ///< task index of the gating predecessor
  std::int32_t succ = -1;  ///< task index of the gated successor
  std::uint8_t pred_kind = TraceEvent::kNonKernel;
  std::uint8_t succ_kind = TraceEvent::kNonKernel;
  std::int64_t gap_ns = 0;
  bool cross_worker = false;  ///< succ ran on a different track than pred
  bool stolen = false;        ///< succ ran off a steal
  std::string pred_track;
  std::string succ_track;
};

/// Per-worker attribution of the realized chain: how much of the critical
/// path's work ran on this track, and how much gap preceded its tasks.
struct CriticalPathWorker {
  std::string track;
  long tasks = 0;             ///< chain tasks that executed on this track
  std::int64_t work_ns = 0;   ///< their execution time
  std::int64_t gap_ns = 0;    ///< incoming-edge gaps charged to this track
};

/// The decomposition of one traced component's makespan. All totals satisfy
/// realized_ns == work_ns + gap_ns and gap_ns == dispatch_gap_ns +
/// cross_gap_ns by construction; `dropped` bounds the reconciliation error
/// against the full-trace span (a dropped event can hide a longer chain).
struct CriticalPathBreakdown {
  static constexpr int kGapBuckets = 32;  ///< log2 ns buckets, [2^b, 2^(b+1))
  static constexpr int kKinds = kernels::kNumKernelKinds;  ///< QR + LQ kinds

  bool valid = false;          ///< a chain of at least one task was found
  std::uint32_t submission = 0;  ///< trace submission id analyzed
  std::int32_t component = 0;    ///< component generation analyzed
  long events_matched = 0;     ///< trace events joined against graph tasks
  long dropped = 0;            ///< ring-overflow losses over the window

  long path_tasks = 0;         ///< tasks on the realized chain
  std::int64_t realized_ns = 0;  ///< chain end − chain start (realized path length)
  std::int64_t work_ns = 0;      ///< execution time on the chain
  std::int64_t gap_ns = 0;       ///< scheduler latency on the chain
  std::int64_t dispatch_gap_ns = 0;  ///< same-worker handoffs
  std::int64_t cross_gap_ns = 0;     ///< cross-worker handoffs (incl. steals)
  long stolen_edges = 0;       ///< chain edges whose successor ran off a steal

  /// Unbounded weighted critical path of the graph under the live kernel
  /// profile (KernelProfiler::global().live_profile()): the model-side path
  /// length the realized chain is compared to. < 0 = not computed.
  double model_cp_seconds = -1.0;
  /// realized / model_cp when both known (>= 1 in a healthy run: the
  /// realized chain carries real durations plus scheduler gaps).
  double realized_over_model = -1.0;

  std::array<std::int64_t, kKinds> work_by_kind{};  ///< chain work per KernelKind
  std::array<long, kKinds> tasks_by_kind{};
  std::vector<CriticalPathWorker> workers;  ///< per-track chain attribution
  std::vector<GapEdge> top_gaps;            ///< widest chain gaps, descending
  std::array<long, kGapBuckets> gap_hist{};  ///< chain-edge gaps, log2 ns buckets
};

struct BreakdownOptions {
  std::uint32_t submission = 0;  ///< 0 = auto-select (most events, then latest)
  std::int32_t component = -1;   ///< -1 = auto-select with the submission
  int top_k = 5;                 ///< gap edges kept in top_gaps
  std::int64_t since_ns = 0;     ///< only events with start_ns >= this
  bool with_model = true;        ///< compute model_cp_seconds (live profile)
};

/// Reconstructs the realized critical chain of one (submission, component)
/// group of `tracks` against `graph`'s dependency edges. Auto-selection
/// picks the group with the most events whose task indices all fit the
/// graph (ties: latest end time) — for a single-factorization trace that is
/// simply "the run". Returns an invalid (valid == false) breakdown when no
/// group matches.
[[nodiscard]] CriticalPathBreakdown build_critical_path_breakdown(
    const std::vector<TrackSnapshot>& tracks, const dag::TaskGraph& graph,
    const BreakdownOptions& options = {});

/// Same over the tracer's current events, honoring its begin-mark (only
/// events since mark() are considered, like build_schedule_report).
[[nodiscard]] CriticalPathBreakdown build_critical_path_breakdown(
    const Tracer& tracer, const dag::TaskGraph& graph, const BreakdownOptions& options = {});

/// Human-readable multi-line rendering ("" for an invalid breakdown).
[[nodiscard]] std::string format_critical_path_breakdown(const CriticalPathBreakdown& b);

}  // namespace tiledqr::obs
