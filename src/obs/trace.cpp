#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "kernels/kernels.hpp"

namespace tiledqr::obs {

// RAII lease binding a thread to its Track: the dtor (thread exit) returns
// the Track to the Tracer's free list for the next thread. Worker threads
// are joined before any pool is destroyed, and pools touch
// Tracer::instance() in their constructor, so the Tracer outlives every
// lessee.
struct TrackLease {
  Tracer::Track* track = nullptr;
  ~TrackLease() {
    if (track != nullptr) Tracer::instance().release_track(track);
  }
};

namespace {

thread_local TrackLease tl_lease;

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Microseconds with nanosecond fraction, printed without float formatting
// state on the stream.
void write_us(std::ostream& out, std::int64_t ns) {
  if (ns < 0) {
    out << '-';
    ns = -ns;
  }
  out << (ns / 1000) << '.' << char('0' + (ns / 100) % 10) << char('0' + (ns / 10) % 10)
      << char('0' + ns % 10);
}

}  // namespace

Tracer::Tracer() {
  if (long cap = env_long("TILEDQR_TRACE_CAPACITY", 0); cap > 0) {
    capacity_ = static_cast<std::size_t>(cap);
  }
  if (auto path = env_string("TILEDQR_TRACE")) {
    exit_path_ = *path;
    enable();
  }
}

Tracer::~Tracer() {
  if (!exit_path_.empty()) {
    try {
      export_chrome_json(exit_path_);
    } catch (...) {
      // Destructor at process exit: losing the trace beats aborting.
    }
  }
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::allocate_locked(Track& t) {
  t.buf = std::make_unique<TraceEvent[]>(capacity_);
  t.capacity = capacity_;
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity != 0) capacity_ = capacity;
  // Every registered track must have a ring before enabled_ flips: record()
  // acquires enabled_ and may immediately write into its track's buffer.
  for (auto& t : tracks_) {
    if (!t.buf) allocate_locked(t);
  }
  enabled_.store(true, std::memory_order_release);
  task_observation_flags().fetch_or(kObsTaskTrace, std::memory_order_relaxed);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_relaxed);
  task_observation_flags().fetch_and(~unsigned(kObsTaskTrace), std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& t : tracks_) {
    t.size.store(0, std::memory_order_relaxed);
    t.dropped.store(0, std::memory_order_relaxed);
  }
  mark_ns_.store(0, std::memory_order_relaxed);
}

std::int64_t Tracer::mark() {
  const std::int64_t now = now_ns();
  mark_ns_.store(now, std::memory_order_relaxed);
  return now;
}

Tracer::Track* Tracer::this_thread_track() {
  if (tl_lease.track != nullptr) return tl_lease.track;
  std::lock_guard<std::mutex> lock(mu_);
  Track* t;
  if (!free_.empty()) {
    t = free_.back();
    free_.pop_back();
    // Clear-on-reuse: the previous lessee is dead; keeping its events would
    // let a mid-process report mix a stale thread's run into the live one.
    t->size.store(0, std::memory_order_relaxed);
    t->dropped.store(0, std::memory_order_relaxed);
    t->name.clear();
  } else {
    tracks_.emplace_back();
    t = &tracks_.back();
    t->tid = static_cast<int>(tracks_.size()) - 1;
  }
  if (enabled_.load(std::memory_order_relaxed) && !t->buf) allocate_locked(*t);
  tl_lease.track = t;
  return t;
}

void Tracer::release_track(Track* t) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(t);
}

void Tracer::set_thread_track_name(const std::string& name) {
  Track* t = this_thread_track();
  std::lock_guard<std::mutex> lock(mu_);
  t->name = name;
}

void Tracer::record(std::int64_t start_ns, std::int64_t end_ns, std::uint8_t kind,
                    std::int32_t i, std::int32_t piv, std::int32_t k, std::int32_t j,
                    std::int32_t task, std::uint32_t submission, std::int32_t component,
                    bool stolen) {
  if (!enabled()) return;
  Track* t = this_thread_track();
  std::size_t n = t->size.load(std::memory_order_relaxed);
  if (!t->buf || n >= t->capacity) {
    t->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = t->buf[n];
  e.start_ns = start_ns;
  e.end_ns = end_ns;
  e.task = task;
  e.submission = submission;
  e.component = component;
  e.i = i;
  e.piv = piv;
  e.k = k;
  e.j = j;
  e.kind = kind;
  e.flags = stolen ? TraceEvent::kFlagStolen : std::uint8_t(0);
  t->size.store(n + 1, std::memory_order_release);
}

std::vector<TrackSnapshot> Tracer::collect() const { return collect_since(0); }

std::vector<TrackSnapshot> Tracer::collect_since(std::int64_t since_ns) const {
  std::vector<TrackSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tracks_) {
    std::size_t n = t.size.load(std::memory_order_acquire);
    long dropped = t.dropped.load(std::memory_order_relaxed);
    if (n == 0 && dropped == 0 && t.name.empty()) continue;
    TrackSnapshot snap;
    snap.name = t.name.empty() ? ("thread" + std::to_string(t.tid)) : t.name;
    snap.tid = t.tid;
    snap.dropped = dropped;
    // A thread records in start order, so the kept window is a suffix.
    std::size_t first = 0;
    if (since_ns > 0) {
      while (first < n && t.buf[first].start_ns < since_ns) ++first;
    }
    snap.events.assign(t.buf.get() + first, t.buf.get() + n);
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tracks_) n += t.size.load(std::memory_order_acquire);
  return n;
}

long Tracer::dropped_count() const {
  long n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tracks_) n += t.dropped.load(std::memory_order_relaxed);
  return n;
}

void Tracer::export_chrome_json(std::ostream& out) const {
  auto tracks = collect();

  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& t : tracks) {
    for (const auto& e : t.events) base = std::min(base, e.start_ns);
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"tiledqr\"}}";
  for (const auto& t : tracks) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
        << ",\"args\":{\"name\":";
    write_escaped(out, t.name);
    out << "}}";
    for (const auto& e : t.events) {
      const char* name = e.kind < kernels::kNumKernelKinds
                             ? kernels::kernel_name(static_cast<kernels::KernelKind>(e.kind))
                             : "task";
      out << ",\n{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << t.tid
          << ",\"ts\":";
      write_us(out, e.start_ns - base);
      out << ",\"dur\":";
      write_us(out, e.end_ns - e.start_ns);
      out << ",\"args\":{\"i\":" << e.i << ",\"piv\":" << e.piv << ",\"k\":" << e.k
          << ",\"j\":" << e.j << ",\"task\":" << e.task << ",\"sub\":" << e.submission
          << ",\"component\":" << e.component
          << ",\"stolen\":" << ((e.flags & TraceEvent::kFlagStolen) ? 1 : 0) << "}}";
    }
  }
  out << "\n]}\n";
}

void Tracer::export_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  TILEDQR_CHECK(f.good(), "cannot open trace output file: " + path);
  export_chrome_json(static_cast<std::ostream&>(f));
  f.flush();
  TILEDQR_CHECK(f.good(), "failed writing trace output file: " + path);
}

std::string Tracer::export_now(const std::string& path) const {
  const std::string target = unique_export_path(path);
  export_chrome_json(target);
  return target;
}

std::uint32_t next_trace_submission_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<unsigned>& task_observation_flags() noexcept {
  static std::atomic<unsigned> flags{0};
  return flags;
}

std::string unique_export_path(const std::string& path) {
  auto exists = [](const std::string& p) { return std::ifstream(p).good(); };
  if (!exists(path)) return path;
  // Insert "-N" before the extension (the final '.' of the basename).
  const std::size_t slash = path.find_last_of('/');
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    dot = path.size();
  }
  for (int n = 1; n < 100000; ++n) {
    std::string candidate =
        path.substr(0, dot) + "-" + std::to_string(n) + path.substr(dot);
    if (!exists(candidate)) return candidate;
  }
  return path;  // pathological directory: fall back to overwriting
}

}  // namespace tiledqr::obs
