// Per-kernel timing histograms fed by the runtime's task hook, aggregated
// into a perf::WeightProfile — so the tuner's "measured" profile can come
// from live serving traffic instead of a synthetic kernel bench.
//
// Recording shares the Tracer's enabled() guard: when observability is off
// the runtime pays one relaxed load per task and never reaches here. When
// on, each retired task adds its measured nanoseconds to the histogram of
// its KernelKind (atomic, lock-free, any thread).
//
// live_profile() turns the observed means into the same shape
// perf::measured_profile() produces: seconds-per-call weights by
// KernelKind, under the stable id "live". Kernel kinds the traffic never
// exercised are filled from a fallback profile, rescaled by the mean
// observed/fallback ratio of the kinds that were seen — a tree the traffic
// never chose still gets a comparable (if approximate) weight.
#pragma once

#include <cstdint>

#include "kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "perf/kernel_bench.hpp"

namespace tiledqr::obs {

class KernelProfiler {
 public:
  /// One histogram per KernelKind — QR and LQ kinds are tracked separately
  /// (the LQ wrappers pay extra adjoint copies, so their timings are
  /// legitimately distinct), then folded into the dual's slot when a
  /// 6-kernel WeightProfile is produced.
  static constexpr int kKinds = kernels::kNumKernelKinds;

  /// Record one task of `kind` (kernels::KernelKind) taking `ns`. Kinds
  /// outside [0, kKinds) are ignored.
  void record(std::uint8_t kind, std::int64_t ns) noexcept {
    if (kind < kKinds) hist_[kind].record_ns(ns);
  }

  [[nodiscard]] long samples(int kind) const noexcept {
    return kind >= 0 && kind < kKinds ? hist_[kind].count() : 0;
  }
  [[nodiscard]] long total_samples() const noexcept;
  [[nodiscard]] double mean_seconds(int kind) const noexcept {
    return kind >= 0 && kind < kKinds ? hist_[kind].mean_ns() / 1e9 : 0.0;
  }
  [[nodiscard]] const Histogram& histogram(int kind) const noexcept { return hist_[kind]; }

  /// WeightProfile (id "live") from the observed means; see file comment for
  /// the fallback fill. LQ samples aggregate into their QR dual's slot (the
  /// profile is 6-wide). Returns `fallback` unchanged when nothing was
  /// recorded, so callers can pass the result to the tuner unconditionally.
  [[nodiscard]] perf::WeightProfile live_profile(
      const perf::WeightProfile& fallback = perf::sc11_profile()) const;

  void reset() noexcept;

  /// The process-wide profiler the runtime's task hook feeds; registered as
  /// metrics source "kernels" in the global registry.
  static KernelProfiler& global();

 private:
  Histogram hist_[kKinds];
};

}  // namespace tiledqr::obs
