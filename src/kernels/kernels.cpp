#include "kernels/kernels.hpp"

namespace tiledqr::kernels {

const char* factor_kind_name(FactorKind k) noexcept {
  return k == FactorKind::LQ ? "LQ" : "QR";
}

const char* kernel_name(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::GEQRT: return "GEQRT";
    case KernelKind::UNMQR: return "UNMQR";
    case KernelKind::TSQRT: return "TSQRT";
    case KernelKind::TSMQR: return "TSMQR";
    case KernelKind::TTQRT: return "TTQRT";
    case KernelKind::TTMQR: return "TTMQR";
    case KernelKind::GELQT: return "GELQT";
    case KernelKind::UNMLQ: return "UNMLQ";
    case KernelKind::TSLQT: return "TSLQT";
    case KernelKind::TSMLQ: return "TSMLQ";
    case KernelKind::TTLQT: return "TTLQT";
    case KernelKind::TTMLQ: return "TTMLQ";
  }
  return "?";
}

double kernel_flops(KernelKind k, int nb, bool complex_scalar) noexcept {
  double unit = double(nb) * double(nb) * double(nb) / 3.0;
  double f = kernel_weight(k) * unit;
  return complex_scalar ? 4.0 * f : f;
}

}  // namespace tiledqr::kernels
