#include "kernels/kernels.hpp"

namespace tiledqr::kernels {

const char* kernel_name(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::GEQRT: return "GEQRT";
    case KernelKind::UNMQR: return "UNMQR";
    case KernelKind::TSQRT: return "TSQRT";
    case KernelKind::TSMQR: return "TSMQR";
    case KernelKind::TTQRT: return "TTQRT";
    case KernelKind::TTMQR: return "TTMQR";
  }
  return "?";
}

double kernel_flops(KernelKind k, int nb, bool complex_scalar) noexcept {
  double unit = double(nb) * double(nb) * double(nb) / 3.0;
  double f = kernel_weight(k) * unit;
  return complex_scalar ? 4.0 * f : f;
}

}  // namespace tiledqr::kernels
