// Elementary Householder reflectors and compact-WY block accumulation,
// following the LAPACK conventions:
//
//   larfg produces H = I - tau * v * v^H  (v = [1; x'], unit first entry)
//   with H^H * [alpha; x] = [beta; 0], beta real, and H unitary.
//
//   A QR factorization accumulates Q = H_1 H_2 ... H_k; block reflectors are
//   Q_blk = I - V T V^H with T upper triangular (larft, forward columnwise).
//
//   Applying Q^H uses T^H, applying Q uses T (larfb, left).
#pragma once

#include <cmath>
#include <limits>

#include "blas/blas.hpp"
#include "matrix/matrix_view.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr::kernels {

/// Generates an elementary reflector annihilating the n-vector x against the
/// scalar alpha (total reflector order n + 1). On return alpha holds beta and
/// x holds the reflector tail v (the leading implicit entry of v is 1).
/// Overflow-safe via LAPACK-style rescaling.
template <typename T>
void larfg(T& alpha, T* x, std::int64_t n, T& tau) {
  using R = RealType<T>;
  R xnorm = blas::nrm2(n, x);
  const R alphr = ScalarTraits<T>::real(alpha);
  const R alphi = ScalarTraits<T>::imag(alpha);

  if (xnorm == R(0) && alphi == R(0)) {
    tau = T(0);  // H = I
    return;
  }

  auto lapy = [](R a, R b, R c) { return std::sqrt(a * a + b * b + c * c); };
  R beta = -std::copysign(lapy(alphr, alphi, xnorm), alphr);

  const R safmin = std::numeric_limits<R>::min() / std::numeric_limits<R>::epsilon();
  const R rsafmn = R(1) / safmin;
  int knt = 0;
  T alpha_w = alpha;
  while (std::abs(beta) < safmin && knt < 20) {
    ++knt;
    blas::scal(n, T(rsafmn), x);
    beta *= rsafmn;
    alpha_w *= T(rsafmn);
    xnorm = blas::nrm2(n, x);
    beta = -std::copysign(lapy(ScalarTraits<T>::real(alpha_w), ScalarTraits<T>::imag(alpha_w), xnorm),
                          ScalarTraits<T>::real(alpha_w));
  }

  if constexpr (is_complex_v<T>) {
    tau = T((beta - ScalarTraits<T>::real(alpha_w)) / beta,
            -ScalarTraits<T>::imag(alpha_w) / beta);
  } else {
    tau = (beta - alpha_w) / beta;
  }
  T scale = T(1) / (alpha_w - T(beta));
  blas::scal(n, scale, x);

  for (int k = 0; k < knt; ++k) beta *= safmin;
  alpha = T(beta);
}

/// Unblocked QR of an m x n panel (LAPACK geqr2). On return the upper
/// triangle holds R, the strict lower part the reflector tails V, and tau[j]
/// the scalar factors. `work` must hold at least n entries.
template <typename T>
void geqr2(MatrixView<T> a, T* tau, T* work) {
  const std::int64_t m = a.rows();
  const std::int64_t n = a.cols();
  const std::int64_t k = std::min(m, n);
  for (std::int64_t i = 0; i < k; ++i) {
    larfg(a(i, i), &a(i + 1 < m ? i + 1 : i, i), m - i - 1, tau[i]);
    if (i + 1 < n) {
      // Apply H^H = I - conj(tau) v v^H to A[i:m, i+1:n].
      T alpha = a(i, i);
      a(i, i) = T(1);
      const T* v = &a(i, i);
      auto c = a.sub(i, i + 1, m - i, n - i - 1);
      // w_j = v^H C(:,j); then C(:,j) -= conj(tau) * w_j * v. Real scalars
      // take the shared-x microkernels (v loaded once per four columns);
      // complex keeps per-column dotc because the conjugation is on v.
      if constexpr (!is_complex_v<T>) {
        for (std::int64_t j = 0; j < c.cols(); ++j) work[j] = T(0);
        blas::gemv_t_acc(c.rows(), c.cols(), T(1), c.data(), c.ld(), v, work);
        blas::ger_acc(c.rows(), c.cols(), -tau[i], v, work, c.data(), c.ld());
      } else {
        for (std::int64_t j = 0; j < c.cols(); ++j) work[j] = blas::dotc(c.rows(), v, c.col(j));
        for (std::int64_t j = 0; j < c.cols(); ++j)
          blas::axpy(c.rows(), -conj_if_complex(tau[i]) * work[j], v, c.col(j));
      }
      a(i, i) = alpha;
    }
  }
}

/// Forms the upper-triangular block factor T (k x k) of the compact WY
/// representation from reflectors V (m x k, unit lower trapezoidal) and tau,
/// such that H_1 ... H_k = I - V T V^H (LAPACK larft, forward columnwise).
template <typename T>
void larft(ConstMatrixView<T> v, const T* tau, MatrixView<T> t) {
  const std::int64_t m = v.rows();
  const std::int64_t k = v.cols();
  TILEDQR_ASSERT(t.rows() >= k && t.cols() >= k);
  for (std::int64_t i = 0; i < k; ++i) {
    if (tau[i] == T(0)) {
      for (std::int64_t j = 0; j <= i; ++j) t(j, i) = T(0);
      continue;
    }
    // t(0:i, i) = -tau_i * V(:,0:i)^H * v_i, exploiting the unit diagonal:
    // v_i has implicit 1 at row i, explicit tail below; the tails are
    // contiguous column segments, so the sum is a dotc. Real scalars batch
    // the i dots through the shared-x microkernel (v_i's tail loaded once
    // per four columns of V).
    if constexpr (!is_complex_v<T>) {
      for (std::int64_t j = 0; j < i; ++j) t(j, i) = v(i, j);  // implicit v_i(i) = 1
      if (i > 0 && m > i + 1)
        blas::gemv_t_acc(m - i - 1, i, T(1), &v(i + 1, 0), v.ld(), &v(i + 1, i), &t(0, i));
      for (std::int64_t j = 0; j < i; ++j) t(j, i) *= -tau[i];
    } else {
      for (std::int64_t j = 0; j < i; ++j) {
        // Row i of column j is explicit (j < i so V(i,j) is below V's
        // diagonal).
        // Tails via col() pointers: when i + 1 == m the tail is empty and
        // &v(i + 1, j) would index one past the view.
        T acc = conj_if_complex(v(i, j)) +  // from the implicit v_i(i) = 1
                blas::dotc(m - i - 1, v.col(j) + i + 1, v.col(i) + i + 1);
        t(j, i) = -tau[i] * acc;
      }
    }
    // t(0:i, i) = T(0:i,0:i) * t(0:i, i)
    if (i > 0) {
      auto tcol = MatrixView<T>(&t(0, i), i, 1, t.ld());
      blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit,
                 T(1), t.sub(0, 0, i, i), tcol);
    }
    t(i, i) = tau[i];
  }
}

/// Whether a block application multiplies by Q or by Q^H.
enum class ApplyTrans { NoTrans, ConjTrans };

/// Applies a compact-WY block reflector from the left (LAPACK larfb,
/// direction forward, storage columnwise):
///   C := (I - V op(T) V^H)^{(H)} C
/// with V (m x k) unit lower trapezoidal and T (k x k) upper triangular.
/// `work` must hold k * C.cols() entries.
template <typename T>
void larfb_left(ApplyTrans trans, ConstMatrixView<T> v, ConstMatrixView<T> t, MatrixView<T> c,
                T* work) {
  const std::int64_t m = v.rows();
  const std::int64_t k = v.cols();
  const std::int64_t n = c.cols();
  TILEDQR_ASSERT(c.rows() == m);
  if (m == 0 || n == 0 || k == 0) return;

  MatrixView<T> w(work, k, n, k);
  auto c1 = c.sub(0, 0, k, n);
  auto c2 = c.sub(k, 0, m - k, n);
  auto v1 = v.sub(0, 0, k, k);
  auto v2 = v.sub(k, 0, m - k, k);

  // W := V^H C = V1^H C1 + V2^H C2
  copy(ConstMatrixView<T>(c1), w);
  blas::trmm(blas::Side::Left, blas::Uplo::Lower, blas::Op::ConjTrans, blas::Diag::Unit, T(1),
             v1, w);
  if (m > k)
    blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), v2, ConstMatrixView<T>(c2), T(1), w);

  // W := op(T) W
  blas::trmm(blas::Side::Left, blas::Uplo::Upper,
             trans == ApplyTrans::ConjTrans ? blas::Op::ConjTrans : blas::Op::NoTrans,
             blas::Diag::NonUnit, T(1), t, w);

  // C -= V W
  if (m > k)
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), v2, ConstMatrixView<T>(w), T(1), c2);
  // C1 -= V1 W (V1 unit lower triangular): accumulate via trmm_acc.
  blas::trmm_acc(blas::Uplo::Lower, blas::Op::NoTrans, blas::Diag::Unit, T(-1), v1,
                 ConstMatrixView<T>(w), c1);
}

}  // namespace tiledqr::kernels
