// LQ tile kernels by transpose duality (paper §2.1 footnote; PLASMA's
// core_gelqt family). An LQ factorization of A is the conjugate of a QR
// factorization of A^H: A = L Q with L = R^H and Q = Q̃^H where A^H = Q̃ R̃.
// Rather than duplicating PR 7's SIMD-dispatched microkernels for the row
// direction, each LQ kernel adjoints its nb x nb tile operands into scratch,
// runs the dual QR kernel, and adjoints the result back:
//
//   GELQT = GEQRT on A^H     TSLQT = TSQRT on A^H     TTLQT = TTQRT on A^H
//   UNMLQ = UNMQR w/ V^H     TSMLQ = TSMQR w/ V^H     TTMLQ = TTMQR w/ V^H
//
// Factor kernels adjoint every tile in and out, so the factored tile stays
// in A-layout: L in the lower triangle, the row reflectors strictly above it
// (TSLQT tails dense, TTLQT tails lower-trapezoidal). T factors are the
// transposed-world block factors and are stored as-is. Apply kernels operate
// on transposed-world operands (a C whose rows live in A's column space), so
// only the reflector tile is adjointed.
//
// The adjoint copies are O(nb^2) against the kernels' O(nb^3) work, and the
// wrappers require full square tiles — exactly what TileMatrix guarantees
// (every tile is a zero-padded nb x nb block).
//
// The copies must be region-exact, not whole-tile: the DAG runs a TSLQT/TTLQT
// (which rewrites a tile's L triangle) concurrently with UNMLQ tasks (which
// read the same tile's strictly-upper row reflectors) — the same disjoint-
// region parallelism the QR kernels rely on, where tsqrt/ttqrt touch only the
// upper triangles and larft/larfb_left read only strictly below the unit
// diagonal. A whole-tile adjoint in either wrapper would turn those disjoint
// element sets into a data race.
#pragma once

#include "kernels/tile_kernels.hpp"
#include "matrix/scalar.hpp"

namespace tiledqr::kernels {

namespace detail {

/// dst := src^H (dst must be src.cols() x src.rows(); no aliasing).
template <typename T>
void adjoint_copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  TILEDQR_ASSERT(dst.rows() == src.cols() && dst.cols() == src.rows());
  for (std::int64_t j = 0; j < src.cols(); ++j)
    for (std::int64_t i = 0; i < src.rows(); ++i) dst(j, i) = conj_if_complex(src(i, j));
}

/// Which elements of the bound tile an AdjointScratch may touch.
enum class Region {
  Full,           ///< the whole tile
  LowerTriangle,  ///< i >= j only (the L / dual-R part, diagonal included)
};

/// Scratch tile bound to a live view: adjoints in on construction, back out
/// on commit(). With Region::LowerTriangle only the tile's lower triangle is
/// read and written (its image is the scratch's upper triangle — exactly the
/// elements tsqrt/ttqrt access); the rest of the scratch stays uninitialized
/// and the tile's strictly-upper reflectors are never loaded, which keeps the
/// wrapper safe against concurrent UNMLQ readers of the same tile.
template <typename T>
class AdjointScratch {
 public:
  explicit AdjointScratch(MatrixView<T> tile, Region region = Region::Full)
      : tile_(tile), region_(region), buf_(size_t(tile.rows()) * size_t(tile.cols())) {
    if (region_ == Region::Full) {
      adjoint_copy(ConstMatrixView<T>(tile_), view());
    } else {
      auto v = view();
      for (std::int64_t j = 0; j < tile_.cols(); ++j)
        for (std::int64_t i = j; i < tile_.rows(); ++i) v(j, i) = conj_if_complex(tile_(i, j));
    }
  }

  [[nodiscard]] MatrixView<T> view() {
    return MatrixView<T>(buf_.data(), tile_.cols(), tile_.rows(), tile_.cols());
  }

  void commit() {
    if (region_ == Region::Full) {
      adjoint_copy(ConstMatrixView<T>(view()), tile_);
      return;
    }
    auto v = view();
    for (std::int64_t j = 0; j < tile_.cols(); ++j)
      for (std::int64_t i = j; i < tile_.rows(); ++i) tile_(i, j) = conj_if_complex(v(j, i));
  }

 private:
  MatrixView<T> tile_;
  Region region_;
  WorkVec<T> buf_;
};

/// dst's strictly-lower triangle := adjoint of src's strictly-upper triangle
/// (the row reflectors of a factored LQ tile). Nothing else is read or
/// written: the L triangle of src may be concurrently rewritten by a
/// TSLQT/TTLQT on the same tile, and the dual apply kernels only dereference
/// strictly below their unit diagonal.
template <typename T>
void adjoint_copy_reflectors(ConstMatrixView<T> src, MatrixView<T> dst) {
  TILEDQR_ASSERT(dst.rows() == src.cols() && dst.cols() == src.rows());
  for (std::int64_t j = 1; j < src.cols(); ++j)
    for (std::int64_t i = 0; i < j && i < src.rows(); ++i)
      dst(j, i) = conj_if_complex(src(i, j));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// GELQT: blocked LQ of a square tile. On return the tile holds L in its
// lower triangle and the row reflectors strictly above; t holds the dual
// GEQRT's ib x nb block factors.
template <typename T>
void gelqt(int ib, MatrixView<T> a, MatrixView<T> t) {
  detail::AdjointScratch<T> s(a);
  geqrt(ib, s.view(), t);
  s.commit();
}

// ---------------------------------------------------------------------------
// TSLQT: LQ of the side-by-side pair [L1 | A2] (L1 = a1's lower triangle).
// On return a1 holds the updated L, a2 the dense row-reflector tails.
template <typename T>
void tslqt(int ib, MatrixView<T> a1, MatrixView<T> a2, MatrixView<T> t) {
  // a1's strictly-upper reflectors may be under concurrent UNMLQ reads;
  // the dual tsqrt never touches a1's strictly-lower (dual) part anyway.
  detail::AdjointScratch<T> s1(a1, detail::Region::LowerTriangle);
  detail::AdjointScratch<T> s2(a2);
  tsqrt(ib, s1.view(), s2.view(), t);
  s1.commit();
  s2.commit();
}

// ---------------------------------------------------------------------------
// TTLQT: LQ of the side-by-side pair of lower-triangular tiles [L1 | L2].
// On return a2's lower triangle holds the lower-trapezoidal reflector tails;
// the strictly-upper parts of both tiles (GELQT row reflectors) survive.
template <typename T>
void ttlqt(int ib, MatrixView<T> a1, MatrixView<T> a2, MatrixView<T> t) {
  // Both tiles carry live GELQT row reflectors strictly above the diagonal
  // that UNMLQ tasks read in parallel; the dual ttqrt only works on the
  // upper (dual) triangles, so restrict both scratches to the L region.
  detail::AdjointScratch<T> s1(a1, detail::Region::LowerTriangle);
  detail::AdjointScratch<T> s2(a2, detail::Region::LowerTriangle);
  ttqrt(ib, s1.view(), s2.view(), t);
  s1.commit();
  s2.commit();
}

// ---------------------------------------------------------------------------
// UNMLQ: applies a GELQT transformation to a transposed-world tile c
// (c's rows are indexed by A's columns): c := op(Q̃) c, where Q̃ is the dual
// QR's orthogonal factor. v is the factored tile in A-layout.
template <typename T>
void unmlq(ApplyTrans trans, int ib, ConstMatrixView<T> v, ConstMatrixView<T> t,
           MatrixView<T> c) {
  detail::WorkVec<T> buf(size_t(v.rows()) * size_t(v.cols()));
  MatrixView<T> vt(buf.data(), v.cols(), v.rows(), v.cols());
  detail::adjoint_copy_reflectors(v, vt);
  unmqr(trans, ib, ConstMatrixView<T>(vt), t, c);
}

// ---------------------------------------------------------------------------
// TSMLQ: applies a TSLQT transformation (v2 = the zeroed tile holding dense
// row-reflector tails, in A-layout) to the transposed-world pair [a1; a2].
template <typename T>
void tsmlq(ApplyTrans trans, int ib, ConstMatrixView<T> v2, ConstMatrixView<T> t,
           MatrixView<T> a1, MatrixView<T> a2) {
  detail::WorkVec<T> buf(size_t(v2.rows()) * size_t(v2.cols()));
  MatrixView<T> vt(buf.data(), v2.cols(), v2.rows(), v2.cols());
  detail::adjoint_copy(v2, vt);
  tsmqr(trans, ib, ConstMatrixView<T>(vt), t, a1, a2);
}

// ---------------------------------------------------------------------------
// TTMLQ: applies a TTLQT transformation (v2 = the zeroed tile holding the
// lower-trapezoidal row-reflector tails, in A-layout) to the transposed-world
// pair [a1; a2].
template <typename T>
void ttmlq(ApplyTrans trans, int ib, ConstMatrixView<T> v2, ConstMatrixView<T> t,
           MatrixView<T> a1, MatrixView<T> a2) {
  detail::WorkVec<T> buf(size_t(v2.rows()) * size_t(v2.cols()));
  MatrixView<T> vt(buf.data(), v2.cols(), v2.rows(), v2.cols());
  detail::adjoint_copy(v2, vt);
  ttmqr(trans, ib, ConstMatrixView<T>(vt), t, a1, a2);
}

// ---------------------------------------------------------------------------
// Convenience overloads accepting mutable views for read-only arguments
// (template deduction does not consider the MatrixView -> ConstMatrixView
// conversion).
template <typename T>
void unmlq(ApplyTrans trans, int ib, MatrixView<T> v, MatrixView<T> t, MatrixView<T> c) {
  unmlq(trans, ib, ConstMatrixView<T>(v), ConstMatrixView<T>(t), c);
}
template <typename T>
void tsmlq(ApplyTrans trans, int ib, MatrixView<T> v2, MatrixView<T> t, MatrixView<T> a1,
           MatrixView<T> a2) {
  tsmlq(trans, ib, ConstMatrixView<T>(v2), ConstMatrixView<T>(t), a1, a2);
}
template <typename T>
void ttmlq(ApplyTrans trans, int ib, MatrixView<T> v2, MatrixView<T> t, MatrixView<T> a1,
           MatrixView<T> a2) {
  ttmlq(trans, ib, ConstMatrixView<T>(v2), ConstMatrixView<T>(t), a1, a2);
}

}  // namespace tiledqr::kernels
