// The six sequential tile kernels of the tiled QR factorization (paper §2.1,
// Table 1), modeled on the PLASMA core_blas kernels:
//
//   GEQRT  factor a square tile into a triangle            (weight 4)
//   UNMQR  apply a GEQRT transformation to a tile          (weight 6)
//   TSQRT  zero a square tile against a triangle on top    (weight 6)
//   TSMQR  apply a TSQRT transformation to a tile pair     (weight 12)
//   TTQRT  zero a triangular tile against a triangle       (weight 2)
//   TTMQR  apply a TTQRT transformation to a tile pair     (weight 6)
//
// Weights are in units of nb^3/3 flops. The TT kernels exploit the upper
// triangular structure of the eliminated tile (reflector tails are upper
// trapezoidal), which is where their 2x flop advantage over TS comes from.
//
// Storage conventions (per tile, matching PLASMA):
//  * after GEQRT, the tile holds R in its upper triangle and the unit-lower
//    reflectors V strictly below the diagonal; T factors go to a separate
//    ib x nb array.
//  * after TSQRT, the zeroed tile holds the dense reflector tails V2; its own
//    T goes to another ib x nb array.
//  * after TTQRT, the zeroed (triangular) tile holds the upper-trapezoidal
//    reflector tails V2 in its upper triangle — the strictly-lower part (the
//    GEQRT reflectors of that tile) is preserved, so a factorization can
//    later replay both transformations (apply_q).
#pragma once

#include <algorithm>
#include <vector>

#include "common/aligned.hpp"
#include "kernels/householder.hpp"

namespace tiledqr::kernels {

namespace detail {
template <typename T>
using WorkVec = std::vector<T, AlignedAllocator<T>>;

/// Panel start offsets for blocked application: ascending when applying Q^H,
/// descending when applying Q (Q = B_1 B_2 ... B_l, so Q C applies B_l first).
inline std::vector<std::int64_t> block_starts(std::int64_t k, int ib, ApplyTrans trans) {
  std::vector<std::int64_t> starts;
  for (std::int64_t i = 0; i < k; i += ib) starts.push_back(i);
  if (trans == ApplyTrans::NoTrans) std::reverse(starts.begin(), starts.end());
  return starts;
}
}  // namespace detail

// ---------------------------------------------------------------------------
// GEQRT: blocked QR of an m x n tile. t must be ib x n (only the leading
// min(ib, remaining) x sb block per panel is written).
template <typename T>
void geqrt(int ib, MatrixView<T> a, MatrixView<T> t) {
  const std::int64_t m = a.rows();
  const std::int64_t n = a.cols();
  const std::int64_t k = std::min(m, n);
  TILEDQR_CHECK(ib >= 1, "geqrt: ib must be >= 1");
  TILEDQR_CHECK(t.rows() >= std::min<std::int64_t>(ib, k) && t.cols() >= k,
                "geqrt: T too small");

  detail::WorkVec<T> tau(static_cast<size_t>(k));
  detail::WorkVec<T> work(size_t(ib) * size_t(n) + size_t(n));

  for (std::int64_t i = 0; i < k; i += ib) {
    const std::int64_t sb = std::min<std::int64_t>(ib, k - i);
    auto panel = a.sub(i, i, m - i, sb);
    geqr2(panel, tau.data() + i, work.data());
    auto tblk = t.sub(0, i, sb, sb);
    larft(ConstMatrixView<T>(panel), tau.data() + i, tblk);
    if (i + sb < n) {
      larfb_left(ApplyTrans::ConjTrans, ConstMatrixView<T>(panel), ConstMatrixView<T>(tblk),
                 a.sub(i, i + sb, m - i, n - i - sb), work.data());
    }
  }
}

// ---------------------------------------------------------------------------
// UNMQR: applies the transformation computed by geqrt (v = factored tile,
// t = its block factors) to an m x nn tile c: c := op(Q) c.
template <typename T>
void unmqr(ApplyTrans trans, int ib, ConstMatrixView<T> v, ConstMatrixView<T> t,
           MatrixView<T> c) {
  const std::int64_t m = v.rows();
  const std::int64_t k = std::min(m, v.cols());
  TILEDQR_CHECK(c.rows() == m, "unmqr: C row mismatch");
  detail::WorkVec<T> work(size_t(ib) * size_t(c.cols()));
  for (std::int64_t i : detail::block_starts(k, ib, trans)) {
    const std::int64_t sb = std::min<std::int64_t>(ib, k - i);
    larfb_left(trans, v.sub(i, i, m - i, sb), t.sub(0, i, sb, sb),
               c.sub(i, 0, m - i, c.cols()), work.data());
  }
}

// ---------------------------------------------------------------------------
// TSQRT: QR of the (2nb) x n stacked pair [R1; A2] where a1's upper triangle
// holds R1 and a2 is a full m2 x n tile. On return a1's upper triangle holds
// the updated R, a2 holds the dense reflector tails V2, and t the block
// factors. a1's strictly-lower part is never touched.
template <typename T>
void tsqrt(int ib, MatrixView<T> a1, MatrixView<T> a2, MatrixView<T> t) {
  const std::int64_t n = a1.cols();
  const std::int64_t m2 = a2.rows();
  TILEDQR_CHECK(a1.rows() >= n,
                "tsqrt: a1 has fewer rows than columns (R1 must hold an n x n triangle)");
  TILEDQR_CHECK(a2.cols() == n, "tsqrt: a2 col mismatch");
  TILEDQR_CHECK(ib >= 1, "tsqrt: ib must be >= 1");

  detail::WorkVec<T> tau(static_cast<size_t>(n));
  detail::WorkVec<T> work(size_t(ib) * size_t(n));

  for (std::int64_t i = 0; i < n; i += ib) {
    const std::int64_t sb = std::min<std::int64_t>(ib, n - i);
    // Factor the panel columns one by one.
    for (std::int64_t j = 0; j < sb; ++j) {
      const std::int64_t ci = i + j;
      larfg(a1(ci, ci), a2.col(ci), m2, tau[ci]);
      const T* v2 = a2.col(ci);
      for (std::int64_t jj = ci + 1; jj < i + sb; ++jj) {
        // w = a1(ci,jj) + v2^H a2(:,jj);  rows (ci, :) of a1 and all of a2.
        T w = a1(ci, jj) + blas::dotc(m2, v2, a2.col(jj));
        w *= conj_if_complex(tau[ci]);
        a1(ci, jj) -= w;
        blas::axpy(m2, -w, v2, a2.col(jj));
      }
    }
    // Form the sb x sb block factor: the identity parts of distinct
    // reflectors are orthogonal, so only V2 contributes to V^H v_j.
    auto tblk = t.sub(0, i, sb, sb);
    for (std::int64_t j = 0; j < sb; ++j) {
      for (std::int64_t l = 0; l < j; ++l)
        tblk(l, j) = -tau[i + j] * blas::dotc(m2, a2.col(i + l), a2.col(i + j));
      if (j > 0) {
        auto tcol = MatrixView<T>(&tblk(0, j), j, 1, tblk.ld());
        blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit,
                   T(1), tblk.sub(0, 0, j, j), tcol);
      }
      tblk(j, j) = tau[i + j];
    }
    // Apply the block reflector (Q^H) to the trailing columns.
    if (i + sb < n) {
      const std::int64_t nn = n - i - sb;
      auto c1 = a1.sub(i, i + sb, sb, nn);
      auto c2 = a2.sub(0, i + sb, m2, nn);
      auto v2 = a2.sub(0, i, m2, sb);
      MatrixView<T> w(work.data(), sb, nn, sb);
      copy(ConstMatrixView<T>(c1), w);
      blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), ConstMatrixView<T>(v2),
                 ConstMatrixView<T>(c2), T(1), w);
      blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Op::ConjTrans, blas::Diag::NonUnit,
                 T(1), ConstMatrixView<T>(tblk), w);
      blas::add(T(-1), ConstMatrixView<T>(w), c1);
      blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), ConstMatrixView<T>(v2),
                 ConstMatrixView<T>(w), T(1), c2);
    }
  }
}

// ---------------------------------------------------------------------------
// TSMQR: applies a TSQRT transformation (v2 = zeroed tile holding dense
// reflector tails, t = its block factors) to the stacked pair [a1; a2]:
//   [a1; a2] := op(Q) [a1; a2].
template <typename T>
void tsmqr(ApplyTrans trans, int ib, ConstMatrixView<T> v2, ConstMatrixView<T> t,
           MatrixView<T> a1, MatrixView<T> a2) {
  const std::int64_t k = v2.cols();
  const std::int64_t m2 = v2.rows();
  const std::int64_t nn = a1.cols();
  TILEDQR_CHECK(a2.rows() == m2 && a2.cols() == nn, "tsmqr: shape mismatch");
  detail::WorkVec<T> work(size_t(ib) * size_t(nn));

  for (std::int64_t i : detail::block_starts(k, ib, trans)) {
    const std::int64_t sb = std::min<std::int64_t>(ib, k - i);
    auto v2blk = v2.sub(0, i, m2, sb);
    auto tblk = t.sub(0, i, sb, sb);
    auto c1 = a1.sub(i, 0, sb, nn);
    MatrixView<T> w(work.data(), sb, nn, sb);
    copy(ConstMatrixView<T>(c1), w);
    blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), v2blk, ConstMatrixView<T>(a2),
               T(1), w);
    blas::trmm(blas::Side::Left, blas::Uplo::Upper,
               trans == ApplyTrans::ConjTrans ? blas::Op::ConjTrans : blas::Op::NoTrans,
               blas::Diag::NonUnit, T(1), tblk, w);
    blas::add(T(-1), ConstMatrixView<T>(w), c1);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), v2blk, ConstMatrixView<T>(w), T(1),
               a2);
  }
}

// ---------------------------------------------------------------------------
// TTQRT: QR of the stacked pair [R1; R2] with both tiles upper triangular.
// On return a1's upper triangle holds the updated R, a2's upper triangle the
// upper-trapezoidal reflector tails V2, and t the block factors. The strictly
// lower parts of both tiles are preserved.
template <typename T>
void ttqrt(int ib, MatrixView<T> a1, MatrixView<T> a2, MatrixView<T> t) {
  const std::int64_t n = a1.cols();
  TILEDQR_CHECK(a2.cols() == n, "ttqrt: a2 col mismatch");
  TILEDQR_CHECK(ib >= 1, "ttqrt: ib must be >= 1");

  detail::WorkVec<T> tau(static_cast<size_t>(n));
  detail::WorkVec<T> work(size_t(ib) * size_t(n));

  for (std::int64_t i = 0; i < n; i += ib) {
    const std::int64_t sb = std::min<std::int64_t>(ib, n - i);
    for (std::int64_t j = 0; j < sb; ++j) {
      const std::int64_t ci = i + j;
      // Column ci of a2 has nonzeros in rows 0..ci only.
      larfg(a1(ci, ci), a2.col(ci), ci + 1, tau[ci]);
      const T* v2 = a2.col(ci);
      for (std::int64_t jj = ci + 1; jj < i + sb; ++jj) {
        T w = a1(ci, jj) + blas::dotc(ci + 1, v2, a2.col(jj));
        w *= conj_if_complex(tau[ci]);
        a1(ci, jj) -= w;
        blas::axpy(ci + 1, -w, v2, a2.col(jj));
      }
    }
    auto tblk = t.sub(0, i, sb, sb);
    for (std::int64_t j = 0; j < sb; ++j) {
      // Reflector tail i+l has support rows 0..i+l only; the tile below that
      // may hold unrelated data (the GEQRT reflectors), so the dot product
      // must stop at the shorter support.
      for (std::int64_t l = 0; l < j; ++l)
        tblk(l, j) = -tau[i + j] * blas::dotc(i + l + 1, a2.col(i + l), a2.col(i + j));
      if (j > 0) {
        auto tcol = MatrixView<T>(&tblk(0, j), j, 1, tblk.ld());
        blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit,
                   T(1), tblk.sub(0, 0, j, j), tcol);
      }
      tblk(j, j) = tau[i + j];
    }
    // Block-apply Q^H to trailing columns. V2 for this panel is the
    // trapezoid a2[0:i+sb, i:i+sb]: a dense i x sb block D on top of an
    // upper triangular sb x sb block U.
    if (i + sb < n) {
      const std::int64_t nn = n - i - sb;
      auto c1 = a1.sub(i, i + sb, sb, nn);
      auto c2top = a2.sub(0, i + sb, i, nn);
      auto c2mid = a2.sub(i, i + sb, sb, nn);
      auto d = a2.sub(0, i, i, sb);
      auto u = a2.sub(i, i, sb, sb);
      MatrixView<T> w(work.data(), sb, nn, sb);
      copy(ConstMatrixView<T>(c1), w);
      if (i > 0)
        blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), ConstMatrixView<T>(d),
                   ConstMatrixView<T>(c2top), T(1), w);
      blas::trmm_acc(blas::Uplo::Upper, blas::Op::ConjTrans, blas::Diag::NonUnit, T(1),
                     ConstMatrixView<T>(u), ConstMatrixView<T>(c2mid), w);
      blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Op::ConjTrans, blas::Diag::NonUnit,
                 T(1), ConstMatrixView<T>(tblk), w);
      blas::add(T(-1), ConstMatrixView<T>(w), c1);
      if (i > 0)
        blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), ConstMatrixView<T>(d),
                   ConstMatrixView<T>(w), T(1), c2top);
      blas::trmm_acc(blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit, T(-1),
                     ConstMatrixView<T>(u), ConstMatrixView<T>(w), c2mid);
    }
  }
}

// ---------------------------------------------------------------------------
// TTMQR: applies a TTQRT transformation (v2 = zeroed tile holding the upper
// trapezoidal reflector tails in its upper triangle) to the pair [a1; a2].
template <typename T>
void ttmqr(ApplyTrans trans, int ib, ConstMatrixView<T> v2, ConstMatrixView<T> t,
           MatrixView<T> a1, MatrixView<T> a2) {
  const std::int64_t k = v2.cols();
  const std::int64_t nn = a1.cols();
  TILEDQR_CHECK(a2.cols() == nn, "ttmqr: shape mismatch");
  detail::WorkVec<T> work(size_t(ib) * size_t(nn));

  for (std::int64_t i : detail::block_starts(k, ib, trans)) {
    const std::int64_t sb = std::min<std::int64_t>(ib, k - i);
    auto d = v2.sub(0, i, i, sb);
    auto u = v2.sub(i, i, sb, sb);
    auto tblk = t.sub(0, i, sb, sb);
    auto c1 = a1.sub(i, 0, sb, nn);
    auto c2top = a2.sub(0, 0, i, nn);
    auto c2mid = a2.sub(i, 0, sb, nn);
    MatrixView<T> w(work.data(), sb, nn, sb);
    copy(ConstMatrixView<T>(c1), w);
    if (i > 0)
      blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), d, ConstMatrixView<T>(c2top),
                 T(1), w);
    blas::trmm_acc(blas::Uplo::Upper, blas::Op::ConjTrans, blas::Diag::NonUnit, T(1), u,
                   ConstMatrixView<T>(c2mid), w);
    blas::trmm(blas::Side::Left, blas::Uplo::Upper,
               trans == ApplyTrans::ConjTrans ? blas::Op::ConjTrans : blas::Op::NoTrans,
               blas::Diag::NonUnit, T(1), tblk, w);
    blas::add(T(-1), ConstMatrixView<T>(w), c1);
    if (i > 0)
      blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(-1), d, ConstMatrixView<T>(w), T(1),
                 c2top);
    blas::trmm_acc(blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit, T(-1), u,
                   ConstMatrixView<T>(w), c2mid);
  }
}

// ---------------------------------------------------------------------------
// Convenience overloads accepting mutable views for read-only arguments
// (template deduction does not consider the MatrixView -> ConstMatrixView
// conversion).
template <typename T>
void unmqr(ApplyTrans trans, int ib, MatrixView<T> v, MatrixView<T> t, MatrixView<T> c) {
  unmqr(trans, ib, ConstMatrixView<T>(v), ConstMatrixView<T>(t), c);
}
template <typename T>
void tsmqr(ApplyTrans trans, int ib, MatrixView<T> v2, MatrixView<T> t, MatrixView<T> a1,
           MatrixView<T> a2) {
  tsmqr(trans, ib, ConstMatrixView<T>(v2), ConstMatrixView<T>(t), a1, a2);
}
template <typename T>
void ttmqr(ApplyTrans trans, int ib, MatrixView<T> v2, MatrixView<T> t, MatrixView<T> a1,
           MatrixView<T> a2) {
  ttmqr(trans, ib, ConstMatrixView<T>(v2), ConstMatrixView<T>(t), a1, a2);
}

}  // namespace tiledqr::kernels
