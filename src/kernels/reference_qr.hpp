// Reference (unblocked LAPACK-style) Householder QR, used as a numerical
// oracle by the test suite and by the examples for small problems.
#pragma once

#include <vector>

#include "kernels/householder.hpp"
#include "matrix/matrix.hpp"

namespace tiledqr::kernels {

/// Result of a reference QR factorization: the packed factors plus tau.
template <typename T>
struct ReferenceQr {
  Matrix<T> vr;        ///< R in the upper triangle, reflectors V below.
  std::vector<T> tau;  ///< Scalar reflector factors.

  [[nodiscard]] std::int64_t rows() const { return vr.rows(); }
  [[nodiscard]] std::int64_t cols() const { return vr.cols(); }

  /// Extracts the k x n upper-triangular R factor (k = min(m, n)).
  [[nodiscard]] Matrix<T> r_factor() const {
    const std::int64_t k = std::min(vr.rows(), vr.cols());
    Matrix<T> r(k, vr.cols());
    for (std::int64_t j = 0; j < vr.cols(); ++j)
      for (std::int64_t i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = vr(i, j);
    return r;
  }

  /// Applies op(Q) to C in place (C has m rows).
  void apply_q(ApplyTrans trans, MatrixView<T> c) const {
    const std::int64_t m = vr.rows();
    const std::int64_t k = std::int64_t(tau.size());
    TILEDQR_CHECK(c.rows() == m, "reference apply_q: row mismatch");
    std::vector<std::int64_t> order;
    for (std::int64_t i = 0; i < k; ++i) order.push_back(i);
    if (trans == ApplyTrans::NoTrans) std::reverse(order.begin(), order.end());
    std::vector<T> v(static_cast<size_t>(m));
    for (std::int64_t i : order) {
      // v = [1; vr(i+1:m, i)]
      v[size_t(i)] = T(1);
      for (std::int64_t r = i + 1; r < m; ++r) v[size_t(r)] = vr(r, i);
      T t = trans == ApplyTrans::ConjTrans ? conj_if_complex(tau[size_t(i)]) : tau[size_t(i)];
      for (std::int64_t j = 0; j < c.cols(); ++j) {
        T w = blas::dotc(m - i, v.data() + i, c.col(j) + i);
        blas::axpy(m - i, -t * w, v.data() + i, c.col(j) + i);
      }
    }
  }

  /// Forms the thin m x k Q factor explicitly.
  [[nodiscard]] Matrix<T> q_thin() const {
    const std::int64_t m = vr.rows();
    const std::int64_t k = std::int64_t(tau.size());
    Matrix<T> q(m, k);
    for (std::int64_t i = 0; i < k; ++i) q(i, i) = T(1);
    apply_q(ApplyTrans::NoTrans, q.view());
    return q;
  }
};

/// Factorizes a copy of `a` with unblocked Householder QR.
template <typename T>
[[nodiscard]] ReferenceQr<T> reference_qr(ConstMatrixView<T> a) {
  ReferenceQr<T> out;
  out.vr = Matrix<T>(a.rows(), a.cols());
  copy(a, out.vr.view());
  const std::int64_t k = std::min(a.rows(), a.cols());
  out.tau.assign(size_t(k), T(0));
  std::vector<T> work(size_t(a.cols()));
  geqr2(out.vr.view(), out.tau.data(), work.data());
  return out;
}

/// Solves the least-squares problem min ||a x - b||_2 for tall a via the
/// reference QR (oracle for the tiled solver).
template <typename T>
[[nodiscard]] Matrix<T> reference_least_squares(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  TILEDQR_CHECK(a.rows() >= a.cols(), "reference_least_squares: need m >= n");
  auto qr = reference_qr(a);
  Matrix<T> qtb(b.rows(), b.cols());
  copy(b, qtb.view());
  qr.apply_q(ApplyTrans::ConjTrans, qtb.view());
  const std::int64_t n = a.cols();
  Matrix<T> x(n, b.cols());
  copy(qtb.sub(0, 0, n, b.cols()), x.view());
  blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit, T(1),
             qr.vr.sub(0, 0, n, n), x.view());
  return x;
}

}  // namespace tiledqr::kernels
