// Umbrella header for the kernel layer + kernel metadata (names, weights,
// flop counts) shared with the DAG/simulation layers.
#pragma once

#include <cstdint>

#include "kernels/householder.hpp"
#include "kernels/lq_kernels.hpp"
#include "kernels/tile_kernels.hpp"

namespace tiledqr::kernels {

/// Which factorization a plan/graph/kernel belongs to. QR reduces below the
/// diagonal by columns (the paper's algorithm); LQ reduces right of the
/// diagonal by rows, implemented by transpose duality over the QR kernels.
enum class FactorKind : std::uint8_t { QR, LQ };

[[nodiscard]] const char* factor_kind_name(FactorKind k) noexcept;

/// The six tile kernels of Table 1, plus their LQ duals. The LQ kinds are
/// ordered so that `kind - kNumQrKernelKinds` is the QR dual: GELQT wraps
/// GEQRT on transposed tiles, UNMLQ wraps UNMQR, and so on.
enum class KernelKind : std::uint8_t {
  GEQRT,
  UNMQR,
  TSQRT,
  TSMQR,
  TTQRT,
  TTMQR,
  GELQT,
  UNMLQ,
  TSLQT,
  TSMLQ,
  TTLQT,
  TTMLQ,
};

/// Distinct QR kernel shapes — the size of per-kernel weight/rate profiles.
/// An LQ kernel shares its dual's profile slot (same flops, same microkernel
/// work on transposed tiles), so profile arrays stay 6-wide.
inline constexpr int kNumQrKernelKinds = 6;

/// Total enum size (QR + LQ), for name tables and per-kind histograms.
inline constexpr int kNumKernelKinds = 12;

[[nodiscard]] constexpr bool is_lq_kernel(KernelKind k) noexcept {
  return int(k) >= kNumQrKernelKinds;
}

/// The QR kernel an LQ kernel wraps (identity on QR kinds).
[[nodiscard]] constexpr KernelKind qr_dual(KernelKind k) noexcept {
  return is_lq_kernel(k) ? KernelKind(int(k) - kNumQrKernelKinds) : k;
}

/// The LQ kernel wrapping a QR kernel (identity on LQ kinds).
[[nodiscard]] constexpr KernelKind lq_dual(KernelKind k) noexcept {
  return is_lq_kernel(k) ? k : KernelKind(int(k) + kNumQrKernelKinds);
}

/// Task weight in units of nb^3/3 flops (paper Table 1). An LQ kernel does
/// exactly its dual's flops on transposed tiles.
[[nodiscard]] constexpr int kernel_weight(KernelKind k) noexcept {
  switch (qr_dual(k)) {
    case KernelKind::GEQRT: return 4;
    case KernelKind::UNMQR: return 6;
    case KernelKind::TSQRT: return 6;
    case KernelKind::TSMQR: return 12;
    case KernelKind::TTQRT: return 2;
    case KernelKind::TTMQR: return 6;
    default: break;
  }
  return 0;
}

/// Human-readable kernel name.
[[nodiscard]] const char* kernel_name(KernelKind k) noexcept;

/// Nominal flop count of a kernel on nb x nb tiles: weight * nb^3 / 3,
/// multiplied by 4 for complex scalars.
[[nodiscard]] double kernel_flops(KernelKind k, int nb, bool complex_scalar) noexcept;

}  // namespace tiledqr::kernels
