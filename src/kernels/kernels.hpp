// Umbrella header for the kernel layer + kernel metadata (names, weights,
// flop counts) shared with the DAG/simulation layers.
#pragma once

#include <cstdint>

#include "kernels/householder.hpp"
#include "kernels/tile_kernels.hpp"

namespace tiledqr::kernels {

/// The six tile kernels of Table 1.
enum class KernelKind : std::uint8_t { GEQRT, UNMQR, TSQRT, TSMQR, TTQRT, TTMQR };

inline constexpr int kNumKernelKinds = 6;

/// Task weight in units of nb^3/3 flops (paper Table 1).
[[nodiscard]] constexpr int kernel_weight(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::GEQRT: return 4;
    case KernelKind::UNMQR: return 6;
    case KernelKind::TSQRT: return 6;
    case KernelKind::TSMQR: return 12;
    case KernelKind::TTQRT: return 2;
    case KernelKind::TTMQR: return 6;
  }
  return 0;
}

/// Human-readable kernel name.
[[nodiscard]] const char* kernel_name(KernelKind k) noexcept;

/// Nominal flop count of a kernel on nb x nb tiles: weight * nb^3 / 3,
/// multiplied by 4 for complex scalars.
[[nodiscard]] double kernel_flops(KernelKind k, int nb, bool complex_scalar) noexcept;

}  // namespace tiledqr::kernels
