// The paper's performance prediction model (§4):
//
//   gamma_pred = gamma_seq * T / max(T / P, cp)
//
// where gamma_seq is the sequential kernel rate, T the total task weight, cp
// the critical path length, and P the number of processors. This is the
// Roofline-style bound the predicted curves of Figures 1 and 6 come from.
#pragma once

namespace tiledqr::core {

/// Total task weight of any valid tiled QR algorithm on a p x q grid:
/// 6 p q^2 - 2 q^3 in units of n_b^3/3 flops. Wide grids (p < q) factor by
/// LQ duality on the transposed grid, so their weight is the transposed
/// grid's QR weight — the function is symmetric under transposition.
[[nodiscard]] long total_weight_units(int p, int q);

/// Flops of the m x n factorization: 2 m n^2 - (2/3) n^3 (x4 for complex).
[[nodiscard]] double factorization_flops(long m, long n, bool complex_scalar);

/// gamma_pred in the same rate unit as gamma_seq; T and cp must share a unit.
[[nodiscard]] double predicted_rate(double gamma_seq, double total_work, double critical_path,
                                    int processors);

/// Convenience for the tiled model: prediction in GFLOP/s from the
/// sequential kernel rate, the (p, q) grid, and the critical path in units.
[[nodiscard]] double predicted_gflops(double gamma_seq_gflops, int p, int q, long cp_units,
                                      int processors);

}  // namespace tiledqr::core
