// Shared experiment driver for the benchmark harness: plans an algorithm,
// executes it on random data, and reports wall time / GFLOP/s. Planning is
// excluded from the timed region; each repetition starts from a fresh copy
// of the input tiles and the best (minimum) time is reported.
#pragma once

#include <string>

#include "common/timer.hpp"
#include "core/roofline.hpp"
#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"

namespace tiledqr::core {

struct RunConfig {
  int p = 8;            ///< tile rows
  int q = 8;            ///< tile columns
  int nb = 96;          ///< tile size
  int ib = 32;          ///< inner blocking
  int threads = 0;      ///< 0 = default
  int reps = 3;         ///< repetitions; best time is kept
  trees::TreeConfig tree{};
};

struct RunRecord {
  std::string algorithm;
  double seconds = 0.0;
  double gflops = 0.0;
  long cp_units = 0;
};

/// Times one algorithm on a p*nb x q*nb random matrix.
template <typename T>
[[nodiscard]] RunRecord run_factorization(const RunConfig& cfg) {
  RunRecord rec;
  rec.algorithm = cfg.tree.name();
  const int threads = cfg.threads > 0 ? cfg.threads : default_thread_count();

  Plan plan = make_plan(cfg.p, cfg.q, cfg.tree);
  rec.cp_units = plan.critical_path;

  const std::int64_t m = std::int64_t(cfg.p) * cfg.nb;
  const std::int64_t n = std::int64_t(cfg.q) * cfg.nb;
  auto dense = random_matrix<T>(m, n, 0xC0FFEE);
  auto tiles0 = TileMatrix<T>::from_dense(dense.view(), cfg.nb);

  double best = -1.0;
  for (int r = 0; r < cfg.reps; ++r) {
    TileMatrix<T> a = tiles0;
    TStore<T> ts(cfg.p, cfg.q, cfg.ib, cfg.nb);
    TStore<T> t2s(cfg.p, cfg.q, cfg.ib, cfg.nb);
    WallTimer timer;
    execute_graph(plan.graph, a, ts, t2s, cfg.ib, threads);
    double sec = timer.seconds();
    if (best < 0.0 || sec < best) best = sec;
  }
  rec.seconds = best;
  rec.gflops = factorization_flops(m, n, is_complex_v<T>) / best * 1e-9;
  return rec;
}

/// Sequential kernel rate gamma_seq (GFLOP/s): a single-threaded small
/// factorization with the same nb/ib, as in the paper's prediction model.
template <typename T>
[[nodiscard]] double measure_gamma_seq(int nb, int ib) {
  RunConfig cfg;
  cfg.p = 6;
  cfg.q = 3;
  cfg.nb = nb;
  cfg.ib = ib;
  cfg.threads = 1;
  cfg.reps = 2;
  cfg.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 0};
  return run_factorization<T>(cfg).gflops;
}

}  // namespace tiledqr::core
