// TiledQr<T>: the public entry point of the library.
//
//   auto qr = TiledQr<double>::factorize(a, options);   // A = Q R  (m >= n)
//   Matrix<double> r = qr.r_factor();                   //          or A = L Q
//   Matrix<double> q = qr.q_thin();                     //          (m < n)
//   Matrix<double> x = qr.solve_least_squares(b);       // min ||A x - b||,
//                                                       // min-norm when wide
//
// The factorization routes on shape: tall/square matrices run the tiled QR
// column reduction, wide matrices (m < n) the LQ row reduction by transpose
// duality — the same elimination trees and runtime on the transposed
// (reduction) grid, with each LQ kernel wrapping its QR dual on adjointed
// tiles. Either way the selected tiled algorithm (Greedy by default) runs
// through the dataflow runtime; the factored tiles retain the full
// transformation log (GEQRT reflectors below the diagonal / GELQT row
// reflectors above it, TT reflector tails on the other side, block factors
// in the T/T2 stores), so op(Q) can be applied to anything afterwards
// (LAPACK xORMQR/xORMLQ-style).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include <memory>

#include "blas/blas.hpp"
#include "common/env.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "kernels/kernels.hpp"
#include "matrix/tile_matrix.hpp"
#include "runtime/executor.hpp"

namespace tiledqr::core {

using kernels::ApplyTrans;

/// Factorization options. `tree` left disengaged means "pick for me": the
/// FactorSession batch/pipeline/stream paths route it through the tree
/// autotuner per shape, while the direct TiledQr paths (no tuner in scope)
/// fall back to the paper's recommended default, Greedy with TT kernels. An
/// engaged tree is always honored verbatim.
struct Options {
  std::optional<trees::TreeConfig> tree{};  ///< algorithm; nullopt = auto/Greedy
  int nb = 128;                             ///< tile size
  int ib = 32;                              ///< inner blocking of the kernels
  int threads = 0;  ///< worker threads; 0 = TILEDQR_THREADS or hw concurrency
};

/// Storage for the ib x nb block factors of every tile.
template <typename T>
class TStore {
 public:
  TStore() = default;
  TStore(int p, int q, int ib, int nb)
      : q_(q), ib_(ib), nb_(nb), data_(size_t(p) * size_t(q) * size_t(ib) * size_t(nb)) {}

  [[nodiscard]] MatrixView<T> at(int i, int k) noexcept {
    return MatrixView<T>(data_.data() + (size_t(i) * size_t(q_) + size_t(k)) * size_t(ib_) *
                                            size_t(nb_),
                         ib_, nb_, ib_);
  }
  [[nodiscard]] ConstMatrixView<T> at(int i, int k) const noexcept {
    return ConstMatrixView<T>(data_.data() + (size_t(i) * size_t(q_) + size_t(k)) * size_t(ib_) *
                                                 size_t(nb_),
                              ib_, nb_, ib_);
  }

 private:
  int q_ = 0, ib_ = 0, nb_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

/// Runs one DAG task's kernel on the tile storage (shared by TiledQr and the
/// benchmark driver). LQ task coordinates live in the reduction grid (the
/// transposed tile grid), so reduction tile (r, c) is A-layout tile (c, r);
/// the factorization updates adjoint their C tiles through scratch because
/// the wrapped QR update kernels run in the transposed world.
template <typename T>
void run_task_kernels(const dag::Task& t, TileMatrix<T>& a, TStore<T>& ts, TStore<T>& t2s,
                      int ib) {
  switch (t.kind) {
    case kernels::KernelKind::GEQRT:
      kernels::geqrt(ib, a.tile(t.i, t.k), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::UNMQR:
      kernels::unmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), ts.at(t.i, t.k),
                     a.tile(t.i, t.j));
      break;
    case kernels::KernelKind::TSQRT:
      kernels::tsqrt(ib, a.tile(t.piv, t.k), a.tile(t.i, t.k), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::TSMQR:
      kernels::tsmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), ts.at(t.i, t.k),
                     a.tile(t.piv, t.j), a.tile(t.i, t.j));
      break;
    case kernels::KernelKind::TTQRT:
      kernels::ttqrt(ib, a.tile(t.piv, t.k), a.tile(t.i, t.k), t2s.at(t.i, t.k));
      break;
    case kernels::KernelKind::TTMQR:
      kernels::ttmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), t2s.at(t.i, t.k),
                     a.tile(t.piv, t.j), a.tile(t.i, t.j));
      break;
    case kernels::KernelKind::GELQT:
      kernels::gelqt(ib, a.tile(t.k, t.i), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::UNMLQ: {
      kernels::detail::AdjointScratch<T> c(a.tile(t.j, t.i));
      kernels::unmlq(ApplyTrans::ConjTrans, ib, a.tile(t.k, t.i), ts.at(t.i, t.k), c.view());
      c.commit();
      break;
    }
    case kernels::KernelKind::TSLQT:
      kernels::tslqt(ib, a.tile(t.k, t.piv), a.tile(t.k, t.i), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::TSMLQ: {
      kernels::detail::AdjointScratch<T> c1(a.tile(t.j, t.piv));
      kernels::detail::AdjointScratch<T> c2(a.tile(t.j, t.i));
      kernels::tsmlq(ApplyTrans::ConjTrans, ib, a.tile(t.k, t.i), ts.at(t.i, t.k), c1.view(),
                     c2.view());
      c1.commit();
      c2.commit();
      break;
    }
    case kernels::KernelKind::TTLQT:
      kernels::ttlqt(ib, a.tile(t.k, t.piv), a.tile(t.k, t.i), t2s.at(t.i, t.k));
      break;
    case kernels::KernelKind::TTMLQ: {
      kernels::detail::AdjointScratch<T> c1(a.tile(t.j, t.piv));
      kernels::detail::AdjointScratch<T> c2(a.tile(t.j, t.i));
      kernels::ttmlq(ApplyTrans::ConjTrans, ib, a.tile(t.k, t.i), t2s.at(t.i, t.k), c1.view(),
                     c2.view());
      c1.commit();
      c2.commit();
      break;
    }
  }
}

/// Executes a planned task graph over tile storage on `threads` workers.
/// `keys`, when non-null, are precomputed scheduling keys (a cached plan's
/// `ranks`), saving the per-call rank sweep.
template <typename T>
void execute_graph(const dag::TaskGraph& g, TileMatrix<T>& a, TStore<T>& ts, TStore<T>& t2s,
                   int ib, int threads, const std::vector<long>* keys = nullptr) {
  runtime::execute(
      g, [&](std::int32_t idx) { run_task_kernels(g.tasks[size_t(idx)], a, ts, t2s, ib); },
      threads, runtime::SchedulePriority::CriticalPath, keys);
}

template <typename T>
class TiledQr {
 public:
  /// Factorizes a dense matrix (copied into tiled layout).
  [[nodiscard]] static TiledQr factorize(ConstMatrixView<T> a, const Options& opt) {
    return factorize(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Factorizes a tiled matrix in place (consumed). Plans come from the
  /// process-wide PlanCache: repeated shapes skip elimination-list
  /// generation and DAG construction entirely.
  [[nodiscard]] static TiledQr factorize(TileMatrix<T> a, Options opt) {
    TiledQr qr = prepare(std::move(a), opt);
    execute_graph(qr.plan_->graph, qr.a_, qr.t_, qr.t2_, qr.opt_.ib, qr.opt_.threads,
                  &qr.plan_->ranks);
    return qr;
  }

  /// The factored tiles: R in the upper triangle of the top q tile rows
  /// (QR), or L in the lower triangle of the left tile columns (LQ);
  /// reflector data elsewhere.
  [[nodiscard]] const TileMatrix<T>& factors() const noexcept { return a_; }
  [[nodiscard]] const Plan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  /// Which factorization this object holds: QR for m >= n, LQ for m < n.
  [[nodiscard]] kernels::FactorKind kind() const noexcept { return kind_; }

  /// The n x n upper-triangular R factor (QR factorizations only).
  [[nodiscard]] Matrix<T> r_factor() const {
    TILEDQR_CHECK(kind_ == kernels::FactorKind::QR, "r_factor: requires a QR factorization");
    const std::int64_t k = std::min(a_.m(), a_.n());
    Matrix<T> r(k, a_.n());
    for (std::int64_t j = 0; j < a_.n(); ++j)
      for (std::int64_t i = 0; i <= std::min<std::int64_t>(j, k - 1); ++i) r(i, j) = a_.at(i, j);
    return r;
  }

  /// The m x m lower-triangular L factor (LQ factorizations only). L = R̃^H
  /// of the dual QR, stored in A-layout in the lower triangle of the left
  /// tile columns.
  [[nodiscard]] Matrix<T> l_factor() const {
    TILEDQR_CHECK(kind_ == kernels::FactorKind::LQ, "l_factor: requires an LQ factorization");
    const std::int64_t k = std::min(a_.m(), a_.n());
    Matrix<T> l(a_.m(), k);
    for (std::int64_t i = 0; i < a_.m(); ++i)
      for (std::int64_t j = 0; j <= std::min<std::int64_t>(i, k - 1); ++j) l(i, j) = a_.at(i, j);
    return l;
  }

  /// Builds the op(Q)-application DAG for a conformal tiled matrix with
  /// `c_nt` tile columns: one task per (transformation-log op, C tile
  /// column), dependencies via last-writer tracking on C's tiles. The graph
  /// only references this factorization's log, so it can be submitted to any
  /// executor (QrSession submits it asynchronously to its own pool).
  [[nodiscard]] dag::TaskGraph build_apply_graph(ApplyTrans trans, int c_nt) const {
    // Transformation log in application order. For LQ factorizations C is a
    // transposed-world matrix (its rows live in A's column space), so the
    // row index of the apply grid is the reduction grid's row count.
    std::vector<const dag::Task*> ops;
    for (const auto& task : plan_->graph.tasks)
      switch (task.kind) {
        case kernels::KernelKind::GEQRT:
        case kernels::KernelKind::TSQRT:
        case kernels::KernelKind::TTQRT:
        case kernels::KernelKind::GELQT:
        case kernels::KernelKind::TSLQT:
        case kernels::KernelKind::TTLQT:
          ops.push_back(&task);
          break;
        default:
          break;
      }
    if (trans == ApplyTrans::NoTrans) std::reverse(ops.begin(), ops.end());

    dag::TaskGraph g;
    g.factor = plan_->graph.factor;
    g.p = reduction_p();
    g.q = c_nt;
    std::vector<std::int32_t> last(size_t(g.p) * size_t(c_nt), -1);
    auto touch = [&](int row, int jc, std::int32_t id) {
      auto& slot = last[size_t(row) * size_t(c_nt) + size_t(jc)];
      if (slot >= 0) {
        g.tasks[size_t(slot)].succ.push_back(id);
        ++g.tasks[size_t(id)].npred;
      }
      slot = id;
    };
    auto apply_kind = [](kernels::KernelKind k) {
      switch (k) {
        case kernels::KernelKind::GEQRT:
          return kernels::KernelKind::UNMQR;
        case kernels::KernelKind::TSQRT:
          return kernels::KernelKind::TSMQR;
        case kernels::KernelKind::TTQRT:
          return kernels::KernelKind::TTMQR;
        case kernels::KernelKind::GELQT:
          return kernels::KernelKind::UNMLQ;
        case kernels::KernelKind::TSLQT:
          return kernels::KernelKind::TSMLQ;
        default:
          return kernels::KernelKind::TTMLQ;
      }
    };
    for (const auto* op : ops) {
      for (int jc = 0; jc < c_nt; ++jc) {
        auto id = std::int32_t(g.tasks.size());
        g.tasks.push_back(dag::Task{apply_kind(op->kind), op->i, op->piv, op->k, jc, 0, {}});
        if (op->piv >= 0) touch(op->piv, jc, id);
        touch(op->i, jc, id);
      }
    }
    return g;
  }

  /// Runs one task of an apply graph built by build_apply_graph against C.
  /// LQ apply kernels adjoint the reflector tile internally, so C's tiles
  /// (transposed-world operands) pass straight through.
  void run_apply_task(const dag::Task& task, ApplyTrans trans, TileMatrix<T>& c) const {
    const int ib = opt_.ib;
    switch (task.kind) {
      case kernels::KernelKind::UNMQR:
        kernels::unmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                       c.tile(task.i, task.j));
        break;
      case kernels::KernelKind::TSMQR:
        kernels::tsmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
      case kernels::KernelKind::TTMQR:
        kernels::ttmqr(trans, ib, a_.tile(task.i, task.k), t2_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
      case kernels::KernelKind::UNMLQ:
        kernels::unmlq(trans, ib, a_.tile(task.k, task.i), t_.at(task.i, task.k),
                       c.tile(task.i, task.j));
        break;
      case kernels::KernelKind::TSMLQ:
        kernels::tsmlq(trans, ib, a_.tile(task.k, task.i), t_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
      default:
        kernels::ttmlq(trans, ib, a_.tile(task.k, task.i), t2_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
    }
  }

  /// Applies op(Q) to a tiled matrix with the same row tiling, building an
  /// application DAG over C's tiles and running it on `threads` workers
  /// (LAPACK xUNMQR's role, parallelized like the factorization itself).
  /// Results are bitwise identical to the sequential replay.
  void apply_q(ApplyTrans trans, TileMatrix<T>& c, int threads) const {
    TILEDQR_CHECK(c.mt() == reduction_p() && c.nb() == a_.nb(),
                  "apply_q: row tiling of C must match the factorization");
    if (threads <= 1) {
      apply_q(trans, c);
      return;
    }
    dag::TaskGraph g = build_apply_graph(trans, c.nt());
    runtime::execute(
        g, [&](std::int32_t id) { run_apply_task(g.tasks[size_t(id)], trans, c); }, threads);
  }

  /// Applies op(Q) to a tiled matrix with the same row tiling (any number of
  /// columns), replaying the transformation log sequentially. For an LQ
  /// factorization C is a transposed-world matrix (c.mt() == a_.nt()).
  void apply_q(ApplyTrans trans, TileMatrix<T>& c) const {
    TILEDQR_CHECK(c.mt() == reduction_p() && c.nb() == a_.nb(),
                  "apply_q: row tiling of C must match the factorization");
    const int ib = opt_.ib;
    auto apply_one = [&](const dag::Task& task) {
      switch (task.kind) {
        case kernels::KernelKind::GEQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::unmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                           c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TSQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::tsmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TTQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::ttmqr(trans, ib, a_.tile(task.i, task.k), t2_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        case kernels::KernelKind::GELQT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::unmlq(trans, ib, a_.tile(task.k, task.i), t_.at(task.i, task.k),
                           c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TSLQT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::tsmlq(trans, ib, a_.tile(task.k, task.i), t_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TTLQT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::ttmlq(trans, ib, a_.tile(task.k, task.i), t2_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        default:
          break;  // update kernels are not part of the log
      }
    };
    const auto& tasks = plan_->graph.tasks;
    if (trans == ApplyTrans::ConjTrans) {
      for (const auto& task : tasks) apply_one(task);
    } else {
      for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) apply_one(*it);
    }
  }

  /// Forms the thin Q factor explicitly: m x n with orthonormal columns for
  /// QR (m >= n), m x n with orthonormal rows for LQ (m < n).
  [[nodiscard]] Matrix<T> q_thin() const {
    if (kind_ == kernels::FactorKind::LQ) {
      // Thin Q̃ (n x m) of the dual QR, adjointed back: Q = Q̃^H.
      const std::int64_t m = a_.m();
      TileMatrix<T> c(a_.n(), m, a_.nb());
      for (std::int64_t i = 0; i < m; ++i)
        c.tile(int(i / a_.nb()), int(i / a_.nb()))(i % a_.nb(), i % a_.nb()) = T(1);
      apply_q(ApplyTrans::NoTrans, c, opt_.threads);
      Matrix<T> qt = c.to_dense();
      Matrix<T> q(m, a_.n());
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < a_.n(); ++j) q(i, j) = conj_if_complex(qt(j, i));
      return q;
    }
    TileMatrix<T> c(a_.m(), a_.n(), a_.nb());
    for (std::int64_t i = 0; i < a_.n(); ++i)
      c.tile(int(i / a_.nb()), int(i / a_.nb()))(i % a_.nb(), i % a_.nb()) = T(1);
    apply_q(ApplyTrans::NoTrans, c, opt_.threads);
    return c.to_dense();
  }

  /// The triangular-solve tail of least squares: given the tiled Qᵀb,
  /// extracts the top n rows and solves R x = (Qᵀb)[0:n, :]. Split out so
  /// QrSession's async pipeline can run it on a pool worker after the
  /// apply-Qᵀ DAG drains.
  [[nodiscard]] Matrix<T> finish_least_squares(const TileMatrix<T>& qtb_tiles) const {
    Matrix<T> qtb = qtb_tiles.to_dense();
    const std::int64_t n = a_.n();
    Matrix<T> x(n, qtb.cols());
    copy(ConstMatrixView<T>(qtb.sub(0, 0, n, qtb.cols())), x.view());
    Matrix<T> r = r_factor();
    blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit,
               T(1), r.sub(0, 0, n, n), x.view());
    return x;
  }

  /// The triangular head of the minimum-norm solve: y = L^{-1} b on the
  /// logical m x m triangle (the zero-padded tile triangle is singular, so
  /// the solve must use element dimensions), padded to length n and tiled in
  /// the transposed-world row tiling, ready for the apply-Q̃ DAG. Split out
  /// so the session's async pipeline can run the apply stage on the pool.
  [[nodiscard]] TileMatrix<T> start_minimum_norm(ConstMatrixView<T> b) const {
    const std::int64_t m = a_.m();
    Matrix<T> ypad(a_.n(), b.cols());
    copy(b, ypad.sub(0, 0, m, b.cols()));
    Matrix<T> l = l_factor();
    auto head = ypad.sub(0, 0, m, b.cols());
    blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Op::NoTrans, blas::Diag::NonUnit,
               T(1), l.sub(0, 0, m, m), head);
    return TileMatrix<T>::from_dense(ConstMatrixView<T>(ypad.view()), a_.nb());
  }

  /// Minimum-norm solution of the underdetermined system A x = b for wide A
  /// (m < n): y = L^{-1} b, x = Q^H y = Q̃ [y; 0]. b is m x nrhs.
  [[nodiscard]] Matrix<T> solve_minimum_norm(ConstMatrixView<T> b) const {
    TILEDQR_CHECK(kind_ == kernels::FactorKind::LQ,
                  "solve_minimum_norm: requires a wide (LQ) factorization");
    TILEDQR_CHECK(b.rows() == a_.m(), "solve_minimum_norm: rhs row mismatch");
    if (b.cols() == 0) return Matrix<T>(a_.n(), 0);
    TileMatrix<T> c = start_minimum_norm(b);
    apply_q(ApplyTrans::NoTrans, c, opt_.threads);
    return c.to_dense();
  }

  /// Least squares: min_x || A x - b ||_2 for tall A (m >= n), or the
  /// minimum-norm solution of A x = b for wide A (m < n); b is m x nrhs.
  /// nrhs == 0 is a valid degenerate system (the answer is n x 0).
  [[nodiscard]] Matrix<T> solve_least_squares(ConstMatrixView<T> b) const {
    if (kind_ == kernels::FactorKind::LQ) return solve_minimum_norm(b);
    TILEDQR_CHECK(b.rows() == a_.m(), "solve_least_squares: rhs row mismatch");
    if (b.cols() == 0) return Matrix<T>(a_.n(), 0);
    auto c = TileMatrix<T>::from_dense(b, a_.nb());
    apply_q(ApplyTrans::ConjTrans, c, opt_.threads);
    return finish_least_squares(c);
  }

  /// Solves the square system A x = b via QR (unconditionally stable, paper
  /// §1); b is n x nrhs.
  [[nodiscard]] Matrix<T> solve(ConstMatrixView<T> b) const {
    TILEDQR_CHECK(a_.m() == a_.n(), "solve: matrix must be square");
    return solve_least_squares(b);
  }

 private:
  friend class FactorSession;
  template <typename U>
  friend class FactorStream;

  /// Only prepare() and FactorSession build TiledQr objects: a default-
  /// constructed one would have a null plan_, so the constructor is not
  /// part of the public API.
  TiledQr() = default;

  /// Rows of the reduction grid — the tile grid the elimination tree runs
  /// on: (mt, nt) for QR, the transposed (nt, mt) for LQ. Always p >= q, so
  /// the tree generators never see a wide grid. This is also the row-tile
  /// count op(Q) application targets must match.
  [[nodiscard]] int reduction_p() const noexcept {
    return kind_ == kernels::FactorKind::LQ ? a_.nt() : a_.mt();
  }
  [[nodiscard]] int reduction_q() const noexcept {
    return kind_ == kernels::FactorKind::LQ ? a_.mt() : a_.nt();
  }

  /// Allocates storage and fetches the (possibly cached) plan without
  /// executing; factorize() and FactorSession's async path both start here.
  /// Routes on element shape: m < n factors by LQ on the transposed
  /// (reduction) grid, everything else by QR. A disengaged `opt.tree`
  /// resolves to the Greedy/TT default here (the session paths resolve it
  /// through the autotuner before calling); the stored options always carry
  /// the tree actually used.
  [[nodiscard]] static TiledQr prepare(TileMatrix<T> a, Options opt,
                                       PlanCache& cache = PlanCache::default_cache()) {
    TiledQr qr;
    TILEDQR_CHECK(opt.ib >= 1, "Options::ib must be >= 1");
    if (opt.threads <= 0) opt.threads = default_thread_count();
    if (!opt.tree) opt.tree = trees::TreeConfig{};
    qr.opt_ = opt;
    qr.a_ = std::move(a);
    qr.kind_ =
        qr.a_.m() < qr.a_.n() ? kernels::FactorKind::LQ : kernels::FactorKind::QR;
    const int rp = qr.reduction_p(), rq = qr.reduction_q();
    qr.plan_ = cache.get(rp, rq, *opt.tree, qr.kind_);
    qr.t_ = TStore<T>(rp, rq, opt.ib, qr.a_.nb());
    qr.t2_ = TStore<T>(rp, rq, opt.ib, qr.a_.nb());
    return qr;
  }

  Options opt_;
  TileMatrix<T> a_;
  kernels::FactorKind kind_ = kernels::FactorKind::QR;
  std::shared_ptr<const Plan> plan_;
  TStore<T> t_;
  TStore<T> t2_;
};

}  // namespace tiledqr::core
