// TiledQr<T>: the public entry point of the library.
//
//   auto qr = TiledQr<double>::factorize(a, options);   // A = Q R
//   Matrix<double> r = qr.r_factor();
//   Matrix<double> q = qr.q_thin();
//   Matrix<double> x = qr.solve_least_squares(b);       // min ||A x - b||
//
// The factorization runs the selected tiled algorithm (Greedy by default)
// through the dataflow runtime; the factored tiles retain the full
// transformation log (GEQRT reflectors below the diagonal, TT reflector
// tails above it, block factors in the T/T2 stores), so op(Q) can be applied
// to anything afterwards (LAPACK xORMQR-style).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include <memory>

#include "blas/blas.hpp"
#include "common/env.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "kernels/kernels.hpp"
#include "matrix/tile_matrix.hpp"
#include "runtime/executor.hpp"

namespace tiledqr::core {

using kernels::ApplyTrans;

/// Factorization options. `tree` left disengaged means "pick for me": the
/// QrSession batch/pipeline/stream paths route it through the tree autotuner
/// per shape, while the direct TiledQr paths (no tuner in scope) fall back
/// to the paper's recommended default, Greedy with TT kernels. An engaged
/// tree is always honored verbatim.
struct Options {
  std::optional<trees::TreeConfig> tree{};  ///< algorithm; nullopt = auto/Greedy
  int nb = 128;                             ///< tile size
  int ib = 32;                              ///< inner blocking of the kernels
  int threads = 0;  ///< worker threads; 0 = TILEDQR_THREADS or hw concurrency
};

/// Storage for the ib x nb block factors of every tile.
template <typename T>
class TStore {
 public:
  TStore() = default;
  TStore(int p, int q, int ib, int nb)
      : q_(q), ib_(ib), nb_(nb), data_(size_t(p) * size_t(q) * size_t(ib) * size_t(nb)) {}

  [[nodiscard]] MatrixView<T> at(int i, int k) noexcept {
    return MatrixView<T>(data_.data() + (size_t(i) * size_t(q_) + size_t(k)) * size_t(ib_) *
                                            size_t(nb_),
                         ib_, nb_, ib_);
  }
  [[nodiscard]] ConstMatrixView<T> at(int i, int k) const noexcept {
    return ConstMatrixView<T>(data_.data() + (size_t(i) * size_t(q_) + size_t(k)) * size_t(ib_) *
                                                 size_t(nb_),
                              ib_, nb_, ib_);
  }

 private:
  int q_ = 0, ib_ = 0, nb_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

/// Runs one DAG task's kernel on the tile storage (shared by TiledQr and the
/// benchmark driver).
template <typename T>
void run_task_kernels(const dag::Task& t, TileMatrix<T>& a, TStore<T>& ts, TStore<T>& t2s,
                      int ib) {
  switch (t.kind) {
    case kernels::KernelKind::GEQRT:
      kernels::geqrt(ib, a.tile(t.i, t.k), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::UNMQR:
      kernels::unmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), ts.at(t.i, t.k),
                     a.tile(t.i, t.j));
      break;
    case kernels::KernelKind::TSQRT:
      kernels::tsqrt(ib, a.tile(t.piv, t.k), a.tile(t.i, t.k), ts.at(t.i, t.k));
      break;
    case kernels::KernelKind::TSMQR:
      kernels::tsmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), ts.at(t.i, t.k),
                     a.tile(t.piv, t.j), a.tile(t.i, t.j));
      break;
    case kernels::KernelKind::TTQRT:
      kernels::ttqrt(ib, a.tile(t.piv, t.k), a.tile(t.i, t.k), t2s.at(t.i, t.k));
      break;
    case kernels::KernelKind::TTMQR:
      kernels::ttmqr(ApplyTrans::ConjTrans, ib, a.tile(t.i, t.k), t2s.at(t.i, t.k),
                     a.tile(t.piv, t.j), a.tile(t.i, t.j));
      break;
  }
}

/// Executes a planned task graph over tile storage on `threads` workers.
/// `keys`, when non-null, are precomputed scheduling keys (a cached plan's
/// `ranks`), saving the per-call rank sweep.
template <typename T>
void execute_graph(const dag::TaskGraph& g, TileMatrix<T>& a, TStore<T>& ts, TStore<T>& t2s,
                   int ib, int threads, const std::vector<long>* keys = nullptr) {
  runtime::execute(
      g, [&](std::int32_t idx) { run_task_kernels(g.tasks[size_t(idx)], a, ts, t2s, ib); },
      threads, runtime::SchedulePriority::CriticalPath, keys);
}

template <typename T>
class TiledQr {
 public:
  /// Factorizes a dense matrix (copied into tiled layout).
  [[nodiscard]] static TiledQr factorize(ConstMatrixView<T> a, const Options& opt) {
    return factorize(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Factorizes a tiled matrix in place (consumed). Plans come from the
  /// process-wide PlanCache: repeated shapes skip elimination-list
  /// generation and DAG construction entirely.
  [[nodiscard]] static TiledQr factorize(TileMatrix<T> a, Options opt) {
    TiledQr qr = prepare(std::move(a), opt);
    execute_graph(qr.plan_->graph, qr.a_, qr.t_, qr.t2_, qr.opt_.ib, qr.opt_.threads,
                  &qr.plan_->ranks);
    return qr;
  }

  /// The factored tiles: R in the upper triangle of the top q tile rows,
  /// reflector data elsewhere.
  [[nodiscard]] const TileMatrix<T>& factors() const noexcept { return a_; }
  [[nodiscard]] const Plan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  /// The n x n (m >= n) or m x n upper-triangular/trapezoidal R factor.
  [[nodiscard]] Matrix<T> r_factor() const {
    const std::int64_t k = std::min(a_.m(), a_.n());
    Matrix<T> r(k, a_.n());
    for (std::int64_t j = 0; j < a_.n(); ++j)
      for (std::int64_t i = 0; i <= std::min<std::int64_t>(j, k - 1); ++i) r(i, j) = a_.at(i, j);
    return r;
  }

  /// Builds the op(Q)-application DAG for a conformal tiled matrix with
  /// `c_nt` tile columns: one task per (transformation-log op, C tile
  /// column), dependencies via last-writer tracking on C's tiles. The graph
  /// only references this factorization's log, so it can be submitted to any
  /// executor (QrSession submits it asynchronously to its own pool).
  [[nodiscard]] dag::TaskGraph build_apply_graph(ApplyTrans trans, int c_nt) const {
    // Transformation log in application order.
    std::vector<const dag::Task*> ops;
    for (const auto& task : plan_->graph.tasks)
      if (task.kind == kernels::KernelKind::GEQRT || task.kind == kernels::KernelKind::TSQRT ||
          task.kind == kernels::KernelKind::TTQRT)
        ops.push_back(&task);
    if (trans == ApplyTrans::NoTrans) std::reverse(ops.begin(), ops.end());

    dag::TaskGraph g;
    g.p = a_.mt();
    g.q = c_nt;
    std::vector<std::int32_t> last(size_t(a_.mt()) * size_t(c_nt), -1);
    auto touch = [&](int row, int jc, std::int32_t id) {
      auto& slot = last[size_t(row) * size_t(c_nt) + size_t(jc)];
      if (slot >= 0) {
        g.tasks[size_t(slot)].succ.push_back(id);
        ++g.tasks[size_t(id)].npred;
      }
      slot = id;
    };
    for (const auto* op : ops) {
      for (int jc = 0; jc < c_nt; ++jc) {
        auto id = std::int32_t(g.tasks.size());
        kernels::KernelKind kind =
            op->kind == kernels::KernelKind::GEQRT   ? kernels::KernelKind::UNMQR
            : op->kind == kernels::KernelKind::TSQRT ? kernels::KernelKind::TSMQR
                                                     : kernels::KernelKind::TTMQR;
        g.tasks.push_back(dag::Task{kind, op->i, op->piv, op->k, jc, 0, {}});
        if (op->piv >= 0) touch(op->piv, jc, id);
        touch(op->i, jc, id);
      }
    }
    return g;
  }

  /// Runs one task of an apply graph built by build_apply_graph against C.
  void run_apply_task(const dag::Task& task, ApplyTrans trans, TileMatrix<T>& c) const {
    const int ib = opt_.ib;
    switch (task.kind) {
      case kernels::KernelKind::UNMQR:
        kernels::unmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                       c.tile(task.i, task.j));
        break;
      case kernels::KernelKind::TSMQR:
        kernels::tsmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
      default:
        kernels::ttmqr(trans, ib, a_.tile(task.i, task.k), t2_.at(task.i, task.k),
                       c.tile(task.piv, task.j), c.tile(task.i, task.j));
        break;
    }
  }

  /// Applies op(Q) to a tiled matrix with the same row tiling, building an
  /// application DAG over C's tiles and running it on `threads` workers
  /// (LAPACK xUNMQR's role, parallelized like the factorization itself).
  /// Results are bitwise identical to the sequential replay.
  void apply_q(ApplyTrans trans, TileMatrix<T>& c, int threads) const {
    TILEDQR_CHECK(c.mt() == a_.mt() && c.nb() == a_.nb(),
                  "apply_q: row tiling of C must match the factorization");
    if (threads <= 1) {
      apply_q(trans, c);
      return;
    }
    dag::TaskGraph g = build_apply_graph(trans, c.nt());
    runtime::execute(
        g, [&](std::int32_t id) { run_apply_task(g.tasks[size_t(id)], trans, c); }, threads);
  }

  /// Applies op(Q) to a tiled matrix with the same row tiling (any number of
  /// columns), replaying the transformation log sequentially.
  void apply_q(ApplyTrans trans, TileMatrix<T>& c) const {
    TILEDQR_CHECK(c.mt() == a_.mt() && c.nb() == a_.nb(),
                  "apply_q: row tiling of C must match the factorization");
    const int ib = opt_.ib;
    auto apply_one = [&](const dag::Task& task) {
      switch (task.kind) {
        case kernels::KernelKind::GEQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::unmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                           c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TSQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::tsmqr(trans, ib, a_.tile(task.i, task.k), t_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        case kernels::KernelKind::TTQRT:
          for (int jc = 0; jc < c.nt(); ++jc)
            kernels::ttmqr(trans, ib, a_.tile(task.i, task.k), t2_.at(task.i, task.k),
                           c.tile(task.piv, jc), c.tile(task.i, jc));
          break;
        default:
          break;  // update kernels are not part of the log
      }
    };
    const auto& tasks = plan_->graph.tasks;
    if (trans == ApplyTrans::ConjTrans) {
      for (const auto& task : tasks) apply_one(task);
    } else {
      for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) apply_one(*it);
    }
  }

  /// Forms the thin m x n Q factor explicitly (m >= n).
  [[nodiscard]] Matrix<T> q_thin() const {
    TILEDQR_CHECK(a_.m() >= a_.n(), "q_thin: requires m >= n");
    TileMatrix<T> c(a_.m(), a_.n(), a_.nb());
    for (std::int64_t i = 0; i < a_.n(); ++i)
      c.tile(int(i / a_.nb()), int(i / a_.nb()))(i % a_.nb(), i % a_.nb()) = T(1);
    apply_q(ApplyTrans::NoTrans, c, opt_.threads);
    return c.to_dense();
  }

  /// The triangular-solve tail of least squares: given the tiled Qᵀb,
  /// extracts the top n rows and solves R x = (Qᵀb)[0:n, :]. Split out so
  /// QrSession's async pipeline can run it on a pool worker after the
  /// apply-Qᵀ DAG drains.
  [[nodiscard]] Matrix<T> finish_least_squares(const TileMatrix<T>& qtb_tiles) const {
    Matrix<T> qtb = qtb_tiles.to_dense();
    const std::int64_t n = a_.n();
    Matrix<T> x(n, qtb.cols());
    copy(ConstMatrixView<T>(qtb.sub(0, 0, n, qtb.cols())), x.view());
    Matrix<T> r = r_factor();
    blas::trsm(blas::Side::Left, blas::Uplo::Upper, blas::Op::NoTrans, blas::Diag::NonUnit,
               T(1), r.sub(0, 0, n, n), x.view());
    return x;
  }

  /// Least squares: min_x || A x - b ||_2 for tall A (m >= n); b is m x nrhs.
  /// nrhs == 0 is a valid degenerate system (the answer is n x 0).
  [[nodiscard]] Matrix<T> solve_least_squares(ConstMatrixView<T> b) const {
    TILEDQR_CHECK(a_.m() >= a_.n(), "solve_least_squares: requires m >= n");
    TILEDQR_CHECK(b.rows() == a_.m(), "solve_least_squares: rhs row mismatch");
    if (b.cols() == 0) return Matrix<T>(a_.n(), 0);
    auto c = TileMatrix<T>::from_dense(b, a_.nb());
    apply_q(ApplyTrans::ConjTrans, c, opt_.threads);
    return finish_least_squares(c);
  }

  /// Solves the square system A x = b via QR (unconditionally stable, paper
  /// §1); b is n x nrhs.
  [[nodiscard]] Matrix<T> solve(ConstMatrixView<T> b) const {
    TILEDQR_CHECK(a_.m() == a_.n(), "solve: matrix must be square");
    return solve_least_squares(b);
  }

 private:
  friend class QrSession;
  template <typename U>
  friend class FactorStream;

  /// Only prepare() and QrSession build TiledQr objects: a default-
  /// constructed one would have a null plan_, so the constructor is not
  /// part of the public API.
  TiledQr() = default;

  /// Allocates storage and fetches the (possibly cached) plan without
  /// executing; factorize() and QrSession's async path both start here.
  /// A disengaged `opt.tree` resolves to the Greedy/TT default here (the
  /// session paths resolve it through the autotuner before calling); the
  /// stored options always carry the tree actually used.
  [[nodiscard]] static TiledQr prepare(TileMatrix<T> a, Options opt,
                                       PlanCache& cache = PlanCache::default_cache()) {
    TiledQr qr;
    TILEDQR_CHECK(opt.ib >= 1, "Options::ib must be >= 1");
    if (opt.threads <= 0) opt.threads = default_thread_count();
    if (!opt.tree) opt.tree = trees::TreeConfig{};
    qr.opt_ = opt;
    qr.a_ = std::move(a);
    qr.plan_ = cache.get(qr.a_.mt(), qr.a_.nt(), *opt.tree);
    qr.t_ = TStore<T>(qr.a_.mt(), qr.a_.nt(), opt.ib, qr.a_.nb());
    qr.t2_ = TStore<T>(qr.a_.mt(), qr.a_.nt(), opt.ib, qr.a_.nb());
    return qr;
  }

  Options opt_;
  TileMatrix<T> a_;
  std::shared_ptr<const Plan> plan_;
  TStore<T> t_;
  TStore<T> t2_;
};

}  // namespace tiledqr::core
