// FactorSession: the batched / asynchronous / streaming serving front end
// (QrSession remains as an alias from when the session was QR-only).
//
// A session owns a persistent worker pool and a plan cache and amortizes
// both across many factorizations — the "heavy traffic of repeated, often
// small, QRs" regime where spawn-per-call scheduling overhead dominates
// flops. Independent factorizations become DAG submissions on the shared
// pool; a *batch* is fused into one submission (see below) so the scheduler
// overlaps the tail of one factorization with the heads of the next.
//
// Every entry path routes on shape: tall/square inputs factor by QR, wide
// inputs (m < n) by LQ on the transposed (reduction) grid — same trees,
// same runtime, LQ kernels wrapping their QR duals. Solves follow suit:
// least squares for tall inputs, the minimum-norm solution for wide ones
// (L⁻¹b first, then the apply-Q̃ DAG — the stage order reverses).
//
//   core::FactorSession session;                   // pool + plan cache
//   auto fut = session.submit<double>(a.view(), opt);
//   ...                                            // overlap with other work
//   core::TiledQr<double> qr = fut.get();          // rethrows task errors
//
//   auto qrs = session.factorize_batch<double>(views, opt);  // 64 small QRs
//
//   auto x = session.solve_least_squares_async<double>(a.view(), b.view(), opt);
//   ...                                            // factorize → Qᵀb → trsm,
//   Matrix<double> sol = x.get();                  // all on the session pool
//
//   auto qr2 = session.factorize_auto<double>(a.view());  // no TreeConfig:
//   ...                       // the tree autotuner picks the paper-optimal
//   ...                       // algorithm for (shape, pool size)
//
//   auto stream = session.stream<double>();        // streaming fusion
//   auto f1 = stream.push(a1.view());              // futures immediately;
//   auto s2 = stream.push_solve(a2.view(), b2.view());  // pushes coalesce
//   stream.close();                                // into the live fused
//                                                  // submission (see below)
//
// Batch fusion: factorize_batch concatenates the per-matrix DAGs into one
// FusedPlan (cached per (shape, count) for homogeneous batches) and submits
// it once — one deal of the initial ready set, one scheduling-key vector
// (the concatenation of each plan's cached ranks, no rank sweep), one
// completion walk. Per-matrix completion is detected by per-subgraph
// sentinel counters: the last retiring task of each component fulfils that
// matrix's promise, so early matrices resolve while the rest of the batch
// is still running.
//
// Streaming fusion: a fixed batch still drains to one matrix's critical-path
// tail before the next batch starts. FactorStream removes the batch
// boundary: pushes return futures immediately and accumulate while the
// in-flight work drains; each flush grafts the accumulated requests — fused
// through the same FusedPlan machinery — onto the *live* pool submission
// (ThreadPool::Stream, generation-counted ready sets), so workers flow from
// the old generation's tail straight into the new generation's heads.
//
// Auto mode: wherever `Options::tree` is left disengaged, the batch,
// pipeline, and stream paths route the shape through the session's tree
// autotuner (choose_tree) — per input shape, memoized in the TuningTable —
// so serving traffic never hand-picks a TreeConfig. The plain submit()
// keeps the explicit-options contract (disengaged tree = the Greedy paper
// default); use submit_auto for tuned single factorizations.
//
// Results are bitwise identical to TiledQr<T>::factorize on the same input
// and tree: the same plan, the same kernels, and tasks that write disjoint
// regions.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stringf.hpp"
#include "common/timer.hpp"
#include "core/plan_cache.hpp"
#include "core/tiled_qr.hpp"
#include "obs/metrics.hpp"
#include "obs/schedule_report.hpp"
#include "runtime/thread_pool.hpp"
#include "tuner/tuner.hpp"

namespace tiledqr::core {

template <typename T>
class FactorStream;

class FactorSession {
 public:
  struct Config {
    /// Worker count of the session pool; 0 = TILEDQR_THREADS or hardware
    /// concurrency (the library-wide default rule).
    int threads = 0;
    /// Auto-mode tuning knobs (weight profile, stage-2 refinement, table
    /// persistence path); see tuner::TunerConfig.
    tuner::TunerConfig tuner{};
  };

  /// Auto-mode options: like Options but without a TreeConfig — the tuner
  /// supplies the algorithm, that is the point.
  struct AutoOptions {
    int nb = 128;     ///< tile size (dense inputs; pre-tiled inputs keep theirs)
    int ib = 32;      ///< inner blocking of the kernels
    int threads = 0;  ///< per-request worker cap; 0 = whole pool
  };

  /// What a push does when the stream already holds `max_queued` unresolved
  /// requests: Block parks the pushing thread on the stream's retirement
  /// condvar until a slot frees (bounded server memory, lossless); Reject
  /// resolves the returned future immediately with an Error (fast-fail, the
  /// caller sheds load).
  enum class StreamOverflow { Block, Reject };

  /// Per-stream options (see stream()). Pushes of any tile-grid shape are
  /// accepted; `tree` pins one algorithm for every push, disengaged routes
  /// each pushed shape through the autotuner. The QoS knobs below all
  /// default to the pre-QoS policy (unbounded admission, graft on idle, no
  /// deadline), so a default-constructed stream behaves — and schedules —
  /// exactly as before.
  struct StreamOptions {
    int nb = 128;          ///< tile size for dense pushes
    int ib = 32;           ///< inner blocking of the kernels
    int threads = 0;       ///< worker cap for the whole stream; 0 = whole pool
    int max_pending = 32;  ///< coalescing bound: a flush is forced at this depth
    std::optional<trees::TreeConfig> tree{};  ///< disengaged = autotune per shape
    /// Backpressure: bound on requests admitted but not yet resolved
    /// (pending + grafted + chained solve stages). 0 = unbounded. A request
    /// holds its slot from admission — before tiling, so a blocked or
    /// rejected push allocates nothing — until its future resolves.
    int max_queued = 0;
    StreamOverflow overflow = StreamOverflow::Block;  ///< policy at max_queued
    /// Watermark flush policy: graft the backlog whenever the number of
    /// in-flight grafts is <= this. 0 (default) grafts only when the stream
    /// runs dry; 1 keeps one graft queued behind the live one, so workers
    /// flow straight from the live graft's tail into the next one at the
    /// cost of shallower coalescing.
    int low_watermark = 0;
    /// > 0: cap on how long an uncorked request may sit in the coalescing
    /// backlog before it is grafted regardless of the watermark (a dedicated
    /// deadline thread is spawned for the stream's lifetime). 0 = no cap.
    /// Corked backlogs are exempt: cork() is an explicit promise.
    std::chrono::steady_clock::duration flush_deadline{0};
    /// Metrics name of the stream in the global registry: its counters and
    /// request-latency histogram export as "stream.<label>.*". Empty picks a
    /// unique "stream<N>" — set it when a process runs several streams whose
    /// stats a dashboard must tell apart (e.g. "bulk" vs "interactive").
    std::string label;
    /// Component-affinity hint (TILEDQR_AFFINE_STEAL): >= 0 pins every graft
    /// of this stream to the same home worker (modulo the stream's worker
    /// set) — use when a client's requests reuse the same tiles and should
    /// stay in one core's cache across grafts. The default -1 rotates homes
    /// per component, spreading load while each component still lands whole.
    int affinity_hint = -1;
  };

  FactorSession() : pool_(0) {}
  explicit FactorSession(Config config)
      : tuner_(std::move(config.tuner)), pool_(config.threads) {}

  FactorSession(const FactorSession&) = delete;
  FactorSession& operator=(const FactorSession&) = delete;

  /// Asynchronous factorization of a dense matrix (copied into tiled
  /// layout on the calling thread). The future resolves once every kernel
  /// has run; task exceptions surface through future::get().
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(ConstMatrixView<T> a, const Options& opt) {
    return submit(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Asynchronous factorization of a tiled matrix (consumed).
  /// `opt.threads > 0` caps how many pool workers this one factorization may
  /// occupy; 0 lets it spread over the whole pool. Caps above the pool size
  /// clamp to the pool, so 0, negative, and over-pool requests all mean
  /// "whole pool" — the invariant every session path shares.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(TileMatrix<T> a, Options opt) {
    struct Pending {
      TiledQr<T> qr;
      std::promise<TiledQr<T>> promise;
    };
    const int worker_cap = normalize_threads(opt);
    auto state = std::make_shared<Pending>();
    std::future<TiledQr<T>> future = state->promise.get_future();
    try {
      state->qr = TiledQr<T>::prepare(std::move(a), opt, cache_);
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    note_plan(state->qr.plan_);
    const dag::TaskGraph& graph = state->qr.plan_->graph;
    const int ib = state->qr.opt_.ib;
    pool_.submit(
        graph,
        [raw = state.get(), ib](std::int32_t idx) {
          TiledQr<T>& qr = raw->qr;
          run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, ib);
        },
        [state](std::exception_ptr error) {
          if (error)
            state->promise.set_exception(error);
          else
            state->promise.set_value(std::move(state->qr));
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, state, &state->qr.plan_->ranks);
    return future;
  }

  /// Asynchronous batched factorization: fuses the batch into ONE pool
  /// submission (see the header comment) and returns one future per input,
  /// in input order. Futures resolve independently as their component of the
  /// fused DAG drains. Inputs that fail to tile or plan resolve their future
  /// with the exception without poisoning the rest; a kernel failure at run
  /// time cancels the remainder of the fused submission, so completed
  /// matrices keep their values and unfinished ones observe the error.
  /// `opt.threads > 0` keeps its per-matrix meaning: the fused submission is
  /// capped to opt.threads x batch-size workers (clamped to the pool), the
  /// aggregate concurrency the same batch got as per-matrix submissions.
  /// A disengaged `opt.tree` is routed through the autotuner per input shape.
  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      std::span<const ConstMatrixView<T>> mats, const Options& opt) {
    return submit_batch_impl<T>(
        mats.size(),
        [&mats, nb = opt.nb](size_t i) { return TileMatrix<T>::from_dense(mats[i], nb); }, opt);
  }

  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      const std::vector<ConstMatrixView<T>>& mats, const Options& opt) {
    return submit_batch(std::span<const ConstMatrixView<T>>(mats), opt);
  }

  /// Pre-tiled flavor of submit_batch (inputs consumed) — the zero-copy path
  /// for servers that keep request matrices in tiled layout.
  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      std::vector<TileMatrix<T>> mats, const Options& opt) {
    return submit_batch_impl<T>(
        mats.size(), [&mats](size_t i) { return std::move(mats[i]); }, opt);
  }

  /// Blocking batched factorization (one fused DAG; see submit_batch).
  /// Results are in input order. After every component has drained the first
  /// exception is rethrown; when several inputs failed, the rethrown Error
  /// carries the first failure's message plus how many siblings also failed,
  /// so multi-failure batches are diagnosable from one what().
  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(std::span<const ConstMatrixView<T>> mats,
                                                        const Options& opt) {
    return collect_batch(submit_batch(mats, opt));
  }

  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(
      const std::vector<ConstMatrixView<T>>& mats, const Options& opt) {
    return factorize_batch(std::span<const ConstMatrixView<T>>(mats), opt);
  }

  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(std::vector<TileMatrix<T>> mats,
                                                        const Options& opt) {
    return collect_batch(submit_batch(std::move(mats), opt));
  }

  /// Opens a streaming submission on the session pool: a FactorStream whose
  /// push()/push_solve() return futures immediately and coalesce into the
  /// live fused submission (see the header comment). The stream must not
  /// outlive the session. `opt.threads` caps the pool workers the whole
  /// stream may occupy (same clamping rule as everywhere).
  template <typename T>
  [[nodiscard]] FactorStream<T> stream(StreamOptions opt = {});

  /// Applies op(Q) of a finished factorization to tiled C, asynchronously on
  /// the session pool (no spawn path, no blocking). `qr` is borrowed and
  /// must stay alive until the future resolves; C is consumed and handed
  /// back through the future. Results are bitwise identical to
  /// qr.apply_q(trans, c, ...) on the same input.
  template <typename T>
  [[nodiscard]] std::future<TileMatrix<T>> apply_q_async(const TiledQr<T>& qr, ApplyTrans trans,
                                                         TileMatrix<T> c) {
    struct Apply {
      dag::TaskGraph graph;
      TileMatrix<T> c;
      std::promise<TileMatrix<T>> promise;
    };
    auto state = std::make_shared<Apply>();
    std::future<TileMatrix<T>> future = state->promise.get_future();
    try {
      TILEDQR_CHECK(c.mt() == qr.reduction_p() && c.nb() == qr.a_.nb(),
                    "apply_q_async: row tiling of C must match the factorization");
      state->c = std::move(c);
      state->graph = qr.build_apply_graph(trans, state->c.nt());
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    pool_.submit(
        state->graph,
        [raw = state.get(), &qr, trans](std::int32_t id) {
          qr.run_apply_task(raw->graph.tasks[size_t(id)], trans, raw->c);
        },
        [state](std::exception_ptr error) {
          if (error)
            state->promise.set_exception(error);
          else
            state->promise.set_value(std::move(state->c));
        },
        runtime::SchedulePriority::CriticalPath, 0, state);
    return future;
  }

  /// The factorization is borrowed until the future resolves — a temporary
  /// would dangle under the in-flight tasks, so rvalues are rejected.
  template <typename T>
  std::future<TileMatrix<T>> apply_q_async(TiledQr<T>&&, ApplyTrans, TileMatrix<T>) = delete;

  /// Solve against a finished factorization. QR (m >= n): computes Qᵀb on
  /// the pool, then the triangular solve on the worker that retires the
  /// apply DAG. LQ (m < n): the stage order reverses — the L⁻¹b head runs
  /// here on the calling thread (it is a small triangular solve), then the
  /// apply-Q̃ DAG on the pool produces the minimum-norm solution directly.
  /// `qr` is borrowed and must stay alive until the future resolves.
  template <typename T>
  [[nodiscard]] std::future<Matrix<T>> solve_least_squares_async(const TiledQr<T>& qr,
                                                                 ConstMatrixView<T> b) {
    struct Solve {
      dag::TaskGraph graph;
      TileMatrix<T> c;
      std::promise<Matrix<T>> promise;
    };
    auto state = std::make_shared<Solve>();
    std::future<Matrix<T>> future = state->promise.get_future();
    const bool lq = qr.kind() == kernels::FactorKind::LQ;
    const ApplyTrans trans = lq ? ApplyTrans::NoTrans : ApplyTrans::ConjTrans;
    try {
      TILEDQR_CHECK(b.rows() == qr.a_.m(), "solve_least_squares_async: rhs row mismatch");
      if (b.cols() == 0) {
        state->promise.set_value(Matrix<T>(qr.a_.n(), 0));
        return future;
      }
      state->c = lq ? qr.start_minimum_norm(b) : TileMatrix<T>::from_dense(b, qr.a_.nb());
      state->graph = qr.build_apply_graph(trans, state->c.nt());
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    pool_.submit(
        state->graph,
        [raw = state.get(), &qr, trans](std::int32_t id) {
          qr.run_apply_task(raw->graph.tasks[size_t(id)], trans, raw->c);
        },
        [state, &qr, lq](std::exception_ptr error) {
          if (error) {
            state->promise.set_exception(error);
            return;
          }
          try {
            state->promise.set_value(lq ? state->c.to_dense()
                                        : qr.finish_least_squares(state->c));
          } catch (...) {
            state->promise.set_exception(std::current_exception());
          }
        },
        runtime::SchedulePriority::CriticalPath, 0, state);
    return future;
  }

  template <typename T>
  std::future<Matrix<T>> solve_least_squares_async(TiledQr<T>&&, ConstMatrixView<T>) = delete;

  /// The full solve pipeline, end-to-end on the session pool. QR (m >= n):
  /// factorize A, apply Qᵀ to b, triangular-solve R x = (Qᵀb)[0:n]. LQ
  /// (m < n): factorize A, triangular-solve L y = b, apply Q̃ to [y; 0] —
  /// the minimum-norm solution; the stage order reverses, so the trsm runs
  /// on the worker that retires the factorization and the apply DAG is the
  /// final stage. Chained stages with no spawn-path fallback and no
  /// intermediate blocking (each stage is submitted by the worker that
  /// retires the previous one). `opt.threads > 0` caps the pool workers the
  /// pipeline may occupy; a disengaged `opt.tree` is routed through the
  /// autotuner for A's reduction-grid shape.
  template <typename T>
  [[nodiscard]] std::future<Matrix<T>> solve_least_squares_async(ConstMatrixView<T> a,
                                                                 ConstMatrixView<T> b,
                                                                 Options opt) {
    struct Pipeline {
      TiledQr<T> qr;
      TileMatrix<T> c;   ///< QR: b tiles -> Qᵀb; LQ: padded L⁻¹b -> Q̃[y;0]
      Matrix<T> b;       ///< LQ only: dense rhs, tiled after the trsm head
      dag::TaskGraph apply_graph;
      std::promise<Matrix<T>> promise;
    };
    const int worker_cap = normalize_threads(opt);
    auto state = std::make_shared<Pipeline>();
    std::future<Matrix<T>> future = state->promise.get_future();
    bool lq = false;
    try {
      TILEDQR_CHECK(b.rows() == a.rows(), "solve_least_squares_async: rhs row mismatch");
      auto tiles = TileMatrix<T>::from_dense(a, opt.nb);
      lq = tiles.m() < tiles.n();
      if (!opt.tree) opt.tree = choose_tree_for(tiles, worker_cap);
      state->qr = TiledQr<T>::prepare(std::move(tiles), opt, cache_);
      if (b.cols() > 0) {
        if (lq) {
          state->b = Matrix<T>(b.rows(), b.cols());
          copy(b, state->b.view());
        } else {
          state->c = TileMatrix<T>::from_dense(b, opt.nb);
        }
      }
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    note_plan(state->qr.plan_);
    runtime::ThreadPool* pool = &pool_;
    const ApplyTrans trans = lq ? ApplyTrans::NoTrans : ApplyTrans::ConjTrans;
    pool_.submit(
        state->qr.plan_->graph,
        [raw = state.get(), ib = opt.ib](std::int32_t idx) {
          TiledQr<T>& qr = raw->qr;
          run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, ib);
        },
        [state, pool, worker_cap, lq, trans](std::exception_ptr error) {
          if (error) {
            state->promise.set_exception(error);
            return;
          }
          try {
            const bool empty_rhs = lq ? state->b.cols() == 0 : state->c.n() == 0;
            if (empty_rhs) {  // zero-column rhs: answer is n x 0
              state->promise.set_value(Matrix<T>(state->qr.a_.n(), 0));
              return;
            }
            if (lq)
              state->c =
                  state->qr.start_minimum_norm(ConstMatrixView<T>(state->b.view()));
            state->apply_graph = state->qr.build_apply_graph(trans, state->c.nt());
          } catch (...) {
            state->promise.set_exception(std::current_exception());
            return;
          }
          pool->submit(
              state->apply_graph,
              [raw = state.get(), trans](std::int32_t id) {
                raw->qr.run_apply_task(raw->apply_graph.tasks[size_t(id)], trans, raw->c);
              },
              [state, lq](std::exception_ptr apply_error) {
                if (apply_error) {
                  state->promise.set_exception(apply_error);
                  return;
                }
                try {
                  state->promise.set_value(lq ? state->c.to_dense()
                                              : state->qr.finish_least_squares(state->c));
                } catch (...) {
                  state->promise.set_exception(std::current_exception());
                }
              },
              runtime::SchedulePriority::CriticalPath, worker_cap, state);
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, state, &state->qr.plan_->ranks);
    return future;
  }

  // ------------------------------------------------------------- auto mode --
  // The tuner-driven entry points: the caller supplies no TreeConfig; the
  // session picks the paper-optimal tree for (tile-grid shape, pool size)
  // via its Tuner (model ranking + optional on-pool refinement, memoized in
  // a TuningTable, TILEDQR_TREE env override honored). Results are bitwise
  // identical to submitting the chosen config explicitly — auto mode only
  // decides, the execution path is the same submit().

  /// Asynchronous auto-tuned factorization of a dense matrix. Invalid
  /// AutoOptions (nb/ib < 1) throw a descriptive Error up front — they can
  /// never reach the tile-layout conversion.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit_auto(ConstMatrixView<T> a,
                                                    const AutoOptions& opt = {}) {
    validate_auto_options(opt);
    return submit_auto(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Asynchronous auto-tuned factorization of a tiled matrix (consumed);
  /// `opt.nb` is ignored in favor of the input's own tiling. The tuner sees
  /// the workers this request may actually occupy (`opt.threads` capped to
  /// the pool), so capped requests get the tree that is best at *their*
  /// concurrency, not the whole pool's.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit_auto(TileMatrix<T> a, const AutoOptions& opt = {}) {
    validate_auto_options(opt);
    Options full;
    full.tree = choose_tree_for(a, opt.threads);
    full.nb = a.nb();
    full.ib = opt.ib;
    full.threads = opt.threads;
    return submit(std::move(a), full);
  }

  /// Blocking auto-tuned factorization.
  template <typename T>
  [[nodiscard]] TiledQr<T> factorize_auto(ConstMatrixView<T> a, const AutoOptions& opt = {}) {
    return submit_auto(a, opt).get();
  }

  template <typename T>
  [[nodiscard]] TiledQr<T> factorize_auto(TileMatrix<T> a, const AutoOptions& opt = {}) {
    return submit_auto(std::move(a), opt).get();
  }

  /// The full tuning decision for a p x q tile grid on this session's pool
  /// (env override > tuning table > model + refinement): the chosen config
  /// plus how it was reached (forced / refined / model makespan).
  /// `worker_cap > 0` tunes for a request confined to that many workers
  /// (the AutoOptions::threads semantics); 0 tunes for the whole pool.
  [[nodiscard]] tuner::TunedDecision decide_tree(int p, int q, int worker_cap = 0,
                                                 kernels::FactorKind factor =
                                                     kernels::FactorKind::QR) {
    int workers = worker_cap > 0 ? std::min(worker_cap, pool_.size()) : pool_.size();
    return tuner_.decide(p, q, workers, cache_, &pool_, factor);
  }

  /// Just the chosen TreeConfig — useful to pin the auto decision into an
  /// explicit Options (e.g. for the async pipelines). (p, q) is the
  /// reduction grid the elimination tree runs on — wide inputs pass the
  /// transposed grid (see choose_tree_for).
  [[nodiscard]] trees::TreeConfig choose_tree(int p, int q, int worker_cap = 0,
                                              kernels::FactorKind factor =
                                                  kernels::FactorKind::QR) {
    return decide_tree(p, q, worker_cap, factor).config;
  }

  /// Shape-routed choose_tree: wide inputs (m < n) tune on the transposed
  /// (reduction) grid under their LQ key, everything else on the grid as-is
  /// — the same routing prepare() applies, so the tuner always sees p >= q.
  template <typename T>
  [[nodiscard]] trees::TreeConfig choose_tree_for(const TileMatrix<T>& tiles,
                                                  int worker_cap = 0) {
    return tiles.m() < tiles.n()
               ? choose_tree(tiles.nt(), tiles.mt(), worker_cap, kernels::FactorKind::LQ)
               : choose_tree(tiles.mt(), tiles.nt(), worker_cap);
  }

  [[nodiscard]] tuner::Tuner& tree_tuner() noexcept { return tuner_; }
  [[nodiscard]] tuner::TuningTable::Stats tuning_stats() const { return tuner_.stats(); }

  [[nodiscard]] runtime::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] PlanCache& plan_cache() noexcept { return cache_; }
  [[nodiscard]] PlanCache::Stats plan_cache_stats() const { return cache_.stats(); }
  [[nodiscard]] runtime::ThreadPool::Stats pool_stats() const noexcept { return pool_.stats(); }

  /// One-call live snapshot for servers (the HealthMonitor's report
  /// callback, also useful directly): the global registry metrics plus —
  /// when tracing is on — the schedule report over the current trace
  /// window, including the realized-critical-path breakdown joined against
  /// the DAG of the most recently planned factorization. Safe from any
  /// thread; reads only snapshots, never disturbs in-flight work.
  [[nodiscard]] std::string health_report() const {
    std::string out = obs::MetricsRegistry::global().snapshot().to_text();
    const auto& tracer = obs::Tracer::instance();
    if (tracer.enabled()) {
      std::shared_ptr<const Plan> plan;
      {
        std::lock_guard<std::mutex> lock(last_plan_mu_);
        plan = last_plan_;
      }
      const obs::ScheduleReport report =
          plan ? obs::build_schedule_report(tracer, plan->graph, pool_.size())
               : obs::build_schedule_report(tracer);
      out += obs::format_schedule_report(report);
    }
    return out;
  }

 private:
  template <typename U>
  friend class FactorStream;

  /// Remembers the most recently prepared plan so health_report() can join
  /// the live trace against a real DAG. A shared_ptr copy: plans are
  /// immutable and cache-owned, so this pins at most one plan's memory.
  void note_plan(const std::shared_ptr<const Plan>& plan) {
    std::lock_guard<std::mutex> lock(last_plan_mu_);
    last_plan_ = plan;
  }

  /// The one cap rule: <= 0 (and anything above the pool) means "whole
  /// pool"; in-range caps pass through. Returned as a ThreadPool max_workers
  /// argument (0 = uncapped).
  [[nodiscard]] int clamp_cap(int requested) const noexcept {
    return requested <= 0 ? 0 : std::min(requested, pool_.size());
  }

  /// Applies the cap rule to `opt.threads` in place (so the stored
  /// per-factorization thread count never exceeds the pool — a 0 cap and an
  /// over-pool cap leave identical state everywhere) and returns the
  /// ThreadPool worker cap.
  [[nodiscard]] int normalize_threads(Options& opt) const noexcept {
    const int cap = clamp_cap(opt.threads);
    opt.threads = cap == 0 ? pool_.size() : cap;
    return cap;
  }

  static void validate_auto_options(const AutoOptions& opt) {
    TILEDQR_CHECK(opt.nb >= 1, stringf("AutoOptions::nb must be >= 1 (got %d)", opt.nb));
    TILEDQR_CHECK(opt.ib >= 1, stringf("AutoOptions::ib must be >= 1 (got %d)", opt.ib));
  }

  /// One matrix of a fused batch: its prepared factorization, its promise,
  /// and the per-subgraph sentinel counter that detects component completion
  /// inside the fused submission.
  template <typename T>
  struct BatchPart {
    explicit BatchPart(TiledQr<T> q) : qr(std::move(q)) {}
    TiledQr<T> qr;
    std::promise<TiledQr<T>> promise;
    std::atomic<std::int32_t> remaining{0};
  };

  /// Shared state of one fused batch submission (held alive by the pool's
  /// keepalive until the completion callback has run).
  template <typename T>
  struct BatchState {
    std::deque<BatchPart<T>> parts;           // successfully prepared inputs
    FusedPlan owned;                          // heterogeneous batches
    std::shared_ptr<const FusedPlan> cached;  // homogeneous batches
    const FusedPlan* fused = nullptr;
    int ib = 0;
  };

  /// Shared prepare loop of the submit_batch flavors: `make_tiles(i)` yields
  /// the i-th input's TileMatrix (converting or moving). An input whose
  /// tiling/planning throws gets a pre-failed future; the rest proceed. A
  /// disengaged tree resolves through the autotuner per input shape (at the
  /// per-matrix worker cap — the concurrency each matrix actually gets).
  template <typename T, typename MakeTiles>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch_impl(size_t count,
                                                                       MakeTiles&& make_tiles,
                                                                       Options opt) {
    const int worker_cap = normalize_threads(opt);
    std::vector<std::future<TiledQr<T>>> futures;
    futures.reserve(count);
    auto batch = std::make_shared<BatchState<T>>();
    batch->ib = opt.ib;
    for (size_t i = 0; i < count; ++i) {
      try {
        TileMatrix<T> tiles = make_tiles(i);
        Options per = opt;
        if (!per.tree) per.tree = choose_tree_for(tiles, worker_cap);
        batch->parts.emplace_back(TiledQr<T>::prepare(std::move(tiles), per, cache_));
        note_plan(batch->parts.back().qr.plan_);
        futures.push_back(batch->parts.back().promise.get_future());
      } catch (...) {
        std::promise<TiledQr<T>> failed;
        futures.push_back(failed.get_future());
        failed.set_exception(std::current_exception());
      }
    }
    launch_batch(std::move(batch), worker_cap);
    return futures;
  }

  /// Fuses the prepared parts into one pool submission. The per-part
  /// promises are fulfilled by per-subgraph sentinel counters as each
  /// component drains; the single completion callback only mops up after a
  /// cancelled (failed) submission.
  template <typename T>
  void launch_batch(std::shared_ptr<BatchState<T>> batch, int worker_cap) {
    if (batch->parts.empty()) return;

    if (batch->parts.size() == 1) {
      // Nothing to fuse: submit the lone component directly (and skip
      // caching a redundant single-part fusion).
      BatchPart<T>& part = batch->parts.front();
      pool_.submit(
          part.qr.plan_->graph,
          [raw = batch.get()](std::int32_t idx) {
            TiledQr<T>& qr = raw->parts.front().qr;
            run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, raw->ib);
          },
          [batch](std::exception_ptr error) {
            BatchPart<T>& p = batch->parts.front();
            if (error)
              p.promise.set_exception(error);
            else
              p.promise.set_value(std::move(p.qr));
          },
          runtime::SchedulePriority::CriticalPath, worker_cap, batch, &part.qr.plan_->ranks);
      return;
    }

    // One fused graph for the whole batch. Homogeneous batches (the common
    // serving shape) reuse a cached fusion; mixed shapes fuse ad hoc.
    const Plan* front_plan = batch->parts.front().qr.plan_.get();
    bool homogeneous = true;
    for (const auto& part : batch->parts)
      if (part.qr.plan_.get() != front_plan) {
        homogeneous = false;
        break;
      }
    if (homogeneous) {
      // Every part shares the front plan, so the front part's (normalized)
      // tree is the fused-cache key for all of them.
      batch->cached = cache_.get_fused(front_plan->graph.p, front_plan->graph.q,
                                       *batch->parts.front().qr.options().tree,
                                       int(batch->parts.size()), front_plan->graph.factor);
      batch->fused = batch->cached.get();
    } else {
      std::vector<std::shared_ptr<const Plan>> plans;
      plans.reserve(batch->parts.size());
      for (const auto& part : batch->parts) plans.push_back(part.qr.plan_);
      batch->owned = make_fused_plan(plans);
      batch->fused = &batch->owned;
    }
    for (size_t i = 0; i < batch->parts.size(); ++i)
      batch->parts[i].remaining.store(batch->fused->part_size(int(i)),
                                      std::memory_order_relaxed);

    // A per-submission cap applies to the whole fused graph, so scale the
    // caller's per-matrix cap by the batch size to preserve the aggregate
    // concurrency per-matrix submissions had (0 stays "whole pool"; the cap
    // arrives pre-clamped, so the product cannot overflow).
    if (worker_cap > 0)
      worker_cap = int(std::min<long>(long(pool_.size()),
                                      long(worker_cap) * long(batch->parts.size())));

    pool_.submit(
        batch->fused->component_graph(),
        [raw = batch.get()](std::int32_t idx) {
          const FusedPlan& fused = *raw->fused;
          BatchPart<T>& part = raw->parts[size_t(fused.part_of(idx))];
          TiledQr<T>& qr = part.qr;
          run_task_kernels(fused.task(idx), qr.a_, qr.t_, qr.t2_, raw->ib);
          // Per-subgraph sentinel: the last retiring task of this component
          // fulfils its matrix's promise (acq_rel pairs with the other
          // workers' decrements, so their tile writes are visible before the
          // TiledQr is moved out).
          if (part.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            part.promise.set_value(std::move(part.qr));
        },
        [batch](std::exception_ptr error) {
          // Only reachable with unfinished parts when a task threw (the pool
          // then cancels the rest of the submission).
          for (auto& part : batch->parts)
            if (part.remaining.load(std::memory_order_acquire) != 0)
              part.promise.set_exception(
                  error ? error
                        : std::make_exception_ptr(Error("factorize_batch: cancelled")));
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, batch,
        &batch->fused->component_ranks(), batch->fused->copies());
  }

  /// Drains a submit_batch future set, preserving order. A single failure is
  /// rethrown verbatim; multiple failures rethrow an Error carrying the
  /// first failure's message and the count of failed siblings.
  template <typename T>
  [[nodiscard]] static std::vector<TiledQr<T>> collect_batch(
      std::vector<std::future<TiledQr<T>>> futures) {
    std::vector<TiledQr<T>> out;
    out.reserve(futures.size());
    std::exception_ptr first_error;
    std::string first_message;
    size_t failed = 0;
    for (auto& f : futures) {
      try {
        out.push_back(f.get());
      } catch (const std::exception& e) {
        if (!first_error) {
          first_error = std::current_exception();
          first_message = e.what();
        }
        ++failed;
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
          first_message = "unknown error";
        }
        ++failed;
      }
    }
    if (failed > 1)
      throw Error(stringf("%s [batch: %zu of %zu inputs failed; first error shown]",
                          first_message.c_str(), failed, futures.size()));
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

  // Declaration order matters: the pool's destructor drains in-flight
  // submissions, which still reference cached plans — so the cache must
  // outlive the pool (destroyed after it). The tuner sits between them: its
  // refinement runs on the pool, so it too must outlive the pool.
  PlanCache cache_;
  tuner::Tuner tuner_;
  runtime::ThreadPool pool_;

  /// Most recently prepared plan (any entry path), for health_report()'s
  /// trace join; guarded by its own mutex so snapshots never contend with
  /// the scheduling paths beyond this one pointer copy.
  mutable std::mutex last_plan_mu_;
  std::shared_ptr<const Plan> last_plan_;
};

/// Historical name from when the session was QR-only; existing call sites
/// keep compiling unchanged.
using QrSession = FactorSession;

// ------------------------------------------------------------ FactorStream --

/// Streaming fusion handle (FactorSession::stream). push()/push_solve() return
/// futures immediately; requests accumulate while the stream's in-flight
/// work drains and every flush grafts them — coalesced into one fused
/// component per plan via the session PlanCache's FusedPlan machinery — onto
/// the live pool submission. The amount of fusion adapts to the arrival
/// rate: an idle stream grafts a push immediately (latency), a busy stream
/// coalesces everything that arrived while it was busy (throughput).
///
///   auto stream = session.stream<double>();
///   auto f = stream.push(a.view());        // future resolves independently
///   auto x = stream.push_solve(a2.view(), b.view());  // factor → Qᵀb → trsm,
///                                          // chained into the same stream
///   stream.cork();                         // defer flushing…
///   for (auto& m : burst) futures.push_back(stream.push(m.view()));
///   stream.uncork();                       // …one fused graft for the burst
///   stream.close();                        // drain everything, then seal
///
/// Thread-safe: any number of client threads may push/cork/flush
/// concurrently. A request whose preparation fails resolves its own future
/// with the exception; a kernel failure cancels only the component (graft)
/// it rode in on — other grafts keep running. The stream must be closed (or
/// destroyed — the destructor closes) before its FactorSession dies, and close()
/// must not be called from a pool task body.
///
/// Serving QoS (StreamOptions): `max_queued` + `overflow` bound the
/// unresolved requests a stream may hold (Block parks the pusher on the
/// retirement condvar, Reject fails the future immediately);
/// `low_watermark` grafts the backlog before the stream runs dry (keep one
/// graft queued behind the live one); `flush_deadline` caps how long an
/// uncorked request may wait in the coalescing backlog. drain() respects a
/// concurrent cork: it never claims a corked backlog (that burst belongs to
/// the corking client's single fused graft) and parks on the condvar until
/// the corker uncorks — so a thread that corks, pushes, and drains without
/// uncorking first deadlocks itself, as does a corked Block-overflow pusher
/// with no uncorking peer. All QoS defaults reproduce the pre-QoS policy.
template <typename T>
class FactorStream {
 public:
  struct Stats {
    long pushed = 0;      ///< requests accepted (push + push_solve)
    long components = 0;  ///< grafts appended to the live submission
    long fused_requests = 0;  ///< requests that rode a multi-request graft
    long pending = 0;     ///< requests accumulated, not yet grafted
    long unresolved = 0;  ///< admitted requests whose future hasn't resolved
    long peak_unresolved = 0;  ///< high-water mark of `unresolved` — with a
                               ///< Block overflow this never exceeds max_queued
    long rejected = 0;         ///< pushes refused by the Reject overflow policy
    long deadline_flushes = 0;  ///< backlog grafts forced by flush_deadline
    long empty_flushes = 0;     ///< backlog claims that found nothing queued
                                ///< (a spinning drain would grow this; bounded)
  };

  FactorStream() = default;  ///< empty handle
  FactorStream(FactorStream&&) noexcept = default;
  /// Move-assign closes the overwritten stream first (re-opening a stream
  /// in place is normal server code); a defaulted move would orphan its
  /// shared state with no handle left to ever close it — leaking the
  /// deadline thread, the pool submission, and the live-stream gauge slot.
  FactorStream& operator=(FactorStream&& other) noexcept {
    if (this != &other) {
      if (state_) {
        try {
          close();
        } catch (...) {
          // Same contract as the destructor: close() errors are only
          // re-close races, never worth tearing down the process.
        }
      }
      state_ = std::move(other.state_);
    }
    return *this;
  }
  FactorStream(const FactorStream&) = delete;
  FactorStream& operator=(const FactorStream&) = delete;

  ~FactorStream() {
    if (!state_) return;
    try {
      close();
    } catch (...) {
      // Destructor must not throw; close() errors are only re-close races.
    }
  }

  /// Factorize a dense matrix (copied into tiled layout here, on the
  /// calling thread). Returns a future that resolves when this request's
  /// component of the live submission drains. An input that fails to tile or
  /// plan resolves its future with the exception (pushing on a closed stream
  /// still throws — that is a caller bug, not a request failure). A stream
  /// at its max_queued bound blocks here or fails the future, per
  /// StreamOptions::overflow; admission happens before tiling, so a blocked
  /// or rejected push allocates nothing.
  [[nodiscard]] std::future<TiledQr<T>> push(ConstMatrixView<T> a) {
    TILEDQR_CHECK(valid(), "FactorStream::push: moved-from or empty stream handle");
    auto req = std::make_shared<Request>();
    std::future<TiledQr<T>> future = req->promise.get_future();
    if (std::exception_ptr rejected = admit()) {
      req->promise.set_exception(std::move(rejected));
      return future;
    }
    req->admit_ns = obs::now_ns();
    try {
      req->qr = prepare(TileMatrix<T>::from_dense(a, state_->opts.nb));
    } catch (...) {
      fail_request(state_, *req, std::current_exception());
      return future;
    }
    enqueue(std::move(req));
    return future;
  }

  /// Pre-tiled flavor (consumed); the input keeps its own tile size.
  [[nodiscard]] std::future<TiledQr<T>> push(TileMatrix<T> a) {
    TILEDQR_CHECK(valid(), "FactorStream::push: moved-from or empty stream handle");
    auto req = std::make_shared<Request>();
    std::future<TiledQr<T>> future = req->promise.get_future();
    if (std::exception_ptr rejected = admit()) {
      req->promise.set_exception(std::move(rejected));
      return future;
    }
    req->admit_ns = obs::now_ns();
    try {
      req->qr = prepare(std::move(a));
    } catch (...) {
      fail_request(state_, *req, std::current_exception());
      return future;
    }
    enqueue(std::move(req));
    return future;
  }

  /// Full solve pipeline for one request: factorize A, then chain the solve
  /// stages into the same stream — Qᵀb apply + trsm for tall A, trsm head +
  /// apply-Q̃ (minimum norm) for wide A. Apply stages of concurrent solves
  /// coalesce: each flush grafts every ready apply graph as one fused
  /// component (ROADMAP's "batched solve"). Results are bitwise identical to
  /// FactorSession::solve_least_squares_async(a, b, opt) with the same tree.
  /// Backpressure treats a solve as one request from admission until its
  /// solution future resolves (the chained stages keep the slot).
  [[nodiscard]] std::future<Matrix<T>> push_solve(ConstMatrixView<T> a, ConstMatrixView<T> b) {
    TILEDQR_CHECK(valid(), "FactorStream::push_solve: moved-from or empty stream handle");
    auto req = std::make_shared<Request>();
    req->solve = true;
    std::future<Matrix<T>> future = req->solve_promise.get_future();
    if (std::exception_ptr rejected = admit()) {
      req->solve_promise.set_exception(std::move(rejected));
      return future;
    }
    req->admit_ns = obs::now_ns();
    try {
      TILEDQR_CHECK(b.rows() == a.rows(), "push_solve: rhs row mismatch");
      req->qr = prepare(TileMatrix<T>::from_dense(a, state_->opts.nb));
      if (req->qr.kind() == kernels::FactorKind::LQ) {
        req->apply_trans = ApplyTrans::NoTrans;
        req->b = Matrix<T>(b.rows(), b.cols());
        copy(b, req->b.view());
      } else if (b.cols() > 0) {
        req->c = TileMatrix<T>::from_dense(b, state_->opts.nb);
      }
    } catch (...) {
      fail_request(state_, *req, std::current_exception());
      return future;
    }
    enqueue(std::move(req));
    return future;
  }

  /// Defers flushing: corked pushes accumulate (up to max_pending) so a
  /// known burst grafts as one fused component. Idempotent. While corked,
  /// the watermark, deadline, and drain() paths all leave the backlog alone
  /// — only uncork()/flush()/max_pending release it.
  void cork() {
    TILEDQR_CHECK(valid(), "FactorStream::cork: moved-from or empty stream handle");
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->corked = true;
    }
    state_->retire_cv.notify_all();
  }

  /// Re-enables flushing and grafts everything pending now.
  void uncork() {
    TILEDQR_CHECK(valid(), "FactorStream::uncork: moved-from or empty stream handle");
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->corked = false;
    }
    state_->retire_cv.notify_all();
    flush();
  }

  /// Grafts all pending requests — corked or not: an explicit flush is the
  /// caller's own uncorking — onto the live submission immediately.
  void flush() {
    TILEDQR_CHECK(valid(), "FactorStream::flush: moved-from or empty stream handle");
    std::vector<Group> groups;
    std::deque<std::shared_ptr<Request>> applies;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      groups = take_groups_locked(*state_);
      if (groups.empty()) ++state_->empty_flushes;
      applies = take_applies_locked(*state_);
    }
    graft_applies(state_, std::move(applies));
    graft(state_, std::move(groups));
  }

  /// Grafts the uncorked backlog, then blocks until every request admitted
  /// so far has resolved (including chained solve stages). The stream stays
  /// open. Requests pushed concurrently with the drain may be waited on too.
  /// A peer's corked backlog is NOT claimed — the burst grafts as the one
  /// fused component cork() promised — so the drain parks on the retirement
  /// condvar until the corker uncorks (no flush/wait spinning).
  void drain() {
    TILEDQR_CHECK(valid(), "FactorStream::drain: moved-from or empty stream handle");
    std::vector<Group> groups;
    std::deque<std::shared_ptr<Request>> applies;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->corked) {
        groups = take_groups_locked(*state_);
        // Count only claims actually attempted: a corked skip is deference,
        // not an empty flush.
        if (groups.empty()) ++state_->empty_flushes;
      }
      applies = take_applies_locked(*state_);
    }
    graft_applies(state_, std::move(applies));
    graft(state_, std::move(groups));
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->retire_cv.wait(lock, [&] { return state_->unresolved == 0; });
  }

  /// Drains, then seals the stream: further pushes throw Error. Idempotent.
  void close() {
    TILEDQR_CHECK(valid(), "FactorStream::close: moved-from or empty stream handle");
    std::thread deadline_reaper;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->closed = true;
      state_->corked = false;
      deadline_reaper.swap(state_->deadline_thread);
    }
    // Wake Block-ed pushers (they observe closed and throw) and the deadline
    // thread (it observes closed and exits; joined before the drain so no
    // grafting races the seal).
    state_->retire_cv.notify_all();
    if (deadline_reaper.joinable()) deadline_reaper.join();
    drain();
    if (!state_->stream.closed()) state_->stream.close();
  }

  [[nodiscard]] Stats stats() const {
    TILEDQR_CHECK(valid(), "FactorStream::stats: moved-from or empty stream handle");
    std::lock_guard<std::mutex> lock(state_->mu);
    Stats s;
    s.pushed = state_->pushed;
    s.components = state_->stream.generation();
    s.fused_requests = state_->fused_requests.load(std::memory_order_relaxed);
    s.pending = long(state_->pending.size());
    s.unresolved = state_->unresolved;
    s.peak_unresolved = state_->peak_unresolved;
    s.rejected = state_->rejected;
    s.deadline_flushes = state_->deadline_flushes;
    s.empty_flushes = state_->empty_flushes;
    return s;
  }

  /// Ready-set generation of the underlying pool stream (components grafted).
  [[nodiscard]] long generation() const {
    TILEDQR_CHECK(valid(), "FactorStream::generation: moved-from or empty stream handle");
    return state_->stream.generation();
  }

  /// The session-level live snapshot (FactorSession::health_report) from the
  /// stream handle a server actually holds.
  [[nodiscard]] std::string health_report() const {
    TILEDQR_CHECK(valid(), "FactorStream::health_report: moved-from or empty stream handle");
    return state_->session->health_report();
  }

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

 private:
  friend class FactorSession;

  /// One pushed request: its prepared factorization, sentinel counter within
  /// its graft, and (for solves) the rhs tiles + chained apply graph.
  struct Request {
    TiledQr<T> qr;
    std::promise<TiledQr<T>> promise;
    std::atomic<std::int32_t> remaining{0};
    /// Sentinel counter for the fused *apply* graft — deliberately separate
    /// from `remaining`: a peer's flush can claim and graft this request's
    /// apply stage between the factor part's last task body and the factor
    /// component's completion callback, so reusing one counter would let
    /// that callback mistake a live apply count for an unfinished factor
    /// part and fail an already-chained solve.
    std::atomic<std::int32_t> apply_remaining{0};
    bool solve = false;
    TileMatrix<T> c;
    /// Wide (LQ) solves only: the dense rhs. The apply operand `c` cannot be
    /// tiled at push time — it is the padded L⁻¹b in the transposed-world
    /// tiling, which exists only after the factorization's trsm head.
    Matrix<T> b;
    /// Transposed-world op for the chained apply stage: Qᵀ (ConjTrans) for
    /// least squares, Q̃ (NoTrans) for the minimum-norm solve.
    ApplyTrans apply_trans = ApplyTrans::ConjTrans;
    dag::TaskGraph apply_graph;
    std::promise<Matrix<T>> solve_promise;
    /// Admission timestamp (obs::now_ns), stamped once a push holds its
    /// backpressure slot; request_resolved turns it into the stream's
    /// end-to-end latency sample. 0 = never admitted (no sample).
    std::int64_t admit_ns = 0;
  };

  /// One graft: requests sharing a plan, fused when there is more than one.
  struct Group {
    std::vector<std::shared_ptr<Request>> reqs;
    std::shared_ptr<const FusedPlan> fused;  // engaged iff reqs.size() > 1
  };

  /// Shared stream state: worker completion callbacks outlive the handle's
  /// stack frames, so everything they touch lives here.
  struct State {
    FactorSession* session = nullptr;
    runtime::ThreadPool::Stream stream;
    FactorSession::StreamOptions opts;
    int worker_cap = 0;  ///< pre-clamped; the tuner keys on this concurrency

    mutable std::mutex mu;
    /// The retirement condvar: notified whenever a request resolves, a
    /// grafted component retires, or the cork/closed flags flip. Waiters:
    /// drain() (unresolved == 0), Block-overflow pushers (a slot freed),
    /// and the flush_deadline thread (a backlog to watch appeared).
    std::condition_variable retire_cv;
    bool corked = false;
    bool closed = false;
    std::deque<std::shared_ptr<Request>> pending;
    /// Solve requests whose factorization finished and whose apply graph is
    /// built: instead of each grafting its own component, they accumulate
    /// here and every flush point grafts them as ONE fused component
    /// (fuse_task_graphs), so a burst of streamed solves pays one graft for
    /// all its apply stages.
    std::deque<std::shared_ptr<Request>> ready_applies;
    long inflight = 0;  ///< grafted components not yet retired
    long pushed = 0;
    long unresolved = 0;  ///< admitted requests whose future hasn't resolved
    long peak_unresolved = 0;
    long rejected = 0;
    long deadline_flushes = 0;
    long empty_flushes = 0;
    /// When the pending backlog last went empty -> non-empty; the deadline
    /// thread grafts at oldest_pending + flush_deadline.
    std::chrono::steady_clock::time_point oldest_pending{};
    /// Engaged only when flush_deadline > 0; joined by close().
    std::thread deadline_thread;
    std::atomic<long> fused_requests{0};  ///< bumped outside mu (graft)
    /// End-to-end request latency (admission -> future resolution), exported
    /// through the registry source below. Atomic; recorded outside mu.
    obs::Histogram latency;
    /// Registry source "stream.<label>" / "stream<N>". Declared last so it
    /// deregisters (freezing the stream's final samples as retired metrics)
    /// before any field its callback reads is destroyed.
    obs::MetricsRegistry::SourceHandle metrics_source;
  };

  FactorStream(FactorSession* session, FactorSession::StreamOptions opts) : state_(std::make_shared<State>()) {
    TILEDQR_CHECK(opts.nb >= 1, stringf("StreamOptions::nb must be >= 1 (got %d)", opts.nb));
    TILEDQR_CHECK(opts.ib >= 1, stringf("StreamOptions::ib must be >= 1 (got %d)", opts.ib));
    TILEDQR_CHECK(opts.max_pending >= 1, "StreamOptions::max_pending must be >= 1");
    TILEDQR_CHECK(opts.max_queued >= 0,
                  stringf("StreamOptions::max_queued must be >= 0, 0 = unbounded (got %d)",
                          opts.max_queued));
    TILEDQR_CHECK(opts.low_watermark >= 0,
                  stringf("StreamOptions::low_watermark must be >= 0 (got %d)",
                          opts.low_watermark));
    TILEDQR_CHECK(opts.flush_deadline.count() >= 0,
                  "StreamOptions::flush_deadline must be >= 0, 0 = no deadline");
    state_->session = session;
    state_->worker_cap = session->clamp_cap(opts.threads);
    state_->opts = std::move(opts);
    state_->stream =
        session->pool_.open_stream(state_->worker_cap, state_->opts.affinity_hint);
    auto& registry = obs::MetricsRegistry::global();
    // Raw State pointer, not the shared_ptr: the handle lives inside State,
    // so a shared capture would be a self-cycle. It deregisters first in
    // State's destruction (declared last), while every field here is alive.
    state_->metrics_source = registry.register_source(
        state_->opts.label.empty() ? registry.unique_label("stream")
                                   : "stream." + state_->opts.label,
        [s = state_.get()](std::vector<obs::Sample>& out) {
          std::lock_guard<std::mutex> lock(s->mu);
          out.push_back({"pushed", double(s->pushed)});
          out.push_back({"components", double(s->stream.generation())});
          out.push_back({"fused_requests",
                         double(s->fused_requests.load(std::memory_order_relaxed))});
          out.push_back({"pending", double(s->pending.size())});
          out.push_back({"unresolved", double(s->unresolved)});
          out.push_back({"peak_unresolved", double(s->peak_unresolved)});
          out.push_back({"rejected", double(s->rejected)});
          out.push_back({"deadline_flushes", double(s->deadline_flushes)});
          out.push_back({"empty_flushes", double(s->empty_flushes)});
          s->latency.append_samples("latency", out);
        });
    if (state_->opts.flush_deadline.count() > 0)
      state_->deadline_thread = std::thread(&FactorStream::deadline_main, state_);
  }

  /// Body of the per-stream deadline thread (flush_deadline > 0): sleeps
  /// until there is an uncorked backlog to watch, then grafts it once it has
  /// aged past the deadline. Exits when the stream closes (close() joins it
  /// before sealing, so a final deadline graft cannot race the seal).
  static void deadline_main(std::shared_ptr<State> state) {
    std::unique_lock<std::mutex> lock(state->mu);
    while (!state->closed) {
      if (state->pending.empty() || state->corked) {
        state->retire_cv.wait(lock, [&] {
          return state->closed || (!state->pending.empty() && !state->corked);
        });
        continue;
      }
      const auto due = state->oldest_pending + state->opts.flush_deadline;
      if (std::chrono::steady_clock::now() < due) {
        state->retire_cv.wait_until(lock, due);
        continue;  // re-evaluate: the backlog may have been claimed meanwhile
      }
      auto groups = take_groups_locked(*state);
      ++state->deadline_flushes;
      lock.unlock();
      graft(state, std::move(groups));
      lock.lock();
    }
  }

  /// Backpressure gate: every accepted request holds one `unresolved` slot
  /// from admission until its user-facing future resolves. Returns null on
  /// admission; with the Reject policy at the bound, returns the error the
  /// caller must fail its future with (no slot taken). With Block, parks on
  /// the retirement condvar until a slot frees. Throws on a closed stream
  /// (including a close that lands while a Block-ed push waits).
  [[nodiscard]] std::exception_ptr admit() {
    State& s = *state_;
    std::unique_lock<std::mutex> lock(s.mu);
    TILEDQR_CHECK(!s.closed, "FactorStream: push on a closed stream");
    if (s.opts.max_queued > 0 && s.unresolved >= long(s.opts.max_queued)) {
      if (s.opts.overflow == FactorSession::StreamOverflow::Reject) {
        ++s.rejected;
        return std::make_exception_ptr(Error(
            stringf("FactorStream: backpressure reject — stream already holds max_queued=%d "
                    "unresolved requests (StreamOptions::overflow = Reject)",
                    s.opts.max_queued)));
      }
      s.retire_cv.wait(lock,
                       [&] { return s.closed || s.unresolved < long(s.opts.max_queued); });
      TILEDQR_CHECK(!s.closed, "FactorStream: push on a closed stream");
    }
    ++s.unresolved;
    s.peak_unresolved = std::max(s.peak_unresolved, s.unresolved);
    return nullptr;
  }

  /// A request's user-facing future resolved (value or error): record its
  /// end-to-end latency, release its backpressure slot, and wake drain()ers
  /// / Block-ed pushers.
  static void request_resolved(const std::shared_ptr<State>& state, const Request& req) {
    if (req.admit_ns > 0) state->latency.record_ns(obs::now_ns() - req.admit_ns);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->unresolved;
    }
    state->retire_cv.notify_all();
  }

  /// Tile → plan, resolving a disengaged tree through the autotuner for this
  /// input's shape at the stream's worker cap.
  [[nodiscard]] TiledQr<T> prepare(TileMatrix<T> tiles) {
    Options opt;
    opt.nb = state_->opts.nb;
    opt.ib = state_->opts.ib;
    opt.threads = state_->worker_cap == 0 ? state_->session->pool_.size() : state_->worker_cap;
    opt.tree = state_->opts.tree
                   ? *state_->opts.tree
                   : state_->session->choose_tree_for(tiles, state_->worker_cap);
    TiledQr<T> qr = TiledQr<T>::prepare(std::move(tiles), opt, state_->session->cache_);
    state_->session->note_plan(qr.plan_);
    return qr;
  }

  void enqueue(std::shared_ptr<Request> req) {
    std::vector<Group> groups;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->closed) {
        // Push-vs-close race: the close won. Give the admission slot back
        // before reporting the caller bug, so the closing drain terminates.
        --state_->unresolved;
        state_->retire_cv.notify_all();
        throw Error("FactorStream: push on a closed stream");
      }
      if (state_->pending.empty())
        state_->oldest_pending = std::chrono::steady_clock::now();
      state_->pending.push_back(std::move(req));
      ++state_->pushed;
      // Flush when the in-flight window fell to the watermark (default 0:
      // the stream ran dry with nothing to hide behind) or the coalescing
      // bound is hit; a corked stream defers the former but still bounds
      // its memory with the latter.
      const bool full = long(state_->pending.size()) >= long(state_->opts.max_pending);
      if (full || (!state_->corked && state_->inflight <= long(state_->opts.low_watermark)))
        groups = take_groups_locked(*state_);
    }
    // Only a request that actually stayed pending re-arms the deadline
    // thread's watch; a push that grafted immediately left nothing to age.
    if (groups.empty() && state_->opts.flush_deadline.count() > 0)
      state_->retire_cv.notify_all();
    graft(state_, std::move(groups));
  }

  /// Groups the pending requests by plan — one graft per distinct plan, so
  /// a mixed-shape stream still fuses everything of each shape — and
  /// accounts them in flight. Caller holds s.mu; the actual appends happen
  /// outside the lock in graft(). Linear scan: pending is bounded by
  /// max_pending and distinct plans are few.
  /// Claims the ready-apply queue for one fused graft, accounting it in
  /// flight (a single component regardless of how many solves it carries).
  /// Caller holds s.mu.
  [[nodiscard]] static std::deque<std::shared_ptr<Request>> take_applies_locked(State& s) {
    std::deque<std::shared_ptr<Request>> applies;
    if (!s.ready_applies.empty()) {
      applies.swap(s.ready_applies);
      ++s.inflight;
    }
    return applies;
  }

  [[nodiscard]] static std::vector<Group> take_groups_locked(State& s) {
    std::vector<Group> groups;
    if (s.pending.empty()) return groups;
    for (auto& req : s.pending) {
      Group* home = nullptr;
      for (auto& g : groups)
        if (g.reqs.front()->qr.plan_.get() == req->qr.plan_.get()) {
          home = &g;
          break;
        }
      if (!home) home = &groups.emplace_back();
      home->reqs.push_back(std::move(req));
    }
    s.pending.clear();
    s.inflight += long(groups.size());
    return groups;
  }

  /// Appends one component per group onto the live submission. Fused plans
  /// are resolved here, outside the stream mutex (planning a new (shape,
  /// count) fusion must not block pushes); a group whose fusion fails to
  /// build — or whose append is refused (close race) — fails only its own
  /// requests, and retires its inflight slot so nothing pended behind it is
  /// stranded and close()'s drain still terminates.
  static void graft(const std::shared_ptr<State>& state, std::vector<Group> groups) {
    for (auto& g : groups) {
      if (g.reqs.size() > 1) {
        try {
          const Plan& plan = *g.reqs.front()->qr.plan_;
          g.fused = state->session->cache_.get_fused(plan.graph.p, plan.graph.q,
                                                     *g.reqs.front()->qr.options().tree,
                                                     int(g.reqs.size()), plan.graph.factor);
          state->fused_requests.fetch_add(long(g.reqs.size()), std::memory_order_relaxed);
        } catch (...) {
          for (auto& req : g.reqs) fail_request(state, *req, std::current_exception());
          // Account the failed graft like a retired one — including the
          // backlog check, so a request pended behind this group is not
          // stranded when the stream went otherwise idle.
          on_component_retired(state);
          continue;
        }
      }
      if (g.reqs.size() == 1) {
        auto req = g.reqs.front();
        try {
          state->stream.append(
              req->qr.plan_->graph,
              [raw = req.get()](std::int32_t idx) {
                TiledQr<T>& qr = raw->qr;
                run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_,
                                 qr.opt_.ib);
              },
              [state, req](std::exception_ptr error) {
                if (error)
                  fail_request(state, *req, error);
                else
                  finish_request(state, req);
                on_component_retired(state);
              },
              req, &req->qr.plan_->ranks);
        } catch (...) {
          fail_request(state, *req, std::current_exception());
          on_component_retired(state);
        }
        continue;
      }
      auto group = std::make_shared<Group>(std::move(g));
      for (size_t i = 0; i < group->reqs.size(); ++i)
        group->reqs[i]->remaining.store(group->fused->part_size(int(i)),
                                        std::memory_order_relaxed);
      try {
        state->stream.append(
            group->fused->component_graph(),
            [state, raw = group.get()](std::int32_t idx) {
              const FusedPlan& fused = *raw->fused;
              const size_t part = size_t(fused.part_of(idx));
              Request& req = *raw->reqs[part];
              TiledQr<T>& qr = req.qr;
              run_task_kernels(fused.task(idx), qr.a_, qr.t_, qr.t2_, qr.opt_.ib);
              // Per-request sentinel, exactly the batch-fusion machinery: the
              // last retiring task of this part resolves its request early.
              if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
                finish_request(state, raw->reqs[part]);
            },
            [state, group](std::exception_ptr error) {
              // Unfinished parts only exist when a task threw (the component
              // was cancelled); resolved parts already kept their values.
              for (auto& req : group->reqs)
                if (req->remaining.load(std::memory_order_acquire) != 0)
                  fail_request(state, *req,
                               error ? error
                                     : std::make_exception_ptr(
                                           Error("FactorStream: component cancelled")));
              on_component_retired(state);
            },
            group, &group->fused->component_ranks(), group->fused->copies());
      } catch (...) {
        auto error = std::current_exception();
        for (auto& req : group->reqs) fail_request(state, *req, error);
        on_component_retired(state);
      }
    }
  }

  /// A request's factorization finished (sentinel or single-component
  /// completion). Plain pushes resolve; solves build their apply stage (for
  /// wide inputs the L⁻¹b trsm head runs here, on the worker that got here)
  /// and queue it on ready_applies — the next flush point grafts every
  /// queued apply as one fused component. Progress is guaranteed without a
  /// flush here: the factor component this request rode in on has not
  /// retired yet, and its retirement callback flushes the queue.
  static void finish_request(const std::shared_ptr<State>& state,
                             const std::shared_ptr<Request>& req) {
    if (!req->solve) {
      req->promise.set_value(std::move(req->qr));
      request_resolved(state, *req);
      return;
    }
    try {
      const bool lq = req->qr.kind() == kernels::FactorKind::LQ;
      if (lq ? req->b.cols() == 0 : req->c.n() == 0) {  // zero-column rhs
        req->solve_promise.set_value(Matrix<T>(req->qr.a_.n(), 0));
        request_resolved(state, *req);
        return;
      }
      if (lq) req->c = req->qr.start_minimum_norm(ConstMatrixView<T>(req->b.view()));
      req->apply_graph = req->qr.build_apply_graph(req->apply_trans, req->c.nt());
    } catch (...) {
      req->solve_promise.set_exception(std::current_exception());
      request_resolved(state, *req);
      return;
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->ready_applies.push_back(req);
  }

  /// The apply stage of one solve finished: the trsm tail (QR) or the dense
  /// gather (LQ — the trsm already ran before the apply) resolves the
  /// solution future.
  static void finish_apply(const std::shared_ptr<State>& state,
                           const std::shared_ptr<Request>& req) {
    try {
      req->solve_promise.set_value(req->apply_trans == ApplyTrans::NoTrans
                                       ? req->c.to_dense()
                                       : req->qr.finish_least_squares(req->c));
    } catch (...) {
      req->solve_promise.set_exception(std::current_exception());
    }
    request_resolved(state, *req);
  }

  /// Grafts the claimed ready_applies as ONE component: a single apply graph
  /// when one solve is ready, otherwise the rank-carrying disjoint union
  /// (fuse_task_graphs) of every queued apply graph, with per-request
  /// sentinels resolving each solution as its part drains. The caller
  /// already accounted the graft in `inflight`. Safe even though the factor
  /// components may not have retired yet: the pool stream admits appends
  /// from task bodies and completion callbacks.
  static void graft_applies(const std::shared_ptr<State>& state,
                            std::deque<std::shared_ptr<Request>> applies) {
    if (applies.empty()) return;
    if (applies.size() == 1) {
      auto req = applies.front();
      try {
        state->stream.append(
            req->apply_graph,
            [raw = req.get()](std::int32_t id) {
              raw->qr.run_apply_task(raw->apply_graph.tasks[size_t(id)], raw->apply_trans,
                                     raw->c);
            },
            [state, req](std::exception_ptr error) {
              if (error)
                fail_request(state, *req, error);
              else
                finish_apply(state, req);
              on_component_retired(state);
            },
            req);
      } catch (...) {
        // Close race: the pool stream refused the stage. Fail the solve and
        // retire the phantom graft, or the inflight/unresolved accounting
        // leaks and the request's future never resolves.
        fail_request(state, *req, std::current_exception());
        on_component_retired(state);
      }
      return;
    }
    struct ApplyGroup {
      std::vector<std::shared_ptr<Request>> reqs;
      FusedPlan fused;
    };
    auto group = std::make_shared<ApplyGroup>();
    group->reqs.assign(std::make_move_iterator(applies.begin()),
                       std::make_move_iterator(applies.end()));
    try {
      std::vector<const dag::TaskGraph*> graphs;
      graphs.reserve(group->reqs.size());
      for (const auto& req : group->reqs) graphs.push_back(&req->apply_graph);
      group->fused = fuse_task_graphs(graphs);
    } catch (...) {
      auto error = std::current_exception();
      for (auto& req : group->reqs) fail_request(state, *req, error);
      on_component_retired(state);
      return;
    }
    for (size_t i = 0; i < group->reqs.size(); ++i)
      group->reqs[i]->apply_remaining.store(group->fused.part_size(int(i)),
                                            std::memory_order_relaxed);
    try {
      state->stream.append(
          group->fused.component_graph(),
          [state, raw = group.get()](std::int32_t idx) {
            const FusedPlan& fused = raw->fused;
            const size_t part = size_t(fused.part_of(idx));
            Request& req = *raw->reqs[part];
            req.qr.run_apply_task(fused.task(idx), req.apply_trans, req.c);
            // Per-request sentinel, same machinery as the factor grafts: the
            // last retiring apply task of this part resolves its solution.
            if (req.apply_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
              finish_apply(state, raw->reqs[part]);
          },
          [state, group](std::exception_ptr error) {
            for (auto& req : group->reqs)
              if (req->apply_remaining.load(std::memory_order_acquire) != 0)
                fail_request(state, *req,
                             error ? error
                                   : std::make_exception_ptr(
                                         Error("FactorStream: component cancelled")));
            on_component_retired(state);
          },
          group, &group->fused.component_ranks());
    } catch (...) {
      auto error = std::current_exception();
      for (auto& req : group->reqs) fail_request(state, *req, error);
      on_component_retired(state);
    }
  }

  /// Fails a request's user-facing future and releases its admission slot.
  static void fail_request(const std::shared_ptr<State>& state, Request& req,
                           std::exception_ptr error) {
    if (req.solve)
      req.solve_promise.set_exception(std::move(error));
    else
      req.promise.set_exception(std::move(error));
    request_resolved(state, req);
  }

  /// A grafted component retired: if the in-flight window fell to the
  /// watermark with work pending (arrivals outpaced this drain), graft the
  /// backlog now — this is the hand-off that keeps workers flowing across
  /// what used to be batch boundaries.
  static void on_component_retired(const std::shared_ptr<State>& state) {
    std::vector<Group> groups;
    std::deque<std::shared_ptr<Request>> applies;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->inflight;
      // Ready apply stages flush unconditionally — they are latency-critical
      // solve tails whose requests already hold slots, so neither the cork
      // nor the watermark applies to them.
      applies = take_applies_locked(*state);
      if (!state->corked && state->inflight <= long(state->opts.low_watermark) &&
          !state->pending.empty())
        groups = take_groups_locked(*state);
    }
    state->retire_cv.notify_all();
    graft_applies(state, std::move(applies));
    graft(state, std::move(groups));
  }

  std::shared_ptr<State> state_;
};

template <typename T>
FactorStream<T> FactorSession::stream(StreamOptions opt) {
  return FactorStream<T>(this, std::move(opt));
}

}  // namespace tiledqr::core
