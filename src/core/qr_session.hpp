// QrSession: the batched / asynchronous serving front end.
//
// A session owns a persistent worker pool and a plan cache and amortizes
// both across many factorizations — the "heavy traffic of repeated, often
// small, QRs" regime where spawn-per-call scheduling overhead dominates
// flops. Independent factorizations become DAG submissions on the shared
// pool; a *batch* is fused into one submission (see below) so the scheduler
// overlaps the tail of one factorization with the heads of the next.
//
//   core::QrSession session;                       // pool + plan cache
//   auto fut = session.submit<double>(a.view(), opt);
//   ...                                            // overlap with other work
//   core::TiledQr<double> qr = fut.get();          // rethrows task errors
//
//   auto qrs = session.factorize_batch<double>(views, opt);  // 64 small QRs
//
//   auto x = session.solve_least_squares_async<double>(a.view(), b.view(), opt);
//   ...                                            // factorize → Qᵀb → trsm,
//   Matrix<double> sol = x.get();                  // all on the session pool
//
//   auto qr2 = session.factorize_auto<double>(a.view());  // no TreeConfig:
//   ...                       // the tree autotuner picks the paper-optimal
//   ...                       // algorithm for (shape, pool size)
//
// Batch fusion: factorize_batch concatenates the per-matrix DAGs into one
// FusedPlan (cached per (shape, count) for homogeneous batches) and submits
// it once — one deal of the initial ready set, one scheduling-key vector
// (the concatenation of each plan's cached ranks, no rank sweep), one
// completion walk. Per-matrix completion is detected by per-subgraph
// sentinel counters: the last retiring task of each component fulfils that
// matrix's promise, so early matrices resolve while the rest of the batch
// is still running.
//
// Results are bitwise identical to TiledQr<T>::factorize on the same input:
// the same plan, the same kernels, and tasks that write disjoint regions.
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/tiled_qr.hpp"
#include "runtime/thread_pool.hpp"
#include "tuner/tuner.hpp"

namespace tiledqr::core {

class QrSession {
 public:
  struct Config {
    /// Worker count of the session pool; 0 = TILEDQR_THREADS or hardware
    /// concurrency (the library-wide default rule).
    int threads = 0;
    /// Auto-mode tuning knobs (weight profile, stage-2 refinement, table
    /// persistence path); see tuner::TunerConfig.
    tuner::TunerConfig tuner{};
  };

  /// Auto-mode options: like Options but without a TreeConfig — the tuner
  /// supplies the algorithm, that is the point.
  struct AutoOptions {
    int nb = 128;     ///< tile size (dense inputs; pre-tiled inputs keep theirs)
    int ib = 32;      ///< inner blocking of the kernels
    int threads = 0;  ///< per-request worker cap; 0 = whole pool
  };

  QrSession() : pool_(0) {}
  explicit QrSession(Config config) : tuner_(std::move(config.tuner)), pool_(config.threads) {}

  QrSession(const QrSession&) = delete;
  QrSession& operator=(const QrSession&) = delete;

  /// Asynchronous factorization of a dense matrix (copied into tiled
  /// layout on the calling thread). The future resolves once every kernel
  /// has run; task exceptions surface through future::get().
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(ConstMatrixView<T> a, const Options& opt) {
    return submit(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Asynchronous factorization of a tiled matrix (consumed).
  /// `opt.threads > 0` caps how many pool workers this one factorization may
  /// occupy; 0 lets it spread over the whole pool.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(TileMatrix<T> a, Options opt) {
    struct Pending {
      TiledQr<T> qr;
      std::promise<TiledQr<T>> promise;
    };
    const int worker_cap = opt.threads;
    if (opt.threads <= 0) opt.threads = pool_.size();
    auto state = std::make_shared<Pending>();
    std::future<TiledQr<T>> future = state->promise.get_future();
    try {
      state->qr = TiledQr<T>::prepare(std::move(a), opt, cache_);
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    const dag::TaskGraph& graph = state->qr.plan_->graph;
    const int ib = state->qr.opt_.ib;
    pool_.submit(
        graph,
        [raw = state.get(), ib](std::int32_t idx) {
          TiledQr<T>& qr = raw->qr;
          run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, ib);
        },
        [state](std::exception_ptr error) {
          if (error)
            state->promise.set_exception(error);
          else
            state->promise.set_value(std::move(state->qr));
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, state, &state->qr.plan_->ranks);
    return future;
  }

  /// Asynchronous batched factorization: fuses the batch into ONE pool
  /// submission (see the header comment) and returns one future per input,
  /// in input order. Futures resolve independently as their component of the
  /// fused DAG drains. Inputs that fail to tile or plan resolve their future
  /// with the exception without poisoning the rest; a kernel failure at run
  /// time cancels the remainder of the fused submission, so completed
  /// matrices keep their values and unfinished ones observe the error.
  /// `opt.threads > 0` keeps its per-matrix meaning: the fused submission is
  /// capped to opt.threads x batch-size workers (clamped to the pool), the
  /// aggregate concurrency the same batch got as per-matrix submissions.
  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      std::span<const ConstMatrixView<T>> mats, const Options& opt) {
    return submit_batch_impl<T>(
        mats.size(),
        [&mats, nb = opt.nb](size_t i) { return TileMatrix<T>::from_dense(mats[i], nb); }, opt);
  }

  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      const std::vector<ConstMatrixView<T>>& mats, const Options& opt) {
    return submit_batch(std::span<const ConstMatrixView<T>>(mats), opt);
  }

  /// Pre-tiled flavor of submit_batch (inputs consumed) — the zero-copy path
  /// for servers that keep request matrices in tiled layout.
  template <typename T>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch(
      std::vector<TileMatrix<T>> mats, const Options& opt) {
    return submit_batch_impl<T>(
        mats.size(), [&mats](size_t i) { return std::move(mats[i]); }, opt);
  }

  /// Blocking batched factorization (one fused DAG; see submit_batch).
  /// Results are in input order; the first exception is rethrown after every
  /// component has drained.
  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(std::span<const ConstMatrixView<T>> mats,
                                                        const Options& opt) {
    return collect_batch(submit_batch(mats, opt));
  }

  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(
      const std::vector<ConstMatrixView<T>>& mats, const Options& opt) {
    return factorize_batch(std::span<const ConstMatrixView<T>>(mats), opt);
  }

  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(std::vector<TileMatrix<T>> mats,
                                                        const Options& opt) {
    return collect_batch(submit_batch(std::move(mats), opt));
  }

  /// Applies op(Q) of a finished factorization to tiled C, asynchronously on
  /// the session pool (no spawn path, no blocking). `qr` is borrowed and
  /// must stay alive until the future resolves; C is consumed and handed
  /// back through the future. Results are bitwise identical to
  /// qr.apply_q(trans, c, ...) on the same input.
  template <typename T>
  [[nodiscard]] std::future<TileMatrix<T>> apply_q_async(const TiledQr<T>& qr, ApplyTrans trans,
                                                         TileMatrix<T> c) {
    struct Apply {
      dag::TaskGraph graph;
      TileMatrix<T> c;
      std::promise<TileMatrix<T>> promise;
    };
    auto state = std::make_shared<Apply>();
    std::future<TileMatrix<T>> future = state->promise.get_future();
    try {
      TILEDQR_CHECK(c.mt() == qr.a_.mt() && c.nb() == qr.a_.nb(),
                    "apply_q_async: row tiling of C must match the factorization");
      state->c = std::move(c);
      state->graph = qr.build_apply_graph(trans, state->c.nt());
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    pool_.submit(
        state->graph,
        [raw = state.get(), &qr, trans](std::int32_t id) {
          qr.run_apply_task(raw->graph.tasks[size_t(id)], trans, raw->c);
        },
        [state](std::exception_ptr error) {
          if (error)
            state->promise.set_exception(error);
          else
            state->promise.set_value(std::move(state->c));
        },
        runtime::SchedulePriority::CriticalPath, 0, state);
    return future;
  }

  /// The factorization is borrowed until the future resolves — a temporary
  /// would dangle under the in-flight tasks, so rvalues are rejected.
  template <typename T>
  std::future<TileMatrix<T>> apply_q_async(TiledQr<T>&&, ApplyTrans, TileMatrix<T>) = delete;

  /// Least squares against a finished factorization: computes Qᵀb on the
  /// pool, then the triangular solve on the worker that retires the apply
  /// DAG. `qr` is borrowed and must stay alive until the future resolves.
  template <typename T>
  [[nodiscard]] std::future<Matrix<T>> solve_least_squares_async(const TiledQr<T>& qr,
                                                                 ConstMatrixView<T> b) {
    struct Solve {
      dag::TaskGraph graph;
      TileMatrix<T> c;
      std::promise<Matrix<T>> promise;
    };
    auto state = std::make_shared<Solve>();
    std::future<Matrix<T>> future = state->promise.get_future();
    try {
      TILEDQR_CHECK(qr.a_.m() >= qr.a_.n(), "solve_least_squares_async: requires m >= n");
      TILEDQR_CHECK(b.rows() == qr.a_.m(), "solve_least_squares_async: rhs row mismatch");
      if (b.cols() == 0) {
        state->promise.set_value(Matrix<T>(qr.a_.n(), 0));
        return future;
      }
      state->c = TileMatrix<T>::from_dense(b, qr.a_.nb());
      state->graph = qr.build_apply_graph(ApplyTrans::ConjTrans, state->c.nt());
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    pool_.submit(
        state->graph,
        [raw = state.get(), &qr](std::int32_t id) {
          qr.run_apply_task(raw->graph.tasks[size_t(id)], ApplyTrans::ConjTrans, raw->c);
        },
        [state, &qr](std::exception_ptr error) {
          if (error) {
            state->promise.set_exception(error);
            return;
          }
          try {
            state->promise.set_value(qr.finish_least_squares(state->c));
          } catch (...) {
            state->promise.set_exception(std::current_exception());
          }
        },
        runtime::SchedulePriority::CriticalPath, 0, state);
    return future;
  }

  template <typename T>
  std::future<Matrix<T>> solve_least_squares_async(TiledQr<T>&&, ConstMatrixView<T>) = delete;

  /// The full least-squares pipeline, end-to-end on the session pool:
  /// factorize A, apply Qᵀ to b, triangular-solve R x = (Qᵀb)[0:n] — three
  /// chained stages with no spawn-path fallback and no intermediate blocking
  /// (each stage is submitted by the worker that retires the previous one).
  /// `opt.threads > 0` caps the pool workers the pipeline may occupy.
  template <typename T>
  [[nodiscard]] std::future<Matrix<T>> solve_least_squares_async(ConstMatrixView<T> a,
                                                                 ConstMatrixView<T> b,
                                                                 Options opt) {
    struct Pipeline {
      TiledQr<T> qr;
      TileMatrix<T> c;  ///< b tiles; becomes Qᵀb once the apply stage drains
      dag::TaskGraph apply_graph;
      std::promise<Matrix<T>> promise;
    };
    const int worker_cap = opt.threads;
    if (opt.threads <= 0) opt.threads = pool_.size();
    auto state = std::make_shared<Pipeline>();
    std::future<Matrix<T>> future = state->promise.get_future();
    try {
      TILEDQR_CHECK(a.rows() >= a.cols(), "solve_least_squares_async: requires m >= n");
      TILEDQR_CHECK(b.rows() == a.rows(), "solve_least_squares_async: rhs row mismatch");
      state->qr = TiledQr<T>::prepare(TileMatrix<T>::from_dense(a, opt.nb), opt, cache_);
      if (b.cols() > 0) state->c = TileMatrix<T>::from_dense(b, opt.nb);
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    runtime::ThreadPool* pool = &pool_;
    pool_.submit(
        state->qr.plan_->graph,
        [raw = state.get(), ib = opt.ib](std::int32_t idx) {
          TiledQr<T>& qr = raw->qr;
          run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, ib);
        },
        [state, pool, worker_cap](std::exception_ptr error) {
          if (error) {
            state->promise.set_exception(error);
            return;
          }
          try {
            if (state->c.n() == 0) {  // zero-column rhs: answer is n x 0
              state->promise.set_value(Matrix<T>(state->qr.a_.n(), 0));
              return;
            }
            state->apply_graph =
                state->qr.build_apply_graph(ApplyTrans::ConjTrans, state->c.nt());
          } catch (...) {
            state->promise.set_exception(std::current_exception());
            return;
          }
          pool->submit(
              state->apply_graph,
              [raw = state.get()](std::int32_t id) {
                raw->qr.run_apply_task(raw->apply_graph.tasks[size_t(id)],
                                       ApplyTrans::ConjTrans, raw->c);
              },
              [state](std::exception_ptr apply_error) {
                if (apply_error) {
                  state->promise.set_exception(apply_error);
                  return;
                }
                try {
                  state->promise.set_value(state->qr.finish_least_squares(state->c));
                } catch (...) {
                  state->promise.set_exception(std::current_exception());
                }
              },
              runtime::SchedulePriority::CriticalPath, worker_cap, state);
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, state, &state->qr.plan_->ranks);
    return future;
  }

  // ------------------------------------------------------------- auto mode --
  // The tuner-driven entry points: the caller supplies no TreeConfig; the
  // session picks the paper-optimal tree for (tile-grid shape, pool size)
  // via its Tuner (model ranking + optional on-pool refinement, memoized in
  // a TuningTable, TILEDQR_TREE env override honored). Results are bitwise
  // identical to submitting the chosen config explicitly — auto mode only
  // decides, the execution path is the same submit().

  /// Asynchronous auto-tuned factorization of a dense matrix.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit_auto(ConstMatrixView<T> a,
                                                    const AutoOptions& opt = {}) {
    return submit_auto(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Asynchronous auto-tuned factorization of a tiled matrix (consumed);
  /// `opt.nb` is ignored in favor of the input's own tiling. The tuner sees
  /// the workers this request may actually occupy (`opt.threads` capped to
  /// the pool), so capped requests get the tree that is best at *their*
  /// concurrency, not the whole pool's.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit_auto(TileMatrix<T> a, const AutoOptions& opt = {}) {
    Options full;
    full.tree = choose_tree(a.mt(), a.nt(), opt.threads);
    full.nb = a.nb();
    full.ib = opt.ib;
    full.threads = opt.threads;
    return submit(std::move(a), full);
  }

  /// Blocking auto-tuned factorization.
  template <typename T>
  [[nodiscard]] TiledQr<T> factorize_auto(ConstMatrixView<T> a, const AutoOptions& opt = {}) {
    return submit_auto(a, opt).get();
  }

  template <typename T>
  [[nodiscard]] TiledQr<T> factorize_auto(TileMatrix<T> a, const AutoOptions& opt = {}) {
    return submit_auto(std::move(a), opt).get();
  }

  /// The full tuning decision for a p x q tile grid on this session's pool
  /// (env override > tuning table > model + refinement): the chosen config
  /// plus how it was reached (forced / refined / model makespan).
  /// `worker_cap > 0` tunes for a request confined to that many workers
  /// (the AutoOptions::threads semantics); 0 tunes for the whole pool.
  [[nodiscard]] tuner::TunedDecision decide_tree(int p, int q, int worker_cap = 0) {
    int workers = worker_cap > 0 ? std::min(worker_cap, pool_.size()) : pool_.size();
    return tuner_.decide(p, q, workers, cache_, &pool_);
  }

  /// Just the chosen TreeConfig — useful to pin the auto decision into an
  /// explicit Options (e.g. for the async pipelines).
  [[nodiscard]] trees::TreeConfig choose_tree(int p, int q, int worker_cap = 0) {
    return decide_tree(p, q, worker_cap).config;
  }

  [[nodiscard]] tuner::Tuner& tree_tuner() noexcept { return tuner_; }
  [[nodiscard]] tuner::TuningTable::Stats tuning_stats() const { return tuner_.stats(); }

  [[nodiscard]] runtime::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] PlanCache& plan_cache() noexcept { return cache_; }
  [[nodiscard]] PlanCache::Stats plan_cache_stats() const { return cache_.stats(); }
  [[nodiscard]] runtime::ThreadPool::Stats pool_stats() const noexcept { return pool_.stats(); }

 private:
  /// One matrix of a fused batch: its prepared factorization, its promise,
  /// and the per-subgraph sentinel counter that detects component completion
  /// inside the fused submission.
  template <typename T>
  struct BatchPart {
    explicit BatchPart(TiledQr<T> q) : qr(std::move(q)) {}
    TiledQr<T> qr;
    std::promise<TiledQr<T>> promise;
    std::atomic<std::int32_t> remaining{0};
  };

  /// Shared state of one fused batch submission (held alive by the pool's
  /// keepalive until the completion callback has run).
  template <typename T>
  struct BatchState {
    std::deque<BatchPart<T>> parts;           // successfully prepared inputs
    FusedPlan owned;                          // heterogeneous batches
    std::shared_ptr<const FusedPlan> cached;  // homogeneous batches
    const FusedPlan* fused = nullptr;
    int ib = 0;
  };

  /// Shared prepare loop of the submit_batch flavors: `make_tiles(i)` yields
  /// the i-th input's TileMatrix (converting or moving). An input whose
  /// tiling/planning throws gets a pre-failed future; the rest proceed.
  template <typename T, typename MakeTiles>
  [[nodiscard]] std::vector<std::future<TiledQr<T>>> submit_batch_impl(size_t count,
                                                                       MakeTiles&& make_tiles,
                                                                       Options opt) {
    const int worker_cap = opt.threads;
    if (opt.threads <= 0) opt.threads = pool_.size();
    std::vector<std::future<TiledQr<T>>> futures;
    futures.reserve(count);
    auto batch = std::make_shared<BatchState<T>>();
    batch->ib = opt.ib;
    for (size_t i = 0; i < count; ++i) {
      try {
        batch->parts.emplace_back(TiledQr<T>::prepare(make_tiles(i), opt, cache_));
        futures.push_back(batch->parts.back().promise.get_future());
      } catch (...) {
        std::promise<TiledQr<T>> failed;
        futures.push_back(failed.get_future());
        failed.set_exception(std::current_exception());
      }
    }
    launch_batch(std::move(batch), worker_cap, opt.tree);
    return futures;
  }

  /// Fuses the prepared parts into one pool submission. The per-part
  /// promises are fulfilled by per-subgraph sentinel counters as each
  /// component drains; the single completion callback only mops up after a
  /// cancelled (failed) submission.
  template <typename T>
  void launch_batch(std::shared_ptr<BatchState<T>> batch, int worker_cap,
                    const trees::TreeConfig& tree) {
    if (batch->parts.empty()) return;

    if (batch->parts.size() == 1) {
      // Nothing to fuse: submit the lone component directly (and skip
      // caching a redundant single-part fusion).
      BatchPart<T>& part = batch->parts.front();
      pool_.submit(
          part.qr.plan_->graph,
          [raw = batch.get()](std::int32_t idx) {
            TiledQr<T>& qr = raw->parts.front().qr;
            run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, raw->ib);
          },
          [batch](std::exception_ptr error) {
            BatchPart<T>& p = batch->parts.front();
            if (error)
              p.promise.set_exception(error);
            else
              p.promise.set_value(std::move(p.qr));
          },
          runtime::SchedulePriority::CriticalPath, worker_cap, batch, &part.qr.plan_->ranks);
      return;
    }

    // One fused graph for the whole batch. Homogeneous batches (the common
    // serving shape) reuse a cached fusion; mixed shapes fuse ad hoc.
    const Plan* front_plan = batch->parts.front().qr.plan_.get();
    bool homogeneous = true;
    for (const auto& part : batch->parts)
      if (part.qr.plan_.get() != front_plan) {
        homogeneous = false;
        break;
      }
    if (homogeneous) {
      batch->cached = cache_.get_fused(front_plan->graph.p, front_plan->graph.q, tree,
                                       int(batch->parts.size()));
      batch->fused = batch->cached.get();
    } else {
      std::vector<std::shared_ptr<const Plan>> plans;
      plans.reserve(batch->parts.size());
      for (const auto& part : batch->parts) plans.push_back(part.qr.plan_);
      batch->owned = make_fused_plan(plans);
      batch->fused = &batch->owned;
    }
    for (size_t i = 0; i < batch->parts.size(); ++i) {
      const FusedPlan::Part& range = batch->fused->parts[i];
      batch->parts[i].remaining.store(range.end - range.begin, std::memory_order_relaxed);
    }

    // A per-submission cap applies to the whole fused graph, so scale the
    // caller's per-matrix cap by the batch size to preserve the aggregate
    // concurrency per-matrix submissions had (0 stays "whole pool").
    if (worker_cap > 0)
      worker_cap = int(std::min<long>(long(pool_.size()),
                                      long(worker_cap) * long(batch->parts.size())));

    pool_.submit(
        batch->fused->graph,
        [raw = batch.get()](std::int32_t idx) {
          const FusedPlan& fused = *raw->fused;
          BatchPart<T>& part = raw->parts[size_t(fused.part_of(idx))];
          TiledQr<T>& qr = part.qr;
          run_task_kernels(fused.graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, raw->ib);
          // Per-subgraph sentinel: the last retiring task of this component
          // fulfils its matrix's promise (acq_rel pairs with the other
          // workers' decrements, so their tile writes are visible before the
          // TiledQr is moved out).
          if (part.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            part.promise.set_value(std::move(part.qr));
        },
        [batch](std::exception_ptr error) {
          // Only reachable with unfinished parts when a task threw (the pool
          // then cancels the rest of the submission).
          for (auto& part : batch->parts)
            if (part.remaining.load(std::memory_order_acquire) != 0)
              part.promise.set_exception(
                  error ? error
                        : std::make_exception_ptr(Error("factorize_batch: cancelled")));
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, batch, &batch->fused->ranks);
  }

  /// Drains a submit_batch future set, preserving order; rethrows the first
  /// exception after everything has resolved.
  template <typename T>
  [[nodiscard]] static std::vector<TiledQr<T>> collect_batch(
      std::vector<std::future<TiledQr<T>>> futures) {
    std::vector<TiledQr<T>> out;
    out.reserve(futures.size());
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        out.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

  // Declaration order matters: the pool's destructor drains in-flight
  // submissions, which still reference cached plans — so the cache must
  // outlive the pool (destroyed after it). The tuner sits between them: its
  // refinement runs on the pool, so it too must outlive the pool.
  PlanCache cache_;
  tuner::Tuner tuner_;
  runtime::ThreadPool pool_;
};

}  // namespace tiledqr::core
