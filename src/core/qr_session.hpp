// QrSession: the batched / asynchronous serving front end.
//
// A session owns a persistent worker pool and a plan cache and amortizes
// both across many factorizations — the "heavy traffic of repeated, often
// small, QRs" regime where spawn-per-call scheduling overhead dominates
// flops. Independent factorizations become independent DAG submissions on
// the shared pool, so a batch of small QRs interleaves: while one matrix
// drains its critical path, workers steal ready tasks from the others.
//
//   core::QrSession session;                       // pool + plan cache
//   auto fut = session.submit<double>(a.view(), opt);
//   ...                                            // overlap with other work
//   core::TiledQr<double> qr = fut.get();          // rethrows task errors
//
//   auto qrs = session.factorize_batch<double>(views, opt);  // 64 small QRs
//
// Results are bitwise identical to TiledQr<T>::factorize on the same input:
// the same plan, the same kernels, and tasks that write disjoint regions.
#pragma once

#include <future>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/tiled_qr.hpp"
#include "runtime/thread_pool.hpp"

namespace tiledqr::core {

class QrSession {
 public:
  struct Config {
    /// Worker count of the session pool; 0 = TILEDQR_THREADS or hardware
    /// concurrency (the library-wide default rule).
    int threads = 0;
  };

  QrSession() : pool_(0) {}
  explicit QrSession(Config config) : pool_(config.threads) {}

  QrSession(const QrSession&) = delete;
  QrSession& operator=(const QrSession&) = delete;

  /// Asynchronous factorization of a dense matrix (copied into tiled
  /// layout on the calling thread). The future resolves once every kernel
  /// has run; task exceptions surface through future::get().
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(ConstMatrixView<T> a, const Options& opt) {
    return submit(TileMatrix<T>::from_dense(a, opt.nb), opt);
  }

  /// Asynchronous factorization of a tiled matrix (consumed).
  /// `opt.threads > 0` caps how many pool workers this one factorization may
  /// occupy; 0 lets it spread over the whole pool.
  template <typename T>
  [[nodiscard]] std::future<TiledQr<T>> submit(TileMatrix<T> a, Options opt) {
    struct Pending {
      TiledQr<T> qr;
      std::promise<TiledQr<T>> promise;
    };
    const int worker_cap = opt.threads;
    if (opt.threads <= 0) opt.threads = pool_.size();
    auto state = std::make_shared<Pending>();
    std::future<TiledQr<T>> future = state->promise.get_future();
    try {
      state->qr = TiledQr<T>::prepare(std::move(a), opt, cache_);
    } catch (...) {
      state->promise.set_exception(std::current_exception());
      return future;
    }
    const dag::TaskGraph& graph = state->qr.plan_->graph;
    const int ib = state->qr.opt_.ib;
    pool_.submit(
        graph,
        [raw = state.get(), ib](std::int32_t idx) {
          TiledQr<T>& qr = raw->qr;
          run_task_kernels(qr.plan_->graph.tasks[size_t(idx)], qr.a_, qr.t_, qr.t2_, ib);
        },
        [state](std::exception_ptr error) {
          if (error)
            state->promise.set_exception(error);
          else
            state->promise.set_value(std::move(state->qr));
        },
        runtime::SchedulePriority::CriticalPath, worker_cap, state);
    return future;
  }

  /// Factorizes a batch of independent matrices concurrently on the shared
  /// pool (one DAG per matrix, interleaved) and waits for all of them.
  /// Results are in input order; the first task exception is rethrown after
  /// every submission has drained.
  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(std::span<const ConstMatrixView<T>> mats,
                                                        const Options& opt) {
    std::vector<std::future<TiledQr<T>>> futures;
    futures.reserve(mats.size());
    for (const auto& m : mats) futures.push_back(submit(m, opt));
    std::vector<TiledQr<T>> out;
    out.reserve(futures.size());
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        out.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

  template <typename T>
  [[nodiscard]] std::vector<TiledQr<T>> factorize_batch(
      const std::vector<ConstMatrixView<T>>& mats, const Options& opt) {
    return factorize_batch(std::span<const ConstMatrixView<T>>(mats), opt);
  }

  [[nodiscard]] runtime::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] PlanCache& plan_cache() noexcept { return cache_; }
  [[nodiscard]] PlanCache::Stats plan_cache_stats() const { return cache_.stats(); }
  [[nodiscard]] runtime::ThreadPool::Stats pool_stats() const noexcept { return pool_.stats(); }

 private:
  // Declaration order matters: the pool's destructor drains in-flight
  // submissions, which still reference cached plans — so the cache must
  // outlive the pool (destroyed after it).
  PlanCache cache_;
  runtime::ThreadPool pool_;
};

}  // namespace tiledqr::core
