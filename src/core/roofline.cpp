#include "core/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tiledqr::core {

long total_weight_units(int p, int q) {
  // Wide grids route through the LQ dual: the factorization runs on the
  // transposed (reduction) grid, so its total weight is the QR weight there.
  if (p < q) std::swap(p, q);
  return 6L * p * q * q - 2L * q * q * q;
}

double factorization_flops(long m, long n, bool complex_scalar) {
  double dm = double(m), dn = double(n);
  double f = 2.0 * dm * dn * dn - (2.0 / 3.0) * dn * dn * dn;
  return complex_scalar ? 4.0 * f : f;
}

double predicted_rate(double gamma_seq, double total_work, double critical_path,
                      int processors) {
  TILEDQR_CHECK(processors >= 1, "predicted_rate: need at least one processor");
  double limit = std::max(total_work / double(processors), critical_path);
  return limit <= 0.0 ? gamma_seq : gamma_seq * total_work / limit;
}

double predicted_gflops(double gamma_seq_gflops, int p, int q, long cp_units, int processors) {
  double t = double(total_weight_units(p, q));
  return predicted_rate(gamma_seq_gflops, t, double(cp_units), processors);
}

}  // namespace tiledqr::core
