#include <complex>

#include "core/tiled_qr.hpp"

namespace tiledqr::core {

template class TiledQr<float>;
template class TiledQr<double>;
template class TiledQr<std::complex<float>>;
template class TiledQr<std::complex<double>>;

}  // namespace tiledqr::core
