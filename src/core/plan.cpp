#include "core/plan.hpp"

#include "runtime/executor.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

namespace tiledqr::core {

Plan make_plan(int p, int q, const trees::TreeConfig& config, kernels::FactorKind factor) {
  Plan plan;
  if (trees::is_dynamic(config.kind)) {
    auto dyn = config.kind == trees::TreeKind::Asap
                   ? sim::simulate_asap(p, q)
                   : sim::simulate_grasap(p, q, config.grasap_k);
    plan.list = std::move(dyn.list);
  } else {
    plan.list = trees::make_static_elimination_list(p, q, config);
  }
  plan.graph = dag::build_task_graph(p, q, plan.list, factor);
  plan.critical_path = sim::earliest_finish(plan.graph).critical_path;
  plan.ranks = runtime::downward_ranks(plan.graph);
  return plan;
}

FusedPlan make_fused_plan(std::span<const std::shared_ptr<const Plan>> plans) {
  FusedPlan fused;
  size_t total = 0;
  for (const auto& p : plans) total += p->graph.tasks.size();
  fused.graph.tasks.reserve(total);
  fused.ranks.reserve(total);
  fused.parts.reserve(plans.size());
  for (const auto& p : plans) {
    const auto begin = fused.graph.append_offset(p->graph);
    fused.parts.push_back(
        FusedPlan::Part{begin, begin + std::int32_t(p->graph.tasks.size())});
    fused.ranks.insert(fused.ranks.end(), p->ranks.begin(), p->ranks.end());
  }
  return fused;
}

FusedPlan fuse_task_graphs(std::span<const dag::TaskGraph* const> graphs) {
  FusedPlan fused;
  size_t total = 0;
  for (const auto* g : graphs) total += g->tasks.size();
  fused.graph.tasks.reserve(total);
  fused.ranks.reserve(total);
  fused.parts.reserve(graphs.size());
  for (const auto* g : graphs) {
    const auto begin = fused.graph.append_offset(*g);
    fused.parts.push_back(FusedPlan::Part{begin, begin + std::int32_t(g->tasks.size())});
    const auto ranks = runtime::downward_ranks(*g);
    fused.ranks.insert(fused.ranks.end(), ranks.begin(), ranks.end());
  }
  return fused;
}

FusedPlan make_homogeneous_fused_plan(std::shared_ptr<const Plan> base, int count) {
  FusedPlan fused;
  fused.stride = std::int32_t(base->graph.tasks.size());
  fused.count = count;
  fused.base = std::move(base);
  return fused;
}

long plan_critical_path(int p, int q, const trees::TreeConfig& config) {
  return make_plan(p, q, config).critical_path;
}

BestBs best_plasma_bs(int p, int q, trees::KernelFamily family) {
  BestBs best;
  best.critical_path = -1;
  for (int bs = 1; bs <= p; ++bs) {
    trees::TreeConfig c{trees::TreeKind::PlasmaTree, family, bs, 0};
    long cp = sim::critical_path_units(p, q, c);
    if (best.critical_path < 0 || cp < best.critical_path) {
      best.bs = bs;
      best.critical_path = cp;
    }
  }
  return best;
}

}  // namespace tiledqr::core
