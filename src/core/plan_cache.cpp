#include "core/plan_cache.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace tiledqr::core {

namespace {

size_t graph_bytes(const dag::TaskGraph& g) {
  size_t b = g.tasks.capacity() * sizeof(dag::Task);
  for (const auto& t : g.tasks) b += t.succ.capacity() * sizeof(std::int32_t);
  b += g.zero_task.capacity() * sizeof(std::int32_t);
  return b;
}

/// Estimated heap footprint of a cached plan; an accounting figure for the
/// byte budget, not an exact malloc tally.
size_t plan_bytes(const Plan& plan) {
  return sizeof(Plan) + plan.list.capacity() * sizeof(plan.list[0]) + graph_bytes(plan.graph) +
         plan.ranks.capacity() * sizeof(long);
}

size_t fused_plan_bytes(const FusedPlan& fused) {
  // Thin homogeneous plans carry no materialized state; the shared base plan
  // is accounted by its own cache entry, so only the descriptor is charged.
  return sizeof(FusedPlan) + graph_bytes(fused.graph) +
         fused.parts.capacity() * sizeof(FusedPlan::Part) +
         fused.ranks.capacity() * sizeof(long);
}

}  // namespace

PlanCache::PlanCache(size_t byte_budget) : budget_(byte_budget) {
  metrics_source_ = obs::MetricsRegistry::global().register_source(
      obs::MetricsRegistry::global().unique_label("plan_cache"),
      [this](std::vector<obs::Sample>& out) {
        Stats s = stats();
        out.push_back({"hits", double(s.hits)});
        out.push_back({"misses", double(s.misses)});
        out.push_back({"entries", double(s.entries)});
        out.push_back({"fused_hits", double(s.fused_hits)});
        out.push_back({"fused_misses", double(s.fused_misses)});
        out.push_back({"fused_entries", double(s.fused_entries)});
        out.push_back({"evictions", double(s.evictions)});
        out.push_back({"bytes", double(s.bytes)});
        plan_time_.append_samples("plan_time", out);
      });
}

size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // FNV-1a over the key fields; cheap and well-mixed for small int tuples.
  size_t h = 14695981039346656037ull;
  auto mix = [&h](size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_t(k.p));
  mix(size_t(k.q));
  mix(size_t(k.config.kind));
  mix(size_t(k.config.family));
  mix(size_t(k.config.bs));
  mix(size_t(k.config.grasap_k));
  mix(size_t(k.fused_count));
  mix(size_t(k.factor));
  return h;
}

void PlanCache::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

PlanCache::Map::iterator PlanCache::insert_locked(const Key& key, Entry entry) {
  auto [it, inserted] = map_.try_emplace(key, std::move(entry));
  if (inserted) {
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    bytes_ += it->second.bytes;
    ++(key.fused_count == 0 ? base_entries_ : fused_entries_);
    evict_over_budget_locked(&key);
  }
  return it;
}

void PlanCache::evict_over_budget_locked(const Key* keep) {
  if (budget_ == 0) return;
  while (bytes_ > budget_ && !lru_.empty()) {
    const Key& victim = lru_.back();
    if (keep && victim == *keep) break;  // never evict the entry just added
    auto it = map_.find(victim);
    bytes_ -= it->second.bytes;
    --(victim.fused_count == 0 ? base_entries_ : fused_entries_);
    map_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const Plan> PlanCache::get(int p, int q, const trees::TreeConfig& config,
                                           kernels::FactorKind factor) {
  return get_impl(p, q, config, factor, /*count_stats=*/true);
}

std::shared_ptr<const Plan> PlanCache::get_impl(int p, int q, const trees::TreeConfig& config,
                                                kernels::FactorKind factor, bool count_stats) {
  const Key key{p, q, config, 0, factor};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (count_stats) ++hits_;
      touch_locked(it->second);
      return it->second.plan;
    }
  }
  // Plan outside the lock: planning a big grid must not block hits on other
  // shapes. Concurrent misses of the same key each plan; first insert wins.
  const std::int64_t t0 = obs::now_ns();
  auto plan = std::make_shared<const Plan>(make_plan(p, q, config, factor));
  plan_time_.record_ns(obs::now_ns() - t0);
  Entry entry;
  entry.bytes = plan_bytes(*plan);
  entry.plan = std::move(plan);
  std::lock_guard<std::mutex> lock(mu_);
  if (count_stats) ++misses_;
  return insert_locked(key, std::move(entry))->second.plan;
}

std::shared_ptr<const FusedPlan> PlanCache::get_fused(int p, int q,
                                                      const trees::TreeConfig& config,
                                                      int count, kernels::FactorKind factor) {
  TILEDQR_CHECK(count >= 1, "PlanCache::get_fused: count must be >= 1");
  const Key key{p, q, config, count, factor};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++fused_hits_;
      touch_locked(it->second);
      return it->second.fused;
    }
  }
  // Homogeneous by construction (count copies of one base plan), so the
  // fused entry is a thin stride descriptor sharing the base plan — not a
  // materialized count x base graph. The pool replicates at schedule time.
  auto base = get_impl(p, q, config, factor, /*count_stats=*/false);
  const std::int64_t t0 = obs::now_ns();
  auto fused =
      std::make_shared<const FusedPlan>(make_homogeneous_fused_plan(std::move(base), count));
  plan_time_.record_ns(obs::now_ns() - t0);
  Entry entry;
  entry.bytes = fused_plan_bytes(*fused);
  entry.fused = std::move(fused);
  std::lock_guard<std::mutex> lock(mu_);
  ++fused_misses_;
  return insert_locked(key, std::move(entry))->second.fused;
}

void PlanCache::set_byte_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  evict_over_budget_locked(nullptr);
}

size_t PlanCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.fused_hits = fused_hits_;
  s.fused_misses = fused_misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = base_entries_;
  s.fused_entries = fused_entries_;
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  base_entries_ = 0;
  fused_entries_ = 0;
  hits_ = 0;
  misses_ = 0;
  fused_hits_ = 0;
  fused_misses_ = 0;
  evictions_ = 0;
}

PlanCache& PlanCache::default_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace tiledqr::core
