#include "core/plan_cache.hpp"

namespace tiledqr::core {

size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  // FNV-1a over the key fields; cheap and well-mixed for small int tuples.
  size_t h = 14695981039346656037ull;
  auto mix = [&h](size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_t(k.p));
  mix(size_t(k.q));
  mix(size_t(k.config.kind));
  mix(size_t(k.config.family));
  mix(size_t(k.config.bs));
  mix(size_t(k.config.grasap_k));
  return h;
}

std::shared_ptr<const Plan> PlanCache::get(int p, int q, const trees::TreeConfig& config) {
  const Key key{p, q, config};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Plan outside the lock: planning a big grid must not block hits on other
  // shapes. Concurrent misses of the same key each plan; first insert wins.
  auto plan = std::make_shared<const Plan>(make_plan(p, q, config));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(key, std::move(plan));
  ++misses_;
  return it->second;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, map_.size()};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

PlanCache& PlanCache::default_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace tiledqr::core
