// Planning: turn an algorithm selection (TreeConfig) into an elimination
// list + task DAG + critical path, handling both static algorithms
// (FlatTree, BinaryTree, Fibonacci, Greedy, PlasmaTree) and dynamic ones
// (Asap, Grasap), whose lists come from the simulator.
#pragma once

#include "dag/task_graph.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::core {

struct Plan {
  trees::EliminationList list;
  dag::TaskGraph graph;
  long critical_path = 0;  ///< Table 1 units (n_b^3/3 flops)
};

/// Builds the full plan for a p x q tile grid.
[[nodiscard]] Plan make_plan(int p, int q, const trees::TreeConfig& config);

/// Critical path only. Builds the full plan internally (it is not cheaper
/// than make_plan); provided for readability at call sites that sweep many
/// configurations and only need the critical-path length.
[[nodiscard]] long plan_critical_path(int p, int q, const trees::TreeConfig& config);

/// Searches PlasmaTree domain sizes 1..p and returns the best (BS, critical
/// path) pair — the paper's exhaustive-search composite.
struct BestBs {
  int bs = 1;
  long critical_path = 0;
};
[[nodiscard]] BestBs best_plasma_bs(int p, int q, trees::KernelFamily family);

}  // namespace tiledqr::core
