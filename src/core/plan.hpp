// Planning: turn an algorithm selection (TreeConfig) into an elimination
// list + task DAG + critical path, handling both static algorithms
// (FlatTree, BinaryTree, Fibonacci, Greedy, PlasmaTree) and dynamic ones
// (Asap, Grasap), whose lists come from the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dag/task_graph.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::core {

struct Plan {
  trees::EliminationList list;
  dag::TaskGraph graph;
  long critical_path = 0;  ///< Table 1 units (n_b^3/3 flops)
  /// Cached downward ranks (longest weighted path to a sink) of every task —
  /// the CriticalPath scheduling keys. Computed once at planning time so
  /// repeated submissions of a cached plan skip the rank sweep entirely.
  std::vector<long> ranks;

  /// Which factorization this plan describes. For LQ the graph lives on the
  /// reduction grid (the tile grid of A^H).
  [[nodiscard]] kernels::FactorKind factor() const noexcept { return graph.factor; }
};

/// A batch of independent plans fused into one scheduling object: the batch
/// pays one submission (one deal of the initial ready set, one wake, one
/// completion walk) instead of one per matrix, and the scheduler overlaps the
/// tail of one factorization with the heads of the others.
///
/// Two representations behind one accessor API:
///
///   * **homogeneous** (`make_homogeneous_fused_plan`): every part is the
///     same base plan, so nothing is materialized — the fused plan is just
///     {base, count} and global task ids are stride arithmetic
///     (`global = part * stride + local`). The pool schedules it by
///     replicating the base graph `copies()` times (ThreadPool submit/append
///     `copies` parameter), so a batch of 64 costs the same plan memory as a
///     batch of 1;
///   * **heterogeneous** (`make_fused_plan`): the disjoint union of the
///     per-matrix DAGs is materialized with successor indices offset;
///     `parts[i]` is the half-open task-index range of source plan i, and
///     `ranks` concatenates the per-plan rank vectors (downward ranks never
///     cross components, so the concatenation *is* the fused graph's rank
///     vector).
///
/// Consumers address tasks by *global* index in both representations:
/// `part_of`/`task` translate, `component_graph`/`component_ranks`/`copies`
/// are what gets handed to the pool.
struct FusedPlan {
  // Heterogeneous (materialized) state; empty for homogeneous plans.
  dag::TaskGraph graph;
  struct Part {
    std::int32_t begin = 0;
    std::int32_t end = 0;
  };
  std::vector<Part> parts;
  std::vector<long> ranks;

  // Homogeneous (thin) state; `base` non-null selects this representation.
  std::shared_ptr<const Plan> base;
  int count = 0;
  std::int32_t stride = 0;  ///< tasks per part (= base graph size)

  [[nodiscard]] bool homogeneous() const noexcept { return base != nullptr; }

  /// The graph to submit once per component — the base graph (scheduled
  /// `copies()` times by the pool) or the materialized union.
  [[nodiscard]] const dag::TaskGraph& component_graph() const noexcept {
    return base ? base->graph : graph;
  }
  /// Scheduling keys matching component_graph(), one per task.
  [[nodiscard]] const std::vector<long>& component_ranks() const noexcept {
    return base ? base->ranks : ranks;
  }
  /// Replication factor to pass alongside component_graph().
  [[nodiscard]] int copies() const noexcept { return base ? count : 1; }

  [[nodiscard]] int part_count() const noexcept {
    return base ? count : int(parts.size());
  }
  [[nodiscard]] std::int32_t part_size(int i) const noexcept {
    return base ? stride : parts[size_t(i)].end - parts[size_t(i)].begin;
  }
  [[nodiscard]] std::int64_t total_tasks() const noexcept {
    return base ? std::int64_t(count) * stride : std::int64_t(graph.tasks.size());
  }
  /// The task at a *global* index (what the pool hands the body).
  [[nodiscard]] const dag::Task& task(std::int32_t global) const noexcept {
    return base ? base->graph.tasks[std::size_t(global % stride)]
                : graph.tasks[std::size_t(global)];
  }

  /// Index of the part containing `task` — division for homogeneous plans,
  /// binary search over `parts` otherwise.
  [[nodiscard]] int part_of(std::int32_t task) const noexcept {
    if (base) return int(task / stride);
    int lo = 0, hi = int(parts.size()) - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (task < parts[size_t(mid)].end)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }
};

/// Builds the full plan for a p x q tile grid. For FactorKind::LQ, (p, q)
/// is the *reduction* grid — the tile grid of A^H, with p >= q — so every
/// tree generator and simulator runs unchanged; only the emitted kernel
/// kinds differ (the LQ duals).
[[nodiscard]] Plan make_plan(int p, int q, const trees::TreeConfig& config,
                             kernels::FactorKind factor = kernels::FactorKind::QR);

/// Fuses a batch of plans (in order) into one FusedPlan, materializing the
/// disjoint-union graph. The plans are typically shared cache entries;
/// heterogeneous shapes are fine. Homogeneous batches should prefer
/// make_homogeneous_fused_plan (O(1) memory instead of count x base).
[[nodiscard]] FusedPlan make_fused_plan(std::span<const std::shared_ptr<const Plan>> plans);

/// Thin fused plan for `count` parts that all share `base`: no graph is
/// materialized — part ranges are stride arithmetic over the base plan.
[[nodiscard]] FusedPlan make_homogeneous_fused_plan(std::shared_ptr<const Plan> base, int count);

/// Fuses ad-hoc task graphs (e.g. per-request solve apply-stages) into one
/// scheduling component, carrying scheduling ranks along: each graph's
/// downward ranks are computed and concatenated — ranks never cross
/// components, so the concatenation is the fused graph's rank vector. The
/// result reuses FusedPlan's heterogeneous (materialized) representation;
/// `parts` gives each source graph's global task-index range.
[[nodiscard]] FusedPlan fuse_task_graphs(std::span<const dag::TaskGraph* const> graphs);

/// Critical path only. Builds the full plan internally (it is not cheaper
/// than make_plan); provided for readability at call sites that sweep many
/// configurations and only need the critical-path length.
[[nodiscard]] long plan_critical_path(int p, int q, const trees::TreeConfig& config);

/// Searches PlasmaTree domain sizes 1..p and returns the best (BS, critical
/// path) pair — the paper's exhaustive-search composite.
struct BestBs {
  int bs = 1;
  long critical_path = 0;
};
[[nodiscard]] BestBs best_plasma_bs(int p, int q, trees::KernelFamily family);

}  // namespace tiledqr::core
