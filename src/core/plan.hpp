// Planning: turn an algorithm selection (TreeConfig) into an elimination
// list + task DAG + critical path, handling both static algorithms
// (FlatTree, BinaryTree, Fibonacci, Greedy, PlasmaTree) and dynamic ones
// (Asap, Grasap), whose lists come from the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dag/task_graph.hpp"
#include "trees/elimination.hpp"

namespace tiledqr::core {

struct Plan {
  trees::EliminationList list;
  dag::TaskGraph graph;
  long critical_path = 0;  ///< Table 1 units (n_b^3/3 flops)
  /// Cached downward ranks (longest weighted path to a sink) of every task —
  /// the CriticalPath scheduling keys. Computed once at planning time so
  /// repeated submissions of a cached plan skip the rank sweep entirely.
  std::vector<long> ranks;
};

/// A batch of independent plans fused into one scheduling graph: the disjoint
/// union of the per-matrix DAGs, submitted to the pool as a single object so
/// a batch pays one submission (one deal of the initial ready set, one wake,
/// one completion walk) instead of one per matrix, and the scheduler overlaps
/// the tail of one factorization with the heads of the others.
///
/// `graph` holds every component's tasks with successor indices offset;
/// `parts[i]` is the half-open task-index range of source plan i; `ranks` is
/// the concatenation of the per-plan rank vectors (downward ranks never
/// cross components, so the concatenation *is* the fused graph's rank
/// vector).
struct FusedPlan {
  dag::TaskGraph graph;
  struct Part {
    std::int32_t begin = 0;
    std::int32_t end = 0;
  };
  std::vector<Part> parts;
  std::vector<long> ranks;

  /// Index of the part containing `task` (binary search over `parts`).
  [[nodiscard]] int part_of(std::int32_t task) const noexcept {
    int lo = 0, hi = int(parts.size()) - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (task < parts[size_t(mid)].end)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }
};

/// Builds the full plan for a p x q tile grid.
[[nodiscard]] Plan make_plan(int p, int q, const trees::TreeConfig& config);

/// Fuses a batch of plans (in order) into one FusedPlan. The plans are
/// typically shared cache entries; heterogeneous shapes are fine.
[[nodiscard]] FusedPlan make_fused_plan(std::span<const std::shared_ptr<const Plan>> plans);

/// Critical path only. Builds the full plan internally (it is not cheaper
/// than make_plan); provided for readability at call sites that sweep many
/// configurations and only need the critical-path length.
[[nodiscard]] long plan_critical_path(int p, int q, const trees::TreeConfig& config);

/// Searches PlasmaTree domain sizes 1..p and returns the best (BS, critical
/// path) pair — the paper's exhaustive-search composite.
struct BestBs {
  int bs = 1;
  long critical_path = 0;
};
[[nodiscard]] BestBs best_plasma_bs(int p, int q, trees::KernelFamily family);

}  // namespace tiledqr::core
