// PlanCache: memoized planning for the serving regime.
//
// A Plan (elimination list + task DAG + critical path) depends only on the
// tile grid shape and the algorithm selection — never on matrix values — and
// planning is deterministic even for the "dynamic" trees (Asap/Grasap),
// whose lists come from the deterministic weighted simulator. Repeated
// factorizations of the same shape can therefore share one immutable Plan:
// the cache turns per-call elimination-list generation + DAG construction
// into a hash lookup, which is what makes many small repeated QRs cheap
// (scheduling overhead, not flops, dominates there — paper §2.3 / ROADMAP).
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/plan.hpp"

namespace tiledqr::core {

/// Thread-safe memoizing cache of Plans keyed on (p, q, TreeConfig).
/// Returned plans are shared and immutable; entries live until clear().
class PlanCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    size_t entries = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      long total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  /// Returns the cached plan for the shape, planning on first use. Safe to
  /// call concurrently; on a concurrent miss of the same key one plan wins
  /// and the others are discarded (planning is outside the lock).
  [[nodiscard]] std::shared_ptr<const Plan> get(int p, int q, const trees::TreeConfig& config);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Process-wide cache consulted by TiledQr<T>::factorize.
  static PlanCache& default_cache();

 private:
  struct Key {
    int p;
    int q;
    trees::TreeConfig config;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Plan>, KeyHash> map_;
  long hits_ = 0;
  long misses_ = 0;
};

}  // namespace tiledqr::core
