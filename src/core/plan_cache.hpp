// PlanCache: memoized planning for the serving regime.
//
// A Plan (elimination list + task DAG + critical path + scheduling ranks)
// depends only on the tile grid shape and the algorithm selection — never on
// matrix values — and planning is deterministic even for the "dynamic" trees
// (Asap/Grasap), whose lists come from the deterministic weighted simulator.
// Repeated factorizations of the same shape can therefore share one immutable
// Plan: the cache turns per-call elimination-list generation + DAG
// construction into a hash lookup, which is what makes many small repeated
// QRs cheap (scheduling overhead, not flops, dominates there — paper §2.3 /
// ROADMAP).
//
// The cache also memoizes *fused* plans — the disjoint union of `count`
// copies of a base plan's DAG — so a homogeneous factorize_batch pays the
// graph concatenation once per (shape, count) and every later batch of that
// shape is a single hash lookup + one pool submission.
//
// Entries are LRU-ordered and can be bounded by a byte budget
// (set_byte_budget), sized by an estimate of each plan's heap footprint.
// The budget defaults to unbounded, which is fine for realistic shape
// diversity; bound it before exposing the cache to untrusted shape streams.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/plan.hpp"
#include "obs/metrics.hpp"

namespace tiledqr::core {

/// Thread-safe memoizing cache of Plans keyed on (factor, p, q, TreeConfig)
/// and of FusedPlans keyed on (factor, p, q, TreeConfig, count) — QR and LQ
/// plans of the same reduction grid never collide. Returned plans are shared
/// and immutable; entries live until clear() or LRU eviction under a byte
/// budget.
class PlanCache {
 public:
  struct Stats {
    long hits = 0;          ///< base-plan lookups served from the cache
    long misses = 0;        ///< base-plan lookups that had to plan
    size_t entries = 0;     ///< live base-plan entries
    long fused_hits = 0;    ///< fused-plan lookups served from the cache
    long fused_misses = 0;  ///< fused-plan lookups that had to concatenate
    size_t fused_entries = 0;  ///< live fused-plan entries
    long evictions = 0;     ///< entries dropped to fit the byte budget
    size_t bytes = 0;       ///< estimated heap footprint of live entries

    [[nodiscard]] double hit_rate() const noexcept {
      long total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  /// `byte_budget == 0` (the default) means unbounded. Registers the cache
  /// as a metrics source ("plan_cache<N>") in the global registry.
  explicit PlanCache(size_t byte_budget = 0);

  /// Returns the cached plan for the shape, planning on first use. Safe to
  /// call concurrently; on a concurrent miss of the same key one plan wins
  /// and the others are discarded (planning is outside the lock). (p, q) is
  /// the reduction grid for LQ plans.
  [[nodiscard]] std::shared_ptr<const Plan> get(
      int p, int q, const trees::TreeConfig& config,
      kernels::FactorKind factor = kernels::FactorKind::QR);

  /// Returns the cached fusion of `count` copies of the (p, q, config) base
  /// plan — the scheduling object for a homogeneous batch. count >= 1.
  [[nodiscard]] std::shared_ptr<const FusedPlan> get_fused(
      int p, int q, const trees::TreeConfig& config, int count,
      kernels::FactorKind factor = kernels::FactorKind::QR);

  /// Caps the estimated heap footprint of cached entries; least-recently-
  /// used entries are evicted (immediately, and on later inserts) until the
  /// cache fits. The most recently inserted entry is never evicted, so a
  /// single over-budget plan still caches. 0 = unbounded.
  void set_byte_budget(size_t bytes);
  [[nodiscard]] size_t byte_budget() const;

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Process-wide cache consulted by TiledQr<T>::factorize.
  static PlanCache& default_cache();

 private:
  struct Key {
    int p;
    int q;
    trees::TreeConfig config;
    int fused_count;  ///< 0 = base plan, >= 1 = fused plan of that many parts
    kernels::FactorKind factor;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    std::shared_ptr<const Plan> plan;        ///< set iff key.fused_count == 0
    std::shared_ptr<const FusedPlan> fused;  ///< set iff key.fused_count >= 1
    size_t bytes = 0;
    std::list<Key>::iterator lru;  ///< position in lru_ (front = most recent)
  };

  using Map = std::unordered_map<Key, Entry, KeyHash>;

  void touch_locked(Entry& entry);
  Map::iterator insert_locked(const Key& key, Entry entry);
  void evict_over_budget_locked(const Key* keep);
  /// Base-plan lookup; `count_stats == false` for internal fetches (e.g.
  /// building a fused plan) so client-facing hit/miss accounting only
  /// reflects client calls.
  [[nodiscard]] std::shared_ptr<const Plan> get_impl(int p, int q,
                                                     const trees::TreeConfig& config,
                                                     kernels::FactorKind factor,
                                                     bool count_stats);

  mutable std::mutex mu_;
  Map map_;
  std::list<Key> lru_;
  size_t budget_ = 0;
  size_t bytes_ = 0;
  size_t base_entries_ = 0;
  size_t fused_entries_ = 0;
  long hits_ = 0;
  long misses_ = 0;
  long fused_hits_ = 0;
  long fused_misses_ = 0;
  long evictions_ = 0;
  /// Wall time spent planning on misses (make_plan/make_fused_plan); lock-
  /// free, recorded outside mu_.
  obs::Histogram plan_time_;
  /// Declared last: deregistered before the fields its callback reads die.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tiledqr::core
