// Chase–Lev lock-free work-stealing deque.
//
// Single-owner double-ended queue of {pointer, int32} entries — the Chase–Lev
// algorithm in the C11 weak-memory formulation of Lê, Pop, Cohen & Nardelli
// ("Correct and Efficient Work-Stealing for Weak Memory Models", PPoPP'13).
// The owner pushes and pops at the bottom (LIFO, relaxed fast path with one
// fence); any other thread steals from the top (FIFO), paying one CAS. The
// only owner-side CAS is the contended race against a thief for the last
// element.
//
// Entries are stored in per-field atomic cells, so every shared access is an
// atomic operation (data-race-free by construction — TSan never sees a plain
// racing access). A torn entry (pointer from one logical slot, tag from
// another) can never be *observed*: a cell is only overwritten by the owner
// after `top` has advanced past its logical index, and a thief (or the owner
// on the last element) that read a recycled slot then fails its CAS on `top`
// and discards what it read. The circular array grows by doubling; old
// arrays are retired to a chain and freed with the deque (an in-flight steal
// may still be reading one), which bounds retired memory by ~2x the peak.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

// ThreadSanitizer does not model standalone atomic_thread_fence (GCC even
// warns -Wtsan), so the fence-published bottom store would carry no
// TSan-visible happens-before edge to a thief's acquire load — every steal
// would be reported as a race between the pushed task's prior writes and the
// thief's reads. Under TSan we fold each fence into the adjacent atomic
// operation instead (release store / seq_cst accesses) — strictly stronger
// ordering, so it cannot mask a real bug; normal builds keep the exact
// PPoPP'13 fence formulation.
#if defined(__SANITIZE_THREAD__)
#define TILEDQR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TILEDQR_TSAN 1
#endif
#endif
#ifndef TILEDQR_TSAN
#define TILEDQR_TSAN 0
#endif

namespace tiledqr::runtime {

template <typename P>
class ChaseLevDeque {
 public:
  /// What the deque holds: a pointer plus a small tag (the pool stores
  /// {Component*, task index}). Both fields live in per-cell atomics.
  struct Entry {
    P* ptr = nullptr;
    std::int32_t tag = 0;
  };

  enum class Steal {
    Ok,     ///< entry removed and returned
    Empty,  ///< nothing to steal at probe time
    Lost    ///< lost the top CAS to a racing thief/owner — retry is fair game
  };

  /// `capacity` is rounded up to a power of two; the deque grows on demand.
  explicit ChaseLevDeque(std::int64_t capacity = 64) {
    std::int64_t cap = 1;
    while (cap < capacity) cap <<= 1;
    owned_ = std::make_unique<Array>(cap);
    array_.store(owned_.get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Never fails; grows the array when full.
  void push(Entry e) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->cap - 1) a = grow(a, b, t);
    a->put(b, e);
#if TILEDQR_TSAN
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: LIFO pop from the bottom. Returns false when empty (a lost
  /// last-element race against a thief reads as empty — the thief has it).
  bool pop(Entry& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
#if TILEDQR_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = a->get(b);
    if (t == b) {
      // Last element: the CAS on top decides against a racing thief.
      const bool won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                    std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: FIFO steal from the top.
  Steal steal(Entry& out) {
#if TILEDQR_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return Steal::Empty;
    Array* a = array_.load(std::memory_order_acquire);
    out = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return Steal::Lost;
    return Steal::Ok;
  }

  /// Racy size estimate (never negative); exact when only the owner moves.
  [[nodiscard]] std::int64_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct Cell {
    std::atomic<P*> ptr{nullptr};
    std::atomic<std::int32_t> tag{0};
  };
  struct Array {
    explicit Array(std::int64_t n) : cap(n), mask(n - 1), cells(new Cell[std::size_t(n)]) {}
    const std::int64_t cap;
    const std::int64_t mask;
    std::unique_ptr<Cell[]> cells;
    /// Previous (smaller) array, kept alive until the deque dies: a thief
    /// holding the old pointer may still read cells from it, and the values
    /// it finds there are the same logical values grow() copied forward.
    std::unique_ptr<Array> retired_prev;

    void put(std::int64_t i, Entry e) noexcept {
      Cell& c = cells[std::size_t(i & mask)];
      c.ptr.store(e.ptr, std::memory_order_relaxed);
      c.tag.store(e.tag, std::memory_order_relaxed);
    }
    [[nodiscard]] Entry get(std::int64_t i) const noexcept {
      const Cell& c = cells[std::size_t(i & mask)];
      return Entry{c.ptr.load(std::memory_order_relaxed), c.tag.load(std::memory_order_relaxed)};
    }
  };

  /// Owner only: double the array, copying the live logical range [t, b).
  Array* grow(Array* a, std::int64_t b, std::int64_t t) {
    auto bigger = std::make_unique<Array>(a->cap * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    bigger->retired_prev = std::move(owned_);
    owned_ = std::move(bigger);
    Array* raw = owned_.get();
    array_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  std::unique_ptr<Array> owned_;  ///< current array; owns the retired chain
};

}  // namespace tiledqr::runtime
