// Dataflow executor: runs a task DAG on a pool of worker threads, firing
// each task as soon as its dependencies resolve (PLASMA/QUARK's execution
// model). Ready tasks are dispatched in DAG-emission order, which follows
// the elimination list — the same static-list/dynamic-execution scheme the
// paper describes in §2.3.
#pragma once

#include <functional>

#include "dag/task_graph.hpp"

namespace tiledqr::runtime {

/// Dispatch order among simultaneously-ready tasks.
enum class SchedulePriority {
  /// Longest weighted path to a sink first (keeps the critical path moving;
  /// the default, and what matters in the cp-bound regime of tall grids).
  CriticalPath,
  /// DAG-emission order (the elimination-list order).
  EmissionOrder,
};

/// Runs `body(task_index)` for every task in `g`, respecting dependencies.
///
/// threads == 1 executes inline on the calling thread (deterministic order
/// given the priority rule). threads > 1 submits the DAG to the process-wide
/// persistent worker pool (ThreadPool::default_pool()), capped to `threads`
/// concurrent workers — unless `threads` exceeds the pool size, in which
/// case the spawn path runs so the exact concurrency is still honored
/// (scaling sweeps past the core count oversubscribe, as before). Any
/// exception thrown by a task body is captured and
/// rethrown on the calling thread after the DAG drains. Because tasks only
/// read their declared inputs, results are bitwise identical for any thread
/// count and priority rule.
///
/// `keys`, when non-null, supplies precomputed scheduling keys (one per
/// task, higher runs first) and must outlive the call; the priority rule is
/// then not consulted. Cached plans pass their `ranks` here so repeated
/// submissions skip the rank sweep.
void execute(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
             int threads, SchedulePriority priority = SchedulePriority::CriticalPath,
             const std::vector<long>* keys = nullptr);

/// The pre-pool execution path: spawns `threads` fresh std::threads around a
/// central priority queue and joins them before returning. Kept as the
/// spawn-per-call baseline for the serving benchmarks; prefer execute().
void execute_spawn(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                   int threads, SchedulePriority priority = SchedulePriority::CriticalPath,
                   const std::vector<long>* keys = nullptr);

/// Scheduling keys for a priority rule: CriticalPath uses downward_ranks(),
/// EmissionOrder gives earlier tasks larger keys. Higher key = run first.
std::vector<long> make_priority_keys(const dag::TaskGraph& g, SchedulePriority priority);

/// Longest weighted path from each task to a sink (Table 1 weights); the
/// ranks used by SchedulePriority::CriticalPath.
std::vector<long> downward_ranks(const dag::TaskGraph& g);

/// Statistics from an instrumented run (used by the scaling ablation).
struct ExecutionStats {
  double seconds = 0.0;
  long tasks = 0;
};

/// Like execute(), but reports wall time.
ExecutionStats execute_timed(const dag::TaskGraph& g,
                             const std::function<void(std::int32_t)>& body, int threads);

}  // namespace tiledqr::runtime
