// Persistent worker pool for the serving regime.
//
// The spawn-per-call executor (runtime::execute_spawn) pays a thread
// create/join round trip on every factorization — invisible for one big QR,
// dominant for the "many repeated small factorizations" workload the ROADMAP
// targets. ThreadPool keeps the workers alive across factorizations:
//
//   * one ready deque per worker, guarded by a small per-worker mutex;
//     owners pop LIFO (locality), idle workers steal FIFO from victims;
//   * the initial ready set of a DAG is dealt round-robin across workers in
//     descending critical-path priority (the paper's scheduling rule), so
//     every worker starts on the most urgent task it holds;
//   * several DAGs can be in flight at once (the batched serving API
//     interleaves them); each submission can be capped to a subset of
//     workers so `execute(g, body, threads)` keeps its exact-concurrency
//     semantics for the scaling ablations.
//
// Tasks only write their declared outputs, so results are bitwise identical
// to the sequential replay for any worker count, steal order, or pool reuse
// pattern.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/executor.hpp"

namespace tiledqr::runtime {

class ThreadPool {
 public:
  /// Counters since construction (monotone; read with stats()).
  struct Stats {
    long graphs_completed = 0;  ///< DAG submissions fully retired
    long tasks_executed = 0;    ///< task bodies actually run
    long tasks_stolen = 0;      ///< tasks taken from another worker's deque
  };

  /// `threads == 0` resolves to default_thread_count() (TILEDQR_THREADS or
  /// hardware concurrency), the same rule the rest of the library uses.
  explicit ThreadPool(int threads = 0);

  /// Drains outstanding submissions, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] int size() const noexcept { return int(workers_.size()); }

  /// Asynchronous DAG submission. `on_complete` runs on the worker that
  /// retires the last task, with the first task exception (or nullptr on
  /// success). `g` and everything `body` touches must stay alive until then;
  /// `keepalive` is held by the submission for exactly that purpose and
  /// released after `on_complete` returns. `max_workers <= 0` means all
  /// workers; otherwise the submission is confined to that many workers.
  /// `keys`, when non-null, supplies precomputed scheduling keys (one per
  /// task, higher runs first) borrowed for the submission's lifetime — the
  /// same contract as `g` — and the priority rule is not consulted; cached
  /// plans pass their rank vector here to skip the per-submission rank sweep.
  void submit(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
              std::function<void(std::exception_ptr)> on_complete,
              SchedulePriority priority = SchedulePriority::CriticalPath, int max_workers = 0,
              std::shared_ptr<const void> keepalive = nullptr,
              const std::vector<long>* keys = nullptr);

  /// Future-returning flavor of submit().
  [[nodiscard]] std::future<void> submit(const dag::TaskGraph& g,
                                         std::function<void(std::int32_t)> body,
                                         SchedulePriority priority = SchedulePriority::CriticalPath,
                                         int max_workers = 0,
                                         std::shared_ptr<const void> keepalive = nullptr,
                                         const std::vector<long>* keys = nullptr);

  /// Blocking convenience: submit and wait; rethrows the first task
  /// exception. Safe to call from inside a task body running on this pool —
  /// the calling worker helps execute instead of deadlocking.
  void run(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
           SchedulePriority priority = SchedulePriority::CriticalPath, int max_workers = 0,
           const std::vector<long>* keys = nullptr);

  [[nodiscard]] Stats stats() const noexcept;

  /// Process-wide shared pool, lazily created with default_thread_count()
  /// workers; what runtime::execute() submits to.
  static ThreadPool& default_pool();

 private:
  struct Submission;
  struct Item;
  struct Worker;

  std::shared_ptr<Submission> submit_impl(const dag::TaskGraph& g,
                                          std::function<void(std::int32_t)> body,
                                          std::function<void(std::exception_ptr)> on_complete,
                                          SchedulePriority priority, int max_workers,
                                          std::shared_ptr<const void> keepalive,
                                          const std::vector<long>* keys);
  void worker_main(int wid);
  bool try_run_one(int wid);
  void run_item(int wid, Item item);
  void signal_work();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake machinery: epoch_ bumps on every push; idle workers sleep on
  // sleep_cv_ until the epoch moves past the value they last scanned at.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<long> epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};

  std::atomic<long> active_submissions_{0};
  /// Rotates the worker-set anchor (unsigned: wraps harmlessly in
  /// long-lived serving processes).
  std::atomic<unsigned> next_start_{0};

  // Stats (relaxed counters).
  std::atomic<long> graphs_completed_{0};
  std::atomic<long> tasks_executed_{0};
  std::atomic<long> tasks_stolen_{0};
};

}  // namespace tiledqr::runtime
