// Persistent worker pool for the serving regime.
//
// The spawn-per-call executor (runtime::execute_spawn) pays a thread
// create/join round trip on every factorization — invisible for one big QR,
// dominant for the "many repeated small factorizations" workload the ROADMAP
// targets. ThreadPool keeps the workers alive across factorizations:
//
//   * each worker owns a fixed set of *lanes* — one Chase–Lev lock-free
//     deque per live submission it holds work for. The owner pushes and
//     pops LIFO at the bottom (locality, relaxed fast path); idle workers
//     steal FIFO from the top, paying one CAS — the steal path takes no
//     locks. A small per-worker mutexed *inbox* is the cross-thread
//     mailbox: dealers (submit/append from any thread) push there and the
//     owner drains it into its lanes, preserving the single-producer
//     invariant Chase–Lev requires;
//   * the initial ready set of a DAG is dealt round-robin across workers in
//     descending critical-path priority (the paper's scheduling rule), so
//     every worker starts on the most urgent task it holds — except stream
//     components under component-affine dealing (below);
//   * several DAGs can be in flight at once (the batched serving API
//     interleaves them); each submission can be capped to a subset of
//     workers so `execute(g, body, threads)` keeps its exact-concurrency
//     semantics for the scaling ablations.
//
// Locality (component-affine stealing, TILEDQR_AFFINE_STEAL, default on):
// a *stream* component is dealt whole to one home worker — rotating across
// the worker set per component, or pinned by the stream's affinity hint —
// so one request's tiles stay in one core's cache; siblings steal across
// components only when their own lanes run dry. One-shot submissions keep
// the round-robin source spread: a single DAG's parallelism *is* the spread.
// TILEDQR_PIN=1 additionally pins worker threads to cores
// (pthread_setaffinity_np; a graceful no-op off Linux).
//
// A submission is a set of DAG *components*. The one-shot submit() carries
// exactly one and closes immediately; a Stream (open_stream) stays open and
// grafts new components onto the live submission's ready set while workers
// are still draining earlier ones — no stop-the-world barrier. Components
// are generation-counted: each append bumps the submission's generation, the
// component records the generation it was born in, and the component list is
// append-only with stable addresses, so workers racing on items of an older
// generation never observe a ready set being rebuilt under them. A component
// may be *replicated* (`copies`): the same base graph scheduled copies times
// with task ids offset by the graph size — how a homogeneous fused batch is
// scheduled without ever materializing count x base-plan bytes. Completion
// is per component (its own sentinel counter and callback); the submission
// itself retires when it is closed and every generation has drained.
//
// Fairness (serving QoS): several live streams share the pool, and with one
// LIFO deque per worker a chatty client's continuous grafts would keep
// landing on top, starving a quieter stream's items at the bottom. Two
// mechanisms keep concurrent streams interleaved: (1) stream components are
// dealt from a pool-level round-robin anchor shared by all streams, so one
// client's burst shifts the next client's graft past the workers it just
// loaded; (2) each worker keeps one lane per live submission and rotates
// round-robin across lanes when popping, so every submission visible to a
// worker makes progress regardless of graft arrival order.
//
// Tasks only write their declared outputs, so results are bitwise identical
// to the sequential replay for any worker count, steal order, pinning, or
// affinity setting.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/executor.hpp"

namespace tiledqr::runtime {

class ThreadPool {
  // Scheduling internals, declared up front so the public Stream handle can
  // name them (definitions live in the .cpp).
  struct Component;
  struct Submission;
  struct Worker;

 public:
  /// Counters since construction. stats() returns a *coherent* snapshot:
  /// every underlying counter is monotone and the reader re-reads until two
  /// consecutive passes agree, so the returned struct reflects one instant
  /// (e.g. tasks_stolen never exceeds tasks_executed by a torn read).
  /// Power-of-two steal-latency buckets: bucket b counts successful steals
  /// whose scan latency (entering the steal scan -> item acquired) fell in
  /// [2^b, 2^(b+1)) ns; the last bucket absorbs the tail (>= 8ms).
  static constexpr int kStealLatencyBuckets = 24;

  struct Stats {
    long graphs_completed = 0;  ///< DAG components fully retired
    long tasks_executed = 0;    ///< task bodies actually run
    long tasks_stolen = 0;      ///< tasks taken from another worker's lanes/inbox
    long streams_opened = 0;    ///< streaming submissions created
    long streams_live = 0;  ///< gauge: streams opened and neither closed nor
                            ///< abandoned (all handles dropped without close)
    // Steal-path contention and locality attribution (summed over workers).
    long steal_cas_retries = 0;   ///< lost top-CAS races while stealing
    long empty_steal_probes = 0;  ///< full victim sweeps that found nothing
    long tasks_home = 0;     ///< tasks run on their component's home worker
                             ///< (spread components: run un-stolen)
    long tasks_foreign = 0;  ///< tasks run off-home (lost locality)
    /// Latency distribution per successful steal, summed over workers.
    std::array<long, kStealLatencyBuckets> steal_latency_hist{};

    /// Bucket-resolution quantile of the steal-latency distribution: the
    /// upper bound (ns) of the bucket holding the q-quantile sample, 0 when
    /// no steal was recorded. q in [0, 1].
    [[nodiscard]] std::int64_t steal_latency_quantile_ns(double q) const noexcept;
  };

  /// `threads == 0` resolves to default_thread_count() (TILEDQR_THREADS or
  /// hardware concurrency), the same rule the rest of the library uses.
  /// TILEDQR_PIN and TILEDQR_AFFINE_STEAL are read here, once.
  explicit ThreadPool(int threads = 0);

  /// Drains outstanding submissions, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] int size() const noexcept { return int(workers_.size()); }

  /// Asynchronous DAG submission. `on_complete` runs on the worker that
  /// retires the last task, with the first task exception (or nullptr on
  /// success). `g` and everything `body` touches must stay alive until then;
  /// `keepalive` is held by the submission for exactly that purpose and
  /// released after `on_complete` returns. `max_workers <= 0` means all
  /// workers; otherwise the submission is confined to that many workers.
  /// `keys`, when non-null, supplies precomputed scheduling keys (one per
  /// task of `g`, higher runs first) borrowed for the submission's lifetime —
  /// the same contract as `g` — and the priority rule is not consulted;
  /// cached plans pass their rank vector here to skip the per-submission
  /// rank sweep. `copies > 1` schedules `copies` independent replicas of `g`
  /// as ONE component: the body receives global indices
  /// `copy * g.tasks.size() + local`, dependencies and keys replicate per
  /// copy, and a task failure cancels the whole replicated component — the
  /// scheduling contract of a homogeneous fused batch, at O(1) extra memory.
  void submit(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
              std::function<void(std::exception_ptr)> on_complete,
              SchedulePriority priority = SchedulePriority::CriticalPath, int max_workers = 0,
              std::shared_ptr<const void> keepalive = nullptr,
              const std::vector<long>* keys = nullptr, int copies = 1);

  /// Future-returning flavor of submit().
  [[nodiscard]] std::future<void> submit(const dag::TaskGraph& g,
                                         std::function<void(std::int32_t)> body,
                                         SchedulePriority priority = SchedulePriority::CriticalPath,
                                         int max_workers = 0,
                                         std::shared_ptr<const void> keepalive = nullptr,
                                         const std::vector<long>* keys = nullptr, int copies = 1);

  /// Blocking convenience: submit and wait; rethrows the first task
  /// exception. Safe to call from inside a task body running on this pool —
  /// the calling worker helps execute instead of deadlocking.
  void run(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
           SchedulePriority priority = SchedulePriority::CriticalPath, int max_workers = 0,
           const std::vector<long>* keys = nullptr);

  /// Handle to a live streaming submission (open_stream). append() grafts a
  /// new DAG component onto the in-flight ready set; each component has its
  /// own completion callback and error state (one component's failure does
  /// not cancel its siblings — they are independent requests). The handle is
  /// movable and shares state: copies of the underlying submission survive
  /// until the last worker retires it. append()/wait()/generation() are
  /// thread-safe; close() may race with append() — the append that loses
  /// throws, like any append after close.
  ///
  /// Lifetime: every graph/body/keys passed to append() must stay alive
  /// until that component's on_complete has run (use `keepalive`). The pool
  /// must outlive the stream's last append; an open, idle stream does not
  /// block the pool destructor.
  class Stream {
   public:
    Stream() = default;  ///< empty handle; only moved-into handles are valid

    /// Grafts `g` onto the live submission as a new component of the next
    /// generation and wakes workers; same argument contract as
    /// ThreadPool::submit (including `copies` replication). Throws Error if
    /// the stream is closed or empty. Appending from a task body or
    /// completion callback running on the pool is safe (the tail of a solve
    /// pipeline chains its next stage this way).
    void append(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                std::function<void(std::exception_ptr)> on_complete = nullptr,
                std::shared_ptr<const void> keepalive = nullptr,
                const std::vector<long>* keys = nullptr, int copies = 1);

    /// No further appends; idempotent. Does not block — pair with wait().
    void close();

    /// Blocks until every component appended before this call has retired.
    /// Callable with the stream still open (drain-and-continue) or after
    /// close(). Safe from a pool worker: the caller helps execute.
    void wait();

    /// Components appended so far — the ready set's generation count.
    [[nodiscard]] long generation() const noexcept;
    /// Components fully retired so far.
    [[nodiscard]] long retired() const noexcept;
    [[nodiscard]] bool closed() const noexcept;

    [[nodiscard]] bool valid() const noexcept { return pool_ != nullptr; }
    explicit operator bool() const noexcept { return valid(); }

   private:
    friend class ThreadPool;
    ThreadPool* pool_ = nullptr;
    std::shared_ptr<Submission> sub_;
  };

  /// Opens a streaming submission confined to `max_workers` workers
  /// (<= 0 = all), anchored like any submission. Components appended later
  /// all share this worker set. `affinity_hint >= 0` pins the stream's
  /// component home worker (modulo its worker set) under component-affine
  /// dealing — every graft lands on the same core; < 0 rotates homes across
  /// the set per component (the default load-spreading policy).
  [[nodiscard]] Stream open_stream(int max_workers = 0, int affinity_hint = -1);

  [[nodiscard]] Stats stats() const noexcept;

  /// Point-in-time view of one worker, for the health layer's stall and
  /// overrun watchdogs. The running_* slots are stamped by the per-task hook
  /// only while a HealthMonitor is live (obs::kObsTaskHealth) — otherwise
  /// they read as idle — so probing costs the runtime nothing when nobody
  /// watches.
  struct WorkerProbe {
    int worker = 0;
    std::size_t ready = 0;  ///< items queued on this worker right now
    std::int64_t running_since_ns = 0;  ///< start of the in-flight task; 0 = idle
    std::int32_t running_task = -1;     ///< its task index (valid while running)
    std::uint8_t running_kind = 0xFF;   ///< its KernelKind, 0xFF = non-kernel
    std::int64_t last_finish_ns = 0;    ///< end of the last retired task; 0 = never
    long tasks_home = 0;     ///< tasks this worker ran on-home (locality kept)
    long tasks_foreign = 0;  ///< tasks this worker ran off-home
    /// This worker's successful-steal latency distribution (see
    /// kStealLatencyBuckets); racy relaxed reads, like the counters above.
    std::array<long, kStealLatencyBuckets> steal_latency_hist{};
  };

  /// Probes every worker. Entirely lock-free: lane depths are racy atomic
  /// estimates and the running slots were already atomics — no worker mutex
  /// exists to take. Safe from any thread.
  [[nodiscard]] std::vector<WorkerProbe> probe_workers() const;

  /// Total ready items across all workers — "is there runnable work a
  /// stalled worker should be taking?". Lock-free like probe_workers().
  [[nodiscard]] long ready_depth() const;

  /// Process-wide shared pool, lazily created with default_thread_count()
  /// workers; what runtime::execute() submits to.
  static ThreadPool& default_pool();

 private:
  friend class Stream;

  /// POD queue entry: {component, global task id}. Component lifetime is
  /// guaranteed by its submission's self-reference (see Submission) while
  /// any of its tasks is queued or running, so no shared_ptr rides along.
  struct Item {
    Component* comp = nullptr;
    std::int32_t task = 0;
  };

  std::shared_ptr<Submission> make_submission(int max_workers, bool closed);
  /// Appends one component (generation = current + 1) and deals its sources.
  Component& append_component(const std::shared_ptr<Submission>& sub, const dag::TaskGraph& g,
                              std::function<void(std::int32_t)> body,
                              std::function<void(std::exception_ptr)> on_complete,
                              SchedulePriority priority,
                              std::shared_ptr<const void> keepalive,
                              const std::vector<long>* keys, bool check_closed, int copies);
  std::shared_ptr<Submission> submit_impl(const dag::TaskGraph& g,
                                          std::function<void(std::int32_t)> body,
                                          std::function<void(std::exception_ptr)> on_complete,
                                          SchedulePriority priority, int max_workers,
                                          std::shared_ptr<const void> keepalive,
                                          const std::vector<long>* keys, int copies);
  void finalize_if_drained(Submission& sub);
  void wait_stream(const std::shared_ptr<Submission>& sub, long up_to_generation);
  void worker_main(int wid);
  bool try_run_one(int wid);
  void run_item(int wid, Item item, bool stolen);
  void signal_work();

  // Lane/inbox plumbing (definitions in the .cpp, where Worker is complete).
  void drain_inbox(Worker& self);
  bool pop_rotating(Worker& self, Item& out);
  bool steal_lanes(Worker& victim, Worker& thief, int thief_wid, Item& out);
  bool steal_inbox(Worker& victim, int thief_wid, Item& out);
  void push_inbox(Worker& w, const Item* items, std::size_t n);
  bool push_local(Worker& self, Submission* sub, Item item);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake machinery: epoch_ bumps on every push; idle workers sleep on
  // sleep_cv_ until the epoch moves past the value they last scanned at.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<long> epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};

  /// TILEDQR_PIN: pin worker threads to cores (worker w -> core w mod ncpu).
  bool pin_workers_ = false;
  /// TILEDQR_AFFINE_STEAL: deal stream components whole to a home worker.
  bool affine_steal_ = true;

  /// In-flight *components*: a stream counts one per appended component, so
  /// an open-but-idle stream does not block the draining destructor.
  std::atomic<long> active_submissions_{0};
  /// Rotates the worker-set anchor (unsigned: wraps harmlessly in
  /// long-lived serving processes).
  std::atomic<unsigned> next_start_{0};
  /// Pool-level deal round shared by ALL stream grafts: under affine dealing
  /// it advances by one per component (rotating component homes across
  /// streams); under spread dealing by the number of sources dealt (weighted
  /// round-robin). Either way concurrent streams interleave across the
  /// worker set instead of each independently rotating from its own anchor.
  std::atomic<unsigned> stream_deal_round_{0};
  /// Streams closed or abandoned, monotone (streams_live is derived as
  /// streams_opened_ − this, keeping every stats() input monotone so the
  /// coherent-snapshot re-read works). Shared with each stream Submission so
  /// a handle dropped without close() still counts from ~Submission — which
  /// can outlive the pool (an open idle stream does not block the pool
  /// destructor), so the counter cannot live in the pool object itself.
  std::shared_ptr<std::atomic<long>> streams_closed_{std::make_shared<std::atomic<long>>(0)};

  // Stats (relaxed counters; per-worker counters live on the Worker).
  std::atomic<long> graphs_completed_{0};
  std::atomic<long> tasks_executed_{0};
  std::atomic<long> tasks_stolen_{0};
  std::atomic<long> streams_opened_{0};

  /// Registry label ("pool0", ...); worker trace tracks are "<label>.w<i>".
  std::string label_;
  /// Declared last: deregistered (freezing final stats into the registry)
  /// before any counter it reads is destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tiledqr::runtime
