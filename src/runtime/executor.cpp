#include "runtime/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace tiledqr::runtime {

namespace {

// Load-time refs: the per-task trace guard is one relaxed enabled() load
// (see thread_pool.cpp for the same pattern).
obs::Tracer& g_tracer = obs::Tracer::instance();
obs::KernelProfiler& g_kernel_profiler = obs::KernelProfiler::global();

void record_task_event(const dag::TaskGraph& g, std::int32_t t, std::int64_t t0,
                       std::int64_t t1, std::uint32_t submission) {
  const dag::Task& task = g.tasks[size_t(t)];
  g_tracer.record(t0, t1, std::uint8_t(task.kind), task.i, task.piv, task.k, task.j, t,
                  submission, /*component=*/0, /*stolen=*/false);
  g_kernel_profiler.record(std::uint8_t(task.kind), t1 - t0);
}

/// Priority-queue entry: higher key first, ties by ascending index.
struct Prioritized {
  long key;
  std::int32_t task;
  bool operator<(const Prioritized& o) const {
    return key != o.key ? key < o.key : task > o.task;
  }
};

using ReadyQueue = std::priority_queue<Prioritized>;

/// Shared scheduler state: a central priority queue. Tile tasks are tens of
/// microseconds and up, so a mutex-protected queue is not a bottleneck at
/// the thread counts we target (<= ~64).
class Scheduler {
 public:
  Scheduler(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
            std::vector<long> keys)
      : g_(g), body_(body), keys_(std::move(keys)), npred_(g.tasks.size()),
        remaining_(long(g.tasks.size())) {
    for (size_t t = 0; t < g.tasks.size(); ++t) {
      npred_[t].store(g.tasks[t].npred, std::memory_order_relaxed);
      if (g.tasks[t].npred == 0) ready_.push({keys_[t], std::int32_t(t)});
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || failed_ || !ready_.empty(); });
      if (stop_ || failed_) return;
      std::int32_t t = ready_.top().task;
      ready_.pop();
      lock.unlock();

      bool ok = true;
      const bool traced = g_tracer.enabled();
      const std::int64_t t0 = traced ? obs::now_ns() : 0;
      try {
        body_(t);
      } catch (...) {
        ok = false;
        std::lock_guard<std::mutex> g2(mu_);
        if (!error_) error_ = std::current_exception();
        failed_ = true;
      }
      if (traced) record_task_event(g_, t, t0, obs::now_ns(), trace_id_);

      lock.lock();
      if (ok) {
        for (std::int32_t s : g_.tasks[size_t(t)].succ) {
          if (npred_[size_t(s)].fetch_sub(1, std::memory_order_acq_rel) == 1)
            ready_.push({keys_[size_t(s)], s});
        }
      }
      if (--remaining_ == 0 || failed_) {
        stop_ = true;
        cv_.notify_all();
        return;
      }
      cv_.notify_all();
    }
  }

  void rethrow_if_failed() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  const dag::TaskGraph& g_;
  const std::function<void(std::int32_t)>& body_;
  const std::uint32_t trace_id_ = obs::next_trace_submission_id();
  std::vector<long> keys_;
  std::vector<std::atomic<std::int32_t>> npred_;
  ReadyQueue ready_;
  std::mutex mu_;
  std::condition_variable cv_;
  long remaining_;
  bool stop_ = false;
  bool failed_ = false;
  std::exception_ptr error_;
};

void execute_sequential(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                        const std::vector<long>& keys) {
  std::vector<std::int32_t> npred(g.tasks.size());
  ReadyQueue ready;
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    npred[t] = g.tasks[t].npred;
    if (npred[t] == 0) ready.push({keys[t], std::int32_t(t)});
  }
  const bool traced = g_tracer.enabled();
  const std::uint32_t sid = traced ? obs::next_trace_submission_id() : 0;
  size_t done = 0;
  while (!ready.empty()) {
    std::int32_t t = ready.top().task;
    ready.pop();
    const std::int64_t t0 = traced ? obs::now_ns() : 0;
    body(t);
    if (traced) record_task_event(g, t, t0, obs::now_ns(), sid);
    ++done;
    for (std::int32_t s : g.tasks[size_t(t)].succ)
      if (--npred[size_t(s)] == 0) ready.push({keys[size_t(s)], s});
  }
  TILEDQR_CHECK(done == g.tasks.size(), "execute: dependency cycle (bug)");
}

}  // namespace

std::vector<long> downward_ranks(const dag::TaskGraph& g) {
  std::vector<long> rank(g.tasks.size(), 0);
  // Tasks are stored in topological order: one reverse sweep suffices.
  for (size_t t = g.tasks.size(); t-- > 0;) {
    long best = 0;
    for (std::int32_t s : g.tasks[t].succ) best = std::max(best, rank[size_t(s)]);
    rank[t] = best + g.tasks[t].weight();
  }
  return rank;
}

std::vector<long> make_priority_keys(const dag::TaskGraph& g, SchedulePriority priority) {
  if (priority == SchedulePriority::CriticalPath) return downward_ranks(g);
  // Emission order: earlier tasks get larger keys.
  std::vector<long> keys(g.tasks.size());
  for (size_t t = 0; t < g.tasks.size(); ++t) keys[t] = long(g.tasks.size()) - long(t);
  return keys;
}

void execute(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
             int threads, SchedulePriority priority, const std::vector<long>* keys) {
  TILEDQR_CHECK(threads >= 1, "execute: need at least one thread");
  if (g.tasks.empty()) return;
  if (threads == 1) {
    // Branch instead of a conditional expression: `keys ? *keys : ...` would
    // materialize a copy of the borrowed vector, re-paying the per-call cost
    // the cached ranks exist to remove.
    if (keys)
      execute_sequential(g, body, *keys);
    else
      execute_sequential(g, body, make_priority_keys(g, priority));
    return;
  }
  ThreadPool& pool = ThreadPool::default_pool();
  if (threads > pool.size()) {
    // The caller asked for more concurrency than the persistent pool has
    // (e.g. a scaling ablation sweeping past the core count). Honor the
    // exact thread count by oversubscribing, like the pre-pool executor.
    execute_spawn(g, body, threads, priority, keys);
    return;
  }
  pool.run(g, body, priority, threads, keys);
}

void execute_spawn(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                   int threads, SchedulePriority priority, const std::vector<long>* keys) {
  TILEDQR_CHECK(threads >= 1, "execute_spawn: need at least one thread");
  if (g.tasks.empty()) return;
  if (threads == 1) {
    // Borrowed keys are used in place (no per-call copy; see execute()).
    if (keys)
      execute_sequential(g, body, *keys);
    else
      execute_sequential(g, body, make_priority_keys(g, priority));
    return;
  }
  // The spawn path's Scheduler owns its keys (it outlives this frame only
  // via its worker threads), so borrowed keys are copied here.
  Scheduler sched(g, body, keys ? *keys : make_priority_keys(g, priority));
  std::vector<std::thread> pool;
  pool.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w)
    pool.emplace_back([&sched, w] {
      g_tracer.set_thread_track_name("spawn.w" + std::to_string(w));
      sched.worker_loop();
    });
  for (auto& th : pool) th.join();
  sched.rethrow_if_failed();
}

ExecutionStats execute_timed(const dag::TaskGraph& g,
                             const std::function<void(std::int32_t)>& body, int threads) {
  WallTimer timer;
  execute(g, body, threads);
  return ExecutionStats{timer.seconds(), long(g.tasks.size())};
}

}  // namespace tiledqr::runtime
