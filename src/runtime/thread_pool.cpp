#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <deque>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/trace.hpp"

namespace tiledqr::runtime {

namespace {
// Which pool (and worker slot) the current thread belongs to; lets run()
// detect re-entrant use from a task body and help instead of deadlocking.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

// Resolved at load time so the per-task hook in run_item is one relaxed
// load of the observation flag word when observability is off — no
// function-local-static guard on the hot path. Also pins the singletons'
// construction before any static-storage pool, so they are destroyed after
// it.
obs::Tracer& g_tracer = obs::Tracer::instance();
obs::KernelProfiler& g_kernel_profiler = obs::KernelProfiler::global();
}  // namespace

/// One DAG component of a submission. Tasks retire exactly once each —
/// executed normally, or cancelled (skipped) once a task body of *this
/// component* has thrown — so `remaining` always drains to zero and the
/// component's completion fires even on failure. Sibling components are
/// unaffected by a failure: they serve independent requests.
struct ThreadPool::Component {
  /// `borrowed_keys`, when non-null, is used directly (the caller keeps it
  /// alive like the graph itself — cached plans hand in their rank vector);
  /// otherwise `owned` is computed per component and referenced instead.
  Component(const dag::TaskGraph& g, std::function<void(std::int32_t)> b,
            std::function<void(std::exception_ptr)> done_cb,
            const std::vector<long>* borrowed_keys, std::vector<long> owned,
            std::shared_ptr<const void> keep)
      : graph(&g), body(std::move(b)), on_complete(std::move(done_cb)),
        keys_owned(std::move(owned)),
        keys(borrowed_keys ? borrowed_keys->data() : keys_owned.data()),
        keepalive(std::move(keep)), npred(g.tasks.size()), remaining(long(g.tasks.size())) {
    for (size_t t = 0; t < g.tasks.size(); ++t)
      npred[t].store(g.tasks[t].npred, std::memory_order_relaxed);
  }

  const dag::TaskGraph* graph;
  std::function<void(std::int32_t)> body;
  std::function<void(std::exception_ptr)> on_complete;
  std::vector<long> keys_owned;
  const long* keys;  ///< one scheduling key per task (borrowed or keys_owned)
  std::shared_ptr<const void> keepalive;
  std::vector<std::atomic<std::int32_t>> npred;
  std::atomic<long> remaining;
  /// Generation this component was born in — its id within the submission
  /// for trace events. Written once under the submission mutex before any
  /// item is dealt.
  long gen = 0;
  std::atomic<bool> failed{false};
  /// Set (with release) after the retiring worker's LAST touch of this
  /// component; the stream prune loop pops only flagged components, so a
  /// concurrent retire of a sibling can never free state still in use.
  std::atomic<bool> retired{false};
  std::mutex err_mu;
  std::exception_ptr error;
};

/// One in-flight submission: an append-only, generation-counted set of DAG
/// components sharing a worker set. The one-shot submit() closes it with a
/// single component; a Stream keeps it open and grafts components onto the
/// live ready set. `components` is a deque so grafting never moves a
/// component a racing worker still holds a pointer into.
struct ThreadPool::Submission {
  [[nodiscard]] bool worker_in_set(int w, int pool_size) const noexcept {
    if (worker_count >= pool_size) return true;
    int rel = w - first_worker;
    if (rel < 0) rel += pool_size;
    return rel < worker_count;
  }

  std::mutex mu;  ///< guards components growth/pruning and the open→closed flip
  /// Append-only at the back (grafts), pruned from the front once fully
  /// retired — but only for streams (`stream`): run() still reads the lone
  /// component of a one-shot submission after it completes, and one-shot
  /// submissions die wholesale anyway. Without pruning, a stream held open
  /// for a server's lifetime would grow one Component shell per graft
  /// forever; with it, memory is bounded by the in-flight window.
  std::deque<Component> components;
  /// Streaming submission: enables front-pruning (above) and routes the deal
  /// anchor through the pool-level weighted round-robin across streams.
  bool stream = false;
  /// Trace id: which submission an event belongs to (unique across pools and
  /// the spawn-path executor).
  std::uint32_t id = 0;
  /// The pool's streams-closed counter (engaged for streams only).
  /// Incremented once — by the first close(), or from ~Submission when the
  /// last handle was dropped without ever closing (`gauge_counted` guards
  /// the double count).
  std::shared_ptr<std::atomic<long>> streams_closed;
  std::atomic<bool> gauge_counted{false};

  ~Submission() {
    if (streams_closed && gauge_counted.exchange(false, std::memory_order_acq_rel))
      streams_closed->fetch_add(1, std::memory_order_relaxed);
  }
  /// closed is written under `mu` but read lock-free on the retire path; the
  /// seq_cst store/load pairing with `inflight` resolves the close-vs-last-
  /// retire race (exactly one side sees both conditions and finalizes).
  std::atomic<bool> closed{false};
  std::atomic<long> generation{0};  ///< components appended (ready-set generation)
  std::atomic<long> retired_components{0};
  std::atomic<long> inflight{0};  ///< appended minus retired
  std::atomic<bool> done{false};  ///< closed && everything retired
  int first_worker = 0;
  int worker_count = 0;
  /// Rotates the deal anchor within the worker set per append, so a stream
  /// of small components spreads their sources instead of always loading the
  /// same worker first.
  std::atomic<unsigned> deal_round{0};
};

struct ThreadPool::Item {
  std::shared_ptr<Submission> sub;
  Component* comp = nullptr;
  std::int32_t task = 0;
};

/// Per-worker ready set: one queue per live submission, linear-scanned (a
/// worker sees only a handful of submissions at once, so a vector beats any
/// map). The owner pops LIFO from the back of a queue — preserving locality
/// and the per-component priority order exactly as the old single deque did —
/// but rotates round-robin across queues, so one chatty stream's continuous
/// grafts cannot bury another submission's items at the bottom of a shared
/// LIFO pile (the pop-side half of multi-stream fairness; the deal-side half
/// is the pool-level graft rotation). Thieves take the oldest item of the
/// first queue whose submission admits them. Queues are erased the moment
/// they empty, so `queues` only ever holds non-empty queues.
struct ThreadPool::Worker {
  struct SubQueue {
    const Submission* key;
    std::deque<Item> items;
  };
  std::mutex mu;
  std::vector<SubQueue> queues;
  size_t rr = 0;  ///< round-robin cursor over `queues` (owner pops)

  // Health slots, stamped by run_item only while a HealthMonitor is live
  // (obs::kObsTaskHealth): what this worker is executing right now and when
  // it last finished anything. release on the *_since/last_finish stores so
  // a prober that sees the timestamp also sees the matching task/kind.
  std::atomic<std::int64_t> running_since{0};  ///< 0 = idle
  std::atomic<std::int64_t> last_finish{0};
  std::atomic<std::int32_t> running_task{-1};
  std::atomic<std::uint8_t> running_kind{0xFF};

  // All three require holding `mu`.
  void push(Item item) {
    for (auto& q : queues)
      if (q.key == item.sub.get()) {
        q.items.push_back(std::move(item));
        return;
      }
    queues.push_back(SubQueue{item.sub.get(), {}});
    queues.back().items.push_back(std::move(item));
  }
  bool pop_rotating(Item& out) {
    if (queues.empty()) return false;
    if (rr >= queues.size()) rr = 0;
    SubQueue& q = queues[rr];
    out = std::move(q.items.back());
    q.items.pop_back();
    if (q.items.empty())
      queues.erase(queues.begin() + long(rr));  // rr now points at the next queue
    else
      ++rr;
    return true;
  }
  bool steal_oldest(int thief, int pool_size, Item& out) {
    const size_t n = queues.size();
    if (n == 0) return false;
    if (rr >= n) rr = 0;
    // Start at the victim's rotation cursor and advance it on success:
    // a steal serves a submission's turn just like an owner pop would, so
    // heavy stealing cannot collapse the round-robin back into one stream.
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (rr + k) % n;
      SubQueue& q = queues[i];
      if (!q.items.front().sub->worker_in_set(thief, pool_size)) continue;
      out = std::move(q.items.front());
      q.items.pop_front();
      if (q.items.empty()) {
        queues.erase(queues.begin() + long(i));
        if (rr > i) --rr;  // cursor keeps pointing at the same next queue
      } else {
        rr = i + 1;  // clamped on the next use
      }
      return true;
    }
    return false;
  }
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  label_ = obs::MetricsRegistry::global().unique_label("pool");
  workers_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) threads_.emplace_back([this, w] { worker_main(w); });
  // Registered after the workers exist: a snapshot taken from another thread
  // must never observe the pool half-constructed.
  metrics_source_ = obs::MetricsRegistry::global().register_source(
      label_, [this](std::vector<obs::Sample>& out) {
        Stats s = stats();
        out.push_back({"workers", double(size())});
        out.push_back({"graphs_completed", double(s.graphs_completed)});
        out.push_back({"tasks_executed", double(s.tasks_executed)});
        out.push_back({"tasks_stolen", double(s.tasks_stolen)});
        out.push_back({"streams_opened", double(s.streams_opened)});
        out.push_back({"streams_live", double(s.streams_live)});
      });
}

ThreadPool::~ThreadPool() {
  {
    // Drain: finish everything already submitted before stopping.
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] { return active_submissions_.load(std::memory_order_acquire) == 0; });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    stop_.store(true, std::memory_order_seq_cst);
  }
  sleep_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  // Coherent snapshot of monotone counters: re-read until two consecutive
  // passes agree. If every counter reads the same value twice, each held
  // that value for the whole window between the reads (monotonicity), so
  // all values coexisted at one instant. Workers mutating mid-read just
  // trigger another pass; the retry bound keeps this wait-free in practice
  // (a torn-but-monotone final pass is still a valid *approximate* read,
  // the same guarantee the old field-by-field code gave).
  long a[5];
  long b[5];
  auto read = [&](long v[5]) {
    v[0] = graphs_completed_.load(std::memory_order_acquire);
    v[1] = tasks_executed_.load(std::memory_order_acquire);
    v[2] = tasks_stolen_.load(std::memory_order_acquire);
    v[3] = streams_opened_.load(std::memory_order_acquire);
    v[4] = streams_closed_->load(std::memory_order_acquire);
  };
  read(a);
  for (int attempt = 0; attempt < 64; ++attempt) {
    read(b);
    if (std::equal(std::begin(a), std::end(a), std::begin(b))) break;
    std::copy(std::begin(b), std::end(b), std::begin(a));
  }
  Stats s;
  s.graphs_completed = b[0];
  s.tasks_executed = b[1];
  s.tasks_stolen = b[2];
  s.streams_opened = b[3];
  s.streams_live = b[3] - b[4];
  return s;
}

std::vector<ThreadPool::WorkerProbe> ThreadPool::probe_workers() const {
  std::vector<WorkerProbe> out;
  out.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& wk = *workers_[w];
    WorkerProbe p;
    p.worker = int(w);
    {
      std::lock_guard<std::mutex> lock(wk.mu);
      for (const auto& q : wk.queues) p.ready += q.items.size();
    }
    p.running_since_ns = wk.running_since.load(std::memory_order_acquire);
    p.running_task = wk.running_task.load(std::memory_order_relaxed);
    p.running_kind = wk.running_kind.load(std::memory_order_relaxed);
    p.last_finish_ns = wk.last_finish.load(std::memory_order_acquire);
    out.push_back(p);
  }
  return out;
}

long ThreadPool::ready_depth() const {
  long n = 0;
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    for (const auto& q : w->queues) n += long(q.items.size());
  }
  return n;
}

ThreadPool& ThreadPool::default_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::signal_work() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Touch the mutex so the wakeup cannot slip between a sleeper's predicate
    // check and its wait.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_all();
  }
}

std::shared_ptr<ThreadPool::Submission> ThreadPool::make_submission(int max_workers, bool closed) {
  auto sub = std::make_shared<Submission>();
  sub->id = obs::next_trace_submission_id();
  const int pool_size = size();
  sub->worker_count = max_workers <= 0 ? pool_size : std::min(max_workers, pool_size);
  sub->first_worker = int(next_start_.fetch_add(1, std::memory_order_relaxed) % unsigned(pool_size));
  sub->closed.store(closed, std::memory_order_relaxed);
  return sub;
}

ThreadPool::Component& ThreadPool::append_component(
    const std::shared_ptr<Submission>& sub, const dag::TaskGraph& g,
    std::function<void(std::int32_t)> body, std::function<void(std::exception_ptr)> on_complete,
    SchedulePriority priority, std::shared_ptr<const void> keepalive,
    const std::vector<long>* keys, bool check_closed) {
  TILEDQR_CHECK(!g.tasks.empty(), "ThreadPool: empty graph handled by caller");
  TILEDQR_CHECK(!keys || keys->size() == g.tasks.size(),
                "ThreadPool: keys must have one entry per task");
  Component* comp = nullptr;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    if (check_closed)
      TILEDQR_CHECK(!sub->closed.load(std::memory_order_relaxed),
                    "ThreadPool::Stream::append: stream is closed");
    const long gen = sub->generation.load(std::memory_order_relaxed) + 1;
    comp = &sub->components.emplace_back(
        g, std::move(body), std::move(on_complete), keys,
        keys ? std::vector<long>() : make_priority_keys(g, priority), std::move(keepalive));
    comp->gen = gen;
    // inflight before generation: wait() snapshots generation and must never
    // see a generation whose component is not yet counted in flight.
    sub->inflight.fetch_add(1, std::memory_order_seq_cst);
    sub->generation.store(gen, std::memory_order_release);
  }
  active_submissions_.fetch_add(1, std::memory_order_acq_rel);

  // Initial ready set in descending priority, dealt round-robin across the
  // submission's worker set from a per-append rotating anchor. The component
  // address is stable (deque) so racing workers on older generations are
  // untouched by this graft.
  std::vector<std::int32_t> sources;
  for (size_t t = 0; t < g.tasks.size(); ++t)
    if (g.tasks[t].npred == 0) sources.push_back(std::int32_t(t));
  std::sort(sources.begin(), sources.end(), [&](std::int32_t a, std::int32_t b) {
    return comp->keys[size_t(a)] != comp->keys[size_t(b)]
               ? comp->keys[size_t(a)] > comp->keys[size_t(b)]
               : a < b;
  });
  const int pool_size = size();
  // One-shot submissions rotate their anchor per submission (deal_round);
  // stream grafts draw from the pool-level round shared by ALL streams,
  // advanced by the number of sources dealt — weighted round-robin, so a
  // wide graft shifts the next stream's anchor past the workers it loaded.
  const unsigned round =
      sub->stream
          ? stream_deal_round_.fetch_add(unsigned(sources.size()), std::memory_order_relaxed)
          : sub->deal_round.fetch_add(1, std::memory_order_relaxed);
  const int anchor = int(round % unsigned(sub->worker_count));
  std::vector<std::vector<std::int32_t>> dealt(size_t(sub->worker_count));
  for (size_t i = 0; i < sources.size(); ++i)
    dealt[(i + size_t(anchor)) % size_t(sub->worker_count)].push_back(sources[i]);
  for (int d = 0; d < sub->worker_count; ++d) {
    if (dealt[size_t(d)].empty()) continue;
    Worker& w = *workers_[size_t((sub->first_worker + d) % pool_size)];
    std::lock_guard<std::mutex> lock(w.mu);
    // Owners pop from the back: push in ascending priority so the most
    // urgent task comes off first.
    for (auto it = dealt[size_t(d)].rbegin(); it != dealt[size_t(d)].rend(); ++it)
      w.push(Item{sub, comp, *it});
  }
  signal_work();
  return *comp;
}

std::shared_ptr<ThreadPool::Submission> ThreadPool::submit_impl(
    const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
    std::function<void(std::exception_ptr)> on_complete, SchedulePriority priority,
    int max_workers, std::shared_ptr<const void> keepalive, const std::vector<long>* keys) {
  auto sub = make_submission(max_workers, /*closed=*/true);
  append_component(sub, g, std::move(body), std::move(on_complete), priority,
                   std::move(keepalive), keys, /*check_closed=*/false);
  return sub;
}

void ThreadPool::submit(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                        std::function<void(std::exception_ptr)> on_complete,
                        SchedulePriority priority, int max_workers,
                        std::shared_ptr<const void> keepalive, const std::vector<long>* keys) {
  if (g.tasks.empty()) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  submit_impl(g, std::move(body), std::move(on_complete), priority, max_workers,
              std::move(keepalive), keys);
}

std::future<void> ThreadPool::submit(const dag::TaskGraph& g,
                                     std::function<void(std::int32_t)> body,
                                     SchedulePriority priority, int max_workers,
                                     std::shared_ptr<const void> keepalive,
                                     const std::vector<long>* keys) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  submit(
      g, std::move(body),
      [promise](std::exception_ptr e) {
        if (e)
          promise->set_exception(e);
        else
          promise->set_value();
      },
      priority, max_workers, std::move(keepalive), keys);
  return future;
}

void ThreadPool::run(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                     SchedulePriority priority, int max_workers, const std::vector<long>* keys) {
  if (g.tasks.empty()) return;
  if (tl_pool == this) {
    // Re-entrant call from a task body: the calling worker helps execute
    // until this submission retires (blocking would deadlock the pool).
    // When no admissible work exists it parks on the epoch/cv machinery
    // like any worker (completion bumps the epoch via signal_work).
    auto sub = submit_impl(g, body, nullptr, priority, max_workers, nullptr, keys);
    while (!sub->done.load(std::memory_order_acquire)) {
      const long epoch = epoch_.load(std::memory_order_seq_cst);
      if (try_run_one(tl_worker)) continue;
      if (sub->done.load(std::memory_order_acquire)) break;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lock, [&] {
        return sub->done.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    Component& comp = sub->components.front();
    std::lock_guard<std::mutex> lock(comp.err_mu);
    if (comp.error) std::rethrow_exception(comp.error);
    return;
  }
  std::promise<void> promise;
  std::future<void> future = promise.get_future();
  submit(
      g, body,
      [&promise](std::exception_ptr e) {
        if (e)
          promise.set_exception(e);
        else
          promise.set_value();
      },
      priority, max_workers, nullptr, keys);
  future.get();
}

// ------------------------------------------------------------------ stream --

ThreadPool::Stream ThreadPool::open_stream(int max_workers) {
  Stream s;
  s.pool_ = this;
  s.sub_ = make_submission(max_workers, /*closed=*/false);
  s.sub_->stream = true;  // prune retired grafts + pool-level deal rotation
  s.sub_->streams_closed = streams_closed_;
  s.sub_->gauge_counted.store(true, std::memory_order_release);
  streams_opened_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void ThreadPool::Stream::append(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                                std::function<void(std::exception_ptr)> on_complete,
                                std::shared_ptr<const void> keepalive,
                                const std::vector<long>* keys) {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::append: empty stream handle");
  if (g.tasks.empty()) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  pool_->append_component(sub_, g, std::move(body), std::move(on_complete),
                          SchedulePriority::CriticalPath, std::move(keepalive), keys,
                          /*check_closed=*/true);
}

void ThreadPool::Stream::close() {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::close: empty stream handle");
  {
    std::lock_guard<std::mutex> lock(sub_->mu);
    sub_->closed.store(true, std::memory_order_seq_cst);
  }
  if (sub_->gauge_counted.exchange(false, std::memory_order_acq_rel))
    sub_->streams_closed->fetch_add(1, std::memory_order_relaxed);
  pool_->finalize_if_drained(*sub_);
}

void ThreadPool::Stream::wait() {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::wait: empty stream handle");
  pool_->wait_stream(sub_, sub_->generation.load(std::memory_order_acquire));
}

long ThreadPool::Stream::generation() const noexcept {
  return sub_ ? sub_->generation.load(std::memory_order_acquire) : 0;
}

long ThreadPool::Stream::retired() const noexcept {
  return sub_ ? sub_->retired_components.load(std::memory_order_acquire) : 0;
}

bool ThreadPool::Stream::closed() const noexcept {
  return sub_ ? sub_->closed.load(std::memory_order_acquire) : true;
}

void ThreadPool::finalize_if_drained(Submission& sub) {
  if (sub.inflight.load(std::memory_order_seq_cst) != 0) return;
  if (!sub.closed.load(std::memory_order_seq_cst)) return;
  if (!sub.done.exchange(true, std::memory_order_acq_rel)) signal_work();
}

void ThreadPool::wait_stream(const std::shared_ptr<Submission>& sub, long up_to_generation) {
  auto drained = [&] {
    return sub->retired_components.load(std::memory_order_acquire) >= up_to_generation;
  };
  if (tl_pool == this) {
    // Waiting from a pool worker (e.g. a task body draining a stream it
    // feeds): help execute instead of deadlocking, like run().
    while (!drained()) {
      const long epoch = epoch_.load(std::memory_order_seq_cst);
      if (try_run_one(tl_worker)) continue;
      if (drained()) break;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lock, [&] {
        return drained() || epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  sleep_cv_.wait(lock, drained);
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
}

// ----------------------------------------------------------------- workers --

void ThreadPool::worker_main(int wid) {
  tl_pool = this;
  tl_worker = wid;
  g_tracer.set_thread_track_name(label_ + ".w" + std::to_string(wid));
  for (;;) {
    const long epoch = epoch_.load(std::memory_order_seq_cst);
    if (try_run_one(wid)) continue;
    if (stop_.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

bool ThreadPool::try_run_one(int wid) {
  Worker& self = *workers_[size_t(wid)];
  {
    std::unique_lock<std::mutex> lock(self.mu);
    Item item;
    if (self.pop_rotating(item)) {
      lock.unlock();
      run_item(wid, std::move(item), /*stolen=*/false);
      return true;
    }
  }
  // Steal: scan victims round-robin; take the oldest item whose submission
  // admits this worker (capped submissions confine items to their set).
  const int pool_size = size();
  for (int d = 1; d < pool_size; ++d) {
    Worker& victim = *workers_[size_t((wid + d) % pool_size)];
    std::unique_lock<std::mutex> lock(victim.mu);
    Item item;
    if (victim.steal_oldest(wid, pool_size, item)) {
      lock.unlock();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      run_item(wid, std::move(item), /*stolen=*/true);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_item(int wid, Item item, bool stolen) {
  Component& comp = *item.comp;
  if (!comp.failed.load(std::memory_order_acquire)) {
    // Observability hook: one relaxed load of the combined flag word is the
    // entire cost of the disabled path — tracing and the health layer share
    // it, so the watchdog did not add a second load. When tracing is on,
    // the task's begin/end lands in this thread's trace ring and its
    // duration in the per-kernel histograms; when a HealthMonitor is live,
    // the worker's running-task slots are stamped for the watchdog.
    const unsigned obs_flags = obs::task_observation_flags().load(std::memory_order_relaxed);
    const std::int64_t t0 = obs_flags != 0 ? obs::now_ns() : 0;
    if (obs_flags & obs::kObsTaskHealth) {
      Worker& self = *workers_[size_t(wid)];
      const dag::Task& t = comp.graph->tasks[size_t(item.task)];
      self.running_task.store(item.task, std::memory_order_relaxed);
      self.running_kind.store(std::uint8_t(t.kind), std::memory_order_relaxed);
      self.running_since.store(t0, std::memory_order_release);
    }
    try {
      comp.body(item.task);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(comp.err_mu);
        if (!comp.error) comp.error = std::current_exception();
      }
      comp.failed.store(true, std::memory_order_release);
    }
    if (obs_flags != 0) {
      const std::int64_t t1 = obs::now_ns();
      if (obs_flags & obs::kObsTaskTrace) {
        const dag::Task& t = comp.graph->tasks[size_t(item.task)];
        g_tracer.record(t0, t1, std::uint8_t(t.kind), t.i, t.piv, t.k, t.j, item.task,
                        item.sub->id, std::int32_t(comp.gen), stolen);
        g_kernel_profiler.record(std::uint8_t(t.kind), t1 - t0);
      }
      if (obs_flags & obs::kObsTaskHealth) {
        Worker& self = *workers_[size_t(wid)];
        self.running_since.store(0, std::memory_order_relaxed);
        self.last_finish.store(t1, std::memory_order_release);
      }
    }
  }
  // Propagate readiness even for cancelled tasks so the component drains and
  // completion still fires after a failure.
  std::vector<std::int32_t> ready;
  for (std::int32_t s : comp.graph->tasks[size_t(item.task)].succ)
    if (comp.npred[size_t(s)].fetch_sub(1, std::memory_order_acq_rel) == 1) ready.push_back(s);
  if (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), [&](std::int32_t a, std::int32_t b) {
      return comp.keys[size_t(a)] != comp.keys[size_t(b)]
                 ? comp.keys[size_t(a)] < comp.keys[size_t(b)]
                 : a > b;
    });
    Worker& self = *workers_[size_t(wid)];
    {
      std::lock_guard<std::mutex> lock(self.mu);
      for (std::int32_t s : ready) self.push(Item{item.sub, item.comp, s});
    }
    signal_work();
  }
  if (comp.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Component retired. Fire its completion *before* decrementing inflight:
    // a completion that grafts the next pipeline stage onto the stream keeps
    // the submission observably non-drained throughout, so close()/wait()
    // can never slip between the stages.
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(comp.err_mu);
      error = comp.error;
    }
    graphs_completed_.fetch_add(1, std::memory_order_relaxed);
    if (comp.on_complete) comp.on_complete(error);
    // Release everything the component captured: stream closures hold the
    // FactorStream state, which holds this submission — clearing here breaks
    // that cycle (and frees graphs/requests promptly). No task of this
    // component can run again, so nothing else reads these fields.
    comp.body = nullptr;
    comp.on_complete = nullptr;
    comp.keepalive.reset();
    comp.keys_owned = std::vector<long>();
    comp.npred = std::vector<std::atomic<std::int32_t>>();
    Submission& sub = *item.sub;
    comp.retired.store(true, std::memory_order_release);  // last touch of comp
    if (sub.stream) {
      // Drop the fully-retired prefix so a long-lived stream's component
      // list is bounded by its in-flight window, not its request history.
      std::lock_guard<std::mutex> lock(sub.mu);
      while (!sub.components.empty() &&
             sub.components.front().retired.load(std::memory_order_acquire))
        sub.components.pop_front();
    }
    sub.retired_components.fetch_add(1, std::memory_order_acq_rel);
    if (sub.inflight.fetch_sub(1, std::memory_order_seq_cst) == 1) finalize_if_drained(sub);
    active_submissions_.fetch_sub(1, std::memory_order_acq_rel);
    signal_work();  // wake help-loops, stream waiters, and a draining destructor
  }
}

}  // namespace tiledqr::runtime
