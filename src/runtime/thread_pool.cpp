#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <deque>

#include "common/env.hpp"
#include "common/error.hpp"

namespace tiledqr::runtime {

namespace {
// Which pool (and worker slot) the current thread belongs to; lets run()
// detect re-entrant use from a task body and help instead of deadlocking.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;
}  // namespace

/// One in-flight DAG. Tasks retire exactly once each — executed normally, or
/// cancelled (skipped) once a task body has thrown — so `remaining` always
/// drains to zero and completion fires even on failure.
struct ThreadPool::Submission {
  /// `borrowed_keys`, when non-null, is used directly (the caller keeps it
  /// alive like the graph itself — cached plans hand in their rank vector);
  /// otherwise `owned` is computed per submission and referenced instead.
  Submission(const dag::TaskGraph& g, std::function<void(std::int32_t)> b,
             std::function<void(std::exception_ptr)> done_cb, const std::vector<long>* borrowed_keys,
             std::vector<long> owned, std::shared_ptr<const void> keep)
      : graph(&g), body(std::move(b)), on_complete(std::move(done_cb)),
        keys_owned(std::move(owned)),
        keys(borrowed_keys ? borrowed_keys->data() : keys_owned.data()),
        keepalive(std::move(keep)), npred(g.tasks.size()), remaining(long(g.tasks.size())) {
    for (size_t t = 0; t < g.tasks.size(); ++t)
      npred[t].store(g.tasks[t].npred, std::memory_order_relaxed);
  }

  [[nodiscard]] bool worker_in_set(int w, int pool_size) const noexcept {
    if (worker_count >= pool_size) return true;
    int rel = w - first_worker;
    if (rel < 0) rel += pool_size;
    return rel < worker_count;
  }

  const dag::TaskGraph* graph;
  std::function<void(std::int32_t)> body;
  std::function<void(std::exception_ptr)> on_complete;
  std::vector<long> keys_owned;
  const long* keys;  ///< one scheduling key per task (borrowed or keys_owned)
  std::shared_ptr<const void> keepalive;
  std::vector<std::atomic<std::int32_t>> npred;
  std::atomic<long> remaining;
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::mutex err_mu;
  std::exception_ptr error;
  int first_worker = 0;
  int worker_count = 0;
};

struct ThreadPool::Item {
  std::shared_ptr<Submission> sub;
  std::int32_t task;
};

struct ThreadPool::Worker {
  std::mutex mu;
  std::deque<Item> ready;
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) threads_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    // Drain: finish everything already submitted before stopping.
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] { return active_submissions_.load(std::memory_order_acquire) == 0; });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    stop_.store(true, std::memory_order_seq_cst);
  }
  sleep_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  Stats s;
  s.graphs_completed = graphs_completed_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::default_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::signal_work() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Touch the mutex so the wakeup cannot slip between a sleeper's predicate
    // check and its wait.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_all();
  }
}

std::shared_ptr<ThreadPool::Submission> ThreadPool::submit_impl(
    const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
    std::function<void(std::exception_ptr)> on_complete, SchedulePriority priority,
    int max_workers, std::shared_ptr<const void> keepalive, const std::vector<long>* keys) {
  TILEDQR_CHECK(!g.tasks.empty(), "ThreadPool::submit: empty graph handled by caller");
  TILEDQR_CHECK(!keys || keys->size() == g.tasks.size(),
                "ThreadPool::submit: keys must have one entry per task");
  auto sub = std::make_shared<Submission>(
      g, std::move(body), std::move(on_complete), keys,
      keys ? std::vector<long>() : make_priority_keys(g, priority), std::move(keepalive));
  const int pool_size = size();
  sub->worker_count = max_workers <= 0 ? pool_size : std::min(max_workers, pool_size);
  sub->first_worker = int(next_start_.fetch_add(1, std::memory_order_relaxed) % unsigned(pool_size));
  active_submissions_.fetch_add(1, std::memory_order_acq_rel);

  // Initial ready set in descending critical-path priority, dealt round-robin
  // across the submission's worker set.
  std::vector<std::int32_t> sources;
  for (size_t t = 0; t < g.tasks.size(); ++t)
    if (g.tasks[t].npred == 0) sources.push_back(std::int32_t(t));
  std::sort(sources.begin(), sources.end(), [&](std::int32_t a, std::int32_t b) {
    return sub->keys[size_t(a)] != sub->keys[size_t(b)]
               ? sub->keys[size_t(a)] > sub->keys[size_t(b)]
               : a < b;
  });
  std::vector<std::vector<std::int32_t>> dealt(size_t(sub->worker_count));
  for (size_t i = 0; i < sources.size(); ++i)
    dealt[i % size_t(sub->worker_count)].push_back(sources[i]);
  for (int d = 0; d < sub->worker_count; ++d) {
    if (dealt[size_t(d)].empty()) continue;
    Worker& w = *workers_[size_t((sub->first_worker + d) % pool_size)];
    std::lock_guard<std::mutex> lock(w.mu);
    // Owners pop from the back: push in ascending priority so the most
    // urgent task comes off first.
    for (auto it = dealt[size_t(d)].rbegin(); it != dealt[size_t(d)].rend(); ++it)
      w.ready.push_back(Item{sub, *it});
  }
  signal_work();
  return sub;
}

void ThreadPool::submit(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                        std::function<void(std::exception_ptr)> on_complete,
                        SchedulePriority priority, int max_workers,
                        std::shared_ptr<const void> keepalive, const std::vector<long>* keys) {
  if (g.tasks.empty()) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  submit_impl(g, std::move(body), std::move(on_complete), priority, max_workers,
              std::move(keepalive), keys);
}

std::future<void> ThreadPool::submit(const dag::TaskGraph& g,
                                     std::function<void(std::int32_t)> body,
                                     SchedulePriority priority, int max_workers,
                                     std::shared_ptr<const void> keepalive,
                                     const std::vector<long>* keys) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  submit(
      g, std::move(body),
      [promise](std::exception_ptr e) {
        if (e)
          promise->set_exception(e);
        else
          promise->set_value();
      },
      priority, max_workers, std::move(keepalive), keys);
  return future;
}

void ThreadPool::run(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                     SchedulePriority priority, int max_workers, const std::vector<long>* keys) {
  if (g.tasks.empty()) return;
  if (tl_pool == this) {
    // Re-entrant call from a task body: the calling worker helps execute
    // until this submission retires (blocking would deadlock the pool).
    // When no admissible work exists it parks on the epoch/cv machinery
    // like any worker (completion bumps the epoch via signal_work).
    auto sub = submit_impl(g, body, nullptr, priority, max_workers, nullptr, keys);
    while (!sub->done.load(std::memory_order_acquire)) {
      const long epoch = epoch_.load(std::memory_order_seq_cst);
      if (try_run_one(tl_worker)) continue;
      if (sub->done.load(std::memory_order_acquire)) break;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lock, [&] {
        return sub->done.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    std::lock_guard<std::mutex> lock(sub->err_mu);
    if (sub->error) std::rethrow_exception(sub->error);
    return;
  }
  std::promise<void> promise;
  std::future<void> future = promise.get_future();
  submit(
      g, body,
      [&promise](std::exception_ptr e) {
        if (e)
          promise.set_exception(e);
        else
          promise.set_value();
      },
      priority, max_workers, nullptr, keys);
  future.get();
}

void ThreadPool::worker_main(int wid) {
  tl_pool = this;
  tl_worker = wid;
  for (;;) {
    const long epoch = epoch_.load(std::memory_order_seq_cst);
    if (try_run_one(wid)) continue;
    if (stop_.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

bool ThreadPool::try_run_one(int wid) {
  Worker& self = *workers_[size_t(wid)];
  {
    std::unique_lock<std::mutex> lock(self.mu);
    if (!self.ready.empty()) {
      Item item = std::move(self.ready.back());
      self.ready.pop_back();
      lock.unlock();
      run_item(wid, std::move(item));
      return true;
    }
  }
  // Steal: scan victims round-robin; take the oldest item whose submission
  // admits this worker (capped submissions confine items to their set).
  const int pool_size = size();
  for (int d = 1; d < pool_size; ++d) {
    Worker& victim = *workers_[size_t((wid + d) % pool_size)];
    std::unique_lock<std::mutex> lock(victim.mu);
    for (auto it = victim.ready.begin(); it != victim.ready.end(); ++it) {
      if (!it->sub->worker_in_set(wid, pool_size)) continue;
      Item item = std::move(*it);
      victim.ready.erase(it);
      lock.unlock();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      run_item(wid, std::move(item));
      return true;
    }
  }
  return false;
}

void ThreadPool::run_item(int wid, Item item) {
  Submission& sub = *item.sub;
  if (!sub.failed.load(std::memory_order_acquire)) {
    try {
      sub.body(item.task);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(sub.err_mu);
        if (!sub.error) sub.error = std::current_exception();
      }
      sub.failed.store(true, std::memory_order_release);
    }
  }
  // Propagate readiness even for cancelled tasks so the graph drains and
  // completion still fires after a failure.
  std::vector<std::int32_t> ready;
  for (std::int32_t s : sub.graph->tasks[size_t(item.task)].succ)
    if (sub.npred[size_t(s)].fetch_sub(1, std::memory_order_acq_rel) == 1) ready.push_back(s);
  if (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), [&](std::int32_t a, std::int32_t b) {
      return sub.keys[size_t(a)] != sub.keys[size_t(b)] ? sub.keys[size_t(a)] < sub.keys[size_t(b)]
                                                        : a > b;
    });
    Worker& self = *workers_[size_t(wid)];
    {
      std::lock_guard<std::mutex> lock(self.mu);
      for (std::int32_t s : ready) self.ready.push_back(Item{item.sub, s});
    }
    signal_work();
  }
  if (sub.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(sub.err_mu);
      error = sub.error;
    }
    graphs_completed_.fetch_add(1, std::memory_order_relaxed);
    if (sub.on_complete) sub.on_complete(error);
    sub.keepalive.reset();
    sub.done.store(true, std::memory_order_release);
    active_submissions_.fetch_sub(1, std::memory_order_acq_rel);
    signal_work();  // wake help-loops and a draining destructor
  }
}

}  // namespace tiledqr::runtime
