#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <deque>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/trace.hpp"
#include "runtime/chase_lev.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tiledqr::runtime {

namespace {
// Which pool (and worker slot) the current thread belongs to; lets run()
// detect re-entrant use from a task body and help instead of deadlocking.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

// Resolved at load time so the per-task hook in run_item is one relaxed
// load of the observation flag word when observability is off — no
// function-local-static guard on the hot path. Also pins the singletons'
// construction before any static-storage pool, so they are destroyed after
// it.
obs::Tracer& g_tracer = obs::Tracer::instance();
obs::KernelProfiler& g_kernel_profiler = obs::KernelProfiler::global();

/// Best-effort worker->core pinning (TILEDQR_PIN). Linux-only; everywhere
/// else it is a documented no-op, and even on Linux a failed setaffinity
/// (cgroup cpuset, restricted mask) is ignored — pinning is an optimization,
/// never a correctness requirement.
void pin_to_core(int wid) {
#if defined(__linux__)
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(unsigned(wid) % ncpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)wid;
#endif
}
}  // namespace

/// One DAG component of a submission. Tasks retire exactly once each —
/// executed normally, or cancelled (skipped) once a task body of *this
/// component* has thrown — so `remaining` always drains to zero and the
/// component's completion fires even on failure. Sibling components are
/// unaffected by a failure: they serve independent requests.
///
/// A component may be *replicated* (`copies > 1`): the scheduler runs
/// `copies` independent instances of the base graph, with global task id
/// = copy * stride + local (stride = base graph size). Dependencies never
/// cross copies, graph/key lookups index by `local`, and the body receives
/// the global id — exactly the task-id contract a materialized homogeneous
/// fused graph had, without the count x graph memory.
struct ThreadPool::Component {
  Component(const dag::TaskGraph& g, int copies_, std::function<void(std::int32_t)> b,
            std::function<void(std::exception_ptr)> done_cb,
            const std::vector<long>* borrowed_keys, std::vector<long> owned,
            std::shared_ptr<const void> keep)
      : graph(&g), body(std::move(b)), on_complete(std::move(done_cb)),
        keys_owned(std::move(owned)),
        keys(borrowed_keys ? borrowed_keys->data() : keys_owned.data()),
        keepalive(std::move(keep)), stride(std::int32_t(g.tasks.size())), copies(copies_),
        npred(g.tasks.size() * std::size_t(copies_)),
        remaining(long(g.tasks.size()) * copies_) {
    for (int c = 0; c < copies_; ++c)
      for (std::size_t t = 0; t < g.tasks.size(); ++t)
        npred[std::size_t(c) * g.tasks.size() + t].store(g.tasks[t].npred,
                                                         std::memory_order_relaxed);
  }

  const dag::TaskGraph* graph;
  std::function<void(std::int32_t)> body;
  std::function<void(std::exception_ptr)> on_complete;
  std::vector<long> keys_owned;
  /// One scheduling key per *base-graph* task (borrowed or keys_owned);
  /// replicated copies share it — index with `task % stride`.
  const long* keys;
  std::shared_ptr<const void> keepalive;
  std::int32_t stride;  ///< tasks per copy (= base graph size)
  int copies;
  std::vector<std::atomic<std::int32_t>> npred;  ///< copies x stride
  std::atomic<long> remaining;
  /// Owning submission. Raw: the submission outlives every queued item of
  /// its components via its self-reference (cleared only once inflight hits
  /// zero), so this pointer is valid for the component's whole queued life.
  Submission* owner = nullptr;
  /// Generation this component was born in — its id within the submission
  /// for trace events. Written once under the submission mutex before any
  /// item is dealt.
  long gen = 0;
  /// Home worker under component-affine dealing; -1 = dealt spread. Used
  /// for the home-vs-foreign locality split in stats().
  int home = -1;
  std::atomic<bool> failed{false};
  /// Set (with release) after the retiring worker's LAST touch of this
  /// component; the stream prune loop pops only flagged components, so a
  /// concurrent retire of a sibling can never free state still in use.
  std::atomic<bool> retired{false};
  std::mutex err_mu;
  std::exception_ptr error;
};

/// One in-flight submission: an append-only, generation-counted set of DAG
/// components sharing a worker set. The one-shot submit() closes it with a
/// single component; a Stream keeps it open and grafts components onto the
/// live submission. `components` is a deque so grafting never moves a
/// component a racing worker still holds a pointer into.
struct ThreadPool::Submission {
  [[nodiscard]] bool worker_in_set(int w, int pool_size) const noexcept {
    if (worker_count >= pool_size) return true;
    int rel = w - first_worker;
    if (rel < 0) rel += pool_size;
    return rel < worker_count;
  }

  std::mutex mu;  ///< guards components growth/pruning, self_ref, and the open->closed flip
  /// Append-only at the back (grafts), pruned from the front once fully
  /// retired — but only for streams (`stream`): run() still reads the lone
  /// component of a one-shot submission after it completes, and one-shot
  /// submissions die wholesale anyway. Without pruning, a stream held open
  /// for a server's lifetime would grow one Component shell per graft
  /// forever; with it, memory is bounded by the in-flight window.
  std::deque<Component> components;
  /// Queue items are POD (no shared_ptr), so the submission keeps *itself*
  /// alive while any component is in flight: set (under mu) whenever a
  /// component is appended, cleared (under mu) by the retire path only once
  /// inflight is observed zero again. Stream handles and waiters hold their
  /// own shared_ptrs independently.
  std::shared_ptr<Submission> self_ref;
  /// Streaming submission: enables front-pruning (above) and routes the deal
  /// anchor through the pool-level round shared across streams.
  bool stream = false;
  /// Trace id: which submission an event belongs to (unique across pools and
  /// the spawn-path executor).
  std::uint32_t id = 0;
  /// The pool's streams-closed counter (engaged for streams only).
  /// Incremented once — by the first close(), or from ~Submission when the
  /// last handle was dropped without ever closing (`gauge_counted` guards
  /// the double count).
  std::shared_ptr<std::atomic<long>> streams_closed;
  std::atomic<bool> gauge_counted{false};

  ~Submission() {
    if (streams_closed && gauge_counted.exchange(false, std::memory_order_acq_rel))
      streams_closed->fetch_add(1, std::memory_order_relaxed);
  }
  /// closed is written under `mu` but read lock-free on the retire path; the
  /// seq_cst store/load pairing with `inflight` resolves the close-vs-last-
  /// retire race (exactly one side sees both conditions and finalizes).
  std::atomic<bool> closed{false};
  std::atomic<long> generation{0};  ///< components appended (ready-set generation)
  std::atomic<long> retired_components{0};
  std::atomic<long> inflight{0};  ///< appended minus retired
  std::atomic<bool> done{false};  ///< closed && everything retired
  int first_worker = 0;
  int worker_count = 0;
  /// Home anchor under affine dealing: >= 0 pins every component of this
  /// stream to the same slot of its worker set; < 0 rotates per component.
  int affinity_hint = -1;
  /// Rotates the deal anchor within the worker set per append, so a
  /// one-shot-heavy workload spreads sources instead of always loading the
  /// same worker first.
  std::atomic<unsigned> deal_round{0};
};

/// Per-worker ready set: a fixed array of lanes, one Chase–Lev deque per
/// live submission the worker holds work for, plus a mutexed inbox.
///
/// Single-producer discipline: only the OWNER pushes into (and assigns/
/// recycles) its lanes. Everything arriving from another thread — dealt
/// sources, forwarded inadmissible steals — lands in the inbox; the owner
/// drains it into lanes before popping. Thieves steal lock-free from lane
/// tops, and, failing that, take admissible items from inboxes under the
/// mutex, so capped work parked on a busy worker is never stranded.
///
/// The owner pops LIFO from a lane bottom — preserving locality and the
/// per-component priority order exactly as the old mutexed deques did — but
/// rotates round-robin across lanes, so one chatty stream's continuous
/// grafts cannot bury another submission's items (the pop-side half of
/// multi-stream fairness; the deal-side half is the pool-level graft
/// rotation). A lane whose deque drains is recycled (sub cleared) by the
/// owner; admissibility of a stolen item is verified from the item's own
/// component afterwards, so a lane recycling mid-steal can never leak a
/// capped submission's task to an out-of-set worker.
struct ThreadPool::Worker {
  static constexpr std::size_t kLanes = 16;  ///< concurrent submissions held apart

  struct Lane {
    ChaseLevDeque<Component> deq;
    /// Owner-written lane key (which submission this lane serves); nullptr =
    /// free. Compared, never dereferenced, by non-owners.
    std::atomic<Submission*> sub{nullptr};
  };

  std::array<Lane, kLanes> lanes;
  std::size_t rr = 0;  ///< owner-private round-robin cursor over lanes
  /// Thieves' rotation cursor over this victim's lanes: a successful steal
  /// advances it, so heavy stealing serves submissions round-robin instead
  /// of draining one lane dry first.
  std::atomic<unsigned> steal_rr{0};

  /// Cross-thread mailbox (dealers + forwarded steals -> owner/thieves).
  std::mutex inbox_mu;
  std::deque<Item> inbox;
  std::atomic<long> inbox_size{0};  ///< maintained under inbox_mu; read lock-free
  /// Rotation cursor for steal_inbox, guarded by inbox_mu: which parked
  /// submission thieves serve next, so inbox steals interleave submissions
  /// like lane steals do instead of draining one stream's backlog FIFO.
  unsigned inbox_steal_rr = 0;

  // Per-worker relaxed counters, summed by stats().
  std::atomic<long> tasks_home{0};
  std::atomic<long> tasks_foreign{0};
  std::atomic<long> steal_cas_retries{0};
  std::atomic<long> empty_steal_probes{0};
  /// Successful-steal latency, power-of-two ns buckets (kStealLatencyBuckets).
  std::array<std::atomic<long>, ThreadPool::kStealLatencyBuckets> steal_latency_hist{};

  void record_steal_latency(std::int64_t ns) noexcept {
    int b = ns <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(ns)) - 1;
    b = std::min(b, ThreadPool::kStealLatencyBuckets - 1);
    steal_latency_hist[std::size_t(b)].fetch_add(1, std::memory_order_relaxed);
  }

  // Health slots, stamped by run_item only while a HealthMonitor is live
  // (obs::kObsTaskHealth): what this worker is executing right now and when
  // it last finished anything. release on the *_since/last_finish stores so
  // a prober that sees the timestamp also sees the matching task/kind.
  std::atomic<std::int64_t> running_since{0};  ///< 0 = idle
  std::atomic<std::int64_t> last_finish{0};
  std::atomic<std::int32_t> running_task{-1};
  std::atomic<std::uint8_t> running_kind{0xFF};

  /// Owner only: lane serving `s`, claiming a free one if needed; nullptr
  /// when every lane is taken by another live submission (caller falls back
  /// to the inbox). Stale keys of dead submissions are only ever *compared*
  /// against, and a lane with a stale key is necessarily empty (items keep
  /// their submission alive), so it gets recycled by the pop scan.
  Lane* lane_for(Submission* s) {
    Lane* free_lane = nullptr;
    for (auto& lane : lanes) {
      Submission* cur = lane.sub.load(std::memory_order_relaxed);
      if (cur == s) return &lane;
      if (cur == nullptr && free_lane == nullptr) free_lane = &lane;
    }
    if (free_lane) free_lane->sub.store(s, std::memory_order_relaxed);
    return free_lane;
  }
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  pin_workers_ = env_flag("TILEDQR_PIN", false);
  affine_steal_ = env_flag("TILEDQR_AFFINE_STEAL", true);
  label_ = obs::MetricsRegistry::global().unique_label("pool");
  workers_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(size_t(threads));
  for (int w = 0; w < threads; ++w) threads_.emplace_back([this, w] { worker_main(w); });
  // Registered after the workers exist: a snapshot taken from another thread
  // must never observe the pool half-constructed.
  metrics_source_ = obs::MetricsRegistry::global().register_source(
      label_, [this](std::vector<obs::Sample>& out) {
        Stats s = stats();
        out.push_back({"workers", double(size())});
        out.push_back({"graphs_completed", double(s.graphs_completed)});
        out.push_back({"tasks_executed", double(s.tasks_executed)});
        out.push_back({"tasks_stolen", double(s.tasks_stolen)});
        out.push_back({"streams_opened", double(s.streams_opened)});
        out.push_back({"streams_live", double(s.streams_live)});
        out.push_back({"steal_cas_retries", double(s.steal_cas_retries)});
        out.push_back({"empty_steal_probes", double(s.empty_steal_probes)});
        out.push_back({"tasks_home", double(s.tasks_home)});
        out.push_back({"tasks_foreign", double(s.tasks_foreign)});
        out.push_back({"steal_latency_p50_ns", double(s.steal_latency_quantile_ns(0.50))});
        out.push_back({"steal_latency_p95_ns", double(s.steal_latency_quantile_ns(0.95))});
      });
}

ThreadPool::~ThreadPool() {
  {
    // Drain: finish everything already submitted before stopping.
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] { return active_submissions_.load(std::memory_order_acquire) == 0; });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    stop_.store(true, std::memory_order_seq_cst);
  }
  sleep_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  // Coherent snapshot of monotone counters: re-read until two consecutive
  // passes agree. If every counter reads the same value twice, each held
  // that value for the whole window between the reads (monotonicity), so
  // all values coexisted at one instant. Workers mutating mid-read just
  // trigger another pass; the retry bound keeps this wait-free in practice
  // (a torn-but-monotone final pass is still a valid *approximate* read,
  // the same guarantee the old field-by-field code gave). The per-worker
  // counters are summed per pass; a sum of monotone counters is monotone,
  // so the agreement argument covers them too.
  constexpr int kN = 9 + kStealLatencyBuckets;
  long a[kN];
  long b[kN];
  auto read = [&](long v[kN]) {
    v[0] = graphs_completed_.load(std::memory_order_acquire);
    v[1] = tasks_executed_.load(std::memory_order_acquire);
    v[2] = tasks_stolen_.load(std::memory_order_acquire);
    v[3] = streams_opened_.load(std::memory_order_acquire);
    v[4] = streams_closed_->load(std::memory_order_acquire);
    std::fill(v + 5, v + kN, 0L);
    for (const auto& w : workers_) {
      v[5] += w->steal_cas_retries.load(std::memory_order_acquire);
      v[6] += w->empty_steal_probes.load(std::memory_order_acquire);
      v[7] += w->tasks_home.load(std::memory_order_acquire);
      v[8] += w->tasks_foreign.load(std::memory_order_acquire);
      for (int k = 0; k < kStealLatencyBuckets; ++k)
        v[9 + k] += w->steal_latency_hist[std::size_t(k)].load(std::memory_order_acquire);
    }
  };
  read(a);
  for (int attempt = 0; attempt < 64; ++attempt) {
    read(b);
    if (std::equal(std::begin(a), std::end(a), std::begin(b))) break;
    std::copy(std::begin(b), std::end(b), std::begin(a));
  }
  Stats s;
  s.graphs_completed = b[0];
  s.tasks_executed = b[1];
  s.tasks_stolen = b[2];
  s.streams_opened = b[3];
  s.streams_live = b[3] - b[4];
  s.steal_cas_retries = b[5];
  s.empty_steal_probes = b[6];
  s.tasks_home = b[7];
  s.tasks_foreign = b[8];
  for (int k = 0; k < kStealLatencyBuckets; ++k) s.steal_latency_hist[std::size_t(k)] = b[9 + k];
  return s;
}

std::int64_t ThreadPool::Stats::steal_latency_quantile_ns(double q) const noexcept {
  long total = 0;
  for (long c : steal_latency_hist) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const long target = std::max(1L, long(q * double(total) + 0.5));
  long seen = 0;
  for (int b = 0; b < kStealLatencyBuckets; ++b) {
    seen += steal_latency_hist[std::size_t(b)];
    if (seen >= target) return std::int64_t(1) << (b + 1);  // bucket upper bound
  }
  return std::int64_t(1) << kStealLatencyBuckets;
}

std::vector<ThreadPool::WorkerProbe> ThreadPool::probe_workers() const {
  std::vector<WorkerProbe> out;
  out.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& wk = *workers_[w];
    WorkerProbe p;
    p.worker = int(w);
    for (const auto& lane : wk.lanes) p.ready += std::size_t(lane.deq.size());
    p.ready += std::size_t(std::max<long>(0, wk.inbox_size.load(std::memory_order_acquire)));
    p.running_since_ns = wk.running_since.load(std::memory_order_acquire);
    p.running_task = wk.running_task.load(std::memory_order_relaxed);
    p.running_kind = wk.running_kind.load(std::memory_order_relaxed);
    p.last_finish_ns = wk.last_finish.load(std::memory_order_acquire);
    p.tasks_home = wk.tasks_home.load(std::memory_order_relaxed);
    p.tasks_foreign = wk.tasks_foreign.load(std::memory_order_relaxed);
    for (int k = 0; k < kStealLatencyBuckets; ++k)
      p.steal_latency_hist[std::size_t(k)] =
          wk.steal_latency_hist[std::size_t(k)].load(std::memory_order_relaxed);
    out.push_back(p);
  }
  return out;
}

long ThreadPool::ready_depth() const {
  long n = 0;
  for (const auto& w : workers_) {
    for (const auto& lane : w->lanes) n += long(lane.deq.size());
    n += std::max<long>(0, w->inbox_size.load(std::memory_order_acquire));
  }
  return n;
}

ThreadPool& ThreadPool::default_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::signal_work() {
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Touch the mutex so the wakeup cannot slip between a sleeper's predicate
    // check and its wait.
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_all();
  }
}

std::shared_ptr<ThreadPool::Submission> ThreadPool::make_submission(int max_workers, bool closed) {
  auto sub = std::make_shared<Submission>();
  sub->id = obs::next_trace_submission_id();
  const int pool_size = size();
  sub->worker_count = max_workers <= 0 ? pool_size : std::min(max_workers, pool_size);
  sub->first_worker = int(next_start_.fetch_add(1, std::memory_order_relaxed) % unsigned(pool_size));
  sub->closed.store(closed, std::memory_order_relaxed);
  return sub;
}

void ThreadPool::push_inbox(Worker& w, const Item* items, std::size_t n) {
  std::lock_guard<std::mutex> lock(w.inbox_mu);
  for (std::size_t i = 0; i < n; ++i) w.inbox.push_back(items[i]);
  w.inbox_size.store(long(w.inbox.size()), std::memory_order_release);
}

ThreadPool::Component& ThreadPool::append_component(
    const std::shared_ptr<Submission>& sub, const dag::TaskGraph& g,
    std::function<void(std::int32_t)> body, std::function<void(std::exception_ptr)> on_complete,
    SchedulePriority priority, std::shared_ptr<const void> keepalive,
    const std::vector<long>* keys, bool check_closed, int copies) {
  TILEDQR_CHECK(!g.tasks.empty(), "ThreadPool: empty graph handled by caller");
  TILEDQR_CHECK(copies >= 1, "ThreadPool: copies must be >= 1");
  TILEDQR_CHECK(!keys || keys->size() == g.tasks.size(),
                "ThreadPool: keys must have one entry per task");
  Component* comp = nullptr;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    if (check_closed)
      TILEDQR_CHECK(!sub->closed.load(std::memory_order_relaxed),
                    "ThreadPool::Stream::append: stream is closed");
    const long gen = sub->generation.load(std::memory_order_relaxed) + 1;
    comp = &sub->components.emplace_back(
        g, copies, std::move(body), std::move(on_complete), keys,
        keys ? std::vector<long>() : make_priority_keys(g, priority), std::move(keepalive));
    comp->gen = gen;
    comp->owner = sub.get();
    // Queue items carry no ownership, so the submission must hold itself
    // alive while components are in flight (idempotent re-arm on re-use).
    sub->self_ref = sub;
    // inflight before generation: wait() snapshots generation and must never
    // see a generation whose component is not yet counted in flight.
    sub->inflight.fetch_add(1, std::memory_order_seq_cst);
    sub->generation.store(gen, std::memory_order_release);
  }
  active_submissions_.fetch_add(1, std::memory_order_acq_rel);

  // Initial ready set: global source ids across all copies, in descending
  // priority (ties broken ascending by id — the same total order the old
  // materialized fused graphs produced). The component address is stable
  // (deque) so racing workers on older generations are untouched.
  const std::int32_t stride = comp->stride;
  std::vector<std::int32_t> sources;
  for (size_t t = 0; t < g.tasks.size(); ++t)
    if (g.tasks[t].npred == 0)
      for (int c = 0; c < copies; ++c)
        sources.push_back(std::int32_t(c) * stride + std::int32_t(t));
  std::sort(sources.begin(), sources.end(), [&](std::int32_t a, std::int32_t b) {
    const long ka = comp->keys[size_t(a % stride)];
    const long kb = comp->keys[size_t(b % stride)];
    return ka != kb ? ka > kb : a < b;
  });

  const int pool_size = size();
  if (affine_steal_ && sub->stream) {
    // Component-affine dealing: the whole component goes to one home worker
    // so a request's tiles stay in one cache; siblings steal only when idle.
    // Homes rotate per component from the pool-level round shared by all
    // streams, unless the stream pinned a slot via its affinity hint.
    const int slot =
        sub->affinity_hint >= 0
            ? sub->affinity_hint % sub->worker_count
            : int(stream_deal_round_.fetch_add(1, std::memory_order_relaxed) %
                  unsigned(sub->worker_count));
    const int home = (sub->first_worker + slot) % pool_size;
    comp->home = home;
    // Inbox order is drained-in-order into a LIFO lane, so push ascending
    // priority: the owner pops the most urgent first.
    std::vector<Item> items;
    items.reserve(sources.size());
    for (auto it = sources.rbegin(); it != sources.rend(); ++it)
      items.push_back(Item{comp, *it});
    push_inbox(*workers_[size_t(home)], items.data(), items.size());
  } else {
    // Spread dealing: round-robin across the submission's worker set from a
    // rotating anchor. One-shot submissions rotate per submission
    // (deal_round); stream grafts draw from the pool-level round advanced by
    // the number of sources dealt — weighted round-robin, so a wide graft
    // shifts the next stream's anchor past the workers it loaded.
    const unsigned round =
        sub->stream
            ? stream_deal_round_.fetch_add(unsigned(sources.size()), std::memory_order_relaxed)
            : sub->deal_round.fetch_add(1, std::memory_order_relaxed);
    const int anchor = int(round % unsigned(sub->worker_count));
    std::vector<std::vector<std::int32_t>> dealt(size_t(sub->worker_count));
    for (size_t i = 0; i < sources.size(); ++i)
      dealt[(i + size_t(anchor)) % size_t(sub->worker_count)].push_back(sources[i]);
    for (int d = 0; d < sub->worker_count; ++d) {
      if (dealt[size_t(d)].empty()) continue;
      Worker& w = *workers_[size_t((sub->first_worker + d) % pool_size)];
      // Ascending priority into the inbox -> LIFO lane pops most urgent
      // first (the old push-reversed-pop-back behavior, one hop removed).
      std::vector<Item> items;
      items.reserve(dealt[size_t(d)].size());
      for (auto it = dealt[size_t(d)].rbegin(); it != dealt[size_t(d)].rend(); ++it)
        items.push_back(Item{comp, *it});
      push_inbox(w, items.data(), items.size());
    }
  }
  signal_work();
  return *comp;
}

std::shared_ptr<ThreadPool::Submission> ThreadPool::submit_impl(
    const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
    std::function<void(std::exception_ptr)> on_complete, SchedulePriority priority,
    int max_workers, std::shared_ptr<const void> keepalive, const std::vector<long>* keys,
    int copies) {
  auto sub = make_submission(max_workers, /*closed=*/true);
  append_component(sub, g, std::move(body), std::move(on_complete), priority,
                   std::move(keepalive), keys, /*check_closed=*/false, copies);
  return sub;
}

void ThreadPool::submit(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                        std::function<void(std::exception_ptr)> on_complete,
                        SchedulePriority priority, int max_workers,
                        std::shared_ptr<const void> keepalive, const std::vector<long>* keys,
                        int copies) {
  if (g.tasks.empty()) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  submit_impl(g, std::move(body), std::move(on_complete), priority, max_workers,
              std::move(keepalive), keys, copies);
}

std::future<void> ThreadPool::submit(const dag::TaskGraph& g,
                                     std::function<void(std::int32_t)> body,
                                     SchedulePriority priority, int max_workers,
                                     std::shared_ptr<const void> keepalive,
                                     const std::vector<long>* keys, int copies) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  submit(
      g, std::move(body),
      [promise](std::exception_ptr e) {
        if (e)
          promise->set_exception(e);
        else
          promise->set_value();
      },
      priority, max_workers, std::move(keepalive), keys, copies);
  return future;
}

void ThreadPool::run(const dag::TaskGraph& g, const std::function<void(std::int32_t)>& body,
                     SchedulePriority priority, int max_workers, const std::vector<long>* keys) {
  if (g.tasks.empty()) return;
  if (tl_pool == this) {
    // Re-entrant call from a task body: the calling worker helps execute
    // until this submission retires (blocking would deadlock the pool).
    // When no admissible work exists it parks on the epoch/cv machinery
    // like any worker (completion bumps the epoch via signal_work).
    auto sub = submit_impl(g, body, nullptr, priority, max_workers, nullptr, keys, 1);
    while (!sub->done.load(std::memory_order_acquire)) {
      const long epoch = epoch_.load(std::memory_order_seq_cst);
      if (try_run_one(tl_worker)) continue;
      if (sub->done.load(std::memory_order_acquire)) break;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lock, [&] {
        return sub->done.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    Component& comp = sub->components.front();
    std::lock_guard<std::mutex> lock(comp.err_mu);
    if (comp.error) std::rethrow_exception(comp.error);
    return;
  }
  std::promise<void> promise;
  std::future<void> future = promise.get_future();
  submit(
      g, body,
      [&promise](std::exception_ptr e) {
        if (e)
          promise.set_exception(e);
        else
          promise.set_value();
      },
      priority, max_workers, nullptr, keys, 1);
  future.get();
}

// ------------------------------------------------------------------ stream --

ThreadPool::Stream ThreadPool::open_stream(int max_workers, int affinity_hint) {
  Stream s;
  s.pool_ = this;
  s.sub_ = make_submission(max_workers, /*closed=*/false);
  s.sub_->stream = true;  // prune retired grafts + pool-level deal rotation
  s.sub_->affinity_hint = affinity_hint;
  s.sub_->streams_closed = streams_closed_;
  s.sub_->gauge_counted.store(true, std::memory_order_release);
  streams_opened_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void ThreadPool::Stream::append(const dag::TaskGraph& g, std::function<void(std::int32_t)> body,
                                std::function<void(std::exception_ptr)> on_complete,
                                std::shared_ptr<const void> keepalive,
                                const std::vector<long>* keys, int copies) {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::append: empty stream handle");
  if (g.tasks.empty()) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  pool_->append_component(sub_, g, std::move(body), std::move(on_complete),
                          SchedulePriority::CriticalPath, std::move(keepalive), keys,
                          /*check_closed=*/true, copies);
}

void ThreadPool::Stream::close() {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::close: empty stream handle");
  {
    std::lock_guard<std::mutex> lock(sub_->mu);
    sub_->closed.store(true, std::memory_order_seq_cst);
  }
  if (sub_->gauge_counted.exchange(false, std::memory_order_acq_rel))
    sub_->streams_closed->fetch_add(1, std::memory_order_relaxed);
  pool_->finalize_if_drained(*sub_);
}

void ThreadPool::Stream::wait() {
  TILEDQR_CHECK(valid(), "ThreadPool::Stream::wait: empty stream handle");
  pool_->wait_stream(sub_, sub_->generation.load(std::memory_order_acquire));
}

long ThreadPool::Stream::generation() const noexcept {
  return sub_ ? sub_->generation.load(std::memory_order_acquire) : 0;
}

long ThreadPool::Stream::retired() const noexcept {
  return sub_ ? sub_->retired_components.load(std::memory_order_acquire) : 0;
}

bool ThreadPool::Stream::closed() const noexcept {
  return sub_ ? sub_->closed.load(std::memory_order_acquire) : true;
}

void ThreadPool::finalize_if_drained(Submission& sub) {
  if (sub.inflight.load(std::memory_order_seq_cst) != 0) return;
  if (!sub.closed.load(std::memory_order_seq_cst)) return;
  if (!sub.done.exchange(true, std::memory_order_acq_rel)) signal_work();
}

void ThreadPool::wait_stream(const std::shared_ptr<Submission>& sub, long up_to_generation) {
  auto drained = [&] {
    return sub->retired_components.load(std::memory_order_acquire) >= up_to_generation;
  };
  if (tl_pool == this) {
    // Waiting from a pool worker (e.g. a task body draining a stream it
    // feeds): help execute instead of deadlocking, like run().
    while (!drained()) {
      const long epoch = epoch_.load(std::memory_order_seq_cst);
      if (try_run_one(tl_worker)) continue;
      if (drained()) break;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lock, [&] {
        return drained() || epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  sleep_cv_.wait(lock, drained);
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
}

// ----------------------------------------------------------------- workers --

void ThreadPool::worker_main(int wid) {
  tl_pool = this;
  tl_worker = wid;
  if (pin_workers_) pin_to_core(wid);
  g_tracer.set_thread_track_name(label_ + ".w" + std::to_string(wid));
  for (;;) {
    const long epoch = epoch_.load(std::memory_order_seq_cst);
    if (try_run_one(wid)) continue;
    if (stop_.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

/// Owner: move inbox items into lanes. Stops early when every lane is taken
/// by other live submissions, re-queuing the remainder in order — thieves
/// can still take those from the inbox, and the owner retries after its
/// lanes drain (recycling frees lanes), so nothing is ever stranded.
void ThreadPool::drain_inbox(Worker& self) {
  if (self.inbox_size.load(std::memory_order_acquire) == 0) return;
  std::deque<Item> moved;
  {
    std::lock_guard<std::mutex> lock(self.inbox_mu);
    moved.swap(self.inbox);
    self.inbox_size.store(0, std::memory_order_release);
  }
  while (!moved.empty()) {
    const Item item = moved.front();
    Worker::Lane* lane = self.lane_for(item.comp->owner);
    if (!lane) break;
    moved.pop_front();
    lane->deq.push(ChaseLevDeque<Component>::Entry{item.comp, item.task});
  }
  if (!moved.empty()) {
    std::lock_guard<std::mutex> lock(self.inbox_mu);
    for (auto it = moved.rbegin(); it != moved.rend(); ++it) self.inbox.push_front(*it);
    self.inbox_size.store(long(self.inbox.size()), std::memory_order_release);
  }
}

/// Owner: LIFO pop, rotating round-robin across lanes so every live
/// submission makes progress. Empty lanes are recycled in passing.
bool ThreadPool::pop_rotating(Worker& self, Item& out) {
  for (std::size_t k = 0; k < Worker::kLanes; ++k) {
    const std::size_t i = (self.rr + k) % Worker::kLanes;
    Worker::Lane& lane = self.lanes[i];
    if (lane.sub.load(std::memory_order_relaxed) == nullptr) continue;
    ChaseLevDeque<Component>::Entry e;
    if (lane.deq.pop(e)) {
      self.rr = (i + 1) % Worker::kLanes;
      out = Item{e.ptr, e.tag};
      return true;
    }
    // pop() false means the lane is now empty (a lost last-element race
    // handed the item to a thief) — recycle it for the next submission.
    lane.sub.store(nullptr, std::memory_order_relaxed);
  }
  return false;
}

/// Thief: lock-free steal from the victim's lanes, rotating from the
/// victim's steal cursor. A successful steal whose item turns out to be
/// confined to a worker set excluding the thief (the lane was recycled
/// mid-probe) is forwarded to the submission's first worker — always
/// in-set — instead of being run here.
bool ThreadPool::steal_lanes(Worker& victim, Worker& thief, int thief_wid, Item& out) {
  const int pool_size = size();
  const unsigned cursor = victim.steal_rr.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < Worker::kLanes; ++k) {
    Worker::Lane& lane = victim.lanes[(std::size_t(cursor) + k) % Worker::kLanes];
    for (;;) {
      ChaseLevDeque<Component>::Entry e;
      const auto r = lane.deq.steal(e);
      if (r == ChaseLevDeque<Component>::Steal::Empty) break;
      if (r == ChaseLevDeque<Component>::Steal::Lost) {
        thief.steal_cas_retries.fetch_add(1, std::memory_order_relaxed);
        continue;  // someone else made progress; retry this lane
      }
      Item item{e.ptr, e.tag};
      Submission* s = item.comp->owner;
      if (!s->worker_in_set(thief_wid, pool_size)) {
        // Capped work: hand it to a worker inside the set and wake it.
        push_inbox(*workers_[size_t(s->first_worker)], &item, 1);
        signal_work();
        break;  // keep scanning other lanes for admissible work
      }
      victim.steal_rr.store(cursor + unsigned(k) + 1, std::memory_order_relaxed);
      out = item;
      return true;
    }
  }
  return false;
}

/// Thief: take an admissible item from the victim's inbox (mutexed — the
/// inbox is the cold path; this keeps capped or lane-overflowed work
/// reachable while its owner is busy). Parked submissions are served
/// round-robin (oldest item of the chosen submission), mirroring the lane
/// rotation: a blocked owner's inbox may hold several streams' backlogs, and
/// a FIFO drain here would run one stream dry before touching the next —
/// exactly the unfairness the lanes exist to prevent.
bool ThreadPool::steal_inbox(Worker& victim, int thief_wid, Item& out) {
  if (victim.inbox_size.load(std::memory_order_acquire) == 0) return false;
  const int pool_size = size();
  std::lock_guard<std::mutex> lock(victim.inbox_mu);
  std::vector<Submission*> subs;  // distinct parked submissions, arrival order
  for (const Item& it : victim.inbox) {
    Submission* s = it.comp->owner;
    if (std::find(subs.begin(), subs.end(), s) == subs.end()) subs.push_back(s);
  }
  for (std::size_t k = 0; k < subs.size(); ++k) {
    Submission* want = subs[(victim.inbox_steal_rr + k) % subs.size()];
    if (!want->worker_in_set(thief_wid, pool_size)) continue;
    for (auto it = victim.inbox.begin(); it != victim.inbox.end(); ++it) {
      if (it->comp->owner != want) continue;
      out = *it;
      victim.inbox.erase(it);
      victim.inbox_size.store(long(victim.inbox.size()), std::memory_order_release);
      victim.inbox_steal_rr += unsigned(k) + 1;
      return true;
    }
  }
  return false;
}

/// Owner: push a ready successor onto the lane serving its submission;
/// falls back to the own inbox under lane pressure. Returns true always
/// (the fallback cannot fail) — the bool keeps the call sites readable.
bool ThreadPool::push_local(Worker& self, Submission* sub, Item item) {
  Worker::Lane* lane = self.lane_for(sub);
  if (lane) {
    lane->deq.push(ChaseLevDeque<Component>::Entry{item.comp, item.task});
  } else {
    push_inbox(self, &item, 1);
  }
  return true;
}

bool ThreadPool::try_run_one(int wid) {
  Worker& self = *workers_[size_t(wid)];
  drain_inbox(self);
  Item item;
  if (pop_rotating(self, item)) {
    run_item(wid, item, /*stolen=*/false);
    return true;
  }
  // Lane pressure can leave items parked in the own inbox (no free lane at
  // drain time with every lane claimed). Run the oldest directly rather
  // than stealing past work that is already ours.
  {
    bool took = false;
    if (self.inbox_size.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(self.inbox_mu);
      if (!self.inbox.empty()) {
        item = self.inbox.front();
        self.inbox.pop_front();
        self.inbox_size.store(long(self.inbox.size()), std::memory_order_release);
        took = true;
      }
    }
    if (took) {
      run_item(wid, item, /*stolen=*/false);
      return true;
    }
  }
  // Steal: scan victims round-robin — lock-free lane tops first, then the
  // mutexed inboxes (capped work parked on a busy worker lives there). The
  // scan is timed so successful steals feed the per-worker latency
  // histogram; one clock read per scan, paid only once local work ran dry.
  const int pool_size = size();
  const std::int64_t steal_t0 = pool_size > 1 ? obs::now_ns() : 0;
  for (int d = 1; d < pool_size; ++d) {
    Worker& victim = *workers_[size_t((wid + d) % pool_size)];
    if (steal_lanes(victim, self, wid, item)) {
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      self.record_steal_latency(obs::now_ns() - steal_t0);
      run_item(wid, item, /*stolen=*/true);
      return true;
    }
  }
  for (int d = 1; d < pool_size; ++d) {
    Worker& victim = *workers_[size_t((wid + d) % pool_size)];
    if (steal_inbox(victim, wid, item)) {
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      self.record_steal_latency(obs::now_ns() - steal_t0);
      run_item(wid, item, /*stolen=*/true);
      return true;
    }
  }
  if (pool_size > 1) self.empty_steal_probes.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ThreadPool::run_item(int wid, Item item, bool stolen) {
  Component& comp = *item.comp;
  // Replication: global id = copy * stride + local; graph/key lookups use
  // the local index, dependency bookkeeping the global one.
  const std::int32_t stride = comp.stride;
  const std::int32_t local = item.task % stride;
  const std::int32_t copy_base = item.task - local;
  Worker& self = *workers_[size_t(wid)];
  if (!comp.failed.load(std::memory_order_acquire)) {
    // Observability hook: one relaxed load of the combined flag word is the
    // entire cost of the disabled path — tracing and the health layer share
    // it, so the watchdog did not add a second load. When tracing is on,
    // the task's begin/end lands in this thread's trace ring and its
    // duration in the per-kernel histograms; when a HealthMonitor is live,
    // the worker's running-task slots are stamped for the watchdog.
    const unsigned obs_flags = obs::task_observation_flags().load(std::memory_order_relaxed);
    const std::int64_t t0 = obs_flags != 0 ? obs::now_ns() : 0;
    if (obs_flags & obs::kObsTaskHealth) {
      const dag::Task& t = comp.graph->tasks[size_t(local)];
      self.running_task.store(item.task, std::memory_order_relaxed);
      self.running_kind.store(std::uint8_t(t.kind), std::memory_order_relaxed);
      self.running_since.store(t0, std::memory_order_release);
    }
    try {
      comp.body(item.task);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      // Locality attribution (executed bodies only — cancelled tasks carry
      // no cache traffic): on-home for affine components means "ran on the
      // component's home worker"; spread components count un-stolen runs as
      // home (the item ran where it was queued).
      const bool on_home = comp.home >= 0 ? comp.home == wid : !stolen;
      (on_home ? self.tasks_home : self.tasks_foreign).fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(comp.err_mu);
        if (!comp.error) comp.error = std::current_exception();
      }
      comp.failed.store(true, std::memory_order_release);
    }
    if (obs_flags != 0) {
      const std::int64_t t1 = obs::now_ns();
      if (obs_flags & obs::kObsTaskTrace) {
        const dag::Task& t = comp.graph->tasks[size_t(local)];
        g_tracer.record(t0, t1, std::uint8_t(t.kind), t.i, t.piv, t.k, t.j, item.task,
                        comp.owner->id, std::int32_t(comp.gen), stolen);
        g_kernel_profiler.record(std::uint8_t(t.kind), t1 - t0);
      }
      if (obs_flags & obs::kObsTaskHealth) {
        self.running_since.store(0, std::memory_order_relaxed);
        self.last_finish.store(t1, std::memory_order_release);
      }
    }
  }
  // Propagate readiness even for cancelled tasks so the component drains and
  // completion still fires after a failure. Successors stay within the same
  // copy: global successor = copy_base + local successor.
  std::vector<std::int32_t> ready;
  for (std::int32_t s : comp.graph->tasks[size_t(local)].succ)
    if (comp.npred[size_t(copy_base + s)].fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready.push_back(copy_base + s);
  if (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), [&](std::int32_t a, std::int32_t b) {
      const long ka = comp.keys[size_t(a % stride)];
      const long kb = comp.keys[size_t(b % stride)];
      return ka != kb ? ka < kb : a > b;
    });
    // Ascending priority pushed to the own lane -> LIFO pop takes the most
    // urgent first, the same order the old mutexed deque preserved.
    Submission* sub_of_comp = comp.owner;
    for (std::int32_t s : ready) push_local(self, sub_of_comp, Item{item.comp, s});
    signal_work();
  }
  if (comp.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Component retired. Fire its completion *before* decrementing inflight:
    // a completion that grafts the next pipeline stage onto the stream keeps
    // the submission observably non-drained throughout, so close()/wait()
    // can never slip between the stages.
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(comp.err_mu);
      error = comp.error;
    }
    graphs_completed_.fetch_add(1, std::memory_order_relaxed);
    // Count the retirement *before* firing the completion: anything that
    // observes the callback's effects (a chained graft, a flag it sets) must
    // also observe retired() covering this component. The inflight decrement
    // below still comes after the callback, so close()/wait() can never see
    // the submission drained between chained pipeline stages.
    comp.owner->retired_components.fetch_add(1, std::memory_order_acq_rel);
    if (comp.on_complete) comp.on_complete(error);
    // Release everything the component captured: stream closures hold the
    // FactorStream state, which holds this submission — clearing here breaks
    // that cycle (and frees graphs/requests promptly). No task of this
    // component can run again, so nothing else reads these fields.
    comp.body = nullptr;
    comp.on_complete = nullptr;
    comp.keepalive.reset();
    comp.keys_owned = std::vector<long>();
    comp.npred = std::vector<std::atomic<std::int32_t>>();
    Submission& sub = *comp.owner;
    comp.retired.store(true, std::memory_order_release);  // last touch of comp
    if (sub.stream) {
      // Drop the fully-retired prefix so a long-lived stream's component
      // list is bounded by its in-flight window, not its request history.
      std::lock_guard<std::mutex> lock(sub.mu);
      while (!sub.components.empty() &&
             sub.components.front().retired.load(std::memory_order_acquire))
        sub.components.pop_front();
    }
    if (sub.inflight.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      finalize_if_drained(sub);
      // Last in-flight component: drop the submission's self-reference —
      // unless a racing append re-armed in between (it re-sets self_ref
      // under mu, so checking inflight under the same mutex is exact).
      // `reaper` may hold the final reference; it dies after our last
      // touch of `sub` below.
      std::shared_ptr<Submission> reaper;
      {
        std::lock_guard<std::mutex> lock(sub.mu);
        if (sub.inflight.load(std::memory_order_seq_cst) == 0)
          reaper = std::move(sub.self_ref);
      }
      active_submissions_.fetch_sub(1, std::memory_order_acq_rel);
      signal_work();  // wake help-loops, stream waiters, and a draining destructor
      return;         // `sub` must not be touched past this point
    }
    active_submissions_.fetch_sub(1, std::memory_order_acq_rel);
    signal_work();
  }
}

}  // namespace tiledqr::runtime
