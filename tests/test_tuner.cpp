// Tests for the tree autotuner: the TuningTable's JSON round-trip, the
// stage-1 model's agreement with the paper's Section 5 findings (Greedy /
// Fibonacci on tall grids, TS-family flat/plasma trees on square ones), the
// TILEDQR_TREE override, stage-2 refinement, and the QrSession auto mode's
// bitwise equivalence with explicit submission.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <tuple>
#include <utility>

#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "obs/kernel_profile.hpp"
#include "tuner/tuner.hpp"

namespace tiledqr {
namespace {

using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;
using tuner::TunedDecision;
using tuner::Tuner;
using tuner::TunerConfig;
using tuner::TuningTable;

/// RAII environment-variable override (tests run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value())
      ::setenv(name_, saved_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TunedDecision sample_decision(TreeKind kind, KernelFamily family, int bs, double makespan,
                              double seconds, bool refined) {
  TunedDecision d;
  d.config = TreeConfig{kind, family, bs, 1};
  d.model_makespan = makespan;
  d.measured_seconds = seconds;
  d.refined = refined;
  return d;
}

TEST(TuningTable, LookupCountsHitsAndMisses) {
  TuningTable table;
  EXPECT_FALSE(table.lookup(8, 4, 2, "sc11").has_value());
  auto d = sample_decision(TreeKind::Greedy, KernelFamily::TT, 1, 100.0, -1.0, false);
  table.record(8, 4, 2, "sc11", d);
  auto hit = table.lookup(8, 4, 2, "sc11");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, d);
  // Same shape under a different profile or worker count is a distinct key.
  EXPECT_FALSE(table.lookup(8, 4, 2, "table1").has_value());
  EXPECT_FALSE(table.lookup(8, 4, 3, "sc11").has_value());
  auto stats = table.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(TuningTable, JsonRoundTripWithStatsIntact) {
  TuningTable table;
  (void)table.lookup(8, 4, 2, "sc11");  // a miss, to have nonzero stats
  table.record(8, 4, 2, "sc11",
               sample_decision(TreeKind::Greedy, KernelFamily::TT, 1, 123.25, -1.0, false));
  table.record(6, 6, 4, "sc11",
               sample_decision(TreeKind::FlatTree, KernelFamily::TS, 1, 88.5, 0.0125, true));
  table.record(20, 5, 8, "measured-f64(nb=64,ib=32,in)",
               sample_decision(TreeKind::PlasmaTree, KernelFamily::TS, 5, 41.0, -1.0, false));
  (void)table.lookup(8, 4, 2, "sc11");  // a hit

  auto before = table.stats();
  EXPECT_EQ(before.hits, 1);
  EXPECT_EQ(before.misses, 1);
  EXPECT_EQ(before.refinements, 1);
  EXPECT_EQ(before.entries, 3u);

  TuningTable loaded = TuningTable::from_json(table.to_json());
  auto after = loaded.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.refinements, before.refinements);
  EXPECT_EQ(after.entries, before.entries);

  for (auto [p, q, w, profile] :
       {std::tuple{8, 4, 2, "sc11"}, std::tuple{6, 6, 4, "sc11"},
        std::tuple{20, 5, 8, "measured-f64(nb=64,ib=32,in)"}}) {
    auto original = table.lookup(p, q, w, profile);
    auto restored = loaded.lookup(p, q, w, profile);
    ASSERT_TRUE(original.has_value() && restored.has_value()) << p << "x" << q;
    EXPECT_EQ(*original, *restored) << p << "x" << q;
  }
}

TEST(TuningTable, SaveLoadFile) {
  std::string path = testing::TempDir() + "tiledqr_tuning_table_test.json";
  TuningTable table;
  table.record(10, 2, 4, "table1",
               sample_decision(TreeKind::Fibonacci, KernelFamily::TT, 1, 64.0, -1.0, false));
  table.save(path);
  TuningTable loaded = TuningTable::load(path);
  auto hit = loaded.lookup(10, 2, 4, "table1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->config.kind, TreeKind::Fibonacci);
  std::remove(path.c_str());
  // Missing file: load_or_empty yields a fresh table, load throws.
  EXPECT_EQ(TuningTable::load_or_empty(path).stats().entries, 0u);
  EXPECT_THROW((void)TuningTable::load(path), Error);
}

TEST(TuningTable, EscapesRoundTripInProfileIds) {
  TuningTable table;
  std::string hostile = "quote\" slash\\ nl\n tab\t ctrl\x01 done";
  table.record(3, 2, 1, hostile,
               sample_decision(TreeKind::Greedy, KernelFamily::TT, 1, 10.0, -1.0, false));
  std::string json = table.to_json();
  // Raw control characters are illegal in JSON strings — the writer must
  // \u-escape them so external tools accept the file.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  TuningTable loaded = TuningTable::from_json(json);
  EXPECT_TRUE(loaded.lookup(3, 2, 1, hostile).has_value());
}

TEST(TuningTable, RecordKeepsFirstDecision) {
  TuningTable table;
  auto first = sample_decision(TreeKind::Greedy, KernelFamily::TT, 1, 10.0, 0.5, true);
  auto second = sample_decision(TreeKind::FlatTree, KernelFamily::TS, 1, 20.0, 0.4, true);
  EXPECT_EQ(table.record(4, 4, 2, "sc11", first), first);
  // Later records for the same key are ignored and get the stored entry back.
  EXPECT_EQ(table.record(4, 4, 2, "sc11", second), first);
  auto stats = table.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.refinements, 1);  // the dropped record must not count
}

TEST(TuningTable, MalformedJsonThrows) {
  EXPECT_THROW((void)TuningTable::from_json("{"), Error);
  EXPECT_THROW((void)TuningTable::from_json("[]"), Error);
  // Deep nesting must throw, not overflow the parser's stack.
  EXPECT_THROW((void)TuningTable::from_json(std::string(100000, '[')), Error);
  EXPECT_THROW((void)TuningTable::from_json("{\"version\": 2, \"stats\": {\"hits\": 0, "
                                            "\"misses\": 0, \"refinements\": 0}, "
                                            "\"entries\": []}"),
               Error);
  EXPECT_THROW(
      (void)TuningTable::from_json(
          "{\"version\": 1, \"stats\": {\"hits\": 0, \"misses\": 0, \"refinements\": 0}, "
          "\"entries\": [{\"p\": 2, \"q\": 2, \"workers\": 1, \"profile\": \"x\", "
          "\"kind\": \"NoSuchTree\", \"family\": \"TT\", \"bs\": 1, \"grasap_k\": 1, "
          "\"model_makespan\": 0, \"measured_seconds\": -1, \"refined\": false}]}"),
      Error);
  // A malformed number must fail loudly, not load as a truncated value.
  EXPECT_THROW((void)TuningTable::from_json("{\"version\": 1.2.3, \"stats\": {\"hits\": 0, "
                                            "\"misses\": 0, \"refinements\": 0}, "
                                            "\"entries\": []}"),
               Error);
  // Out-of-range values fail at load, not at request time.
  EXPECT_THROW(
      (void)TuningTable::from_json(
          "{\"version\": 1, \"stats\": {\"hits\": 0, \"misses\": 0, \"refinements\": 0}, "
          "\"entries\": [{\"p\": 2, \"q\": 2, \"workers\": 1, \"profile\": \"x\", "
          "\"kind\": \"PlasmaTree\", \"family\": \"TS\", \"bs\": 0, \"grasap_k\": 1, "
          "\"model_makespan\": 0, \"measured_seconds\": -1, \"refined\": false}]}"),
      Error);
}

TEST(Tuner, ModelPicksGreedyOrFibonacciForTallShapes) {
  Tuner tuner;  // sc11 profile, model-only
  core::PlanCache cache;
  for (auto [p, q, workers] : {std::tuple{16, 4, 16}, std::tuple{32, 4, 16},
                               std::tuple{32, 4, 48}, std::tuple{64, 4, 48}}) {
    ASSERT_GE(p, 4 * q);
    auto d = tuner.decide(p, q, workers, cache);
    EXPECT_TRUE(d.config.kind == TreeKind::Greedy || d.config.kind == TreeKind::Fibonacci)
        << p << "x" << q << " on " << workers << " -> " << d.config.name();
    EXPECT_FALSE(d.refined);
    EXPECT_GT(d.model_makespan, 0.0);
  }
}

TEST(Tuner, ModelPicksTsFlatOrPlasmaForSquareShapes) {
  Tuner tuner;
  core::PlanCache cache;
  for (auto [p, workers] : {std::pair{8, 8}, std::pair{16, 16}, std::pair{30, 48}}) {
    auto d = tuner.decide(p, p, workers, cache);
    EXPECT_TRUE(d.config.kind == TreeKind::FlatTree || d.config.kind == TreeKind::PlasmaTree)
        << p << "x" << p << " on " << workers << " -> " << d.config.name();
    EXPECT_EQ(d.config.family, KernelFamily::TS)
        << p << "x" << p << " on " << workers << " -> " << d.config.name();
  }
}

TEST(Tuner, RankingIsSortedAndCoversCandidateSet) {
  Tuner tuner;
  core::PlanCache cache;
  auto ranked = tuner.rank_candidates(12, 4, 8, cache);
  ASSERT_EQ(ranked.size(), 7u);  // Greedy, Fib, Binary, Flat x2, Plasma x2
  for (size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].model_makespan, ranked[i].model_makespan);
  // Candidate plans went through the shared cache.
  EXPECT_GE(cache.stats().entries, ranked.size() - 1);  // plasma may collide with flat/binary
}

TEST(Tuner, SecondDecisionIsATableHit) {
  Tuner tuner;
  core::PlanCache cache;
  auto first = tuner.decide(12, 3, 4, cache);
  auto second = tuner.decide(12, 3, 4, cache);
  EXPECT_EQ(first, second);
  auto stats = tuner.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Tuner, EnvOverrideForcesTree) {
  core::PlanCache cache;
  {
    ScopedEnv env("TILEDQR_TREE", "binary");
    Tuner tuner;
    auto d = tuner.decide(16, 4, 8, cache);
    EXPECT_EQ(d.config.kind, TreeKind::BinaryTree);
    // Overrides bypass the table entirely.
    EXPECT_EQ(tuner.stats().entries, 0u);
  }
  {
    ScopedEnv env("TILEDQR_TREE", "plasma");
    Tuner tuner;
    auto d = tuner.decide(16, 4, 8, cache);
    EXPECT_EQ(d.config.kind, TreeKind::PlasmaTree);
    EXPECT_EQ(d.config.family, KernelFamily::TS);
    EXPECT_EQ(d.config.bs, core::best_plasma_bs(16, 4, KernelFamily::TS).bs);
  }
  {
    ScopedEnv env("TILEDQR_TREE", "flat-tt");
    Tuner tuner;
    auto d = tuner.decide(16, 4, 8, cache);
    EXPECT_EQ(d.config.kind, TreeKind::FlatTree);
    EXPECT_EQ(d.config.family, KernelFamily::TT);
  }
  {
    // "auto" (and unknown values) fall through to the model.
    ScopedEnv env("TILEDQR_TREE", "auto");
    Tuner tuner;
    auto d = tuner.decide(32, 4, 48, cache);
    EXPECT_TRUE(d.config.kind == TreeKind::Greedy || d.config.kind == TreeKind::Fibonacci);
    EXPECT_EQ(tuner.stats().misses, 1);
  }
}

TEST(Tuner, RefinementTimesTopCandidatesOnPool) {
  TunerConfig config;
  config.refine_top_k = 2;
  config.refine_reps = 1;
  config.refine_nb = 16;  // tiny tiles: stage 2 must stay test-cheap
  config.refine_ib = 8;
  Tuner tuner(std::move(config));
  core::PlanCache cache;
  runtime::ThreadPool pool(2);
  auto d = tuner.decide(6, 3, 2, cache, &pool);
  EXPECT_TRUE(d.refined);
  EXPECT_GT(d.measured_seconds, 0.0);
  EXPECT_EQ(tuner.stats().refinements, 1);
  // The refined decision is memoized like any other.
  auto again = tuner.decide(6, 3, 2, cache, &pool);
  EXPECT_EQ(d, again);
  EXPECT_EQ(tuner.stats().hits, 1);
}

TEST(Tuner, AcceptsLiveProfileAndRoundTripsThroughTable) {
  // A WeightProfile built from live trace histograms (the observability
  // layer's kernel profiler) drives the tuner like any synthetic profile,
  // and its decisions persist under the "live" id.
  obs::KernelProfiler prof;
  // Plausible per-QR-kernel timings: updates cost more than panels, TS
  // kernels run at higher rate than TT (the paper's §5 asymmetry). The
  // profiler tracks the LQ kinds in separate histograms, so feed each LQ
  // kind the same timing as its QR dual: the folded 6-wide profile must
  // come out at exactly those means.
  const std::int64_t ns[kernels::kNumQrKernelKinds] = {40000, 55000, 52000,
                                                       90000, 60000, 110000};
  for (int kind = 0; kind < obs::KernelProfiler::kKinds; ++kind) {
    const int slot = int(kernels::qr_dual(static_cast<kernels::KernelKind>(kind)));
    for (int s = 0; s < 32; ++s) prof.record(std::uint8_t(kind), ns[slot]);
  }

  perf::WeightProfile live = prof.live_profile();
  EXPECT_EQ(live.id, "live");
  for (int slot = 0; slot < kernels::kNumQrKernelKinds; ++slot)
    EXPECT_NEAR(live.weight[std::size_t(slot)], double(ns[slot]) / 1e9, 1e-12);

  TunerConfig config;
  config.profile = live;
  Tuner tuner(std::move(config));
  core::PlanCache cache;
  auto d = tuner.decide(12, 3, 4, cache);
  EXPECT_GT(d.model_makespan, 0.0);

  // The decision round-trips through the TuningTable JSON under the live id.
  TuningTable loaded = TuningTable::from_json(tuner.table().to_json());
  auto hit = loaded.lookup(12, 3, 4, "live");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, d);
  // ...and a tuner resuming from that table serves it as a hit.
  Tuner resumed(TunerConfig{.profile = live});
  resumed.table() = std::move(loaded);
  EXPECT_EQ(resumed.decide(12, 3, 4, cache), d);
  // Two hits: the direct lookup() above and the resumed decide().
  EXPECT_EQ(resumed.stats().hits, 2);
}

TEST(Tuner, TablePersistsAcrossTunerLifetimes) {
  std::string path = testing::TempDir() + "tiledqr_tuner_persist_test.json";
  std::remove(path.c_str());
  TunerConfig config;
  config.table_path = path;
  core::PlanCache cache;
  TunedDecision first;
  {
    Tuner tuner(config);
    first = tuner.decide(24, 4, 8, cache);
    EXPECT_EQ(tuner.stats().misses, 1);
  }  // destructor saves
  {
    Tuner tuner(config);  // constructor loads
    auto d = tuner.decide(24, 4, 8, cache);
    EXPECT_EQ(d, first);
    auto stats = tuner.stats();
    EXPECT_EQ(stats.hits, 1);   // served from the loaded table...
    EXPECT_EQ(stats.misses, 1);  // ...whose persisted miss counter survived
  }
  std::remove(path.c_str());
}

TEST(QrSessionAuto, FactorizesWithoutTreeConfigAndMatchesExplicitBitwise) {
  core::QrSession session(core::QrSession::Config{.threads = 3});
  const int nb = 16;
  core::QrSession::AutoOptions auto_opt;
  auto_opt.nb = nb;
  auto_opt.ib = 8;

  for (auto [m, n] : {std::pair<std::int64_t, std::int64_t>{96, 32},
                      std::pair<std::int64_t, std::int64_t>{64, 64}}) {
    auto a = random_matrix<double>(m, n, 0xA0 + unsigned(m));
    auto auto_qr = session.factorize_auto<double>(a.view(), auto_opt);

    // The tree the tuner chose for this shape, resubmitted explicitly.
    core::Options explicit_opt;
    explicit_opt.tree = session.choose_tree(int((m + nb - 1) / nb), int((n + nb - 1) / nb));
    explicit_opt.nb = nb;
    explicit_opt.ib = 8;
    EXPECT_EQ(auto_qr.options().tree, explicit_opt.tree);
    auto explicit_qr = session.submit(ConstMatrixView<double>(a.view()), explicit_opt).get();

    auto lhs = auto_qr.factors().to_dense();
    auto rhs = explicit_qr.factors().to_dense();
    ASSERT_EQ(lhs.rows(), rhs.rows());
    ASSERT_EQ(lhs.cols(), rhs.cols());
    for (std::int64_t i = 0; i < lhs.rows(); ++i)
      for (std::int64_t j = 0; j < lhs.cols(); ++j)
        ASSERT_EQ(lhs(i, j), rhs(i, j)) << m << "x" << n << " @ " << i << "," << j;
  }
  // One decision per shape: the second factorization of a shape hits the
  // tuning table (choose_tree above also hit it).
  auto stats = session.tuning_stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_GE(stats.hits, 2);
}

TEST(QrSessionAuto, PreTiledInputKeepsItsTiling) {
  core::QrSession session(core::QrSession::Config{.threads = 2});
  auto dense = random_matrix<double>(60, 20, 77);
  auto tiles = TileMatrix<double>::from_dense(dense.view(), 10);
  core::QrSession::AutoOptions opt;
  opt.nb = 128;  // must be ignored for pre-tiled inputs
  opt.ib = 8;
  auto qr = session.factorize_auto(std::move(tiles), opt);
  EXPECT_EQ(qr.factors().nb(), 10);
  // Sanity: residual-free R diagonal (factorization actually ran).
  auto r = qr.r_factor();
  EXPECT_NE(r(0, 0), 0.0);
}

}  // namespace
}  // namespace tiledqr
