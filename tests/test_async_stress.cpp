// Deterministic concurrency stress for the async serving API: several
// client threads hammer ONE QrSession, interleaving submit, fused
// factorize_batch, apply_q_async round trips, and the full
// solve_least_squares_async pipeline. Every client checks its own results
// against a fixed-seed reference, so any cross-talk between in-flight
// submissions shows up as a value mismatch (and any data race shows up in
// the CI TSan job, which runs the `fast` ctest label with
// -fsanitize=thread).
//
// TILEDQR_STRESS=1 (the ctest `stress` label) multiplies the round count.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "core/qr_session.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::QrSession;
using core::TiledQr;
using kernels::ApplyTrans;

Options stress_opt() {
  Options opt;
  // Pinned tree: the bitwise references below run the synchronous Greedy
  // default; a disengaged tree would autotune the batch/pipeline paths.
  opt.tree = trees::TreeConfig{};
  opt.nb = 16;
  opt.ib = 8;
  return opt;
}

int stress_rounds() { return env_flag("TILEDQR_STRESS") ? 12 : 2; }

/// Collects client-side failures; gtest assertions are not thread-safe
/// enough to fire from workers, so clients record and the main thread
/// asserts.
class FailureLog {
 public:
  void add(std::string what) {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back(std::move(what));
  }
  [[nodiscard]] std::vector<std::string> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> failures_;
};

bool bitwise_equal(const Matrix<double>& a, const Matrix<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i)
      if (a(i, j) != b(i, j)) return false;
  return true;
}

TEST(AsyncStress, InterleavedClientsOnOneSession) {
  QrSession session(QrSession::Config{4});
  auto opt = stress_opt();
  const int rounds = stress_rounds();
  const std::int64_t m = 3 * 16, n = 2 * 16;
  FailureLog log;

  // Client 0: single async submits, checked bitwise against the synchronous
  // single-thread factorization.
  std::thread submitter([&] {
    for (int r = 0; r < rounds; ++r) {
      std::vector<Matrix<double>> inputs;
      std::vector<std::future<TiledQr<double>>> futures;
      for (int i = 0; i < 4; ++i)
        inputs.push_back(random_matrix<double>(m, n, 1000 + unsigned(r) * 10 + unsigned(i)));
      for (auto& a : inputs)
        futures.push_back(session.submit(ConstMatrixView<double>(a.view()), opt));
      for (int i = 0; i < 4; ++i) {
        auto got = futures[size_t(i)].get().factors().to_dense();
        auto sync_opt = opt;
        sync_opt.threads = 1;
        auto want =
            TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt).factors().to_dense();
        if (!bitwise_equal(got, want))
          log.add("submit mismatch round " + std::to_string(r) + " i " + std::to_string(i));
      }
    }
  });

  // Client 1: fused batches, checked bitwise the same way.
  std::thread batcher([&] {
    for (int r = 0; r < rounds; ++r) {
      std::vector<Matrix<double>> inputs;
      for (int i = 0; i < 4; ++i)
        inputs.push_back(random_matrix<double>(m, n, 2000 + unsigned(r) * 10 + unsigned(i)));
      std::vector<ConstMatrixView<double>> views;
      for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));
      std::vector<TiledQr<double>> results;
      try {
        results = session.factorize_batch(views, opt);
      } catch (const std::exception& e) {
        log.add(std::string("batch threw: ") + e.what());
        continue;
      }
      for (int i = 0; i < 4; ++i) {
        auto sync_opt = opt;
        sync_opt.threads = 1;
        auto want =
            TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt).factors().to_dense();
        if (!bitwise_equal(results[size_t(i)].factors().to_dense(), want))
          log.add("batch mismatch round " + std::to_string(r) + " i " + std::to_string(i));
      }
    }
  });

  // Client 2: the full async least-squares pipeline, checked bitwise against
  // the synchronous sequential solve (same kernels, same order per tile).
  std::thread solver([&] {
    for (int r = 0; r < rounds; ++r) {
      auto a = random_matrix<double>(m, n, 3000 + unsigned(r));
      auto b = random_matrix<double>(m, 2, 3500 + unsigned(r));
      Matrix<double> got;
      try {
        got = session.solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                                 ConstMatrixView<double>(b.view()), opt).get();
      } catch (const std::exception& e) {
        log.add(std::string("pipeline threw: ") + e.what());
        continue;
      }
      auto sync_opt = opt;
      sync_opt.threads = 1;
      auto want = TiledQr<double>::factorize(a.view(), sync_opt).solve_least_squares(b.view());
      if (!bitwise_equal(got, want)) log.add("pipeline mismatch round " + std::to_string(r));
    }
  });

  // Client 3: apply_q_async round trips (Q then Q^T restores the input).
  std::thread applier([&] {
    for (int r = 0; r < rounds; ++r) {
      auto a = random_matrix<double>(m, n, 4000 + unsigned(r));
      auto qr = session.submit(ConstMatrixView<double>(a.view()), opt).get();
      auto c0 = random_matrix<double>(m, 16, 4500 + unsigned(r));
      auto c = TileMatrix<double>::from_dense(c0.view(), opt.nb);
      try {
        c = session.apply_q_async(qr, ApplyTrans::NoTrans, std::move(c)).get();
        c = session.apply_q_async(qr, ApplyTrans::ConjTrans, std::move(c)).get();
      } catch (const std::exception& e) {
        log.add(std::string("apply threw: ") + e.what());
        continue;
      }
      auto back = c.to_dense();
      if (double(difference_norm<double>(back.view(), c0.view())) > 1e-10)
        log.add("apply round trip off round " + std::to_string(r));
    }
  });

  submitter.join();
  batcher.join();
  solver.join();
  applier.join();
  for (const auto& f : log.take()) ADD_FAILURE() << f;
}

TEST(AsyncStress, PipelineMatchesReferenceSolution) {
  // One quiet sanity pass: the async pipeline agrees with the dense
  // reference least-squares solver at numerical tolerance.
  QrSession session(QrSession::Config{2});
  auto opt = stress_opt();
  const std::int64_t m = 45, n = 17;  // ragged on purpose
  auto a = random_matrix<double>(m, n, 11);
  auto b = random_matrix<double>(m, 3, 13);
  auto x = session.solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                                 ConstMatrixView<double>(b.view()), opt).get();
  auto xref = kernels::reference_least_squares<double>(a.view(), b.view());
  EXPECT_LE(double(difference_norm<double>(x.view(), xref.view())), 1e-10);
}

TEST(AsyncStress, PipelinesSurviveSessionChurn) {
  // Sessions created and destroyed with pipelines in flight: the pool
  // destructor must drain chained stages (factorize → apply → solve), so
  // every future resolves even though the session dies right away.
  auto opt = stress_opt();
  for (int r = 0; r < 3; ++r) {
    auto a = random_matrix<double>(64, 32, 100 + unsigned(r));
    auto b = random_matrix<double>(64, 1, 200 + unsigned(r));
    std::future<Matrix<double>> x;
    {
      QrSession session(QrSession::Config{2});
      x = session.solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                                 ConstMatrixView<double>(b.view()), opt);
    }  // ~QrSession drains the in-flight pipeline
    EXPECT_EQ(x.get().rows(), 32);
  }
}

}  // namespace
}  // namespace tiledqr
