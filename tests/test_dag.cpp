// Tests for the task-graph builder: structure, dependency conformance with
// paper §2.1, the total-weight invariant, and error handling.
#include <gtest/gtest.h>

#include <set>

#include "dag/task_graph.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using dag::build_task_graph;
using kernels::KernelKind;
using trees::EliminationList;
using trees::KernelFamily;

long expected_weight(int p, int q) { return 6L * p * q * q - 2L * q * q * q; }

TEST(TaskGraph, TotalWeightInvariantAcrossAlgorithms) {
  // Paper §2.2: any valid elimination list totals 6pq^2 - 2q^3 (p >= q),
  // with TT and TS kernels alike.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{3, 2}, {8, 3}, {15, 6}, {10, 10}}) {
    std::vector<EliminationList> lists{
        trees::flat_tree(p, q, KernelFamily::TT), trees::flat_tree(p, q, KernelFamily::TS),
        trees::binary_tree(p, q),                 trees::fibonacci_tree(p, q),
        trees::greedy_tree(p, q),                 trees::plasma_tree(p, q, 3, KernelFamily::TS),
    };
    for (const auto& list : lists)
      EXPECT_EQ(build_task_graph(p, q, list).total_weight(), expected_weight(p, q))
          << p << "x" << q;
  }
}

TEST(TaskGraph, EdgesRespectEmissionOrder) {
  auto g = build_task_graph(12, 5, trees::greedy_tree(12, 5));
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    EXPECT_LE(g.tasks[t].npred, std::int32_t(t));  // preds must come earlier
    for (auto s : g.tasks[t].succ) EXPECT_GT(size_t(s), t);  // topological order
  }
  // npred totals must equal edge count.
  size_t npred_sum = 0;
  for (const auto& t : g.tasks) npred_sum += size_t(t.npred);
  EXPECT_EQ(npred_sum, g.edge_count());
}

TEST(TaskGraph, ZeroTaskMappingComplete) {
  const int p = 9, q = 4;
  auto g = build_task_graph(p, q, trees::fibonacci_tree(p, q));
  for (int i = 0; i < p; ++i)
    for (int k = 0; k < q; ++k) {
      auto id = g.zero_task_index(i, k);
      if (i > k) {
        ASSERT_GE(id, 0) << i << "," << k;
        auto kind = g.tasks[size_t(id)].kind;
        EXPECT_TRUE(kind == KernelKind::TTQRT || kind == KernelKind::TSQRT);
        EXPECT_EQ(g.tasks[size_t(id)].i, i);
        EXPECT_EQ(g.tasks[size_t(id)].k, k);
      } else {
        EXPECT_EQ(id, -1);
      }
    }
}

TEST(TaskGraph, SingleTtEliminationMatchesPaperDependencies) {
  // Algorithm 3 on a 2x2 grid: GEQRT x2, UNMQR x2, TTQRT, TTMQR (+ final
  // diagonal GEQRT). The paper's dependency list must hold, and no false
  // UNMQR -> TTQRT edge may exist (the NODEP fix).
  EliminationList list{{1, 0, 0, false}};
  auto g = build_task_graph(2, 2, list);
  auto find = [&](KernelKind kind, int i) -> const dag::Task* {
    for (const auto& t : g.tasks)
      if (t.kind == kind && t.i == i) return &t;
    return nullptr;
  };
  const auto* geqrt1 = find(KernelKind::GEQRT, 1);
  const auto* unmqr1 = find(KernelKind::UNMQR, 1);
  const auto* ttqrt = find(KernelKind::TTQRT, 1);
  ASSERT_TRUE(geqrt1 && unmqr1 && ttqrt);
  auto has_succ = [&](const dag::Task* a, const dag::Task* b) {
    long ib = b - g.tasks.data();
    for (auto s : a->succ)
      if (s == ib) return true;
    return false;
  };
  EXPECT_TRUE(has_succ(geqrt1, ttqrt));   // GEQRT(i,k) < TTQRT
  EXPECT_TRUE(has_succ(geqrt1, unmqr1));  // GEQRT(i,k) < UNMQR(i,k,j)
  EXPECT_FALSE(has_succ(unmqr1, ttqrt));  // no false WAR edge on the V tile
}

TEST(TaskGraph, TsEliminationEmitsNoVictimGeqrt) {
  EliminationList list{{1, 0, 0, true}};
  auto g = build_task_graph(2, 1, list);
  int geqrt_count = 0;
  for (const auto& t : g.tasks)
    if (t.kind == KernelKind::GEQRT) ++geqrt_count;
  EXPECT_EQ(geqrt_count, 1);  // only the pivot tile is triangularized
}

TEST(TaskGraph, SquareMatrixGetsFinalDiagonalGeqrt) {
  const int n = 4;
  auto g = build_task_graph(n, n, trees::greedy_tree(n, n));
  int diag_geqrt = 0;
  for (const auto& t : g.tasks)
    if (t.kind == KernelKind::GEQRT && t.i == n - 1 && t.k == n - 1) ++diag_geqrt;
  EXPECT_EQ(diag_geqrt, 1);
}

TEST(TaskGraph, InvalidListsThrowWithDiagnostics) {
  EliminationList missing{{1, 0, 0, false}};
  EXPECT_THROW((void)build_task_graph(3, 1, missing), Error);
  EliminationList ts_on_triangle{{3, 2, 0, false}, {2, 0, 0, true}, {1, 0, 0, false}};
  EXPECT_THROW((void)build_task_graph(4, 1, ts_on_triangle), Error);
}

TEST(TaskGraph, TaskCountsForFlatTree) {
  // FlatTree p x q (TT): per column k, (p - k) GEQRTs, (p - k)(q - k - 1)
  // UNMQRs, (p - k - 1) TTQRTs and (p - k - 1)(q - k - 1) TTMQRs.
  const int p = 7, q = 3;
  auto g = build_task_graph(p, q, trees::flat_tree(p, q, KernelFamily::TT));
  std::array<int, 6> counts{};
  for (const auto& t : g.tasks) counts[size_t(t.kind)]++;
  int geqrt = 0, unmqr = 0, ttqrt = 0, ttmqr = 0;
  for (int k = 0; k < q; ++k) {
    geqrt += p - k;
    unmqr += (p - k) * (q - k - 1);
    ttqrt += p - k - 1;
    ttmqr += (p - k - 1) * (q - k - 1);
  }
  EXPECT_EQ(counts[size_t(KernelKind::GEQRT)], geqrt);
  EXPECT_EQ(counts[size_t(KernelKind::UNMQR)], unmqr);
  EXPECT_EQ(counts[size_t(KernelKind::TTQRT)], ttqrt);
  EXPECT_EQ(counts[size_t(KernelKind::TTMQR)], ttmqr);
  EXPECT_EQ(counts[size_t(KernelKind::TSQRT)], 0);
  EXPECT_EQ(counts[size_t(KernelKind::TSMQR)], 0);
}

TEST(TaskGraph, InferDependenciesReproducesBuilderEdges) {
  // The analyzer rebuilds a DAG from a trace that records only kinds and
  // tile coordinates; infer_dependencies must reproduce the builder's edges
  // exactly for any tree shape, or the offline critical path drifts from the
  // in-process one.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{4, 2}, {8, 3}, {6, 6}}) {
    for (const auto& list : {trees::greedy_tree(p, q), trees::flat_tree(p, q, KernelFamily::TS),
                             trees::plasma_tree(p, q, 2, KernelFamily::TT)}) {
      auto g = build_task_graph(p, q, list);
      std::vector<dag::Task> stripped;
      for (const auto& t : g.tasks)
        stripped.push_back(dag::Task{t.kind, t.i, t.piv, t.k, t.j, 0, {}});
      dag::infer_dependencies(p, q, stripped);
      ASSERT_EQ(stripped.size(), g.tasks.size());
      for (size_t t = 0; t < g.tasks.size(); ++t) {
        EXPECT_EQ(stripped[t].npred, g.tasks[t].npred) << p << "x" << q << " task " << t;
        EXPECT_EQ(stripped[t].succ, g.tasks[t].succ) << p << "x" << q << " task " << t;
      }
    }
  }
}

TEST(TaskGraph, Lemma1TransformPreservesCriticalPathLength) {
  // Build a list with reverse eliminations, remove them, and check the
  // execution time is unchanged (Lemma 1).
  EliminationList rev{{1, 3, 0, false}, {2, 3, 0, false}, {3, 0, 0, false}};
  ASSERT_TRUE(trees::validate_elimination_list(4, 1, rev).ok);
  auto fwd = trees::remove_reverse_eliminations(4, 1, rev);
  auto g1 = build_task_graph(4, 1, rev);
  auto g2 = build_task_graph(4, 1, fwd);
  // Weighted longest paths agree (computed in test_critical_path too; here
  // just compare total weights and task counts as a structural check).
  EXPECT_EQ(g1.total_weight(), g2.total_weight());
  EXPECT_EQ(g1.tasks.size(), g2.tasks.size());
}

}  // namespace
}  // namespace tiledqr
