// Tests for the QrSession serving front end: async submit, batched
// factorization, bitwise agreement with the synchronous API, plan-cache
// amortization across a batch, and error surfacing.
#include <gtest/gtest.h>

#include <vector>

#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::QrSession;
using core::TiledQr;

Options small_opt() {
  Options opt;
  opt.nb = 32;
  opt.ib = 16;
  return opt;
}

template <typename T>
void expect_bitwise_equal(const TiledQr<T>& a, const TiledQr<T>& b) {
  auto da = a.factors().to_dense();
  auto db = b.factors().to_dense();
  ASSERT_EQ(da.rows(), db.rows());
  ASSERT_EQ(da.cols(), db.cols());
  for (std::int64_t j = 0; j < da.cols(); ++j)
    for (std::int64_t i = 0; i < da.rows(); ++i)
      ASSERT_EQ(da(i, j), db(i, j)) << "(" << i << "," << j << ")";
}

TEST(QrSession, SubmitMatchesSynchronousFactorize) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  auto a = random_matrix<double>(8 * 32, 4 * 32, 11);

  auto future = session.submit(ConstMatrixView<double>(a.view()), opt);
  auto async_qr = future.get();

  auto sync_opt = opt;
  sync_opt.threads = 1;
  auto sync_qr = TiledQr<double>::factorize(a.view(), sync_opt);
  expect_bitwise_equal(async_qr, sync_qr);

  // The async result is a fully usable TiledQr.
  auto q = async_qr.q_thin();
  EXPECT_LE(double(orthogonality_error<double>(q.view())), 1e-11);
}

TEST(QrSession, ManyOutstandingFuturesResolve) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  constexpr int kJobs = 24;
  std::vector<Matrix<double>> inputs;
  std::vector<std::future<TiledQr<double>>> futures;
  for (int i = 0; i < kJobs; ++i)
    inputs.push_back(random_matrix<double>(6 * 32, 3 * 32, 100 + i));
  for (int i = 0; i < kJobs; ++i)
    futures.push_back(session.submit(ConstMatrixView<double>(inputs[size_t(i)].view()), opt));
  for (int i = 0; i < kJobs; ++i) {
    auto qr = futures[size_t(i)].get();
    auto sync_opt = opt;
    sync_opt.threads = 1;
    auto expect = TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt);
    expect_bitwise_equal(qr, expect);
  }
}

TEST(QrSession, BatchMatchesSerialAndPreservesOrder) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  constexpr int kBatch = 16;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_matrix<double>(5 * 32, 2 * 32, 1000 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& m : inputs) views.push_back(ConstMatrixView<double>(m.view()));

  auto results = session.factorize_batch(views, opt);
  ASSERT_EQ(results.size(), size_t(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    auto sync_opt = opt;
    sync_opt.threads = 1;
    auto expect = TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt);
    expect_bitwise_equal(results[size_t(i)], expect);
  }
}

TEST(QrSession, BatchAmortizesPlanningAcrossRepeatedShapes) {
  QrSession session(QrSession::Config{2});
  auto opt = small_opt();
  constexpr int kBatch = 12;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_matrix<double>(4 * 32, 2 * 32, 2000 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& m : inputs) views.push_back(ConstMatrixView<double>(m.view()));
  (void)session.factorize_batch(views, opt);

  auto stats = session.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kBatch - 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hit_rate(), 0.9);
}

TEST(QrSession, MixedShapesInOneSession) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  auto tall = random_matrix<double>(9 * 32, 2 * 32, 1);
  auto square = random_matrix<double>(4 * 32, 4 * 32, 2);
  auto f1 = session.submit(ConstMatrixView<double>(tall.view()), opt);
  auto f2 = session.submit(ConstMatrixView<double>(square.view()), opt);
  auto qr_tall = f1.get();
  auto qr_square = f2.get();
  EXPECT_LE(double(orthogonality_error<double>(qr_tall.q_thin().view())), 1e-11);
  // Solve with the square factorization to exercise apply_q on the result.
  auto b = random_matrix<double>(4 * 32, 2, 3);
  auto x = qr_square.solve(b.view());
  Matrix<double> ax(b.rows(), b.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, square.view(), x.view(), 0.0, ax.view());
  EXPECT_LE(double(difference_norm<double>(ax.view(), b.view()) /
                   frobenius_norm<double>(b.view())),
            1e-9);
  EXPECT_EQ(session.plan_cache_stats().entries, 2u);
}

TEST(QrSession, InvalidOptionsThrowOnSubmit) {
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(64, 32, 4);
  Options opt;
  opt.nb = 0;  // invalid tile size: tiling the input must fail loudly
  EXPECT_THROW((void)session.submit(ConstMatrixView<double>(a.view()), opt), Error);
}

TEST(QrSession, SessionOutlivesNothingItHandsOut) {
  // Futures resolved before the session dies; results stay valid after.
  std::vector<TiledQr<double>> keep;
  auto a = random_matrix<double>(4 * 32, 2 * 32, 5);
  {
    QrSession session(QrSession::Config{2});
    auto opt = small_opt();
    keep.push_back(session.submit(ConstMatrixView<double>(a.view()), opt).get());
  }
  // The TiledQr owns (shared) plan + tiles; usable after the session is gone.
  EXPECT_LE(double(orthogonality_error<double>(keep[0].q_thin().view())), 1e-11);
}

}  // namespace
}  // namespace tiledqr
