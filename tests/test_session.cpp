// Tests for the QrSession serving front end: async submit, batched
// factorization, bitwise agreement with the synchronous API, plan-cache
// amortization across a batch, and error surfacing.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::QrSession;
using core::TiledQr;

Options small_opt() {
  Options opt;
  // Pinned tree: these tests compare session paths against the synchronous
  // Greedy-default TiledQr::factorize bit for bit; a disengaged tree would
  // route the batch/pipeline paths through the autotuner instead.
  opt.tree = trees::TreeConfig{};
  opt.nb = 32;
  opt.ib = 16;
  return opt;
}

template <typename T>
void expect_bitwise_equal(const TiledQr<T>& a, const TiledQr<T>& b) {
  auto da = a.factors().to_dense();
  auto db = b.factors().to_dense();
  ASSERT_EQ(da.rows(), db.rows());
  ASSERT_EQ(da.cols(), db.cols());
  for (std::int64_t j = 0; j < da.cols(); ++j)
    for (std::int64_t i = 0; i < da.rows(); ++i)
      ASSERT_EQ(da(i, j), db(i, j)) << "(" << i << "," << j << ")";
}

TEST(QrSession, SubmitMatchesSynchronousFactorize) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  auto a = random_matrix<double>(8 * 32, 4 * 32, 11);

  auto future = session.submit(ConstMatrixView<double>(a.view()), opt);
  auto async_qr = future.get();

  auto sync_opt = opt;
  sync_opt.threads = 1;
  auto sync_qr = TiledQr<double>::factorize(a.view(), sync_opt);
  expect_bitwise_equal(async_qr, sync_qr);

  // The async result is a fully usable TiledQr.
  auto q = async_qr.q_thin();
  EXPECT_LE(double(orthogonality_error<double>(q.view())), 1e-11);
}

TEST(QrSession, ManyOutstandingFuturesResolve) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  constexpr int kJobs = 24;
  std::vector<Matrix<double>> inputs;
  std::vector<std::future<TiledQr<double>>> futures;
  for (int i = 0; i < kJobs; ++i)
    inputs.push_back(random_matrix<double>(6 * 32, 3 * 32, 100 + i));
  for (int i = 0; i < kJobs; ++i)
    futures.push_back(session.submit(ConstMatrixView<double>(inputs[size_t(i)].view()), opt));
  for (int i = 0; i < kJobs; ++i) {
    auto qr = futures[size_t(i)].get();
    auto sync_opt = opt;
    sync_opt.threads = 1;
    auto expect = TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt);
    expect_bitwise_equal(qr, expect);
  }
}

TEST(QrSession, BatchMatchesSerialAndPreservesOrder) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  constexpr int kBatch = 16;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_matrix<double>(5 * 32, 2 * 32, 1000 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& m : inputs) views.push_back(ConstMatrixView<double>(m.view()));

  auto results = session.factorize_batch(views, opt);
  ASSERT_EQ(results.size(), size_t(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    auto sync_opt = opt;
    sync_opt.threads = 1;
    auto expect = TiledQr<double>::factorize(inputs[size_t(i)].view(), sync_opt);
    expect_bitwise_equal(results[size_t(i)], expect);
  }
}

TEST(QrSession, BatchAmortizesPlanningAcrossRepeatedShapes) {
  QrSession session(QrSession::Config{2});
  auto opt = small_opt();
  constexpr int kBatch = 12;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_matrix<double>(4 * 32, 2 * 32, 2000 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& m : inputs) views.push_back(ConstMatrixView<double>(m.view()));
  (void)session.factorize_batch(views, opt);

  auto stats = session.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kBatch - 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hit_rate(), 0.9);
}

TEST(QrSession, MixedShapesInOneSession) {
  QrSession session(QrSession::Config{4});
  auto opt = small_opt();
  auto tall = random_matrix<double>(9 * 32, 2 * 32, 1);
  auto square = random_matrix<double>(4 * 32, 4 * 32, 2);
  auto f1 = session.submit(ConstMatrixView<double>(tall.view()), opt);
  auto f2 = session.submit(ConstMatrixView<double>(square.view()), opt);
  auto qr_tall = f1.get();
  auto qr_square = f2.get();
  EXPECT_LE(double(orthogonality_error<double>(qr_tall.q_thin().view())), 1e-11);
  // Solve with the square factorization to exercise apply_q on the result.
  auto b = random_matrix<double>(4 * 32, 2, 3);
  auto x = qr_square.solve(b.view());
  Matrix<double> ax(b.rows(), b.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, square.view(), x.view(), 0.0, ax.view());
  EXPECT_LE(double(difference_norm<double>(ax.view(), b.view()) /
                   frobenius_norm<double>(b.view())),
            1e-9);
  EXPECT_EQ(session.plan_cache_stats().entries, 2u);
}

TEST(QrSession, InvalidOptionsThrowOnSubmit) {
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(64, 32, 4);
  Options opt;
  opt.nb = 0;  // invalid tile size: tiling the input must fail loudly
  EXPECT_THROW((void)session.submit(ConstMatrixView<double>(a.view()), opt), Error);
}

TEST(QrSession, CapAndClampAgreeOnEveryPath) {
  // Regression for the worker-cap audit: a zero cap, a negative cap, and an
  // over-pool cap must behave identically (whole pool) on submit, batch, and
  // pipeline paths — bitwise-identical results AND identical stored options,
  // so nothing downstream (e.g. q_thin's thread count) can diverge.
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(4 * 32, 2 * 32, 77);
  auto b = random_matrix<double>(4 * 32, 1, 78);
  const std::vector<int> caps = {0, -3, session.pool().size() + 7, 1 << 20};

  std::vector<TiledQr<double>> qrs;
  for (int cap : caps) {
    auto opt = small_opt();
    opt.threads = cap;
    qrs.push_back(session.submit(ConstMatrixView<double>(a.view()), opt).get());
  }
  for (size_t i = 1; i < qrs.size(); ++i) {
    expect_bitwise_equal(qrs[i], qrs[0]);
    // The stored per-factorization thread count is identical too (and never
    // exceeds the pool), so 0 and over-pool caps leave the same state.
    EXPECT_EQ(qrs[i].options().threads, qrs[0].options().threads) << caps[i];
    EXPECT_LE(qrs[i].options().threads, session.pool().size()) << caps[i];
  }

  std::vector<Matrix<double>> xs;
  for (int cap : caps) {
    auto opt = small_opt();
    opt.threads = cap;
    std::vector<ConstMatrixView<double>> views(3, ConstMatrixView<double>(a.view()));
    auto batch = session.factorize_batch(views, opt);
    expect_bitwise_equal(batch[2], qrs[0]);
    xs.push_back(session
                     .solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                                ConstMatrixView<double>(b.view()), opt)
                     .get());
  }
  for (size_t i = 1; i < xs.size(); ++i)
    for (std::int64_t r = 0; r < xs[i].rows(); ++r)
      ASSERT_EQ(xs[i](r, 0), xs[0](r, 0)) << "pipeline cap " << caps[i];
}

TEST(QrSession, CollectBatchAggregatesMultipleFailures) {
  // Two of five inputs fail to tile: the blocking collector must surface the
  // first error's message plus the sibling count, not silently swallow the
  // second failure.
  QrSession session(QrSession::Config{2});
  auto good = random_matrix<double>(64, 32, 9);
  Matrix<double> empty(0, 0);  // tiling an empty matrix fails per input
  std::vector<ConstMatrixView<double>> views;
  views.push_back(ConstMatrixView<double>(good.view()));
  views.push_back(ConstMatrixView<double>(empty.view()));
  views.push_back(ConstMatrixView<double>(good.view()));
  views.push_back(ConstMatrixView<double>(empty.view()));
  views.push_back(ConstMatrixView<double>(good.view()));
  auto opt = small_opt();
  try {
    (void)session.factorize_batch(views, opt);
    FAIL() << "expected the batch to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 5"), std::string::npos) << what;
    EXPECT_NE(what.find("non-empty"), std::string::npos)
        << "first failure's message missing: " << what;
  }
  // A single failure still rethrows the original exception verbatim.
  std::vector<ConstMatrixView<double>> one_bad;
  one_bad.push_back(ConstMatrixView<double>(good.view()));
  one_bad.push_back(ConstMatrixView<double>(empty.view()));
  try {
    (void)session.factorize_batch(one_bad, opt);
    FAIL() << "expected the batch to throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("of 2 inputs failed"), std::string::npos) << e.what();
  }
}

TEST(QrSession, SubmitAutoValidatesOptionsUpFront) {
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(64, 32, 10);
  QrSession::AutoOptions bad_nb;
  bad_nb.nb = 0;  // the PR-1 SIGFPE shape: must be a descriptive Error now
  try {
    (void)session.submit_auto(ConstMatrixView<double>(a.view()), bad_nb);
    FAIL() << "expected submit_auto to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("AutoOptions::nb"), std::string::npos) << e.what();
  }
  QrSession::AutoOptions bad_ib;
  bad_ib.ib = -4;
  try {
    (void)session.factorize_auto(ConstMatrixView<double>(a.view()), bad_ib);
    FAIL() << "expected factorize_auto to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("AutoOptions::ib"), std::string::npos) << e.what();
  }
}

TEST(QrSession, DefaultedTreeRoutesBatchAndPipelineThroughTuner) {
  // Leaving Options::tree disengaged on the batch/pipeline paths must give
  // exactly the tree the tuner picks for that shape — bitwise identical to
  // pinning the choice explicitly.
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(6 * 32, 2 * 32, 55);
  Options auto_opt;  // tree disengaged
  auto_opt.nb = 32;
  auto_opt.ib = 16;
  std::vector<ConstMatrixView<double>> views(2, ConstMatrixView<double>(a.view()));
  auto auto_batch = session.factorize_batch(views, auto_opt);

  Options pinned = auto_opt;
  pinned.tree = session.choose_tree(6, 2);
  auto pinned_batch = session.factorize_batch(views, pinned);
  expect_bitwise_equal(auto_batch[0], pinned_batch[0]);
  EXPECT_EQ(auto_batch[0].options().tree, pinned.tree);

  auto b = random_matrix<double>(6 * 32, 1, 56);
  auto x_auto = session
                    .solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                               ConstMatrixView<double>(b.view()), auto_opt)
                    .get();
  auto x_pinned = session
                      .solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                                 ConstMatrixView<double>(b.view()), pinned)
                      .get();
  for (std::int64_t r = 0; r < x_auto.rows(); ++r) ASSERT_EQ(x_auto(r, 0), x_pinned(r, 0));
}

TEST(QrSession, StreamQoSKnobsDoNotChangeResults) {
  // The serving-QoS knobs (backpressure, watermark, deadline) only decide
  // WHEN requests graft, never what they compute: a fully-knobbed stream
  // must be bitwise identical to a default one on the same inputs.
  auto a = random_matrix<double>(4 * 16 - 1, 2 * 16 - 2, 77);
  QrSession::StreamOptions plain;
  plain.nb = 16;
  plain.ib = 8;
  plain.tree = trees::TreeConfig{};
  QrSession::StreamOptions qos = plain;
  qos.max_queued = 2;
  qos.overflow = QrSession::StreamOverflow::Block;
  qos.low_watermark = 1;
  qos.flush_deadline = std::chrono::milliseconds(1);

  QrSession session(QrSession::Config{2});
  std::vector<Matrix<double>> results;
  for (const auto& sopt : {plain, qos}) {
    auto stream = session.stream<double>(sopt);
    std::vector<std::future<TiledQr<double>>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(stream.push(ConstMatrixView<double>(a.view())));
    stream.close();
    for (auto& f : futs) results.push_back(f.get().factors().to_dense());
  }
  for (size_t i = 1; i < results.size(); ++i)
    for (std::int64_t j = 0; j < results[0].cols(); ++j)
      for (std::int64_t r = 0; r < results[0].rows(); ++r)
        ASSERT_EQ(results[i](r, j), results[0](r, j)) << "request " << i;
}

TEST(QrSession, SessionOutlivesNothingItHandsOut) {
  // Futures resolved before the session dies; results stay valid after.
  std::vector<TiledQr<double>> keep;
  auto a = random_matrix<double>(4 * 32, 2 * 32, 5);
  {
    QrSession session(QrSession::Config{2});
    auto opt = small_opt();
    keep.push_back(session.submit(ConstMatrixView<double>(a.view()), opt).get());
  }
  // The TiledQr owns (shared) plan + tiles; usable after the session is gone.
  EXPECT_LE(double(orthogonality_error<double>(keep[0].q_thin().view())), 1e-11);
}

}  // namespace
}  // namespace tiledqr
