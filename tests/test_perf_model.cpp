// Tests for the roofline prediction model and the perf harness plumbing.
#include <gtest/gtest.h>

#include "blas/simd/simd.hpp"
#include "core/experiment.hpp"
#include "core/roofline.hpp"
#include "perf/cache_flush.hpp"
#include "perf/kernel_bench.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

TEST(Roofline, TotalWeightFormula) {
  EXPECT_EQ(core::total_weight_units(40, 10), 6L * 40 * 100 - 2L * 1000);
  EXPECT_EQ(core::total_weight_units(4, 4), 6L * 4 * 16 - 2L * 64);
}

TEST(Roofline, TotalWeightTransposeAgreement) {
  // A wide grid factorizes as the LQ dual of its transpose, so the roofline
  // work of (p, q) and (q, p) must agree in both orientations.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{3, 4}, {10, 40}, {1, 7}}) {
    EXPECT_EQ(core::total_weight_units(p, q), core::total_weight_units(q, p));
    EXPECT_EQ(core::total_weight_units(p, q), 6L * q * p * p - 2L * p * p * p);
  }
}

TEST(Roofline, TotalWeightMatchesDag) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{6, 2}, {15, 6}, {9, 9}})
    EXPECT_EQ(dag::build_task_graph(p, q, trees::greedy_tree(p, q)).total_weight(),
              core::total_weight_units(p, q));
}

TEST(Roofline, FlopFormula) {
  EXPECT_NEAR(core::factorization_flops(100, 50, false),
              2.0 * 100 * 2500 - 2.0 / 3.0 * 125000, 1e-6);
  EXPECT_NEAR(core::factorization_flops(100, 50, true),
              4.0 * (2.0 * 100 * 2500 - 2.0 / 3.0 * 125000), 1e-6);
}

TEST(Roofline, WorkBoundRegime) {
  // Plenty of parallelism: limited by T / P.
  double g = core::predicted_rate(2.0, 1000.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(g, 2.0 * 1000.0 / 250.0);  // = gamma * P when work-bound
}

TEST(Roofline, CriticalPathBoundRegime) {
  // cp dominates: gamma_pred = gamma * T / cp.
  double g = core::predicted_rate(2.0, 100.0, 80.0, 64);
  EXPECT_DOUBLE_EQ(g, 2.0 * 100.0 / 80.0);
}

TEST(Roofline, SingleProcessorGivesGammaSeq) {
  // With P = 1, T/P >= cp always, so gamma_pred = gamma_seq.
  EXPECT_DOUBLE_EQ(core::predicted_rate(3.5, 500.0, 80.0, 1), 3.5);
}

TEST(Roofline, PredictedGflopsMonotoneInProcessors) {
  long cp = sim::critical_path_units(40, 10, trees::greedy_tree(40, 10));
  double prev = 0;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    double g = core::predicted_gflops(3.0, 40, 10, cp, p);
    EXPECT_GE(g, prev);
    prev = g;
  }
  // Saturates at gamma * T / cp.
  double sat = 3.0 * double(core::total_weight_units(40, 10)) / double(cp);
  EXPECT_NEAR(core::predicted_gflops(3.0, 40, 10, cp, 4096), sat, 1e-9);
}

TEST(Roofline, LowerCriticalPathNeverPredictsSlower) {
  long cp_greedy = sim::critical_path_units(40, 6, trees::greedy_tree(40, 6));
  long cp_flat = sim::critical_path_units(
      40, 6, trees::flat_tree(40, 6, trees::KernelFamily::TT));
  ASSERT_LT(cp_greedy, cp_flat);
  for (int p : {8, 16, 48})
    EXPECT_GE(core::predicted_gflops(3.0, 40, 6, cp_greedy, p),
              core::predicted_gflops(3.0, 40, 6, cp_flat, p));
}

TEST(PerfHarness, CacheFlusherRuns) {
  perf::CacheFlusher flusher(size_t(1) << 20);
  flusher.flush();
  flusher.flush();
  SUCCEED();
}

TEST(PerfHarness, KernelRatesArePositiveAndFinite) {
  auto rates = perf::measure_kernel_rates<double>(32, 8, perf::CacheMode::InCache, 3);
  for (int k = 0; k < 6; ++k) {
    EXPECT_GT(rates.kernel[size_t(k)], 0.0) << k;
    EXPECT_TRUE(std::isfinite(rates.kernel[size_t(k)])) << k;
  }
  EXPECT_GT(rates.gemm, 0.0);
  EXPECT_GT(rates.geqrt_plus_ttqrt, 0.0);
  EXPECT_GT(rates.unmqr_plus_ttmqr, 0.0);
}

TEST(PerfHarness, KernelSecondsOrdering) {
  // At equal tile size, TSMQR does ~2x the flops of TTMQR and must take
  // longer; same for TSQRT vs TTQRT. (Loose sanity, not a perf assertion.)
  // Pinned to the scalar dispatch tier: the vectorized tiers speed up the
  // GEMM-shaped TS kernels far more than the triangular TT kernels, so the
  // flops-proportional-to-seconds assumption only holds for the plain loops.
  const auto saved = blas::simd::active_tier();
  blas::simd::set_tier(blas::simd::Tier::Scalar);
  auto sec = perf::measure_kernel_seconds<double>(48, 8, perf::CacheMode::InCache, 5);
  blas::simd::set_tier(saved);
  EXPECT_GT(sec[size_t(kernels::KernelKind::TSMQR)],
            sec[size_t(kernels::KernelKind::TTMQR)] * 0.9);
  EXPECT_GT(sec[size_t(kernels::KernelKind::TSQRT)],
            sec[size_t(kernels::KernelKind::TTQRT)] * 0.9);
}

TEST(Experiment, RunFactorizationProducesSaneRecord) {
  core::RunConfig cfg;
  cfg.p = 6;
  cfg.q = 3;
  cfg.nb = 16;
  cfg.ib = 8;
  cfg.threads = 2;
  cfg.reps = 1;
  auto rec = core::run_factorization<double>(cfg);
  EXPECT_GT(rec.seconds, 0.0);
  EXPECT_GT(rec.gflops, 0.0);
  EXPECT_EQ(rec.cp_units, sim::critical_path_units(6, 3, trees::greedy_tree(6, 3)));
  EXPECT_EQ(rec.algorithm, "Greedy");
}

TEST(Experiment, GammaSeqPositive) {
  EXPECT_GT(core::measure_gamma_seq<double>(16, 8), 0.0);
}

}  // namespace
}  // namespace tiledqr
