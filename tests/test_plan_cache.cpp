// Tests for the memoizing plan cache: identity semantics (same shape ->
// same Plan object, different TreeConfig -> distinct), stats accounting,
// concurrency, and the wiring into TiledQr<T>::factorize.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/plan_cache.hpp"
#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"

namespace tiledqr {
namespace {

using core::PlanCache;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

TEST(PlanCache, RepeatedShapeReturnsSameObject) {
  PlanCache cache;
  TreeConfig greedy{};
  auto a = cache.get(10, 4, greedy);
  auto b = cache.get(10, 4, greedy);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->graph.p, 10);
  EXPECT_EQ(a->graph.q, 4);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PlanCache, DistinctShapesAndConfigsGetDistinctPlans) {
  PlanCache cache;
  TreeConfig greedy{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  TreeConfig flat{TreeKind::FlatTree, KernelFamily::TT, 1, 0};
  TreeConfig greedy_ts{TreeKind::Greedy, KernelFamily::TS, 1, 0};
  TreeConfig plasma3{TreeKind::PlasmaTree, KernelFamily::TT, 3, 0};
  TreeConfig plasma5{TreeKind::PlasmaTree, KernelFamily::TT, 5, 0};

  auto base = cache.get(10, 4, greedy);
  EXPECT_NE(base.get(), cache.get(12, 4, greedy).get());  // different p
  EXPECT_NE(base.get(), cache.get(10, 5, greedy).get());  // different q
  EXPECT_NE(base.get(), cache.get(10, 4, flat).get());    // different kind
  EXPECT_NE(base.get(), cache.get(10, 4, greedy_ts).get());  // different family
  EXPECT_NE(cache.get(10, 4, plasma3).get(), cache.get(10, 4, plasma5).get());  // different BS
  EXPECT_EQ(cache.stats().entries, 7u);
  EXPECT_EQ(cache.stats().misses, 7);
}

TEST(PlanCache, DynamicTreesAreCacheableAndDeterministic) {
  PlanCache cache;
  TreeConfig asap{TreeKind::Asap, KernelFamily::TT, 1, 0};
  auto a = cache.get(9, 3, asap);
  auto b = cache.get(9, 3, asap);
  EXPECT_EQ(a.get(), b.get());
  // The cached plan matches a fresh one structurally (deterministic sim).
  auto fresh = core::make_plan(9, 3, asap);
  EXPECT_EQ(a->critical_path, fresh.critical_path);
  EXPECT_EQ(a->list, fresh.list);
  EXPECT_EQ(a->graph.tasks.size(), fresh.graph.tasks.size());
}

TEST(PlanCache, ClearResetsEntriesAndStats) {
  PlanCache cache;
  (void)cache.get(6, 3, TreeConfig{});
  (void)cache.get(6, 3, TreeConfig{});
  cache.clear();
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  (void)cache.get(6, 3, TreeConfig{});
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PlanCache, ConcurrentGetsConvergeToOnePlanPerShape) {
  PlanCache cache;
  const TreeConfig shapes[] = {
      TreeConfig{TreeKind::Greedy, KernelFamily::TT, 1, 0},
      TreeConfig{TreeKind::FlatTree, KernelFamily::TS, 1, 0},
      TreeConfig{TreeKind::BinaryTree, KernelFamily::TT, 1, 0},
  };
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        const auto& config = shapes[size_t(round) % 3];
        auto p1 = cache.get(8, 4, config);
        auto p2 = cache.get(8, 4, config);
        if (p1.get() != p2.get()) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Concurrent first misses may each plan, but exactly one entry per shape
  // survives and is handed out forever after.
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(PlanCache, ByteBudgetEvictsLeastRecentlyUsed) {
  PlanCache cache;
  TreeConfig greedy{};
  TreeConfig flat{TreeKind::FlatTree, KernelFamily::TT, 1, 0};
  (void)cache.get(8, 4, greedy);   // A
  (void)cache.get(10, 4, flat);    // B
  auto both = cache.stats();
  ASSERT_EQ(both.entries, 2u);
  ASSERT_GT(both.bytes, 0u);
  (void)cache.get(8, 4, greedy);  // touch A: B becomes least recently used

  cache.set_byte_budget(both.bytes - 1);  // forces exactly one eviction
  auto after = cache.stats();
  EXPECT_EQ(after.entries, 1u);
  EXPECT_EQ(after.evictions, 1);
  EXPECT_LT(after.bytes, both.bytes);

  // A (recently touched) survived; B (LRU) was the victim.
  long hits_before = after.hits;
  (void)cache.get(8, 4, greedy);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  long misses_before = cache.stats().misses;
  (void)cache.get(10, 4, flat);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PlanCache, EvictionKeepsTheNewestEntryEvenWhenOverBudget) {
  PlanCache cache(/*byte_budget=*/1);  // absurdly small: everything oversized
  TreeConfig greedy{};
  auto a = cache.get(8, 4, greedy);
  EXPECT_EQ(cache.stats().entries, 1u);  // newest entry never self-evicts
  auto b = cache.get(8, 4, greedy);
  EXPECT_EQ(a.get(), b.get());  // and it still serves hits
  EXPECT_EQ(cache.stats().hits, 1);
  // A different shape replaces it (the old entry is now LRU and over budget).
  (void)cache.get(6, 3, greedy);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1);
  // Evicted plans stay alive for existing holders (shared immutability).
  EXPECT_EQ(a->graph.p, 8);
}

TEST(PlanCache, FusedPlansAreCachedAndBudgeted) {
  PlanCache cache;
  TreeConfig greedy{};
  auto fused = cache.get_fused(5, 2, greedy, 4);
  ASSERT_TRUE(fused->homogeneous());  // thin descriptor, no materialized graph
  ASSERT_EQ(fused->part_count(), 4);
  auto base = cache.get(5, 2, greedy);
  EXPECT_EQ(fused->base.get(), base.get());  // shares the cached base plan
  EXPECT_EQ(fused->total_tasks(), std::int64_t(4 * base->graph.tasks.size()));
  EXPECT_EQ(fused->component_graph().tasks.size(), base->graph.tasks.size());
  EXPECT_EQ(fused->component_ranks().size(), base->graph.tasks.size());
  EXPECT_EQ(fused->copies(), 4);
  // Global-index arithmetic: part boundaries and per-part task lookup.
  const auto stride = std::int32_t(base->graph.tasks.size());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fused->part_size(i), stride);
    EXPECT_EQ(fused->part_of(i * stride), i);
    EXPECT_EQ(fused->part_of((i + 1) * stride - 1), i);
    EXPECT_EQ(&fused->task(i * stride), &base->graph.tasks.front());
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.fused_misses, 1);
  EXPECT_EQ(stats.fused_entries, 1u);
  EXPECT_EQ(stats.entries, 1u);  // the base plan it was built from
  auto again = cache.get_fused(5, 2, greedy, 4);
  EXPECT_EQ(again.get(), fused.get());
  EXPECT_EQ(cache.stats().fused_hits, 1);
  // A different count is a different fused entry.
  (void)cache.get_fused(5, 2, greedy, 7);
  EXPECT_EQ(cache.stats().fused_entries, 2u);
  // Budgeting covers fused entries too.
  cache.set_byte_budget(1);
  EXPECT_LE(cache.stats().fused_entries + cache.stats().entries, 1u);
  cache.clear();
  auto cleared = cache.stats();
  EXPECT_EQ(cleared.fused_hits, 0);
  EXPECT_EQ(cleared.fused_misses, 0);
  EXPECT_EQ(cleared.bytes, 0u);
  EXPECT_EQ(cleared.evictions, 0);
}

TEST(PlanCache, UnboundedByDefault) {
  PlanCache cache;
  EXPECT_EQ(cache.byte_budget(), 0u);
  TreeConfig greedy{};
  for (int p = 2; p < 12; ++p) (void)cache.get(p, 2, greedy);
  EXPECT_EQ(cache.stats().entries, 10u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(PlanCache, FactorizeUsesDefaultCache) {
  auto& cache = PlanCache::default_cache();
  cache.clear();
  core::Options opt;
  opt.nb = 32;
  opt.ib = 16;
  opt.threads = 1;
  auto a = random_matrix<double>(7 * 32, 3 * 32, 7);
  auto qr1 = core::TiledQr<double>::factorize(a.view(), opt);
  auto stats1 = cache.stats();
  EXPECT_EQ(stats1.misses, 1);
  auto qr2 = core::TiledQr<double>::factorize(a.view(), opt);
  auto stats2 = cache.stats();
  EXPECT_EQ(stats2.misses, 1);
  EXPECT_EQ(stats2.hits, stats1.hits + 1);
  // Both factorizations share the same immutable Plan object.
  EXPECT_EQ(&qr1.plan(), &qr2.plan());
}

}  // namespace
}  // namespace tiledqr
