// Tests for the persistent worker pool: reuse across DAGs, work stealing,
// worker-set capping, bitwise determinism of factorizations across thread
// counts, re-entrant run(), and exception propagation through every
// execution path (sequential, spawn-per-call baseline, persistent pool).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/env.hpp"
#include "core/qr_session.hpp"
#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "runtime/thread_pool.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using runtime::SchedulePriority;
using runtime::ThreadPool;

dag::TaskGraph qr_graph(int p, int q) {
  return dag::build_task_graph(p, q, trees::greedy_tree(p, q));
}

/// A single source fanning out to `width` sinks — the widest possible DAG;
/// stresses the initial distribution and stealing.
dag::TaskGraph fanout_graph(int width) {
  dag::TaskGraph g;
  g.p = width;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {}});
  for (int i = 0; i < width; ++i) {
    g.tasks.push_back(dag::Task{kernels::KernelKind::UNMQR, i, -1, 0, 0, 1, {}});
    g.tasks[0].succ.push_back(std::int32_t(i + 1));
  }
  return g;
}

TEST(ThreadPool, ReusedAcrossManyGraphs) {
  ThreadPool pool(4);
  auto g = qr_graph(8, 4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.run(g, [&](std::int32_t t) { sum.fetch_add(t); });
    EXPECT_EQ(sum.load(), long(g.tasks.size()) * long(g.tasks.size() - 1) / 2) << round;
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.graphs_completed, 20);
  EXPECT_EQ(stats.tasks_executed, 20 * long(g.tasks.size()));
}

TEST(ThreadPool, WideFanOutRunsEveryTaskOnce) {
  ThreadPool pool(8);
  auto g = fanout_graph(500);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> count(g.tasks.size());
    for (auto& c : count) c.store(0);
    pool.run(g, [&](std::int32_t t) { count[size_t(t)].fetch_add(1); });
    for (size_t t = 0; t < g.tasks.size(); ++t) EXPECT_EQ(count[t].load(), 1) << t;
  }
}

TEST(ThreadPool, RespectsDependencies) {
  ThreadPool pool(8);
  auto g = qr_graph(12, 6);
  std::vector<std::atomic<bool>> done(g.tasks.size());
  for (auto& d : done) d.store(false);
  std::atomic<bool> violation{false};
  pool.run(g, [&](std::int32_t t) {
    for (auto s : g.tasks[size_t(t)].succ)
      if (done[size_t(s)].load()) violation.store(true);
    done[size_t(t)].store(true);
  });
  EXPECT_FALSE(violation.load());
}

TEST(ThreadPool, CappedSubmissionConfinedToWorkerSubset) {
  ThreadPool pool(6);
  auto g = fanout_graph(300);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.run(
      g,
      [&](std::int32_t) {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      SchedulePriority::CriticalPath, /*max_workers=*/2);
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, ConcurrentSubmissionsInterleave) {
  ThreadPool pool(4);
  auto g = qr_graph(6, 3);
  constexpr int kGraphs = 16;
  std::vector<std::future<void>> futures;
  std::vector<std::unique_ptr<std::atomic<long>>> sums;
  for (int i = 0; i < kGraphs; ++i) sums.push_back(std::make_unique<std::atomic<long>>(0));
  for (int i = 0; i < kGraphs; ++i) {
    auto* sum = sums[size_t(i)].get();
    futures.push_back(pool.submit(g, [sum](std::int32_t t) { sum->fetch_add(t); }));
  }
  for (auto& f : futures) f.get();
  const long expect = long(g.tasks.size()) * long(g.tasks.size() - 1) / 2;
  for (int i = 0; i < kGraphs; ++i) EXPECT_EQ(sums[size_t(i)]->load(), expect) << i;
}

TEST(ThreadPool, SubmitFromMultipleExternalThreads) {
  ThreadPool pool(4);
  auto g = qr_graph(8, 4);
  const long expect = long(g.tasks.size()) * long(g.tasks.size() - 1) / 2;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        std::atomic<long> sum{0};
        pool.run(g, [&](std::int32_t t) { sum.fetch_add(t); });
        if (sum.load() != expect) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPool, ReentrantRunFromTaskBodyHelps) {
  ThreadPool pool(2);
  auto outer = qr_graph(4, 2);
  auto inner = fanout_graph(20);
  std::atomic<long> inner_runs{0};
  pool.run(outer, [&](std::int32_t t) {
    if (t == 0) {
      // Nested DAG from inside a worker: the worker must help execute
      // instead of deadlocking the (small) pool.
      pool.run(inner, [&](std::int32_t) { inner_runs.fetch_add(1); });
    }
  });
  EXPECT_EQ(inner_runs.load(), long(inner.tasks.size()));
}

TEST(ThreadPool, ExceptionPropagatesThroughEveryPath) {
  auto g = qr_graph(10, 4);
  auto failing = [](std::int32_t t) {
    if (t == 7) throw Error("injected failure");
  };
  // Legacy sequential path.
  EXPECT_THROW(runtime::execute(g, failing, 1), Error);
  // Legacy spawn-per-call path.
  EXPECT_THROW(runtime::execute_spawn(g, failing, 4), Error);
  // Persistent pool, blocking run().
  ThreadPool pool(4);
  EXPECT_THROW(pool.run(g, failing), Error);
  // Persistent pool, async future.
  auto future = pool.submit(g, failing);
  EXPECT_THROW(future.get(), Error);
  // The pool survives failures and keeps executing.
  std::atomic<long> count{0};
  pool.run(g, [&](std::int32_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), long(g.tasks.size()));
}

TEST(ThreadPool, FactorizationBitwiseIdenticalAcrossThreadCounts) {
  // The satellite stress test: the same matrix factored on 1/2/8 workers
  // (sequential, pool-capped, pool-wide) must give bit-for-bit equal tiles.
  core::Options opt;
  opt.nb = 32;
  opt.ib = 16;
  auto a = random_matrix<double>(13 * 32, 5 * 32, 1234);

  opt.threads = 1;
  auto ref = core::TiledQr<double>::factorize(a.view(), opt);
  auto ref_dense = ref.factors().to_dense();
  for (int threads : {2, 8}) {
    opt.threads = threads;
    for (int round = 0; round < 3; ++round) {
      auto qr = core::TiledQr<double>::factorize(a.view(), opt);
      auto dense = qr.factors().to_dense();
      ASSERT_EQ(dense.rows(), ref_dense.rows());
      ASSERT_EQ(dense.cols(), ref_dense.cols());
      for (std::int64_t j = 0; j < dense.cols(); ++j)
        for (std::int64_t i = 0; i < dense.rows(); ++i)
          ASSERT_EQ(dense(i, j), ref_dense(i, j))
              << "mismatch at (" << i << "," << j << ") threads=" << threads;
    }
  }
}

TEST(ThreadPool, FactorizationBitwiseIdenticalAcrossSchedulingModes) {
  // Determinism across the locality knobs: the same batch factored under
  // every TILEDQR_PIN x TILEDQR_AFFINE_STEAL combination — both read at pool
  // construction, so each setting gets a fresh session — must be bitwise
  // equal to the sequential replay. The batch is homogeneous, so this also
  // drives the replicated-component (copies > 1) scheduling path.
  core::Options opt;
  opt.tree = trees::TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 32;
  opt.ib = 16;
  constexpr int kBatch = 4;
  std::vector<Matrix<double>> inputs;
  std::vector<ConstMatrixView<double>> views;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_matrix<double>(5 * 32, 3 * 32, 777 + unsigned(i)));
  for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));

  std::vector<Matrix<double>> refs;
  {
    core::Options seq = opt;
    seq.threads = 1;
    for (auto& a : inputs)
      refs.push_back(core::TiledQr<double>::factorize(a.view(), seq).factors().to_dense());
  }

  const char* old_pin = std::getenv("TILEDQR_PIN");
  const char* old_affine = std::getenv("TILEDQR_AFFINE_STEAL");
  for (int pin : {0, 1}) {
    for (int affine : {0, 1}) {
      setenv("TILEDQR_PIN", pin ? "1" : "0", 1);
      setenv("TILEDQR_AFFINE_STEAL", affine ? "1" : "0", 1);
      core::QrSession session(core::QrSession::Config{4});
      auto results = session.factorize_batch(views, opt);
      ASSERT_EQ(results.size(), size_t(kBatch));
      for (int b = 0; b < kBatch; ++b) {
        auto dense = results[size_t(b)].factors().to_dense();
        const auto& ref = refs[size_t(b)];
        for (std::int64_t j = 0; j < dense.cols(); ++j)
          for (std::int64_t i = 0; i < dense.rows(); ++i)
            ASSERT_EQ(dense(i, j), ref(i, j)) << "matrix " << b << " at (" << i << "," << j
                                              << ") pin=" << pin << " affine=" << affine;
      }
      // The locality split accounts for executed tasks. The two counters are
      // adjacent but separate atomics, so a snapshot taken while the last
      // tasks are retiring may lag by up to one task per worker.
      auto stats = session.pool_stats();
      EXPECT_LE(stats.tasks_home + stats.tasks_foreign, stats.tasks_executed)
          << "pin=" << pin << " affine=" << affine;
      EXPECT_GE(stats.tasks_home + stats.tasks_foreign, stats.tasks_executed - 4)
          << "pin=" << pin << " affine=" << affine;
      EXPECT_GT(stats.tasks_home, 0) << "pin=" << pin << " affine=" << affine;
    }
  }
  old_pin ? setenv("TILEDQR_PIN", old_pin, 1) : unsetenv("TILEDQR_PIN");
  old_affine ? setenv("TILEDQR_AFFINE_STEAL", old_affine, 1) : unsetenv("TILEDQR_AFFINE_STEAL");
}

TEST(ThreadPool, DefaultPoolBacksExecute) {
  // execute(threads > 1) goes through the shared default pool (as long as
  // the request fits the pool; above it, the spawn path honors the exact
  // thread count). Repeated in-pool calls must not spawn-per-call:
  // graphs_completed grows and the pool persists.
  auto& pool = ThreadPool::default_pool();
  auto g = qr_graph(6, 3);
  const int threads = pool.size();
  auto before = pool.stats().graphs_completed;
  for (int i = 0; i < 3; ++i) {
    std::atomic<long> count{0};
    runtime::execute(g, [&](std::int32_t) { count.fetch_add(1); }, std::max(threads, 2));
    EXPECT_EQ(count.load(), long(g.tasks.size()));
  }
  if (threads >= 2)
    EXPECT_GE(pool.stats().graphs_completed, before + 3);
  else  // single-worker default pool (1-CPU host): requests above it spawn
    EXPECT_EQ(pool.stats().graphs_completed, before);
}

TEST(ThreadPool, EmptyGraphCompletesImmediately) {
  ThreadPool pool(2);
  dag::TaskGraph g;
  int calls = 0;
  pool.run(g, [&](std::int32_t) { ++calls; });
  auto future = pool.submit(g, [&](std::int32_t) { ++calls; });
  future.get();
  EXPECT_EQ(calls, 0);
}

// -------------------------------------------------------- streaming grafts --

TEST(ThreadPoolStream, AppendsGraftOntoLiveSubmission) {
  ThreadPool pool(4);
  auto g = qr_graph(6, 3);
  auto stream = pool.open_stream();
  ASSERT_TRUE(stream.valid());
  constexpr int kComponents = 10;
  std::vector<std::unique_ptr<std::atomic<long>>> sums;
  std::atomic<int> completions{0};
  for (int i = 0; i < kComponents; ++i) sums.push_back(std::make_unique<std::atomic<long>>(0));
  // Appends race with workers draining earlier generations — exactly the
  // streaming regime (no stop-the-world between components).
  for (int i = 0; i < kComponents; ++i) {
    auto* sum = sums[size_t(i)].get();
    stream.append(
        g, [sum](std::int32_t t) { sum->fetch_add(t); },
        [&completions](std::exception_ptr e) {
          if (!e) completions.fetch_add(1);
        });
  }
  EXPECT_EQ(stream.generation(), kComponents);
  stream.wait();
  EXPECT_EQ(stream.retired(), kComponents);
  EXPECT_EQ(completions.load(), kComponents);
  const long expect = long(g.tasks.size()) * long(g.tasks.size() - 1) / 2;
  for (int i = 0; i < kComponents; ++i) EXPECT_EQ(sums[size_t(i)]->load(), expect) << i;
  stream.close();
  EXPECT_TRUE(stream.closed());
}

TEST(ThreadPoolStream, AppendAfterCloseThrows) {
  ThreadPool pool(2);
  auto g = qr_graph(3, 2);
  auto stream = pool.open_stream();
  stream.append(g, [](std::int32_t) {});
  stream.close();
  stream.close();  // idempotent
  EXPECT_THROW(stream.append(g, [](std::int32_t) {}), Error);
  stream.wait();
  EXPECT_EQ(stream.retired(), 1);
}

TEST(ThreadPoolStream, ComponentFailureDoesNotCancelSiblings) {
  ThreadPool pool(2);
  auto g = qr_graph(8, 4);
  auto stream = pool.open_stream();
  std::atomic<long> good_tasks{0};
  std::atomic<bool> bad_failed{false};
  stream.append(g, [](std::int32_t t) {
    if (t == 5) throw Error("injected");
  }, [&](std::exception_ptr e) { bad_failed.store(e != nullptr); });
  stream.append(g, [&](std::int32_t) { good_tasks.fetch_add(1); });
  stream.wait();
  EXPECT_TRUE(bad_failed.load());
  EXPECT_EQ(good_tasks.load(), long(g.tasks.size()));
  // The stream keeps accepting work after a component failure.
  std::atomic<long> more{0};
  stream.append(g, [&](std::int32_t) { more.fetch_add(1); });
  stream.wait();
  EXPECT_EQ(more.load(), long(g.tasks.size()));
}

TEST(ThreadPoolStream, ChainedAppendFromCompletionCallback) {
  // A completion callback grafts the next pipeline stage onto the same
  // stream (the solve-pipeline pattern); wait() must cover the chained
  // generation once it observes it.
  ThreadPool pool(2);
  auto g = qr_graph(4, 2);
  auto stream = pool.open_stream();
  std::atomic<long> second_stage{0};
  std::atomic<bool> chained{false};
  stream.append(g, [](std::int32_t) {}, [&](std::exception_ptr) {
    stream.append(g, [&](std::int32_t) { second_stage.fetch_add(1); },
                  [&](std::exception_ptr) { chained.store(true); });
  });
  while (!chained.load()) stream.wait();
  EXPECT_EQ(second_stage.load(), long(g.tasks.size()));
  EXPECT_EQ(stream.generation(), 2);
  EXPECT_EQ(stream.retired(), 2);
}

TEST(ThreadPoolStream, CappedStreamConfinedToWorkerSubset) {
  ThreadPool pool(6);
  auto g = fanout_graph(200);
  auto stream = pool.open_stream(/*max_workers=*/2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 3; ++i)
    stream.append(g, [&](std::int32_t) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  stream.wait();
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPoolStream, OpenIdleStreamDoesNotBlockPoolDestructor) {
  auto pool = std::make_unique<ThreadPool>(2);
  auto stream = pool->open_stream();
  auto g = qr_graph(3, 2);
  std::atomic<long> count{0};
  stream.append(g, [&](std::int32_t) { count.fetch_add(1); });
  stream.wait();
  // Stream never closed; the destructor must drain what was appended and
  // return (an open, idle stream holds no in-flight work).
  pool.reset();
  EXPECT_EQ(count.load(), long(g.tasks.size()));
}

/// A single free-standing task; the smallest graftable component.
dag::TaskGraph one_task_graph() {
  dag::TaskGraph g;
  g.p = 1;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {}});
  return g;
}

TEST(ThreadPoolStream, TwoStreamsInterleaveFairly) {
  // The multi-stream fairness contract, deterministic at a 2-worker pool:
  // block both workers behind 1-task gate submissions (each capped to a
  // single-worker set), pile K components of stream A and then K of stream B
  // into the ready queues, release the gates, and record the completion
  // order. Per-submission worker queues with round-robin pop must interleave
  // the two streams; the old single LIFO deque would drain the entire
  // later-pushed stream before the earlier one's backlog (all-B-then-all-A).
  const int k = env_flag("TILEDQR_STRESS") ? 32 : 16;
  ThreadPool pool(2);
  auto gate_graph = one_task_graph();
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  auto gate_body = [&](std::int32_t) {
    started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
  };
  // Fresh pool: the worker-set anchor deals gate 1 to worker 0, gate 2 to
  // worker 1 (max_workers=1 confines each to its own one-worker set).
  auto gate1 = pool.submit(gate_graph, gate_body, SchedulePriority::CriticalPath, 1);
  auto gate2 = pool.submit(gate_graph, gate_body, SchedulePriority::CriticalPath, 1);
  while (started.load() < 2) std::this_thread::yield();

  auto g = one_task_graph();
  auto stream_a = pool.open_stream();
  auto stream_b = pool.open_stream();
  std::mutex order_mu;
  std::string order;  // completion tags, e.g. "ABABAB..."
  auto tag = [&](char c) {
    return [&, c](std::exception_ptr) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(c);
    };
  };
  for (int i = 0; i < k; ++i) stream_a.append(g, [](std::int32_t) {}, tag('A'));
  for (int i = 0; i < k; ++i) stream_b.append(g, [](std::int32_t) {}, tag('B'));
  release.store(true);
  gate1.get();
  gate2.get();
  stream_a.wait();
  stream_b.wait();
  stream_a.close();
  stream_b.close();

  ASSERT_EQ(order.size(), size_t(2 * k));
  // Strict per-worker alternation merged across two workers (plus bounded
  // steal and record-reorder effects) keeps every prefix nearly balanced;
  // the old single-LIFO scheduler's signature is a full one-stream run,
  // i.e. an imbalance of k. The slack covers sanitizer-grade preemption.
  int balance = 0, worst = 0;
  for (char c : order) {
    balance += c == 'A' ? 1 : -1;
    worst = std::max(worst, std::abs(balance));
  }
  EXPECT_LE(worst, 6) << "completion order: " << order;
  // And directly: the first half of the completions is NOT one stream's
  // entire backlog.
  const auto half = order.substr(0, size_t(k));
  EXPECT_GE(std::count(half.begin(), half.end(), 'A'), k / 8) << order;
  EXPECT_GE(std::count(half.begin(), half.end(), 'B'), k / 8) << order;
}

TEST(ThreadPoolStream, LiveStreamGaugeTracksOpenAndClose) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.stats().streams_live, 0);
  auto s1 = pool.open_stream();
  auto s2 = pool.open_stream();
  EXPECT_EQ(pool.stats().streams_live, 2);
  EXPECT_EQ(pool.stats().streams_opened, 2);
  s1.close();
  s1.close();  // idempotent: the gauge drops once
  EXPECT_EQ(pool.stats().streams_live, 1);
  s2.close();
  EXPECT_EQ(pool.stats().streams_live, 0);
  EXPECT_EQ(pool.stats().streams_opened, 2);
  {
    // A handle dropped without close() must not leave a phantom live stream.
    auto abandoned = pool.open_stream();
    EXPECT_EQ(pool.stats().streams_live, 1);
  }
  EXPECT_EQ(pool.stats().streams_live, 0);
}

TEST(ThreadPoolStream, StatsCountStreamsAndComponents) {
  ThreadPool pool(2);
  auto g = qr_graph(3, 2);
  auto s1 = pool.open_stream();
  auto s2 = pool.open_stream();
  s1.append(g, [](std::int32_t) {});
  s2.append(g, [](std::int32_t) {});
  s1.wait();
  s2.wait();
  auto stats = pool.stats();
  EXPECT_EQ(stats.streams_opened, 2);
  EXPECT_EQ(stats.graphs_completed, 2);  // one per component, like submit()
}

}  // namespace
}  // namespace tiledqr
