// Tests for multi-matrix DAG fusion: TaskGraph::append_offset / FusedPlan
// structure, cached scheduling ranks, the fused factorize_batch path
// (bitwise identity against the sequential per-matrix execute_spawn replay +
// paper-tolerance residuals over a (p, q, nb, tree, threads, batch) grid),
// heterogeneous batches, fused-plan caching, and error handling.
//
// TILEDQR_STRESS=1 (the ctest `stress` label) widens the grid; the default
// run stays tier-1 quick.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "runtime/executor.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::QrSession;
using core::TiledQr;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

// ---------------------------------------------------------------- helpers --

/// Sequential per-matrix replay through the pre-pool spawn path: the
/// reference the fused results must match bit for bit.
Matrix<double> replay_sequential(const Matrix<double>& a, const Options& opt) {
  auto tiles = TileMatrix<double>::from_dense(a.view(), opt.nb);
  auto plan = core::make_plan(tiles.mt(), tiles.nt(), *opt.tree);
  core::TStore<double> ts(tiles.mt(), tiles.nt(), opt.ib, tiles.nb());
  core::TStore<double> t2s(tiles.mt(), tiles.nt(), opt.ib, tiles.nb());
  runtime::execute_spawn(
      plan.graph,
      [&](std::int32_t idx) {
        core::run_task_kernels(plan.graph.tasks[size_t(idx)], tiles, ts, t2s, opt.ib);
      },
      1);
  return tiles.to_dense();
}

void expect_bitwise(const Matrix<double>& got, const Matrix<double>& want,
                    const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::int64_t j = 0; j < got.cols(); ++j)
    for (std::int64_t i = 0; i < got.rows(); ++i)
      ASSERT_EQ(got(i, j), want(i, j)) << what << " at (" << i << "," << j << ")";
}

/// ||Q^T Q - I|| and ||A - Q R|| / ||A|| at paper tolerances.
void expect_residuals(const TiledQr<double>& qr, const Matrix<double>& a,
                      const std::string& what) {
  auto q = qr.q_thin();
  EXPECT_LE(double(orthogonality_error<double>(q.view())), 1e-11) << what;
  auto r = qr.r_factor();
  Matrix<double> qrprod(a.rows(), a.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, q.view(), r.view(), 0.0, qrprod.view());
  EXPECT_LE(double(difference_norm<double>(qrprod.view(), a.view()) /
                   frobenius_norm<double>(a.view())),
            1e-12)
      << what;
}

struct SweepCase {
  int p, q, nb;
  TreeConfig tree;
  int threads;
  int batch;
};

std::vector<SweepCase> sweep_cases() {
  const TreeConfig greedy_tt{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  const TreeConfig flat_ts{TreeKind::FlatTree, KernelFamily::TS, 1, 0};
  const TreeConfig fib_tt{TreeKind::Fibonacci, KernelFamily::TT, 1, 0};
  const TreeConfig plasma2{TreeKind::PlasmaTree, KernelFamily::TT, 2, 0};
  const TreeConfig asap{TreeKind::Asap, KernelFamily::TT, 1, 0};
  std::vector<SweepCase> cases = {
      {1, 1, 8, greedy_tt, 2, 3},   // single-tile DAGs: fusion of trivial graphs
      {4, 2, 8, greedy_tt, 4, 5},   // tall grid, whole-pool interleave
      {5, 3, 8, flat_ts, 2, 4},     // TS kernel family
      {3, 3, 16, fib_tt, 4, 4},     // square grid, larger tiles
      {6, 2, 8, plasma2, 2, 6},     // PlasmaTree with domains
      {4, 4, 8, asap, 1, 4},        // dynamic tree on a single-worker pool
  };
  if (env_flag("TILEDQR_STRESS")) {
    const TreeConfig grasap{TreeKind::Grasap, KernelFamily::TT, 1, 2};
    cases.push_back({8, 4, 16, greedy_tt, 4, 16});
    cases.push_back({7, 3, 8, grasap, 4, 9});
    cases.push_back({10, 2, 8, fib_tt, 8, 12});
    cases.push_back({5, 5, 8, flat_ts, 8, 8});
  }
  return cases;
}

// ------------------------------------------------------ dag-level fusion --

TEST(TaskGraphFusion, AppendOffsetBuildsDisjointUnion) {
  auto g1 = dag::build_task_graph(4, 2, trees::greedy_tree(4, 2));
  auto g2 = dag::build_task_graph(3, 3, trees::greedy_tree(3, 3));
  dag::TaskGraph fused;
  auto off1 = fused.append_offset(g1);
  auto off2 = fused.append_offset(g2);
  EXPECT_EQ(off1, 0);
  EXPECT_EQ(off2, std::int32_t(g1.tasks.size()));
  ASSERT_EQ(fused.tasks.size(), g1.tasks.size() + g2.tasks.size());
  EXPECT_EQ(fused.edge_count(), g1.edge_count() + g2.edge_count());
  EXPECT_EQ(fused.total_weight(), g1.total_weight() + g2.total_weight());
  // Component tasks are verbatim copies with successor indices shifted into
  // their own range; npred is untouched.
  for (size_t t = 0; t < g1.tasks.size(); ++t) {
    EXPECT_EQ(fused.tasks[t].npred, g1.tasks[t].npred);
    for (size_t s = 0; s < g1.tasks[t].succ.size(); ++s)
      EXPECT_EQ(fused.tasks[t].succ[s], g1.tasks[t].succ[s]);
  }
  for (size_t t = 0; t < g2.tasks.size(); ++t) {
    const auto& ft = fused.tasks[size_t(off2) + t];
    EXPECT_EQ(ft.npred, g2.tasks[t].npred);
    ASSERT_EQ(ft.succ.size(), g2.tasks[t].succ.size());
    for (size_t s = 0; s < g2.tasks[t].succ.size(); ++s) {
      EXPECT_EQ(ft.succ[s], g2.tasks[t].succ[s] + off2);
      EXPECT_GE(ft.succ[s], off2);  // no cross-component edges
    }
  }
}

TEST(TaskGraphFusion, FusedRanksEqualConcatenatedPlanRanks) {
  // Downward ranks never cross independent components, so the fused graph's
  // rank vector must equal the concatenation of the per-plan cached ranks.
  const TreeConfig greedy{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  const TreeConfig flat{TreeKind::FlatTree, KernelFamily::TS, 1, 0};
  auto p1 = std::make_shared<const core::Plan>(core::make_plan(5, 2, greedy));
  auto p2 = std::make_shared<const core::Plan>(core::make_plan(3, 3, flat));
  std::vector<std::shared_ptr<const core::Plan>> plans = {p1, p2, p1};
  auto fused = core::make_fused_plan(plans);
  ASSERT_EQ(fused.parts.size(), 3u);
  EXPECT_EQ(fused.parts[0].begin, 0);
  EXPECT_EQ(fused.parts[2].end, std::int32_t(fused.graph.tasks.size()));
  auto recomputed = runtime::downward_ranks(fused.graph);
  ASSERT_EQ(fused.ranks.size(), recomputed.size());
  for (size_t t = 0; t < recomputed.size(); ++t) EXPECT_EQ(fused.ranks[t], recomputed[t]);
  // part_of maps every boundary correctly.
  for (size_t i = 0; i < fused.parts.size(); ++i) {
    EXPECT_EQ(fused.part_of(fused.parts[i].begin), int(i));
    EXPECT_EQ(fused.part_of(fused.parts[i].end - 1), int(i));
  }
}

TEST(TaskGraphFusion, PlanRanksMatchExecutorRanks) {
  // The cached ranks in a Plan are exactly what the executor would compute.
  auto plan = core::make_plan(6, 3, TreeConfig{});
  auto fresh = runtime::downward_ranks(plan.graph);
  ASSERT_EQ(plan.ranks.size(), fresh.size());
  for (size_t t = 0; t < fresh.size(); ++t) EXPECT_EQ(plan.ranks[t], fresh[t]);
}

// ------------------------------------------------- fused batch execution --

TEST(BatchFusion, SweepMatchesSequentialReplayBitwise) {
  for (const auto& c : sweep_cases()) {
    const std::string what = "p=" + std::to_string(c.p) + " q=" + std::to_string(c.q) +
                             " nb=" + std::to_string(c.nb) +
                             " tree=" + std::to_string(int(c.tree.kind)) +
                             " threads=" + std::to_string(c.threads) +
                             " batch=" + std::to_string(c.batch);
    Options opt;
    opt.tree = c.tree;
    opt.nb = c.nb;
    opt.ib = c.nb / 2;
    // Ragged on purpose (padding path), but keep m >= n for q_thin.
    const std::int64_t m = std::int64_t(c.p) * c.nb - (c.p > 1 ? 3 : 0);
    const std::int64_t n = std::min(std::int64_t(c.q) * c.nb - (c.q > 1 ? 2 : 1), m);

    QrSession session(QrSession::Config{c.threads});
    std::vector<Matrix<double>> inputs;
    std::vector<ConstMatrixView<double>> views;
    for (int i = 0; i < c.batch; ++i)
      inputs.push_back(random_matrix<double>(m, n, 100 * unsigned(c.p) + unsigned(i)));
    for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));

    auto results = session.factorize_batch(views, opt);
    ASSERT_EQ(results.size(), size_t(c.batch)) << what;
    for (int i = 0; i < c.batch; ++i) {
      auto want = replay_sequential(inputs[size_t(i)], opt);
      expect_bitwise(results[size_t(i)].factors().to_dense(), want,
                     what + " matrix " + std::to_string(i));
    }
    // Residuals at paper tolerances on a couple of representatives.
    expect_residuals(results.front(), inputs.front(), what);
    expect_residuals(results.back(), inputs.back(), what);
  }
}

TEST(BatchFusion, HeterogeneousShapesFuseAdHoc) {
  QrSession session(QrSession::Config{4});
  Options opt;
  opt.tree = TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 16;
  opt.ib = 8;
  std::vector<Matrix<double>> inputs;
  inputs.push_back(random_matrix<double>(5 * 16, 2 * 16, 1));
  inputs.push_back(random_matrix<double>(2 * 16, 2 * 16, 2));
  inputs.push_back(random_matrix<double>(7 * 16 - 5, 16 - 1, 3));
  inputs.push_back(random_matrix<double>(5 * 16, 2 * 16, 4));  // same shape as #0
  std::vector<ConstMatrixView<double>> views;
  for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));

  auto results = session.factorize_batch(views, opt);
  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < results.size(); ++i)
    expect_bitwise(results[i].factors().to_dense(), replay_sequential(inputs[i], opt),
                   "heterogeneous matrix " + std::to_string(i));
  // Mixed shapes fuse ad hoc: no fused cache entry is created.
  auto stats = session.plan_cache_stats();
  EXPECT_EQ(stats.fused_entries, 0u);
  EXPECT_EQ(stats.entries, 3u);  // three distinct base shapes
}

TEST(BatchFusion, HomogeneousBatchCachesTheFusedPlan) {
  QrSession session(QrSession::Config{2});
  Options opt;
  opt.tree = TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 16;
  opt.ib = 8;
  constexpr int kBatch = 6;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i) inputs.push_back(random_matrix<double>(64, 32, 50 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));

  (void)session.factorize_batch(views, opt);
  auto stats1 = session.plan_cache_stats();
  EXPECT_EQ(stats1.fused_misses, 1);
  EXPECT_EQ(stats1.fused_hits, 0);
  EXPECT_EQ(stats1.fused_entries, 1u);
  EXPECT_EQ(stats1.entries, 1u);  // base-plan accounting untouched by fusion
  EXPECT_EQ(stats1.misses, 1);
  EXPECT_GT(stats1.bytes, 0u);

  (void)session.factorize_batch(views, opt);
  auto stats2 = session.plan_cache_stats();
  EXPECT_EQ(stats2.fused_misses, 1);
  EXPECT_EQ(stats2.fused_hits, 1);
  EXPECT_EQ(stats2.fused_entries, 1u);
}

TEST(BatchFusion, FuturesResolveIndependently) {
  QrSession session(QrSession::Config{4});
  Options opt;
  opt.tree = TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 16;
  opt.ib = 8;
  constexpr int kBatch = 8;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBatch; ++i) inputs.push_back(random_matrix<double>(96, 32, 900 + i));
  std::vector<ConstMatrixView<double>> views;
  for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));

  auto futures = session.submit_batch(views, opt);
  ASSERT_EQ(futures.size(), size_t(kBatch));
  // Draining in reverse exercises the per-subgraph sentinels (no single
  // batch barrier): every future must resolve on its own.
  for (int i = kBatch - 1; i >= 0; --i) {
    auto qr = futures[size_t(i)].get();
    expect_bitwise(qr.factors().to_dense(), replay_sequential(inputs[size_t(i)], opt),
                   "future " + std::to_string(i));
  }
}

TEST(BatchFusion, EmptyBatchIsANoOp) {
  QrSession session(QrSession::Config{2});
  Options opt;
  opt.nb = 16;
  std::vector<ConstMatrixView<double>> none;
  auto results = session.factorize_batch(none, opt);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(session.pool_stats().graphs_completed, 0);
}

TEST(BatchFusion, InvalidOptionsFailEveryFutureWithoutPoisoningTheSession) {
  QrSession session(QrSession::Config{2});
  auto a = random_matrix<double>(64, 32, 5);
  std::vector<ConstMatrixView<double>> views(3, ConstMatrixView<double>(a.view()));
  Options bad;
  bad.nb = 0;  // tiling must fail loudly, per input
  auto futures = session.submit_batch(views, bad);
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures) EXPECT_THROW((void)f.get(), Error);
  // The session keeps serving after a failed batch.
  Options good;
  good.nb = 16;
  good.ib = 8;
  auto results = session.factorize_batch(views, good);
  EXPECT_EQ(results.size(), 3u);
}

TEST(BatchFusion, BatchOfOneSkipsFusion) {
  QrSession session(QrSession::Config{2});
  Options opt;
  opt.tree = TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 16;
  opt.ib = 8;
  auto a = random_matrix<double>(80, 32, 77);
  std::vector<ConstMatrixView<double>> views{ConstMatrixView<double>(a.view())};
  auto results = session.factorize_batch(views, opt);
  ASSERT_EQ(results.size(), 1u);
  expect_bitwise(results[0].factors().to_dense(), replay_sequential(a, opt), "batch of one");
  auto stats = session.plan_cache_stats();
  EXPECT_EQ(stats.fused_entries, 0u);  // no single-part fusion cached
  EXPECT_EQ(stats.fused_misses, 0);
}

}  // namespace
}  // namespace tiledqr
