// Tests for the six tile kernels, parameterized over tile size and inner
// blocking. Each *QRT kernel is validated through its matching *MQR kernel:
// applying Q^H to the original operands must reproduce [R; 0], applying
// Q then Q^H must round-trip, and the |R| diagonal must agree with the
// reference Householder QR of the stacked operands (R is unique up to the
// phase of its rows).
#include <gtest/gtest.h>

#include <complex>
#include <tuple>

#include "kernels/kernels.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using kernels::ApplyTrans;

struct Shape {
  int nb;
  int ib;
};

class KernelParam : public ::testing::TestWithParam<Shape> {};

template <typename T>
Matrix<T> stack(const Matrix<T>& top, const Matrix<T>& bottom) {
  Matrix<T> s(top.rows() + bottom.rows(), top.cols());
  for (std::int64_t j = 0; j < top.cols(); ++j) {
    for (std::int64_t i = 0; i < top.rows(); ++i) s(i, j) = top(i, j);
    for (std::int64_t i = 0; i < bottom.rows(); ++i) s(top.rows() + i, j) = bottom(i, j);
  }
  return s;
}

template <typename T>
double check_geqrt(int nb, int ib) {
  auto a0 = random_matrix<T>(nb, nb, 11);
  Matrix<T> a(nb, nb);
  copy(a0.view(), a.view());
  Matrix<T> t(ib, nb);
  kernels::geqrt(ib, a.view(), t.view());

  double err = 0;
  // Q^H A0 == R.
  Matrix<T> c(nb, nb);
  copy(a0.view(), c.view());
  kernels::unmqr(ApplyTrans::ConjTrans, ib, a.view(), t.view(), c.view());
  for (int j = 0; j < nb; ++j)
    for (int i = 0; i < nb; ++i)
      err = std::max(err, std::abs(c(i, j) - (i <= j ? a(i, j) : T(0))));
  // Round trip Q Q^H = I.
  auto d0 = random_matrix<T>(nb, nb, 12);
  Matrix<T> d(nb, nb);
  copy(d0.view(), d.view());
  kernels::unmqr(ApplyTrans::NoTrans, ib, a.view(), t.view(), d.view());
  kernels::unmqr(ApplyTrans::ConjTrans, ib, a.view(), t.view(), d.view());
  err = std::max(err, double(difference_norm<T>(d.view(), d0.view())));
  // |diag R| vs reference.
  auto ref = kernels::reference_qr<T>(a0.view());
  for (int i = 0; i < nb; ++i)
    err = std::max(err, std::abs(std::abs(a(i, i)) - std::abs(ref.vr(i, i))));
  return err;
}

template <typename T>
double check_pair(int nb, int ib, bool tt) {
  auto a1o = random_upper_triangular<T>(nb, 21);
  auto a2o = tt ? random_upper_triangular<T>(nb, 22) : random_matrix<T>(nb, nb, 22);
  Matrix<T> a1(nb, nb), a2(nb, nb), t(ib, nb);
  copy(a1o.view(), a1.view());
  copy(a2o.view(), a2.view());
  if (tt)
    kernels::ttqrt(ib, a1.view(), a2.view(), t.view());
  else
    kernels::tsqrt(ib, a1.view(), a2.view(), t.view());

  auto mqr = [&](ApplyTrans trans, MatrixView<T> c1, MatrixView<T> c2) {
    if (tt)
      kernels::ttmqr(trans, ib, a2.view(), t.view(), c1, c2);
    else
      kernels::tsmqr(trans, ib, a2.view(), t.view(), c1, c2);
  };

  double err = 0;
  // Q^H [A1o; A2o] == [R; 0].
  Matrix<T> c1(nb, nb), c2(nb, nb);
  copy(a1o.view(), c1.view());
  copy(a2o.view(), c2.view());
  mqr(ApplyTrans::ConjTrans, c1.view(), c2.view());
  err = std::max(err, double(frobenius_norm<T>(c2.view())));
  err = std::max(err, double(difference_norm<T>(c1.view(), a1.view())));
  // Round trip.
  auto d1o = random_matrix<T>(nb, nb, 23);
  auto d2o = random_matrix<T>(nb, nb, 24);
  Matrix<T> d1(nb, nb), d2(nb, nb);
  copy(d1o.view(), d1.view());
  copy(d2o.view(), d2.view());
  mqr(ApplyTrans::NoTrans, d1.view(), d2.view());
  mqr(ApplyTrans::ConjTrans, d1.view(), d2.view());
  err = std::max(err, double(difference_norm<T>(d1.view(), d1o.view())));
  err = std::max(err, double(difference_norm<T>(d2.view(), d2o.view())));
  // |diag R| vs the reference QR of the stacked pair.
  auto ref = kernels::reference_qr<T>(ConstMatrixView<T>(stack(a1o, a2o).view()));
  for (int i = 0; i < nb; ++i)
    err = std::max(err, std::abs(std::abs(a1(i, i)) - std::abs(ref.vr(i, i))));
  return err;
}

/// Materializes Q^H of a TS/TT transformation as a dense 2nb x 2nb matrix
/// and checks unitarity.
template <typename T>
double check_unitarity(int nb, int ib, bool tt) {
  auto a1 = random_upper_triangular<T>(nb, 31);
  auto a2 = tt ? random_upper_triangular<T>(nb, 32) : random_matrix<T>(nb, nb, 32);
  Matrix<T> t(ib, nb);
  if (tt)
    kernels::ttqrt(ib, a1.view(), a2.view(), t.view());
  else
    kernels::tsqrt(ib, a1.view(), a2.view(), t.view());

  Matrix<T> qh(2 * nb, 2 * nb);
  // Column block c: Q^H applied to [I; 0] and [0; I].
  for (int blockcol = 0; blockcol < 2; ++blockcol) {
    Matrix<T> c1(nb, nb), c2(nb, nb);
    if (blockcol == 0)
      for (int i = 0; i < nb; ++i) c1(i, i) = T(1);
    else
      for (int i = 0; i < nb; ++i) c2(i, i) = T(1);
    if (tt)
      kernels::ttmqr(ApplyTrans::ConjTrans, ib, a2.view(), t.view(), c1.view(), c2.view());
    else
      kernels::tsmqr(ApplyTrans::ConjTrans, ib, a2.view(), t.view(), c1.view(), c2.view());
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < nb; ++i) {
        qh(i, blockcol * nb + j) = c1(i, j);
        qh(nb + i, blockcol * nb + j) = c2(i, j);
      }
  }
  return double(orthogonality_error<T>(qh.view()));
}

TEST_P(KernelParam, GeqrtUnmqrDouble) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_geqrt<double>(nb, ib), 1e-12);
}
TEST_P(KernelParam, GeqrtUnmqrComplex) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_geqrt<std::complex<double>>(nb, ib), 1e-12);
}
TEST_P(KernelParam, TsqrtTsmqrDouble) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_pair<double>(nb, ib, false), 1e-12);
}
TEST_P(KernelParam, TsqrtTsmqrComplex) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_pair<std::complex<double>>(nb, ib, false), 1e-12);
}
TEST_P(KernelParam, TtqrtTtmqrDouble) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_pair<double>(nb, ib, true), 1e-12);
}
TEST_P(KernelParam, TtqrtTtmqrComplex) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_pair<std::complex<double>>(nb, ib, true), 1e-12);
}
TEST_P(KernelParam, TsUnitary) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_unitarity<double>(nb, ib, false), 1e-12);
  EXPECT_LE(check_unitarity<std::complex<double>>(nb, ib, false), 1e-12);
}
TEST_P(KernelParam, TtUnitary) {
  auto [nb, ib] = GetParam();
  EXPECT_LE(check_unitarity<double>(nb, ib, true), 1e-12);
  EXPECT_LE(check_unitarity<std::complex<double>>(nb, ib, true), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelParam,
                         ::testing::Values(Shape{1, 1}, Shape{2, 1}, Shape{3, 2}, Shape{5, 2},
                                           Shape{8, 3}, Shape{8, 8}, Shape{16, 4}, Shape{16, 16},
                                           Shape{24, 5}, Shape{33, 8}, Shape{33, 64}),
                         [](const auto& inst) {
                           return "nb" + std::to_string(inst.param.nb) + "_ib" +
                                  std::to_string(inst.param.ib);
                         });

TEST(KernelStorage, TtqrtPreservesStrictlyLowerParts) {
  // The strictly-lower triangles of both tiles hold GEQRT reflectors that a
  // later apply_q replay needs; TTQRT must not touch them.
  const int nb = 8, ib = 3;
  auto a1 = random_matrix<double>(nb, nb, 41);
  auto a2 = random_matrix<double>(nb, nb, 42);
  Matrix<double> a1c(nb, nb), a2c(nb, nb), t(ib, nb);
  copy(a1.view(), a1c.view());
  copy(a2.view(), a2c.view());
  kernels::ttqrt(ib, a1c.view(), a2c.view(), t.view());
  for (int j = 0; j < nb; ++j)
    for (int i = j + 1; i < nb; ++i) {
      EXPECT_EQ(a1c(i, j), a1(i, j)) << "a1 " << i << "," << j;
      EXPECT_EQ(a2c(i, j), a2(i, j)) << "a2 " << i << "," << j;
    }
}

TEST(KernelStorage, TsqrtPreservesPivotStrictlyLower) {
  const int nb = 8, ib = 4;
  auto a1 = random_matrix<double>(nb, nb, 43);
  auto a2 = random_matrix<double>(nb, nb, 44);
  Matrix<double> a1c(nb, nb), t(ib, nb);
  copy(a1.view(), a1c.view());
  kernels::tsqrt(ib, a1c.view(), a2.view(), t.view());
  for (int j = 0; j < nb; ++j)
    for (int i = j + 1; i < nb; ++i) EXPECT_EQ(a1c(i, j), a1(i, j));
}

TEST(KernelMeta, WeightsMatchTable1) {
  using kernels::KernelKind;
  EXPECT_EQ(kernels::kernel_weight(KernelKind::GEQRT), 4);
  EXPECT_EQ(kernels::kernel_weight(KernelKind::UNMQR), 6);
  EXPECT_EQ(kernels::kernel_weight(KernelKind::TSQRT), 6);
  EXPECT_EQ(kernels::kernel_weight(KernelKind::TSMQR), 12);
  EXPECT_EQ(kernels::kernel_weight(KernelKind::TTQRT), 2);
  EXPECT_EQ(kernels::kernel_weight(KernelKind::TTMQR), 6);
}

TEST(KernelMeta, NamesAndFlops) {
  using kernels::KernelKind;
  EXPECT_STREQ(kernels::kernel_name(KernelKind::TSMQR), "TSMQR");
  EXPECT_DOUBLE_EQ(kernels::kernel_flops(KernelKind::GEQRT, 3, false), 4.0 * 9.0);
  EXPECT_DOUBLE_EQ(kernels::kernel_flops(KernelKind::GEQRT, 3, true), 16.0 * 9.0);
}

TEST(KernelChecks, BadIbThrows) {
  Matrix<double> a(4, 4), t(2, 4);
  EXPECT_THROW(kernels::geqrt(0, a.view(), t.view()), Error);
}

TEST(KernelChecks, TsqrtRejectsUndersizedR1) {
  // a1 must hold an n x n triangle: a 2 x 4 a1 cannot. The original check
  // compared a1.rows() against min(a1.rows(), n) — a tautology that let this
  // shape through to read past a1's rows.
  Matrix<double> a1(2, 4), a2(4, 4), t(2, 4);
  EXPECT_THROW(kernels::tsqrt(2, a1.view(), a2.view(), t.view()), Error);
}

}  // namespace
}  // namespace tiledqr
