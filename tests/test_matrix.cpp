// Tests for the dense and tiled matrix containers.
#include <gtest/gtest.h>

#include <complex>

#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"
#include "matrix/tile_matrix.hpp"

namespace tiledqr {
namespace {

using Scalars = ::testing::Types<float, double, std::complex<float>, std::complex<double>>;

template <typename T>
class MatrixTyped : public ::testing::Test {};
TYPED_TEST_SUITE(MatrixTyped, Scalars);

TYPED_TEST(MatrixTyped, ZeroInitialized) {
  Matrix<TypeParam> a(3, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), TypeParam(0));
}

TYPED_TEST(MatrixTyped, IdentityAndViews) {
  auto eye = Matrix<TypeParam>::identity(5);
  EXPECT_EQ(eye(2, 2), TypeParam(1));
  EXPECT_EQ(eye(2, 3), TypeParam(0));
  auto sub = eye.sub(1, 1, 3, 3);
  EXPECT_EQ(sub(0, 0), TypeParam(1));
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.ld(), 5);
}

TYPED_TEST(MatrixTyped, CopyView) {
  auto a = random_matrix<TypeParam>(6, 5, 3);
  Matrix<TypeParam> b(6, 5);
  copy(a.view(), b.view());
  EXPECT_EQ(difference_norm<TypeParam>(a.view(), b.view()), RealType<TypeParam>(0));
}

TYPED_TEST(MatrixTyped, TileRoundTripExactSize) {
  auto a = random_matrix<TypeParam>(12, 8, 5);
  auto t = TileMatrix<TypeParam>::from_dense(a.view(), 4);
  EXPECT_EQ(t.mt(), 3);
  EXPECT_EQ(t.nt(), 2);
  auto back = t.to_dense();
  EXPECT_EQ(difference_norm<TypeParam>(a.view(), back.view()), RealType<TypeParam>(0));
}

TYPED_TEST(MatrixTyped, TileRoundTripRaggedSizePadsWithZeros) {
  auto a = random_matrix<TypeParam>(13, 7, 6);
  auto t = TileMatrix<TypeParam>::from_dense(a.view(), 5);
  EXPECT_EQ(t.mt(), 3);
  EXPECT_EQ(t.nt(), 2);
  auto back = t.to_dense();
  EXPECT_EQ(difference_norm<TypeParam>(a.view(), back.view()), RealType<TypeParam>(0));
  // The padded region must be zero.
  EXPECT_EQ(t.tile(2, 1)(4, 4), TypeParam(0));
}

TYPED_TEST(MatrixTyped, TileViewsAliasStorage) {
  TileMatrix<TypeParam> t(8, 8, 4);
  t.tile(1, 1)(2, 3) = TypeParam(7);
  EXPECT_EQ(t.at(6, 7), TypeParam(7));
}

TEST(Norms, FrobeniusKnownValue) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(frobenius_norm<double>(a.view()), 5.0);
}

TEST(Norms, OrthogonalityErrorOfIdentityIsZero) {
  auto eye = Matrix<double>::identity(6);
  EXPECT_DOUBLE_EQ(orthogonality_error<double>(eye.view()), 0.0);
}

TEST(Norms, BelowDiagonalMax) {
  Matrix<double> a(3, 3);
  a(2, 0) = -2.5;
  a(0, 2) = 9.0;  // above diagonal: ignored
  EXPECT_DOUBLE_EQ(below_diagonal_max<double>(a.view()), 2.5);
}

TEST(Generate, Deterministic) {
  auto a = random_matrix<double>(4, 4, 42);
  auto b = random_matrix<double>(4, 4, 42);
  EXPECT_EQ(difference_norm<double>(a.view(), b.view()), 0.0);
  auto c = random_matrix<double>(4, 4, 43);
  EXPECT_GT(difference_norm<double>(a.view(), c.view()), 0.0);
}

TEST(Generate, UpperTriangular) {
  auto r = random_upper_triangular<double>(5, 1);
  EXPECT_EQ(below_diagonal_max<double>(r.view()), 0.0);
  EXPECT_NE(r(0, 0), 0.0);
}

TEST(MatrixChecks, InvalidDimensionsThrow) {
  EXPECT_THROW(TileMatrix<double>(0, 5, 4), Error);
  EXPECT_THROW(TileMatrix<double>(5, 5, 0), Error);
}

}  // namespace
}  // namespace tiledqr
