// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/stringf.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace tiledqr {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    TILEDQR_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(TILEDQR_CHECK(2 + 2 == 4, "fine"));
}

TEST(Stringf, FormatsLikePrintf) {
  EXPECT_EQ(stringf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(stringf("%s", ""), "");
}

TEST(Stringf, LongOutput) {
  std::string big(5000, 'a');
  EXPECT_EQ(stringf("%s", big.c_str()).size(), big.size());
}

TEST(Env, LongParsesAndFallsBack) {
  ::setenv("TILEDQR_TEST_LONG", "42", 1);
  EXPECT_EQ(env_long("TILEDQR_TEST_LONG", 7), 42);
  ::setenv("TILEDQR_TEST_LONG", "oops", 1);
  EXPECT_EQ(env_long("TILEDQR_TEST_LONG", 7), 7);
  ::unsetenv("TILEDQR_TEST_LONG");
  EXPECT_EQ(env_long("TILEDQR_TEST_LONG", 9), 9);
}

TEST(Env, FlagVariants) {
  for (const char* v : {"1", "true", "YES", "On"}) {
    ::setenv("TILEDQR_TEST_FLAG", v, 1);
    EXPECT_TRUE(env_flag("TILEDQR_TEST_FLAG")) << v;
  }
  ::setenv("TILEDQR_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("TILEDQR_TEST_FLAG"));
  ::unsetenv("TILEDQR_TEST_FLAG");
  EXPECT_TRUE(env_flag("TILEDQR_TEST_FLAG", true));
}

TEST(Env, DefaultThreadCountPositive) { EXPECT_GE(default_thread_count(), 1); }

TEST(Timer, MeasuresNonNegative) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x = x + i;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t("title");
  t.set_header({"a", "bbbb"});
  t.add_row({"xx", "y"});
  t.add_row({"1", "22222"});
  std::string s = t.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t;
  t.set_header({"p", "q"});
  t.add_row({"40", "10"});
  EXPECT_EQ(t.csv(), "p,q\n40,10\n");
}

}  // namespace
}  // namespace tiledqr
