// Additional kernel-level tests: rectangular operands, wide updates, and the
// TStore block-factor container.
#include <gtest/gtest.h>

#include <complex>

#include "core/tiled_qr.hpp"
#include "kernels/kernels.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using kernels::ApplyTrans;

TEST(KernelsExtra, GeqrtTallTile) {
  // m > n tiles (not used by the square-tile driver but part of the kernel
  // contract).
  const int m = 13, n = 7, ib = 3;
  auto a0 = random_matrix<double>(m, n, 1);
  Matrix<double> a(m, n), t(ib, n);
  copy(a0.view(), a.view());
  kernels::geqrt(ib, a.view(), t.view());
  Matrix<double> c(m, n);
  copy(a0.view(), c.view());
  kernels::unmqr(ApplyTrans::ConjTrans, ib, a.view(), t.view(), c.view());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(std::abs(c(i, j) - (i <= j ? a(i, j) : 0.0)), 0.0, 1e-12);
}

TEST(KernelsExtra, GeqrtWideTile) {
  const int m = 5, n = 9, ib = 2;
  auto a0 = random_matrix<double>(m, n, 2);
  Matrix<double> a(m, n), t(ib, n);
  copy(a0.view(), a.view());
  kernels::geqrt(ib, a.view(), t.view());
  auto ref = kernels::reference_qr<double>(a0.view());
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(std::abs(a(i, i)), std::abs(ref.vr(i, i)), 1e-12);
}

TEST(KernelsExtra, TsqrtRectangularBottomTile) {
  // a2 with fewer rows than columns of a1 (a ragged bottom tile in a
  // rectangular-tiling generalization).
  const int n = 8, m2 = 5, ib = 4;
  auto a1o = random_upper_triangular<double>(n, 3);
  auto a2o = random_matrix<double>(m2, n, 4);
  Matrix<double> a1(n, n), a2(m2, n), t(ib, n);
  copy(a1o.view(), a1.view());
  copy(a2o.view(), a2.view());
  kernels::tsqrt(ib, a1.view(), a2.view(), t.view());
  // Verify through Q^H [A1; A2] = [R; 0].
  Matrix<double> c1(n, n), c2(m2, n);
  copy(a1o.view(), c1.view());
  copy(a2o.view(), c2.view());
  kernels::tsmqr(ApplyTrans::ConjTrans, ib, a2.view(), t.view(), c1.view(), c2.view());
  EXPECT_LE(frobenius_norm<double>(c2.view()), 1e-12);
  EXPECT_LE(difference_norm<double>(c1.view(), a1.view()), 1e-12);
  // Against the reference QR of the stack.
  Matrix<double> st(n + m2, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) st(i, j) = a1o(i, j);
    for (int i = 0; i < m2; ++i) st(n + i, j) = a2o(i, j);
  }
  auto ref = kernels::reference_qr<double>(st.view());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(std::abs(a1(i, i)), std::abs(ref.vr(i, i)), 1e-12);
}

TEST(KernelsExtra, UpdateKernelsOnWidePanels) {
  // C with many more columns than the tile width (apply_q streams whole tile
  // rows of an arbitrary right-hand side through the update kernels).
  const int nb = 8, ib = 4, nn = 21;
  auto a = random_matrix<double>(nb, nb, 5);
  Matrix<double> t(ib, nb);
  kernels::geqrt(ib, a.view(), t.view());
  auto c0 = random_matrix<double>(nb, nn, 6);
  Matrix<double> c(nb, nn);
  copy(c0.view(), c.view());
  kernels::unmqr(ApplyTrans::NoTrans, ib, a.view(), t.view(), c.view());
  kernels::unmqr(ApplyTrans::ConjTrans, ib, a.view(), t.view(), c.view());
  EXPECT_LE(difference_norm<double>(c.view(), c0.view()), 1e-11);
}

TEST(KernelsExtra, ComplexPhaseRDiagonalIsReal) {
  // larfg produces real beta, so the R diagonal of a complex QR is real.
  using Z = std::complex<double>;
  const int nb = 12, ib = 4;
  auto a = random_matrix<Z>(nb, nb, 7);
  Matrix<Z> t(ib, nb);
  kernels::geqrt(ib, a.view(), t.view());
  for (int i = 0; i < nb; ++i) EXPECT_NEAR(a(i, i).imag(), 0.0, 1e-13) << i;
}

TEST(KernelsExtra, TStoreViewsAreDisjoint) {
  core::TStore<double> ts(3, 2, 4, 8);
  ts.at(0, 0)(0, 0) = 1.0;
  ts.at(2, 1)(3, 7) = 2.0;
  EXPECT_EQ(ts.at(0, 0)(0, 0), 1.0);
  EXPECT_EQ(ts.at(2, 1)(3, 7), 2.0);
  EXPECT_EQ(ts.at(1, 0)(0, 0), 0.0);
  EXPECT_EQ(ts.at(0, 1)(0, 0), 0.0);
}

TEST(KernelsExtra, TtqrtSingleColumnTiles) {
  // nb = 1 tiles degenerate to scalar Givens-like eliminations.
  Matrix<double> a1(1, 1), a2(1, 1), t(1, 1);
  a1(0, 0) = 3.0;
  a2(0, 0) = 4.0;
  kernels::ttqrt(1, a1.view(), a2.view(), t.view());
  EXPECT_NEAR(std::abs(a1(0, 0)), 5.0, 1e-14);  // hypot(3,4)
}

}  // namespace
}  // namespace tiledqr
