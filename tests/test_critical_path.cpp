// Critical-path tests: the exact Table 3 oracles, Theorem 1 (closed forms,
// upper bounds, the 22q - 30 lower bound), Proposition 1 (BinaryTree),
// Proposition 2 (TS-FlatTree), and the Table 5 sweep at p = 40.
#include <gtest/gtest.h>

#include <cmath>

#include "core/plan.hpp"
#include "paper_oracles.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

oracles::Table zero_table(int p, int q, const trees::EliminationList& list) {
  auto g = dag::build_task_graph(p, q, list);
  auto cp = sim::earliest_finish(g);
  return sim::zero_time_table(g, cp);
}

long cp_of(int p, int q, TreeKind kind, KernelFamily fam, int bs = 1) {
  return sim::critical_path_units(p, q, TreeConfig{kind, fam, bs, 0});
}

// ---- Table 3 ------------------------------------------------------------

TEST(Table3, FlatTreeExact) {
  EXPECT_EQ(zero_table(15, 6, trees::flat_tree(15, 6, KernelFamily::TT)),
            oracles::table3_flat_tree());
}

TEST(Table3, FibonacciExact) {
  EXPECT_EQ(zero_table(15, 6, trees::fibonacci_tree(15, 6)), oracles::table3_fibonacci());
}

TEST(Table3, GreedyExact) {
  EXPECT_EQ(zero_table(15, 6, trees::greedy_tree(15, 6)), oracles::table3_greedy());
}

TEST(Table3, BinaryTreeExact) {
  EXPECT_EQ(zero_table(15, 6, trees::binary_tree(15, 6)), oracles::table3_binary_tree());
}

TEST(Table3, PlasmaTreeBs5Exact) {
  EXPECT_EQ(zero_table(15, 6, trees::plasma_tree(15, 6, 5, KernelFamily::TT)),
            oracles::table3_plasma_tree_bs5());
}

// ---- Theorem 1 ------------------------------------------------------------

TEST(Theorem1, FlatTreeSingleColumn) {
  for (int p : {1, 2, 3, 5, 8, 15, 40, 100})
    EXPECT_EQ(cp_of(p, 1, TreeKind::FlatTree, KernelFamily::TT), p == 1 ? 4 : 2 * p + 2) << p;
}

TEST(Theorem1, FlatTreeRectangular) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{
           {3, 2}, {5, 3}, {9, 8}, {15, 6}, {40, 10}, {40, 39}, {64, 20}})
    EXPECT_EQ(cp_of(p, q, TreeKind::FlatTree, KernelFamily::TT), 6 * p + 16 * q - 22)
        << p << "," << q;
}

TEST(Theorem1, FlatTreeSquare) {
  for (int n : {2, 3, 5, 8, 12, 20})
    EXPECT_EQ(cp_of(n, n, TreeKind::FlatTree, KernelFamily::TT), 22 * n - 24) << n;
}

TEST(Theorem1, FibonacciUpperBound) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{
           {8, 3}, {15, 6}, {40, 10}, {40, 40}, {64, 16}, {100, 25}}) {
    long cp = sim::critical_path_units(p, q, trees::fibonacci_tree(p, q));
    long bound = 22L * q + 6L * long(std::ceil(std::sqrt(2.0 * p)));
    EXPECT_LE(cp, bound) << p << "," << q;
  }
}

TEST(Theorem1, GreedyUpperBound) {
  // The paper's own Table 4b slightly exceeds the nominal bound at large
  // p/q: Greedy(128,32) = 748 > 22*32 + 6*ceil(log2 128) = 746 (and
  // (128,16) = 396 > 394). The bound's boundary constant is loose by one
  // coarse step; allow 6 units (one update task) of slack.
  for (auto [p, q] : std::vector<std::pair<int, int>>{
           {8, 3}, {15, 6}, {40, 10}, {40, 40}, {64, 16}, {100, 25}, {128, 32}, {128, 16}}) {
    long cp = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    long bound = 22L * q + 6L * long(std::ceil(std::log2(double(p))));
    EXPECT_LE(cp, bound + 6) << p << "," << q;
  }
}

TEST(Theorem1, LowerBound22qMinus30) {
  // Every algorithm's critical path is at least 22q - 30. The bound's proof
  // embeds a q x q three-subdiagonal matrix, so it needs p comfortably above
  // q; near p = q even the paper's own Table 5 sits below 22q - 30 (e.g.
  // Greedy = 826 < 850 at p = q = 40). We check the tall regime.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{8, 3}, {15, 6}, {40, 10}, {64, 16}}) {
    long lb = 22L * q - 30;
    EXPECT_GE(sim::critical_path_units(p, q, trees::greedy_tree(p, q)), lb);
    EXPECT_GE(sim::critical_path_units(p, q, trees::fibonacci_tree(p, q)), lb);
    EXPECT_GE(sim::critical_path_units(p, q, trees::binary_tree(p, q)), lb);
    EXPECT_GE(cp_of(p, q, TreeKind::FlatTree, KernelFamily::TT), lb);
    EXPECT_GE(core::best_plasma_bs(p, q, KernelFamily::TT).critical_path, lb);
  }
}

// ---- Proposition 1: BinaryTree -------------------------------------------

TEST(Proposition1, BinaryTreePowersOfTwo) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{
           {4, 2}, {8, 2}, {8, 4}, {16, 4}, {16, 8}, {32, 8}, {32, 16}, {64, 8}}) {
    long lg = std::lround(std::log2(double(p)));
    EXPECT_EQ(cp_of(p, q, TreeKind::BinaryTree, KernelFamily::TT),
              (10 + 6 * lg) * q - 4 * lg - 6)
        << p << "," << q;
  }
}

// ---- Proposition 2: TS-FlatTree -------------------------------------------

TEST(Proposition2, TsFlatTreeSingleColumn) {
  for (int p : {2, 3, 5, 15, 40})
    EXPECT_EQ(cp_of(p, 1, TreeKind::FlatTree, KernelFamily::TS), 6 * p - 2) << p;
}

TEST(Proposition2, TsFlatTreeRectangular) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{3, 2}, {5, 3}, {15, 6}, {40, 10}})
    EXPECT_EQ(cp_of(p, q, TreeKind::FlatTree, KernelFamily::TS), 12 * p + 18 * q - 32)
        << p << "," << q;
}

TEST(Proposition2, TsFlatTreeSquare) {
  for (int n : {2, 3, 5, 8})
    EXPECT_EQ(cp_of(n, n, TreeKind::FlatTree, KernelFamily::TS), 30 * n - 34) << n;
}

TEST(Proposition2, TsAlwaysSlowerThanTtForFlatTree) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{5, 2}, {15, 6}, {40, 10}, {12, 12}})
    EXPECT_GT(cp_of(p, q, TreeKind::FlatTree, KernelFamily::TS),
              cp_of(p, q, TreeKind::FlatTree, KernelFamily::TT));
}

// ---- Table 5 ------------------------------------------------------------

TEST(Table5, GreedyAndFibonacciColumnsExact) {
  for (const auto& row : oracles::table5()) {
    EXPECT_EQ(sim::critical_path_units(40, row.q, trees::greedy_tree(40, row.q)), row.greedy)
        << "q=" << row.q;
    EXPECT_EQ(sim::critical_path_units(40, row.q, trees::fibonacci_tree(40, row.q)),
              row.fibonacci)
        << "q=" << row.q;
  }
}

TEST(Table5, PlasmaTreeBestBsSubsetExact) {
  // Exhaustive BS search on a subset of q values (the bench prints all 40).
  for (const auto& row : oracles::table5()) {
    if (row.q > 12 && row.q % 5 != 0) continue;
    auto best = core::best_plasma_bs(40, row.q, KernelFamily::TT);
    EXPECT_EQ(best.critical_path, row.plasma) << "q=" << row.q;
    // The paper's reported BS must achieve the best critical path (the
    // argmin need not be unique).
    EXPECT_EQ(cp_of(40, row.q, TreeKind::PlasmaTree, KernelFamily::TT, row.bs), row.plasma)
        << "q=" << row.q;
  }
}

TEST(Table5, GreedyNeverWorseThanPlasmaOrFibonacci) {
  for (const auto& row : oracles::table5()) {
    EXPECT_LE(row.greedy, row.plasma);
    EXPECT_LE(row.greedy, row.fibonacci);
  }
}

// ---- Cross-algorithm sanity ------------------------------------------------

TEST(CriticalPath, Lemma1PreservesExecutionTime) {
  trees::EliminationList rev{{1, 3, 0, false}, {2, 3, 0, false}, {3, 0, 0, false}};
  auto fwd = trees::remove_reverse_eliminations(4, 1, rev);
  EXPECT_EQ(sim::critical_path_units(4, 1, rev), sim::critical_path_units(4, 1, fwd));
}

TEST(CriticalPath, WeightedWithUnitWeightsMatchesInteger) {
  auto g = dag::build_task_graph(10, 4, trees::greedy_tree(10, 4));
  auto cp = sim::earliest_finish(g);
  std::array<double, 6> w{4, 6, 6, 12, 2, 6};
  EXPECT_DOUBLE_EQ(sim::critical_path_weighted(g, w), double(cp.critical_path));
}

TEST(CriticalPath, PlanDispatchesStaticAndDynamic) {
  auto p1 = core::make_plan(10, 4, TreeConfig{TreeKind::Greedy, KernelFamily::TT, 1, 0});
  EXPECT_EQ(p1.critical_path, sim::critical_path_units(10, 4, trees::greedy_tree(10, 4)));
  auto p2 = core::make_plan(10, 4, TreeConfig{TreeKind::Asap, KernelFamily::TT, 1, 0});
  EXPECT_GT(p2.critical_path, 0);
  auto v = trees::validate_elimination_list(10, 4, p2.list);
  EXPECT_TRUE(v.ok) << v.message;
}

}  // namespace
}  // namespace tiledqr
