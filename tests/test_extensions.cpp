// Tests for the extensions beyond the paper's core: the Hadri et al.
// Semi/Fully-Parallel trees (the comparison baseline of §4) and the parallel
// apply_q path.
#include <gtest/gtest.h>

#include <complex>

#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::TiledQr;
using kernels::ApplyTrans;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

TEST(HadriTree, ValidAcrossShapesAndFamilies) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{3, 2}, {8, 3}, {15, 6}, {16, 16}}) {
    for (int bs : {1, 2, 5, p}) {
      for (auto fam : {KernelFamily::TT, KernelFamily::TS}) {
        auto list = trees::hadri_tree(p, q, bs, fam);
        auto v = trees::validate_elimination_list(p, q, list);
        EXPECT_TRUE(v.ok) << p << "x" << q << " bs=" << bs << ": " << v.message;
      }
    }
  }
}

TEST(HadriTree, DegenerateDomainSizes) {
  // BS = 1 degenerates to a binary tree; BS >= p to a flat tree — for both
  // anchoring conventions (there is only one domain / only singletons).
  EXPECT_EQ(trees::hadri_tree(8, 3, 1, KernelFamily::TT), trees::binary_tree(8, 3));
  EXPECT_EQ(trees::hadri_tree(8, 3, 8, KernelFamily::TT),
            trees::flat_tree(8, 3, KernelFamily::TT));
}

TEST(HadriTree, DiffersFromPlasmaAnchoring) {
  // For k > 0, PLASMA's first domain starts at row k and spans bs rows;
  // Hadri's first domain is the truncated [k, ceil-boundary) one. The lists
  // differ as soon as k is not a multiple of bs.
  auto plasma = trees::plasma_tree(10, 3, 4, KernelFamily::TT);
  auto hadri = trees::hadri_tree(10, 3, 4, KernelFamily::TT);
  EXPECT_NE(plasma, hadri);
}

TEST(HadriTree, PlasmaIsAtLeastAsGoodAtBestBs) {
  // §4: "the PLASMA algorithms performed identically or better" — at the
  // best domain size, PlasmaTree's critical path is never worse here.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{15, 6}, {40, 10}, {24, 8}}) {
    long plasma_best = core::best_plasma_bs(p, q, KernelFamily::TT).critical_path;
    long hadri_best = -1;
    for (int bs = 1; bs <= p; ++bs) {
      long cp = sim::critical_path_units(p, q, trees::hadri_tree(p, q, bs, KernelFamily::TT));
      if (hadri_best < 0 || cp < hadri_best) hadri_best = cp;
    }
    EXPECT_LE(plasma_best, hadri_best) << p << "x" << q;
  }
}

TEST(HadriTree, FactorizationIsNumericallyCorrect) {
  for (auto fam : {KernelFamily::TT, KernelFamily::TS}) {
    Options opt;
    opt.tree = TreeConfig{TreeKind::HadriTree, fam, 3, 0};
    opt.nb = 8;
    opt.ib = 4;
    opt.threads = 2;
    auto a = random_matrix<double>(48, 16, 61);
    auto qr = TiledQr<double>::factorize(a.view(), opt);
    auto q = qr.q_thin();
    auto r = qr.r_factor();
    Matrix<double> prod(48, 16);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, q.view(), r.view(), 0.0, prod.view());
    EXPECT_LE(difference_norm<double>(a.view(), prod.view()) / frobenius_norm<double>(a.view()),
              1e-12);
  }
}

TEST(HadriTree, NameAndDispatch) {
  EXPECT_EQ((TreeConfig{TreeKind::HadriTree, KernelFamily::TS, 4, 0}.name()), "Hadri-SP(BS=4)");
  EXPECT_EQ((TreeConfig{TreeKind::HadriTree, KernelFamily::TT, 4, 0}.name()), "Hadri-FP(BS=4)");
  EXPECT_EQ(trees::make_static_elimination_list(9, 4,
                                                TreeConfig{TreeKind::HadriTree,
                                                           KernelFamily::TT, 2, 0}),
            trees::hadri_tree(9, 4, 2, KernelFamily::TT));
}

// ---- parallel apply_q ------------------------------------------------------

template <typename T>
void check_parallel_apply(TreeKind kind, KernelFamily fam) {
  Options opt;
  opt.tree = TreeConfig{kind, fam, 2, 1};
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 4;
  const int m = 56, n = 24;
  auto a = random_matrix<T>(m, n, 71);
  auto qr = TiledQr<T>::factorize(a.view(), opt);
  auto c0 = random_matrix<T>(m, 20, 73);
  for (auto trans : {ApplyTrans::ConjTrans, ApplyTrans::NoTrans}) {
    auto cs = TileMatrix<T>::from_dense(c0.view(), 8);
    auto cp = TileMatrix<T>::from_dense(c0.view(), 8);
    qr.apply_q(trans, cs);      // sequential replay
    qr.apply_q(trans, cp, 4);   // DAG-parallel replay
    auto ds = cs.to_dense();
    auto dp = cp.to_dense();
    // Bitwise identical: the per-tile kernel sequences coincide.
    EXPECT_EQ(double(difference_norm<T>(ds.view(), dp.view())), 0.0);
  }
}

TEST(ParallelApplyQ, MatchesSequentialGreedyTT) {
  check_parallel_apply<double>(TreeKind::Greedy, KernelFamily::TT);
}
TEST(ParallelApplyQ, MatchesSequentialFlatTS) {
  check_parallel_apply<double>(TreeKind::FlatTree, KernelFamily::TS);
}
TEST(ParallelApplyQ, MatchesSequentialComplex) {
  check_parallel_apply<std::complex<double>>(TreeKind::Fibonacci, KernelFamily::TT);
}
TEST(ParallelApplyQ, MatchesSequentialPlasmaMixed) {
  check_parallel_apply<double>(TreeKind::PlasmaTree, KernelFamily::TS);
}

TEST(ParallelApplyQ, RoundTripThroughThreadedPath) {
  Options opt;
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 4;
  auto a = random_matrix<double>(40, 16, 79);
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  auto c0 = random_matrix<double>(40, 8, 81);
  auto c = TileMatrix<double>::from_dense(c0.view(), 8);
  qr.apply_q(ApplyTrans::NoTrans, c, 4);
  qr.apply_q(ApplyTrans::ConjTrans, c, 4);
  auto back = c.to_dense();
  EXPECT_LE(difference_norm<double>(back.view(), c0.view()), 1e-11);
}

TEST(ParallelApplyQ, QThinUsesThreadsAndStaysOrthonormal) {
  Options opt;
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 8;
  auto a = random_matrix<double>(64, 24, 83);
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  auto q = qr.q_thin();
  EXPECT_LE(orthogonality_error<double>(q.view()), 1e-12);
}

}  // namespace
}  // namespace tiledqr
