// LQ workload tests: the first non-QR factorization through the
// algorithm-generic engine. Covers numerical quality (||A - L Q|| / ||A||
// and row-orthonormality of Q across elimination trees and kernel
// families), bitwise determinism against the sequential replay across the
// TILEDQR_PIN x TILEDQR_AFFINE_STEAL scheduling sweep, wide-shape routing
// through every session entry point (submit, stream push, batch), and the
// factor-kind keying of the PlanCache and TuningTable (same reduction grid,
// distinct entries).
#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "runtime/executor.hpp"
#include "tuner/tuning_table.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::QrSession;
using core::TiledQr;
using kernels::FactorKind;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

/// Relative residual ||A - L Q||_F / ||A||_F with L and Q formed explicitly.
template <typename T>
double lq_residual(const Matrix<T>& a, const TiledQr<T>& lq) {
  auto l = lq.l_factor();  // m x m lower triangular
  auto q = lq.q_thin();    // m x n, orthonormal rows
  Matrix<T> prod(a.rows(), a.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), l.view(), q.view(), T(0), prod.view());
  return double(difference_norm<T>(a.view(), prod.view()) / frobenius_norm<T>(a.view()));
}

/// Sequential per-matrix LQ replay through the pre-pool spawn path: the plan
/// lives on the reduction grid (nt, mt) and the kernels run on the A-layout
/// tiles — the reference every scheduled LQ result must match bit for bit.
Matrix<double> replay_sequential_lq(const Matrix<double>& a, int nb, int ib,
                                    const TreeConfig& tree) {
  auto tiles = TileMatrix<double>::from_dense(a.view(), nb);
  auto plan = core::make_plan(tiles.nt(), tiles.mt(), tree, FactorKind::LQ);
  core::TStore<double> ts(tiles.nt(), tiles.mt(), ib, tiles.nb());
  core::TStore<double> t2s(tiles.nt(), tiles.mt(), ib, tiles.nb());
  runtime::execute_spawn(
      plan.graph,
      [&](std::int32_t idx) {
        core::run_task_kernels(plan.graph.tasks[size_t(idx)], tiles, ts, t2s, ib);
      },
      1);
  return tiles.to_dense();
}

void expect_bitwise(const Matrix<double>& got, const Matrix<double>& want,
                    const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::int64_t j = 0; j < got.cols(); ++j)
    for (std::int64_t i = 0; i < got.rows(); ++i)
      ASSERT_EQ(got(i, j), want(i, j)) << what << " at (" << i << "," << j << ")";
}

// ------------------------------------------------------- numerical quality --

TEST(LqFactorization, ResidualAndOrthogonalityAcrossTrees) {
  const std::vector<std::pair<TreeConfig, const char*>> algos = {
      {{TreeKind::FlatTree, KernelFamily::TS, 1, 0}, "flat-ts"},
      {{TreeKind::FlatTree, KernelFamily::TT, 1, 0}, "flat-tt"},
      {{TreeKind::Greedy, KernelFamily::TT, 1, 0}, "greedy-tt"},
      {{TreeKind::Fibonacci, KernelFamily::TT, 1, 0}, "fibonacci-tt"},
      {{TreeKind::PlasmaTree, KernelFamily::TT, 2, 0}, "plasma-tt-d2"},
  };
  // Wide shapes only (m < n routes to LQ), including ragged sizes that
  // exercise the zero-padded tile triangle.
  const std::vector<std::tuple<std::int64_t, std::int64_t, int, int>> shapes = {
      {16, 48, 8, 4},  // 2 x 6 tile grid
      {13, 45, 8, 3},  // ragged: padding path
      {7, 56, 7, 7},   // single tile row
      {31, 33, 16, 8}, // barely wide
  };
  for (const auto& [tree, label] : algos) {
    for (const auto& [m, n, nb, ib] : shapes) {
      Options opt;
      opt.tree = tree;
      opt.nb = nb;
      opt.ib = ib;
      opt.threads = 2;
      auto a = random_matrix<double>(m, n, unsigned(100 * m + n));
      auto lq = TiledQr<double>::factorize(a.view(), opt);
      const std::string what =
          std::string(label) + " m=" + std::to_string(m) + " n=" + std::to_string(n);
      ASSERT_EQ(lq.kind(), FactorKind::LQ) << what;
      EXPECT_LE(lq_residual(a, lq), 1e-13) << what;
      auto q = lq.q_thin();
      EXPECT_LE(double(orthogonality_error<double>(q.view())), 1e-13) << what;
    }
  }
}

TEST(LqFactorization, ComplexWideResidual) {
  using C = std::complex<double>;
  Options opt;
  opt.tree = TreeConfig{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 2;
  auto a = random_matrix<C>(16, 48, 11);
  auto lq = TiledQr<C>::factorize(a.view(), opt);
  ASSERT_EQ(lq.kind(), FactorKind::LQ);
  EXPECT_LE(lq_residual(a, lq), 1e-11);
  auto q = lq.q_thin();
  EXPECT_LE(double(orthogonality_error<C>(q.view())), 1e-11);
}

// ---------------------------------------------------- scheduling determinism --

TEST(LqFactorization, BitwiseDeterministicAcrossPinAffineSweep) {
  // Every (TILEDQR_PIN, TILEDQR_AFFINE_STEAL) scheduling mode must produce
  // factors bitwise identical to the 1-thread sequential replay: LQ tasks
  // are commutative-free (each tile has one writer chain), so scheduling
  // order must not leak into the bits.
  Options opt;
  opt.tree = TreeConfig{};  // pin Greedy: a disengaged tree would autotune
  opt.nb = 16;
  opt.ib = 8;
  constexpr int kMats = 3;
  std::vector<Matrix<double>> inputs;
  std::vector<Matrix<double>> refs;
  for (int i = 0; i < kMats; ++i) {
    inputs.push_back(random_matrix<double>(2 * 16 - 3, 5 * 16 - 1, 910 + unsigned(i)));
    refs.push_back(replay_sequential_lq(inputs.back(), opt.nb, opt.ib, *opt.tree));
  }

  const char* old_pin = std::getenv("TILEDQR_PIN");
  const char* old_affine = std::getenv("TILEDQR_AFFINE_STEAL");
  for (int pin : {0, 1}) {
    for (int affine : {0, 1}) {
      setenv("TILEDQR_PIN", pin ? "1" : "0", 1);
      setenv("TILEDQR_AFFINE_STEAL", affine ? "1" : "0", 1);
      QrSession session(QrSession::Config{4});
      std::vector<std::future<TiledQr<double>>> futs;
      for (const auto& a : inputs)
        futs.push_back(session.submit<double>(ConstMatrixView<double>(a.view()), opt));
      for (int i = 0; i < kMats; ++i) {
        auto lq = futs[size_t(i)].get();
        ASSERT_EQ(lq.kind(), FactorKind::LQ);
        expect_bitwise(lq.factors().to_dense(), refs[size_t(i)],
                       "matrix " + std::to_string(i) + " pin=" + std::to_string(pin) +
                           " affine=" + std::to_string(affine));
      }
    }
  }
  old_pin ? setenv("TILEDQR_PIN", old_pin, 1) : unsetenv("TILEDQR_PIN");
  old_affine ? setenv("TILEDQR_AFFINE_STEAL", old_affine, 1)
             : unsetenv("TILEDQR_AFFINE_STEAL");
}

// ------------------------------------------------------------ shape routing --

TEST(LqRouting, WideShapesRouteThroughEverySessionPath) {
  // submit, stream push, and the fused batch all route on element shape:
  // m < n goes LQ, and all three produce bitwise-identical factors.
  const TreeConfig tree{};
  Options opt;
  opt.tree = tree;
  opt.nb = 16;
  opt.ib = 8;
  auto a = random_matrix<double>(2 * 16, 5 * 16, 77);
  const auto want = replay_sequential_lq(a, opt.nb, opt.ib, tree);

  QrSession session(QrSession::Config{2});
  auto sub = session.submit<double>(ConstMatrixView<double>(a.view()), opt).get();
  ASSERT_EQ(sub.kind(), FactorKind::LQ);
  expect_bitwise(sub.factors().to_dense(), want, "submit");

  QrSession::StreamOptions sopt;
  sopt.nb = opt.nb;
  sopt.ib = opt.ib;
  sopt.tree = tree;
  auto stream = session.stream<double>(sopt);
  auto pushed = stream.push(ConstMatrixView<double>(a.view()));
  stream.close();
  auto streamed = pushed.get();
  ASSERT_EQ(streamed.kind(), FactorKind::LQ);
  expect_bitwise(streamed.factors().to_dense(), want, "stream push");
}

TEST(LqRouting, MixedTallAndWideBatchRoutesPerMatrix) {
  // One fused graft carrying a QR part and an LQ part: routing is per
  // matrix, and fusion must not cross-talk between the two worlds.
  const TreeConfig tree{};
  Options opt;
  opt.tree = tree;
  opt.nb = 16;
  opt.ib = 8;
  auto tall = random_matrix<double>(5 * 16, 2 * 16, 21);
  auto wide = random_matrix<double>(2 * 16 - 1, 5 * 16 - 3, 22);
  std::vector<ConstMatrixView<double>> views = {ConstMatrixView<double>(tall.view()),
                                                ConstMatrixView<double>(wide.view())};
  QrSession session(QrSession::Config{2});
  auto results = session.factorize_batch(views, opt);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].kind(), FactorKind::QR);
  EXPECT_EQ(results[1].kind(), FactorKind::LQ);
  expect_bitwise(results[1].factors().to_dense(),
                 replay_sequential_lq(wide, opt.nb, opt.ib, tree), "wide batch part");
  EXPECT_LE(lq_residual(wide, results[1]), 1e-13);
}

// -------------------------------------------------------- factor-kind keys --

TEST(LqKeys, PlanCacheKeysOnFactorKind) {
  // A QR and an LQ workload on the same reduction grid (p, q, config) must
  // get distinct cache entries — colliding would hand QR kernels to an LQ
  // run or vice versa.
  core::PlanCache cache;
  const TreeConfig cfg{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  auto qr_plan = cache.get(6, 2, cfg, FactorKind::QR);
  auto lq_plan = cache.get(6, 2, cfg, FactorKind::LQ);
  ASSERT_NE(qr_plan, lq_plan);
  EXPECT_EQ(qr_plan->graph.factor, FactorKind::QR);
  EXPECT_EQ(lq_plan->graph.factor, FactorKind::LQ);
  // Same elimination tree, dual kernel kinds.
  ASSERT_EQ(qr_plan->graph.tasks.size(), lq_plan->graph.tasks.size());
  for (size_t i = 0; i < qr_plan->graph.tasks.size(); ++i)
    EXPECT_EQ(kernels::lq_dual(qr_plan->graph.tasks[i].kind), lq_plan->graph.tasks[i].kind);
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.entries, 2u);
  // Repeat lookups hit their own entries.
  EXPECT_EQ(cache.get(6, 2, cfg, FactorKind::QR), qr_plan);
  EXPECT_EQ(cache.get(6, 2, cfg, FactorKind::LQ), lq_plan);
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(LqKeys, TuningTableKeysOnFactorKindAndRoundTrips) {
  tuner::TuningTable table;
  tuner::TunedDecision qr_dec;
  qr_dec.config = TreeConfig{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  qr_dec.model_makespan = 12.5;
  tuner::TunedDecision lq_dec;
  lq_dec.config = TreeConfig{TreeKind::FlatTree, KernelFamily::TS, 1, 0};
  lq_dec.model_makespan = 14.0;
  lq_dec.measured_seconds = 0.25;
  lq_dec.refined = true;

  (void)table.record(8, 3, 4, "table1", qr_dec, FactorKind::QR);
  (void)table.record(8, 3, 4, "table1", lq_dec, FactorKind::LQ);
  EXPECT_EQ(table.stats().entries, 2u);

  auto got_qr = table.lookup(8, 3, 4, "table1", FactorKind::QR);
  auto got_lq = table.lookup(8, 3, 4, "table1", FactorKind::LQ);
  ASSERT_TRUE(got_qr.has_value());
  ASSERT_TRUE(got_lq.has_value());
  EXPECT_EQ(*got_qr, qr_dec);
  EXPECT_EQ(*got_lq, lq_dec);

  // The factor kind survives serialization: both entries round-trip and
  // stay independently addressable.
  auto reloaded = tuner::TuningTable::from_json(table.to_json());
  EXPECT_EQ(reloaded.stats().entries, 2u);
  auto rt_qr = reloaded.lookup(8, 3, 4, "table1", FactorKind::QR);
  auto rt_lq = reloaded.lookup(8, 3, 4, "table1", FactorKind::LQ);
  ASSERT_TRUE(rt_qr.has_value());
  ASSERT_TRUE(rt_lq.has_value());
  EXPECT_EQ(*rt_qr, qr_dec);
  EXPECT_EQ(*rt_lq, lq_dec);
}

}  // namespace
}  // namespace tiledqr
