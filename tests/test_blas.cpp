// Tests for the BLAS substrate: every routine against a naive reference,
// across operand shapes, transposition modes, and scalar types.
#include <gtest/gtest.h>

#include <complex>
#include <limits>
#include <tuple>

#include "blas/blas.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using blas::Diag;
using blas::Op;
using blas::Side;
using blas::Uplo;

template <typename T>
Matrix<T> op_of(Op op, const Matrix<T>& a) {
  if (op == Op::NoTrans) {
    Matrix<T> r(a.rows(), a.cols());
    copy(a.view(), r.view());
    return r;
  }
  Matrix<T> r(a.cols(), a.rows());
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i)
      r(j, i) = op == Op::ConjTrans ? conj_if_complex(a(i, j)) : a(i, j);
  return r;
}

template <typename T>
Matrix<T> naive_mul(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols());
  for (std::int64_t j = 0; j < b.cols(); ++j)
    for (std::int64_t l = 0; l < a.cols(); ++l)
      for (std::int64_t i = 0; i < a.rows(); ++i) c(i, j) += a(i, l) * b(l, j);
  return c;
}

template <typename T>
void make_triangular(Matrix<T>& a, Uplo uplo) {
  for (std::int64_t j = 0; j < a.cols(); ++j)
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      if (uplo == Uplo::Upper && i > j) a(i, j) = T(0);
      if (uplo == Uplo::Lower && i < j) a(i, j) = T(0);
    }
}

/// Keeps triangular solves well-conditioned.
template <typename T>
void boost_diagonal(Matrix<T>& a) {
  for (std::int64_t i = 0; i < a.rows(); ++i) a(i, i) += T(4);
}

/// The matrix trmm/trsm actually operate on: the selected triangle, with a
/// unit diagonal substituted when diag == Unit.
template <typename T>
Matrix<T> effective_triangle(const Matrix<T>& a, Uplo uplo, Diag diag) {
  Matrix<T> t(a.rows(), a.cols());
  copy(a.view(), t.view());
  make_triangular(t, uplo);
  if (diag == Diag::Unit)
    for (std::int64_t i = 0; i < a.rows(); ++i) t(i, i) = T(1);
  return t;
}

using Scalars = ::testing::Types<float, double, std::complex<float>, std::complex<double>>;

template <typename T>
class BlasTyped : public ::testing::Test {
 protected:
  static constexpr double tol() { return sizeof(RealType<T>) == 4 ? 2e-4 : 1e-11; }
};
TYPED_TEST_SUITE(BlasTyped, Scalars);

TYPED_TEST(BlasTyped, GemmAllOpCombinations) {
  using T = TypeParam;
  const std::int64_t m = 7, n = 5, k = 6;
  for (Op opa : {Op::NoTrans, Op::Trans, Op::ConjTrans}) {
    for (Op opb : {Op::NoTrans, Op::Trans, Op::ConjTrans}) {
      Matrix<T> a = opa == Op::NoTrans ? random_matrix<T>(m, k, 1) : random_matrix<T>(k, m, 1);
      Matrix<T> b = opb == Op::NoTrans ? random_matrix<T>(k, n, 2) : random_matrix<T>(n, k, 2);
      Matrix<T> c = random_matrix<T>(m, n, 3);
      Matrix<T> want = naive_mul(op_of(opa, a), op_of(opb, b));
      const T alpha = T(2), beta = T(-1);
      for (std::int64_t j = 0; j < n; ++j)
        for (std::int64_t i = 0; i < m; ++i) want(i, j) = alpha * want(i, j) + beta * c(i, j);
      blas::gemm(opa, opb, alpha, a.view(), b.view(), beta, c.view());
      EXPECT_LE(difference_norm<T>(want.view(), c.view()), this->tol())
          << "opa=" << int(opa) << " opb=" << int(opb);
    }
  }
}

TYPED_TEST(BlasTyped, GemmBetaZeroOverwritesGarbage) {
  using T = TypeParam;
  auto a = random_matrix<T>(4, 4, 1);
  auto b = random_matrix<T>(4, 4, 2);
  Matrix<T> c(4, 4);
  c.fill(T(1e30));
  blas::gemm(Op::NoTrans, Op::NoTrans, T(1), a.view(), b.view(), T(0), c.view());
  auto want = naive_mul(a, b);
  EXPECT_LE(difference_norm<T>(want.view(), c.view()), this->tol());
}

TYPED_TEST(BlasTyped, GemmBetaZeroOverwritesNaN) {
  using T = TypeParam;
  // Stronger than the 1e30 fill: 0 * NaN is NaN, so any path that scales the
  // output instead of overwriting it fails this test.
  const auto nan = std::numeric_limits<RealType<T>>::quiet_NaN();
  auto a = random_matrix<T>(5, 3, 21);
  auto b = random_matrix<T>(3, 4, 22);
  Matrix<T> c(5, 4);
  c.fill(T(nan));
  blas::gemm(Op::NoTrans, Op::NoTrans, T(1), a.view(), b.view(), T(0), c.view());
  auto want = naive_mul(a, b);
  EXPECT_LE(difference_norm<T>(want.view(), c.view()), this->tol());
}

TYPED_TEST(BlasTyped, GemvBetaZeroOverwritesNaN) {
  using T = TypeParam;
  // Regression: gemv used to scale y by beta on both paths, so beta == 0 on a
  // NaN-poisoned output buffer produced NaN instead of overwriting.
  const auto nan = std::numeric_limits<RealType<T>>::quiet_NaN();
  auto a = random_matrix<T>(5, 4, 23);
  std::vector<T> x4{T(1), T(2), T(-1), T(0.5)};
  std::vector<T> x5{T(1), T(-2), T(3), T(0), T(1)};

  std::vector<T> y5(5, T(nan));
  blas::gemv(Op::NoTrans, T(2), a.view(), x4.data(), T(0), y5.data());
  for (int i = 0; i < 5; ++i) {
    T want = T(0);
    for (int j = 0; j < 4; ++j) want += T(2) * a(i, j) * x4[size_t(j)];
    EXPECT_LE(std::abs(want - y5[size_t(i)]), this->tol()) << i;
  }

  for (Op op : {Op::Trans, Op::ConjTrans}) {
    std::vector<T> y4(4, T(nan));
    blas::gemv(op, T(1), a.view(), x5.data(), T(0), y4.data());
    for (int j = 0; j < 4; ++j) {
      T want = T(0);
      for (int i = 0; i < 5; ++i)
        want += (op == Op::ConjTrans ? conj_if_complex(a(i, j)) : a(i, j)) * x5[size_t(i)];
      EXPECT_LE(std::abs(want - y4[size_t(j)]), this->tol()) << j;
    }
  }
}

TYPED_TEST(BlasTyped, GemmWideColumnBlocking) {
  using T = TypeParam;
  // Exercise the 4-column unrolled path and its remainder loop.
  for (std::int64_t n : {1, 3, 4, 9, 13}) {
    auto a = random_matrix<T>(8, 8, 4);
    auto b = random_matrix<T>(8, n, 5);
    Matrix<T> c(8, n);
    blas::gemm(Op::NoTrans, Op::NoTrans, T(1), a.view(), b.view(), T(0), c.view());
    auto want = naive_mul(a, b);
    EXPECT_LE(difference_norm<T>(want.view(), c.view()), this->tol()) << n;
  }
}

TYPED_TEST(BlasTyped, TrmmMatchesDenseMultiply) {
  using T = TypeParam;
  const std::int64_t n = 6, m = 4;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Upper, Uplo::Lower}) {
      for (Op op : {Op::NoTrans, Op::ConjTrans}) {
        for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
          Matrix<T> a = random_matrix<T>(n, n, 7);
          make_triangular(a, uplo);
          Matrix<T> b =
              side == Side::Left ? random_matrix<T>(n, m, 8) : random_matrix<T>(m, n, 8);
          Matrix<T> bt(b.rows(), b.cols());
          copy(b.view(), bt.view());
          blas::trmm(side, uplo, op, diag, T(2), a.view(), bt.view());
          auto eff = op_of(op, effective_triangle(a, uplo, diag));
          Matrix<T> want = side == Side::Left ? naive_mul(eff, b) : naive_mul(b, eff);
          blas::scale(T(2), want.view());
          EXPECT_LE(difference_norm<T>(want.view(), bt.view()), 8 * this->tol())
              << "side=" << int(side) << " uplo=" << int(uplo) << " op=" << int(op)
              << " diag=" << int(diag);
        }
      }
    }
  }
}

TYPED_TEST(BlasTyped, TrmmAccAccumulates) {
  using T = TypeParam;
  const std::int64_t n = 5, m = 3;
  for (Uplo uplo : {Uplo::Upper, Uplo::Lower}) {
    for (Op op : {Op::NoTrans, Op::ConjTrans}) {
      for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
        Matrix<T> a = random_matrix<T>(n, n, 9);
        make_triangular(a, uplo);
        auto b = random_matrix<T>(n, m, 10);
        auto c = random_matrix<T>(n, m, 11);
        Matrix<T> want(n, m);
        copy(c.view(), want.view());
        auto eff = op_of(op, effective_triangle(a, uplo, diag));
        auto prod = naive_mul(eff, b);
        blas::add(T(-3), prod.view(), want.view());
        blas::trmm_acc(uplo, op, diag, T(-3), a.view(), b.view(), c.view());
        EXPECT_LE(difference_norm<T>(want.view(), c.view()), 8 * this->tol());
      }
    }
  }
}

TYPED_TEST(BlasTyped, TrsmSolves) {
  using T = TypeParam;
  const std::int64_t n = 6, m = 4;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Upper, Uplo::Lower}) {
      for (Op op : {Op::NoTrans, Op::ConjTrans}) {
        for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
          Matrix<T> a = random_matrix<T>(n, n, 12);
          make_triangular(a, uplo);
          boost_diagonal(a);
          Matrix<T> b =
              side == Side::Left ? random_matrix<T>(n, m, 13) : random_matrix<T>(m, n, 13);
          Matrix<T> x(b.rows(), b.cols());
          copy(b.view(), x.view());
          blas::trsm(side, uplo, op, diag, T(1), a.view(), x.view());
          // Check op(A) X == B (left) or X op(A) == B (right).
          auto eff = op_of(op, effective_triangle(a, uplo, diag));
          Matrix<T> back = side == Side::Left ? naive_mul(eff, x) : naive_mul(x, eff);
          EXPECT_LE(difference_norm<T>(back.view(), b.view()), 32 * this->tol())
              << "side=" << int(side) << " uplo=" << int(uplo) << " op=" << int(op)
              << " diag=" << int(diag);
        }
      }
    }
  }
}

TYPED_TEST(BlasTyped, GemvBothOps) {
  using T = TypeParam;
  auto a = random_matrix<T>(5, 4, 14);
  std::vector<T> x4{T(1), T(2), T(-1), T(0.5)};
  std::vector<T> x5{T(1), T(-2), T(3), T(0), T(1)};
  std::vector<T> y5(5, T(1)), y4(4, T(1));
  blas::gemv(Op::NoTrans, T(1), a.view(), x4.data(), T(2), y5.data());
  for (int i = 0; i < 5; ++i) {
    T want = T(2);
    for (int j = 0; j < 4; ++j) want += a(i, j) * x4[size_t(j)];
    EXPECT_LE(std::abs(want - y5[size_t(i)]), this->tol());
  }
  blas::gemv(Op::ConjTrans, T(1), a.view(), x5.data(), T(0), y4.data());
  for (int j = 0; j < 4; ++j) {
    T want = T(0);
    for (int i = 0; i < 5; ++i) want += conj_if_complex(a(i, j)) * x5[size_t(i)];
    EXPECT_LE(std::abs(want - y4[size_t(j)]), this->tol());
  }
}

TYPED_TEST(BlasTyped, GerRankOneUpdate) {
  using T = TypeParam;
  Matrix<T> a(3, 2);
  std::vector<T> x{T(1), T(2), T(3)};
  std::vector<T> y{T(4), T(5)};
  blas::ger(T(2), x.data(), y.data(), a.view());
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i)
      EXPECT_LE(std::abs(a(i, j) - T(2) * x[size_t(i)] * conj_if_complex(y[size_t(j)])),
                this->tol());
}

TYPED_TEST(BlasTyped, VectorHelpers) {
  using T = TypeParam;
  std::vector<T> x{T(3), T(4)};
  EXPECT_NEAR(double(blas::nrm2(2, x.data())), 5.0, 1e-5);
  std::vector<T> y{T(1), T(1)};
  blas::axpy<T>(2, T(2), x.data(), y.data());
  EXPECT_LE(std::abs(y[0] - T(7)), this->tol());
  blas::scal<T>(2, T(0.5), y.data());
  EXPECT_LE(std::abs(y[0] - T(3.5)), this->tol());
  EXPECT_LE(std::abs(blas::dotc<T>(2, x.data(), x.data()) - T(25)), this->tol());
}

TEST(BlasChecks, GemmShapeMismatchThrows) {
  auto a = random_matrix<double>(3, 4, 1);
  auto b = random_matrix<double>(5, 2, 2);
  Matrix<double> c(3, 2);
  EXPECT_THROW(
      blas::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.view(), b.view(), 0.0, c.view()), Error);
}

TEST(BlasFlops, Counts) {
  EXPECT_DOUBLE_EQ(blas::gemm_flops(10, 10, 10, false), 2000.0);
  EXPECT_DOUBLE_EQ(blas::gemm_flops(10, 10, 10, true), 8000.0);
  EXPECT_NEAR(blas::geqrf_flops(100, 100, false), 2e6 - 2.0 / 3.0 * 1e6, 1);
}

TEST(Nrm2, OverflowSafe) {
  std::vector<double> x{1e200, 1e200};
  EXPECT_NEAR(blas::nrm2(2, x.data()) / 1e200, std::sqrt(2.0), 1e-12);
  std::vector<double> tiny{1e-200, 1e-200};
  EXPECT_NEAR(blas::nrm2(2, tiny.data()) / 1e-200, std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace tiledqr
