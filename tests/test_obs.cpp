// Tests for the observability layer: the per-thread trace collector
// (begin/end pairing, ring overflow accounting, disabled-mode cost contract),
// the Chrome trace_event exporter (validated by a test-side JSON parser),
// the unified metrics registry (sources, retirement, named metrics,
// snapshots), the kernel profiler -> WeightProfile bridge, and the post-run
// schedule report.
//
// The ObsSmoke suite doubles as the CI `obs_smoke` ctest: it traces a real
// pool factorization end to end and writes build/trace_ci.json, which CI
// uploads as a Perfetto-loadable artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/schedule_report.hpp"
#include "obs/trace.hpp"
#include "runtime/executor.hpp"

namespace tiledqr {
namespace {

// ------------------------------------------------------------------------
// A deliberately independent JSON reader: the exporter must produce JSON a
// parser that never saw its writer accepts. Throws std::runtime_error on
// malformed input.
struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    char c = peek();
    Json v;
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = Json::Type::String;
      v.string = string();
      return v;
    }
    if (consume("true")) {
      v.type = Json::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      v.type = Json::Type::Bool;
      return v;
    }
    if (consume("null")) return v;
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) throw std::runtime_error("raw control char");
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u escape");
          int code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          out += code < 0x80 ? char(code) : '?';  // ASCII is all the writer emits
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
  }

  Json number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    std::size_t used = 0;
    std::string token = s_.substr(start, pos_ - start);
    double v = std::stod(token, &used);
    if (used != token.size()) throw std::runtime_error("malformed number: " + token);
    Json j;
    j.type = Json::Type::Number;
    j.number = v;
    return j;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------------
// Trace tests share the process-global tracer; each test starts and ends
// from the disabled, empty state. (CMake marks this binary RUN_SERIAL so a
// concurrently scheduled test's pool cannot record into our tracks.)
struct TracerGuard {
  obs::Tracer& tracer = obs::Tracer::instance();
  TracerGuard() {
    tracer.disable();
    tracer.clear();
  }
  ~TracerGuard() {
    tracer.disable();
    tracer.clear();
  }
};

/// Chrome-trace "X" events of one exported JSON document.
std::vector<Json> slice_events(const Json& doc) {
  std::vector<Json> out;
  for (const Json& e : doc.at("traceEvents").array)
    if (e.at("ph").string == "X") out.push_back(e);
  return out;
}

std::map<int, std::string> thread_names(const Json& doc) {
  std::map<int, std::string> names;
  for (const Json& e : doc.at("traceEvents").array)
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name")
      names[int(e.at("tid").number)] = e.at("args").at("name").string;
  return names;
}

TEST(Trace, DisabledModeRecordsNothing) {
  TracerGuard guard;
  EXPECT_FALSE(guard.tracer.enabled());
  guard.tracer.record(10, 20, 0, 0, -1, -1, -1, 0, 1, 0, false);
  EXPECT_EQ(guard.tracer.event_count(), 0u);
  EXPECT_EQ(guard.tracer.dropped_count(), 0);

  // A full factorization with tracing off leaves no events either — the
  // acceptance contract behind the "< 5% overhead" bench assertion.
  core::QrSession session(core::QrSession::Config{.threads = 2});
  auto a = random_matrix<double>(64, 32, 0xB5);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  (void)session.submit(ConstMatrixView<double>(a.view()), opt).get();
  EXPECT_EQ(guard.tracer.event_count(), 0u);
}

TEST(Trace, RecordsPairedEventsPerThread) {
  TracerGuard guard;
  guard.tracer.enable();

  constexpr int kThreads = 3;
  constexpr int kEvents = 50;
  // Barrier: every thread must bind (and name) its track before any thread
  // exits — a released track is reused by the next binder, and this test
  // needs three distinct tracks.
  std::atomic<int> bound{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([w, &guard, &bound] {
      guard.tracer.set_thread_track_name("pair.w" + std::to_string(w));
      bound.fetch_add(1);
      while (bound.load() < kThreads) std::this_thread::yield();
      for (int e = 0; e < kEvents; ++e) {
        const std::int64_t t0 = obs::now_ns();
        const std::int64_t t1 = obs::now_ns();
        guard.tracer.record(t0, t1, std::uint8_t(e % 6), e, -1, w, e, e,
                            /*submission=*/7, /*component=*/w, (e % 2) != 0);
      }
    });
  }
  for (auto& t : threads) t.join();

  int matched_tracks = 0;
  for (const auto& track : guard.tracer.collect()) {
    if (track.name.rfind("pair.w", 0) != 0) continue;
    ++matched_tracks;
    ASSERT_EQ(track.events.size(), std::size_t(kEvents)) << track.name;
    EXPECT_EQ(track.dropped, 0);
    std::int64_t prev_start = 0;
    for (int e = 0; e < kEvents; ++e) {
      const obs::TraceEvent& ev = track.events[std::size_t(e)];
      EXPECT_GE(ev.end_ns, ev.start_ns);     // begin/end pairing, same thread
      EXPECT_GE(ev.start_ns, prev_start);    // recording order preserved
      prev_start = ev.start_ns;
      EXPECT_EQ(ev.task, e);
      EXPECT_EQ(ev.submission, 7u);
      EXPECT_EQ(ev.kind, std::uint8_t(e % 6));
      EXPECT_EQ((ev.flags & obs::TraceEvent::kFlagStolen) != 0, (e % 2) != 0);
    }
  }
  EXPECT_EQ(matched_tracks, kThreads);
  EXPECT_GE(guard.tracer.event_count(), std::size_t(kThreads * kEvents));
}

TEST(Trace, OverflowDropsAreCountedNotCorrupting) {
  TracerGuard guard;
  guard.tracer.enable();

  // Overflow any ring (default capacity 65536; a reused one can be smaller).
  constexpr long kRecords = 70000;
  std::thread writer([&guard] {
    guard.tracer.set_thread_track_name("overflow.w0");
    for (long e = 0; e < kRecords; ++e)
      guard.tracer.record(e, e + 1, 0, 1, -1, -1, -1, std::int32_t(e),
                          /*submission=*/0xBEEF, 0, false);
  });
  writer.join();

  bool found = false;
  for (const auto& track : guard.tracer.collect()) {
    if (track.name != "overflow.w0") continue;
    found = true;
    // Nothing lost silently: kept + dropped accounts for every record().
    EXPECT_GT(track.dropped, 0);
    EXPECT_EQ(long(track.events.size()) + track.dropped, kRecords);
    // The ring kept the oldest events, uncorrupted, in order.
    for (std::size_t e = 0; e < track.events.size(); ++e) {
      ASSERT_EQ(track.events[e].task, std::int32_t(e));
      ASSERT_EQ(track.events[e].start_ns, std::int64_t(e));
      ASSERT_EQ(track.events[e].submission, 0xBEEFu);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(guard.tracer.dropped_count(), 0);
}

TEST(Trace, ClearResetsEventsAndDrops) {
  TracerGuard guard;
  guard.tracer.enable();
  guard.tracer.record(1, 2, 0, 0, -1, -1, -1, 0, 1, 0, false);
  EXPECT_GE(guard.tracer.event_count(), 1u);
  guard.tracer.disable();
  guard.tracer.clear();
  EXPECT_EQ(guard.tracer.event_count(), 0u);
  EXPECT_EQ(guard.tracer.dropped_count(), 0);
}

TEST(Trace, ExportedJsonIsValidAndComplete) {
  TracerGuard guard;
  guard.tracer.enable();

  std::thread writer([&guard] {
    guard.tracer.set_thread_track_name("export.w0");
    for (int e = 0; e < 10; ++e)
      guard.tracer.record(1000 * e, 1000 * e + 500, std::uint8_t(e % 6), e, e + 1, -1, -1, e,
                          3, 1, false);
  });
  writer.join();

  std::ostringstream out;
  guard.tracer.export_chrome_json(out);
  Json doc = JsonParser(out.str()).parse();

  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  auto names = thread_names(doc);
  bool named = false;
  for (const auto& [tid, name] : names) named = named || name == "export.w0";
  EXPECT_TRUE(named);

  int matched = 0;
  for (const Json& e : slice_events(doc)) {
    // Complete events: non-negative microsecond timestamps and durations,
    // a tid with thread_name metadata, kernel-kind slice names.
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_TRUE(names.count(int(e.at("tid").number))) << "unnamed tid";
    if (names[int(e.at("tid").number)] != "export.w0") continue;
    ++matched;
    EXPECT_EQ(e.at("dur").number, 500.0 / 1000.0);  // 500 ns = 0.5 us
    EXPECT_TRUE(e.at("args").has("i"));
    EXPECT_TRUE(e.at("args").has("sub"));
    static const std::set<std::string> kKernels{"GEQRT", "UNMQR", "TSQRT",
                                               "TSMQR", "TTQRT", "TTMQR"};
    EXPECT_TRUE(kKernels.count(e.at("name").string)) << e.at("name").string;
  }
  EXPECT_EQ(matched, 10);
}

TEST(Trace, SubmissionIdsAreUnique) {
  std::uint32_t a = obs::next_trace_submission_id();
  std::uint32_t b = obs::next_trace_submission_id();
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------------------

TEST(Metrics, NamedCountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("requests").add(3);
  reg.counter("requests").add(2);
  reg.gauge("depth").set(7);
  reg.histogram("latency").record_ns(1000);
  reg.histogram("latency").record_ns(3000);

  auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("requests"), 5.0);
  EXPECT_EQ(snap.value("depth"), 7.0);
  EXPECT_EQ(snap.value("latency.count"), 2.0);
  EXPECT_NEAR(snap.value("latency.mean_us"), 2.0, 1e-9);
  EXPECT_TRUE(std::isnan(snap.value("no.such.metric")));
}

TEST(Metrics, HistogramQuantilesAreBucketBoundsClampedToMax) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
  for (int i = 0; i < 100; ++i) h.record_ns(1000);  // bucket [512, 1024)
  h.record_ns(1 << 20);
  EXPECT_EQ(h.count(), 101);
  EXPECT_EQ(h.max_ns(), 1 << 20);
  double p50 = h.quantile_ns(0.5);
  EXPECT_GE(p50, 1000.0);   // within its power-of-two bucket...
  EXPECT_LE(p50, 2048.0);   // ...never past the bucket's upper bound
  EXPECT_EQ(h.quantile_ns(1.0), double(1 << 20));  // clamped to observed max
}

TEST(Metrics, SourcesPrefixAndRetire) {
  obs::MetricsRegistry reg;
  {
    auto handle = reg.register_source("pool0", [](std::vector<obs::Sample>& out) {
      out.push_back({"tasks", 42.0});
    });
    EXPECT_EQ(reg.snapshot().value("pool0.tasks"), 42.0);
  }
  // A dead source's final samples are frozen, so end-of-run dumps still show
  // closed components.
  EXPECT_EQ(reg.snapshot().value("pool0.tasks"), 42.0);
  reg.clear_retired();
  EXPECT_TRUE(std::isnan(reg.snapshot().value("pool0.tasks")));
}

TEST(Metrics, UniqueLabelsPerPrefix) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.unique_label("pool"), "pool0");
  EXPECT_EQ(reg.unique_label("pool"), "pool1");
  EXPECT_EQ(reg.unique_label("stream"), "stream0");
}

TEST(Metrics, JsonDumpParses) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(1);
  reg.histogram("h").record_ns(500);
  Json doc = JsonParser(reg.snapshot().to_json()).parse();
  EXPECT_EQ(doc.at("a.count").number, 1.0);
  EXPECT_EQ(doc.at("h.count").number, 1.0);
  EXPECT_FALSE(reg.snapshot().to_text().empty());
}

TEST(Metrics, RuntimeComponentsExportThroughGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  core::QrSession session(core::QrSession::Config{.threads = 2});
  core::QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.label = "unit";
  auto stream = session.stream<double>(sopt);

  constexpr int kPushes = 3;
  std::vector<std::future<core::TiledQr<double>>> futures;
  for (int r = 0; r < kPushes; ++r) {
    auto a = random_matrix<double>(48, 32, 0xC0 + unsigned(r));
    futures.push_back(stream.push(ConstMatrixView<double>(a.view())));
  }
  for (auto& f : futures) (void)f.get();
  // get() returns at promise fulfilment, which precedes the latency record;
  // drain() returns only after every admitted request fully resolved.
  stream.drain();

  // Live: the stream's source is registered under its label.
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("stream.unit.pushed"), double(kPushes));
  EXPECT_EQ(snap.value("stream.unit.latency.count"), double(kPushes));
  EXPECT_GT(snap.value("stream.unit.latency.mean_us"), 0.0);

  // The session pool registered as "pool<N>"; find it via the prefix API.
  bool pool_found = false;
  for (const auto& s : snap.samples)
    pool_found = pool_found || (s.name.rfind("pool", 0) == 0 &&
                                s.name.find(".tasks_executed") != std::string::npos);
  EXPECT_TRUE(pool_found);

  // Closed: the stream's totals survive as retired samples.
  stream.close();
  EXPECT_EQ(reg.snapshot().value("stream.unit.pushed"), double(kPushes));
}

// ------------------------------------------------------------------------

TEST(KernelProfiler, EmptyProfilerReturnsFallbackUnchanged) {
  obs::KernelProfiler prof;
  auto fallback = perf::sc11_profile();
  auto live = prof.live_profile(fallback);
  EXPECT_EQ(live.id, fallback.id);
  EXPECT_EQ(live.weight, fallback.weight);
}

TEST(KernelProfiler, LiveProfileUsesObservedMeansAndScalesTheRest) {
  obs::KernelProfiler prof;
  auto fallback = perf::sc11_profile();
  // Observe only GEQRT, at exactly 3x its fallback weight (in seconds).
  const double observed_seconds = 3.0 * fallback.weight[0];
  for (int s = 0; s < 8; ++s)
    prof.record(0, std::int64_t(observed_seconds * 1e9));
  auto live = prof.live_profile(fallback);
  EXPECT_EQ(live.id, "live");
  EXPECT_NEAR(live.weight[0], observed_seconds, observed_seconds * 1e-6);
  // Unobserved kinds keep the fallback's relative shape, rescaled by the
  // observed/fallback ratio (3x) so they stay comparable.
  for (std::size_t k = 1; k < live.weight.size(); ++k)
    EXPECT_NEAR(live.weight[k], 3.0 * fallback.weight[k], 3.0 * fallback.weight[k] * 1e-6)
        << "kind " << k;
  EXPECT_EQ(prof.samples(0), 8);
  EXPECT_EQ(prof.total_samples(), 8);
  prof.reset();
  EXPECT_EQ(prof.total_samples(), 0);
}

// ------------------------------------------------------------------------
// ObsSmoke: the CI smoke (also part of the plain test run). Traces a real
// pool factorization, validates the export with the test-side parser, and
// leaves trace_ci.json in the working directory (the build dir under ctest)
// for the workflow artifact.

TEST(ObsSmoke, TracedFactorizationExportsLoadableChromeTrace) {
  TracerGuard guard;
  guard.tracer.enable();

  constexpr int kWorkers = 2;
  core::QrSession session(core::QrSession::Config{.threads = kWorkers});
  auto a = random_matrix<double>(128, 64, 0x51);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  (void)session.submit(ConstMatrixView<double>(a.view()), opt).get();
  guard.tracer.disable();

  const std::size_t recorded = guard.tracer.event_count();
  EXPECT_GT(recorded, 0u);

  guard.tracer.export_chrome_json("trace_ci.json");
  std::ifstream in("trace_ci.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Json doc = JsonParser(buf.str()).parse();

  // One track per pool worker, named by the instrumentation.
  auto names = thread_names(doc);
  int pool_tracks = 0;
  for (const auto& [tid, name] : names)
    if (name.rfind("pool", 0) == 0 && name.find(".w") != std::string::npos) ++pool_tracks;
  EXPECT_GE(pool_tracks, kWorkers);

  // Every recorded task appears as a named kernel slice on a named track.
  auto slices = slice_events(doc);
  EXPECT_EQ(slices.size(), recorded);
  static const std::set<std::string> kKernels{"GEQRT", "UNMQR", "TSQRT",
                                             "TSMQR", "TTQRT", "TTMQR"};
  std::set<std::string> seen;
  for (const Json& e : slices) {
    ASSERT_TRUE(names.count(int(e.at("tid").number)));
    ASSERT_TRUE(kKernels.count(e.at("name").string)) << e.at("name").string;
    seen.insert(e.at("name").string);
    EXPECT_GE(e.at("dur").number, 0.0);
  }
  // An 8x4 tile grid exercises the panel kernel and its updates at minimum.
  EXPECT_GE(seen.size(), 2u);

  // The schedule report built from the same trace is coherent with it.
  auto report = obs::build_schedule_report(guard.tracer);
  EXPECT_EQ(report.tasks, long(recorded));
  EXPECT_GT(report.span_ns, 0);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0 + 1e-9);
  EXPECT_FALSE(obs::format_schedule_report(report).empty());
}

TEST(ObsSmoke, LiveKernelProfileFeedsScheduleReportModel) {
  TracerGuard guard;
  guard.tracer.enable();

  core::QrSession session(core::QrSession::Config{.threads = 2});
  auto a = random_matrix<double>(96, 48, 0x52);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 1};
  auto qr = session.submit(ConstMatrixView<double>(a.view()), opt).get();
  guard.tracer.disable();

  // The run fed the global kernel profiler, so live_profile() is measured.
  EXPECT_GT(obs::KernelProfiler::global().total_samples(), 0);
  auto live = obs::KernelProfiler::global().live_profile();
  EXPECT_EQ(live.id, "live");
  for (double w : live.weight) EXPECT_GT(w, 0.0);

  // Model comparison: achieved span vs bounded-sim makespan under the live
  // weights, for the plan this run actually executed.
  auto plan = session.plan_cache().get(6, 3, *opt.tree);
  (void)qr;
  auto report = obs::build_schedule_report(guard.tracer, plan->graph, 2);
  EXPECT_GT(report.model_seconds, 0.0);
  EXPECT_GT(report.model_ratio, 0.0);
}

}  // namespace
}  // namespace tiledqr
