// Tests for the observability layer: the per-thread trace collector
// (begin/end pairing, ring overflow accounting, disabled-mode cost contract),
// the Chrome trace_event exporter (validated by a test-side JSON parser),
// the unified metrics registry (sources, retirement, named metrics,
// snapshots), the kernel profiler -> WeightProfile bridge, and the post-run
// schedule report.
//
// The ObsSmoke suite doubles as the CI `obs_smoke` ctest: it traces a real
// pool factorization end to end and writes build/trace_ci.json, which CI
// uploads as a Perfetto-loadable artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/qr_session.hpp"
#include "dag/task_graph.hpp"
#include "matrix/generate.hpp"
#include "obs/critical_path.hpp"
#include "obs/health.hpp"
#include "obs/kernel_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/schedule_report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_import.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"

namespace tiledqr {
namespace {

// ------------------------------------------------------------------------
// A deliberately independent JSON reader: the exporter must produce JSON a
// parser that never saw its writer accepts. Throws std::runtime_error on
// malformed input.
struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    char c = peek();
    Json v;
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = Json::Type::String;
      v.string = string();
      return v;
    }
    if (consume("true")) {
      v.type = Json::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      v.type = Json::Type::Bool;
      return v;
    }
    if (consume("null")) return v;
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) throw std::runtime_error("raw control char");
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u escape");
          int code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          out += code < 0x80 ? char(code) : '?';  // ASCII is all the writer emits
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
  }

  Json number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    std::size_t used = 0;
    std::string token = s_.substr(start, pos_ - start);
    double v = std::stod(token, &used);
    if (used != token.size()) throw std::runtime_error("malformed number: " + token);
    Json j;
    j.type = Json::Type::Number;
    j.number = v;
    return j;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------------
// Trace tests share the process-global tracer; each test starts and ends
// from the disabled, empty state. (CMake marks this binary RUN_SERIAL so a
// concurrently scheduled test's pool cannot record into our tracks.)
struct TracerGuard {
  obs::Tracer& tracer = obs::Tracer::instance();
  TracerGuard() {
    tracer.disable();
    tracer.clear();
  }
  ~TracerGuard() {
    tracer.disable();
    tracer.clear();
  }
};

/// Chrome-trace "X" events of one exported JSON document.
std::vector<Json> slice_events(const Json& doc) {
  std::vector<Json> out;
  for (const Json& e : doc.at("traceEvents").array)
    if (e.at("ph").string == "X") out.push_back(e);
  return out;
}

std::map<int, std::string> thread_names(const Json& doc) {
  std::map<int, std::string> names;
  for (const Json& e : doc.at("traceEvents").array)
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name")
      names[int(e.at("tid").number)] = e.at("args").at("name").string;
  return names;
}

TEST(Trace, DisabledModeRecordsNothing) {
  TracerGuard guard;
  EXPECT_FALSE(guard.tracer.enabled());
  guard.tracer.record(10, 20, 0, 0, -1, -1, -1, 0, 1, 0, false);
  EXPECT_EQ(guard.tracer.event_count(), 0u);
  EXPECT_EQ(guard.tracer.dropped_count(), 0);

  // A full factorization with tracing off leaves no events either — the
  // acceptance contract behind the "< 5% overhead" bench assertion.
  core::QrSession session(core::QrSession::Config{.threads = 2});
  auto a = random_matrix<double>(64, 32, 0xB5);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  (void)session.submit(ConstMatrixView<double>(a.view()), opt).get();
  EXPECT_EQ(guard.tracer.event_count(), 0u);
}

TEST(Trace, RecordsPairedEventsPerThread) {
  TracerGuard guard;
  guard.tracer.enable();

  constexpr int kThreads = 3;
  constexpr int kEvents = 50;
  // Barrier: every thread must bind (and name) its track before any thread
  // exits — a released track is reused by the next binder, and this test
  // needs three distinct tracks.
  std::atomic<int> bound{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([w, &guard, &bound] {
      guard.tracer.set_thread_track_name("pair.w" + std::to_string(w));
      bound.fetch_add(1);
      while (bound.load() < kThreads) std::this_thread::yield();
      for (int e = 0; e < kEvents; ++e) {
        const std::int64_t t0 = obs::now_ns();
        const std::int64_t t1 = obs::now_ns();
        guard.tracer.record(t0, t1, std::uint8_t(e % 6), e, -1, w, e, e,
                            /*submission=*/7, /*component=*/w, (e % 2) != 0);
      }
    });
  }
  for (auto& t : threads) t.join();

  int matched_tracks = 0;
  for (const auto& track : guard.tracer.collect()) {
    if (track.name.rfind("pair.w", 0) != 0) continue;
    ++matched_tracks;
    ASSERT_EQ(track.events.size(), std::size_t(kEvents)) << track.name;
    EXPECT_EQ(track.dropped, 0);
    std::int64_t prev_start = 0;
    for (int e = 0; e < kEvents; ++e) {
      const obs::TraceEvent& ev = track.events[std::size_t(e)];
      EXPECT_GE(ev.end_ns, ev.start_ns);     // begin/end pairing, same thread
      EXPECT_GE(ev.start_ns, prev_start);    // recording order preserved
      prev_start = ev.start_ns;
      EXPECT_EQ(ev.task, e);
      EXPECT_EQ(ev.submission, 7u);
      EXPECT_EQ(ev.kind, std::uint8_t(e % 6));
      EXPECT_EQ((ev.flags & obs::TraceEvent::kFlagStolen) != 0, (e % 2) != 0);
    }
  }
  EXPECT_EQ(matched_tracks, kThreads);
  EXPECT_GE(guard.tracer.event_count(), std::size_t(kThreads * kEvents));
}

TEST(Trace, OverflowDropsAreCountedNotCorrupting) {
  TracerGuard guard;
  guard.tracer.enable();

  // Overflow any ring (default capacity 65536; a reused one can be smaller).
  constexpr long kRecords = 70000;
  std::thread writer([&guard] {
    guard.tracer.set_thread_track_name("overflow.w0");
    for (long e = 0; e < kRecords; ++e)
      guard.tracer.record(e, e + 1, 0, 1, -1, -1, -1, std::int32_t(e),
                          /*submission=*/0xBEEF, 0, false);
  });
  writer.join();

  bool found = false;
  for (const auto& track : guard.tracer.collect()) {
    if (track.name != "overflow.w0") continue;
    found = true;
    // Nothing lost silently: kept + dropped accounts for every record().
    EXPECT_GT(track.dropped, 0);
    EXPECT_EQ(long(track.events.size()) + track.dropped, kRecords);
    // The ring kept the oldest events, uncorrupted, in order.
    for (std::size_t e = 0; e < track.events.size(); ++e) {
      ASSERT_EQ(track.events[e].task, std::int32_t(e));
      ASSERT_EQ(track.events[e].start_ns, std::int64_t(e));
      ASSERT_EQ(track.events[e].submission, 0xBEEFu);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(guard.tracer.dropped_count(), 0);
}

TEST(Trace, ClearResetsEventsAndDrops) {
  TracerGuard guard;
  guard.tracer.enable();
  guard.tracer.record(1, 2, 0, 0, -1, -1, -1, 0, 1, 0, false);
  EXPECT_GE(guard.tracer.event_count(), 1u);
  guard.tracer.disable();
  guard.tracer.clear();
  EXPECT_EQ(guard.tracer.event_count(), 0u);
  EXPECT_EQ(guard.tracer.dropped_count(), 0);
}

TEST(Trace, ExportedJsonIsValidAndComplete) {
  TracerGuard guard;
  guard.tracer.enable();

  std::thread writer([&guard] {
    guard.tracer.set_thread_track_name("export.w0");
    for (int e = 0; e < 10; ++e)
      guard.tracer.record(1000 * e, 1000 * e + 500, std::uint8_t(e % 6), e, e + 1, -1, -1, e,
                          3, 1, false);
  });
  writer.join();

  std::ostringstream out;
  guard.tracer.export_chrome_json(out);
  Json doc = JsonParser(out.str()).parse();

  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  auto names = thread_names(doc);
  bool named = false;
  for (const auto& [tid, name] : names) named = named || name == "export.w0";
  EXPECT_TRUE(named);

  int matched = 0;
  for (const Json& e : slice_events(doc)) {
    // Complete events: non-negative microsecond timestamps and durations,
    // a tid with thread_name metadata, kernel-kind slice names.
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_TRUE(names.count(int(e.at("tid").number))) << "unnamed tid";
    if (names[int(e.at("tid").number)] != "export.w0") continue;
    ++matched;
    EXPECT_EQ(e.at("dur").number, 500.0 / 1000.0);  // 500 ns = 0.5 us
    EXPECT_TRUE(e.at("args").has("i"));
    EXPECT_TRUE(e.at("args").has("sub"));
    static const std::set<std::string> kKernels{"GEQRT", "UNMQR", "TSQRT",
                                               "TSMQR", "TTQRT", "TTMQR"};
    EXPECT_TRUE(kKernels.count(e.at("name").string)) << e.at("name").string;
  }
  EXPECT_EQ(matched, 10);
}

TEST(Trace, SubmissionIdsAreUnique) {
  std::uint32_t a = obs::next_trace_submission_id();
  std::uint32_t b = obs::next_trace_submission_id();
  EXPECT_NE(a, b);
}

TEST(Trace, TrackReuseClearsDeadThreadsEvents) {
  TracerGuard guard;
  guard.tracer.enable();

  // First lessee records and dies; its track returns to the free list.
  std::thread first([&guard] {
    guard.tracer.set_thread_track_name("reuse.old");
    for (int e = 0; e < 5; ++e)
      guard.tracer.record(100 * e, 100 * e + 50, 0, e, -1, 0, -1, e,
                          /*submission=*/11, /*component=*/1, false);
  });
  first.join();

  // The free list is LIFO, so the next binder leases that exact track. The
  // dead thread's name and events must be gone: a mid-process report built
  // now must not mix the stale run into the live one.
  std::thread second([&guard] {
    guard.tracer.set_thread_track_name("reuse.new");
    for (int e = 0; e < 2; ++e)
      guard.tracer.record(1000 + 10 * e, 1005 + 10 * e, 0, e, -1, 0, -1, e,
                          /*submission=*/12, /*component=*/1, false);
  });
  second.join();

  bool saw_old = false;
  bool saw_new = false;
  for (const auto& track : guard.tracer.collect()) {
    if (track.name == "reuse.old") saw_old = true;
    if (track.name != "reuse.new") continue;
    saw_new = true;
    ASSERT_EQ(track.events.size(), 2u);
    EXPECT_EQ(track.dropped, 0);
    for (const auto& e : track.events) EXPECT_EQ(e.submission, 12u);
  }
  EXPECT_FALSE(saw_old);
  EXPECT_TRUE(saw_new);
}

TEST(Trace, ExportNowInsertsUniqueSuffix) {
  TracerGuard guard;
  guard.tracer.enable();
  std::thread writer([&guard] {
    guard.tracer.set_thread_track_name("exportnow.w0");
    guard.tracer.record(100, 200, 0, 0, -1, 0, -1, 0, 1, 1, false);
  });
  writer.join();

  std::remove("export_now_ci.json");
  std::remove("export_now_ci-1.json");
  const std::string p1 = guard.tracer.export_now("export_now_ci.json");
  const std::string p2 = guard.tracer.export_now("export_now_ci.json");
  EXPECT_EQ(p1, "export_now_ci.json");
  EXPECT_EQ(p2, "export_now_ci-1.json");  // append-safe: never overwrites

  // Both files exist and hold valid Chrome JSON.
  for (const std::string& path : {p1, p2}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    Json doc = JsonParser(buf.str()).parse();
    EXPECT_EQ(slice_events(doc).size(), 1u) << path;
  }
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ------------------------------------------------------------------------

TEST(Metrics, NamedCountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("requests").add(3);
  reg.counter("requests").add(2);
  reg.gauge("depth").set(7);
  reg.histogram("latency").record_ns(1000);
  reg.histogram("latency").record_ns(3000);

  auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("requests"), 5.0);
  EXPECT_EQ(snap.value("depth"), 7.0);
  EXPECT_EQ(snap.value("latency.count"), 2.0);
  EXPECT_NEAR(snap.value("latency.mean_us"), 2.0, 1e-9);
  EXPECT_TRUE(std::isnan(snap.value("no.such.metric")));
}

TEST(Metrics, HistogramQuantilesAreBucketBoundsClampedToMax) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
  for (int i = 0; i < 100; ++i) h.record_ns(1000);  // bucket [512, 1024)
  h.record_ns(1 << 20);
  EXPECT_EQ(h.count(), 101);
  EXPECT_EQ(h.max_ns(), 1 << 20);
  double p50 = h.quantile_ns(0.5);
  EXPECT_GE(p50, 1000.0);   // within its power-of-two bucket...
  EXPECT_LE(p50, 2048.0);   // ...never past the bucket's upper bound
  EXPECT_EQ(h.quantile_ns(1.0), double(1 << 20));  // clamped to observed max
}

TEST(Metrics, SourcesPrefixAndRetire) {
  obs::MetricsRegistry reg;
  {
    auto handle = reg.register_source("pool0", [](std::vector<obs::Sample>& out) {
      out.push_back({"tasks", 42.0});
    });
    EXPECT_EQ(reg.snapshot().value("pool0.tasks"), 42.0);
  }
  // A dead source's final samples are frozen, so end-of-run dumps still show
  // closed components.
  EXPECT_EQ(reg.snapshot().value("pool0.tasks"), 42.0);
  reg.clear_retired();
  EXPECT_TRUE(std::isnan(reg.snapshot().value("pool0.tasks")));
}

TEST(Metrics, UniqueLabelsPerPrefix) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.unique_label("pool"), "pool0");
  EXPECT_EQ(reg.unique_label("pool"), "pool1");
  EXPECT_EQ(reg.unique_label("stream"), "stream0");
}

TEST(Metrics, JsonDumpParses) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(1);
  reg.histogram("h").record_ns(500);
  Json doc = JsonParser(reg.snapshot().to_json()).parse();
  EXPECT_EQ(doc.at("a.count").number, 1.0);
  EXPECT_EQ(doc.at("h.count").number, 1.0);
  EXPECT_FALSE(reg.snapshot().to_text().empty());
}

TEST(Metrics, DumpNowInsertsUniqueSuffix) {
  obs::MetricsRegistry reg;
  reg.counter("dumped.count").add(1);
  std::remove("dump_now_ci.txt");
  std::remove("dump_now_ci-1.txt");
  const std::string p1 = reg.dump_now("dump_now_ci.txt");
  const std::string p2 = reg.dump_now("dump_now_ci.txt");
  EXPECT_EQ(p1, "dump_now_ci.txt");
  EXPECT_EQ(p2, "dump_now_ci-1.txt");  // append-safe, like Tracer::export_now
  std::ifstream in(p2);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("dumped.count"), std::string::npos);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Metrics, RuntimeComponentsExportThroughGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  core::QrSession session(core::QrSession::Config{.threads = 2});
  core::QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.label = "unit";
  auto stream = session.stream<double>(sopt);

  constexpr int kPushes = 3;
  std::vector<std::future<core::TiledQr<double>>> futures;
  for (int r = 0; r < kPushes; ++r) {
    auto a = random_matrix<double>(48, 32, 0xC0 + unsigned(r));
    futures.push_back(stream.push(ConstMatrixView<double>(a.view())));
  }
  for (auto& f : futures) (void)f.get();
  // get() returns at promise fulfilment, which precedes the latency record;
  // drain() returns only after every admitted request fully resolved.
  stream.drain();

  // Live: the stream's source is registered under its label.
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("stream.unit.pushed"), double(kPushes));
  EXPECT_EQ(snap.value("stream.unit.latency.count"), double(kPushes));
  EXPECT_GT(snap.value("stream.unit.latency.mean_us"), 0.0);

  // The session pool registered as "pool<N>"; find it via the prefix API.
  bool pool_found = false;
  for (const auto& s : snap.samples)
    pool_found = pool_found || (s.name.rfind("pool", 0) == 0 &&
                                s.name.find(".tasks_executed") != std::string::npos);
  EXPECT_TRUE(pool_found);

  // Closed: the stream's totals survive as retired samples.
  stream.close();
  EXPECT_EQ(reg.snapshot().value("stream.unit.pushed"), double(kPushes));
}

// ------------------------------------------------------------------------

TEST(KernelProfiler, EmptyProfilerReturnsFallbackUnchanged) {
  obs::KernelProfiler prof;
  auto fallback = perf::sc11_profile();
  auto live = prof.live_profile(fallback);
  EXPECT_EQ(live.id, fallback.id);
  EXPECT_EQ(live.weight, fallback.weight);
}

TEST(KernelProfiler, LiveProfileUsesObservedMeansAndScalesTheRest) {
  obs::KernelProfiler prof;
  auto fallback = perf::sc11_profile();
  // Observe only GEQRT, at exactly 3x its fallback weight (in seconds).
  const double observed_seconds = 3.0 * fallback.weight[0];
  for (int s = 0; s < 8; ++s)
    prof.record(0, std::int64_t(observed_seconds * 1e9));
  auto live = prof.live_profile(fallback);
  EXPECT_EQ(live.id, "live");
  EXPECT_NEAR(live.weight[0], observed_seconds, observed_seconds * 1e-6);
  // Unobserved kinds keep the fallback's relative shape, rescaled by the
  // observed/fallback ratio (3x) so they stay comparable.
  for (std::size_t k = 1; k < live.weight.size(); ++k)
    EXPECT_NEAR(live.weight[k], 3.0 * fallback.weight[k], 3.0 * fallback.weight[k] * 1e-6)
        << "kind " << k;
  EXPECT_EQ(prof.samples(0), 8);
  EXPECT_EQ(prof.total_samples(), 8);
  prof.reset();
  EXPECT_EQ(prof.total_samples(), 0);
}

// ------------------------------------------------------------------------
// CriticalPath: realized-path reconstruction over synthetic traces with
// known-exact decompositions, the tracer's mark window, and the offline
// Chrome-JSON import round trip.

obs::TraceEvent task_event(std::int64_t start, std::int64_t end, std::uint8_t kind,
                           std::int32_t task, bool stolen = false) {
  obs::TraceEvent e;
  e.start_ns = start;
  e.end_ns = end;
  e.task = task;
  e.submission = 1;
  e.component = 1;
  e.i = task;
  e.k = 0;
  e.kind = kind;
  e.flags = stolen ? obs::TraceEvent::kFlagStolen : std::uint8_t(0);
  return e;
}

/// A hand-built 3-task chain 0 -> 1 -> 2 (GEQRT, then two TSQRTs).
dag::TaskGraph chain_graph() {
  dag::TaskGraph g;
  g.p = 3;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {1}});
  g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, 1, 0, 0, -1, 1, {2}});
  g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, 2, 0, 0, -1, 1, {}});
  return g;
}

TEST(CriticalPath, SyntheticChainDecomposesExactly) {
  // task 0 on w0 [1000, 1100]; task 1 stolen onto w1 after a 50 ns
  // cross-worker gap [1150, 1250]; task 2 on w1 after a 10 ns dispatch gap
  // [1260, 1400]. Every breakdown total is known exactly.
  std::vector<obs::TrackSnapshot> tracks(2);
  tracks[0].name = "syn.w0";
  tracks[0].tid = 0;
  tracks[0].events.push_back(task_event(1000, 1100, 0, 0));
  tracks[1].name = "syn.w1";
  tracks[1].tid = 1;
  tracks[1].events.push_back(task_event(1150, 1250, 2, 1, /*stolen=*/true));
  tracks[1].events.push_back(task_event(1260, 1400, 2, 2));

  obs::BreakdownOptions opt;
  opt.with_model = false;
  const auto b = obs::build_critical_path_breakdown(tracks, chain_graph(), opt);
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(b.submission, 1u);
  EXPECT_EQ(b.component, 1);
  EXPECT_EQ(b.events_matched, 3);
  EXPECT_EQ(b.dropped, 0);
  EXPECT_EQ(b.path_tasks, 3);
  EXPECT_EQ(b.realized_ns, 400);
  EXPECT_EQ(b.work_ns, 340);
  EXPECT_EQ(b.gap_ns, 60);
  EXPECT_EQ(b.cross_gap_ns, 50);
  EXPECT_EQ(b.dispatch_gap_ns, 10);
  EXPECT_EQ(b.stolen_edges, 1);
  // The headline identity: work + gap == realized, exactly.
  EXPECT_EQ(b.work_ns + b.gap_ns, b.realized_ns);
  EXPECT_EQ(b.dispatch_gap_ns + b.cross_gap_ns, b.gap_ns);

  // Per-kind attribution.
  EXPECT_EQ(b.work_by_kind[0], 100);  // GEQRT
  EXPECT_EQ(b.work_by_kind[2], 240);  // TSQRT x2
  EXPECT_EQ(b.tasks_by_kind[0], 1);
  EXPECT_EQ(b.tasks_by_kind[2], 2);

  // Widest gap first: the stolen cross-worker handoff 0 -> 1.
  ASSERT_EQ(b.top_gaps.size(), 2u);
  EXPECT_EQ(b.top_gaps[0].pred, 0);
  EXPECT_EQ(b.top_gaps[0].succ, 1);
  EXPECT_EQ(b.top_gaps[0].gap_ns, 50);
  EXPECT_TRUE(b.top_gaps[0].cross_worker);
  EXPECT_TRUE(b.top_gaps[0].stolen);
  EXPECT_EQ(b.top_gaps[0].pred_track, "syn.w0");
  EXPECT_EQ(b.top_gaps[0].succ_track, "syn.w1");
  EXPECT_EQ(b.top_gaps[1].gap_ns, 10);
  EXPECT_FALSE(b.top_gaps[1].cross_worker);

  // Per-worker attribution sums back to the totals; incoming-edge gaps are
  // charged to the successor's track (both gaps precede w1 tasks).
  ASSERT_EQ(b.workers.size(), 2u);
  long worker_tasks = 0;
  std::int64_t worker_work = 0, worker_gap = 0;
  for (const auto& w : b.workers) {
    worker_tasks += w.tasks;
    worker_work += w.work_ns;
    worker_gap += w.gap_ns;
    if (w.track == "syn.w1") {
      EXPECT_EQ(w.tasks, 2);
      EXPECT_EQ(w.work_ns, 240);
      EXPECT_EQ(w.gap_ns, 60);
    }
  }
  EXPECT_EQ(worker_tasks, b.path_tasks);
  EXPECT_EQ(worker_work, b.work_ns);
  EXPECT_EQ(worker_gap, b.gap_ns);

  // log2 histogram: 50 ns -> bucket 5 [32, 64), 10 ns -> bucket 3 [8, 16).
  EXPECT_EQ(b.gap_hist[5], 1);
  EXPECT_EQ(b.gap_hist[3], 1);

  EXPECT_LT(b.model_cp_seconds, 0.0);  // with_model = false
  EXPECT_FALSE(obs::format_critical_path_breakdown(b).empty());
}

TEST(CriticalPath, GatingPredecessorIsTheLatestFinisher) {
  // Diamond 0 -> {1, 2} -> 3 where task 1 finishes after task 2: the walk
  // from task 3 must follow the dependency that actually gated its start.
  dag::TaskGraph g;
  g.p = 4;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {1, 2}});
  g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, 1, 0, 0, -1, 1, {3}});
  g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, 2, 0, 0, -1, 1, {3}});
  g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, 3, 0, 0, -1, 2, {}});

  std::vector<obs::TrackSnapshot> tracks(1);
  tracks[0].name = "dia.w0";
  tracks[0].events.push_back(task_event(1000, 1010, 0, 0));
  tracks[0].events.push_back(task_event(1020, 1050, 2, 1));  // the late pred
  tracks[0].events.push_back(task_event(1015, 1030, 2, 2));
  tracks[0].events.push_back(task_event(1055, 1070, 2, 3));

  obs::BreakdownOptions opt;
  opt.with_model = false;
  const auto b = obs::build_critical_path_breakdown(tracks, g, opt);
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(b.events_matched, 4);
  EXPECT_EQ(b.path_tasks, 3);  // 0, 1, 3 — not through task 2
  EXPECT_EQ(b.realized_ns, 70);
  EXPECT_EQ(b.work_ns, 55);  // 10 + 30 + 15
  EXPECT_EQ(b.gap_ns, 15);   // 10 (0 -> 1) + 5 (1 -> 3)
  EXPECT_EQ(b.dispatch_gap_ns, 15);
  EXPECT_EQ(b.cross_gap_ns, 0);
  ASSERT_FALSE(b.top_gaps.empty());
  EXPECT_EQ(b.top_gaps[0].pred, 0);
  EXPECT_EQ(b.top_gaps[0].succ, 1);
}

TEST(CriticalPath, TracerMarkScopesBreakdown) {
  TracerGuard guard;
  guard.tracer.enable();
  guard.tracer.set_thread_track_name("mark.w0");

  // Batch A: a chain run safely in the past (steady clock, so well below
  // any mark taken now). realized would be 900 ns.
  const std::int64_t past = obs::now_ns() - 1'000'000;
  guard.tracer.record(past + 0, past + 100, 0, 0, -1, 0, -1, 0, 1, 1, false);
  guard.tracer.record(past + 200, past + 500, 2, 1, 0, 0, -1, 1, 1, 1, false);
  guard.tracer.record(past + 600, past + 900, 2, 2, 0, 0, -1, 2, 1, 1, false);

  // Batch B after the mark: the same tasks re-run, realized 400 ns.
  const std::int64_t m = guard.tracer.mark();
  guard.tracer.record(m + 1000, m + 1100, 0, 0, -1, 0, -1, 0, 1, 1, false);
  guard.tracer.record(m + 1150, m + 1250, 2, 1, 0, 0, -1, 1, 1, 1, false);
  guard.tracer.record(m + 1260, m + 1400, 2, 2, 0, 0, -1, 2, 1, 1, false);

  // All six events are still in the ring for the exporter...
  EXPECT_EQ(guard.tracer.event_count(), 6u);
  // ...but mark-aware analyses see only batch B.
  obs::BreakdownOptions opt;
  opt.with_model = false;
  const auto b = obs::build_critical_path_breakdown(guard.tracer, chain_graph(), opt);
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(b.events_matched, 3);
  EXPECT_EQ(b.realized_ns, 400);
  const auto report = obs::build_schedule_report(guard.tracer);
  EXPECT_EQ(report.tasks, 3);
}

TEST(CriticalPath, ImportRoundTripMatchesDirectAnalysis) {
  TracerGuard guard;
  guard.tracer.enable();

  // Record the synthetic chain on two real threads (distinct tracks; the
  // barrier keeps the first lease from being reused by the second thread).
  std::atomic<int> bound{0};
  std::thread w0([&guard, &bound] {
    guard.tracer.set_thread_track_name("rt.w0");
    bound.fetch_add(1);
    while (bound.load() < 2) std::this_thread::yield();
    guard.tracer.record(1000, 1100, 0, 0, -1, 0, -1, 0, 1, 1, false);
  });
  std::thread w1([&guard, &bound] {
    guard.tracer.set_thread_track_name("rt.w1");
    bound.fetch_add(1);
    while (bound.load() < 2) std::this_thread::yield();
    guard.tracer.record(1150, 1250, 2, 1, 0, 0, -1, 1, 1, 1, true);
    guard.tracer.record(1260, 1400, 2, 2, 0, 0, -1, 2, 1, 1, false);
  });
  w0.join();
  w1.join();

  obs::BreakdownOptions opt;
  opt.with_model = false;
  const auto graph = chain_graph();
  const auto direct = obs::build_critical_path_breakdown(guard.tracer.collect(), graph, opt);
  ASSERT_TRUE(direct.valid);

  // Export to Chrome JSON, re-import, re-analyze: the offline analyzer must
  // reproduce the in-process breakdown exactly (timestamps are integral
  // nanoseconds, which survive the microsecond-format round trip).
  std::ostringstream out;
  guard.tracer.export_chrome_json(out);
  std::istringstream in(out.str());
  const auto imported = obs::import_chrome_json(in);
  const auto offline = obs::build_critical_path_breakdown(imported, graph, opt);
  ASSERT_TRUE(offline.valid);
  EXPECT_EQ(offline.path_tasks, direct.path_tasks);
  EXPECT_EQ(offline.events_matched, direct.events_matched);
  EXPECT_EQ(offline.realized_ns, direct.realized_ns);
  EXPECT_EQ(offline.work_ns, direct.work_ns);
  EXPECT_EQ(offline.gap_ns, direct.gap_ns);
  EXPECT_EQ(offline.dispatch_gap_ns, direct.dispatch_gap_ns);
  EXPECT_EQ(offline.cross_gap_ns, direct.cross_gap_ns);
  EXPECT_EQ(offline.stolen_edges, direct.stolen_edges);
  EXPECT_EQ(offline.work_by_kind, direct.work_by_kind);
  ASSERT_EQ(offline.top_gaps.size(), direct.top_gaps.size());
  for (std::size_t i = 0; i < direct.top_gaps.size(); ++i) {
    EXPECT_EQ(offline.top_gaps[i].pred, direct.top_gaps[i].pred);
    EXPECT_EQ(offline.top_gaps[i].succ, direct.top_gaps[i].succ);
    EXPECT_EQ(offline.top_gaps[i].gap_ns, direct.top_gaps[i].gap_ns);
    EXPECT_EQ(offline.top_gaps[i].stolen, direct.top_gaps[i].stolen);
    EXPECT_EQ(offline.top_gaps[i].pred_track, direct.top_gaps[i].pred_track);
  }
}

// ------------------------------------------------------------------------
// Health: the live watchdog layer. Real pools, real sleeps — thresholds are
// chosen with wide margins so shared/TSan runners don't flake.

TEST(Health, OverrunWatchdogFlagsLongRunningTask) {
  runtime::ThreadPool pool(2);
  // Make sure GEQRT has a live-profile mean (isolated gtest_filter runs may
  // reach here with an empty profiler); 0.5 ms keeps the 2x threshold far
  // below the 150 ms the task actually takes.
  obs::KernelProfiler::global().record(0, 500'000);

  obs::HealthMonitor::Options hopt;
  hopt.poll = std::chrono::milliseconds(10);
  hopt.stall_after = std::chrono::seconds(10);  // not under test here
  hopt.overrun_factor = 2.0;
  hopt.overrun_floor_ns = 1'000'000;
  obs::HealthMonitor mon(pool, hopt);

  dag::TaskGraph g;
  g.p = 1;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {}});
  pool.run(g, [](std::int32_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });

  EXPECT_GE(mon.stats().overruns, 1);
  EXPECT_EQ(mon.stats().stalls, 0);
}

TEST(Health, StallWatchdogFlagsIdleWorkerWithReadyWork) {
  runtime::ThreadPool pool(2);
  obs::HealthMonitor::Options hopt;
  hopt.poll = std::chrono::milliseconds(10);
  hopt.stall_after = std::chrono::milliseconds(25);
  hopt.overrun_factor = 1e9;  // not under test here
  obs::HealthMonitor mon(pool, hopt);

  // Fan-out confined to one worker of a two-worker pool: while it grinds
  // through the successors sequentially, ready work queues up and the other
  // worker idles — the exact pathology the stall watchdog exists for.
  dag::TaskGraph g;
  g.p = 4;
  g.q = 1;
  g.tasks.push_back(dag::Task{kernels::KernelKind::GEQRT, 0, -1, 0, -1, 0, {1, 2, 3}});
  for (int t = 1; t <= 3; ++t)
    g.tasks.push_back(dag::Task{kernels::KernelKind::TSQRT, t, 0, 0, -1, 1, {}});
  pool.run(
      g, [](std::int32_t) { std::this_thread::sleep_for(std::chrono::milliseconds(60)); },
      runtime::SchedulePriority::CriticalPath, /*max_workers=*/1);

  EXPECT_GE(mon.stats().stalls, 1);
}

TEST(Health, SnapshotsAreOnDemandAppendSafeAndSignalDriven) {
  runtime::ThreadPool pool(2);
  obs::HealthMonitor::Options hopt;
  hopt.poll = std::chrono::milliseconds(5);
  hopt.snapshot_path = "health_ci_snapshot.txt";
  hopt.report = [] { return std::string("REPORT_MARKER\n"); };
  std::remove("health_ci_snapshot.txt");
  std::remove("health_ci_snapshot-1.txt");
  obs::HealthMonitor mon(pool, hopt);

  // API path: a direct dump, synchronously.
  const std::string p1 = mon.dump_snapshot();
  EXPECT_EQ(p1, "health_ci_snapshot.txt");
  {
    std::ifstream in(p1);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("tiledqr health snapshot"), std::string::npos);
    EXPECT_NE(buf.str().find("metrics:"), std::string::npos);
    EXPECT_NE(buf.str().find("REPORT_MARKER"), std::string::npos);
  }
  EXPECT_EQ(mon.stats().snapshots, 1);

  // Operator path: SIGUSR1 -> atomic counter bump -> the monitor thread
  // writes the next snapshot, append-safe, without the process exiting.
  obs::HealthMonitor::install_sigusr1();
  std::raise(SIGUSR1);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (mon.stats().snapshots < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(mon.stats().snapshots, 2);
  std::ifstream second("health_ci_snapshot-1.txt");
  EXPECT_TRUE(second.good());

  std::remove("health_ci_snapshot.txt");
  std::remove("health_ci_snapshot-1.txt");
}

// ------------------------------------------------------------------------
// ObsSmoke: the CI smoke (also part of the plain test run). Traces a real
// pool factorization, validates the export with the test-side parser, and
// leaves trace_ci.json in the working directory (the build dir under ctest)
// for the workflow artifact.

TEST(ObsSmoke, TracedFactorizationExportsLoadableChromeTrace) {
  TracerGuard guard;
  guard.tracer.enable();

  constexpr int kWorkers = 2;
  core::QrSession session(core::QrSession::Config{.threads = kWorkers});
  auto a = random_matrix<double>(128, 64, 0x51);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  (void)session.submit(ConstMatrixView<double>(a.view()), opt).get();
  guard.tracer.disable();

  const std::size_t recorded = guard.tracer.event_count();
  EXPECT_GT(recorded, 0u);

  guard.tracer.export_chrome_json("trace_ci.json");
  std::ifstream in("trace_ci.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Json doc = JsonParser(buf.str()).parse();

  // One track per pool worker, named by the instrumentation.
  auto names = thread_names(doc);
  int pool_tracks = 0;
  for (const auto& [tid, name] : names)
    if (name.rfind("pool", 0) == 0 && name.find(".w") != std::string::npos) ++pool_tracks;
  EXPECT_GE(pool_tracks, kWorkers);

  // Every recorded task appears as a named kernel slice on a named track.
  auto slices = slice_events(doc);
  EXPECT_EQ(slices.size(), recorded);
  static const std::set<std::string> kKernels{"GEQRT", "UNMQR", "TSQRT",
                                             "TSMQR", "TTQRT", "TTMQR"};
  std::set<std::string> seen;
  for (const Json& e : slices) {
    ASSERT_TRUE(names.count(int(e.at("tid").number)));
    ASSERT_TRUE(kKernels.count(e.at("name").string)) << e.at("name").string;
    seen.insert(e.at("name").string);
    EXPECT_GE(e.at("dur").number, 0.0);
  }
  // An 8x4 tile grid exercises the panel kernel and its updates at minimum.
  EXPECT_GE(seen.size(), 2u);

  // The schedule report built from the same trace is coherent with it.
  auto report = obs::build_schedule_report(guard.tracer);
  EXPECT_EQ(report.tasks, long(recorded));
  EXPECT_GT(report.span_ns, 0);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0 + 1e-9);
  EXPECT_FALSE(obs::format_schedule_report(report).empty());
}

TEST(ObsSmoke, LiveKernelProfileFeedsScheduleReportModel) {
  TracerGuard guard;
  guard.tracer.enable();

  core::QrSession session(core::QrSession::Config{.threads = 2});
  auto a = random_matrix<double>(96, 48, 0x52);
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 1};
  auto qr = session.submit(ConstMatrixView<double>(a.view()), opt).get();
  guard.tracer.disable();

  // The run fed the global kernel profiler, so live_profile() is measured.
  EXPECT_GT(obs::KernelProfiler::global().total_samples(), 0);
  auto live = obs::KernelProfiler::global().live_profile();
  EXPECT_EQ(live.id, "live");
  for (double w : live.weight) EXPECT_GT(w, 0.0);

  // Model comparison: achieved span vs bounded-sim makespan under the live
  // weights, for the plan this run actually executed.
  auto plan = session.plan_cache().get(6, 3, *opt.tree);
  (void)qr;
  auto report = obs::build_schedule_report(guard.tracer, plan->graph, 2);
  EXPECT_GT(report.model_seconds, 0.0);
  EXPECT_GT(report.model_ratio, 0.0);
}

TEST(ObsSmoke, CriticalPathBreakdownReconcilesWithReport) {
  TracerGuard guard;
  guard.tracer.enable();

  core::QrSession session(core::QrSession::Config{.threads = 2});
  core::Options opt;
  opt.nb = 16;
  opt.ib = 8;
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 1};

  // Warmup run: feeds the kernel profiler so the breakdown's model critical
  // path uses means measured under the same conditions as the run below.
  auto warm = random_matrix<double>(96, 48, 0x53);
  (void)session.submit(ConstMatrixView<double>(warm.view()), opt).get();

  // Measured run, scoped by the mark: the breakdown and report must see
  // only this factorization.
  guard.tracer.mark();
  auto a = random_matrix<double>(96, 48, 0x54);
  (void)session.submit(ConstMatrixView<double>(a.view()), opt).get();

  // The live health snapshot carries the schedule report while tracing.
  const std::string health = session.health_report();
  EXPECT_NE(health.find("critical path ("), std::string::npos);
  guard.tracer.disable();

  auto plan = session.plan_cache().get(6, 3, *opt.tree);
  const auto report = obs::build_schedule_report(guard.tracer, plan->graph, 2);
  const obs::CriticalPathBreakdown& b = report.breakdown;
  ASSERT_TRUE(b.valid);

  // Every traced task of the measured run joined against the plan's graph.
  EXPECT_EQ(b.dropped, 0);
  EXPECT_EQ(b.events_matched, long(plan->graph.tasks.size()));
  EXPECT_EQ(report.tasks, long(plan->graph.tasks.size()));

  // Reconciliation: work + gap == realized exactly, and the realized chain
  // fits inside the report's span (equal when the chain's head/tail are the
  // first/last events, which is typical but not guaranteed).
  EXPECT_GT(b.path_tasks, 0);
  EXPECT_GT(b.realized_ns, 0);
  EXPECT_EQ(b.work_ns + b.gap_ns, b.realized_ns);
  EXPECT_EQ(b.dispatch_gap_ns + b.cross_gap_ns, b.gap_ns);
  EXPECT_LE(b.realized_ns, report.span_ns);

  // Aggregations sum back to the totals.
  std::int64_t kind_work = 0;
  long kind_tasks = 0;
  for (int k = 0; k < obs::CriticalPathBreakdown::kKinds; ++k) {
    kind_work += b.work_by_kind[std::size_t(k)];
    kind_tasks += b.tasks_by_kind[std::size_t(k)];
  }
  EXPECT_EQ(kind_work, b.work_ns);
  EXPECT_EQ(kind_tasks, b.path_tasks);
  std::int64_t worker_work = 0, worker_gap = 0;
  for (const auto& w : b.workers) {
    worker_work += w.work_ns;
    worker_gap += w.gap_ns;
  }
  EXPECT_EQ(worker_work, b.work_ns);
  EXPECT_EQ(worker_gap, b.gap_ns);

  // Model comparison under the warm profile: the realized chain carries real
  // durations plus scheduler gaps, so it sits at or above the model path
  // (0.9 slack absorbs per-sample jitter between the two runs).
  EXPECT_GT(b.model_cp_seconds, 0.0);
  EXPECT_GE(double(b.realized_ns) / 1e9, 0.9 * b.model_cp_seconds);
  EXPECT_GT(b.realized_over_model, 0.0);

  EXPECT_FALSE(obs::format_critical_path_breakdown(b).empty());
  EXPECT_NE(obs::format_schedule_report(report).find("critical path ("), std::string::npos);
}

}  // namespace
}  // namespace tiledqr
