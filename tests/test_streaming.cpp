// Tests for streaming fusion (QrSession::stream / FactorStream): bitwise
// equivalence of streamed pushes against the fixed-batch fused path and the
// sequential replay, push_solve against the async pipeline, cork/uncork
// coalescing through the cached FusedPlan machinery, per-request failure
// isolation, close semantics, auto-tree routing on the push path, and a
// multi-client interleaving stress (the CI TSan job runs this under the
// `fast` label; TILEDQR_STRESS=1 — the `stress` label — widens the grids
// and round counts).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "runtime/executor.hpp"

namespace tiledqr {
namespace {

using core::FactorStream;
using core::Options;
using core::QrSession;
using core::TiledQr;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

/// Sequential per-matrix replay through the pre-pool spawn path: the
/// reference the streamed results must match bit for bit.
Matrix<double> replay_sequential(const Matrix<double>& a, int nb, int ib,
                                 const TreeConfig& tree) {
  auto tiles = TileMatrix<double>::from_dense(a.view(), nb);
  auto plan = core::make_plan(tiles.mt(), tiles.nt(), tree);
  core::TStore<double> ts(tiles.mt(), tiles.nt(), ib, tiles.nb());
  core::TStore<double> t2s(tiles.mt(), tiles.nt(), ib, tiles.nb());
  runtime::execute_spawn(
      plan.graph,
      [&](std::int32_t idx) {
        core::run_task_kernels(plan.graph.tasks[size_t(idx)], tiles, ts, t2s, ib);
      },
      1);
  return tiles.to_dense();
}

void expect_bitwise(const Matrix<double>& got, const Matrix<double>& want,
                    const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::int64_t j = 0; j < got.cols(); ++j)
    for (std::int64_t i = 0; i < got.rows(); ++i)
      ASSERT_EQ(got(i, j), want(i, j)) << what << " at (" << i << "," << j << ")";
}

struct SweepCase {
  int p, q, nb;
  TreeConfig tree;
  int threads;
  int depth;
  bool corked;
};

std::vector<SweepCase> sweep_cases() {
  const TreeConfig greedy_tt{TreeKind::Greedy, KernelFamily::TT, 1, 0};
  const TreeConfig flat_ts{TreeKind::FlatTree, KernelFamily::TS, 1, 0};
  const TreeConfig plasma2{TreeKind::PlasmaTree, KernelFamily::TT, 2, 0};
  std::vector<SweepCase> cases = {
      {4, 2, 8, greedy_tt, 2, 5, false},  // one-by-one pushes, tall grid
      {4, 2, 8, greedy_tt, 2, 5, true},   // same burst corked: one fused graft
      {5, 3, 8, flat_ts, 4, 4, true},     // TS kernel family
      {3, 3, 16, plasma2, 2, 4, false},   // square grid, PlasmaTree domains
      {1, 1, 8, greedy_tt, 1, 3, true},   // single-tile DAGs on one worker
  };
  if (env_flag("TILEDQR_STRESS")) {
    const TreeConfig fib_tt{TreeKind::Fibonacci, KernelFamily::TT, 1, 0};
    const TreeConfig asap{TreeKind::Asap, KernelFamily::TT, 1, 0};
    cases.push_back({8, 4, 16, greedy_tt, 4, 12, false});
    cases.push_back({8, 4, 16, greedy_tt, 4, 12, true});
    cases.push_back({10, 2, 8, fib_tt, 8, 9, true});
    cases.push_back({5, 5, 8, asap, 4, 8, false});
  }
  return cases;
}

// ---------------------------------------------------- streamed == batched --

TEST(FactorStream, StreamedPushesMatchFixedBatchBitwise) {
  for (const auto& c : sweep_cases()) {
    const std::string what = "p=" + std::to_string(c.p) + " q=" + std::to_string(c.q) +
                             " nb=" + std::to_string(c.nb) +
                             " threads=" + std::to_string(c.threads) +
                             " depth=" + std::to_string(c.depth) +
                             (c.corked ? " corked" : " uncorked");
    // Ragged on purpose (padding path), but keep m >= n.
    const std::int64_t m = std::int64_t(c.p) * c.nb - (c.p > 1 ? 3 : 0);
    const std::int64_t n = std::min(std::int64_t(c.q) * c.nb - (c.q > 1 ? 2 : 1), m);
    std::vector<Matrix<double>> inputs;
    for (int i = 0; i < c.depth; ++i)
      inputs.push_back(random_matrix<double>(m, n, 100 * unsigned(c.p) + unsigned(i)));

    QrSession session(QrSession::Config{c.threads});
    QrSession::StreamOptions sopt;
    sopt.nb = c.nb;
    sopt.ib = c.nb / 2;
    sopt.tree = c.tree;
    auto stream = session.stream<double>(sopt);
    if (c.corked) stream.cork();
    std::vector<std::future<TiledQr<double>>> futures;
    for (const auto& a : inputs)
      futures.push_back(stream.push(ConstMatrixView<double>(a.view())));
    if (c.corked) stream.uncork();
    stream.close();

    // Reference 1: the fixed-batch fused path on a fresh session.
    QrSession batch_session(QrSession::Config{c.threads});
    Options bopt;
    bopt.tree = c.tree;
    bopt.nb = c.nb;
    bopt.ib = c.nb / 2;
    std::vector<ConstMatrixView<double>> views;
    for (const auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));
    auto batch = batch_session.factorize_batch(views, bopt);

    for (int i = 0; i < c.depth; ++i) {
      auto got = futures[size_t(i)].get().factors().to_dense();
      expect_bitwise(got, batch[size_t(i)].factors().to_dense(),
                     what + " vs batch, matrix " + std::to_string(i));
      // Reference 2: the sequential spawn-path replay.
      expect_bitwise(got, replay_sequential(inputs[size_t(i)], c.nb, c.nb / 2, c.tree),
                     what + " vs replay, matrix " + std::to_string(i));
    }
  }
}

TEST(FactorStream, CorkedBurstCoalescesIntoOneFusedGraft) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  auto stream = session.stream<double>(sopt);
  constexpr int kBurst = 6;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBurst; ++i) inputs.push_back(random_matrix<double>(64, 32, 40 + i));

  stream.cork();
  std::vector<std::future<TiledQr<double>>> futures;
  for (const auto& a : inputs) futures.push_back(stream.push(ConstMatrixView<double>(a.view())));
  {
    auto s = stream.stats();
    EXPECT_EQ(s.pushed, kBurst);
    EXPECT_EQ(s.pending, kBurst);     // corked: nothing grafted yet
    EXPECT_EQ(s.components, 0);
  }
  stream.uncork();
  {
    auto s = stream.stats();
    EXPECT_EQ(s.components, 1);       // the whole burst rode one fused graft
    EXPECT_EQ(s.fused_requests, kBurst);
    EXPECT_EQ(s.pending, 0);
  }
  for (auto& f : futures) (void)f.get();
  stream.close();
  // The graft went through the cached FusedPlan machinery.
  auto cache = session.plan_cache_stats();
  EXPECT_EQ(cache.fused_misses, 1);
  EXPECT_EQ(cache.fused_entries, 1u);
}

TEST(FactorStream, PushSolveMatchesAsyncPipelineBitwise) {
  const TreeConfig tree{};
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = tree;
  auto stream = session.stream<double>(sopt);
  constexpr int kSolves = 4;
  std::vector<Matrix<double>> as, bs;
  for (int i = 0; i < kSolves; ++i) {
    as.push_back(random_matrix<double>(5 * 16 - 3, 2 * 16 - 1, 300 + i));
    bs.push_back(random_matrix<double>(5 * 16 - 3, 2, 400 + i));
  }
  std::vector<std::future<Matrix<double>>> streamed;
  for (int i = 0; i < kSolves; ++i)
    streamed.push_back(stream.push_solve(ConstMatrixView<double>(as[size_t(i)].view()),
                                         ConstMatrixView<double>(bs[size_t(i)].view())));
  stream.close();

  QrSession ref_session(QrSession::Config{2});
  Options opt;
  opt.tree = tree;
  opt.nb = 16;
  opt.ib = 8;
  for (int i = 0; i < kSolves; ++i) {
    auto want = ref_session
                    .solve_least_squares_async(ConstMatrixView<double>(as[size_t(i)].view()),
                                               ConstMatrixView<double>(bs[size_t(i)].view()), opt)
                    .get();
    expect_bitwise(streamed[size_t(i)].get(), want, "solve " + std::to_string(i));
  }
}

TEST(FactorStream, CorkedSolveBurstCoalescesApplyStages) {
  // A corked homogeneous burst of solves rides ONE fused factor graft; each
  // request's apply stage is queued as its factor part retires, and the
  // factor component's retirement callback claims the whole queue and
  // grafts it as ONE fused apply component. Before apply coalescing this
  // burst produced 1 + kSolves components; now it is exactly 2. Run once
  // tall (QR: apply-Qᵀb then trsm tail) and once wide (LQ: trsm head then
  // apply-Q̃ minimum norm) — both solve tails ride the coalesced path.
  const TreeConfig tree{};
  constexpr int kSolves = 5;
  for (bool wide : {false, true}) {
    const std::int64_t m = wide ? 2 * 16 - 1 : 4 * 16 - 3;
    const std::int64_t n = wide ? 4 * 16 - 3 : 2 * 16 - 1;
    const std::string label = wide ? "wide" : "tall";
    std::vector<Matrix<double>> as, bs;
    for (int i = 0; i < kSolves; ++i) {
      as.push_back(random_matrix<double>(m, n, 600 + unsigned(i) + (wide ? 50u : 0u)));
      bs.push_back(random_matrix<double>(m, 2, 700 + unsigned(i) + (wide ? 50u : 0u)));
    }
    QrSession session(QrSession::Config{2});
    QrSession::StreamOptions sopt;
    sopt.nb = 16;
    sopt.ib = 8;
    sopt.tree = tree;
    auto stream = session.stream<double>(sopt);
    stream.cork();
    std::vector<std::future<Matrix<double>>> streamed;
    for (int i = 0; i < kSolves; ++i)
      streamed.push_back(stream.push_solve(ConstMatrixView<double>(as[size_t(i)].view()),
                                           ConstMatrixView<double>(bs[size_t(i)].view())));
    EXPECT_EQ(stream.stats().components, 0) << label;
    stream.uncork();
    std::vector<Matrix<double>> xs;
    for (auto& f : streamed) xs.push_back(f.get());
    stream.drain();  // quiesce: `unresolved` drops after the promise resolves
    {
      auto s = stream.stats();
      EXPECT_EQ(s.components, 2) << label;  // fused factor graft + fused apply graft
      EXPECT_EQ(s.fused_requests, kSolves) << label;
      EXPECT_EQ(s.unresolved, 0) << label;
    }
    stream.close();

    QrSession ref_session(QrSession::Config{2});
    Options opt;
    opt.tree = tree;
    opt.nb = 16;
    opt.ib = 8;
    for (int i = 0; i < kSolves; ++i) {
      auto want =
          ref_session
              .solve_least_squares_async(ConstMatrixView<double>(as[size_t(i)].view()),
                                         ConstMatrixView<double>(bs[size_t(i)].view()), opt)
              .get();
      expect_bitwise(xs[size_t(i)], want, label + " coalesced solve " + std::to_string(i));
    }
  }
}

TEST(FactorStream, ZeroColumnRhsSolveIsDegenerate) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  auto stream = session.stream<double>(sopt);
  auto a = random_matrix<double>(48, 32, 7);
  Matrix<double> b(48, 0);
  auto x = stream.push_solve(ConstMatrixView<double>(a.view()),
                             ConstMatrixView<double>(b.view()));
  stream.close();
  auto sol = x.get();
  EXPECT_EQ(sol.rows(), 32);
  EXPECT_EQ(sol.cols(), 0);
}

TEST(FactorStream, AutoRoutedPushMatchesExplicitChoice) {
  // A stream without a pinned tree routes each pushed shape through the
  // session tuner; results must be bitwise identical to pushing the chosen
  // tree explicitly.
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions auto_opt;
  auto_opt.nb = 16;
  auto_opt.ib = 8;
  auto auto_stream = session.stream<double>(auto_opt);
  auto a = random_matrix<double>(6 * 16, 2 * 16, 99);
  auto auto_qr = auto_stream.push(ConstMatrixView<double>(a.view())).get();
  auto_stream.close();

  const TreeConfig chosen = session.choose_tree(6, 2);
  EXPECT_EQ(auto_qr.options().tree, std::optional<TreeConfig>(chosen));
  expect_bitwise(auto_qr.factors().to_dense(), replay_sequential(a, 16, 8, chosen),
                 "auto-routed push");
}

TEST(FactorStream, FailedPushDoesNotPoisonTheStream) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  auto stream = session.stream<double>(sopt);
  // A push whose preparation fails resolves its own future with the error...
  Matrix<double> empty(0, 0);
  auto bad = stream.push(ConstMatrixView<double>(empty.view()));
  EXPECT_THROW((void)bad.get(), Error);
  // ...and the stream keeps serving.
  auto a = random_matrix<double>(64, 32, 3);
  auto good = stream.push(ConstMatrixView<double>(a.view()));
  stream.close();
  expect_bitwise(good.get().factors().to_dense(), replay_sequential(a, 16, 8, TreeConfig{}),
                 "push after failed push");
}

TEST(FactorStream, ClosedStreamRejectsPushes) {
  QrSession session(QrSession::Config{2});
  auto stream = session.stream<double>();
  auto a = random_matrix<double>(128, 128, 1);
  auto f = stream.push(ConstMatrixView<double>(a.view()));
  stream.close();
  (void)f.get();
  EXPECT_THROW((void)stream.push(ConstMatrixView<double>(a.view())), Error);
  stream.close();  // idempotent
}

TEST(FactorStream, InvalidStreamOptionsThrowUpFront) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions bad_nb;
  bad_nb.nb = 0;
  EXPECT_THROW((void)session.stream<double>(bad_nb), Error);
  QrSession::StreamOptions bad_ib;
  bad_ib.ib = -1;
  EXPECT_THROW((void)session.stream<double>(bad_ib), Error);
}

TEST(FactorStream, DrainKeepsTheStreamOpen) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  auto stream = session.stream<double>(sopt);
  auto a = random_matrix<double>(64, 32, 21);
  auto f1 = stream.push(ConstMatrixView<double>(a.view()));
  stream.drain();
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto f2 = stream.push(ConstMatrixView<double>(a.view()));  // still open
  stream.close();
  expect_bitwise(f1.get().factors().to_dense(), f2.get().factors().to_dense(),
                 "same input, same plan");
}

// ------------------------------------------------------------ serving QoS --

TEST(FactorStream, MultiClientCorkVsDrainKeepsBurstIntact) {
  // Client A corks a burst; a peer calls drain(). The drain must not claim
  // A's corked backlog (the burst grafts as the ONE fused component cork
  // promised) and must park on the retirement condvar — not spin flushing an
  // empty backlog — until A uncorks.
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  auto stream = session.stream<double>(sopt);
  constexpr int kBurst = 3;
  std::vector<Matrix<double>> inputs;
  for (int i = 0; i < kBurst; ++i) inputs.push_back(random_matrix<double>(64, 32, 500 + i));

  stream.cork();
  std::vector<std::future<TiledQr<double>>> futures;
  for (const auto& a : inputs) futures.push_back(stream.push(ConstMatrixView<double>(a.view())));

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    stream.drain();
    drained.store(true);
  });
  // Give the drainer time to park; it cannot return (3 unresolved corked
  // requests) and must not graft anything.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load());
  {
    auto s = stream.stats();
    EXPECT_EQ(s.components, 0);  // corked backlog untouched by the drain
    EXPECT_EQ(s.pending, kBurst);
    EXPECT_EQ(s.unresolved, kBurst);
  }
  stream.uncork();
  drainer.join();
  EXPECT_TRUE(drained.load());
  auto s = stream.stats();
  EXPECT_EQ(s.components, 1);  // the whole burst rode one fused graft
  EXPECT_EQ(s.fused_requests, kBurst);
  EXPECT_EQ(s.unresolved, 0);
  // A parked drain claims the (empty, corked) backlog at most once.
  EXPECT_LE(s.empty_flushes, 2);
  for (auto& f : futures) (void)f.get();
  stream.close();
}

TEST(FactorStream, MovedFromHandleGuardsThrow) {
  QrSession session(QrSession::Config{2});
  auto stream = session.stream<double>();
  auto moved = std::move(stream);
  auto a = random_matrix<double>(32, 16, 9);
  // Every public method on the moved-from handle reports the caller bug
  // instead of dereferencing null shared state.
  EXPECT_THROW((void)stream.push(ConstMatrixView<double>(a.view())), Error);
  EXPECT_THROW((void)stream.push(TileMatrix<double>::from_dense(a.view(), 16)), Error);
  EXPECT_THROW((void)stream.push_solve(ConstMatrixView<double>(a.view()),
                                       ConstMatrixView<double>(a.view())),
               Error);
  EXPECT_THROW(stream.cork(), Error);
  EXPECT_THROW(stream.uncork(), Error);
  EXPECT_THROW(stream.flush(), Error);
  EXPECT_THROW(stream.drain(), Error);
  EXPECT_THROW((void)stream.stats(), Error);
  EXPECT_THROW((void)stream.generation(), Error);
  EXPECT_THROW(stream.close(), Error);
  EXPECT_FALSE(stream.valid());
  // The moved-into handle works (and the moved-from destructor is a no-op).
  auto f = moved.push(ConstMatrixView<double>(a.view()));
  moved.close();
  (void)f.get();
}

TEST(FactorStream, RejectOverflowReturnsFailedFuture) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  sopt.max_queued = 2;
  sopt.overflow = QrSession::StreamOverflow::Reject;
  auto stream = session.stream<double>(sopt);
  auto a = random_matrix<double>(64, 32, 71);
  stream.cork();  // hold the admitted requests unresolved deterministically
  auto f1 = stream.push(ConstMatrixView<double>(a.view()));
  auto f2 = stream.push(ConstMatrixView<double>(a.view()));
  auto f3 = stream.push(ConstMatrixView<double>(a.view()));  // over the bound
  try {
    (void)f3.get();
    FAIL() << "expected a backpressure reject";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("backpressure reject"), std::string::npos);
  }
  {
    auto s = stream.stats();
    EXPECT_EQ(s.rejected, 1);
    EXPECT_EQ(s.unresolved, 2);
    EXPECT_EQ(s.pushed, 2);  // the rejected push was never admitted
  }
  stream.uncork();
  stream.close();
  (void)f1.get();  // the admitted requests are untouched by the reject
  (void)f2.get();
  EXPECT_LE(stream.stats().peak_unresolved, 2);
}

TEST(FactorStream, BlockOverflowBoundsUnresolvedRequests) {
  // The acceptance bar: a Block-overflow stream never holds more than
  // max_queued unresolved requests — the pusher parks until a slot frees —
  // and loses nothing.
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  sopt.max_queued = 2;
  sopt.overflow = QrSession::StreamOverflow::Block;
  auto stream = session.stream<double>(sopt);
  constexpr int kPushes = 16;
  std::vector<Matrix<double>> inputs;
  std::vector<std::future<TiledQr<double>>> futures;
  for (int i = 0; i < kPushes; ++i) {
    inputs.push_back(random_matrix<double>(48, 32, 800 + i));
    futures.push_back(stream.push(ConstMatrixView<double>(inputs.back().view())));
  }
  stream.close();
  auto s = stream.stats();
  EXPECT_LE(s.peak_unresolved, 2);
  EXPECT_EQ(s.pushed, kPushes);
  EXPECT_EQ(s.rejected, 0);
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get().factors().to_dense();
    expect_bitwise(got, replay_sequential(inputs[i], 16, 8, TreeConfig{}),
                   "blocked push " + std::to_string(i));
  }
}

TEST(FactorStream, LowWatermarkGraftsBehindLiveComponent) {
  // low_watermark = 1 keeps a graft queued behind the live one: a push that
  // arrives with only the live graft in flight grafts immediately instead of
  // pending until the stream runs dry. The graft happens synchronously on
  // the pushing thread, so the component count is deterministic.
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  sopt.low_watermark = 1;
  auto stream = session.stream<double>(sopt);
  auto a = random_matrix<double>(64, 32, 31);
  auto f1 = stream.push(ConstMatrixView<double>(a.view()));
  EXPECT_EQ(stream.stats().components, 1);  // idle stream: grafted immediately
  auto f2 = stream.push(ConstMatrixView<double>(a.view()));
  // Whether or not the first graft already retired, inflight <= 1 here, so
  // the watermark grafts the second push rather than pending it.
  EXPECT_EQ(stream.stats().components, 2);
  EXPECT_EQ(stream.stats().pending, 0);
  stream.close();
  expect_bitwise(f1.get().factors().to_dense(), f2.get().factors().to_dense(),
                 "same input through watermark grafts");
}

TEST(FactorStream, FlushDeadlineCapsCoalescingLatency) {
  // A big factorization keeps the stream busy; a small request pushed behind
  // it would normally coalesce until the big one retires. flush_deadline
  // caps that wait: the deadline thread grafts the aged backlog while the
  // big graft is still running. (The big QR takes hundreds of milliseconds —
  // orders of magnitude past the deadline — so the ordering is robust, and
  // sanitizer slowdowns only widen the margin.)
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 64;
  sopt.ib = 16;
  sopt.tree = TreeConfig{};
  sopt.flush_deadline = std::chrono::milliseconds(5);
  auto stream = session.stream<double>(sopt);
  auto big = random_matrix<double>(512, 512, 1);
  auto small = random_matrix<double>(64, 32, 2);
  auto f_big = stream.push(ConstMatrixView<double>(big.view()));
  auto f_small = stream.push(ConstMatrixView<double>(small.view()));
  auto small_qr = f_small.get();
  EXPECT_GE(stream.stats().deadline_flushes, 1);
  (void)f_big.get();
  stream.close();
  expect_bitwise(small_qr.factors().to_dense(),
                 replay_sequential(small, 64, 16, TreeConfig{}), "deadline-grafted push");
}

TEST(FactorStream, MoveAssignClosesTheOverwrittenStream) {
  // Re-opening a stream in place (`stream = session.stream(...)`) must close
  // the old one: its in-flight requests resolve, its deadline thread joins,
  // and the pool's live-stream gauge drops — nothing is orphaned with no
  // handle left to close it.
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = TreeConfig{};
  sopt.flush_deadline = std::chrono::milliseconds(50);  // engages the thread
  auto stream = session.stream<double>(sopt);
  auto a = random_matrix<double>(64, 32, 13);
  auto f = stream.push(ConstMatrixView<double>(a.view()));
  EXPECT_EQ(session.pool_stats().streams_live, 1);
  stream = session.stream<double>(sopt);  // old stream closed by move-assign
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(session.pool_stats().streams_live, 1);  // only the new stream
  auto f2 = stream.push(ConstMatrixView<double>(a.view()));
  stream.close();
  EXPECT_EQ(session.pool_stats().streams_live, 0);
  expect_bitwise(f.get().factors().to_dense(), f2.get().factors().to_dense(),
                 "same input across the reassignment");
}

TEST(FactorStream, NewStreamOptionKnobsAreValidated) {
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions bad_queue;
  bad_queue.max_queued = -1;
  EXPECT_THROW((void)session.stream<double>(bad_queue), Error);
  QrSession::StreamOptions bad_watermark;
  bad_watermark.low_watermark = -1;
  EXPECT_THROW((void)session.stream<double>(bad_watermark), Error);
  QrSession::StreamOptions bad_deadline;
  bad_deadline.flush_deadline = std::chrono::milliseconds(-1);
  EXPECT_THROW((void)session.stream<double>(bad_deadline), Error);
}

// ------------------------------------------------- multi-client interleave --

TEST(FactorStream, MultiClientInterleavingStress) {
  // Several client threads hammer ONE session: two share a stream, one owns
  // a private corked-burst stream, one drives the fixed-batch path — any
  // cross-talk between grafts shows up as a value mismatch (and any data
  // race in the TSan CI job).
  const int rounds = env_flag("TILEDQR_STRESS") ? 10 : 2;
  const int clients = env_flag("TILEDQR_STRESS") ? 4 : 3;
  const TreeConfig tree{};
  QrSession session(QrSession::Config{4});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = tree;
  auto shared_stream = session.stream<double>(sopt);

  std::mutex fail_mu;
  std::vector<std::string> failures;
  auto record = [&](std::string what) {
    std::lock_guard<std::mutex> lock(fail_mu);
    failures.push_back(std::move(what));
  };

  std::vector<std::thread> threads;
  for (int cid = 0; cid < clients; ++cid) {
    threads.emplace_back([&, cid] {
      for (int r = 0; r < rounds; ++r) {
        const unsigned seed = unsigned(10000 + cid * 1000 + r * 10);
        if (cid % 3 == 0) {
          // Pushes one-by-one into the shared stream (plus one solve).
          std::vector<Matrix<double>> inputs;
          std::vector<std::future<TiledQr<double>>> futs;
          for (int i = 0; i < 3; ++i)
            inputs.push_back(random_matrix<double>(3 * 16, 2 * 16, seed + unsigned(i)));
          for (auto& a : inputs)
            futs.push_back(shared_stream.push(ConstMatrixView<double>(a.view())));
          auto b = random_matrix<double>(3 * 16, 1, seed + 7);
          auto x = shared_stream.push_solve(ConstMatrixView<double>(inputs[0].view()),
                                            ConstMatrixView<double>(b.view()));
          for (size_t i = 0; i < futs.size(); ++i) {
            auto got = futs[i].get().factors().to_dense();
            auto want = replay_sequential(inputs[i], 16, 8, tree);
            if (got.rows() != want.rows()) { record("stream shape mismatch"); continue; }
            for (std::int64_t jj = 0; jj < got.cols(); ++jj)
              for (std::int64_t ii = 0; ii < got.rows(); ++ii)
                if (got(ii, jj) != want(ii, jj)) {
                  record("stream value mismatch c" + std::to_string(cid));
                  jj = got.cols();
                  break;
                }
          }
          (void)x.get();
        } else if (cid % 3 == 1) {
          // Private stream, corked bursts of a different shape.
          auto mine = session.stream<double>(sopt);
          mine.cork();
          std::vector<Matrix<double>> inputs;
          std::vector<std::future<TiledQr<double>>> futs;
          for (int i = 0; i < 4; ++i)
            inputs.push_back(random_matrix<double>(4 * 16, 16, seed + unsigned(i)));
          for (auto& a : inputs)
            futs.push_back(mine.push(ConstMatrixView<double>(a.view())));
          mine.uncork();
          mine.close();
          for (size_t i = 0; i < futs.size(); ++i) {
            auto got = futs[i].get().factors().to_dense();
            auto want = replay_sequential(inputs[i], 16, 8, tree);
            for (std::int64_t jj = 0; jj < got.cols(); ++jj)
              for (std::int64_t ii = 0; ii < got.rows(); ++ii)
                if (got(ii, jj) != want(ii, jj)) {
                  record("burst value mismatch c" + std::to_string(cid));
                  jj = got.cols();
                  break;
                }
          }
        } else {
          // Fixed-batch client sharing the same pool/cache.
          Options opt;
          opt.tree = tree;
          opt.nb = 16;
          opt.ib = 8;
          std::vector<Matrix<double>> inputs;
          for (int i = 0; i < 3; ++i)
            inputs.push_back(random_matrix<double>(2 * 16, 2 * 16, seed + unsigned(i)));
          std::vector<ConstMatrixView<double>> views;
          for (auto& a : inputs) views.push_back(ConstMatrixView<double>(a.view()));
          std::vector<TiledQr<double>> qrs;
          try {
            qrs = session.factorize_batch(views, opt);
          } catch (const std::exception& e) {
            record(std::string("batch threw: ") + e.what());
            continue;
          }
          for (size_t i = 0; i < qrs.size(); ++i) {
            auto got = qrs[i].factors().to_dense();
            auto want = replay_sequential(inputs[i], 16, 8, tree);
            for (std::int64_t jj = 0; jj < got.cols(); ++jj)
              for (std::int64_t ii = 0; ii < got.rows(); ++ii)
                if (got(ii, jj) != want(ii, jj)) {
                  record("batch value mismatch c" + std::to_string(cid));
                  jj = got.cols();
                  break;
                }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  shared_stream.close();
  for (const auto& f : failures) ADD_FAILURE() << f;
}

TEST(FactorStream, TwoStreamQoSCompetitionStress) {
  // Two clients, each with its own QoS-bounded stream (Block overflow +
  // watermark), hammer one 2-worker session. The pool-level fairness deal
  // interleaves their grafts; the per-stream bound must hold for both under
  // contention and every result must stay bitwise identical to the replay.
  const int per_client = env_flag("TILEDQR_STRESS") ? 24 : 6;
  const TreeConfig tree{};
  QrSession session(QrSession::Config{2});
  QrSession::StreamOptions sopt;
  sopt.nb = 16;
  sopt.ib = 8;
  sopt.tree = tree;
  sopt.max_queued = 4;
  sopt.overflow = QrSession::StreamOverflow::Block;
  sopt.low_watermark = 1;

  std::mutex fail_mu;
  std::vector<std::string> failures;
  std::vector<std::thread> clients;
  std::vector<long> peaks(2, 0);
  for (int cid = 0; cid < 2; ++cid) {
    clients.emplace_back([&, cid] {
      auto stream = session.stream<double>(sopt);
      std::vector<Matrix<double>> inputs;
      std::vector<std::future<TiledQr<double>>> futs;
      for (int i = 0; i < per_client; ++i) {
        inputs.push_back(random_matrix<double>(3 * 16, 2 * 16, unsigned(20000 + cid * 100 + i)));
        futs.push_back(stream.push(ConstMatrixView<double>(inputs.back().view())));
      }
      stream.drain();
      peaks[size_t(cid)] = stream.stats().peak_unresolved;
      stream.close();
      for (size_t i = 0; i < futs.size(); ++i) {
        auto got = futs[i].get().factors().to_dense();
        auto want = replay_sequential(inputs[i], 16, 8, tree);
        for (std::int64_t jj = 0; jj < got.cols(); ++jj)
          for (std::int64_t ii = 0; ii < got.rows(); ++ii)
            if (got(ii, jj) != want(ii, jj)) {
              std::lock_guard<std::mutex> lock(fail_mu);
              failures.push_back("qos stream value mismatch c" + std::to_string(cid));
              jj = got.cols();
              break;
            }
      }
    });
  }
  for (auto& th : clients) th.join();
  for (const auto& f : failures) ADD_FAILURE() << f;
  EXPECT_LE(peaks[0], 4);
  EXPECT_LE(peaks[1], 4);
  EXPECT_GT(peaks[0], 0);
  EXPECT_GT(peaks[1], 0);
}

}  // namespace
}  // namespace tiledqr
