// Tests for the Householder machinery: larfg, geqr2, larft, larfb, and the
// reference QR used as an oracle elsewhere.
#include <gtest/gtest.h>

#include <complex>

#include "kernels/householder.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using kernels::ApplyTrans;

using Scalars = ::testing::Types<double, std::complex<double>>;

template <typename T>
class HouseholderTyped : public ::testing::Test {};
TYPED_TEST_SUITE(HouseholderTyped, Scalars);

TYPED_TEST(HouseholderTyped, LarfgAnnihilates) {
  using T = TypeParam;
  auto v = random_matrix<T>(6, 1, 3);
  T alpha = v(0, 0);
  std::vector<T> x(5);
  for (int i = 0; i < 5; ++i) x[size_t(i)] = v(i + 1, 0);
  std::vector<T> orig = x;
  T orig_alpha = alpha;
  T tau;
  kernels::larfg(alpha, x.data(), 5, tau);
  // H^H [alpha; x] = [beta; 0] with v = [1; x_out]:
  //   w = conj(1)*alpha0 + sum conj(v_i) x0_i; result = in - conj(tau) w v.
  T w = orig_alpha;
  for (int i = 0; i < 5; ++i) w += conj_if_complex(x[size_t(i)]) * orig[size_t(i)];
  T head = orig_alpha - conj_if_complex(tau) * w;
  EXPECT_LE(std::abs(head - alpha), 1e-12);         // head becomes beta
  EXPECT_LE(std::abs(ScalarTraits<T>::imag(alpha)), 1e-12);  // beta is real
  for (int i = 0; i < 5; ++i) {
    T r = orig[size_t(i)] - conj_if_complex(tau) * w * x[size_t(i)];
    EXPECT_LE(std::abs(r), 1e-12) << i;
  }
}

TYPED_TEST(HouseholderTyped, LarfgZeroVectorRealAlphaIsIdentity) {
  using T = TypeParam;
  T alpha = T(3);
  T tau = T(42);
  kernels::larfg(alpha, static_cast<T*>(nullptr), 0, tau);
  EXPECT_EQ(tau, T(0));
  EXPECT_EQ(alpha, T(3));
}

TYPED_TEST(HouseholderTyped, LarfgTinyValuesRescale) {
  using T = TypeParam;
  std::vector<T> x{T(1e-300), T(-2e-300)};
  T alpha = T(3e-300);
  T tau;
  kernels::larfg(alpha, x.data(), 2, tau);
  // beta = -sign * ||[3,1,-2]||*1e-300; finite and nonzero.
  double beta = ScalarTraits<T>::real(alpha);
  EXPECT_GT(std::abs(beta), 0.0);
  EXPECT_NEAR(std::abs(beta) / 1e-300, std::sqrt(14.0), 1e-6);
}

TYPED_TEST(HouseholderTyped, Geqr2ReconstructsViaQ) {
  using T = TypeParam;
  const int m = 9, n = 6;
  auto a0 = random_matrix<T>(m, n, 11);
  auto qr = kernels::reference_qr<T>(a0.view());
  // Q^H A = R
  Matrix<T> c(m, n);
  copy(a0.view(), c.view());
  qr.apply_q(ApplyTrans::ConjTrans, c.view());
  auto r = qr.r_factor();
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      T want = i <= j && i < n ? r(i, j) : T(0);
      EXPECT_LE(std::abs(c(i, j) - want), 1e-12);
    }
}

TYPED_TEST(HouseholderTyped, ReferenceQThinIsOrthonormal) {
  using T = TypeParam;
  auto a0 = random_matrix<T>(10, 4, 13);
  auto qr = kernels::reference_qr<T>(a0.view());
  auto q = qr.q_thin();
  EXPECT_LE(orthogonality_error<T>(q.view()), 1e-12);
  // A = Q R
  auto r = qr.r_factor();
  Matrix<T> qrm(10, 4);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), q.view(), r.view(), T(0), qrm.view());
  EXPECT_LE(difference_norm<T>(a0.view(), qrm.view()), 1e-12);
}

TYPED_TEST(HouseholderTyped, LarftLarfbBlockEqualsSequential) {
  using T = TypeParam;
  const int m = 8, k = 4;
  auto v0 = random_matrix<T>(m, k, 17);
  auto qr = kernels::reference_qr<T>(v0.view());  // produces V, tau
  // Build T and apply block reflector to C; compare with sequential apply.
  Matrix<T> t(k, k);
  kernels::larft(ConstMatrixView<T>(qr.vr.view()), qr.tau.data(), t.view());
  auto c0 = random_matrix<T>(m, 5, 19);
  Matrix<T> c_blk(m, 5), c_seq(m, 5);
  copy(c0.view(), c_blk.view());
  copy(c0.view(), c_seq.view());
  std::vector<T> work(size_t(k) * 5);
  kernels::larfb_left(ApplyTrans::ConjTrans, ConstMatrixView<T>(qr.vr.view()),
                      ConstMatrixView<T>(t.view()), c_blk.view(), work.data());
  qr.apply_q(ApplyTrans::ConjTrans, c_seq.view());
  EXPECT_LE(difference_norm<T>(c_blk.view(), c_seq.view()), 1e-12);

  // And the NoTrans direction.
  copy(c0.view(), c_blk.view());
  copy(c0.view(), c_seq.view());
  kernels::larfb_left(ApplyTrans::NoTrans, ConstMatrixView<T>(qr.vr.view()),
                      ConstMatrixView<T>(t.view()), c_blk.view(), work.data());
  qr.apply_q(ApplyTrans::NoTrans, c_seq.view());
  EXPECT_LE(difference_norm<T>(c_blk.view(), c_seq.view()), 1e-12);
}

TYPED_TEST(HouseholderTyped, ReferenceLeastSquaresMatchesNormalEquations) {
  using T = TypeParam;
  const int m = 12, n = 5;
  auto a = random_matrix<T>(m, n, 23);
  auto b = random_matrix<T>(m, 1, 29);
  auto x = kernels::reference_least_squares<T>(a.view(), b.view());
  // Residual must be orthogonal to range(A): A^H (A x - b) ~ 0.
  Matrix<T> r(m, 1);
  copy(b.view(), r.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), a.view(), x.view(), T(-1), r.view());
  Matrix<T> atr(n, 1);
  blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), a.view(), r.view(), T(0), atr.view());
  EXPECT_LE(frobenius_norm<T>(atr.view()), 1e-11);
}

TEST(Householder, ComplexAlphaZeroTailStillReflects) {
  using T = std::complex<double>;
  // x empty but alpha has nonzero imaginary part: beta must become real.
  T alpha(1.0, 2.0);
  T tau;
  kernels::larfg(alpha, static_cast<T*>(nullptr), 0, tau);
  EXPECT_NE(tau, T(0));
  EXPECT_NEAR(alpha.imag(), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(alpha.real()), std::sqrt(5.0), 1e-12);
}

}  // namespace
}  // namespace tiledqr
