// Tests for the runtime SIMD dispatch layer (blas/simd/simd.hpp).
//
// Two families of guarantees:
//   - Equivalence: every available tier computes the same results as the
//     scalar baseline, within an accumulation-order tolerance (vector tiers
//     use FMA contraction and multi-accumulator reductions, so bitwise
//     equality across tiers is not promised). Shapes deliberately straddle
//     register-block boundaries to exercise remainder paths.
//   - Determinism: within one tier, repeated runs are bitwise identical —
//     each tier fixes its lane layout and reduction order.
//
// The suite saves and restores the live tier around every test so ordering
// within the test binary does not matter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "blas/blas.hpp"
#include "blas/simd/simd.hpp"
#include "kernels/kernels.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

namespace simd = blas::simd;

class TierGuard {
 public:
  TierGuard() : saved_(simd::active_tier()) {}
  ~TierGuard() { simd::set_tier(saved_); }

 private:
  simd::Tier saved_;
};

std::vector<simd::Tier> vector_tiers() {
  auto tiers = simd::available_tiers();
  tiers.erase(std::remove(tiers.begin(), tiers.end(), simd::Tier::Scalar), tiers.end());
  return tiers;
}

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(simd::tier_available(simd::Tier::Scalar));
  auto tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::Scalar);
  // Ascending, and the best tier is the last one.
  EXPECT_TRUE(std::is_sorted(tiers.begin(), tiers.end()));
  EXPECT_EQ(tiers.back(), simd::best_available_tier());
}

TEST(SimdDispatch, SetTierSwitchesTable) {
  TierGuard guard;
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(t));
    EXPECT_EQ(simd::active_tier(), t);
    EXPECT_STREQ(simd::ops().name, simd::tier_name(t));
  }
}

TEST(SimdDispatch, UnavailableTierRejected) {
  TierGuard guard;
  const simd::Tier before = simd::active_tier();
  for (int t = 0; t < simd::kNumTiers; ++t) {
    if (simd::tier_available(simd::Tier(t))) continue;
    EXPECT_FALSE(simd::set_tier(simd::Tier(t)));
    EXPECT_EQ(simd::active_tier(), before);
  }
}

TEST(SimdDispatch, ParseTier) {
  simd::Tier t;
  EXPECT_TRUE(simd::parse_tier("scalar", t));
  EXPECT_EQ(t, simd::Tier::Scalar);
  EXPECT_TRUE(simd::parse_tier("avx512", t));
  EXPECT_EQ(t, simd::Tier::Avx512);
  EXPECT_FALSE(simd::parse_tier("auto", t));
  EXPECT_FALSE(simd::parse_tier("", t));
  EXPECT_FALSE(simd::parse_tier("sse9", t));
}

// Shapes that straddle the register-block boundaries: the double microkernel
// uses MR = 2 vector widths (8 or 16 rows) and NR = 4 columns with KC = 256
// k-blocking; odd sizes hit every remainder path.
struct GemmShape {
  std::int64_t m, n, k;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},  {3, 2, 5},   {7, 4, 9},    {8, 4, 16},   {15, 5, 31}, {16, 8, 32},
    {17, 9, 33}, {31, 3, 7}, {33, 13, 40}, {64, 17, 70}, {5, 1, 300},  // k > KC
};

template <typename T>
double rel_tol() {
  // Accumulation-order tolerance: FMA contraction and lane-reduction order
  // differ between tiers. Scaled ULP bound, loose enough for k up to ~300.
  return sizeof(T) == 4 ? 5e-5 : 1e-13;
}

template <typename T>
void check_gemm_equivalence(blas::Op opa) {
  TierGuard guard;
  for (const auto& s : kGemmShapes) {
    auto a = opa == blas::Op::NoTrans ? random_matrix<T>(s.m, s.k, 31)
                                      : random_matrix<T>(s.k, s.m, 31);
    auto b = random_matrix<T>(s.k, s.n, 32);
    auto c0 = random_matrix<T>(s.m, s.n, 33);

    ASSERT_TRUE(simd::set_tier(simd::Tier::Scalar));
    Matrix<T> ref(s.m, s.n);
    copy(c0.view(), ref.view());
    blas::gemm(opa, blas::Op::NoTrans, T(1.5), a.view(), b.view(), T(1), ref.view());
    const double scale = std::max(1.0, double(frobenius_norm<T>(ref.view())));

    for (simd::Tier t : vector_tiers()) {
      ASSERT_TRUE(simd::set_tier(t));
      Matrix<T> c(s.m, s.n);
      copy(c0.view(), c.view());
      blas::gemm(opa, blas::Op::NoTrans, T(1.5), a.view(), b.view(), T(1), c.view());
      EXPECT_LE(double(difference_norm<T>(ref.view(), c.view())) / scale, rel_tol<T>())
          << simd::tier_name(t) << " m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

TEST(SimdEquivalence, GemmNNDouble) { check_gemm_equivalence<double>(blas::Op::NoTrans); }
TEST(SimdEquivalence, GemmNNFloat) { check_gemm_equivalence<float>(blas::Op::NoTrans); }
TEST(SimdEquivalence, GemmTNDouble) { check_gemm_equivalence<double>(blas::Op::Trans); }
TEST(SimdEquivalence, GemmTNFloat) { check_gemm_equivalence<float>(blas::Op::Trans); }

template <typename T>
void check_level1_equivalence() {
  TierGuard guard;
  for (std::int64_t n : {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100}) {
    auto xm = random_matrix<T>(n, 1, 41);
    auto ym = random_matrix<T>(n, 1, 42);
    const T* x = xm.data();

    ASSERT_TRUE(simd::set_tier(simd::Tier::Scalar));
    std::vector<T> y_ref(static_cast<size_t>(n));
    std::memcpy(y_ref.data(), ym.data(), size_t(n) * sizeof(T));
    blas::axpy(n, T(1.25), x, y_ref.data());
    const T dot_ref = blas::dotc(n, x, ym.data());

    for (simd::Tier t : vector_tiers()) {
      ASSERT_TRUE(simd::set_tier(t));
      std::vector<T> y(static_cast<size_t>(n));
      std::memcpy(y.data(), ym.data(), size_t(n) * sizeof(T));
      blas::axpy(n, T(1.25), x, y.data());
      for (std::int64_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(double(y[size_t(i)] - y_ref[size_t(i)])), rel_tol<T>())
            << simd::tier_name(t) << " n=" << n;
      const T dot = blas::dotc(n, x, ym.data());
      EXPECT_LE(std::abs(double(dot - dot_ref)) / std::max(1.0, std::abs(double(dot_ref))),
                rel_tol<T>())
          << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SimdEquivalence, AxpyDotDouble) { check_level1_equivalence<double>(); }
TEST(SimdEquivalence, AxpyDotFloat) { check_level1_equivalence<float>(); }

template <typename T>
void check_gemv_ger_equivalence() {
  TierGuard guard;
  for (std::int64_t m : {1, 3, 7, 8, 17, 64}) {
    for (std::int64_t n : {1, 2, 3, 4, 5, 9, 12}) {
      auto a0 = random_matrix<T>(m, n, 71);
      auto xm = random_matrix<T>(m, 1, 72);
      auto ym = random_matrix<T>(n, 1, 73);

      ASSERT_TRUE(simd::set_tier(simd::Tier::Scalar));
      std::vector<T> yt_ref(size_t(n), T(0.5));
      blas::gemv_t_acc(m, n, T(1.5), a0.data(), a0.ld(), xm.data(), yt_ref.data());
      Matrix<T> ger_ref(m, n);
      copy(a0.view(), ger_ref.view());
      blas::ger_acc(m, n, T(-2), xm.data(), ym.data(), ger_ref.data(), ger_ref.ld());

      for (simd::Tier t : vector_tiers()) {
        ASSERT_TRUE(simd::set_tier(t));
        std::vector<T> yt(size_t(n), T(0.5));
        blas::gemv_t_acc(m, n, T(1.5), a0.data(), a0.ld(), xm.data(), yt.data());
        for (std::int64_t j = 0; j < n; ++j)
          EXPECT_LE(std::abs(double(yt[size_t(j)] - yt_ref[size_t(j)])), rel_tol<T>())
              << simd::tier_name(t) << " m=" << m << " n=" << n;
        Matrix<T> g(m, n);
        copy(a0.view(), g.view());
        blas::ger_acc(m, n, T(-2), xm.data(), ym.data(), g.data(), g.ld());
        EXPECT_LE(double(difference_norm<T>(ger_ref.view(), g.view())), rel_tol<T>())
            << simd::tier_name(t) << " m=" << m << " n=" << n;
      }
    }
  }
}

TEST(SimdEquivalence, GemvTGerDouble) { check_gemv_ger_equivalence<double>(); }
TEST(SimdEquivalence, GemvTGerFloat) { check_gemv_ger_equivalence<float>(); }

TEST(SimdEquivalence, TrmmAcrossTiers) {
  TierGuard guard;
  using blas::Diag;
  using blas::Op;
  using blas::Side;
  using blas::Uplo;
  for (std::int64_t n : {3, 8, 13}) {
    auto a = random_matrix<double>(n, n, 51);
    auto b0 = random_matrix<double>(n, 5, 52);
    for (Uplo uplo : {Uplo::Upper, Uplo::Lower}) {
      for (Op op : {Op::NoTrans, Op::ConjTrans}) {
        ASSERT_TRUE(simd::set_tier(simd::Tier::Scalar));
        Matrix<double> ref(n, 5);
        copy(b0.view(), ref.view());
        blas::trmm(Side::Left, uplo, op, Diag::Unit, 1.0, a.view(), ref.view());

        Matrix<double> acc_ref(n, 5);
        blas::trmm_acc(uplo, op, Diag::NonUnit, -1.0, a.view(), b0.view(), acc_ref.view());

        for (simd::Tier t : vector_tiers()) {
          ASSERT_TRUE(simd::set_tier(t));
          Matrix<double> bt(n, 5);
          copy(b0.view(), bt.view());
          blas::trmm(Side::Left, uplo, op, Diag::Unit, 1.0, a.view(), bt.view());
          EXPECT_LE(double(difference_norm<double>(ref.view(), bt.view())), 1e-12)
              << simd::tier_name(t) << " n=" << n;

          Matrix<double> acc(n, 5);
          blas::trmm_acc(uplo, op, Diag::NonUnit, -1.0, a.view(), b0.view(), acc.view());
          EXPECT_LE(double(difference_norm<double>(acc_ref.view(), acc.view())), 1e-12)
              << simd::tier_name(t) << " n=" << n;
        }
      }
    }
  }
}

// Full kernels: factor + apply on every tier must agree with the scalar tier
// to accumulation-order tolerance, and each tier must be bitwise-reproducible
// against itself.
template <typename T>
std::vector<T> factor_and_apply(int nb, int ib) {
  auto a1 = random_matrix<T>(nb, nb, 61);
  auto a2 = random_matrix<T>(nb, nb, 62);
  auto c1 = random_matrix<T>(nb, nb, 63);
  auto c2 = random_matrix<T>(nb, nb, 64);
  Matrix<T> t1(ib, nb), t2(ib, nb);

  kernels::geqrt(ib, a1.view(), t1.view());
  kernels::unmqr(kernels::ApplyTrans::ConjTrans, ib, a1.view(), t1.view(), c1.view());
  kernels::tsqrt(ib, a1.view(), a2.view(), t2.view());
  kernels::tsmqr(kernels::ApplyTrans::ConjTrans, ib, a2.view(), t2.view(), c1.view(),
                 c2.view());

  std::vector<T> out;
  out.reserve(size_t(4 * nb * nb));
  for (const auto* m : {&a1, &a2, &c1, &c2})
    for (std::int64_t j = 0; j < m->cols(); ++j)
      for (std::int64_t i = 0; i < m->rows(); ++i) out.push_back((*m)(i, j));
  return out;
}

TEST(SimdEquivalence, KernelFactorizationAcrossTiers) {
  TierGuard guard;
  const int nb = 24, ib = 8;
  ASSERT_TRUE(simd::set_tier(simd::Tier::Scalar));
  auto ref = factor_and_apply<double>(nb, ib);

  for (simd::Tier t : vector_tiers()) {
    ASSERT_TRUE(simd::set_tier(t));
    auto got = factor_and_apply<double>(nb, ib);
    ASSERT_EQ(got.size(), ref.size());
    double err = 0;
    for (size_t i = 0; i < ref.size(); ++i) err = std::max(err, std::abs(got[i] - ref[i]));
    EXPECT_LE(err, 1e-11) << simd::tier_name(t);
  }
}

TEST(SimdDeterminism, EachTierBitwiseReproducible) {
  TierGuard guard;
  const int nb = 24, ib = 8;
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(t));
    auto run1 = factor_and_apply<double>(nb, ib);
    auto run2 = factor_and_apply<double>(nb, ib);
    ASSERT_EQ(run1.size(), run2.size());
    EXPECT_EQ(0, std::memcmp(run1.data(), run2.data(), run1.size() * sizeof(double)))
        << simd::tier_name(t);
  }
}

}  // namespace
}  // namespace tiledqr
