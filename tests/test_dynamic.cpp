// Tests for the dynamic algorithms (Asap, Grasap): the exact Table 4
// oracles, the non-optimality findings of §3.2, and consistency between the
// dynamic engine and the static DAG analysis.
#include <gtest/gtest.h>

#include "paper_oracles.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

TEST(Table4a, Greedy15x3Exact) {
  auto g = dag::build_task_graph(15, 3, trees::greedy_tree(15, 3));
  auto cp = sim::earliest_finish(g);
  EXPECT_EQ(sim::zero_time_table(g, cp), oracles::table4_greedy_15x3());
}

TEST(Table4a, Asap15x3Exact) {
  EXPECT_EQ(sim::simulate_asap(15, 3).zero_time, oracles::table4_asap_15x3());
}

TEST(Table4a, Grasap1Beats15x3Greedy) {
  // Paper: Grasap(1) finishes at 62 while Greedy needs 64. (Our simulator's
  // tie-breaking zeroes one tile, (7,3), at 52 instead of the paper's 56;
  // all other cells and the critical path match.)
  auto grasap = sim::simulate_grasap(15, 3, 1);
  EXPECT_EQ(grasap.critical_path, 62);
  long greedy_cp = sim::critical_path_units(15, 3, trees::greedy_tree(15, 3));
  EXPECT_EQ(greedy_cp, 64);
  EXPECT_LT(grasap.critical_path, greedy_cp);
  // Columns 0 and 1 run Greedy pairings and must match Greedy exactly.
  auto greedy_table = oracles::table4_greedy_15x3();
  for (int i = 0; i < 15; ++i)
    for (int k = 0; k < 2; ++k)
      EXPECT_EQ(grasap.zero_time[size_t(i)][size_t(k)], greedy_table[size_t(i)][size_t(k)])
          << i << "," << k;
}

TEST(Table4a, FifteenByTwoZeroTimesRegression) {
  // The 15 x 2 case of §3.2 ("for a 15 x 2 matrix, Asap is better than
  // Greedy"). The paper prints no table for it; these are our simulator's
  // values, consistent with the narration's checkable part: tiles
  // (13..15, 2) are zeroed at time 22 under Asap, and Asap finishes at 40
  // vs Greedy's 42.
  auto greedy_expected = oracles::expand(
      15, 2,
      {{12}, {10, 42}, {10, 40}, {8, 36}, {8, 34}, {8, 34}, {8, 30}, {6, 28}, {6, 28},
       {6, 28}, {6, 28}, {6, 22}, {6, 22}, {6, 22}});
  auto g = dag::build_task_graph(15, 2, trees::greedy_tree(15, 2));
  auto cp = sim::earliest_finish(g);
  EXPECT_EQ(sim::zero_time_table(g, cp), greedy_expected);
  auto asap_expected = oracles::expand(
      15, 2,
      {{12}, {10, 40}, {10, 36}, {8, 34}, {8, 32}, {8, 30}, {8, 28}, {6, 28}, {6, 26},
       {6, 24}, {6, 24}, {6, 22}, {6, 22}, {6, 22}});
  auto asap = sim::simulate_asap(15, 2);
  EXPECT_EQ(asap.zero_time, asap_expected);
  EXPECT_EQ(asap.zero_time[12][1], 22);  // tiles (13..15, 2) zeroed at 22
  EXPECT_EQ(asap.zero_time[14][1], 22);
}

TEST(Table4a, AsapBeatsGreedyOn15x2) {
  // §3.2: for a 15 x 2 matrix Asap is better than Greedy...
  long asap = sim::simulate_asap(15, 2).critical_path;
  long greedy = sim::critical_path_units(15, 2, trees::greedy_tree(15, 2));
  EXPECT_LT(asap, greedy);
  // ... and for 15 x 3 Greedy is better than Asap: neither is optimal.
  long asap3 = sim::simulate_asap(15, 3).critical_path;
  long greedy3 = sim::critical_path_units(15, 3, trees::greedy_tree(15, 3));
  EXPECT_GT(asap3, greedy3);
}

struct Table4bRow {
  int p, q;
  long greedy;
  long asap;
  bool asap_exact;  // false where our tie-breaking beats the published value
};

class Table4b : public ::testing::TestWithParam<Table4bRow> {};

TEST_P(Table4b, GreedyAndAsapCriticalPaths) {
  auto row = GetParam();
  EXPECT_EQ(sim::critical_path_units(row.p, row.q, trees::greedy_tree(row.p, row.q)),
            row.greedy);
  long asap = sim::simulate_asap(row.p, row.q).critical_path;
  if (row.asap_exact)
    EXPECT_EQ(asap, row.asap);
  else
    EXPECT_LE(asap, row.asap);  // our pairing tie-break does no worse
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table4b,
    ::testing::Values(Table4bRow{16, 16, 310, 310, true}, Table4bRow{32, 16, 360, 402, true},
                      Table4bRow{32, 32, 650, 656, true}, Table4bRow{64, 16, 374, 588, true},
                      Table4bRow{64, 32, 726, 844, true}, Table4bRow{64, 64, 1342, 1354, true},
                      Table4bRow{128, 16, 396, 966, true},
                      Table4bRow{128, 32, 748, 1222, true},
                      // Paper reports 1748; our simulator's tie-breaking
                      // finds 1734 with the same rules.
                      Table4bRow{128, 64, 1452, 1748, false},
                      Table4bRow{128, 128, 2732, 2756, true}),
    [](const auto& inst) {
      return "p" + std::to_string(inst.param.p) + "_q" + std::to_string(inst.param.q);
    });

TEST(Dynamic, GrasapEndpointsMatchGreedyAndAsap) {
  const int p = 12, q = 5;
  // Grasap(0) runs Greedy pairings everywhere.
  auto g0 = sim::simulate_grasap(p, q, 0);
  EXPECT_EQ(g0.critical_path, sim::critical_path_units(p, q, trees::greedy_tree(p, q)));
  // Grasap(q) is Asap.
  auto gq = sim::simulate_grasap(p, q, q);
  auto asap = sim::simulate_asap(p, q);
  EXPECT_EQ(gq.critical_path, asap.critical_path);
  EXPECT_EQ(gq.zero_time, asap.zero_time);
}

TEST(Dynamic, ProducedListsAreValid) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{5, 2}, {15, 3}, {20, 8}, {9, 9}}) {
    auto asap = sim::simulate_asap(p, q);
    auto v = trees::validate_elimination_list(p, q, asap.list);
    EXPECT_TRUE(v.ok) << p << "x" << q << ": " << v.message;
    auto grasap = sim::simulate_grasap(p, q, std::min(2, q));
    v = trees::validate_elimination_list(p, q, grasap.list);
    EXPECT_TRUE(v.ok) << p << "x" << q << ": " << v.message;
  }
}

TEST(Dynamic, RealizedAsapListReplaysToSameCriticalPath) {
  // Feeding the realized Asap list back through the static DAG must give
  // the same critical path (the dynamic engine is an online DAG builder).
  for (auto [p, q] : std::vector<std::pair<int, int>>{{15, 2}, {15, 3}, {20, 6}}) {
    auto asap = sim::simulate_asap(p, q);
    EXPECT_EQ(sim::critical_path_units(p, q, asap.list), asap.critical_path) << p << "x" << q;
  }
}

TEST(Dynamic, SimulateFixedMatchesStaticAnalysis) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{8, 3}, {15, 6}, {24, 8}}) {
    auto list = trees::greedy_tree(p, q);
    auto fixed = sim::simulate_fixed(p, q, list);
    EXPECT_EQ(fixed.critical_path, sim::critical_path_units(p, q, list)) << p << "x" << q;
    auto list2 = trees::binary_tree(p, q);
    auto fixed2 = sim::simulate_fixed(p, q, list2);
    EXPECT_EQ(fixed2.critical_path, sim::critical_path_units(p, q, list2)) << p << "x" << q;
  }
}

TEST(Dynamic, AsapZeroTimesAreMonotoneAcrossColumns) {
  auto asap = sim::simulate_asap(18, 7);
  for (int i = 1; i < 18; ++i)
    for (int k = 1; k < std::min(i, 7); ++k)
      EXPECT_LT(asap.zero_time[size_t(i)][size_t(k - 1)], asap.zero_time[size_t(i)][size_t(k)]);
}

TEST(Dynamic, RejectsTsListsInFixedMode) {
  auto ts = trees::flat_tree(6, 2, trees::KernelFamily::TS);
  EXPECT_THROW((void)sim::simulate_fixed(6, 2, ts), Error);
}

}  // namespace
}  // namespace tiledqr
