// End-to-end factorization tests: every algorithm x kernel family x matrix
// shape x scalar type, on sequential and threaded runtimes. Checks
// ||A - QR|| / ||A||, Q^H Q = I, R upper triangular, and determinism.
#include <gtest/gtest.h>

#include <complex>

#include "core/tiled_qr.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::TiledQr;
using kernels::ApplyTrans;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

template <typename T>
struct Tolerance {
  static constexpr double value = 1e-11;
};

/// Relative residual ||A - Q R||_F / ||A||_F with Q formed explicitly.
template <typename T>
double factorization_residual(const Matrix<T>& a, const TiledQr<T>& qr) {
  auto q = qr.q_thin();
  auto r = qr.r_factor();
  Matrix<T> prod(a.rows(), a.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), q.view(), r.view(), T(0), prod.view());
  return double(difference_norm<T>(a.view(), prod.view()) / frobenius_norm<T>(a.view()));
}

struct AlgoCase {
  TreeConfig tree;
  const char* label;
};

class FactorizationAlgos : public ::testing::TestWithParam<AlgoCase> {};

template <typename T>
void check_full(const TreeConfig& tree, std::int64_t m, std::int64_t n, int nb, int ib,
                int threads) {
  Options opt;
  opt.tree = tree;
  opt.nb = nb;
  opt.ib = ib;
  opt.threads = threads;
  auto a = random_matrix<T>(m, n, 97);
  auto qr = TiledQr<T>::factorize(a.view(), opt);
  EXPECT_LE(factorization_residual(a, qr), Tolerance<T>::value) << tree.name();
  auto q = qr.q_thin();
  EXPECT_LE(double(orthogonality_error<T>(q.view())), Tolerance<T>::value) << tree.name();
  auto r = qr.r_factor();
  EXPECT_EQ(double(below_diagonal_max<T>(r.view())), 0.0) << tree.name();
}

TEST_P(FactorizationAlgos, TallDouble) {
  check_full<double>(GetParam().tree, 48, 16, 8, 4, 2);
}
TEST_P(FactorizationAlgos, TallComplex) {
  check_full<std::complex<double>>(GetParam().tree, 48, 16, 8, 4, 2);
}
TEST_P(FactorizationAlgos, SquareDouble) {
  check_full<double>(GetParam().tree, 32, 32, 8, 8, 4);
}
TEST_P(FactorizationAlgos, RaggedSizesDouble) {
  // Non-multiples of nb exercise the zero-padding path.
  check_full<double>(GetParam().tree, 45, 13, 8, 3, 2);
}
TEST_P(FactorizationAlgos, SingleTileColumnDouble) {
  check_full<double>(GetParam().tree, 56, 7, 7, 7, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, FactorizationAlgos,
    ::testing::Values(
        AlgoCase{{TreeKind::FlatTree, KernelFamily::TT, 1, 0}, "flat_tt"},
        AlgoCase{{TreeKind::FlatTree, KernelFamily::TS, 1, 0}, "flat_ts"},
        AlgoCase{{TreeKind::BinaryTree, KernelFamily::TT, 1, 0}, "binary"},
        AlgoCase{{TreeKind::Fibonacci, KernelFamily::TT, 1, 0}, "fibonacci"},
        AlgoCase{{TreeKind::Greedy, KernelFamily::TT, 1, 0}, "greedy"},
        AlgoCase{{TreeKind::PlasmaTree, KernelFamily::TT, 2, 0}, "plasma_tt_bs2"},
        AlgoCase{{TreeKind::PlasmaTree, KernelFamily::TS, 3, 0}, "plasma_ts_bs3"},
        AlgoCase{{TreeKind::Asap, KernelFamily::TT, 1, 0}, "asap"},
        AlgoCase{{TreeKind::Grasap, KernelFamily::TT, 1, 1}, "grasap1"}),
    [](const auto& inst) { return std::string(inst.param.label); });

TEST(Factorization, MatchesReferenceRDiagonal) {
  const int m = 40, n = 24, nb = 8;
  auto a = random_matrix<double>(m, n, 5);
  Options opt;
  opt.nb = nb;
  opt.ib = 4;
  opt.threads = 2;
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  auto ref = kernels::reference_qr<double>(a.view());
  auto r = qr.r_factor();
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(r(i, i)), std::abs(ref.vr(i, i)), 1e-11) << i;
}

TEST(Factorization, DeterministicAcrossThreadCounts) {
  const int m = 64, n = 32, nb = 8;
  auto a = random_matrix<double>(m, n, 31);
  Options opt;
  opt.nb = nb;
  opt.ib = 4;
  opt.threads = 1;
  auto qr1 = TiledQr<double>::factorize(a.view(), opt);
  opt.threads = 8;
  auto qr8 = TiledQr<double>::factorize(a.view(), opt);
  // Dataflow execution makes results bitwise identical for any thread count.
  auto d1 = qr1.factors().to_dense();
  auto d8 = qr8.factors().to_dense();
  EXPECT_EQ(difference_norm<double>(d1.view(), d8.view()), 0.0);
}

TEST(Factorization, TinyMatrices) {
  for (auto [m, n] : std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {3, 3}, {5, 2}}) {
    Options opt;
    opt.nb = 2;
    opt.ib = 2;
    opt.threads = 1;
    auto a = random_matrix<double>(m, n, 7);
    auto qr = TiledQr<double>::factorize(a.view(), opt);
    EXPECT_LE(factorization_residual(a, qr), 1e-12) << m << "x" << n;
  }
}

TEST(Factorization, SingularMatrixStillFactorizes) {
  // Rank-deficient input: QR is still well-defined (R with zero rows).
  const int m = 24, n = 12;
  auto a = random_matrix<double>(m, n, 11);
  for (int i = 0; i < m; ++i) a(i, 3) = a(i, 2);  // duplicate column
  Options opt;
  opt.nb = 6;
  opt.ib = 3;
  opt.threads = 2;
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  EXPECT_LE(factorization_residual(a, qr), 1e-12);
}

TEST(Factorization, IdentityInputGivesIdentityR) {
  const int n = 16;
  auto eye = Matrix<double>::identity(n);
  Options opt;
  opt.nb = 4;
  opt.ib = 2;
  opt.threads = 1;
  auto qr = TiledQr<double>::factorize(eye.view(), opt);
  auto r = qr.r_factor();
  for (int i = 0; i < n; ++i) EXPECT_NEAR(std::abs(r(i, i)), 1.0, 1e-13);
}

TEST(Factorization, LargeIbClampedToNb) {
  Options opt;
  opt.nb = 6;
  opt.ib = 64;  // larger than nb: kernels clamp per-panel widths
  opt.threads = 2;
  auto a = random_matrix<double>(30, 12, 13);
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  EXPECT_LE(factorization_residual(a, qr), 1e-12);
}

TEST(Factorization, FloatPrecision) {
  Options opt;
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 2;
  auto a = random_matrix<float>(40, 16, 17);
  auto qr = TiledQr<float>::factorize(a.view(), opt);
  auto q = qr.q_thin();
  EXPECT_LE(double(orthogonality_error<float>(q.view())), 1e-4);
}

}  // namespace
}  // namespace tiledqr
