// Tests for the dataflow executor: ordering guarantees, thread scaling,
// determinism, and failure injection.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "runtime/executor.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

dag::TaskGraph small_graph() {
  return dag::build_task_graph(10, 4, trees::greedy_tree(10, 4));
}

TEST(Executor, RunsEveryTaskExactlyOnce) {
  auto g = small_graph();
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> count(g.tasks.size());
    for (auto& c : count) c.store(0);
    runtime::execute(
        g, [&](std::int32_t t) { count[size_t(t)].fetch_add(1); }, threads);
    for (size_t t = 0; t < g.tasks.size(); ++t)
      EXPECT_EQ(count[t].load(), 1) << "task " << t << " threads " << threads;
  }
}

TEST(Executor, RespectsDependenciesUnderConcurrency) {
  auto g = small_graph();
  std::vector<std::atomic<bool>> done(g.tasks.size());
  for (auto& d : done) d.store(false);
  std::atomic<bool> violation{false};
  runtime::execute(
      g,
      [&](std::int32_t t) {
        // All predecessors must have completed. Scan via successor lists:
        // cheaper to check when marking done, so check here that no
        // successor has run yet.
        for (auto s : g.tasks[size_t(t)].succ)
          if (done[size_t(s)].load()) violation.store(true);
        done[size_t(t)].store(true);
      },
      8);
  EXPECT_FALSE(violation.load());
}

TEST(Executor, SequentialEmissionPriorityIsEmissionOrder) {
  auto g = small_graph();
  std::vector<std::int32_t> order;
  runtime::execute(
      g, [&](std::int32_t t) { order.push_back(t); }, 1,
      runtime::SchedulePriority::EmissionOrder);
  // Emission order is itself topological, and emission-priority makes the
  // 1-thread schedule exactly that order.
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], std::int32_t(i));
}

TEST(Executor, CriticalPathPriorityIsTopological) {
  auto g = small_graph();
  std::vector<std::int32_t> order;
  runtime::execute(
      g, [&](std::int32_t t) { order.push_back(t); }, 1,
      runtime::SchedulePriority::CriticalPath);
  std::vector<bool> seen(g.tasks.size(), false);
  for (auto t : order) {
    for (auto s : g.tasks[size_t(t)].succ) EXPECT_FALSE(seen[size_t(s)]);
    seen[size_t(t)] = true;
  }
  EXPECT_EQ(order.size(), g.tasks.size());
}

TEST(Executor, DownwardRanksAreConsistent) {
  auto g = small_graph();
  auto rank = runtime::downward_ranks(g);
  long cp = 0;
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    cp = std::max(cp, rank[t]);
    for (auto s : g.tasks[t].succ)
      EXPECT_GE(rank[t], rank[size_t(s)] + g.tasks[t].weight());
  }
  // The max downward rank is the critical path length.
  EXPECT_GT(cp, 0);
}

TEST(Executor, PropagatesExceptions) {
  auto g = small_graph();
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        runtime::execute(
            g,
            [&](std::int32_t t) {
              if (t == 5) throw Error("injected failure");
            },
            threads),
        Error)
        << threads;
  }
}

TEST(Executor, SurvivesRepeatedUse) {
  auto g = small_graph();
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> sum{0};
    runtime::execute(
        g, [&](std::int32_t t) { sum.fetch_add(t); }, 4);
    long expect = long(g.tasks.size()) * long(g.tasks.size() - 1) / 2;
    EXPECT_EQ(sum.load(), expect);
  }
}

TEST(Executor, EmptyGraphIsNoOp) {
  dag::TaskGraph g;
  g.p = g.q = 0;
  int calls = 0;
  runtime::execute(
      g, [&](std::int32_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
}

TEST(Executor, InvalidThreadCountThrows) {
  auto g = small_graph();
  EXPECT_THROW(runtime::execute(g, [](std::int32_t) {}, 0), Error);
}

TEST(Executor, TimedWrapperReportsTasks) {
  auto g = small_graph();
  auto stats = runtime::execute_timed(g, [](std::int32_t) {}, 2);
  EXPECT_EQ(stats.tasks, long(g.tasks.size()));
  EXPECT_GE(stats.seconds, 0.0);
}

}  // namespace
}  // namespace tiledqr
