// Isolated tests for the Chase–Lev work-stealing deque underneath the
// ThreadPool's lanes: owner LIFO order, thief FIFO order, growth, the
// steal-vs-pop race on the last element, and a seeded multi-thread stress
// run (widened under TILEDQR_STRESS; runs in the nightly TSan workflow via
// the `stress` ctest label).
#include <atomic>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/chase_lev.hpp"

namespace {

using tiledqr::runtime::ChaseLevDeque;
using Deque = ChaseLevDeque<int>;
using Entry = Deque::Entry;
using Steal = Deque::Steal;

bool stress_mode() {
  const char* v = std::getenv("TILEDQR_STRESS");
  return v && *v && *v != '0';
}

TEST(ChaseLev, OwnerPopsLifo) {
  Deque d;
  int payload[8];
  for (int i = 0; i < 8; ++i) d.push(Entry{&payload[i], i});
  EXPECT_EQ(d.size(), 8);
  for (int i = 7; i >= 0; --i) {
    Entry e;
    ASSERT_TRUE(d.pop(e));
    EXPECT_EQ(e.ptr, &payload[i]);
    EXPECT_EQ(e.tag, i);
  }
  Entry e;
  EXPECT_FALSE(d.pop(e));
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, ThiefStealsFifo) {
  Deque d;
  int payload[8];
  for (int i = 0; i < 8; ++i) d.push(Entry{&payload[i], i});
  for (int i = 0; i < 8; ++i) {
    Entry e;
    ASSERT_EQ(d.steal(e), Steal::Ok);  // no contention: single thread
    EXPECT_EQ(e.ptr, &payload[i]);
    EXPECT_EQ(e.tag, i);
  }
  Entry e;
  EXPECT_EQ(d.steal(e), Steal::Empty);
}

TEST(ChaseLev, GrowthPreservesOrderAndInterleavesWithPops) {
  // Start tiny so pushes cross several growth boundaries; interleave pops so
  // the live range wraps the circular array before growing.
  Deque d(/*capacity=*/2);
  int payload[1];
  int next_push = 0, next_pop_expect = -1;
  std::vector<int> popped;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) d.push(Entry{payload, next_push++});
    for (int i = 0; i < 3; ++i) {
      Entry e;
      ASSERT_TRUE(d.pop(e));
      popped.push_back(e.tag);
    }
  }
  // LIFO within each round: the three pops of round r are the last three
  // pushes of round r, descending.
  for (int round = 0; round < 50; ++round) {
    const int top = (round + 1) * 7 - 1;
    for (int i = 0; i < 3; ++i) EXPECT_EQ(popped[size_t(round * 3 + i)], top - i);
  }
  // Remainder steals out FIFO: ascending over everything never popped.
  std::vector<bool> taken(size_t(next_push), false);
  for (int t : popped) taken[size_t(t)] = true;
  int last = next_pop_expect;
  for (;;) {
    Entry e;
    const auto r = d.steal(e);
    if (r == Steal::Empty) break;
    ASSERT_EQ(r, Steal::Ok);
    EXPECT_GT(e.tag, last);
    EXPECT_FALSE(taken[size_t(e.tag)]);
    taken[size_t(e.tag)] = true;
    last = e.tag;
  }
  for (bool t : taken) EXPECT_TRUE(t);
}

TEST(ChaseLev, LastElementRaceHandsItemToExactlyOneSide) {
  // One item, one owner popping, one thief stealing, repeated: every round
  // exactly one side must win it, and the loser must observe a miss (false /
  // Empty / Lost), never a duplicate.
  const int rounds = stress_mode() ? 20000 : 2000;
  Deque d;
  int payload[1];
  std::atomic<int> owner_got{0}, thief_got{0};
  std::atomic<int> round_flag{0};  // 0 = idle, 1 = armed, 2 = thief done
  std::atomic<bool> stop{false};

  std::thread thief([&] {
    for (;;) {
      while (round_flag.load(std::memory_order_acquire) != 1) {
        if (stop.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      for (;;) {
        Entry e;
        const auto r = d.steal(e);
        if (r == Steal::Ok) {
          thief_got.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (r == Steal::Empty) break;  // owner won (Lost retries: owner CAS'd)
      }
      round_flag.store(2, std::memory_order_release);
    }
  });

  for (int r = 0; r < rounds; ++r) {
    d.push(Entry{payload, r});
    round_flag.store(1, std::memory_order_release);
    Entry e;
    if (d.pop(e)) {
      EXPECT_EQ(e.tag, r);
      owner_got.fetch_add(1, std::memory_order_relaxed);
    }
    while (round_flag.load(std::memory_order_acquire) != 2) std::this_thread::yield();
    // Both sides done: the deque must be empty and the item taken once.
    EXPECT_TRUE(d.empty());
    ASSERT_EQ(owner_got.load() + thief_got.load(), r + 1) << "round " << r;
    round_flag.store(0, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(owner_got.load() + thief_got.load(), rounds);
}

TEST(ChaseLevStress, SeededOwnerVsManyThieves) {
  // Owner pushes/pops a seeded workload while several thieves hammer steal;
  // every pushed tag must be consumed exactly once across all threads.
  const int total = stress_mode() ? 200000 : 20000;
  const int nthieves = stress_mode() ? 4 : 2;
  Deque d(/*capacity=*/4);  // force growth under contention
  int payload[1];
  std::vector<std::vector<int>> stolen(static_cast<size_t>(nthieves));
  std::vector<int> popped;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < nthieves; ++t)
    thieves.emplace_back([&, t] {
      std::minstd_rand rng(unsigned(1234 + t));
      while (!done.load(std::memory_order_acquire)) {
        Entry e;
        if (d.steal(e) == Steal::Ok) stolen[size_t(t)].push_back(e.tag);
        if ((rng() & 7u) == 0) std::this_thread::yield();
      }
      // Final sweep: drain anything left after the owner stopped.
      for (;;) {
        Entry e;
        const auto r = d.steal(e);
        if (r == Steal::Ok)
          stolen[size_t(t)].push_back(e.tag);
        else if (r == Steal::Empty)
          break;
      }
    });

  std::minstd_rand rng(42);
  int next = 0;
  while (next < total) {
    // Bursty pushes and intermittent pops, seeded: same schedule every run.
    const int burst = 1 + int(rng() % 16u);
    for (int i = 0; i < burst && next < total; ++i) d.push(Entry{payload, next++});
    const int pops = int(rng() % 8u);
    for (int i = 0; i < pops; ++i) {
      Entry e;
      if (d.pop(e)) popped.push_back(e.tag);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  // The owner does NOT drain: the thieves' final sweeps must account for the
  // remainder, proving steal() alone empties the deque.
  std::vector<int> seen(size_t(total), 0);
  for (int t : popped) ++seen[size_t(t)];
  for (const auto& v : stolen)
    for (int t : v) ++seen[size_t(t)];
  for (int t = 0; t < total; ++t) ASSERT_EQ(seen[size_t(t)], 1) << "tag " << t;
}

}  // namespace
