// Tests for the bounded-processor list-scheduling simulator.
#include <gtest/gtest.h>

#include "sim/bounded.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

TEST(Bounded, OneWorkerEqualsTotalWeight) {
  auto g = dag::build_task_graph(10, 4, trees::greedy_tree(10, 4));
  auto r = sim::simulate_bounded(g, 1);
  EXPECT_EQ(r.makespan, g.total_weight());
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Bounded, ManyWorkersReachCriticalPath) {
  auto g = dag::build_task_graph(12, 5, trees::greedy_tree(12, 5));
  long cp = sim::earliest_finish(g).critical_path;
  auto r = sim::simulate_bounded(g, int(g.tasks.size()));
  EXPECT_EQ(r.makespan, cp);
}

TEST(Bounded, MakespanMonotoneInWorkers) {
  auto g = dag::build_task_graph(14, 6, trees::fibonacci_tree(14, 6));
  long prev = -1;
  for (int w : {1, 2, 3, 4, 8, 16, 64}) {
    auto r = sim::simulate_bounded(g, w);
    if (prev >= 0) {
      EXPECT_LE(r.makespan, prev) << w;
    }
    prev = r.makespan;
    // Graham bound for list scheduling: makespan <= T/P + cp.
    long cp = sim::earliest_finish(g).critical_path;
    EXPECT_LE(r.makespan, (g.total_weight() + w - 1) / w + cp) << w;
    EXPECT_GE(r.makespan, std::max(cp, (g.total_weight() + w - 1) / w)) << w;
  }
}

TEST(Bounded, StartTimesRespectDependencies) {
  auto g = dag::build_task_graph(8, 3, trees::binary_tree(8, 3));
  auto r = sim::simulate_bounded(g, 3);
  for (size_t t = 0; t < g.tasks.size(); ++t)
    for (auto s : g.tasks[t].succ)
      EXPECT_GE(r.start[size_t(s)], r.start[t] + g.tasks[t].weight());
}

TEST(Bounded, WeightedVariantConsistent) {
  auto g = dag::build_task_graph(9, 4, trees::greedy_tree(9, 4));
  std::array<double, 6> w{4, 6, 6, 12, 2, 6};
  EXPECT_DOUBLE_EQ(sim::simulate_bounded_weighted(g, 4, w),
                   double(sim::simulate_bounded(g, 4).makespan));
}

TEST(Bounded, CriticalPathPriorityIsValidSchedule) {
  auto g = dag::build_task_graph(14, 6, trees::greedy_tree(14, 6));
  long cp = sim::earliest_finish(g).critical_path;
  for (int w : {1, 2, 4, 8, 24}) {
    auto r = sim::simulate_bounded(g, w, sim::SimPriority::CriticalPath);
    EXPECT_GE(r.makespan, std::max(cp, (g.total_weight() + w - 1) / w)) << w;
    EXPECT_LE(r.makespan, (g.total_weight() + w - 1) / w + cp) << w;
    for (size_t t = 0; t < g.tasks.size(); ++t)
      for (auto s : g.tasks[t].succ)
        ASSERT_GE(r.start[size_t(s)], r.start[t] + g.tasks[t].weight());
  }
  // Both priorities converge to the critical path with enough workers.
  EXPECT_EQ(sim::simulate_bounded(g, int(g.tasks.size()), sim::SimPriority::CriticalPath)
                .makespan,
            cp);
}

TEST(Bounded, CriticalPathPriorityHelpsInCpBoundRegime) {
  // On a tall grid with a mid-size worker pool, prioritizing the critical
  // path should not hurt (and usually helps) vs emission order.
  auto g = dag::build_task_graph(32, 4, trees::greedy_tree(32, 4));
  for (int w : {4, 8}) {
    auto emission = sim::simulate_bounded(g, w, sim::SimPriority::EmissionOrder);
    auto critical = sim::simulate_bounded(g, w, sim::SimPriority::CriticalPath);
    EXPECT_LE(critical.makespan, emission.makespan + emission.makespan / 10) << w;
  }
}

TEST(Bounded, InvalidWorkerCountThrows) {
  auto g = dag::build_task_graph(4, 2, trees::greedy_tree(4, 2));
  EXPECT_THROW((void)sim::simulate_bounded(g, 0), Error);
}

}  // namespace
}  // namespace tiledqr
