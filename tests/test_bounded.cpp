// Tests for the bounded-processor list-scheduling simulator.
#include <gtest/gtest.h>

#include "sim/bounded.hpp"
#include "sim/critical_path.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

TEST(Bounded, OneWorkerEqualsTotalWeight) {
  auto g = dag::build_task_graph(10, 4, trees::greedy_tree(10, 4));
  auto r = sim::simulate_bounded(g, 1);
  EXPECT_EQ(r.makespan, g.total_weight());
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Bounded, ManyWorkersReachCriticalPath) {
  auto g = dag::build_task_graph(12, 5, trees::greedy_tree(12, 5));
  long cp = sim::earliest_finish(g).critical_path;
  auto r = sim::simulate_bounded(g, int(g.tasks.size()));
  EXPECT_EQ(r.makespan, cp);
}

TEST(Bounded, MakespanMonotoneInWorkers) {
  auto g = dag::build_task_graph(14, 6, trees::fibonacci_tree(14, 6));
  long prev = -1;
  for (int w : {1, 2, 3, 4, 8, 16, 64}) {
    auto r = sim::simulate_bounded(g, w);
    if (prev >= 0) {
      EXPECT_LE(r.makespan, prev) << w;
    }
    prev = r.makespan;
    // Graham bound for list scheduling: makespan <= T/P + cp.
    long cp = sim::earliest_finish(g).critical_path;
    EXPECT_LE(r.makespan, (g.total_weight() + w - 1) / w + cp) << w;
    EXPECT_GE(r.makespan, std::max(cp, (g.total_weight() + w - 1) / w)) << w;
  }
}

TEST(Bounded, StartTimesRespectDependencies) {
  auto g = dag::build_task_graph(8, 3, trees::binary_tree(8, 3));
  auto r = sim::simulate_bounded(g, 3);
  for (size_t t = 0; t < g.tasks.size(); ++t)
    for (auto s : g.tasks[t].succ)
      EXPECT_GE(r.start[size_t(s)], r.start[t] + g.tasks[t].weight());
}

TEST(Bounded, WeightedVariantConsistent) {
  auto g = dag::build_task_graph(9, 4, trees::greedy_tree(9, 4));
  std::array<double, 6> w{4, 6, 6, 12, 2, 6};
  auto weighted = sim::simulate_bounded_weighted(g, 4, w);
  auto unit = sim::simulate_bounded(g, 4);
  EXPECT_DOUBLE_EQ(weighted.makespan, double(unit.makespan));
  EXPECT_DOUBLE_EQ(weighted.utilization, unit.utilization);
  ASSERT_EQ(weighted.start.size(), g.tasks.size());
  ASSERT_EQ(weighted.worker.size(), g.tasks.size());
  for (size_t t = 0; t < g.tasks.size(); ++t) {
    EXPECT_DOUBLE_EQ(weighted.start[t], double(unit.start[t]));
    EXPECT_EQ(weighted.worker[t], unit.worker[t]);
  }
}

TEST(Bounded, WeightedScheduleRespectsDependencies) {
  auto g = dag::build_task_graph(10, 3, trees::fibonacci_tree(10, 3));
  std::array<double, 6> w{0.4, 0.6, 0.6, 1.2, 0.2, 0.6};
  for (auto prio : {sim::SimPriority::EmissionOrder, sim::SimPriority::CriticalPath}) {
    auto r = sim::simulate_bounded_weighted(g, 3, w, prio);
    for (size_t t = 0; t < g.tasks.size(); ++t)
      for (auto s : g.tasks[t].succ)
        EXPECT_GE(r.start[size_t(s)], r.start[t] + w[size_t(g.tasks[t].kind)] - 1e-12);
  }
}

/// A hand-built DAG with a known makespan gap between the two priorities:
/// eight independent GEQRT tasks (weight 4) emitted first, then a five-task
/// GEQRT chain. On two workers, emission order drains the independents
/// before touching the chain (8*4/2 = 16, then the serial chain, 16 + 20 =
/// 36); critical-path priority starts the chain immediately and overlaps the
/// independents with it (chain done at 20; the eight independents fill the
/// other worker's slots: five alongside the chain, then both workers on the
/// last three, makespan 28).
TEST(Bounded, PriorityOrderingOnKnownDag) {
  dag::TaskGraph g;
  g.p = 13;
  g.q = 1;
  auto add_task = [&](std::int32_t npred) {
    dag::Task t{kernels::KernelKind::GEQRT, std::int32_t(g.tasks.size()), -1, 0, -1, npred, {}};
    g.tasks.push_back(std::move(t));
    return std::int32_t(g.tasks.size()) - 1;
  };
  for (int i = 0; i < 8; ++i) add_task(0);
  std::int32_t prev = add_task(0);
  for (int i = 1; i < 5; ++i) {
    std::int32_t next = add_task(1);
    g.tasks[size_t(prev)].succ.push_back(next);
    prev = next;
  }

  auto emission = sim::simulate_bounded(g, 2, sim::SimPriority::EmissionOrder);
  auto critical = sim::simulate_bounded(g, 2, sim::SimPriority::CriticalPath);
  EXPECT_EQ(emission.makespan, 36);
  EXPECT_EQ(critical.makespan, 28);
  EXPECT_LT(critical.makespan, emission.makespan);

  // The weighted simulator agrees once the per-task time is halved (Table-1
  // GEQRT weight is 4; the weighted variant takes seconds per call).
  std::array<double, 6> w{};
  w[size_t(kernels::KernelKind::GEQRT)] = 2.0;
  EXPECT_DOUBLE_EQ(
      sim::simulate_bounded_weighted(g, 2, w, sim::SimPriority::EmissionOrder).makespan, 18.0);
  EXPECT_DOUBLE_EQ(
      sim::simulate_bounded_weighted(g, 2, w, sim::SimPriority::CriticalPath).makespan, 14.0);
}

TEST(Bounded, CriticalPathPriorityIsValidSchedule) {
  auto g = dag::build_task_graph(14, 6, trees::greedy_tree(14, 6));
  long cp = sim::earliest_finish(g).critical_path;
  for (int w : {1, 2, 4, 8, 24}) {
    auto r = sim::simulate_bounded(g, w, sim::SimPriority::CriticalPath);
    EXPECT_GE(r.makespan, std::max(cp, (g.total_weight() + w - 1) / w)) << w;
    EXPECT_LE(r.makespan, (g.total_weight() + w - 1) / w + cp) << w;
    for (size_t t = 0; t < g.tasks.size(); ++t)
      for (auto s : g.tasks[t].succ)
        ASSERT_GE(r.start[size_t(s)], r.start[t] + g.tasks[t].weight());
  }
  // Both priorities converge to the critical path with enough workers.
  EXPECT_EQ(sim::simulate_bounded(g, int(g.tasks.size()), sim::SimPriority::CriticalPath)
                .makespan,
            cp);
}

TEST(Bounded, CriticalPathPriorityHelpsInCpBoundRegime) {
  // On a tall grid with a mid-size worker pool, prioritizing the critical
  // path should not hurt (and usually helps) vs emission order.
  auto g = dag::build_task_graph(32, 4, trees::greedy_tree(32, 4));
  for (int w : {4, 8}) {
    auto emission = sim::simulate_bounded(g, w, sim::SimPriority::EmissionOrder);
    auto critical = sim::simulate_bounded(g, w, sim::SimPriority::CriticalPath);
    EXPECT_LE(critical.makespan, emission.makespan + emission.makespan / 10) << w;
  }
}

TEST(Bounded, InvalidWorkerCountThrows) {
  auto g = dag::build_task_graph(4, 2, trees::greedy_tree(4, 2));
  EXPECT_THROW((void)sim::simulate_bounded(g, 0), Error);
}

}  // namespace
}  // namespace tiledqr
