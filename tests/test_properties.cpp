// Cross-cutting property tests over (p, q) sweeps: invariants that must hold
// for every algorithm of the zoo simultaneously.
#include <gtest/gtest.h>

#include <cmath>

#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using trees::EliminationList;
using trees::KernelFamily;

struct Sweep {
  int p, q;
};

class PropertySweep : public ::testing::TestWithParam<Sweep> {
 protected:
  /// Every static algorithm under test (TT-kernel lists only where needed).
  static std::vector<std::pair<std::string, EliminationList>> tt_lists(int p, int q) {
    std::vector<std::pair<std::string, EliminationList>> lists;
    lists.emplace_back("flat", trees::flat_tree(p, q, KernelFamily::TT));
    lists.emplace_back("binary", trees::binary_tree(p, q));
    lists.emplace_back("fibonacci", trees::fibonacci_tree(p, q));
    lists.emplace_back("greedy", trees::greedy_tree(p, q));
    for (int bs : {2, 5, (p + 1) / 2})
      if (bs >= 1)
        lists.emplace_back("plasma" + std::to_string(bs),
                           trees::plasma_tree(p, q, bs, KernelFamily::TT));
    return lists;
  }
};

TEST_P(PropertySweep, DynamicFixedEngineAgreesWithStaticAnalysis) {
  auto [p, q] = GetParam();
  for (const auto& [name, list] : tt_lists(p, q)) {
    auto dyn = sim::simulate_fixed(p, q, list);
    EXPECT_EQ(dyn.critical_path, sim::critical_path_units(p, q, list))
        << name << " " << p << "x" << q;
  }
}

TEST_P(PropertySweep, ZeroTimesStrictlyIncreaseAlongRows) {
  auto [p, q] = GetParam();
  for (const auto& [name, list] : tt_lists(p, q)) {
    auto g = dag::build_task_graph(p, q, list);
    auto cp = sim::earliest_finish(g);
    auto z = sim::zero_time_table(g, cp);
    for (int i = 1; i < p; ++i)
      for (int k = 1; k < std::min(i, q); ++k)
        EXPECT_LT(z[size_t(i)][size_t(k - 1)], z[size_t(i)][size_t(k)])
            << name << " tile (" << i << "," << k << ")";
  }
}

TEST_P(PropertySweep, EdgesAlwaysPointForward) {
  auto [p, q] = GetParam();
  for (const auto& [name, list] : tt_lists(p, q)) {
    auto g = dag::build_task_graph(p, q, list);
    for (size_t t = 0; t < g.tasks.size(); ++t)
      for (auto s : g.tasks[t].succ) ASSERT_GT(size_t(s), t) << name;
  }
}

TEST_P(PropertySweep, GeneratorsAreDeterministic) {
  auto [p, q] = GetParam();
  EXPECT_EQ(trees::greedy_tree(p, q), trees::greedy_tree(p, q));
  EXPECT_EQ(trees::fibonacci_tree(p, q), trees::fibonacci_tree(p, q));
  auto a1 = sim::simulate_asap(p, q);
  auto a2 = sim::simulate_asap(p, q);
  EXPECT_EQ(a1.list, a2.list);
  EXPECT_EQ(a1.critical_path, a2.critical_path);
}

TEST_P(PropertySweep, RemoveReverseEliminationsIsIdempotentOnGenerators) {
  auto [p, q] = GetParam();
  for (const auto& [name, list] : tt_lists(p, q)) {
    auto same = trees::remove_reverse_eliminations(p, q, list);
    EXPECT_EQ(same, list) << name;  // generators never produce reverse elims
  }
}

TEST_P(PropertySweep, GreedyCriticalPathIsBestAmongStaticTrees) {
  // Not a theorem (Asap can beat Greedy), but it holds against every static
  // tree in the zoo across this sweep -- the paper's Table 5 claim.
  auto [p, q] = GetParam();
  long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
  for (const auto& [name, list] : tt_lists(p, q))
    EXPECT_LE(greedy, sim::critical_path_units(p, q, list)) << name;
}

TEST_P(PropertySweep, CoarseSchedulesAreConsistentWithLists) {
  auto [p, q] = GetParam();
  for (auto* sched : {&trees::coarse_sameh_kuck, &trees::coarse_fibonacci,
                      &trees::coarse_greedy, &trees::coarse_binary}) {
    auto s = (*sched)(p, q);
    auto v = trees::validate_elimination_list(p, q, s.list);
    EXPECT_TRUE(v.ok) << v.message;
    // step table covers exactly the sub-diagonal tiles.
    for (int i = 0; i < p; ++i)
      for (int k = 0; k < q; ++k) {
        bool below = i > k && k < std::min(p, q);
        EXPECT_EQ(s.step[size_t(i)][size_t(k)] > 0, below) << i << "," << k;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PropertySweep,
                         ::testing::Values(Sweep{2, 2}, Sweep{4, 2}, Sweep{7, 3}, Sweep{8, 8},
                                           Sweep{13, 5}, Sweep{15, 6}, Sweep{21, 4},
                                           Sweep{24, 24}, Sweep{31, 9}, Sweep{40, 13}),
                         [](const auto& inst) {
                           return "p" + std::to_string(inst.param.p) + "_q" +
                                  std::to_string(inst.param.q);
                         });

TEST(CoarseGreedy, SingleColumnIsBinomialLog) {
  // With one column the greedy coarse schedule halves the rows per step.
  for (int p : {2, 3, 5, 8, 9, 16, 33, 100})
    EXPECT_EQ(trees::coarse_greedy(p, 1).makespan, int(std::ceil(std::log2(double(p))))) << p;
}

TEST(DynamicVsStatic, AsapNeverBeatsGreedyByMuchOnTallGrids) {
  // Sanity for the paper's Table 4b narrative: on tall grids Greedy clearly
  // wins; near-square they are within a few percent.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{32, 16}, {64, 16}}) {
    long greedy = sim::critical_path_units(p, q, trees::greedy_tree(p, q));
    long asap = sim::simulate_asap(p, q).critical_path;
    EXPECT_GT(asap, greedy) << p << "x" << q;
  }
  long g = sim::critical_path_units(16, 16, trees::greedy_tree(16, 16));
  long a = sim::simulate_asap(16, 16).critical_path;
  EXPECT_LE(std::abs(a - g), g / 10);
}

TEST(BestBs, MatchesExhaustiveScanDefinition) {
  const int p = 17, q = 5;
  auto best = core::best_plasma_bs(p, q, KernelFamily::TT);
  long expect = -1;
  for (int bs = 1; bs <= p; ++bs) {
    long cp = sim::critical_path_units(
        p, q, trees::plasma_tree(p, q, bs, KernelFamily::TT));
    if (expect < 0 || cp < expect) expect = cp;
  }
  EXPECT_EQ(best.critical_path, expect);
  EXPECT_EQ(sim::critical_path_units(p, q,
                                     trees::plasma_tree(p, q, best.bs, KernelFamily::TT)),
            expect);
}

TEST(Plan, GrasapPlanIsValidAndExecutable) {
  using trees::TreeConfig;
  using trees::TreeKind;
  for (int k : {0, 1, 2, 5}) {
    TreeConfig c{TreeKind::Grasap, KernelFamily::TT, 1, k};
    auto plan = core::make_plan(12, 5, c);
    auto v = trees::validate_elimination_list(12, 5, plan.list);
    EXPECT_TRUE(v.ok) << "k=" << k << ": " << v.message;
    EXPECT_EQ(plan.graph.total_weight(), 6L * 12 * 25 - 2L * 125);
  }
}

}  // namespace
}  // namespace tiledqr
