// Tests for the solver layer: apply_q round trips, least squares against the
// reference solver, and square-system solves.
#include <gtest/gtest.h>

#include <complex>

#include "core/qr_session.hpp"
#include "core/tiled_qr.hpp"
#include "kernels/reference_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace tiledqr {
namespace {

using core::Options;
using core::TiledQr;
using kernels::ApplyTrans;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

Options small_opts(TreeKind kind = TreeKind::Greedy, KernelFamily fam = KernelFamily::TT) {
  Options opt;
  opt.tree = TreeConfig{kind, fam, 2, 1};
  opt.nb = 8;
  opt.ib = 4;
  opt.threads = 2;
  return opt;
}

using Scalars = ::testing::Types<double, std::complex<double>>;

template <typename T>
class SolveTyped : public ::testing::Test {};
TYPED_TEST_SUITE(SolveTyped, Scalars);

TYPED_TEST(SolveTyped, ApplyQRoundTrip) {
  using T = TypeParam;
  const int m = 40, n = 24;
  auto a = random_matrix<T>(m, n, 3);
  auto qr = TiledQr<T>::factorize(a.view(), small_opts());
  auto c0 = random_matrix<T>(m, 2 * 8, 5);
  auto c = TileMatrix<T>::from_dense(c0.view(), 8);
  qr.apply_q(ApplyTrans::NoTrans, c);
  qr.apply_q(ApplyTrans::ConjTrans, c);
  auto back = c.to_dense();
  EXPECT_LE(double(difference_norm<T>(back.view(), c0.view())), 1e-11);
}

TYPED_TEST(SolveTyped, QtAOnTilesEqualsR) {
  using T = TypeParam;
  const int m = 32, n = 16;
  auto a = random_matrix<T>(m, n, 7);
  auto qr = TiledQr<T>::factorize(a.view(), small_opts());
  auto c = TileMatrix<T>::from_dense(a.view(), 8);
  qr.apply_q(ApplyTrans::ConjTrans, c);
  auto qta = c.to_dense();
  auto r = qr.r_factor();
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      T want = (i <= j && i < n) ? r(i, j) : T(0);
      EXPECT_LE(std::abs(qta(i, j) - want), 1e-11) << i << "," << j;
    }
}

TYPED_TEST(SolveTyped, LeastSquaresMatchesReference) {
  using T = TypeParam;
  const int m = 45, n = 17;  // ragged on purpose
  auto a = random_matrix<T>(m, n, 11);
  auto b = random_matrix<T>(m, 3, 13);
  auto qr = TiledQr<T>::factorize(a.view(), small_opts());
  auto x = qr.solve_least_squares(b.view());
  auto xref = kernels::reference_least_squares<T>(a.view(), b.view());
  EXPECT_LE(double(difference_norm<T>(x.view(), xref.view())), 1e-10);
}

TYPED_TEST(SolveTyped, LeastSquaresResidualOrthogonalToRange) {
  using T = TypeParam;
  const int m = 64, n = 20;
  auto a = random_matrix<T>(m, n, 17);
  auto b = random_matrix<T>(m, 1, 19);
  auto qr = TiledQr<T>::factorize(a.view(), small_opts(TreeKind::Fibonacci));
  auto x = qr.solve_least_squares(b.view());
  Matrix<T> r(m, 1);
  copy(b.view(), r.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), a.view(), x.view(), T(-1), r.view());
  Matrix<T> atr(n, 1);
  blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, T(1), a.view(), r.view(), T(0), atr.view());
  EXPECT_LE(double(frobenius_norm<T>(atr.view())), 1e-10);
}

TYPED_TEST(SolveTyped, SquareSolve) {
  using T = TypeParam;
  const int n = 32;
  auto a = random_matrix<T>(n, n, 23);
  for (int i = 0; i < n; ++i) a(i, i) += T(8);  // well-conditioned
  auto xtrue = random_matrix<T>(n, 2, 29);
  Matrix<T> b(n, 2);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), a.view(), xtrue.view(), T(0), b.view());
  auto qr = TiledQr<T>::factorize(a.view(), small_opts());
  auto x = qr.solve(b.view());
  EXPECT_LE(double(difference_norm<T>(x.view(), xtrue.view()) / frobenius_norm<T>(xtrue.view())),
            1e-10);
}

TYPED_TEST(SolveTyped, ExactlySolvableOverdeterminedSystem) {
  using T = TypeParam;
  // b in range(A): residual must be ~0 and x recovers the generator.
  const int m = 48, n = 12;
  auto a = random_matrix<T>(m, n, 31);
  auto xtrue = random_matrix<T>(n, 1, 37);
  Matrix<T> b(m, 1);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, T(1), a.view(), xtrue.view(), T(0), b.view());
  auto qr = TiledQr<T>::factorize(a.view(), small_opts(TreeKind::PlasmaTree));
  auto x = qr.solve_least_squares(b.view());
  EXPECT_LE(double(difference_norm<T>(x.view(), xtrue.view())), 1e-9);
}

TEST(Solve, TsKernelsGiveSameSolution) {
  const int m = 40, n = 16;
  auto a = random_matrix<double>(m, n, 41);
  auto b = random_matrix<double>(m, 1, 43);
  auto qtt = TiledQr<double>::factorize(a.view(), small_opts(TreeKind::Greedy));
  auto qts = TiledQr<double>::factorize(a.view(), small_opts(TreeKind::FlatTree,
                                                             KernelFamily::TS));
  auto x1 = qtt.solve_least_squares(b.view());
  auto x2 = qts.solve_least_squares(b.view());
  EXPECT_LE(difference_norm<double>(x1.view(), x2.view()), 1e-10);
}

TEST(Solve, ShapeChecksThrow) {
  auto a = random_matrix<double>(24, 8, 47);
  auto qr = TiledQr<double>::factorize(a.view(), small_opts());
  auto bad = random_matrix<double>(23, 1, 49);
  EXPECT_THROW((void)qr.solve_least_squares(bad.view()), Error);
  EXPECT_THROW((void)qr.solve(bad.view()), Error);  // not square
  TileMatrix<double> wrong_tiling(24, 8, 6);
  EXPECT_THROW(qr.apply_q(ApplyTrans::NoTrans, wrong_tiling), Error);
}

TEST(Solve, NbLargerThanM) {
  // Tile size exceeding the matrix: a single padded tile (1x1 grid through
  // the padding path). apply_q and least squares must behave like LAPACK.
  const int m = 40, n = 24;
  auto a = random_matrix<double>(m, n, 61);
  auto b = random_matrix<double>(m, 2, 67);
  auto opt = small_opts();
  opt.nb = 64;  // > m
  opt.ib = 8;
  auto qr = TiledQr<double>::factorize(a.view(), opt);
  EXPECT_EQ(qr.factors().mt(), 1);
  EXPECT_EQ(qr.factors().nt(), 1);
  auto x = qr.solve_least_squares(b.view());
  auto xref = kernels::reference_least_squares<double>(a.view(), b.view());
  EXPECT_LE(double(difference_norm<double>(x.view(), xref.view())), 1e-10);
  EXPECT_LE(double(orthogonality_error<double>(qr.q_thin().view())), 1e-11);
}

TEST(Solve, OneByOneTileGrid) {
  // Matrix exactly one full tile: the degenerate DAG (single GEQRT).
  const int n = 8;
  auto a = random_matrix<double>(n, n, 71);
  for (int i = 0; i < n; ++i) a(i, i) += 4.0;
  auto xtrue = random_matrix<double>(n, 1, 73);
  Matrix<double> b(n, 1);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, a.view(), xtrue.view(), 0.0, b.view());
  auto qr = TiledQr<double>::factorize(a.view(), small_opts());
  auto x = qr.solve(b.view());
  EXPECT_LE(double(difference_norm<double>(x.view(), xtrue.view()) /
                   frobenius_norm<double>(xtrue.view())),
            1e-10);
  auto c0 = random_matrix<double>(n, 3, 79);
  auto c = TileMatrix<double>::from_dense(c0.view(), 8);
  qr.apply_q(ApplyTrans::ConjTrans, c);
  qr.apply_q(ApplyTrans::NoTrans, c);
  EXPECT_LE(double(difference_norm<double>(c.to_dense().view(), c0.view())), 1e-11);
}

TEST(Solve, ZeroColumnRhsIsAValidDegenerateSystem) {
  const int m = 40, n = 24;
  auto a = random_matrix<double>(m, n, 83);
  auto qr = TiledQr<double>::factorize(a.view(), small_opts());
  Matrix<double> b(m, 0);
  auto x = qr.solve_least_squares(b.view());
  EXPECT_EQ(x.rows(), n);
  EXPECT_EQ(x.cols(), 0);
  // The async pipeline handles the same degenerate rhs (both flavors).
  core::QrSession session(core::QrSession::Config{2});
  auto x2 = session.solve_least_squares_async(qr, ConstMatrixView<double>(b.view())).get();
  EXPECT_EQ(x2.rows(), n);
  EXPECT_EQ(x2.cols(), 0);
  auto x3 = session
                .solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                           ConstMatrixView<double>(b.view()), small_opts())
                .get();
  EXPECT_EQ(x3.rows(), n);
  EXPECT_EQ(x3.cols(), 0);
}

TEST(Solve, MismatchedRowTilingErrorPaths) {
  auto a = random_matrix<double>(24, 8, 89);
  auto qr = TiledQr<double>::factorize(a.view(), small_opts());
  // Same nb, wrong row count (different mt).
  TileMatrix<double> short_c(16, 8, 8);
  EXPECT_THROW(qr.apply_q(ApplyTrans::NoTrans, short_c), Error);
  EXPECT_THROW(qr.apply_q(ApplyTrans::NoTrans, short_c, /*threads=*/2), Error);
  // Same rows, wrong tile size.
  TileMatrix<double> wrong_nb(24, 8, 6);
  EXPECT_THROW(qr.apply_q(ApplyTrans::ConjTrans, wrong_nb), Error);
  // The async entry points surface the same errors through their futures.
  core::QrSession session(core::QrSession::Config{2});
  EXPECT_THROW((void)session.apply_q_async(qr, ApplyTrans::NoTrans, TileMatrix<double>(16, 8, 8))
                   .get(),
               Error);
  auto short_b = random_matrix<double>(23, 1, 97);
  EXPECT_THROW(
      (void)session.solve_least_squares_async(qr, ConstMatrixView<double>(short_b.view())).get(),
      Error);
  EXPECT_THROW((void)session
                   .solve_least_squares_async(ConstMatrixView<double>(a.view()),
                                              ConstMatrixView<double>(short_b.view()),
                                              small_opts())
                   .get(),
               Error);
}

TEST(Solve, WideMatrixMinimumNormSolve) {
  // m < n routes to the LQ factorization and the minimum-norm solution:
  // x must satisfy A x = b exactly (A has full row rank w.h.p.) and be the
  // shortest such vector — i.e. x lies in range(A^H), so any residual
  // against the pseudoinverse solution shows up in the norm comparison.
  auto wide = random_matrix<double>(8, 24, 101);
  auto b = random_matrix<double>(8, 2, 103);
  auto qr = TiledQr<double>::factorize(wide.view(), small_opts());
  auto x = qr.solve_least_squares(b.view());
  ASSERT_EQ(x.rows(), 24);
  ASSERT_EQ(x.cols(), 2);
  Matrix<double> ax(8, 2);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, wide.view(), x.view(), 0.0, ax.view());
  EXPECT_LE(difference_norm<double>(ax.view(), b.view()) / frobenius_norm<double>(b.view()),
            1e-12);
  // Minimum-norm certificate: x in range(A^H) means the component of x
  // orthogonal to range(A^H) vanishes. Project x onto null(A) via
  // x - A^H (A A^H)^{-1} A x and check it is zero: equivalently A^H y = x
  // is solvable, which we verify through x's norm against the normal
  // equations solution computed densely.
  Matrix<double> aat(8, 8);
  blas::gemm(blas::Op::NoTrans, blas::Op::ConjTrans, 1.0, wide.view(), wide.view(), 0.0,
             aat.view());
  // Solve (A A^H) y = b by the tall QR path (square system), then
  // x_ref = A^H y is the dense minimum-norm reference.
  auto aat_qr = TiledQr<double>::factorize(aat.view(), small_opts());
  auto y = aat_qr.solve_least_squares(b.view());
  Matrix<double> x_ref(24, 2);
  blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, 1.0, wide.view(), y.view(), 0.0,
             x_ref.view());
  EXPECT_LE(difference_norm<double>(x.view(), x_ref.view()) /
                frobenius_norm<double>(x_ref.view()),
            1e-10);

  // The async pipeline routes the same way.
  core::QrSession session(core::QrSession::Config{2});
  auto x_async = session
                     .solve_least_squares_async(ConstMatrixView<double>(wide.view()),
                                                ConstMatrixView<double>(b.view()), small_opts())
                     .get();
  EXPECT_LE(difference_norm<double>(x_async.view(), x_ref.view()) /
                frobenius_norm<double>(x_ref.view()),
            1e-10);
}

TEST(Solve, QThinFirstColumnsSpanA) {
  // Projection of A onto range(Q) equals A.
  const int m = 36, n = 12;
  auto a = random_matrix<double>(m, n, 53);
  auto qr = TiledQr<double>::factorize(a.view(), small_opts(TreeKind::Asap));
  auto q = qr.q_thin();
  Matrix<double> qta(n, n);
  blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, 1.0, q.view(), a.view(), 0.0, qta.view());
  Matrix<double> proj(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, q.view(), qta.view(), 0.0, proj.view());
  EXPECT_LE(difference_norm<double>(proj.view(), a.view()) / frobenius_norm<double>(a.view()),
            1e-11);
}

}  // namespace
}  // namespace tiledqr
