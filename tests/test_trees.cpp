// Tests for the elimination-list generators and the coarse-grain model,
// including the exact Table 2 oracles and Lemma 1.
#include <gtest/gtest.h>

#include <utility>

#include "paper_oracles.hpp"
#include "common/error.hpp"
#include "core/plan.hpp"
#include "trees/generators.hpp"

namespace tiledqr {
namespace {

using trees::EliminationList;
using trees::KernelFamily;
using trees::TreeConfig;
using trees::TreeKind;

oracles::Table to_table(const std::vector<std::vector<int>>& v) {
  oracles::Table t(v.size());
  for (size_t i = 0; i < v.size(); ++i) t[i].assign(v[i].begin(), v[i].end());
  return t;
}

TEST(CoarseModel, Table2SamehKuckExact) {
  EXPECT_EQ(to_table(trees::coarse_sameh_kuck(15, 6).step), oracles::table2_sameh_kuck());
}

TEST(CoarseModel, Table2FibonacciExact) {
  EXPECT_EQ(to_table(trees::coarse_fibonacci(15, 6).step), oracles::table2_fibonacci());
}

TEST(CoarseModel, Table2GreedyExact) {
  EXPECT_EQ(to_table(trees::coarse_greedy(15, 6).step), oracles::table2_greedy());
}

TEST(CoarseModel, SamehKuckCriticalPathFormula) {
  // p + q - 2 for p > q; 2q - 3 for p == q (paper §3.1).
  for (auto [p, q] : std::vector<std::pair<int, int>>{{5, 2}, {15, 6}, {40, 10}, {33, 32}})
    EXPECT_EQ(trees::coarse_sameh_kuck(p, q).makespan, p + q - 2) << p << "," << q;
  for (int n : {2, 3, 8, 16}) EXPECT_EQ(trees::coarse_sameh_kuck(n, n).makespan, 2 * n - 3) << n;
}

TEST(CoarseModel, FibonacciCriticalPathFormula) {
  // x + 2q - 2 for p > q with x the least integer with x(x+1)/2 >= p-1.
  for (auto [p, q] : std::vector<std::pair<int, int>>{{15, 6}, {40, 10}, {28, 5}, {100, 30}}) {
    int x = trees::fibonacci_x(p);
    EXPECT_EQ(trees::coarse_fibonacci(p, q).makespan, x + 2 * q - 2) << p << "," << q;
  }
}

TEST(CoarseModel, FibonacciXDefinition) {
  EXPECT_EQ(trees::fibonacci_x(2), 1);
  EXPECT_EQ(trees::fibonacci_x(15), 5);   // 5*6/2 = 15 >= 14
  EXPECT_EQ(trees::fibonacci_x(16), 5);   // 15 >= 15
  EXPECT_EQ(trees::fibonacci_x(17), 6);
  for (int p = 2; p < 400; ++p) {
    int x = trees::fibonacci_x(p);
    EXPECT_GE(x * (x + 1) / 2, p - 1);
    EXPECT_LT((x - 1) * x / 2, p - 1);
  }
}

TEST(CoarseModel, GreedyIsOptimalNeverSlowerThanOthers) {
  for (auto [p, q] : std::vector<std::pair<int, int>>{{8, 3}, {15, 6}, {40, 10}, {64, 16}}) {
    int g = trees::coarse_greedy(p, q).makespan;
    EXPECT_LE(g, trees::coarse_fibonacci(p, q).makespan);
    EXPECT_LE(g, trees::coarse_sameh_kuck(p, q).makespan);
    EXPECT_LE(g, trees::coarse_binary(p, q).makespan);
  }
}

// ---- Generator validity over (p, q) sweeps -----------------------------------

struct GenCase {
  int p, q;
};
class GeneratorValidity : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorValidity, AllStaticGeneratorsProduceValidLists) {
  auto [p, q] = GetParam();
  std::vector<std::pair<std::string, EliminationList>> lists;
  lists.emplace_back("flat-tt", trees::flat_tree(p, q, KernelFamily::TT));
  lists.emplace_back("flat-ts", trees::flat_tree(p, q, KernelFamily::TS));
  lists.emplace_back("binary", trees::binary_tree(p, q));
  lists.emplace_back("fibonacci", trees::fibonacci_tree(p, q));
  lists.emplace_back("greedy", trees::greedy_tree(p, q));
  for (int bs : {1, 2, 3, 5, p}) {
    lists.emplace_back("plasma-tt-" + std::to_string(bs),
                       trees::plasma_tree(p, q, bs, KernelFamily::TT));
    lists.emplace_back("plasma-ts-" + std::to_string(bs),
                       trees::plasma_tree(p, q, bs, KernelFamily::TS));
  }
  for (const auto& [name, list] : lists) {
    auto v = trees::validate_elimination_list(p, q, list);
    EXPECT_TRUE(v.ok) << name << " (" << p << "x" << q << "): " << v.message;
    // Exactly one elimination per sub-diagonal tile.
    size_t expected = 0;
    for (int k = 0; k < std::min(p, q); ++k) expected += size_t(p - 1 - k);
    EXPECT_EQ(list.size(), expected) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeneratorValidity,
                         ::testing::Values(GenCase{1, 1}, GenCase{2, 1}, GenCase{2, 2},
                                           GenCase{3, 2}, GenCase{5, 5}, GenCase{8, 3},
                                           GenCase{15, 6}, GenCase{16, 16}, GenCase{23, 7},
                                           GenCase{40, 13}, GenCase{64, 9}),
                         [](const auto& inst) {
                           return "p" + std::to_string(inst.param.p) + "_q" +
                                  std::to_string(inst.param.q);
                         });

TEST(Validation, CatchesDoubleElimination) {
  EliminationList bad{{1, 0, 0, false}, {1, 0, 0, false}};
  EXPECT_FALSE(trees::validate_elimination_list(3, 1, bad).ok);
}

TEST(Validation, CatchesMissingElimination) {
  EliminationList bad{{1, 0, 0, false}};
  auto v = trees::validate_elimination_list(3, 1, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("never eliminated"), std::string::npos);
}

TEST(Validation, CatchesZeroedPivot) {
  // Row 1 is zeroed first, then used as a pivot: invalid.
  EliminationList bad{{1, 0, 0, false}, {2, 1, 0, false}};
  EXPECT_FALSE(trees::validate_elimination_list(3, 1, bad).ok);
}

TEST(Validation, CatchesNotReadyRow) {
  // elim(2, 1, 1) before row 2 is zeroed in column 0.
  EliminationList bad{{1, 0, 0, false}, {2, 1, 1, false}, {2, 0, 0, false}, {2, 1, 1, false}};
  EXPECT_FALSE(trees::validate_elimination_list(3, 2, bad).ok);
}

TEST(Validation, CatchesTsOnTriangularTile) {
  // Row 2 is first a TT victim's pivot?? No: make row 2 a pivot (GEQRT) then
  // TS-eliminate it: TSQRT on triangularized tile is invalid.
  EliminationList bad{{3, 2, 0, false}, {2, 0, 0, true}, {1, 0, 0, false}};
  auto v = trees::validate_elimination_list(4, 1, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("TS elimination"), std::string::npos);
}

TEST(Validation, AcceptsReverseEliminations) {
  // Reverse eliminations (row < piv) are legal for generic algorithms.
  EliminationList rev{{1, 2, 0, false}, {2, 0, 0, false}};
  EXPECT_TRUE(trees::validate_elimination_list(3, 1, rev).ok)
      << trees::validate_elimination_list(3, 1, rev).message;
}

TEST(Lemma1, RemovesReverseEliminationsAndStaysValid) {
  EliminationList rev{{1, 2, 0, false}, {3, 2, 0, false}, {2, 0, 0, false}};
  ASSERT_TRUE(trees::validate_elimination_list(4, 1, rev).ok);
  auto fwd = trees::remove_reverse_eliminations(4, 1, rev);
  for (const auto& e : fwd) EXPECT_GT(e.row, e.piv);
  auto v = trees::validate_elimination_list(4, 1, fwd);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(Lemma1, NoOpOnForwardLists) {
  auto list = trees::greedy_tree(10, 4);
  auto same = trees::remove_reverse_eliminations(10, 4, list);
  EXPECT_EQ(list, same);
}

TEST(TreeConfig, Names) {
  EXPECT_EQ(TreeConfig{}.name(), "Greedy");
  EXPECT_EQ((TreeConfig{TreeKind::FlatTree, KernelFamily::TS, 1, 0}.name()), "FlatTree(TS)");
  EXPECT_EQ((TreeConfig{TreeKind::PlasmaTree, KernelFamily::TT, 7, 0}.name()),
            "PlasmaTree(TT,BS=7)");
  EXPECT_EQ((TreeConfig{TreeKind::Grasap, KernelFamily::TT, 1, 3}.name()), "Grasap(3)");
  EXPECT_TRUE(trees::is_dynamic(TreeKind::Asap));
  EXPECT_FALSE(trees::is_dynamic(TreeKind::Greedy));
}

TEST(Generators, PlasmaTreeDegenerateCases) {
  // BS = 1 is a pure binary tree; BS >= p is a pure flat tree.
  EXPECT_EQ(trees::plasma_tree(8, 3, 1, KernelFamily::TT), trees::binary_tree(8, 3));
  EXPECT_EQ(trees::plasma_tree(8, 3, 8, KernelFamily::TT),
            trees::flat_tree(8, 3, KernelFamily::TT));
  EXPECT_EQ(trees::plasma_tree(8, 3, 20, KernelFamily::TS),
            trees::flat_tree(8, 3, KernelFamily::TS));
}

/// best_plasma_bs across degenerate shapes: the returned (BS, cp) pair must
/// equal the exhaustive sweep's minimum, and the structural identities at
/// the sweep's endpoints (BS=1 = binary tree, BS=p = flat tree) must hold.
TEST(Generators, BestPlasmaBsDegenerateShapes) {
  for (auto [p, q] : {std::pair{12, 1},   // single column (q = 1)
                      std::pair{1, 1},    // single tile
                      std::pair{6, 6},    // square (p = q)
                      std::pair{64, 2},   // very tall (p >> q)
                      std::pair{2, 2}}) {
    for (KernelFamily family : {KernelFamily::TT, KernelFamily::TS}) {
      auto best = core::best_plasma_bs(p, q, family);
      ASSERT_GE(best.bs, 1) << p << "x" << q;
      ASSERT_LE(best.bs, p) << p << "x" << q;
      long sweep_min = -1;
      for (int bs = 1; bs <= p; ++bs) {
        trees::TreeConfig c{TreeKind::PlasmaTree, family, bs, 0};
        long cp = core::plan_critical_path(p, q, c);
        if (sweep_min < 0 || cp < sweep_min) sweep_min = cp;
      }
      EXPECT_EQ(best.critical_path, sweep_min) << p << "x" << q;
      // The reported critical path really is the chosen BS's critical path.
      EXPECT_EQ(best.critical_path,
                core::plan_critical_path(
                    p, q, trees::TreeConfig{TreeKind::PlasmaTree, family, best.bs, 0}))
          << p << "x" << q;
    }
  }
}

TEST(Generators, BestPlasmaBsEndpointsMatchStructuralIdentities) {
  // BS endpoints coincide with BinaryTree / FlatTree, so the best composite
  // can never lose to either endpoint.
  for (auto [p, q] : {std::pair{10, 1}, std::pair{7, 7}, std::pair{32, 2}}) {
    for (KernelFamily family : {KernelFamily::TT, KernelFamily::TS}) {
      auto best = core::best_plasma_bs(p, q, family);
      long flat = core::plan_critical_path(
          p, q, trees::TreeConfig{TreeKind::FlatTree, family, 1, 0});
      EXPECT_LE(best.critical_path, flat) << p << "x" << q;
      if (family == KernelFamily::TT) {
        long binary = core::plan_critical_path(
            p, q, trees::TreeConfig{TreeKind::BinaryTree, family, 1, 0});
        EXPECT_LE(best.critical_path, binary) << p << "x" << q;
      }
    }
  }
}

TEST(Generators, DispatcherMatchesDirectCalls) {
  TreeConfig c{TreeKind::Fibonacci, KernelFamily::TT, 1, 0};
  EXPECT_EQ(trees::make_static_elimination_list(12, 5, c), trees::fibonacci_tree(12, 5));
  c.kind = TreeKind::Asap;
  EXPECT_THROW(trees::make_static_elimination_list(12, 5, c), Error);
}

}  // namespace
}  // namespace tiledqr
