// Quickstart: factor a random matrix with the Greedy tiled algorithm,
// inspect the factors, and verify the decomposition numerically. Tall or
// square inputs factor as A = Q R; wide inputs route to A = L Q.
//
//   ./quickstart [m] [n] [nb]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 640;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 64;

  const bool wide = m < n;
  std::printf("tiledqr quickstart: %s of a %lld x %lld matrix, nb = %d\n", wide ? "LQ" : "QR",
              (long long)m, (long long)n, nb);

  // 1. Build a random problem.
  auto a = random_matrix<double>(m, n, /*seed=*/42);

  // 2. Pick an algorithm. Greedy with TT kernels is the paper's recommended
  //    default: no tuning parameter, asymptotically optimal critical path.
  core::Options opt;
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 0};
  opt.nb = nb;
  opt.ib = std::min(32, nb);

  // 3. Factorize. The engine routes on shape: m >= n is QR, m < n is LQ
  //    (transpose duality on the reduction grid).
  auto qr = core::TiledQr<double>::factorize(a.view(), opt);
  std::printf("algorithm          : %s\n", opt.tree->name().c_str());
  std::printf("tile grid          : %d x %d tiles\n", qr.factors().mt(), qr.factors().nt());
  std::printf("tasks in DAG       : %zu\n", qr.plan().graph.tasks.size());
  std::printf("critical path      : %ld units of nb^3/3 flops\n", qr.plan().critical_path);

  // 4. Verify: A = Q R (or A = L Q), the thin Q orthonormal, the triangular
  //    factor actually triangular.
  auto q = qr.q_thin();
  Matrix<double> prod(m, n);
  double tri_offband = 0.0;
  if (wide) {
    auto l = qr.l_factor();
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, l.view(), q.view(), 0.0, prod.view());
    // L is lower triangular: its strict upper triangle must be exactly zero.
    for (std::int64_t i = 0; i < l.rows(); ++i)
      for (std::int64_t j = i + 1; j < l.cols(); ++j)
        tri_offband = std::max(tri_offband, std::abs(l(i, j)));
  } else {
    auto r = qr.r_factor();
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, q.view(), r.view(), 0.0, prod.view());
    tri_offband = below_diagonal_max<double>(r.view());
  }
  double residual =
      difference_norm<double>(a.view(), prod.view()) / frobenius_norm<double>(a.view());
  double orth = orthogonality_error<double>(q.view());
  std::printf("||A - %s|| / ||A|| : %.3e\n", wide ? "LQ" : "QR", residual);
  std::printf("||I - Q Q^H||      : %.3e\n", orth);
  std::printf("%s off-band max     : %.3e\n", wide ? "L" : "R", tri_offband);

  const bool ok =
      residual < 1e-13 * double(n) && orth < 1e-13 * double(n) && tri_offband == 0.0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
