// Quickstart: factor a tall random matrix with the Greedy tiled algorithm,
// inspect the factors, and verify A = Q R numerically.
//
//   ./quickstart [m] [n] [nb]
#include <cstdio>
#include <cstdlib>

#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 640;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 64;

  std::printf("tiledqr quickstart: QR of a %lld x %lld matrix, nb = %d\n", (long long)m,
              (long long)n, nb);

  // 1. Build a random problem.
  auto a = random_matrix<double>(m, n, /*seed=*/42);

  // 2. Pick an algorithm. Greedy with TT kernels is the paper's recommended
  //    default: no tuning parameter, asymptotically optimal critical path.
  core::Options opt;
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 0};
  opt.nb = nb;
  opt.ib = std::min(32, nb);

  // 3. Factorize.
  auto qr = core::TiledQr<double>::factorize(a.view(), opt);
  std::printf("algorithm          : %s\n", opt.tree->name().c_str());
  std::printf("tile grid          : %d x %d tiles\n", qr.factors().mt(), qr.factors().nt());
  std::printf("tasks in DAG       : %zu\n", qr.plan().graph.tasks.size());
  std::printf("critical path      : %ld units of nb^3/3 flops\n", qr.plan().critical_path);

  // 4. Verify: A = Q R, Q^H Q = I, R upper triangular.
  auto q = qr.q_thin();
  auto r = qr.r_factor();
  Matrix<double> qrm(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, q.view(), r.view(), 0.0, qrm.view());
  double residual =
      difference_norm<double>(a.view(), qrm.view()) / frobenius_norm<double>(a.view());
  double orth = orthogonality_error<double>(q.view());
  std::printf("||A - QR|| / ||A|| : %.3e\n", residual);
  std::printf("||I - Q^H Q||      : %.3e\n", orth);
  std::printf("R below-diag max   : %.3e\n", below_diagonal_max<double>(r.view()));

  const bool ok = residual < 1e-13 * double(n) && orth < 1e-13 * double(n);
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
