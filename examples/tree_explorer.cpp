// Interactive exploration of the tiled algorithms: for a p x q tile grid,
// prints each algorithm's zero-time table (the format of paper Tables 2-4)
// and the critical-path comparison, including the exhaustive PlasmaTree
// domain-size search.
//
//   ./tree_explorer [p] [q] [--coarse]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hpp"
#include "core/plan.hpp"
#include "sim/critical_path.hpp"
#include "sim/dynamic.hpp"
#include "trees/generators.hpp"

#include <iostream>

using namespace tiledqr;

namespace {

void print_zero_table(const std::string& name, const std::vector<std::vector<long>>& t) {
  std::printf("-- %s --\n", name.c_str());
  for (size_t i = 0; i < t.size(); ++i) {
    for (size_t k = 0; k < t[i].size(); ++k) {
      if (t[i][k] == 0 && i <= k) std::printf("   ?");
      else if (t[i][k] == 0) std::printf("   .");
      else std::printf("%4ld", t[i][k]);
    }
    std::printf("\n");
  }
}

std::vector<std::vector<long>> zero_table_of(int p, int q, const trees::EliminationList& list) {
  auto g = dag::build_task_graph(p, q, list);
  auto cp = sim::earliest_finish(g);
  return sim::zero_time_table(g, cp);
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 15;
  const int q = argc > 2 ? std::atoi(argv[2]) : 6;
  const bool coarse = argc > 3 && std::strcmp(argv[3], "--coarse") == 0;

  std::printf("tile grid: p = %d, q = %d\n\n", p, q);

  if (coarse) {
    auto show = [&](const char* name, const trees::CoarseSchedule& s) {
      std::vector<std::vector<long>> t(static_cast<size_t>(p));
      for (int i = 0; i < p; ++i) t[size_t(i)].assign(s.step[size_t(i)].begin(), s.step[size_t(i)].end());
      print_zero_table(std::string(name) + " (coarse, makespan " + std::to_string(s.makespan) + ")", t);
    };
    show("Sameh-Kuck", trees::coarse_sameh_kuck(p, q));
    show("Fibonacci", trees::coarse_fibonacci(p, q));
    show("Greedy", trees::coarse_greedy(p, q));
    return 0;
  }

  using trees::KernelFamily;
  using trees::TreeKind;
  print_zero_table("FlatTree (TT)", zero_table_of(p, q, trees::flat_tree(p, q, KernelFamily::TT)));
  print_zero_table("Fibonacci", zero_table_of(p, q, trees::fibonacci_tree(p, q)));
  print_zero_table("Greedy", zero_table_of(p, q, trees::greedy_tree(p, q)));
  print_zero_table("BinaryTree", zero_table_of(p, q, trees::binary_tree(p, q)));
  print_zero_table("Asap", sim::simulate_asap(p, q).zero_time);

  TextTable summary("critical paths (units of nb^3/3 flops)");
  summary.set_header({"algorithm", "critical path"});
  auto add = [&](const trees::TreeConfig& c) {
    summary.add_row({c.name(), std::to_string(core::plan_critical_path(p, q, c))});
  };
  add({TreeKind::FlatTree, KernelFamily::TT, 1, 0});
  add({TreeKind::FlatTree, KernelFamily::TS, 1, 0});
  add({TreeKind::BinaryTree, KernelFamily::TT, 1, 0});
  add({TreeKind::Fibonacci, KernelFamily::TT, 1, 0});
  add({TreeKind::Greedy, KernelFamily::TT, 1, 0});
  add({TreeKind::Asap, KernelFamily::TT, 1, 0});
  add({TreeKind::Grasap, KernelFamily::TT, 1, 1});
  auto best = core::best_plasma_bs(p, q, KernelFamily::TT);
  summary.add_row({"PlasmaTree(TT) best BS=" + std::to_string(best.bs),
                   std::to_string(best.critical_path)});
  auto best_ts = core::best_plasma_bs(p, q, KernelFamily::TS);
  summary.add_row({"PlasmaTree(TS) best BS=" + std::to_string(best_ts.bs),
                   std::to_string(best_ts.critical_path)});
  std::printf("\n");
  summary.print(std::cout);
  return 0;
}
