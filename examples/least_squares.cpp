// Least squares: fit a degree-(n-1) polynomial to noisy samples — the
// m-observations / n-unknowns workload the paper's introduction motivates
// (m >> n, i.e. very tall tile grids, where Greedy/Fibonacci shine).
//
//   ./least_squares [samples] [degree+1] [nb]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/tiled_qr.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 4000;
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 8;
  const int nb = argc > 3 ? std::atoi(argv[3]) : 50;

  std::printf("polynomial fit: %lld samples, %lld coefficients (tile grid %lld x %lld)\n",
              (long long)m, (long long)n, (long long)((m + nb - 1) / nb),
              (long long)((n + nb - 1) / nb));

  // Ground-truth coefficients of sum_k c_k x^k on [-1, 1].
  std::vector<double> truth(static_cast<size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) truth[size_t(k)] = std::cos(double(k + 1));

  // Vandermonde design matrix + noisy observations.
  Matrix<double> a(m, n);
  Matrix<double> b(m, 1);
  std::mt19937_64 rng(7);
  std::normal_distribution<double> noise(0.0, 1e-3);
  for (std::int64_t i = 0; i < m; ++i) {
    double x = -1.0 + 2.0 * double(i) / double(m - 1);
    double pow = 1.0, y = 0.0;
    for (std::int64_t k = 0; k < n; ++k) {
      a(i, k) = pow;
      y += truth[size_t(k)] * pow;
      pow *= x;
    }
    b(i, 0) = y + noise(rng);
  }

  // Tall-and-skinny problems are exactly where tree choice matters; compare
  // the paper's algorithms on this shape.
  for (auto kind : {trees::TreeKind::Greedy, trees::TreeKind::Fibonacci,
                    trees::TreeKind::FlatTree, trees::TreeKind::BinaryTree}) {
    core::Options opt;
    opt.tree = trees::TreeConfig{kind, trees::KernelFamily::TT, 1, 0};
    opt.nb = nb;
    opt.ib = std::min(32, nb);
    auto qr = core::TiledQr<double>::factorize(a.view(), opt);
    auto x = qr.solve_least_squares(b.view());
    double coeff_err = 0.0;
    for (std::int64_t k = 0; k < n; ++k)
      coeff_err = std::max(coeff_err, std::abs(x(k, 0) - truth[size_t(k)]));
    std::printf("  %-14s critical path %5ld units, max coefficient error %.3e\n",
                opt.tree->name().c_str(), qr.plan().critical_path, coeff_err);
    if (coeff_err > 1e-2) {
      std::printf("FAILED\n");
      return 1;
    }
  }
  std::printf("OK\n");
  return 0;
}
