// Square linear systems via QR. The paper (§1) notes that QR-based solves
// cost twice the flops of LU but are unconditionally stable and pivot-free.
// This example solves a system whose growth factor makes partial-pivoting
// LU uncomfortable (a Wilkinson-style matrix) and shows QR is unaffected.
//
//   ./linear_solve [n] [nb]
#include <cstdio>
#include <cstdlib>

#include "core/tiled_qr.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 64;

  // Wilkinson's growth matrix: lower triangle of -1, unit diagonal, last
  // column of 1 — the classic worst case for partial pivoting (growth 2^n).
  Matrix<double> a(n, n);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (i == j) a(i, j) = 1.0;
      else if (i > j) a(i, j) = -1.0;
    }
    a(j, n - 1) = 1.0;
  }

  auto xtrue = random_matrix<double>(n, 1, 99);
  Matrix<double> b(n, 1);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, a.view(), xtrue.view(), 0.0, b.view());

  core::Options opt;
  opt.nb = nb;
  opt.ib = std::min(32, nb);
  opt.tree = trees::TreeConfig{trees::TreeKind::Greedy, trees::KernelFamily::TT, 1, 0};

  auto qr = core::TiledQr<double>::factorize(a.view(), opt);
  auto x = qr.solve(b.view());

  Matrix<double> res(n, 1);
  copy(b.view(), res.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, a.view(), x.view(), -1.0, res.view());
  double rel_res = frobenius_norm<double>(res.view()) / frobenius_norm<double>(b.view());
  double ferr = difference_norm<double>(x.view(), xtrue.view()) /
                frobenius_norm<double>(xtrue.view());

  std::printf("QR solve of Wilkinson growth matrix, n = %lld (nb = %d)\n", (long long)n, nb);
  std::printf("  relative residual ||Ax-b||/||b|| : %.3e\n", rel_res);
  std::printf("  forward error     ||x-x*||/||x*||: %.3e\n", ferr);
  // QR keeps the residual at machine-precision level regardless of the
  // pivot-growth pathology. (The forward error also reflects conditioning.)
  const bool ok = rel_res < 1e-12;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
