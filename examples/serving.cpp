// Serving: handle a stream of independent least-squares problems with one
// long-lived QrSession — the pool and plan cache amortize across requests,
// which is the intended production pattern for high request rates. The
// elimination tree is NOT hand-picked: the session's tree autotuner selects
// the paper-optimal algorithm for (tile-grid shape, pool size), and
// TILEDQR_TREE=auto|flat|binary|fibonacci|greedy|plasma can bypass it for
// A/B runs.
//
//   ./serving [requests] [m] [n] [nb]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "common/timer.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 768;
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 256;
  const int nb = argc > 4 ? std::atoi(argv[4]) : 128;

  std::printf("tiledqr serving demo: %d least-squares requests, each %lld x %lld (nb = %d)\n",
              requests, (long long)m, (long long)n, nb);

  // One session for the lifetime of the "server": a persistent worker pool
  // plus a plan cache shared by every request.
  core::QrSession session;
  core::Options opt;
  opt.nb = nb;
  opt.ib = std::min(32, nb);

  // Auto mode: ask the tuner for the paper-optimal tree for this request
  // shape on this pool and pin it into the pipeline options. decide_tree
  // honors the TILEDQR_TREE override (and says so in the decision),
  // memoizes the decision in the session's TuningTable, and leaves the
  // chosen plan warm in the plan cache.
  const int grid_p = int((m + nb - 1) / nb);
  const int grid_q = int((n + nb - 1) / nb);
  auto decision = session.decide_tree(grid_p, grid_q);
  opt.tree = decision.config;
  std::printf("autotuner picked %s for the %d x %d tile grid on %d workers%s\n",
              opt.tree.name().c_str(), grid_p, grid_q, session.pool().size(),
              decision.forced ? " (forced via TILEDQR_TREE)" : "");

  // Incoming work: a batch of design matrices (one per request). In a real
  // server these would arrive over the wire; submission is cheap enough to
  // do on the request thread.
  std::vector<Matrix<double>> problems;
  problems.reserve(size_t(requests));
  for (int i = 0; i < requests; ++i)
    problems.push_back(random_matrix<double>(m, n, 7000 + unsigned(i)));

  // Right-hand sides arrive with the requests; generate them up front so the
  // timed region is pure serving work.
  std::vector<Matrix<double>> rhs;
  rhs.reserve(size_t(requests));
  for (int i = 0; i < requests; ++i) rhs.push_back(random_matrix<double>(m, 1, 9000 + unsigned(i)));

  WallTimer timer;
  // Each request is a full async least-squares pipeline: factorize A, apply
  // Q^T to b, triangular-solve — three chained stages that run end-to-end on
  // the session pool with no per-request blocking on the serving thread.
  std::vector<std::future<Matrix<double>>> inflight;
  inflight.reserve(size_t(requests));
  for (int i = 0; i < requests; ++i)
    inflight.push_back(session.solve_least_squares_async(
        ConstMatrixView<double>(problems[size_t(i)].view()),
        ConstMatrixView<double>(rhs[size_t(i)].view()), opt));

  // Drain the solutions and check them.
  double worst_residual = 0.0;
  for (int i = 0; i < requests; ++i) {
    auto x = inflight[size_t(i)].get();
    const auto& b = rhs[size_t(i)];
    // Residual of the normal equations: A^T (A x - b) ~ 0 at the minimizer.
    Matrix<double> ax(m, 1);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, problems[size_t(i)].view(), x.view(),
               0.0, ax.view());
    for (std::int64_t r = 0; r < m; ++r) ax(r, 0) -= b(r, 0);
    Matrix<double> atr(n, 1);
    blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, 1.0, problems[size_t(i)].view(), ax.view(),
               0.0, atr.view());
    worst_residual = std::max(worst_residual, double(frobenius_norm<double>(atr.view())) /
                                                  double(frobenius_norm<double>(b.view())));
  }
  double seconds = timer.seconds();

  auto cache = session.plan_cache_stats();
  auto pool = session.pool_stats();
  auto tuning = session.tuning_stats();
  std::printf("served %d requests in %.3f s (%.1f req/s)\n", requests, seconds,
              requests / seconds);
  std::printf("worst normal-equation residual: %.3e\n", worst_residual);
  std::printf("plan cache: %ld hits / %ld misses (hit rate %.3f)\n", cache.hits, cache.misses,
              cache.hit_rate());
  std::printf("tuning table: %ld hits / %ld misses, %zu entries\n", tuning.hits, tuning.misses,
              tuning.entries);
  std::printf("pool: %ld tasks executed, %ld stolen, %ld graphs\n", pool.tasks_executed,
              pool.tasks_stolen, pool.graphs_completed);
  return worst_residual < 1e-8 ? 0 : 1;
}
