// Serving: handle an open-ended stream of least-squares requests with one
// long-lived QrSession — the pool, plan cache, and tree autotuner amortize
// across requests, which is the intended production pattern for high request
// rates. Requests are NOT batched by the caller: each one is pushed into a
// FactorStream the moment it "arrives", returns its future immediately, and
// coalesces with whatever else is in flight (streaming fusion), so the
// scheduler never drains to one matrix's critical-path tail between
// requests. Shapes are mixed on purpose: every pushed shape is routed
// through the tree autotuner (TILEDQR_TREE=auto|flat|binary|fibonacci|
// greedy|plasma can bypass it for A/B runs).
//
//   ./serving [requests] [m] [n] [nb]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "common/timer.hpp"
#include "core/qr_session.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

using namespace tiledqr;

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 768;
  const std::int64_t n = argc > 3 ? std::atoll(argv[3]) : 256;
  const int nb = argc > 4 ? std::atoi(argv[4]) : 128;

  std::printf("tiledqr serving demo: an open-ended stream of %d least-squares requests "
              "around %lld x %lld (nb = %d)\n",
              requests, (long long)m, (long long)n, nb);

  // One session for the lifetime of the "server": a persistent worker pool,
  // a plan cache, and a tree autotuner shared by every request.
  core::QrSession session;
  core::QrSession::StreamOptions sopt;
  sopt.nb = nb;
  sopt.ib = std::min(32, nb);
  // sopt.tree is left disengaged: each pushed shape goes through the
  // session's autotuner (memoized per shape in the TuningTable).

  // Incoming work: a request mix of three shapes — the common case plus a
  // taller and a wider variant — as a server would see from real clients.
  // In a real deployment these arrive over the wire; pushing is cheap enough
  // to do on the request thread.
  struct RequestData {
    Matrix<double> a;
    Matrix<double> b;
  };
  std::vector<RequestData> problems;
  problems.reserve(size_t(requests));
  for (int i = 0; i < requests; ++i) {
    const std::int64_t mi = i % 3 == 1 ? m + m / 2 : m;
    const std::int64_t ni = i % 3 == 2 ? std::max<std::int64_t>(nb, n / 2) : n;
    problems.push_back(RequestData{random_matrix<double>(mi, ni, 7000 + unsigned(i)),
                                   random_matrix<double>(mi, 1, 9000 + unsigned(i))});
  }

  WallTimer timer;
  // The open-ended stream: every push_solve is a full least-squares pipeline
  // (factorize A, apply Qᵀ to b, triangular-solve) whose apply/trsm stages
  // chain into the same stream. Pushes that arrive while the pool is busy
  // coalesce into fused grafts on the live submission — no batch boundary,
  // no drain between requests.
  auto stream = session.stream<double>(sopt);
  std::vector<std::future<Matrix<double>>> inflight;
  inflight.reserve(size_t(requests));
  for (auto& req : problems)
    inflight.push_back(stream.push_solve(ConstMatrixView<double>(req.a.view()),
                                         ConstMatrixView<double>(req.b.view())));
  auto sstats = stream.stats();  // snapshot before the drain
  stream.close();                // a real server would keep it open forever

  // Drain the solutions and check them.
  double worst_residual = 0.0;
  for (int i = 0; i < requests; ++i) {
    auto x = inflight[size_t(i)].get();
    const auto& a = problems[size_t(i)].a;
    const auto& b = problems[size_t(i)].b;
    // Residual of the normal equations: A^T (A x - b) ~ 0 at the minimizer.
    Matrix<double> ax(a.rows(), 1);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0, a.view(), x.view(), 0.0, ax.view());
    for (std::int64_t r = 0; r < a.rows(); ++r) ax(r, 0) -= b(r, 0);
    Matrix<double> atr(a.cols(), 1);
    blas::gemm(blas::Op::ConjTrans, blas::Op::NoTrans, 1.0, a.view(), ax.view(), 0.0,
               atr.view());
    worst_residual = std::max(worst_residual, double(frobenius_norm<double>(atr.view())) /
                                                  double(frobenius_norm<double>(b.view())));
  }
  double seconds = timer.seconds();

  auto cache = session.plan_cache_stats();
  auto pool = session.pool_stats();
  auto tuning = session.tuning_stats();
  std::printf("served %d requests in %.3f s (%.1f req/s)\n", requests, seconds,
              requests / seconds);
  std::printf("worst normal-equation residual: %.3e\n", worst_residual);
  std::printf("stream: %ld pushes -> %ld grafted components (%ld requests rode fused grafts)\n",
              sstats.pushed, sstats.components, sstats.fused_requests);
  std::printf("autotuner: %ld hits / %ld misses, %zu shape decisions\n", tuning.hits,
              tuning.misses, tuning.entries);
  std::printf("plan cache: %ld hits / %ld misses (hit rate %.3f), fused: %ld hits / %ld misses\n",
              cache.hits, cache.misses, cache.hit_rate(), cache.fused_hits, cache.fused_misses);
  std::printf("pool: %ld tasks executed, %ld stolen, %ld graphs\n", pool.tasks_executed,
              pool.tasks_stolen, pool.graphs_completed);
  return worst_residual < 1e-8 ? 0 : 1;
}
